package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardGroup runs several engines in lockstep windows, the conservative
// (null-message-free) parallel discrete-event scheme: model state is
// partitioned so each engine owns a disjoint shard, and a window never
// extends past the earliest pending event plus the cross-shard lookahead,
// so no shard can receive an interaction dated inside a window it has
// already executed. Within a window the engines run on concurrent
// goroutines; between windows a single-threaded flush callback applies
// the interactions the shards queued for each other.
//
// The group itself knows nothing about what crosses shards — the model
// layer (netsim's sharded fabric) queues cross-shard work during windows
// and applies it in the flush. Determinism therefore rests on two
// obligations the model layer must uphold: shards only touch their own
// state during windows, and the flush orders queued interactions by a
// schedule-independent key. When the model cannot keep an interaction
// order-independent it calls Abort and the whole run is discarded.
type ShardGroup struct {
	engs      []*Engine
	lookahead Time

	aborted atomic.Bool
	stopped atomic.Bool
}

// NewShardGroup groups the engines with the given cross-shard lookahead:
// the minimum model-time distance between an interaction's cause on one
// shard and its earliest effect on another (for a network fabric, the
// wire latency).
func NewShardGroup(engs []*Engine, lookahead Time) *ShardGroup {
	if len(engs) == 0 {
		panic("sim: empty shard group")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive shard lookahead %v", lookahead))
	}
	return &ShardGroup{engs: engs, lookahead: lookahead}
}

// Engines returns the grouped engines in shard order.
func (g *ShardGroup) Engines() []*Engine { return g.engs }

// Abort marks the run unsalvageable: Run returns after the current
// window and the caller must discard all shard state. Safe from any
// goroutine.
func (g *ShardGroup) Abort() { g.aborted.Store(true) }

// Aborted reports whether Abort was called.
func (g *ShardGroup) Aborted() bool { return g.aborted.Load() }

// Stop makes Run return after the current window, like Engine.Stop.
// Safe from any goroutine (model completion hooks run inside windows).
func (g *ShardGroup) Stop() { g.stopped.Store(true) }

// Run executes windows until every engine's queue is empty (after a
// final flush), or Stop or Abort is called. flush runs single-threaded
// between windows to apply queued cross-shard interactions; it may
// schedule events on any engine at or after that engine's current time.
func (g *ShardGroup) Run(flush func()) {
	g.stopped.Store(false)
	for !g.stopped.Load() && !g.aborted.Load() {
		tmin := Forever
		for _, e := range g.engs {
			if t := e.PeekTime(); t < tmin {
				tmin = t
			}
		}
		if tmin == Forever {
			return
		}
		limit := tmin + g.lookahead
		if len(g.engs) == 1 {
			g.engs[0].RunUntil(limit)
		} else {
			var wg sync.WaitGroup
			for _, e := range g.engs {
				wg.Add(1)
				go func(e *Engine) {
					defer wg.Done()
					e.RunUntil(limit)
				}(e)
			}
			wg.Wait()
		}
		flush()
	}
}

// Shutdown shuts every engine down (killing parked processes), for
// discarding an aborted run without leaking goroutines. It reports the
// total number of processes killed.
func (g *ShardGroup) Shutdown() int {
	leaked := 0
	for _, e := range g.engs {
		leaked += e.Shutdown()
	}
	return leaked
}
