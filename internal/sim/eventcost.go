package sim

import (
	"runtime"
	"time"
)

// MeasureEventCost measures a warm engine's schedule+fire cost: the
// self-rescheduling tick pattern every clock and SMI driver uses. The
// first tick warms the free list; the measured window is steady state.
// It backs the committed perf baseline's engine_event_ns /
// engine_event_allocs entries (the free list should hold allocations
// at zero).
func MeasureEventCost() (nsPerEvent, allocsPerEvent float64) {
	const events = 1 << 20
	e := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < events {
			e.After(1, tick)
		}
	}
	// Warm-up: allocate the one event the pattern needs, then recycle it.
	e.After(1, func() {})
	e.Run()

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	e.After(1, tick)
	e.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(wall.Nanoseconds()) / events,
		float64(after.Mallocs-before.Mallocs) / events
}
