package sim

import (
	"sync/atomic"
	"testing"
)

// countingProbe is the shape a real observability probe must have:
// atomic adds only, nothing that escapes.
type countingProbe struct {
	scheduled, fired, cancelled atomic.Int64
}

func (p *countingProbe) EngineEvent(op ProbeOp) {
	switch op {
	case ProbeSchedule:
		p.scheduled.Add(1)
	case ProbeFire:
		p.fired.Add(1)
	case ProbeCancel:
		p.cancelled.Add(1)
	}
}

// TestHotPathAllocFree pins the PR-2 guarantee the observability layer
// must not regress: steady-state schedule/fire/cancel allocate nothing,
// with the probe nil (the untraced fast path) and with a well-behaved
// probe attached.
func TestHotPathAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		probe Probe
	}{
		{"nil-probe", nil},
		{"counting-probe", &countingProbe{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := New(1)
			e.SetProbe(tc.probe)
			fn := func() {}
			// Warm the free list past the measured population.
			for i := 0; i < 64; i++ {
				e.After(1, fn)
			}
			e.Run()

			if got := testing.AllocsPerRun(200, func() {
				ev := e.At(e.Now()+10, fn)
				e.Cancel(ev)
				e.At(e.Now()+1, fn)
				e.RunUntil(e.Now() + 1)
			}); got != 0 {
				t.Fatalf("schedule/fire/cancel cycle allocates %.1f allocs/op, want 0", got)
			}
		})
	}
}

// TestProbeCounts checks the probe sees every queue operation exactly
// once, including events drained by Shutdown (which recycles without
// firing and must not count as fires).
func TestProbeCounts(t *testing.T) {
	e := New(1)
	var p countingProbe
	e.SetProbe(&p)
	fn := func() {}
	for i := 0; i < 10; i++ {
		e.After(Time(i+1), fn)
	}
	ev := e.After(100, fn)
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op and must not double-count
	e.RunUntil(50)

	if got := p.scheduled.Load(); got != 11 {
		t.Errorf("scheduled = %d, want 11", got)
	}
	if got := p.fired.Load(); got != 10 {
		t.Errorf("fired = %d, want 10", got)
	}
	if got := p.cancelled.Load(); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
}
