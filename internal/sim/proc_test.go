package sim

import (
	"testing"
)

func TestProcSleep(t *testing.T) {
	e := New(1)
	var wakeups []Time
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Millisecond)
			wakeups = append(wakeups, p.Now())
		}
	})
	e.Run()
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(wakeups) != len(want) {
		t.Fatalf("wakeups = %v, want %v", wakeups, want)
	}
	for i := range want {
		if wakeups[i] != want[i] {
			t.Fatalf("wakeups = %v, want %v", wakeups, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New(1)
	var order []string
	e.Go("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
	})
	e.Run()
	if len(order) != 3 || order[0] != "a10" || order[1] != "b20" || order[2] != "a30" {
		t.Fatalf("interleaving wrong: %v", order)
	}
}

func TestProcWaitWake(t *testing.T) {
	e := New(1)
	var got any
	var wake func(any)
	e.Go("waiter", func(p *Proc) {
		var wait func() any
		wake, wait = p.Wait()
		got = wait()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(5)
		wake("hello")
	})
	e.Run()
	if got != "hello" {
		t.Fatalf("wait returned %v, want hello", got)
	}
}

func TestProcWaitDoubleWakeIgnored(t *testing.T) {
	e := New(1)
	resumed := 0
	e.Go("waiter", func(p *Proc) {
		wake, wait := p.Wait()
		e.After(5, func() { wake(1) })
		e.After(6, func() { wake(2) })
		wait()
		resumed++
		p.Sleep(100)
	})
	e.Run()
	if resumed != 1 {
		t.Fatalf("resumed = %d, want 1", resumed)
	}
	if e.Now() != 105 {
		t.Fatalf("clock = %v, want 105 (sleep not disturbed by second wake)", e.Now())
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := New(1)
	var sig Signal
	woken := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	e.At(50, func() { sig.Broadcast(e) })
	e.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
	if sig.Len() != 0 {
		t.Fatalf("signal still has %d waiters", sig.Len())
	}
}

func TestShutdownReleasesParkedProcs(t *testing.T) {
	e := New(1)
	var sig Signal
	cleaned := false
	e.Go("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		sig.Wait(p) // never broadcast
	})
	e.RunUntil(100)
	if len(e.procs) != 1 {
		t.Fatalf("procs = %d, want 1 parked", len(e.procs))
	}
	e.Shutdown()
	if len(e.procs) != 0 {
		t.Fatalf("procs = %d after Shutdown, want 0", len(e.procs))
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New(1)
	e.Go("bomb", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestProcIdentity(t *testing.T) {
	e := New(1)
	var p1, p2 *Proc
	p1 = e.Go("first", func(p *Proc) {})
	p2 = e.Go("second", func(p *Proc) {})
	if p1.Name() != "first" || p2.Name() != "second" {
		t.Fatal("names wrong")
	}
	if p1.ID() == p2.ID() {
		t.Fatal("ids not unique")
	}
	if p1.Engine() != e {
		t.Fatal("engine accessor wrong")
	}
	e.Run()
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []int {
		e := New(7)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			e.Go("p", func(p *Proc) {
				d := Time(e.Rand().Int63n(100))
				p.Sleep(d)
				order = append(order, i)
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic process order at %d", i)
		}
	}
}
