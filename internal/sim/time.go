// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock from event to event. Model code runs
// either as plain event callbacks (Engine.At / Engine.After) or as
// processes: goroutines that execute imperative model logic and suspend on
// simulation primitives (Proc.Sleep, Signal.Wait, ...). Only one goroutine
// — the engine or exactly one process — runs at a time, so simulations are
// fully deterministic for a given seed.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration constants for virtual time arithmetic. A sim.Time is both a
// point in time and (when used as a difference) a duration.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel time later than any reachable simulation instant.
const Forever Time = 1<<63 - 1

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }
