package sim

// Engine hot-path benchmarks: schedule/fire/cancel churn with allocation
// reporting. The per-event numbers here are the floor under every
// experiment sweep — a full table regeneration is hundreds of millions
// of these operations — so the free list keeping steady-state events at
// 0 allocs/op is what the BENCH_sweeps.json trajectory leans on.
//
//	go test ./internal/sim -bench=. -benchmem

import "testing"

// BenchmarkScheduleFire measures the self-rescheduling tick pattern —
// one push + one pop + one callback per iteration — that clocks, SMI
// drivers and watchdogs all use.
func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.After(1, tick)
	e.Run()
}

// BenchmarkScheduleCancel measures the armed-timer pattern: schedule a
// timeout, cancel it before it fires (the reliable transport does this
// once per acknowledged message).
func BenchmarkScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	fn := func() {}
	driver := func() {
		for i := 0; i < b.N; i++ {
			ev := e.At(e.Now()+10, fn)
			e.Cancel(ev)
			e.At(e.Now()+1, fn)
			e.RunUntil(e.Now() + 1)
		}
	}
	b.ResetTimer()
	driver()
}

// BenchmarkScheduleFireDeep measures heap churn at depth: a standing
// population of pending events (as in a big cluster: one timer per CPU,
// flow and driver) with one schedule+fire per iteration at the front.
func BenchmarkScheduleFireDeep(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	fn := func() {}
	// Standing background population far in the future.
	for i := 0; i < 1024; i++ {
		e.At(Forever/2+Time(i), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, fn)
		e.RunUntil(e.Now() + 1)
	}
}

// BenchmarkCancelOfMany measures removeAt on random heap positions.
func BenchmarkCancelOfMany(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	fn := func() {}
	const standing = 512
	evs := make([]*Event, 0, standing)
	for i := 0; i < standing; i++ {
		evs = append(evs, e.At(Time(e.Rand().Int63n(1<<40)+1), fn))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % standing
		e.Cancel(evs[j])
		evs[j] = e.At(Time(e.Rand().Int63n(1<<40)+1), fn)
	}
}
