package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: random interleavings of scheduling and cancellation never
// fire a canceled event, never fire out of order, and fire everything
// that was not canceled.
func TestCancelRescheduleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)
		const n = 100
		fired := make([]bool, n)
		canceled := make([]bool, n)
		events := make([]*Event, n)
		var lastTime Time = -1
		ok := true
		for i := 0; i < n; i++ {
			i := i
			events[i] = e.At(Time(rng.Int63n(1000)), func() {
				if canceled[i] {
					ok = false
				}
				if e.Now() < lastTime {
					ok = false
				}
				lastTime = e.Now()
				fired[i] = true
			})
		}
		// Cancel a random third.
		for i := 0; i < n/3; i++ {
			j := rng.Intn(n)
			canceled[j] = true
			e.Cancel(events[j])
		}
		e.Run()
		for i := 0; i < n; i++ {
			if fired[i] == canceled[i] {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a swarm of processes doing random sleeps always terminates
// with the clock at the maximum wake time, and total wakeups equal the
// scheduled count.
func TestProcSwarmProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		e := New(seed)
		procs := int(n8%20) + 1
		wakeups := 0
		var maxWake Time
		for i := 0; i < procs; i++ {
			e.Go("p", func(p *Proc) {
				steps := int(e.Rand().Int63n(5)) + 1
				for s := 0; s < steps; s++ {
					d := Time(e.Rand().Int63n(100) + 1)
					p.Sleep(d)
					wakeups++
				}
				if p.Now() > maxWake {
					maxWake = p.Now()
				}
			})
		}
		e.Run()
		return e.Now() == maxWake && wakeups > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Signals under churn: waiters added while a broadcast's wakeups are in
// flight belong to the next broadcast, not the current one.
func TestSignalGenerations(t *testing.T) {
	e := New(1)
	var sig Signal
	order := []string{}
	e.Go("first", func(p *Proc) {
		sig.Wait(p)
		order = append(order, "first-woke")
		sig.Wait(p) // re-wait: must need a second broadcast
		order = append(order, "first-again")
	})
	e.At(10, func() { sig.Broadcast(e) })
	e.At(20, func() {
		if sig.Len() != 1 {
			t.Errorf("re-waiter not queued: %d", sig.Len())
		}
		sig.Broadcast(e)
	})
	e.Run()
	if len(order) != 2 || order[1] != "first-again" {
		t.Fatalf("signal generations broken: %v", order)
	}
}

// A process killed during Shutdown must not resurrect pending events.
func TestShutdownMidEventStorm(t *testing.T) {
	e := New(1)
	var sig Signal
	for i := 0; i < 10; i++ {
		e.Go("stuck", func(p *Proc) { sig.Wait(p) })
	}
	for i := 0; i < 100; i++ {
		e.At(Time(i), func() {})
	}
	e.RunUntil(50)
	e.Shutdown()
	if e.Pending() != 0 {
		t.Fatalf("events survived Shutdown: %d", e.Pending())
	}
	e.Run() // must be a no-op, not a hang
}

func BenchmarkProcSleepWake(b *testing.B) {
	e := New(1)
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}
