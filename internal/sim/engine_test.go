package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
		{-2 * Millisecond, "-2.000ms"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (3 * Second).Milliseconds(); got != 3000 {
		t.Errorf("Milliseconds() = %v, want 3000", got)
	}
	if got := FromSeconds(2.5); got != 2500*Millisecond {
		t.Errorf("FromSeconds(2.5) = %v, want 2.5s", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Double cancel and cancel-nil must not panic.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := New(1)
	var fired []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(Time(i), func() { fired = append(fired, i) }))
	}
	e.Cancel(evs[7])
	e.Cancel(evs[0])
	e.Cancel(evs[19])
	e.Run()
	if len(fired) != 17 {
		t.Fatalf("got %d events, want 17", len(fired))
	}
	for _, v := range fired {
		if v == 7 || v == 0 || v == 19 {
			t.Fatalf("canceled event %d fired", v)
		}
	}
	if !sort.IntsAreSorted(fired) {
		t.Fatalf("events out of order after cancels: %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12) fired %d events, want 2", len(fired))
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %v, want 12", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("after RunUntil(100) fired %d events, want 4", len(fired))
	}
	if e.Now() != 100 {
		t.Fatalf("clock advanced to %v, want 100", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt the engine: %d events ran", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEventsNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			e.After(1, schedule)
		}
	}
	e.After(1, schedule)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

// Property: any batch of events fires in nondecreasing time order and the
// clock matches the last event's time.
func TestEventOrderProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)
		var fired []Time
		count := int(n%50) + 1
		for i := 0; i < count; i++ {
			at := Time(rng.Int63n(1000))
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != count {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var trace []int64
		for i := 0; i < 100; i++ {
			d := Time(e.Rand().Int63n(1000))
			e.At(d, func() { trace = append(trace, int64(e.Now())) })
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("determinism violated: different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism violated at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Shutdown after a mid-run Stop must leave the engine reusable: clean
// latches, empty queue, and fresh events must schedule and run.
func TestShutdownAfterStopReusable(t *testing.T) {
	e := New(1)
	e.At(1, func() { e.Stop() })
	e.At(2, func() { t.Error("event after Stop ran") })
	e.Go("parked", func(p *Proc) {
		var sig Signal
		sig.Wait(p) // parks forever; Shutdown must reap it
	})
	e.Run()
	if leaked := e.Shutdown(); leaked != 1 {
		t.Fatalf("Shutdown reported %d leaked procs, want 1", leaked)
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	// The engine must now accept and run new work.
	ran := false
	e.At(e.Now()+5, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("engine not reusable after Shutdown")
	}
	if leaked := e.Shutdown(); leaked != 0 {
		t.Fatalf("clean engine reported %d leaked procs", leaked)
	}
}

// Fired and canceled events must be recycled: steady-state scheduling
// cannot allocate once the free list is primed.
func TestEventFreeListReuse(t *testing.T) {
	e := New(1)
	fn := func() {}
	ev := e.At(1, fn)
	e.Run()
	if ev2 := e.At(2, fn); ev2 != ev {
		t.Error("fired event not recycled")
	} else {
		e.Cancel(ev2)
	}
	if ev3 := e.At(3, fn); ev3 != ev {
		t.Error("canceled event not recycled")
	}
	e.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		e.Cancel(e.At(e.Now()+1, fn))
		e.At(e.Now()+1, fn)
		e.RunUntil(e.Now() + 2)
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule/fire/cancel allocates %.1f objects/op, want 0", allocs)
	}
}

// A canceled handle keeps answering Canceled() until its object is
// reused, and double-Cancel of a recycled object must not corrupt the
// free list (no double insertion).
func TestCancelRecycleNoDoubleFree(t *testing.T) {
	e := New(1)
	fn := func() {}
	ev := e.At(5, fn)
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("canceled event not marked")
	}
	e.Cancel(ev) // second cancel: must be a no-op, not a second recycle
	a := e.At(6, fn)
	b := e.At(7, fn)
	if a == b {
		t.Fatal("free list handed out the same event twice")
	}
	fired := 0
	e.At(8, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestPeekTime(t *testing.T) {
	e := New(1)
	if e.PeekTime() != Forever {
		t.Fatal("PeekTime on empty queue should be Forever")
	}
	e.At(17, func() {})
	if e.PeekTime() != 17 {
		t.Fatalf("PeekTime = %v, want 17", e.PeekTime())
	}
}
