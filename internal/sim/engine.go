package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events are ordered by time, then by
// scheduling order (FIFO among simultaneous events), which keeps runs
// deterministic.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// Time reports when the event is (or was) scheduled to fire.
func (ev *Event) Time() Time { return ev.at }

// Canceled reports whether the event has been canceled.
func (ev *Event) Canceled() bool { return ev.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation kernel. It is not safe for
// concurrent use; model code must only touch it from event callbacks or
// from the currently-running process.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	running bool
	stopped bool

	yield chan struct{} // process -> engine handoff
	procs map[*Proc]struct{}

	nextProcID int
}

// New returns an engine with its clock at zero and a deterministic RNG
// derived from seed.
func New(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekTime reports the time of the next pending event, or Forever if the
// queue is empty.
func (e *Engine) PeekTime() Time {
	if len(e.queue) == 0 {
		return Forever
	}
	return e.queue[0].at
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() { e.RunUntil(Forever) }

// RunUntil executes events with time ≤ limit; the clock is then advanced
// to limit (if limit is reachable, i.e. not Forever with an empty queue).
func (e *Engine) RunUntil(limit Time) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= limit {
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.at
		ev.fn()
	}
	if !e.stopped && limit != Forever && limit > e.now {
		e.now = limit
	}
}

// Shutdown terminates all parked processes (via a recovered panic inside
// each process goroutine) and drains the event queue. It is intended for
// tests and for aborting simulations early without leaking goroutines.
func (e *Engine) Shutdown() {
	for p := range e.procs {
		if p.state == procParked {
			p.kill()
		}
	}
	e.queue = nil
}
