package sim

import (
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events are ordered by time, then by
// scheduling order (FIFO among simultaneous events), which keeps runs
// deterministic.
//
// Lifecycle: the *Event returned by At/After is valid only while the
// event is pending. Once the event fires or is canceled the engine
// recycles the object for a later At/After (the free list is what makes
// steady-state scheduling allocation-free), so holders of a stored
// handle must drop it — conventionally by nilling their field — when
// the callback runs or right after Cancel. Canceling from inside the
// event's own callback is safe (the object is not recycled until the
// callback returns); canceling a handle kept across a fire is not.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// Time reports when the event is (or was) scheduled to fire.
func (ev *Event) Time() Time { return ev.at }

// Canceled reports whether the event has been canceled.
func (ev *Event) Canceled() bool { return ev.canceled }

// eventHeap is a binary min-heap ordered by (at, seq). The sift
// operations are hand-rolled rather than going through container/heap:
// push/pop is the hottest path in the simulator and the interface
// dispatch plus any-boxing of the stdlib API is measurable there.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.siftUp(ev.index)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	old := *h
	n := len(old) - 1
	old.swap(0, n)
	ev := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		h.siftDown(0)
	}
	ev.index = -1
	return ev
}

// removeAt removes the event at heap index i.
func (h *eventHeap) removeAt(i int) {
	old := *h
	n := len(old) - 1
	ev := old[i]
	if i != n {
		old.swap(i, n)
		old[n] = nil
		*h = old[:n]
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	} else {
		old[n] = nil
		*h = old[:n]
	}
	ev.index = -1
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown reports whether the element moved.
func (h eventHeap) siftDown(i int) bool {
	start := i
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && h.less(right, left) {
			best = right
		}
		if !h.less(best, i) {
			break
		}
		h.swap(i, best)
		i = best
	}
	return i > start
}

// Engine is a discrete-event simulation kernel. It is not safe for
// concurrent use; model code must only touch it from event callbacks or
// from the currently-running process.
type Engine struct {
	now       Time
	queue     eventHeap
	free      []*Event // recycled Event objects, reused by At/After
	seq       uint64
	processed uint64 // events fired over the engine's lifetime
	rng       *rand.Rand
	running   bool
	stopped   bool

	yield chan struct{} // process -> engine handoff
	procs map[*Proc]struct{}

	nextProcID int

	probe Probe // optional scheduling-traffic observer, usually nil
}

// queueHint presizes the event queue and free list: a cluster run keeps
// on the order of one pending event per CPU, fabric flow and timer, so
// starting at this capacity avoids the early append-grow churn without
// costing meaningful memory on small engines.
const queueHint = 128

// New returns an engine with its clock at zero and a deterministic RNG
// derived from seed.
func New(seed int64) *Engine {
	return &Engine{
		queue: make(eventHeap, 0, queueHint),
		free:  make([]*Event, 0, queueHint),
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc takes an Event from the free list, or makes one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle returns a fired or canceled event to the free list. The
// canceled flag is deliberately left as-is so a just-canceled handle
// still answers Canceled() truthfully until the object is reused; At
// resets every field on reuse.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.canceled = false
	e.queue.push(ev)
	if e.probe != nil {
		e.probe.EngineEvent(ProbeSchedule)
	}
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	e.queue.removeAt(ev.index)
	e.recycle(ev)
	if e.probe != nil {
		e.probe.EngineEvent(ProbeCancel)
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Events reports how many events the engine has fired over its
// lifetime. The counter rides the existing pop in RunUntil, so keeping
// it costs no allocation and no extra branch on the scheduling path.
func (e *Engine) Events() uint64 { return e.processed }

// HasPendingAt reports whether any pending event is scheduled at exactly
// time t. The sharded fabric uses it to detect a cross-shard delivery
// landing at the same instant as a shard-local event — an ordering the
// sequential engine resolves by global scheduling order, which a shard
// cannot reconstruct, so the run must abort instead of guessing.
func (e *Engine) HasPendingAt(t Time) bool {
	for _, ev := range e.queue {
		if ev.at == t {
			return true
		}
	}
	return false
}

// PeekTime reports the time of the next pending event, or Forever if the
// queue is empty.
func (e *Engine) PeekTime() Time {
	if len(e.queue) == 0 {
		return Forever
	}
	return e.queue[0].at
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() { e.RunUntil(Forever) }

// RunUntil executes events with time ≤ limit; the clock is then advanced
// to limit (if limit is reachable, i.e. not Forever with an empty queue).
func (e *Engine) RunUntil(limit Time) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= limit {
		ev := e.queue.popMin()
		e.now = ev.at
		e.processed++
		if e.probe != nil {
			e.probe.EngineEvent(ProbeFire)
		}
		ev.fn()
		// Recycle only after fn returns: a Cancel of the firing event
		// from inside its own callback must see the popped (index -1)
		// object, not a reused one.
		e.recycle(ev)
	}
	if !e.stopped && limit != Forever && limit > e.now {
		e.now = limit
	}
}

// Shutdown terminates all parked processes (via a recovered panic inside
// each process goroutine), drains the event queue, and clears the
// stopped/running latches so the engine can schedule and Run again. It
// returns the number of parked processes it had to kill — a non-zero
// count after a run that was expected to finish cleanly means the model
// leaked processes. It is intended for tests and for aborting
// simulations early without leaking goroutines.
func (e *Engine) Shutdown() int {
	if e.running {
		panic("sim: Shutdown called while running")
	}
	leaked := 0
	for p := range e.procs {
		if p.state == procParked {
			p.kill()
			leaked++
		}
	}
	for len(e.queue) > 0 {
		e.recycle(e.queue.popMin())
	}
	e.stopped = false
	return leaked
}
