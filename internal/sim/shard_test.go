package sim

import (
	"sync"
	"testing"
)

// TestShardGroupLockstep checks the window invariant: no engine runs
// past the earliest pending event plus the lookahead before the barrier,
// so a flush can always inject interactions dated lookahead past any
// event without violating causality on the receiving engine.
func TestShardGroupLockstep(t *testing.T) {
	a, b := New(1), New(2)
	g := NewShardGroup([]*Engine{a, b}, 10)

	var mu sync.Mutex
	var fired []int
	record := func(id int) func() {
		return func() {
			mu.Lock()
			fired = append(fired, id)
			mu.Unlock()
		}
	}
	// a's first event at 0, b's far later: window one must cover only
	// [0, 10], so b's event at 50 cannot fire before the first flush.
	a.At(0, record(1))
	b.At(50, record(2))
	flushes := 0
	g.Run(func() {
		flushes++
		if flushes == 1 {
			mu.Lock()
			got := append([]int(nil), fired...)
			mu.Unlock()
			if len(got) != 1 || got[0] != 1 {
				t.Fatalf("after window one, fired = %v; want [1]", got)
			}
			// A flush may schedule past the receiving engine's horizon.
			b.At(60, record(3))
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 3 {
		t.Fatalf("fired = %v; want all three events", fired)
	}
	if a.Now() < 0 || b.Now() < 60 {
		t.Fatalf("clocks did not advance: a=%v b=%v", a.Now(), b.Now())
	}
}

// TestShardGroupAbort: Abort stops the run at the next barrier and
// Shutdown reaps whatever the shards still hold.
func TestShardGroupAbort(t *testing.T) {
	a, b := New(1), New(2)
	g := NewShardGroup([]*Engine{a, b}, 5)
	ran := 0
	a.At(0, func() { ran++ })
	a.At(100, func() { ran++ })
	g.Run(func() { g.Abort() })
	if !g.Aborted() {
		t.Fatal("Aborted() = false after Abort")
	}
	if ran != 1 {
		t.Fatalf("ran %d events; want 1 (abort after first window)", ran)
	}
	if leaked := g.Shutdown(); leaked != 0 {
		t.Fatalf("Shutdown leaked %d procs", leaked)
	}
	if a.Pending() != 0 {
		t.Fatalf("%d events still pending after Shutdown", a.Pending())
	}
}

// TestShardGroupStop: Stop ends the run at the next barrier even with
// work outstanding, mirroring Engine.Stop.
func TestShardGroupStop(t *testing.T) {
	a, b := New(1), New(2)
	g := NewShardGroup([]*Engine{a, b}, 5)
	a.At(0, func() { g.Stop() })
	b.At(1000, func() { t.Error("event past Stop fired") })
	g.Run(func() {})
	if g.Aborted() {
		t.Fatal("Stop must not mark the group aborted")
	}
}

// TestHasPendingAt exercises the tie-detection helper the sharded
// fabric relies on.
func TestHasPendingAt(t *testing.T) {
	e := New(1)
	e.At(5, func() {})
	ev := e.At(9, func() {})
	if !e.HasPendingAt(5) || !e.HasPendingAt(9) {
		t.Fatal("scheduled times not reported pending")
	}
	if e.HasPendingAt(7) {
		t.Fatal("unscheduled time reported pending")
	}
	e.Cancel(ev)
	if e.HasPendingAt(9) {
		t.Fatal("canceled event still reported pending")
	}
}
