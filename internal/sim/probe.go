package sim

// ProbeOp identifies an engine scheduling operation reported to a Probe.
type ProbeOp uint8

// Probe operations.
const (
	ProbeSchedule ProbeOp = iota // an event entered the queue (At/After)
	ProbeFire                    // an event's callback ran
	ProbeCancel                  // a pending event was removed
)

// Probe observes engine scheduling traffic. It exists so observability
// layers can count queue operations without the engine importing them:
// implementations must be allocation-free and cheap (a single atomic
// add), because they sit on the hottest path in the simulator. The
// engine holds a nil probe by default, costing one predictable branch
// per operation — the internal/sim benchmarks guard that schedule /
// fire / cancel stay at 0 allocs/op either way.
type Probe interface {
	EngineEvent(op ProbeOp)
}

// SetProbe installs (or, with nil, removes) the engine's probe.
func (e *Engine) SetProbe(p Probe) { e.probe = p }
