package sim

import "fmt"

type procState int

const (
	procNew procState = iota
	procRunning
	procParked
	procDone
)

type killSentinel struct{}

// Proc is a simulation process: a goroutine that runs model code and
// suspends on simulation primitives. Exactly one process runs at a time;
// control is handed between the engine and the process through channels,
// so execution order is deterministic.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	state  procState
	resume chan any
	pval   any  // panic value propagated from the process goroutine
	dead   bool // killed or finished

	// wakeFn resumes the process with no value. Built once so the
	// Sleep hot path does not allocate a closure per call.
	wakeFn func()
}

// Go spawns a new process executing fn. The process starts at the current
// simulation time, after previously scheduled events for this instant.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	e.nextProcID++
	p := &Proc{
		eng:    e,
		id:     e.nextProcID,
		name:   name,
		state:  procNew,
		resume: make(chan any),
	}
	p.wakeFn = func() { e.transfer(p, nil) }
	e.procs[p] = struct{}{}

	go func() {
		// Wait for the engine to transfer control for the first time.
		v := <-p.resume
		if _, kill := v.(killSentinel); kill {
			p.finish(nil)
			return
		}
		defer func() {
			r := recover()
			if _, kill := r.(killSentinel); kill {
				r = nil
			}
			p.finish(r)
		}()
		fn(p)
	}()

	e.At(e.now, p.wakeFn)
	return p
}

// finish hands control back to the engine for the last time. Runs on the
// process goroutine.
func (p *Proc) finish(panicVal any) {
	p.state = procDone
	p.dead = true
	p.pval = panicVal
	p.eng.yield <- struct{}{}
}

// transfer resumes p with value v and blocks until p parks or finishes.
// Must run on the engine goroutine (inside an event callback).
func (e *Engine) transfer(p *Proc, v any) {
	if p.dead {
		return
	}
	p.state = procRunning
	p.resume <- v
	<-e.yield
	if p.state == procDone {
		delete(e.procs, p)
		if p.pval != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, p.pval))
		}
	}
}

// park suspends the process until the engine resumes it, returning the
// value passed to the wake-up. Runs on the process goroutine.
func (p *Proc) park() any {
	p.state = procParked
	p.eng.yield <- struct{}{}
	v := <-p.resume
	if _, kill := v.(killSentinel); kill {
		panic(killSentinel{})
	}
	p.state = procRunning
	return v
}

// kill terminates a parked process. Must run on the engine goroutine.
func (p *Proc) kill() {
	if p.dead || p.state != procParked {
		return
	}
	p.dead = true
	p.resume <- killSentinel{}
	<-p.eng.yield
	delete(p.eng.procs, p)
}

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// ID reports the unique process id.
func (p *Proc) ID() int { return p.id }

// Engine reports the engine the process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current simulation time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	e := p.eng
	e.At(e.now+d, p.wakeFn)
	p.park()
}

// Wait suspends the process until another component calls the returned
// wake function. The wake function schedules the resumption as an
// immediate event and may be called from engine or process context; extra
// calls are ignored.
func (p *Proc) Wait() (wake func(v any), wait func() any) {
	woken := false
	wake = func(v any) {
		if woken {
			return
		}
		woken = true
		p.eng.At(p.eng.now, func() { p.eng.transfer(p, v) })
	}
	wait = func() any { return p.park() }
	return wake, wait
}

// Signal is a broadcast wake-up point for processes, similar to a
// condition variable. The zero value is ready to use.
type Signal struct {
	waiters []*Proc
}

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Broadcast wakes all waiting processes (as immediate events, in wait
// order). Safe to call from engine or process context.
func (s *Signal) Broadcast(e *Engine) {
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		e.At(e.now, p.wakeFn)
	}
}

// Len reports the number of parked waiters.
func (s *Signal) Len() int { return len(s.waiters) }
