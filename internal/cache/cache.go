// Package cache models the cache behaviour of simulated workloads.
//
// The model is deliberately analytic rather than trace-driven: a workload
// is summarized by its hot working-set size, access stride, and temporal
// reuse, and the hierarchy maps that summary to a miss rate. This is the
// same level of description the paper uses (Convolve configurations were
// classified as ~1 % and ~70 % miss rates with cachegrind), so it is
// sufficient to reproduce the cache-friendly / cache-unfriendly split and
// the effect of hyper-threaded siblings sharing a cache.
package cache

import "math"

// Hierarchy describes a per-core cache hierarchy. Sizes are bytes.
// LLC is the last-level cache capacity reachable by one core; under
// hyper-threading the two siblings of a physical core share it.
type Hierarchy struct {
	L1D      int64 // level-1 data cache per physical core
	L2       int64 // level-2 cache per physical core
	LLC      int64 // last-level cache share per physical core
	LineSize int64 // cache line size in bytes
}

// WyeastNode is the hierarchy of the paper's Xeon E5520 cluster nodes
// (32 KiB L1D, 256 KiB L2 per core, 8 MiB shared L3 across 4 cores).
func WyeastNode() Hierarchy {
	return Hierarchy{L1D: 32 << 10, L2: 256 << 10, LLC: 2 << 20, LineSize: 64}
}

// R410Node is the hierarchy of the paper's Dell PowerEdge R410 (Xeon
// E5620) multithreading test machines.
func R410Node() Hierarchy {
	return Hierarchy{L1D: 32 << 10, L2: 256 << 10, LLC: 3 << 20, LineSize: 64}
}

// Access summarizes a thread's memory reference behaviour.
type Access struct {
	// WorkingSet is the number of bytes the thread touches repeatedly.
	WorkingSet int64
	// Stride is the average distance in bytes between consecutive
	// references. Stride ≥ LineSize means every reference starts a new
	// line (no spatial locality); stride 8 means 8 consecutive doubles
	// share a 64-byte line.
	Stride int64
	// Reuse is the average number of times a resident line is
	// re-referenced thanks to temporal locality (0 = streaming).
	Reuse float64
}

// MissRate estimates the fraction of references that miss in the whole
// hierarchy (and therefore pay a memory access), assuming the thread has
// the full hierarchy to itself.
func (h Hierarchy) MissRate(a Access) float64 {
	return h.missRate(a, 1)
}

// SharedMissRate estimates the miss rate when `sharers` threads with the
// same access pattern share the hierarchy (e.g. two hyper-threaded
// siblings): each effectively sees 1/sharers of every level.
func (h Hierarchy) SharedMissRate(a Access, sharers int) float64 {
	if sharers < 1 {
		sharers = 1
	}
	return h.missRate(a, sharers)
}

func (h Hierarchy) missRate(a Access, sharers int) float64 {
	if a.WorkingSet <= 0 {
		return 0
	}
	capacity := h.LLC / int64(sharers)
	if capacity <= 0 {
		capacity = 1
	}
	// Fraction of the working set that cannot stay resident.
	overflow := capacityOverflow(a.WorkingSet, capacity)
	// Fraction of references that begin a new cache line.
	newLine := 1.0
	if a.Stride > 0 && a.Stride < h.LineSize {
		newLine = float64(a.Stride) / float64(h.LineSize)
	}
	// Temporal reuse amortizes line fetches over more references.
	amort := 1.0 + math.Max(0, a.Reuse)
	miss := overflow * newLine / amort
	// Cold misses put a small floor under everything that touches memory.
	const coldFloor = 0.002
	if miss < coldFloor {
		miss = coldFloor
	}
	if miss > 1 {
		miss = 1
	}
	return miss
}

// capacityOverflow maps workingSet/capacity to the fraction of references
// falling on non-resident data, with a smooth knee at capacity: well
// inside cache → ~0, far outside → ~1.
func capacityOverflow(ws, cap int64) float64 {
	r := float64(ws) / float64(cap)
	if r <= 1 {
		// Gentle rise to 5% misses as the working set approaches
		// capacity (conflict misses).
		return 0.05 * r * r
	}
	// Beyond capacity an LRU-like model: fraction of the working set
	// that was evicted before re-reference is 1 - cap/ws.
	return 1 - 1/r
}

// Report mirrors a cachegrind-style summary for a simulated workload.
type Report struct {
	Refs     float64 // total references
	Misses   float64 // estimated misses
	MissRate float64
}

// Profile produces a Report for a workload issuing refs references with
// access pattern a on hierarchy h (solo occupancy).
func (h Hierarchy) Profile(refs float64, a Access) Report {
	m := h.MissRate(a)
	return Report{Refs: refs, Misses: refs * m, MissRate: m}
}
