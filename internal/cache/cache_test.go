package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMissRateFitsInCache(t *testing.T) {
	h := R410Node()
	a := Access{WorkingSet: 16 << 10, Stride: 8, Reuse: 4}
	m := h.MissRate(a)
	if m > 0.01 {
		t.Errorf("small working set should be cache friendly, miss = %v", m)
	}
}

func TestMissRateStreaming(t *testing.T) {
	h := R410Node()
	a := Access{WorkingSet: 64 << 20, Stride: 64, Reuse: 0}
	m := h.MissRate(a)
	if m < 0.5 {
		t.Errorf("streaming 64MiB should be cache hostile, miss = %v", m)
	}
}

func TestMissRateMonotonicInWorkingSet(t *testing.T) {
	h := R410Node()
	prev := 0.0
	for ws := int64(1 << 10); ws <= 1<<28; ws *= 2 {
		m := h.MissRate(Access{WorkingSet: ws, Stride: 64, Reuse: 0})
		if m < prev {
			t.Fatalf("miss rate decreased with working set at ws=%d: %v < %v", ws, m, prev)
		}
		prev = m
	}
}

func TestSharedMissRateNotLower(t *testing.T) {
	h := R410Node()
	prop := func(wsKB uint32, strideLog uint8, reuse10 uint8) bool {
		a := Access{
			WorkingSet: int64(wsKB%100000)*1024 + 1,
			Stride:     1 << (strideLog % 8),
			Reuse:      float64(reuse10%50) / 10,
		}
		solo := h.MissRate(a)
		shared := h.SharedMissRate(a, 2)
		return shared >= solo-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMissRateBounds(t *testing.T) {
	h := WyeastNode()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := Access{
			WorkingSet: rng.Int63n(1 << 30),
			Stride:     rng.Int63n(256),
			Reuse:      rng.Float64() * 20,
		}
		m := h.MissRate(a)
		if m < 0 || m > 1 {
			t.Fatalf("miss rate out of [0,1]: %v for %+v", m, a)
		}
	}
}

func TestSmallStrideReducesMisses(t *testing.T) {
	h := R410Node()
	big := Access{WorkingSet: 32 << 20, Stride: 64, Reuse: 0}
	small := Access{WorkingSet: 32 << 20, Stride: 8, Reuse: 0}
	if h.MissRate(small) >= h.MissRate(big) {
		t.Error("unit stride should miss less than line stride")
	}
}

func TestReuseReducesMisses(t *testing.T) {
	h := R410Node()
	none := Access{WorkingSet: 32 << 20, Stride: 64, Reuse: 0}
	lots := Access{WorkingSet: 32 << 20, Stride: 64, Reuse: 9}
	if h.MissRate(lots) >= h.MissRate(none) {
		t.Error("temporal reuse should reduce miss rate")
	}
}

func TestZeroWorkingSet(t *testing.T) {
	h := R410Node()
	if m := h.MissRate(Access{}); m != 0 {
		t.Errorf("zero working set miss rate = %v, want 0", m)
	}
}

func TestSharersClamped(t *testing.T) {
	h := R410Node()
	a := Access{WorkingSet: 1 << 20, Stride: 64}
	if h.SharedMissRate(a, 0) != h.MissRate(a) {
		t.Error("sharers<1 should behave like solo")
	}
}

func TestProfileReport(t *testing.T) {
	h := R410Node()
	a := Access{WorkingSet: 64 << 20, Stride: 64}
	rep := h.Profile(20e6, a)
	if rep.Refs != 20e6 {
		t.Errorf("refs = %v", rep.Refs)
	}
	if rep.Misses != rep.Refs*rep.MissRate {
		t.Errorf("misses inconsistent with rate")
	}
}

// The paper's Convolve configurations: the cache-friendly config measured
// ~1% misses and the cache-unfriendly one ~70% (of ~20M references).
// These Access summaries are the ones internal/convolve derives; pin them
// here so the calibration cannot drift silently.
func TestConvolveCalibration(t *testing.T) {
	h := R410Node()
	cf := Access{WorkingSet: 40 << 10, Stride: 8, Reuse: 8}
	cu := Access{WorkingSet: 9 << 20, Stride: 64, Reuse: 0.25}
	mcf := h.MissRate(cf)
	mcu := h.MissRate(cu)
	if mcf > 0.02 {
		t.Errorf("CF miss rate = %v, want ≈0.01 or less", mcf)
	}
	if mcu < 0.5 || mcu > 0.85 {
		t.Errorf("CU miss rate = %v, want ≈0.7", mcu)
	}
}
