package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func TestAttributionUnderSMIs(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{
		Level: smm.SMMLong, PeriodJiffies: 1000, PhaseJitter: true,
	}))
	cl.StartSMI()
	node := cl.Nodes[0]
	var task *kernel.Task
	task = node.Kernel.Spawn("victim", cpu.Profile{CPI: 1}, func(tk *kernel.Task) {
		tk.Compute(2.4e9 * 5) // ~5s of work
		cl.Eng.Stop()
	})
	cl.Eng.Run()

	a := Attribute(node, []*kernel.Task{task})
	if len(a.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(a.Tasks))
	}
	s := a.Tasks[0]
	if s.Stolen <= 0 {
		t.Fatalf("no stolen time despite long SMIs: %+v", s)
	}
	if s.OSTime != s.TrueTime+s.Stolen {
		t.Fatal("stolen arithmetic inconsistent")
	}
	// Stolen time must equal the SMM residency the task sat through
	// (sole task on the node → it ate all of it).
	if s.Stolen != a.SMMResidency {
		t.Fatalf("stolen %v != ground-truth residency %v", s.Stolen, a.SMMResidency)
	}
	if s.StolenPct() < 5 || s.StolenPct() > 20 {
		t.Fatalf("stolen%% = %.1f, want ≈10", s.StolenPct())
	}
}

func TestAttributionQuietNode(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{}))
	node := cl.Nodes[0]
	task := node.Kernel.Spawn("calm", cpu.Profile{CPI: 1}, func(tk *kernel.Task) {
		tk.Compute(1e9)
	})
	cl.Eng.Run()
	a := Attribute(node, []*kernel.Task{task})
	if a.TotalStolen != 0 {
		t.Fatalf("stolen time on a quiet node: %v", a.TotalStolen)
	}
	if a.Tasks[0].StolenPct() != 0 {
		t.Fatal("stolen pct should be 0")
	}
}

func TestAttributionTable(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{}))
	node := cl.Nodes[0]
	task := node.Kernel.Spawn("worker", cpu.Profile{CPI: 1}, func(tk *kernel.Task) {
		tk.Compute(1e8)
	})
	cl.Eng.Run()
	out := Attribute(node, []*kernel.Task{task}).Table()
	for _, want := range []string{"worker", "TOTAL", "ground truth"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestStolenPctZeroOS(t *testing.T) {
	if (TaskSample{}).StolenPct() != 0 {
		t.Fatal("zero OSTime should yield 0%")
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Record("smm", 10, 20)
	r.Record("compute", 0, 100)
	r.Record("smm", 50, 55)
	if len(r.Spans()) != 3 {
		t.Fatal("spans lost")
	}
	if got := r.TotalByLabel()["smm"]; got != 15 {
		t.Fatalf("smm total = %v, want 15", got)
	}
	ov := r.Overlapping(12, 18)
	if len(ov) != 2 {
		t.Fatalf("overlapping = %d, want 2 (smm + compute)", len(ov))
	}
	if (Span{Start: 3, End: 9}).Duration() != 6 {
		t.Fatal("duration wrong")
	}
	if len(r.Overlapping(200, 300)) != 0 {
		t.Fatal("phantom overlaps")
	}
}

func TestChromeTraceExport(t *testing.T) {
	var r Recorder
	r.Record("compute", 0, 100*sim.Millisecond)
	r.Record("smm", 40*sim.Millisecond, 45*sim.Millisecond)
	r.Record("compute", 100*sim.Millisecond, 150*sim.Millisecond)
	out, err := r.ChromeTrace("node0")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 1 process + 2 thread metadata events (2 labels) + 3 spans.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6", len(doc.TraceEvents))
	}
	var spans, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if ev["dur"].(float64) <= 0 {
				t.Error("span with non-positive duration")
			}
		case "M":
			meta++
		}
	}
	if spans != 3 || meta != 3 {
		t.Fatalf("spans=%d meta=%d", spans, meta)
	}
}

func TestRecordSMMFromController(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{
		Level: smm.SMMLong, PeriodJiffies: 500, PhaseJitter: true,
	}))
	cl.StartSMI()
	e.RunUntil(3 * sim.Second)
	var r Recorder
	r.RecordSMM(cl.Nodes[0].SMM.Episodes())
	if got := len(r.Spans()); got < 3 {
		t.Fatalf("recorded %d SMM spans", got)
	}
	if r.TotalByLabel()["smm"] != cl.Nodes[0].SMM.Stats().TotalResidency {
		t.Fatal("recorded SMM spans do not sum to residency")
	}
}

func TestOverlappingBoundaries(t *testing.T) {
	var r Recorder
	r.Record("left", 0, 10)    // touches query start
	r.Record("right", 20, 30)  // touches query end
	r.Record("inside", 12, 18) // strictly inside
	r.Record("point", 15, 15)  // zero-length span inside
	r.Record("edge", 10, 10)   // zero-length span on the boundary

	// Half-open semantics: spans that merely touch an endpoint of
	// [10, 20) do not intersect it; zero-length spans strictly inside do.
	got := map[string]bool{}
	for _, s := range r.Overlapping(10, 20) {
		got[s.Label] = true
	}
	if got["left"] || got["right"] {
		t.Fatalf("touching spans reported as overlapping: %v", got)
	}
	if !got["inside"] {
		t.Fatal("interior span missed")
	}
	if !got["point"] {
		t.Fatal("zero-length interior span missed")
	}
	if got["edge"] {
		t.Fatal("zero-length span at the boundary should not overlap")
	}

	// A zero-length query window intersects exactly the spans that
	// strictly contain the instant.
	if ov := r.Overlapping(5, 5); len(ov) != 1 || ov[0].Label != "left" {
		t.Fatalf("point query = %v, want just the covering span", ov)
	}
	if len(r.Overlapping(10, 10)) != 0 {
		t.Fatal("point query at a span edge should be empty")
	}
}

func TestSampleClampsNegativeStolen(t *testing.T) {
	// OSTime < TrueTime cannot happen physically (the kernel charges at
	// least the time the task progressed); a sample caught mid-update
	// must clamp to zero stolen time and be flagged, never go negative.
	s := sampleTask("odd", 7, 10*sim.Millisecond, 12*sim.Millisecond)
	if s.Stolen != 0 {
		t.Fatalf("stolen = %v, want clamped 0", s.Stolen)
	}
	if !s.Anomalous {
		t.Fatalf("anomaly not flagged: %+v", s)
	}
	if ok := sampleTask("fine", 8, 12*sim.Millisecond, 10*sim.Millisecond); ok.Anomalous || ok.Stolen != 2*sim.Millisecond {
		t.Fatalf("healthy sample misflagged: %+v", ok)
	}
}
