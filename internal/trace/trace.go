// Package trace reports where CPU time really went — the paper's warning
// to performance-tool developers made concrete.
//
// A kernel (like a real one) charges each task for the wall time it
// occupied a CPU, System Management Mode included, because SMM is
// invisible to system software. The simulator additionally knows the
// ground truth. Attribution pairs the two views per task, quantifying
// exactly the misattribution a profiler on the paper's machines would
// commit.
package trace

import (
	"fmt"

	"smistudy/internal/cluster"
	"smistudy/internal/kernel"
	"smistudy/internal/metrics"
	"smistudy/internal/sim"
)

// TaskSample is one task's two views of its CPU time.
type TaskSample struct {
	Name     string
	PID      int
	OSTime   sim.Time // what the kernel (or any profiler) reports
	TrueTime sim.Time // what the task actually got
	Stolen   sim.Time // OSTime − TrueTime: SMM residency misattributed
	// Anomalous marks a snapshot where kernel accounting lagged ground
	// truth (OSTime < TrueTime, e.g. a task sampled mid-update). Stolen
	// is clamped to zero for such samples instead of going negative.
	Anomalous bool
}

// StolenPct reports the fraction of the OS-reported time that was
// actually SMM residency, in percent.
func (s TaskSample) StolenPct() float64 {
	if s.OSTime == 0 {
		return 0
	}
	return float64(s.Stolen) / float64(s.OSTime) * 100
}

// Attribution is a node-level misattribution report.
type Attribution struct {
	Tasks       []TaskSample
	TotalOS     sim.Time
	TotalTrue   sim.Time
	TotalStolen sim.Time
	// SMMResidency is the controller's ground-truth total; the stolen
	// time across tasks is bounded by residency × busy CPUs.
	SMMResidency sim.Time
	// Anomalies counts tasks whose accounting lagged ground truth at
	// snapshot time (see TaskSample.Anomalous).
	Anomalies int
}

// Attribute builds the report for the given tasks on a node.
func Attribute(node *cluster.Node, tasks []*kernel.Task) Attribution {
	var a Attribution
	for _, t := range tasks {
		s := sampleTask(t.Name(), t.PID(), t.UTime(), t.TrueCPUTime())
		if s.Anomalous {
			a.Anomalies++
		}
		a.Tasks = append(a.Tasks, s)
		a.TotalOS += s.OSTime
		a.TotalTrue += s.TrueTime
		a.TotalStolen += s.Stolen
	}
	a.SMMResidency = node.SMM.Stats().TotalResidency
	return a
}

// sampleTask builds one TaskSample. Stolen time is OSTime − TrueTime;
// a negative difference cannot happen physically (the kernel charges at
// least the time the task progressed), so it is clamped to zero and the
// sample flagged rather than skewing totals downward.
func sampleTask(name string, pid int, osTime, trueTime sim.Time) TaskSample {
	s := TaskSample{Name: name, PID: pid, OSTime: osTime, TrueTime: trueTime}
	s.Stolen = s.OSTime - s.TrueTime
	if s.Stolen < 0 {
		s.Stolen = 0
		s.Anomalous = true
	}
	return s
}

// Table renders the report as an aligned text table.
func (a Attribution) Table() string {
	tab := metrics.NewTable("task", "pid", "os-reported", "true", "stolen", "stolen%")
	for _, s := range a.Tasks {
		tab.AddRow(s.Name, s.PID, s.OSTime.String(), s.TrueTime.String(), s.Stolen.String(), s.StolenPct())
	}
	tab.AddRow("TOTAL", "", a.TotalOS.String(), a.TotalTrue.String(), a.TotalStolen.String(),
		func() float64 {
			if a.TotalOS == 0 {
				return 0
			}
			return float64(a.TotalStolen) / float64(a.TotalOS) * 100
		}())
	return tab.String() + fmt.Sprintf("node SMM residency (ground truth): %v\n", a.SMMResidency)
}

// Span is a labeled interval on the simulation timeline.
type Span struct {
	Label      string
	Start, End sim.Time
}

// Duration reports the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Recorder collects labeled spans (phases, SMM episodes, message
// lifetimes) for timeline inspection.
type Recorder struct {
	spans []Span
}

// Record adds a completed span.
func (r *Recorder) Record(label string, start, end sim.Time) {
	r.spans = append(r.spans, Span{Label: label, Start: start, End: end})
}

// Spans returns everything recorded, in insertion order.
func (r *Recorder) Spans() []Span { return r.spans }

// Overlapping returns the spans intersecting [start, end).
func (r *Recorder) Overlapping(start, end sim.Time) []Span {
	var out []Span
	for _, s := range r.spans {
		if s.Start < end && s.End > start {
			out = append(out, s)
		}
	}
	return out
}

// TotalByLabel sums span durations per label.
func (r *Recorder) TotalByLabel() map[string]sim.Time {
	m := make(map[string]sim.Time)
	for _, s := range r.spans {
		m[s.Label] += s.Duration()
	}
	return m
}
