package trace

import (
	"bytes"
	"sort"

	"smistudy/internal/obs"
	"smistudy/internal/smm"
)

// ChromeTrace renders a Recorder's spans in the Chrome trace-event
// format (chrome://tracing, Perfetto) by replaying them through the
// observability package's streaming sink: one complete event per span,
// grouped into tracks by label in first-appearance order, under a
// single process named processName. Live runs should attach
// obs.ChromeSink to the bus directly; this path serves recorders filled
// after the fact.
func (r *Recorder) ChromeTrace(processName string) ([]byte, error) {
	// Stable track ids per label, in first-appearance order.
	tids := map[string]int32{}
	for _, s := range r.spans {
		if _, ok := tids[s.Label]; !ok {
			tids[s.Label] = int32(len(tids) + 1)
		}
	}
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	sink.NameProcess(0, -1, processName)
	spans := append([]Span(nil), r.spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		sink.Emit(obs.Event{
			Time:  s.End,
			Dur:   s.Duration(),
			Type:  obs.EvUserSpan,
			Node:  -1,
			Track: tids[s.Label],
			Name:  s.Label,
		})
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RecordSMM copies a node's ground-truth SMM episodes into the recorder
// as "smm" spans, ready for timeline export next to task spans.
func (r *Recorder) RecordSMM(episodes []smm.Episode) {
	for _, ep := range episodes {
		r.Record("smm", ep.Start, ep.Start+ep.Duration)
	}
}
