package trace

import (
	"encoding/json"
	"sort"

	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// ChromeTrace renders a Recorder's spans in the Chrome trace-event
// format (chrome://tracing, Perfetto): one complete event ("ph":"X") per
// span, grouped into tracks by label. Timestamps are microseconds, as
// the format requires.
func (r *Recorder) ChromeTrace(processName string) ([]byte, error) {
	type event struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	// Stable track ids per label, in first-appearance order.
	tids := map[string]int{}
	var order []string
	for _, s := range r.spans {
		if _, ok := tids[s.Label]; !ok {
			tids[s.Label] = len(tids) + 1
			order = append(order, s.Label)
		}
	}
	var events []event
	// Thread-name metadata events make the tracks readable.
	for _, label := range order {
		events = append(events, event{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[label],
			Args: map[string]string{"name": label},
		})
	}
	spans := append([]Span(nil), r.spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		events = append(events, event{
			Name: s.Label,
			Cat:  processName,
			Ph:   "X",
			TS:   float64(s.Start) / float64(sim.Microsecond),
			Dur:  float64(s.Duration()) / float64(sim.Microsecond),
			PID:  1,
			TID:  tids[s.Label],
		})
	}
	return json.MarshalIndent(struct {
		TraceEvents []event `json:"traceEvents"`
	}{events}, "", " ")
}

// RecordSMM copies a node's ground-truth SMM episodes into the recorder
// as "smm" spans, ready for timeline export next to task spans.
func (r *Recorder) RecordSMM(episodes []smm.Episode) {
	for _, ep := range episodes {
		r.Record("smm", ep.Start, ep.Start+ep.Duration)
	}
}
