// Package proftool is a sampling profiler for the simulated OS — the
// "current generation of performance tools" whose blind spot the paper
// calls out. It samples every online CPU on a timer, attributing each
// sample to the thread found running. Timer interrupts cannot fire in
// System Management Mode, so the profiler either loses those samples
// (sample deficit) or takes them at SMM exit and charges the stall to
// the resuming victim (misattribution). Both failure modes are
// measurable here against the simulator's ground truth.
package proftool

import (
	"sort"

	"smistudy/internal/cpu"
	"smistudy/internal/metrics"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// Mode selects what happens to samples that land in SMM.
type Mode int

const (
	// DropInSMM loses samples whose timer fires during SMM (tickless
	// NMI-based profilers): the profile silently under-covers.
	DropInSMM Mode = iota
	// DeferToExit takes the pending sample right after SMM exit,
	// charging the stall to the thread that resumes (timer-interrupt
	// profilers): the profile silently mis-covers.
	DeferToExit
)

// Config tunes the profiler.
type Config struct {
	Interval sim.Time // sampling period (default 1 ms, like perf at 1000 Hz)
	Mode     Mode
}

// Sampler is an armed profiler on one node.
type Sampler struct {
	eng  *sim.Engine
	cpu  *cpu.Model
	ctrl *smm.Controller
	cfg  Config

	running  bool
	next     *sim.Event
	tick     int
	samples  map[*cpu.Thread]int
	idle     int // samples that found a CPU idle
	lost     int // samples dropped inside SMM
	deferred int // samples taken late, right after SMM exit
	total    int

	tr   obs.Tracer // nil unless the run is traced
	node int32
}

// SetTracer attaches an observability tracer: every sampling decision —
// kept, dropped inside SMM, deferred to SMM exit — lands on the node's
// profiler timeline, so profile deficits appear next to the SMM
// episodes that caused them.
func (s *Sampler) SetTracer(tr obs.Tracer, node int) {
	s.tr = tr
	s.node = int32(node)
}

func (s *Sampler) emit(t obs.Type, a int64) {
	if s.tr == nil {
		return
	}
	s.tr.Emit(obs.Event{Time: s.eng.Now(), Type: t, Node: s.node, Track: -1, A: a})
}

// New builds a profiler over a node's processor and SMM controller.
func New(eng *sim.Engine, c *cpu.Model, ctrl *smm.Controller, cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = sim.Millisecond
	}
	return &Sampler{
		eng: eng, cpu: c, ctrl: ctrl, cfg: cfg,
		samples: make(map[*cpu.Thread]int),
	}
}

// Start arms the sampler.
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.next = s.eng.After(s.cfg.Interval, s.fire)
}

// Stop disarms the sampler.
func (s *Sampler) Stop() {
	if !s.running {
		return
	}
	s.running = false
	if s.next != nil {
		s.eng.Cancel(s.next)
		s.next = nil
	}
}

func (s *Sampler) fire() {
	s.next = nil // fired: the handle must not reach a later Cancel
	if !s.running {
		return
	}
	if s.ctrl.InSMM() {
		switch s.cfg.Mode {
		case DropInSMM:
			s.lost++
			s.emit(obs.EvProfDrop, 0)
			s.next = s.eng.After(s.cfg.Interval, s.fire)
		case DeferToExit:
			// The pending interrupt fires as soon as SMM exits; poll
			// at fine grain to approximate "immediately after exit".
			s.next = s.eng.After(100*sim.Microsecond, s.fireDeferred)
		}
		return
	}
	s.sample()
	s.next = s.eng.After(s.cfg.Interval, s.fire)
}

func (s *Sampler) fireDeferred() {
	s.next = nil // fired: the handle must not reach a later Cancel
	if !s.running {
		return
	}
	if s.ctrl.InSMM() {
		s.next = s.eng.After(100*sim.Microsecond, s.fireDeferred)
		return
	}
	s.deferred++
	s.emit(obs.EvProfDefer, 0)
	s.sample()
	s.next = s.eng.After(s.cfg.Interval, s.fire)
}

// sample takes one system-wide sample: one hit per online CPU,
// attributed to a thread on that CPU (round-robin among timesharing
// threads, like a real tick would catch whichever is on-CPU).
func (s *Sampler) sample() {
	s.cpu.Sync()
	s.tick++
	taken := 0
	for i := 0; i < s.cpu.NumLogical(); i++ {
		l := s.cpu.Logical(i)
		if !l.Online() {
			continue
		}
		s.total++
		ths := l.Threads()
		if len(ths) == 0 {
			s.idle++
			continue
		}
		s.samples[ths[s.tick%len(ths)]]++
		taken++
	}
	s.emit(obs.EvProfSample, int64(taken))
}

// TaskProfile is one thread's profile line.
type TaskProfile struct {
	Name    string
	Samples int
	// SampleShare is this thread's fraction of non-idle samples — what
	// the profiler reports.
	SampleShare float64
	// TrueShare is this thread's fraction of true CPU time — ground
	// truth.
	TrueShare float64
}

// Report is the profiler's output with ground-truth comparison.
type Report struct {
	Total    int // samples taken (one per online CPU per tick)
	Idle     int
	Lost     int // dropped inside SMM
	Deferred int // taken late at SMM exit
	Tasks    []TaskProfile
	// MaxSkew is the largest |SampleShare − TrueShare| across tasks:
	// how wrong the profile is, at worst.
	MaxSkew float64
}

// Report builds the report.
func (s *Sampler) Report() Report {
	rep := Report{Total: s.total, Idle: s.idle, Lost: s.lost, Deferred: s.deferred}
	busy := s.total - s.idle
	var trueTotal sim.Time
	type entry struct {
		th *cpu.Thread
		n  int
	}
	var entries []entry
	for th, n := range s.samples {
		entries = append(entries, entry{th, n})
		trueTotal += th.TrueTime()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].th.Name() < entries[j].th.Name() })
	for _, e := range entries {
		tp := TaskProfile{Name: e.th.Name(), Samples: e.n}
		if busy > 0 {
			tp.SampleShare = float64(e.n) / float64(busy)
		}
		if trueTotal > 0 {
			tp.TrueShare = float64(e.th.TrueTime()) / float64(trueTotal)
		}
		skew := tp.SampleShare - tp.TrueShare
		if skew < 0 {
			skew = -skew
		}
		if skew > rep.MaxSkew {
			rep.MaxSkew = skew
		}
		rep.Tasks = append(rep.Tasks, tp)
	}
	return rep
}

// Table renders the report.
func (r Report) Table() string {
	tab := metrics.NewTable("task", "samples", "sample%", "true%")
	for _, t := range r.Tasks {
		tab.AddRow(t.Name, t.Samples, t.SampleShare*100, t.TrueShare*100)
	}
	return tab.String()
}
