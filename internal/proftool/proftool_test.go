package proftool

import (
	"math"
	"strings"
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func newNode(smi smm.DriverConfig) (*sim.Engine, *cluster.Cluster) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smi))
	return e, cl
}

func TestProfilesQuietWorkload(t *testing.T) {
	e, cl := newNode(smm.DriverConfig{})
	node := cl.Nodes[0]
	s := New(e, node.CPU, node.SMM, Config{})
	s.Start()
	// Two tasks with 2:1 work ratio on plenty of CPUs.
	node.Kernel.Spawn("heavy", cpu.Profile{CPI: 1}, func(tk *kernel.Task) { tk.Compute(4.8e9) })
	node.Kernel.Spawn("light", cpu.Profile{CPI: 1}, func(tk *kernel.Task) { tk.Compute(2.4e9) })
	e.RunUntil(3 * sim.Second)
	s.Stop()
	rep := s.Report()
	if rep.Lost != 0 || rep.Deferred != 0 {
		t.Fatalf("quiet run lost/deferred samples: %+v", rep)
	}
	if len(rep.Tasks) != 2 {
		t.Fatalf("tasks profiled = %d", len(rep.Tasks))
	}
	if rep.MaxSkew > 0.05 {
		t.Fatalf("profile skew %.3f on a quiet machine, want ≈0", rep.MaxSkew)
	}
	var heavy, light TaskProfile
	for _, tp := range rep.Tasks {
		if tp.Name == "heavy" {
			heavy = tp
		} else {
			light = tp
		}
	}
	if math.Abs(heavy.SampleShare-2.0/3.0) > 0.05 {
		t.Fatalf("heavy share = %.3f, want ≈0.667", heavy.SampleShare)
	}
	if math.Abs(light.SampleShare-1.0/3.0) > 0.05 {
		t.Fatalf("light share = %.3f, want ≈0.333", light.SampleShare)
	}
}

func TestDropModeLosesSamplesInSMM(t *testing.T) {
	e, cl := newNode(smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 400, PhaseJitter: true})
	cl.StartSMI()
	node := cl.Nodes[0]
	s := New(e, node.CPU, node.SMM, Config{Mode: DropInSMM})
	s.Start()
	node.Kernel.Spawn("w", cpu.Profile{CPI: 1}, func(tk *kernel.Task) { tk.Compute(2.4e9 * 10) })
	e.RunUntil(5 * sim.Second)
	s.Stop()
	rep := s.Report()
	if rep.Lost == 0 {
		t.Fatal("no samples lost despite ~20% SMM duty cycle")
	}
	// Roughly duty-cycle fraction of ticks land in SMM: 105/(105+400).
	tickEstimate := 5000
	frac := float64(rep.Lost) / float64(tickEstimate)
	if frac < 0.1 || frac > 0.35 {
		t.Fatalf("lost fraction %.2f, want ≈0.21", frac)
	}
}

func TestDeferModeTakesLateSamples(t *testing.T) {
	e, cl := newNode(smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 500, PhaseJitter: true})
	cl.StartSMI()
	node := cl.Nodes[0]
	s := New(e, node.CPU, node.SMM, Config{Mode: DeferToExit})
	s.Start()
	node.Kernel.Spawn("victim", cpu.Profile{CPI: 1}, func(tk *kernel.Task) { tk.Compute(2.4e9 * 10) })
	e.RunUntil(5 * sim.Second)
	s.Stop()
	rep := s.Report()
	if rep.Deferred == 0 {
		t.Fatal("no deferred samples despite SMIs")
	}
	if rep.Lost != 0 {
		t.Fatal("defer mode should not drop")
	}
}

func TestIdleSamples(t *testing.T) {
	e, cl := newNode(smm.DriverConfig{})
	node := cl.Nodes[0]
	s := New(e, node.CPU, node.SMM, Config{})
	s.Start()
	e.RunUntil(time100ms())
	s.Stop()
	rep := s.Report()
	if rep.Idle != rep.Total || rep.Total == 0 {
		t.Fatalf("idle machine: %d idle of %d samples", rep.Idle, rep.Total)
	}
}

func time100ms() sim.Time { return 100 * sim.Millisecond }

func TestStartStopIdempotent(t *testing.T) {
	e, cl := newNode(smm.DriverConfig{})
	node := cl.Nodes[0]
	s := New(e, node.CPU, node.SMM, Config{})
	s.Start()
	s.Start()
	e.RunUntil(50 * sim.Millisecond)
	s.Stop()
	s.Stop()
	n := s.Report().Total
	e.RunUntil(sim.Second)
	if s.Report().Total != n {
		t.Fatal("samples after Stop")
	}
}

func TestTableRender(t *testing.T) {
	e, cl := newNode(smm.DriverConfig{})
	node := cl.Nodes[0]
	s := New(e, node.CPU, node.SMM, Config{})
	s.Start()
	node.Kernel.Spawn("job", cpu.Profile{CPI: 1}, func(tk *kernel.Task) { tk.Compute(1e9) })
	e.RunUntil(sim.Second)
	out := s.Report().Table()
	if !strings.Contains(out, "job") || !strings.Contains(out, "sample%") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestDefaultInterval(t *testing.T) {
	e, cl := newNode(smm.DriverConfig{})
	node := cl.Nodes[0]
	s := New(e, node.CPU, node.SMM, Config{Interval: 0})
	if s.cfg.Interval != sim.Millisecond {
		t.Fatal("default interval not applied")
	}
}
