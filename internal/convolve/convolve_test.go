package convolve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smistudy/internal/cache"
	"smistudy/internal/cluster"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// --- real convolution ----------------------------------------------------

func identityKernel(n int) *Matrix {
	q := NewMatrix(n, n)
	q.Set(n/2, n/2, 1)
	return q
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func TestConvolveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomMatrix(rng, 16, 20)
	r, err := Convolve(p, identityKernel(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			if r.At(i, j) != p.At(i, j) {
				t.Fatalf("identity convolution changed (%d,%d)", i, j)
			}
		}
	}
}

func TestConvolveBoxBlur(t *testing.T) {
	// All-ones 3x3 kernel over an all-ones image: interior sums are 9,
	// corners 4, edges 6.
	p := NewMatrix(5, 5)
	q := NewMatrix(3, 3)
	for i := range p.Data {
		p.Data[i] = 1
	}
	for i := range q.Data {
		q.Data[i] = 1
	}
	r, err := Convolve(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(2, 2) != 9 {
		t.Errorf("interior = %v, want 9", r.At(2, 2))
	}
	if r.At(0, 0) != 4 {
		t.Errorf("corner = %v, want 4", r.At(0, 0))
	}
	if r.At(0, 2) != 6 {
		t.Errorf("edge = %v, want 6", r.At(0, 2))
	}
}

func TestConvolveKernelValidation(t *testing.T) {
	p := NewMatrix(4, 4)
	if _, err := Convolve(p, NewMatrix(2, 3)); err == nil {
		t.Error("non-square kernel accepted")
	}
	if _, err := Convolve(p, NewMatrix(4, 4)); err == nil {
		t.Error("even kernel accepted")
	}
	if _, err := ConvolveParallel(p, identityKernel(3), 0, 2); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	prop := func(seed int64, blockSize8, threads8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomMatrix(rng, 13, 17)
		q := randomMatrix(rng, 5, 5)
		serial, err := Convolve(p, q)
		if err != nil {
			return false
		}
		par, err := ConvolveParallel(p, q, int(blockSize8%7)+1, int(threads8%9))
		if err != nil {
			return false
		}
		for i := range serial.Data {
			if math.Abs(serial.Data[i]-par.Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// --- configurations ------------------------------------------------------

func TestPaperConfigGeometry(t *testing.T) {
	cf := CacheFriendly()
	cu := CacheUnfriendly()
	if mp := cf.ImageW * cf.ImageH; mp < 450_000 || mp > 550_000 {
		t.Errorf("CF image = %d px, want ≈0.5 MP", mp)
	}
	if mp := cu.ImageW * cu.ImageH; mp != 16*1024*1024 {
		t.Errorf("CU image = %d px, want 16 MP", mp)
	}
	if cu.Blocks() != 16 {
		t.Errorf("CU blocks = %d, want 16 (1 MP subimages)", cu.Blocks())
	}
	if cf.Blocks() != 176*176 {
		t.Errorf("CF blocks = %d, want %d", cf.Blocks(), 176*176)
	}
	if cf.KernelSize != 61 || cu.KernelSize != 3 {
		t.Error("kernel sizes do not match the paper")
	}
	if cf.MaxThreads != 24 || cu.MaxThreads != 24 {
		t.Error("paper limits threads to 24")
	}
}

func TestMissRatesMatchCachegrind(t *testing.T) {
	h := cache.R410Node()
	cf := CacheFriendly().MeasuredMissRate(h)
	cu := CacheUnfriendly().MeasuredMissRate(h)
	if cf > 0.02 {
		t.Errorf("CF measured miss rate = %.3f, want ≈0.01 or below", cf)
	}
	if cu < 0.55 || cu > 0.85 {
		t.Errorf("CU measured miss rate = %.3f, want ≈0.70", cu)
	}
}

func TestProfileDerivation(t *testing.T) {
	h := cache.R410Node()
	cu := CacheUnfriendly().Profile(h)
	if cu.MemMissRate <= cu.MissRate {
		t.Error("CU bandwidth traffic should exceed stalling misses (prefetch)")
	}
	if cu.MissRateShared < cu.MissRate {
		t.Error("shared miss rate below solo")
	}
	cf := CacheFriendly().Profile(h)
	if cf.MissRate >= cu.MissRate {
		t.Error("CF should stall less than CU")
	}
}

// --- simulator workload --------------------------------------------------

func runOn(t *testing.T, cfg Config, cpus int, smi smm.DriverConfig, seed int64) Result {
	t.Helper()
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.R410(smi))
	if err := cl.Nodes[0].Kernel.OnlineCPUs(cpus); err != nil {
		t.Fatal(err)
	}
	cl.StartSMI()
	return RunSim(cl, cfg)
}

func fastCF() Config {
	c := CacheFriendly()
	c.Passes = 5
	return c
}

func fastCU() Config {
	c := CacheUnfriendly()
	c.Passes = 5
	return c
}

func TestRunSimCompletes(t *testing.T) {
	res := runOn(t, fastCF(), 4, smm.DriverConfig{}, 1)
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if len(res.PassTimes) != 5 {
		t.Fatalf("pass times = %d, want 5", len(res.PassTimes))
	}
	if res.Threads != 24 {
		t.Fatalf("threads = %d, want 24", res.Threads)
	}
	if res.MeanPass() <= 0 {
		t.Fatal("mean pass non-positive")
	}
}

func TestCUUsesOneThreadPerBlock(t *testing.T) {
	res := runOn(t, fastCU(), 4, smm.DriverConfig{}, 1)
	if res.Threads != 16 {
		t.Fatalf("CU threads = %d, want 16 (one per megapixel block)", res.Threads)
	}
}

func TestMoreCPUsFaster(t *testing.T) {
	one := runOn(t, fastCF(), 1, smm.DriverConfig{}, 1).Elapsed
	four := runOn(t, fastCF(), 4, smm.DriverConfig{}, 1).Elapsed
	if four >= one {
		t.Fatalf("4 CPUs (%v) not faster than 1 (%v)", four, one)
	}
	r := float64(one) / float64(four)
	if r < 3 {
		t.Fatalf("CF speedup 1→4 CPUs = %.2f, want ≈4", r)
	}
}

func TestCUBandwidthBoundNoHTTBenefit(t *testing.T) {
	four := runOn(t, fastCU(), 4, smm.DriverConfig{}, 1).Elapsed
	eight := runOn(t, fastCU(), 8, smm.DriverConfig{}, 1).Elapsed
	gain := float64(four)/float64(eight) - 1
	if gain > 0.15 {
		t.Fatalf("CU gained %.0f%% from HTT; paper says it did not benefit greatly", gain*100)
	}
}

func TestCFLittleHTTBenefit(t *testing.T) {
	four := runOn(t, fastCF(), 4, smm.DriverConfig{}, 1).Elapsed
	eight := runOn(t, fastCF(), 8, smm.DriverConfig{}, 1).Elapsed
	gain := float64(four)/float64(eight) - 1
	if gain > 0.25 {
		t.Fatalf("CF gained %.0f%% from HTT; paper reports minimal benefit", gain*100)
	}
	if gain < -0.1 {
		t.Fatalf("CF slowed down %.0f%% with HTT", -gain*100)
	}
}

func TestFrequentLongSMIsHurt(t *testing.T) {
	quiet := runOn(t, fastCF(), 4, smm.DriverConfig{}, 1).Elapsed
	noisy := runOn(t, fastCF(), 4, smm.DriverConfig{
		Level: smm.SMMLong, PeriodJiffies: 200, PhaseJitter: true,
	}, 1).Elapsed
	slowdown := float64(noisy)/float64(quiet) - 1
	// The driver re-arms after each handler: cycle ≈ 105+200 ms →
	// ≈34% duty cycle → ≈50% slowdown.
	if slowdown < 0.35 {
		t.Fatalf("long SMIs at 200ms cost only %.0f%%, want ≈50%%", slowdown*100)
	}
}

func TestInfrequentSMIsNegligible(t *testing.T) {
	quiet := runOn(t, fastCF(), 4, smm.DriverConfig{}, 1).Elapsed
	rare := runOn(t, fastCF(), 4, smm.DriverConfig{
		Level: smm.SMMLong, PeriodJiffies: 1500, PhaseJitter: true,
	}, 1).Elapsed
	slowdown := float64(rare)/float64(quiet) - 1
	if slowdown > 0.15 {
		t.Fatalf("1500ms-interval SMIs cost %.0f%%, paper shows minimal impact beyond 600ms", slowdown*100)
	}
}

func TestBlockOps(t *testing.T) {
	c := Config{SubW: 4, SubH: 4, KernelSize: 3}
	if got := c.BlockOps(); got != 4*4*9*2 {
		t.Fatalf("BlockOps = %v", got)
	}
}
