// Package convolve provides the paper's "Convolve" application kernel in
// two forms:
//
//   - A real, tested 2-D convolution library (serial and parallel), so
//     downstream users get an actual working kernel rather than a stub.
//   - A simulator workload that executes the paper's exact experimental
//     configurations — cache-friendly (CF: 0.5-megapixel image, 4×4-pixel
//     subimages, 61×61 kernel) and cache-unfriendly (CU: 16-megapixel
//     image, 1-megapixel subimages, 3×3 kernel) — on a simulated node,
//     with per-thread cache behaviour derived from the block geometry
//     through internal/cache the way the authors characterized theirs
//     with cachegrind (~1 % vs ~70 % miss rates).
package convolve

import (
	"fmt"

	"smistudy/internal/cache"
	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/sim"
)

// ---------------------------------------------------------------------
// Real convolution (functional library)
// ---------------------------------------------------------------------

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Convolve computes R = P * Q: for each R[i,j], Q is superimposed on P
// centered at (i,j), products are summed; out-of-range P elements read as
// zero. Q must be square with odd size.
func Convolve(p, q *Matrix) (*Matrix, error) {
	if err := checkKernel(q); err != nil {
		return nil, err
	}
	r := NewMatrix(p.Rows, p.Cols)
	convolveBlock(p, q, r, 0, 0, p.Rows, p.Cols)
	return r, nil
}

// ConvolveParallel computes R = P * Q splitting R into blockSize×blockSize
// blocks processed by up to maxThreads concurrent goroutines, mirroring
// the paper's parallelization (one worker per block, no data
// dependencies: every thread writes only its own block).
func ConvolveParallel(p, q *Matrix, blockSize, maxThreads int) (*Matrix, error) {
	if err := checkKernel(q); err != nil {
		return nil, err
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("convolve: blockSize = %d", blockSize)
	}
	if maxThreads <= 0 {
		maxThreads = 1
	}
	r := NewMatrix(p.Rows, p.Cols)
	type block struct{ i0, j0 int }
	var blocks []block
	for i := 0; i < p.Rows; i += blockSize {
		for j := 0; j < p.Cols; j += blockSize {
			blocks = append(blocks, block{i, j})
		}
	}
	sem := make(chan struct{}, maxThreads)
	done := make(chan struct{}, len(blocks))
	for _, b := range blocks {
		b := b
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; done <- struct{}{} }()
			h := min(blockSize, p.Rows-b.i0)
			w := min(blockSize, p.Cols-b.j0)
			convolveBlock(p, q, r, b.i0, b.j0, h, w)
		}()
	}
	for range blocks {
		<-done
	}
	return r, nil
}

func checkKernel(q *Matrix) error {
	if q.Rows != q.Cols {
		return fmt.Errorf("convolve: kernel %dx%d not square", q.Rows, q.Cols)
	}
	if q.Rows%2 == 0 {
		return fmt.Errorf("convolve: kernel size %d not odd", q.Rows)
	}
	return nil
}

func convolveBlock(p, q, r *Matrix, i0, j0, h, w int) {
	half := q.Rows / 2
	for i := i0; i < i0+h; i++ {
		for j := j0; j < j0+w; j++ {
			sum := 0.0
			for ki := 0; ki < q.Rows; ki++ {
				pi := i + ki - half
				if pi < 0 || pi >= p.Rows {
					continue
				}
				for kj := 0; kj < q.Cols; kj++ {
					pj := j + kj - half
					if pj < 0 || pj >= p.Cols {
						continue
					}
					sum += p.At(pi, pj) * q.At(ki, kj)
				}
			}
			r.Set(i, j, sum)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Simulator workload
// ---------------------------------------------------------------------

// Config describes one Convolve experiment configuration on the
// simulated node.
type Config struct {
	Name       string
	ImageW     int // pixels
	ImageH     int
	SubW       int // subimage block edge (pixels)
	SubH       int
	KernelSize int // odd
	MaxThreads int // threads scheduled simultaneously (paper: 24)
	// Passes repeats the whole convolution so a run spans many SMI
	// periods (the paper's runs are long relative to 50–1500 ms
	// intervals).
	Passes int
	// SpawnOps models per-block thread spawn + join overhead.
	SpawnOps float64
}

// CacheFriendly is the paper's CF configuration: 0.5-megapixel image,
// 4×4-pixel subimages, 61×61 kernel (~1 % cache misses).
func CacheFriendly() Config {
	return Config{
		Name:   "CacheFriendly",
		ImageW: 704, ImageH: 704, // ≈0.5 MP
		SubW: 4, SubH: 4,
		KernelSize: 61,
		MaxThreads: 24,
		Passes:     40,
		SpawnOps:   30e3,
	}
}

// CacheUnfriendly is the paper's CU configuration: 16-megapixel image,
// 1-megapixel subimages, 3×3 kernel (~70 % cache misses).
func CacheUnfriendly() Config {
	return Config{
		Name:   "CacheUnfriendly",
		ImageW: 4096, ImageH: 4096, // 16 MP
		SubW: 1024, SubH: 1024, // 1 MP
		KernelSize: 3,
		MaxThreads: 24,
		Passes:     40,
		SpawnOps:   30e3,
	}
}

// Blocks reports the number of subimage blocks per pass.
func (c Config) Blocks() int {
	bx := (c.ImageW + c.SubW - 1) / c.SubW
	by := (c.ImageH + c.SubH - 1) / c.SubH
	return bx * by
}

// BlockOps reports the compute operations of one block (two ops — one
// multiply, one add — per kernel tap per pixel).
func (c Config) BlockOps() float64 {
	return float64(c.SubW) * float64(c.SubH) * float64(c.KernelSize) * float64(c.KernelSize) * 2
}

// Access summarizes a worker thread's memory behaviour for the cache
// model: the hot set is the input region the block reads (subimage plus
// kernel halo), the kernel matrix, and the output block.
func (c Config) Access() cache.Access {
	halo := c.KernelSize - 1
	inBytes := int64(c.SubW+halo) * int64(c.SubH+halo) * 8
	kernBytes := int64(c.KernelSize) * int64(c.KernelSize) * 8
	outBytes := int64(c.SubW) * int64(c.SubH) * 8
	// Small blocks walk the same halo over and over (high temporal
	// reuse, unit stride); megapixel blocks stream (line stride, little
	// reuse beyond the kernel window).
	reuse := 8.0
	stride := int64(8)
	if outBytes > 1<<20 {
		reuse = 0.1
		stride = 64
	}
	return cache.Access{WorkingSet: inBytes + kernBytes + outBytes, Stride: stride, Reuse: reuse}
}

// prefetchLeak is the fraction of measured cache misses that actually
// stall the pipeline: hardware prefetchers and out-of-order execution
// hide the rest on the sequential access patterns convolution uses.
const prefetchLeak = 0.15

// Profile derives the cpu workload profile of a worker thread on
// hierarchy h: stalling misses from the cachegrind-style measured rate,
// total memory traffic charged against the bandwidth ceiling in full.
func (c Config) Profile(h cache.Hierarchy) cpu.Profile {
	a := c.Access()
	measured := h.MissRate(a)
	shared := h.SharedMissRate(a, 2)
	return cpu.Profile{
		CPI:            1,
		MissRate:       measured * prefetchLeak,
		MissRateShared: shared * prefetchLeak,
		MemMissRate:    measured,
	}
}

// MeasuredMissRate reports the cachegrind-equivalent miss rate of the
// configuration on hierarchy h.
func (c Config) MeasuredMissRate(h cache.Hierarchy) float64 {
	return h.MissRate(c.Access())
}

// Result is one simulated Convolve run.
type Result struct {
	Config    Config
	Elapsed   sim.Time   // total timed section (all passes)
	PassTimes []sim.Time // per-pass durations, for variance analysis
	Threads   int        // workers actually used per pass
}

// MeanPass reports the mean per-pass duration.
func (r Result) MeanPass() sim.Time {
	if len(r.PassTimes) == 0 {
		return 0
	}
	var sum sim.Time
	for _, p := range r.PassTimes {
		sum += p
	}
	return sum / sim.Time(len(r.PassTimes))
}

// RunSim executes the workload on the first node of cluster cl, running
// the engine until the workload completes (the engine is then stopped;
// pending SMI events are abandoned). SMI drivers must be armed by the
// caller beforehand if desired.
func RunSim(cl *cluster.Cluster, cfg Config) Result {
	node := cl.Nodes[0]
	res := Result{Config: cfg}
	prof := cfg.Profile(cache.R410Node())

	blocks := cfg.Blocks()
	workers := cfg.MaxThreads
	if workers > blocks {
		workers = blocks
	}
	res.Threads = workers

	k := node.Kernel
	driver := k.Spawn("convolve-driver", cpu.Profile{CPI: 1}, func(t *kernel.Task) {
		for pass := 0; pass < cfg.Passes; pass++ {
			start := t.Gettime()
			ws := make([]*kernel.Task, workers)
			for wi := 0; wi < workers; wi++ {
				share := blocks / workers
				if wi < blocks%workers {
					share++
				}
				ops := float64(share) * (cfg.BlockOps() + cfg.SpawnOps)
				ws[wi] = k.Spawn(fmt.Sprintf("conv-w%d", wi), prof, func(wt *kernel.Task) {
					// A few chunks per pass keeps scheduling dynamics
					// observable without flooding the event queue.
					const chunks = 4
					for c := 0; c < chunks; c++ {
						wt.Compute(ops / chunks)
					}
				})
			}
			for _, w := range ws {
				t.Join(w)
			}
			res.PassTimes = append(res.PassTimes, t.Gettime()-start)
		}
		cl.Eng.Stop()
	})
	cl.Eng.Run()
	if ok, end := driver.Exited(); ok {
		res.Elapsed = end
	} else {
		panic("convolve: driver never finished")
	}
	return res
}
