package stats

import (
	"math"
	"testing"
)

func TestSampleMatchesClosedForm(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if math.Abs(s.StdDev()-2.1380899) > 1e-6 {
		t.Fatalf("stddev = %v", s.StdDev())
	}
	if s.CI95() <= 0 {
		t.Fatalf("ci95 = %v", s.CI95())
	}
}

func TestSampleMergeEqualsConcat(t *testing.T) {
	a := Summarize([]float64{1, 2, 3})
	b := Summarize([]float64{10, 20})
	all := Summarize([]float64{1, 2, 3, 10, 20})
	a.Merge(b)
	if a.N() != all.N() || math.Abs(a.Mean()-all.Mean()) > 1e-12 || math.Abs(a.StdDev()-all.StdDev()) > 1e-9 {
		t.Fatalf("merge: %v vs %v", a.String(), all.String())
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatalf("RelErr(110,100) = %v", RelErr(110, 100))
	}
	if RelErr(90, 100) != 0.1 {
		t.Fatalf("RelErr(90,100) = %v", RelErr(90, 100))
	}
	if !math.IsNaN(RelErr(1, 0)) {
		t.Fatal("want NaN for zero expectation")
	}
}

func TestInversions(t *testing.T) {
	down := []float64{10, 8, 8.05, 6, 5}
	if n := Inversions(down, Decreasing, 0.01); n != 0 {
		t.Fatalf("within-slack wobble counted: %d", n)
	}
	if n := Inversions(down, Decreasing, 0); n != 1 {
		t.Fatalf("zero-slack wobble not counted: %d", n)
	}
	if n := Inversions(down, Increasing, 0); n != 3 {
		t.Fatalf("increasing inversions = %d", n)
	}
}

func TestMonotone(t *testing.T) {
	if !Monotone([]float64{1, 2, 1.99, 3, 4}, Increasing, 0.02) {
		t.Fatal("jittered increasing series rejected")
	}
	if Monotone([]float64{1, 2, 3, 2.5}, Increasing, 0.02) {
		t.Fatal("reversed endpoint accepted")
	}
	if Monotone([]float64{4, 1, 4, 1, 4.1}, Increasing, 0) {
		t.Fatal("scrambled middle accepted")
	}
	if !Monotone([]float64{5}, Increasing, 0) || !Monotone(nil, Decreasing, 0) {
		t.Fatal("degenerate series must pass")
	}
}

func TestSameSign(t *testing.T) {
	if !SameSign(10, 3, 2) || SameSign(10, -3, 2) || !SameSign(0.5, -0.5, 2) {
		t.Fatal("SameSign misjudged")
	}
}
