package stats

import (
	"math"
	"sort"
)

// This file holds the distance and clustering primitives behind the
// report pipeline's cross-run similarity analysis: featurized sweep
// cells are z-scored, clustered bottom-up, and the resulting partition
// is compared against the partitions each scenario dimension induces —
// a dimension whose partition agrees with the clusters is one the
// system actually responds to; one that cross-cuts them is noise.

// Euclid reports the Euclidean distance between two equal-length
// vectors.
func Euclid(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// ZScoreColumns normalizes each column of the row-major matrix in
// place to zero mean and unit variance; constant columns become all
// zeros (they carry no distance information either way).
func ZScoreColumns(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	cols := len(rows[0])
	for c := 0; c < cols; c++ {
		var s Sample
		for _, r := range rows {
			s.Add(r[c])
		}
		mean, sd := s.Mean(), s.StdDev()
		for _, r := range rows {
			if sd == 0 {
				r[c] = 0
				continue
			}
			r[c] = (r[c] - mean) / sd
		}
	}
}

// PairwiseDistances builds the symmetric Euclidean distance matrix of
// the given row vectors.
func PairwiseDistances(rows [][]float64) [][]float64 {
	n := len(rows)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := Euclid(rows[i], rows[j])
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

// MedianPositive reports the median of the strictly positive entries
// in the upper triangle of a distance matrix — the natural scale for a
// clustering threshold. Zero when every pair coincides.
func MedianPositive(d [][]float64) float64 {
	var vals []float64
	for i := range d {
		for j := i + 1; j < len(d); j++ {
			if d[i][j] > 0 {
				vals = append(vals, d[i][j])
			}
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// ClusterAgglomerative merges points bottom-up with single linkage
// until the closest pair of clusters is farther than threshold, and
// returns a cluster index per point (indices are dense, ordered by
// first member). Deterministic: ties break toward the lowest pair of
// point indices.
func ClusterAgglomerative(d [][]float64, threshold float64) []int {
	n := len(d)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i
	}
	for {
		// Closest pair of distinct clusters under single linkage.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if assign[i] == assign[j] {
					continue
				}
				if d[i][j] < best {
					best, bi, bj = d[i][j], assign[i], assign[j]
				}
			}
		}
		if bi < 0 || best > threshold {
			break
		}
		// Merge the higher index into the lower.
		lo, hi := bi, bj
		if lo > hi {
			lo, hi = hi, lo
		}
		for k := range assign {
			if assign[k] == hi {
				assign[k] = lo
			}
		}
	}
	// Densify cluster ids in order of first appearance.
	next := 0
	remap := map[int]int{}
	for i, a := range assign {
		if _, ok := remap[a]; !ok {
			remap[a] = next
			next++
		}
		assign[i] = remap[assign[i]]
	}
	return assign
}

// RandIndex reports the agreement between two partitions of the same
// point set as the fraction of point pairs both partitions classify the
// same way (together in both, or apart in both). 1 means identical
// partitions; independent partitions score near the chance level. One
// point (no pairs) scores 1.
func RandIndex(a, b []int) float64 {
	n := len(a)
	if n < 2 {
		return 1
	}
	agree, pairs := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return float64(agree) / float64(pairs)
}

// PartitionOf converts arbitrary string labels into a dense partition
// vector (cluster ids ordered by first appearance), so categorical
// scenario-dimension values can be compared with RandIndex.
func PartitionOf(labels []string) []int {
	ids := map[string]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := ids[l]
		if !ok {
			id = len(ids)
			ids[l] = id
		}
		out[i] = id
	}
	return out
}
