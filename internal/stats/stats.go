// Package stats provides the per-cell statistics the fidelity harness
// computes across repeated seeds: sample summaries (mean, 95% CI via the
// Welford streams in internal/metrics), relative error against an
// expectation, and the ordering/monotonicity predicates the paper's
// qualitative claims reduce to (slowdown grows with SMI frequency,
// impact grows with node count, scores grow with SMI interval).
//
// Hunold & Carpen-Amarie's point — benchmark claims need explicit
// acceptance criteria over repeated runs, not single-shot numbers — is
// the reason this package exists as a seam of its own: every judgment
// smivalidate makes goes through a Sample, never through one raw value.
package stats

import (
	"fmt"
	"math"

	"smistudy/internal/metrics"
)

// Sample accumulates repeated observations of one measured cell.
type Sample struct {
	s metrics.Stream
}

// Add feeds one observation.
func (s *Sample) Add(x float64) { s.s.Add(x) }

// AddAll feeds every observation.
func (s *Sample) AddAll(xs ...float64) {
	for _, x := range xs {
		s.s.Add(x)
	}
}

// Merge folds another sample into s (order-independent Welford combine).
func (s *Sample) Merge(o Sample) { s.s.Merge(o.s) }

// N reports the number of observations.
func (s *Sample) N() int { return s.s.N() }

// Mean reports the arithmetic mean.
func (s *Sample) Mean() float64 { return s.s.Mean() }

// StdDev reports the sample standard deviation.
func (s *Sample) StdDev() float64 { return s.s.StdDev() }

// CI95 reports the half-width of the normal-approximation 95%
// confidence interval on the mean (zero below two observations).
func (s *Sample) CI95() float64 { return s.s.CI95() }

// Summarize builds a Sample from a slice.
func Summarize(xs []float64) Sample {
	var s Sample
	s.AddAll(xs...)
	return s
}

// RelErr reports |got−want| / |want|; NaN when want is zero.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.NaN()
	}
	return math.Abs(got-want) / math.Abs(want)
}

// String renders the sample as "mean ± ci95 (n=k)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}

// Direction selects the sense of an ordering predicate.
type Direction int

// The two ordering senses.
const (
	Increasing Direction = +1
	Decreasing Direction = -1
)

// Inversions counts adjacent pairs of xs that move against dir by more
// than slackRel (relative to the earlier point). A clean monotone series
// scores zero; slack absorbs measurement jitter without letting a real
// trend reversal pass.
func Inversions(xs []float64, dir Direction, slackRel float64) int {
	n := 0
	for i := 1; i < len(xs); i++ {
		prev, cur := xs[i-1], xs[i]
		slack := slackRel * math.Abs(prev)
		switch dir {
		case Increasing:
			if cur < prev-slack {
				n++
			}
		case Decreasing:
			if cur > prev+slack {
				n++
			}
		}
	}
	return n
}

// Monotone reports whether xs moves in dir end to end, tolerating
// per-step jitter up to slackRel but requiring the endpoints to respect
// the direction strictly — and requiring the series to end at its
// extreme (within slack): a curve that climbs and then falls off its
// peak is not a reproduction of a monotone trend.
func Monotone(xs []float64, dir Direction, slackRel float64) bool {
	if len(xs) < 2 {
		return true
	}
	first, last := xs[0], xs[len(xs)-1]
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	switch dir {
	case Increasing:
		if last <= first || last < hi-slackRel*math.Abs(hi) {
			return false
		}
	case Decreasing:
		if last >= first || last > lo+slackRel*math.Abs(lo) {
			return false
		}
	}
	// Allow at most a quarter of the steps to invert within slack — a
	// figure with the right endpoints but a scrambled middle is not a
	// reproduction of a monotone curve.
	return Inversions(xs, dir, slackRel) <= len(xs)/4
}

// SameSign reports whether two percentage effects agree in direction,
// treating anything within ±eps of zero on both sides as agreement
// (near-zero cells have no meaningful direction).
func SameSign(a, b, eps float64) bool {
	if math.Abs(a) < eps && math.Abs(b) < eps {
		return true
	}
	return a*b > 0
}
