package stats

import (
	"math"
	"testing"
)

func TestEuclid(t *testing.T) {
	if d := Euclid([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("Euclid = %v, want 5", d)
	}
}

func TestZScoreColumns(t *testing.T) {
	rows := [][]float64{{1, 10, 7}, {2, 10, 7}, {3, 10, 7}}
	ZScoreColumns(rows)
	// Column 0 normalizes to mean 0; constant columns zero out.
	var sum float64
	for _, r := range rows {
		sum += r[0]
		if r[1] != 0 || r[2] != 0 {
			t.Fatalf("constant column not zeroed: %v", r)
		}
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("z-scored column sums to %v, want 0", sum)
	}
}

func TestClusterAgglomerative(t *testing.T) {
	// Two tight groups far apart, one straggler.
	rows := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, // group A
		{10, 10}, {10.1, 10}, // group B
		{100, 100}, // straggler
	}
	d := PairwiseDistances(rows)
	got := ClusterAgglomerative(d, 1.0)
	want := []int{0, 0, 0, 1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clusters = %v, want %v", got, want)
		}
	}
	// Threshold below every distance: all singletons, dense ids.
	got = ClusterAgglomerative(d, 0.01)
	for i, c := range got {
		if c != i {
			t.Fatalf("singleton clustering = %v", got)
		}
	}
	// Threshold above every distance: one cluster.
	got = ClusterAgglomerative(d, 1e6)
	for _, c := range got {
		if c != 0 {
			t.Fatalf("merged clustering = %v", got)
		}
	}
}

func TestMedianPositive(t *testing.T) {
	d := PairwiseDistances([][]float64{{0}, {1}, {3}})
	// Distances: 1, 3, 2 → sorted 1 2 3 → median 2.
	if m := MedianPositive(d); m != 2 {
		t.Fatalf("MedianPositive = %v, want 2", m)
	}
	if m := MedianPositive([][]float64{{0}}); m != 0 {
		t.Fatalf("MedianPositive(singleton) = %v, want 0", m)
	}
}

func TestRandIndex(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if r := RandIndex(a, []int{1, 1, 0, 0}); r != 1 {
		t.Fatalf("relabeled identical partitions score %v, want 1", r)
	}
	if r := RandIndex(a, []int{0, 1, 0, 1}); r != 2.0/6.0 {
		t.Fatalf("cross-cutting partition scores %v, want 1/3", r)
	}
	if r := RandIndex([]int{0}, []int{5}); r != 1 {
		t.Fatalf("single point scores %v, want 1", r)
	}
}

func TestPartitionOf(t *testing.T) {
	got := PartitionOf([]string{"8", "64", "8", "512", "64"})
	want := []int{0, 1, 0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PartitionOf = %v, want %v", got, want)
		}
	}
}
