package nas

import (
	"fmt"

	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/mpi"
)

// problem holds a benchmark instance's calibrated parameters.
type problem struct {
	spec     Spec
	profile  cpu.Profile // workload profile of every rank
	totalOps float64     // total compute across all ranks (model ops)
	iters    int         // timed iterations
	// FT: total grid bytes moved per transpose (16 B per complex
	// point); IS: total key bytes redistributed per iteration.
	gridBytes int64
	// BT/LU/SP/MG: bytes of one face exchange for a q×q process grid
	// (MG passes q=1 and scales by level).
	faceBytes func(q int) int
	// CG: bytes of one vector-segment exchange (whole vector).
	vecBytes int
	// MG: multigrid levels per V-cycle.
	levels int
	// run executes the skeleton on one rank and returns its iteration
	// count (used as a cheap cross-rank verification).
	run func(r *mpi.Rank, t *kernel.Task, p int) int
}

// Calibration constants.
//
// Total operation counts are fixed so that a single-rank run on the
// Wyeast node preset (2.27 GHz, miss penalty 180 cycles) lands on the
// paper's SMM-0 single-rank baselines (Tables 1–3, leftmost column):
//
//	ops = T_paper(1 rank) × BaseHz / (CPI + MissRate × MissPenalty)
//
// FT class C has no single-rank measurement in the paper (marked “-”);
// its baseline is extrapolated from class B by the 4× per-iteration work
// ratio (512³ vs 512×256×256 grid, same 20 iterations).
const (
	wyeastHz      = 2.27e9
	wyeastPenalty = 180
)

// Workload profiles. EP is register-resident; BT sweeps block
// tridiagonals with decent locality; FT streams the whole grid through
// butterflies and transposes. Shared-cache miss rates (HTT siblings
// co-resident on a physical core) are ~1.5× the solo rates.
var (
	epProfile = cpu.Profile{CPI: 1, MissRate: 0.0005, MissRateShared: 0.0008}
	btProfile = cpu.Profile{CPI: 1, MissRate: 0.004, MissRateShared: 0.006}
	ftProfile = cpu.Profile{CPI: 1, MissRate: 0.008, MissRateShared: 0.012}
)

func soloRate(p cpu.Profile) float64 {
	return wyeastHz / (p.CPI + p.MissRate*wyeastPenalty)
}

// paper single-rank SMM-0 seconds (Tables 1–3; S and FT-C calibrated for
// the simulator).
var soloSeconds = map[Spec]float64{
	{EP, ClassS}: 0.10,
	{EP, ClassA}: 23.12,
	{EP, ClassB}: 92.72,
	{EP, ClassC}: 370.67,
	{BT, ClassS}: 0.30,
	{BT, ClassA}: 86.87,
	{BT, ClassB}: 369.70,
	{BT, ClassC}: 1585.75,
	{FT, ClassS}: 0.15,
	{FT, ClassA}: 7.64,
	{FT, ClassB}: 95.48,
	{FT, ClassC}: 381.92, // extrapolated: 4× class B
}

var ftIters = map[Class]int{ClassS: 2, ClassA: 6, ClassB: 20, ClassC: 20}

// FT grid bytes: 16 bytes per complex grid point.
var ftGridBytes = map[Class]int64{
	ClassS: 64 * 64 * 64 * 16,
	ClassA: 256 * 256 * 128 * 16,
	ClassB: 512 * 256 * 256 * 16,
	ClassC: 512 * 512 * 512 * 16,
}

// BT grid edge N per class; a face exchange moves N²/q cells × 5 doubles.
var btGridN = map[Class]int{ClassS: 12, ClassA: 64, ClassB: 102, ClassC: 162}

const btIters = 200
const btItersS = 20

// Classes lists the problem classes the paper measures.
var Classes = []Class{ClassA, ClassB, ClassC}

// Benchmarks lists the benchmarks the paper measures.
var Benchmarks = []Benchmark{EP, BT, FT}

// lookup resolves a Spec into its calibrated problem.
func lookup(spec Spec) (*problem, error) {
	secs, ok := soloSeconds[spec]
	if !ok {
		return lookupExtended(spec)
	}
	pb := &problem{spec: spec}
	switch spec.Bench {
	case EP:
		pb.profile = epProfile
		pb.iters = 16
		pb.run = pb.runEP
	case BT:
		pb.profile = btProfile
		pb.iters = btIters
		if spec.Class == ClassS {
			pb.iters = btItersS
		}
		n := btGridN[spec.Class]
		pb.faceBytes = func(q int) int { return n * n * 5 * 8 / q }
		pb.run = pb.runBT
	case FT:
		pb.profile = ftProfile
		pb.iters = ftIters[spec.Class]
		pb.gridBytes = ftGridBytes[spec.Class]
		pb.run = pb.runFT
	default:
		return nil, fmt.Errorf("nas: unknown benchmark %q", spec.Bench)
	}
	pb.totalOps = secs * soloRate(pb.profile)
	return pb, nil
}

// TotalOps reports the calibrated total model operations of a spec, or 0
// for an unknown spec.
func TotalOps(spec Spec) float64 {
	pb, err := lookup(spec)
	if err != nil {
		return 0
	}
	return pb.totalOps
}

// Profile reports the workload profile a benchmark's ranks use.
func Profile(b Benchmark) cpu.Profile {
	switch b {
	case EP:
		return epProfile
	case BT, LU, SP:
		return btProfile
	case CG:
		return cgProfile
	case MG:
		return mgProfile
	case IS:
		return isProfile
	default:
		return ftProfile
	}
}
