package nas

import "math"

// This file implements the actual mathematics of the NPB EP benchmark —
// the linear congruential generator and Gaussian-pair counting from the
// NPB specification — so the repository contains a real, verifiable EP
// kernel alongside the timing skeleton. The skeleton drives the cost
// model for large classes; this kernel computes true results for sizes
// where running the arithmetic is practical (and is how the per-batch
// structure of runEP was derived).

// lcgA is the NPB multiplier a = 5^13; the modulus is 2^46.
const lcgA = 1220703125 // 5^13

const (
	lcgMod  = int64(1) << 46
	lcgMask = lcgMod - 1
)

// LCG is the NPB pseudorandom stream: x_{k+1} = a·x_k mod 2^46, with
// uniform deviates x_k / 2^46 in (0,1).
type LCG struct {
	x int64
}

// DefaultEPSeed is the benchmark's specified seed s = 271828183.
const DefaultEPSeed = 271828183

// NewLCG starts a stream at seed (0 < seed < 2^46, odd for full period).
func NewLCG(seed int64) *LCG {
	return &LCG{x: seed & lcgMask}
}

// Next returns the next uniform deviate in (0,1).
func (g *LCG) Next() float64 {
	g.x = mulMod46(lcgA, g.x)
	return float64(g.x) / float64(lcgMod)
}

// Skip advances the stream by n steps in O(log n) (the NPB "randlc with
// precomputed powers" trick that makes EP embarrassingly parallel: each
// rank jumps straight to its block of the stream).
func (g *LCG) Skip(n int64) {
	a := int64(lcgA)
	for n > 0 {
		if n&1 == 1 {
			g.x = mulMod46(a, g.x)
		}
		a = mulMod46(a, a)
		n >>= 1
	}
}

// mulMod46 computes (a*b) mod 2^46 without overflow, splitting a into
// 23-bit halves exactly like the reference randlc.
func mulMod46(a, b int64) int64 {
	const half = int64(1) << 23
	a1 := a >> 23
	a2 := a & (half - 1)
	// t = a1*b mod 2^23 gives the high part's contribution.
	t := (a1 * b) & (half - 1)
	return (t<<23 + a2*b) & lcgMask
}

// EPResult is the outcome of the real EP computation.
type EPResult struct {
	Pairs    int64     // pairs examined
	Accepted int64     // pairs inside the unit circle
	SX, SY   float64   // sums of the Gaussian deviates
	Q        [10]int64 // annulus counts by max(|X|,|Y|)
}

// EPKernel generates `pairs` uniform pairs from the NPB stream starting
// at seed, applies the Marsaglia polar acceptance test, and accumulates
// the Gaussian sums and annulus counts exactly as EP specifies.
func EPKernel(seed int64, pairs int64) EPResult {
	return epFrom(NewLCG(seed), pairs)
}

// EPKernelParallel partitions the pair stream across `ranks` workers
// using LCG skipping (each rank owns a contiguous block, as the MPI code
// does) and merges their results. It must agree exactly with the serial
// kernel — the property the benchmark's verification stage relies on.
func EPKernelParallel(seed, pairs int64, ranks int) EPResult {
	if ranks < 1 {
		ranks = 1
	}
	var total EPResult
	total.Pairs = pairs
	per := pairs / int64(ranks)
	rem := pairs % int64(ranks)
	var offset int64
	results := make([]EPResult, ranks)
	done := make(chan int, ranks)
	for r := 0; r < ranks; r++ {
		n := per
		if int64(r) < rem {
			n++
		}
		start := offset
		offset += n
		r := r
		go func(start, n int64) {
			g := NewLCG(seed)
			g.Skip(2 * start) // two deviates per pair
			results[r] = epFrom(g, n)
			done <- r
		}(start, n)
	}
	for range results {
		<-done
	}
	for _, sub := range results {
		total.Accepted += sub.Accepted
		total.SX += sub.SX
		total.SY += sub.SY
		for i := range total.Q {
			total.Q[i] += sub.Q[i]
		}
	}
	return total
}

// epFrom runs the pair loop from an already-positioned stream.
func epFrom(g *LCG, pairs int64) EPResult {
	var res EPResult
	res.Pairs = pairs
	for i := int64(0); i < pairs; i++ {
		x := 2*g.Next() - 1
		y := 2*g.Next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		res.Accepted++
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx := x * f
		gy := y * f
		res.SX += gx
		res.SY += gy
		m := math.Max(math.Abs(gx), math.Abs(gy))
		l := int(m)
		if l > 9 {
			l = 9
		}
		res.Q[l]++
	}
	return res
}
