package nas

import (
	"math"
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/mpi"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func runSpec(t *testing.T, spec Spec, nodes, rpn int, htt bool, level smm.Level, seed int64) Result {
	t.Helper()
	e := sim.New(seed)
	c := cluster.MustNew(e, cluster.Wyeast(nodes, htt, level))
	c.StartSMI()
	w := mpi.MustNewWorld(c, rpn, mpi.DefaultParams())
	res, err := Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSpecString(t *testing.T) {
	if s := (Spec{BT, ClassA}).String(); s != "BT.A" {
		t.Errorf("spec string = %q", s)
	}
}

func TestUnknownSpec(t *testing.T) {
	e := sim.New(1)
	c := cluster.MustNew(e, cluster.Wyeast(1, false, smm.SMMNone))
	w := mpi.MustNewWorld(c, 1, mpi.DefaultParams())
	if _, err := Run(w, Spec{"XX", ClassA}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run(w, Spec{EP, 'Z'}); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestBTRequiresSquareRanks(t *testing.T) {
	e := sim.New(1)
	c := cluster.MustNew(e, cluster.Wyeast(2, false, smm.SMMNone))
	w := mpi.MustNewWorld(c, 1, mpi.DefaultParams())
	if _, err := Run(w, Spec{BT, ClassS}); err == nil {
		t.Error("BT on 2 ranks accepted")
	}
}

func TestEPFTRequirePow2Ranks(t *testing.T) {
	e := sim.New(1)
	c := cluster.MustNew(e, cluster.Wyeast(3, false, smm.SMMNone))
	w := mpi.MustNewWorld(c, 1, mpi.DefaultParams())
	if _, err := Run(w, Spec{EP, ClassS}); err == nil {
		t.Error("EP on 3 ranks accepted")
	}
}

// Calibration: single-rank class A baselines must land near the paper's
// SMM-0 measurements.
func TestCalibrationSingleRankClassA(t *testing.T) {
	cases := []struct {
		spec Spec
		want float64 // paper seconds
		tol  float64 // relative tolerance
	}{
		{Spec{EP, ClassA}, 23.12, 0.02},
		{Spec{BT, ClassA}, 86.87, 0.02},
		{Spec{FT, ClassA}, 7.64, 0.10}, // local transpose adds a little
	}
	for _, c := range cases {
		res := runSpec(t, c.spec, 1, 1, false, smm.SMMNone, 1)
		got := res.Time.Seconds()
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%v solo time = %.2fs, want %.2f ± %.0f%%", c.spec, got, c.want, c.tol*100)
		}
		if !res.Verified {
			t.Errorf("%v not verified", c.spec)
		}
		if res.MOPs <= 0 {
			t.Errorf("%v MOPs = %v", c.spec, res.MOPs)
		}
	}
}

func TestEPScalesLinearly(t *testing.T) {
	t1 := runSpec(t, Spec{EP, ClassA}, 1, 1, false, smm.SMMNone, 1).Time.Seconds()
	t4 := runSpec(t, Spec{EP, ClassA}, 4, 1, false, smm.SMMNone, 1).Time.Seconds()
	t16 := runSpec(t, Spec{EP, ClassA}, 16, 1, false, smm.SMMNone, 1).Time.Seconds()
	if r := t1 / t4; math.Abs(r-4) > 0.4 {
		t.Errorf("EP 1→4 nodes speedup %.2f, want ≈4", r)
	}
	if r := t1 / t16; math.Abs(r-16) > 3 {
		t.Errorf("EP 1→16 nodes speedup %.2f, want ≈16", r)
	}
}

func TestShortSMIsNegligible(t *testing.T) {
	base := runSpec(t, Spec{EP, ClassA}, 4, 1, false, smm.SMMNone, 1).Time.Seconds()
	short := runSpec(t, Spec{EP, ClassA}, 4, 1, false, smm.SMMShort, 1).Time.Seconds()
	if (short-base)/base > 0.02 {
		t.Errorf("short SMIs cost %.1f%%, paper says <1%%", (short-base)/base*100)
	}
}

func TestLongSMIsCostAboutDutyCycleOnOneNode(t *testing.T) {
	base := runSpec(t, Spec{EP, ClassA}, 1, 1, false, smm.SMMNone, 1).Time.Seconds()
	long := runSpec(t, Spec{EP, ClassA}, 1, 1, false, smm.SMMLong, 1).Time.Seconds()
	pct := (long - base) / base * 100
	if pct < 8 || pct > 15 {
		t.Errorf("long SMIs on 1 node cost %.1f%%, paper says ≈10.7%%", pct)
	}
}

func TestLongSMIImpactGrowsWithNodes(t *testing.T) {
	impact := func(nodes int) float64 {
		base := runSpec(t, Spec{BT, ClassA}, nodes, 1, false, smm.SMMNone, 1).Time.Seconds()
		var sum float64
		for seed := int64(1); seed <= 3; seed++ {
			long := runSpec(t, Spec{BT, ClassA}, nodes, 1, false, smm.SMMLong, seed).Time.Seconds()
			sum += (long - base) / base * 100
		}
		return sum / 3
	}
	one := impact(1)
	sixteen := impact(16)
	if one < 8 || one > 15 {
		t.Errorf("BT.A 1-node long-SMI impact %.1f%%, want ≈10.8%%", one)
	}
	if sixteen <= one+5 {
		t.Errorf("long-SMI impact did not grow with nodes: 1 node %.1f%%, 16 nodes %.1f%%", one, sixteen)
	}
}

func TestFTCommBoundAtScale(t *testing.T) {
	// FT on many inter-node ranks should stop scaling (the paper's
	// "poor fit for the platform"): 16 ranks across 4 nodes must not be
	// 4× faster than 4 ranks on 1 node.
	intra := runSpec(t, Spec{FT, ClassA}, 1, 4, false, smm.SMMNone, 1).Time.Seconds()
	spread := runSpec(t, Spec{FT, ClassA}, 4, 4, false, smm.SMMNone, 1).Time.Seconds()
	if spread < intra {
		t.Errorf("FT.A with 16 inter-node ranks (%.2fs) should be slower than 4 intra-node ranks (%.2fs)", spread, intra)
	}
}

func TestResultsDeterministic(t *testing.T) {
	a := runSpec(t, Spec{FT, ClassS}, 2, 2, false, smm.SMMLong, 7)
	b := runSpec(t, Spec{FT, ClassS}, 2, 2, false, smm.SMMLong, 7)
	if a.Time != b.Time {
		t.Fatalf("same seed, different results: %v vs %v", a.Time, b.Time)
	}
}

func TestBTSmallGrid(t *testing.T) {
	res := runSpec(t, Spec{BT, ClassS}, 4, 1, false, smm.SMMNone, 1)
	if !res.Verified {
		t.Error("BT.S not verified")
	}
	if res.Ranks != 4 {
		t.Errorf("ranks = %d", res.Ranks)
	}
}

func TestBT16RanksOn4Nodes(t *testing.T) {
	res := runSpec(t, Spec{BT, ClassS}, 4, 4, false, smm.SMMNone, 1)
	if res.Ranks != 16 || !res.Verified {
		t.Errorf("BT.S 16 ranks: %+v", res)
	}
}

func TestProfileAccessor(t *testing.T) {
	if Profile(EP).MissRate >= Profile(FT).MissRate {
		t.Error("EP should miss less than FT")
	}
}

func TestHTTNeutralWithoutSMI(t *testing.T) {
	// With 4 ranks on 4 physical cores, enabling HTT should change
	// nothing material when no SMIs fire (paper Tables 4–5, SMM0).
	off := runSpec(t, Spec{EP, ClassS}, 1, 4, false, smm.SMMNone, 1).Time.Seconds()
	on := runSpec(t, Spec{EP, ClassS}, 1, 4, true, smm.SMMNone, 1).Time.Seconds()
	if math.Abs(on-off)/off > 0.02 {
		t.Errorf("HTT changed SMM0 runtime by %.1f%%: %v vs %v", math.Abs(on-off)/off*100, on, off)
	}
}
