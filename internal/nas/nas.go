// Package nas implements computation/communication skeletons of the NAS
// Parallel Benchmarks the paper measures: EP (Embarrassingly Parallel),
// BT (Block Tri-diagonal solver) and FT (3-D FFT), in problem classes S,
// A, B and C.
//
// A skeleton executes the benchmark's real communication pattern — EP's
// terminal all-reduces, BT's per-iteration neighbor face exchanges on a
// square process grid, FT's per-iteration all-to-all transpose plus
// checksum all-reduce — while replacing the numerical kernels by
// calibrated amounts of abstract compute. Because SMI impact is governed
// by compute volume, communication pattern and synchronization frequency,
// the skeletons respond to injected SMM noise the way the real codes do.
//
// Calibration: per-class total operation counts are fixed so that a
// single-rank run on the Wyeast node preset (Xeon E5520, 2.27 GHz)
// reproduces the paper's SMM-0 baseline within a few percent; see
// params.go.
package nas

import (
	"fmt"
	"math"

	"smistudy/internal/kernel"
	"smistudy/internal/mpi"
	"smistudy/internal/sim"
)

// Benchmark names a NAS benchmark.
type Benchmark string

// The benchmarks in the paper's study.
const (
	EP Benchmark = "EP"
	BT Benchmark = "BT"
	FT Benchmark = "FT"
)

// Class is an NPB problem class.
type Class byte

// Problem classes: S is the tiny self-test class; A, B and C are the
// classes the paper measures.
const (
	ClassS Class = 'S'
	ClassA Class = 'A'
	ClassB Class = 'B'
	ClassC Class = 'C'
)

// Spec selects a benchmark instance.
type Spec struct {
	Bench Benchmark
	Class Class
}

// String formats the spec like NPB binaries do ("bt.A").
func (s Spec) String() string {
	return fmt.Sprintf("%s.%c", string(s.Bench), byte(s.Class))
}

// Result is one benchmark run's outcome.
type Result struct {
	Spec     Spec
	Ranks    int
	Time     sim.Time // benchmark-timed section (what NPB prints)
	MOPs     float64  // model mega-ops per second
	Verified bool     // skeleton invariants held on every rank
}

// Run executes the benchmark on an MPI world and reports the result.
// The world's engine is consumed (run to completion).
func Run(w *mpi.World, spec Spec) (Result, error) {
	pb, err := lookup(spec)
	if err != nil {
		return Result{}, err
	}
	p := w.Size()
	if err := pb.checkRanks(p); err != nil {
		return Result{}, err
	}

	verified := true
	iterDone := make([]int, p)
	// Per-rank slots rather than a shared maximum: on a sharded cluster
	// the rank bodies finish on concurrent shard goroutines.
	ends := make([]sim.Time, p)

	_, err = w.RunE(pb.profile, func(r *mpi.Rank, t *kernel.Task) {
		iters := pb.run(r, t, p)
		iterDone[r.ID()] = iters
		ends[r.ID()] = t.Gettime()
	})
	var maxEnd sim.Time
	for _, end := range ends {
		if end > maxEnd {
			maxEnd = end
		}
	}
	if err != nil {
		// Faulted run: report how far the job got before failing, with
		// the transport/watchdog error attached (callers distinguish
		// crash-abort from no-progress via errors.Is / errors.As).
		return Result{Spec: spec, Ranks: p, Time: maxEnd}, err
	}
	for _, it := range iterDone {
		if it != iterDone[0] {
			verified = false
		}
	}
	if spec.Bench == EP && spec.Class == ClassS {
		// For the self-test class, also run the *real* EP mathematics:
		// the parallel decomposition (what the skeleton's ranks stand in
		// for) must reproduce the serial reference exactly — the NPB
		// verification stage in miniature.
		const pairs = 1 << 18
		serial := EPKernel(DefaultEPSeed, pairs)
		par := EPKernelParallel(DefaultEPSeed, pairs, p)
		if par.Accepted != serial.Accepted || par.Q != serial.Q {
			verified = false
		}
	}
	sec := maxEnd.Seconds()
	mops := 0.0
	if sec > 0 {
		mops = pb.totalOps / 1e6 / sec
	}
	return Result{
		Spec:     spec,
		Ranks:    p,
		Time:     maxEnd,
		MOPs:     mops,
		Verified: verified,
	}, nil
}

// checkRanks validates the rank count for the benchmark's decomposition.
func (pb *problem) checkRanks(p int) error {
	if p < 1 {
		return fmt.Errorf("nas: %d ranks", p)
	}
	switch pb.spec.Bench {
	case BT:
		q := int(math.Round(math.Sqrt(float64(p))))
		if q*q != p {
			return fmt.Errorf("nas: BT needs a square rank count, got %d", p)
		}
	case EP, FT:
		if p&(p-1) != 0 {
			return fmt.Errorf("nas: %s needs a power-of-two rank count, got %d", pb.spec.Bench, p)
		}
	default:
		return checkRanksExtended(pb.spec.Bench, p)
	}
	return nil
}

// --- benchmark skeletons -------------------------------------------------

// runEP: each rank generates its share of random pairs (pure compute,
// in a few batches like the real code's k-loop), then the ranks combine
// their Gaussian-pair counts with three small all-reduces.
func (pb *problem) runEP(r *mpi.Rank, t *kernel.Task, p int) int {
	share := pb.totalOps / float64(p)
	const batches = 16
	for b := 0; b < batches; b++ {
		t.Compute(share / batches)
	}
	// sx, sy sums and the 10-bin q[] counts.
	r.Allreduce(t, 8)
	r.Allreduce(t, 8)
	r.Allreduce(t, 80)
	return batches
}

// runBT: square process grid, niter iterations; each iteration computes
// the RHS and performs the three directional solves, each of which
// exchanges cell faces with the two neighbors in that direction.
func (pb *problem) runBT(r *mpi.Rank, t *kernel.Task, p int) int {
	q := int(math.Round(math.Sqrt(float64(p))))
	row, col := r.ID()/q, r.ID()%q
	opsPerIter := pb.totalOps / float64(pb.iters) / float64(p)
	face := pb.faceBytes(q)

	for iter := 0; iter < pb.iters; iter++ {
		// compute_rhs + the local work of the three solves.
		t.Compute(opsPerIter)
		if p == 1 {
			continue
		}
		// x-sweep: exchange with row neighbors (wraparound like the
		// multi-partition scheme).
		left := row*q + (col+q-1)%q
		right := row*q + (col+1)%q
		r.Sendrecv(t, right, iterTag(iter, 0), face, left, iterTag(iter, 0))
		r.Sendrecv(t, left, iterTag(iter, 1), face, right, iterTag(iter, 1))
		// y-sweep: exchange with column neighbors.
		up := ((row+q-1)%q)*q + col
		down := ((row+1)%q)*q + col
		r.Sendrecv(t, down, iterTag(iter, 2), face, up, iterTag(iter, 2))
		r.Sendrecv(t, up, iterTag(iter, 3), face, down, iterTag(iter, 3))
		// z-sweep: cells are contiguous in z in the 2-D decomposition;
		// the multi-partition scheme still shifts boundary data along
		// the diagonal.
		diag := ((row+1)%q)*q + (col+1)%q
		anti := ((row+q-1)%q)*q + (col+q-1)%q
		r.Sendrecv(t, diag, iterTag(iter, 4), face, anti, iterTag(iter, 4))
	}
	if p > 1 {
		// Verification: residual norms.
		r.Allreduce(t, 40)
	}
	return pb.iters
}

// runFT: one warm-up evolve, then niter iterations of local FFT work, a
// global transpose (all-to-all) and a checksum all-reduce.
func (pb *problem) runFT(r *mpi.Rank, t *kernel.Task, p int) int {
	opsPerIter := pb.totalOps / float64(pb.iters) / float64(p)
	perPair := 0
	if p > 1 {
		perPair = int(pb.gridBytes) / (p * p)
	}
	for iter := 0; iter < pb.iters; iter++ {
		t.Compute(opsPerIter)
		if p > 1 {
			r.Alltoall(t, perPair)
		} else {
			r.Alltoall(t, int(pb.gridBytes))
		}
		// Complex checksum.
		r.Allreduce(t, 16)
	}
	return pb.iters
}

// iterTag builds distinct non-negative tags for BT's per-iteration
// exchanges.
func iterTag(iter, phase int) int { return iter*8 + phase }
