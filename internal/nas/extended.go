package nas

import (
	"math"

	"smistudy/internal/kernel"
	"smistudy/internal/mpi"
)

// Extended benchmarks: the rest of the NPB kernels and pseudo-apps. The
// paper measures EP, BT and FT and names "additional parallel
// applications" as future work; these skeletons follow the same
// construction (real communication pattern, calibrated compute) so the
// study extends beyond the paper's three codes. Their baselines are NOT
// from the paper — they are estimated from the benchmarks' nominal
// operation counts on the same hardware class and documented as such in
// params_extended.go.
const (
	// CG: conjugate gradient — irregular memory access, frequent small
	// all-reduces (latency-sensitive).
	CG Benchmark = "CG"
	// MG: multigrid — halo exchanges across a 3-D decomposition with
	// sizes shrinking at coarse levels.
	MG Benchmark = "MG"
	// IS: integer sort — bucket redistribution (all-to-all) per
	// iteration, little compute.
	IS Benchmark = "IS"
	// LU: SSOR solver — pipelined wavefront sweeps with many small
	// neighbor messages.
	LU Benchmark = "LU"
	// SP: scalar pentadiagonal solver — BT's multi-partition structure
	// with more, lighter iterations.
	SP Benchmark = "SP"
)

// runCG: per outer iteration the real CG runs ~25 inner steps, each a
// sparse matvec (row-segment reductions across the rank row) and two dot
// products (global all-reduces of one double).
func (pb *problem) runCG(r *mpi.Rank, t *kernel.Task, p int) int {
	const inner = 25
	rowLen := rowSize(p)
	share := pb.totalOps / float64(pb.iters) / float64(inner) / float64(p)
	vecBytes := pb.vecBytes / p
	for iter := 0; iter < pb.iters; iter++ {
		for s := 0; s < inner; s++ {
			t.Compute(share)
			// Matvec reduction along the rank's row: exchange vector
			// segments with log2(rowLen) partners.
			if rowLen > 1 {
				row := r.ID() / rowLen
				col := r.ID() % rowLen
				for k := 1; k < rowLen; k <<= 1 {
					partner := row*rowLen + (col ^ k)
					tag := iterTag(iter*inner+s, 6)
					r.Sendrecv(t, partner, tag, vecBytes, partner, tag)
				}
			}
			// Two dot products.
			r.Allreduce(t, 8)
			r.Allreduce(t, 8)
		}
	}
	return pb.iters
}

// rowSize returns the row length of CG's 2-D rank grid (p a power of
// two; the grid is rows × rowLen with rowLen ≥ rows, as in the real CG).
func rowSize(p int) int {
	lg := 0
	for 1<<lg < p {
		lg++
	}
	return 1 << ((lg + 1) / 2)
}

// runMG: V-cycles over a 3-D grid; every level smooths (compute) and
// exchanges halos with 6 neighbors, with face sizes shrinking 4× per
// coarser level.
func (pb *problem) runMG(r *mpi.Rank, t *kernel.Task, p int) int {
	levels := pb.levels
	// Geometric series Σ 8^-l over levels ≈ 8/7 of the finest level.
	fineOps := pb.totalOps / float64(pb.iters) / float64(p) * (7.0 / 8.0)
	for iter := 0; iter < pb.iters; iter++ {
		for l := 0; l < levels; l++ {
			t.Compute(fineOps / math.Pow(8, float64(l)))
			if p == 1 {
				continue
			}
			face := pb.faceBytes(1) / (1 << (2 * l))
			if face < 64 {
				face = 64
			}
			for d := 0; d < 3; d++ {
				up, down := gridNeighbors(r.ID(), p, d)
				tag := iterTag(iter*levels+l, d)
				r.Sendrecv(t, up, tag, face, down, tag)
			}
		}
	}
	if p > 1 {
		r.Allreduce(t, 8) // final L2 norm
	}
	return pb.iters
}

// gridNeighbors maps a rank onto a power-of-two 3-D torus and returns
// its ± neighbors along dimension d.
func gridNeighbors(id, p, d int) (up, down int) {
	// Split log2(p) bits across 3 dimensions.
	lg := 0
	for 1<<lg < p {
		lg++
	}
	dims := [3]int{}
	for i := 0; i < 3; i++ {
		dims[i] = lg / 3
		if i < lg%3 {
			dims[i]++
		}
	}
	shift := 0
	for i := 0; i < d; i++ {
		shift += dims[i]
	}
	size := 1 << dims[d]
	if size == 1 {
		return id, id
	}
	coord := (id >> shift) & (size - 1)
	base := id &^ ((size - 1) << shift)
	up = base | (((coord + 1) % size) << shift)
	down = base | (((coord - 1 + size) % size) << shift)
	return up, down
}

// runIS: per iteration, local key ranking then bucket redistribution —
// an all-to-all of the key array — plus a small all-reduce of bucket
// sizes.
func (pb *problem) runIS(r *mpi.Rank, t *kernel.Task, p int) int {
	share := pb.totalOps / float64(pb.iters) / float64(p)
	for iter := 0; iter < pb.iters; iter++ {
		t.Compute(share)
		r.Allreduce(t, 1024) // bucket size exchange
		if p > 1 {
			r.Alltoall(t, int(pb.gridBytes)/(p*p))
		}
	}
	if p > 1 {
		r.Allreduce(t, 8) // full verification
	}
	return pb.iters
}

// runLU: SSOR iterations, each a lower and an upper triangular sweep.
// The sweeps are wavefronts over a 2-D rank grid: a rank waits for its
// north and west (resp. south and east) neighbors, computes, and passes
// boundary data on. One message set per sweep stands in for the
// per-plane pipeline of the real code.
func (pb *problem) runLU(r *mpi.Rank, t *kernel.Task, p int) int {
	q := int(math.Round(math.Sqrt(float64(p))))
	row, col := r.ID()/q, r.ID()%q
	opsPerIter := pb.totalOps / float64(pb.iters) / float64(p)
	face := pb.faceBytes(q)
	for iter := 0; iter < pb.iters; iter++ {
		// Lower sweep: wavefront from (0,0).
		if p > 1 {
			if row > 0 {
				r.Recv(t, (row-1)*q+col, iterTag(iter, 0))
			}
			if col > 0 {
				r.Recv(t, row*q+col-1, iterTag(iter, 1))
			}
		}
		t.Compute(opsPerIter / 2)
		if p > 1 {
			if row < q-1 {
				r.Send(t, (row+1)*q+col, iterTag(iter, 0), face)
			}
			if col < q-1 {
				r.Send(t, row*q+col+1, iterTag(iter, 1), face)
			}
			// Upper sweep: wavefront from (q-1,q-1).
			if row < q-1 {
				r.Recv(t, (row+1)*q+col, iterTag(iter, 2))
			}
			if col < q-1 {
				r.Recv(t, row*q+col+1, iterTag(iter, 3))
			}
		}
		t.Compute(opsPerIter / 2)
		if p > 1 {
			if row > 0 {
				r.Send(t, (row-1)*q+col, iterTag(iter, 2), face)
			}
			if col > 0 {
				r.Send(t, row*q+col-1, iterTag(iter, 3), face)
			}
		}
	}
	if p > 1 {
		r.Allreduce(t, 40) // residual norms
	}
	return pb.iters
}
