package nas

// MOPs converts a measured runtime in seconds into the model's million
// operations per second for the spec — the figure of merit the NPB
// suite reports. Unknown specs and non-positive runtimes yield 0, so a
// failed or unmeasured cell never divides by zero.
func MOPs(spec Spec, seconds float64) float64 {
	ops := TotalOps(spec)
	if ops == 0 || seconds <= 0 {
		return 0
	}
	return ops / 1e6 / seconds
}
