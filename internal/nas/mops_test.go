package nas

import "testing"

// TestMOPsMatchesTotalOps pins MOPs to the conversion the facade used
// inline before it moved here: TotalOps(spec)/1e6/seconds, with zero
// for unknown specs and non-positive runtimes.
func TestMOPsMatchesTotalOps(t *testing.T) {
	classes := append([]Class{ClassS}, Classes...)
	for _, b := range AllBenchmarks {
		for _, c := range classes {
			spec := Spec{Bench: b, Class: c}
			for _, seconds := range []float64{0.5, 1, 7.25, 1234.5} {
				want := TotalOps(spec) / 1e6 / seconds
				if got := MOPs(spec, seconds); got != want {
					t.Errorf("MOPs(%v, %g) = %g, want %g", spec, seconds, got, want)
				}
			}
		}
	}
}

func TestMOPsGuards(t *testing.T) {
	spec := Spec{Bench: EP, Class: ClassA}
	if got := MOPs(spec, 0); got != 0 {
		t.Errorf("MOPs at 0 s = %g, want 0", got)
	}
	if got := MOPs(spec, -1); got != 0 {
		t.Errorf("MOPs at -1 s = %g, want 0", got)
	}
	if got := MOPs(Spec{Bench: "XX", Class: ClassA}, 1); got != 0 {
		t.Errorf("MOPs for unknown spec = %g, want 0", got)
	}
}
