package nas

import (
	"fmt"
	"math"

	"smistudy/internal/cpu"
)

// Calibration for the extended benchmarks. The paper does not measure
// these; single-rank baselines below are estimated from the NPB 3.x
// nominal operation counts at the Wyeast node's effective rate
// (documented engineering estimates, not paper data). The communication
// patterns are the real ones.
var extSoloSeconds = map[Spec]float64{
	{CG, ClassS}: 0.10,
	{CG, ClassA}: 3.0,
	{CG, ClassB}: 85.0,
	{CG, ClassC}: 230.0,
	{MG, ClassS}: 0.10,
	{MG, ClassA}: 3.5,
	{MG, ClassB}: 16.0,
	{MG, ClassC}: 130.0,
	{IS, ClassS}: 0.05,
	{IS, ClassA}: 1.3,
	{IS, ClassB}: 5.5,
	{IS, ClassC}: 23.0,
	{LU, ClassS}: 0.40,
	{LU, ClassA}: 115.0,
	{LU, ClassB}: 490.0,
	{LU, ClassC}: 1950.0,
	{SP, ClassS}: 0.35,
	{SP, ClassA}: 98.0,
	{SP, ClassB}: 410.0,
	{SP, ClassC}: 1680.0,
}

// Workload profiles for the extended kernels: CG is latency-bound with
// irregular gathers (higher stalling miss rate), MG streams structured
// grids, IS is bandwidth-hungry permutation, LU/SP behave like BT.
var (
	cgProfile = cpu.Profile{CPI: 1, MissRate: 0.012, MissRateShared: 0.018, MemMissRate: 0.02}
	mgProfile = cpu.Profile{CPI: 1, MissRate: 0.006, MissRateShared: 0.009, MemMissRate: 0.03}
	isProfile = cpu.Profile{CPI: 1, MissRate: 0.010, MissRateShared: 0.015, MemMissRate: 0.05}
	luProfile = btProfile
	spProfile = btProfile
)

// Problem geometry per class.
var (
	// CG vector length n (A: 14000, B/C: 75000/150000).
	cgVecLen = map[Class]int{ClassS: 1400, ClassA: 14000, ClassB: 75000, ClassC: 150000}
	cgIters  = map[Class]int{ClassS: 2, ClassA: 15, ClassB: 75, ClassC: 75}

	// MG grid edge (A/B: 256, C: 512) and V-cycle counts.
	mgGridN = map[Class]int{ClassS: 32, ClassA: 256, ClassB: 256, ClassC: 512}
	mgIters = map[Class]int{ClassS: 2, ClassA: 4, ClassB: 20, ClassC: 20}

	// IS key counts (A: 2^23, B: 2^25, C: 2^27), 4-byte keys, 10
	// ranking iterations.
	isKeys = map[Class]int64{ClassS: 1 << 16, ClassA: 1 << 23, ClassB: 1 << 25, ClassC: 1 << 27}

	// LU/SP grid edges (same cubes as BT for LU; SP matches BT).
	luGridN = map[Class]int{ClassS: 12, ClassA: 64, ClassB: 102, ClassC: 162}
	luIters = map[Class]int{ClassS: 20, ClassA: 250, ClassB: 250, ClassC: 250}
	spIters = map[Class]int{ClassS: 40, ClassA: 400, ClassB: 400, ClassC: 400}
)

const isIters = 10

// ExtendedBenchmarks lists the kernels beyond the paper's three.
var ExtendedBenchmarks = []Benchmark{CG, MG, IS, LU, SP}

// AllBenchmarks lists every implemented benchmark.
var AllBenchmarks = []Benchmark{EP, BT, FT, CG, MG, IS, LU, SP}

// lookupExtended resolves the extended benchmarks; it returns nil, nil
// for specs it does not know (so lookup can fall through).
func lookupExtended(spec Spec) (*problem, error) {
	secs, ok := extSoloSeconds[spec]
	if !ok {
		return nil, fmt.Errorf("nas: unknown benchmark %v", spec)
	}
	pb := &problem{spec: spec}
	switch spec.Bench {
	case CG:
		pb.profile = cgProfile
		pb.iters = cgIters[spec.Class]
		pb.vecBytes = cgVecLen[spec.Class] * 8
		pb.run = pb.runCG
	case MG:
		pb.profile = mgProfile
		pb.iters = mgIters[spec.Class]
		pb.levels = mgLevels(mgGridN[spec.Class])
		n := mgGridN[spec.Class]
		pb.faceBytes = func(q int) int { return n * n * 8 / q }
		pb.run = pb.runMG
	case IS:
		pb.profile = isProfile
		pb.iters = isIters
		pb.gridBytes = isKeys[spec.Class] * 4
		pb.run = pb.runIS
	case LU:
		pb.profile = luProfile
		pb.iters = luIters[spec.Class]
		n := luGridN[spec.Class]
		pb.faceBytes = func(q int) int { return n * n * 5 * 8 / q }
		pb.run = pb.runLU
	case SP:
		pb.profile = spProfile
		pb.iters = spIters[spec.Class]
		n := btGridN[spec.Class]
		pb.faceBytes = func(q int) int { return n * n * 5 * 8 / q }
		pb.run = pb.runBT // SP shares BT's multi-partition skeleton
	default:
		return nil, fmt.Errorf("nas: unknown benchmark %q", spec.Bench)
	}
	pb.totalOps = secs * soloRate(pb.profile)
	return pb, nil
}

// mgLevels is the number of multigrid levels for an edge size n
// (coarsen until the grid is ~4 cells across, max 8 levels).
func mgLevels(n int) int {
	l := 0
	for n > 4 && l < 8 {
		n /= 2
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// checkRanksExtended validates rank counts for the extended kernels.
func checkRanksExtended(b Benchmark, p int) error {
	switch b {
	case CG, MG, IS:
		if p&(p-1) != 0 {
			return fmt.Errorf("nas: %s needs a power-of-two rank count, got %d", b, p)
		}
	case LU, SP:
		q := int(math.Round(math.Sqrt(float64(p))))
		if q*q != p {
			return fmt.Errorf("nas: %s needs a square rank count, got %d", b, p)
		}
	}
	return nil
}
