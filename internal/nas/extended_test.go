package nas

import (
	"math"
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/mpi"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func TestExtendedBenchmarksComplete(t *testing.T) {
	for _, b := range ExtendedBenchmarks {
		for _, ranks := range validRankCounts(b) {
			res := runSpec(t, Spec{b, ClassS}, ranks, 1, false, smm.SMMNone, 1)
			if !res.Verified {
				t.Errorf("%s.S on %d ranks not verified", b, ranks)
			}
			if res.Time <= 0 {
				t.Errorf("%s.S on %d ranks: zero time", b, ranks)
			}
		}
	}
}

func validRankCounts(b Benchmark) []int {
	switch b {
	case LU, SP:
		return []int{1, 4, 16}
	default:
		return []int{1, 2, 4, 8, 16}
	}
}

func TestExtendedRankValidation(t *testing.T) {
	e := sim.New(1)
	c := cluster.MustNew(e, cluster.Wyeast(3, false, smm.SMMNone))
	w := mpi.MustNewWorld(c, 1, mpi.DefaultParams())
	for _, b := range []Benchmark{CG, MG, IS} {
		if _, err := Run(w, Spec{b, ClassS}); err == nil {
			t.Errorf("%s accepted 3 ranks", b)
		}
	}
	e2 := sim.New(1)
	c2 := cluster.MustNew(e2, cluster.Wyeast(2, false, smm.SMMNone))
	w2 := mpi.MustNewWorld(c2, 1, mpi.DefaultParams())
	for _, b := range []Benchmark{LU, SP} {
		if _, err := Run(w2, Spec{b, ClassS}); err == nil {
			t.Errorf("%s accepted 2 ranks", b)
		}
	}
}

func TestExtendedCalibrationClassA(t *testing.T) {
	for spec, want := range map[Spec]float64{
		{CG, ClassA}: 3.0,
		{MG, ClassA}: 3.5,
		{IS, ClassA}: 1.3,
	} {
		res := runSpec(t, spec, 1, 1, false, smm.SMMNone, 1)
		got := res.Time.Seconds()
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("%v solo = %.2fs, want ≈%.2f", spec, got, want)
		}
	}
}

func TestExtendedScaleWithRanks(t *testing.T) {
	for _, b := range []Benchmark{CG, MG} {
		solo := runSpec(t, Spec{b, ClassA}, 1, 1, false, smm.SMMNone, 1).Time.Seconds()
		four := runSpec(t, Spec{b, ClassA}, 4, 1, false, smm.SMMNone, 1).Time.Seconds()
		speedup := solo / four
		if speedup < 1.5 {
			t.Errorf("%s.A speedup 1→4 nodes = %.2f, want >1.5", b, speedup)
		}
		if speedup > 4.2 {
			t.Errorf("%s.A speedup 1→4 nodes = %.2f, superlinear?", b, speedup)
		}
	}
	// IS is dominated by the all-to-all key redistribution: on a
	// gigabit fabric it barely scales at all (as on real GigE
	// clusters); it just must not collapse.
	solo := runSpec(t, Spec{IS, ClassA}, 1, 1, false, smm.SMMNone, 1).Time.Seconds()
	four := runSpec(t, Spec{IS, ClassA}, 4, 1, false, smm.SMMNone, 1).Time.Seconds()
	if s := solo / four; s < 0.7 {
		t.Errorf("IS.A collapsed at 4 nodes: speedup %.2f", s)
	}
}

func TestLUWavefrontSensitiveToLongSMIs(t *testing.T) {
	// LU's wavefront pipelining makes each iteration wait on the
	// slowest rank twice; long SMIs on any node delay everyone.
	base := runSpec(t, Spec{LU, ClassS}, 4, 1, false, smm.SMMNone, 1)
	// Period 100ms so the short S-class run still catches SMIs.
	e := sim.New(2)
	par := cluster.Wyeast(4, false, smm.SMMLong)
	par.Node.SMI.PeriodJiffies = 100
	cl := cluster.MustNew(e, par)
	cl.StartSMI()
	w := mpi.MustNewWorld(cl, 1, mpi.DefaultParams())
	noisy, err := Run(w, Spec{LU, ClassS})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Time <= base.Time {
		t.Fatalf("long SMIs did not slow LU: %v vs %v", noisy.Time, base.Time)
	}
}

func TestSPUsesMoreIterationsThanBT(t *testing.T) {
	sp, err := lookup(Spec{SP, ClassA})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := lookup(Spec{BT, ClassA})
	if err != nil {
		t.Fatal(err)
	}
	if sp.iters <= bt.iters {
		t.Errorf("SP iters %d should exceed BT's %d", sp.iters, bt.iters)
	}
}

func TestGridNeighbors(t *testing.T) {
	// 8 ranks → 2×2×2 torus: neighbors differ in exactly one dimension
	// and are symmetric.
	for id := 0; id < 8; id++ {
		for d := 0; d < 3; d++ {
			up, down := gridNeighbors(id, 8, d)
			if up == id || down == id {
				t.Fatalf("id %d dim %d: self neighbor", id, d)
			}
			// With size-2 dimensions, up == down.
			if up != down {
				t.Fatalf("id %d dim %d: up %d != down %d on size-2 torus", id, d, up, down)
			}
			u2, _ := gridNeighbors(up, 8, d)
			if u2 != id {
				t.Fatalf("neighbor relation not symmetric: %d -> %d -> %d", id, up, u2)
			}
		}
	}
	// Single rank: self.
	if up, down := gridNeighbors(0, 1, 0); up != 0 || down != 0 {
		t.Fatal("1-rank torus should self-loop")
	}
}

func TestGridNeighborsCover16(t *testing.T) {
	// Every rank's neighbor set must stay in range for p=16.
	for id := 0; id < 16; id++ {
		for d := 0; d < 3; d++ {
			up, down := gridNeighbors(id, 16, d)
			if up < 0 || up >= 16 || down < 0 || down >= 16 {
				t.Fatalf("neighbor out of range: id %d dim %d -> %d/%d", id, d, up, down)
			}
		}
	}
}

func TestRowSize(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 4: 2, 8: 4, 16: 4, 32: 8, 64: 8}
	for p, want := range cases {
		if got := rowSize(p); got != want {
			t.Errorf("rowSize(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestMGLevels(t *testing.T) {
	if mgLevels(256) != 6 {
		t.Errorf("mgLevels(256) = %d, want 6", mgLevels(256))
	}
	if mgLevels(4) != 1 {
		t.Errorf("mgLevels(4) = %d, want 1 (minimum)", mgLevels(4))
	}
	if mgLevels(1<<20) != 8 {
		t.Errorf("mgLevels(2^20) = %d, want 8 (cap)", mgLevels(1<<20))
	}
}

func TestAllBenchmarksListed(t *testing.T) {
	if len(AllBenchmarks) != 8 {
		t.Fatalf("AllBenchmarks = %d entries, want 8", len(AllBenchmarks))
	}
	for _, b := range AllBenchmarks {
		if _, err := lookup(Spec{b, ClassA}); err != nil {
			t.Errorf("%s.A not resolvable: %v", b, err)
		}
		if Profile(b).CPI <= 0 {
			t.Errorf("%s profile broken", b)
		}
		if TotalOps(Spec{b, ClassA}) <= 0 {
			t.Errorf("%s.A has no op count", b)
		}
	}
}

func TestExtendedDeterminism(t *testing.T) {
	a := runSpec(t, Spec{CG, ClassS}, 4, 2, false, smm.SMMLong, 11)
	b := runSpec(t, Spec{CG, ClassS}, 4, 2, false, smm.SMMLong, 11)
	if a.Time != b.Time {
		t.Fatalf("CG runs differ under same seed: %v vs %v", a.Time, b.Time)
	}
}
