package nas

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLCGDeterministic(t *testing.T) {
	a := NewLCG(DefaultEPSeed)
	b := NewLCG(DefaultEPSeed)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestLCGRange(t *testing.T) {
	g := NewLCG(DefaultEPSeed)
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("deviate %v out of (0,1)", v)
		}
	}
}

func TestLCGUniformity(t *testing.T) {
	g := NewLCG(DefaultEPSeed)
	const n = 200000
	var buckets [10]int
	sum := 0.0
	for i := 0; i < n; i++ {
		v := g.Next()
		sum += v
		buckets[int(v*10)]++
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
	for i, b := range buckets {
		if math.Abs(float64(b)-n/10) > n/10*0.05 {
			t.Errorf("bucket %d = %d, want ≈%d", i, b, n/10)
		}
	}
}

// Property: Skip(n) lands exactly where n sequential draws land.
func TestLCGSkipEquivalence(t *testing.T) {
	prop := func(n16 uint16, seedRaw int64) bool {
		n := int64(n16 % 5000)
		seed := (seedRaw&lcgMask)/2*2 + 1 // odd, in range
		seq := NewLCG(seed)
		for i := int64(0); i < n; i++ {
			seq.Next()
		}
		jump := NewLCG(seed)
		jump.Skip(n)
		return seq.x == jump.x
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMulMod46MatchesBigArithmetic(t *testing.T) {
	prop := func(a, b int64) bool {
		a &= lcgMask
		b &= lcgMask
		// Reference via 128-bit decomposition.
		hi := (a >> 23) * b % (1 << 23 << 23) // safe: (2^23)(2^46) overflows... use smaller ref
		_ = hi
		// Instead verify with math/bits-free double check on small values.
		return true
	}
	_ = prop
	// Direct checks against independently computed values.
	cases := []struct{ a, b, want int64 }{
		{1, 1, 1},
		{lcgA, 1, lcgA},
		{2, 1 << 45, 0},
		{lcgA, lcgA, (lcgA * lcgA) & lcgMask},
	}
	for _, c := range cases {
		if got := mulMod46(c.a, c.b); got != c.want {
			t.Errorf("mulMod46(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Associativity with the generator: skipping 2 then 3 equals 5.
	g1 := NewLCG(DefaultEPSeed)
	g1.Skip(2)
	g1.Skip(3)
	g2 := NewLCG(DefaultEPSeed)
	g2.Skip(5)
	if g1.x != g2.x {
		t.Error("Skip is not additive")
	}
}

func TestEPKernelStatistics(t *testing.T) {
	res := EPKernel(DefaultEPSeed, 100000)
	// Acceptance rate of the polar method is π/4 ≈ 0.785.
	rate := float64(res.Accepted) / float64(res.Pairs)
	if math.Abs(rate-math.Pi/4) > 0.01 {
		t.Errorf("acceptance rate %v, want ≈π/4", rate)
	}
	// Gaussian sums should be near zero relative to the deviate count.
	n := float64(res.Accepted)
	if math.Abs(res.SX) > 4*math.Sqrt(n) || math.Abs(res.SY) > 4*math.Sqrt(n) {
		t.Errorf("Gaussian sums too large: sx=%v sy=%v for n=%v", res.SX, res.SY, n)
	}
	// Counts concentrated in the first annuli (|N(0,1)| < 3 almost
	// surely).
	if res.Q[0] < res.Q[1] || res.Q[1] < res.Q[2] {
		t.Errorf("annulus counts not decreasing: %v", res.Q)
	}
	var totalQ int64
	for _, q := range res.Q {
		totalQ += q
	}
	if totalQ != res.Accepted {
		t.Errorf("annulus counts (%d) != accepted pairs (%d)", totalQ, res.Accepted)
	}
}

// The EP verification property: the parallel decomposition must
// reproduce the serial results (counts exactly; sums to rounding).
func TestEPKernelParallelMatchesSerial(t *testing.T) {
	const pairs = 50000
	serial := EPKernel(DefaultEPSeed, pairs)
	for _, ranks := range []int{1, 2, 4, 7, 16} {
		par := EPKernelParallel(DefaultEPSeed, pairs, ranks)
		if par.Accepted != serial.Accepted {
			t.Errorf("ranks=%d: accepted %d != serial %d", ranks, par.Accepted, serial.Accepted)
		}
		if par.Q != serial.Q {
			t.Errorf("ranks=%d: annulus counts differ", ranks)
		}
		if math.Abs(par.SX-serial.SX) > 1e-9 || math.Abs(par.SY-serial.SY) > 1e-9 {
			t.Errorf("ranks=%d: sums differ beyond rounding: %v vs %v", ranks, par.SX, serial.SX)
		}
	}
}

func TestEPKernelParallelBadRanks(t *testing.T) {
	res := EPKernelParallel(DefaultEPSeed, 1000, 0)
	if res.Pairs != 1000 {
		t.Fatal("ranks<1 should clamp to 1")
	}
}
