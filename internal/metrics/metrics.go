// Package metrics provides the statistics and rendering helpers the
// experiment harness uses: streaming mean/variance, geometric means,
// confidence intervals, plain-text tables, CSV output and ASCII line
// charts for reproducing the paper's figures in a terminal.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates running statistics (Welford's algorithm).
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another stream into s as if every observation fed to o
// had been fed to s (Chan et al.'s parallel Welford combine). Order
// independence makes it safe for reducing per-worker streams from a
// parallel sweep without reordering effects.
func (s *Stream) Merge(o Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N reports the number of observations.
func (s *Stream) N() int { return s.n }

// Mean reports the arithmetic mean.
func (s *Stream) Mean() float64 { return s.mean }

// Min reports the smallest observation.
func (s *Stream) Min() float64 { return s.min }

// Max reports the largest observation.
func (s *Stream) Max() float64 { return s.max }

// Variance reports the sample variance (n-1 denominator).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 reports the half-width of a normal-approximation 95% confidence
// interval on the mean.
func (s *Stream) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// GeoMean computes the geometric mean of positive values; zero or
// negative inputs yield NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean computes the arithmetic mean; empty input yields NaN.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median computes the median; empty input yields NaN.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// PercentChange reports 100×(b-a)/a.
func PercentChange(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return (b - a) / a * 100
}

// Table renders aligned plain-text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart renders ASCII line charts — enough to eyeball the paper's
// figures from a terminal.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	Series []Series
}

var chartMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return c.Title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		mark := chartMarks[si%len(chartMarks)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%s\n", c.YLabel)
	fmt.Fprintf(&b, "%10.3g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < h-1; i++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", minY, string(grid[h-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", w))
	fmt.Fprintf(&b, "%10s  %-10.3g%*s\n", "", minX, w-10, fmt.Sprintf("%.3g", maxX))
	fmt.Fprintf(&b, "%10s  %s\n", "", c.XLabel)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "    %c %s\n", chartMarks[si%len(chartMarks)], s.Name)
	}
	return b.String()
}
