package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.StdDev()-2.138)/2.138 > 0.01 {
		t.Errorf("stddev = %v, want ≈2.14 (sample)", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive with n≥2")
	}
}

func TestStreamSingleValue(t *testing.T) {
	var s Stream
	s.Add(42)
	if s.Variance() != 0 || s.CI95() != 0 {
		t.Error("variance/CI of single observation should be 0")
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Error("min/max wrong for single value")
	}
}

// Property: Stream matches direct two-pass computation.
func TestStreamMatchesTwoPass(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%40) + 2
		var s Stream
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-wantVar) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 10, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean = %v, want 10", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty geomean should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("geomean with zero should be NaN")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestPercentChange(t *testing.T) {
	if PercentChange(100, 110) != 10 {
		t.Error("percent change wrong")
	}
	if !math.IsNaN(PercentChange(0, 5)) {
		t.Error("division by zero should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "time", "pct")
	tab.AddRow("bt.A", 86.87, 10.79)
	tab.AddRow("ep.C", 370.67, math.NaN())
	out := tab.String()
	if !strings.Contains(out, "bt.A") || !strings.Contains(out, "86.87") {
		t.Errorf("table missing cells:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("NaN should render as '-':\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x,y", 1.5)
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("CSV quoting broken:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header broken:\n%s", csv)
	}
}

func TestChartRender(t *testing.T) {
	ch := Chart{
		Title:  "test",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
			{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
		},
	}
	out := ch.Render()
	if !strings.Contains(out, "test") || !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("chart missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart missing marks:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	ch := Chart{Title: "empty"}
	if !strings.Contains(ch.Render(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartFlatSeries(t *testing.T) {
	ch := Chart{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	out := ch.Render()
	if out == "" {
		t.Error("flat series render failed")
	}
}
