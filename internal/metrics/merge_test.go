package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamMergeMatchesSequential is the property test behind the
// parallel-sweep reduction: splitting any observation sequence into
// per-worker streams and merging them must agree with feeding the whole
// sequence through one Add loop, for every statistic the stream keeps.
func TestStreamMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			// Mix magnitudes so catastrophic cancellation would show up.
			xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(6)))
		}

		var seq Stream
		for _, x := range xs {
			seq.Add(x)
		}

		// Split into 1..4 chunks (some possibly empty) and merge.
		workers := 1 + rng.Intn(4)
		parts := make([]Stream, workers)
		for i, x := range xs {
			parts[i%workers].Add(x)
		}
		var merged Stream
		for _, p := range parts {
			merged.Merge(p)
		}

		if merged.N() != seq.N() {
			t.Fatalf("trial %d: N = %d, want %d", trial, merged.N(), seq.N())
		}
		if seq.N() == 0 {
			continue
		}
		if !near(merged.Mean(), seq.Mean()) {
			t.Fatalf("trial %d: mean = %g, want %g", trial, merged.Mean(), seq.Mean())
		}
		if !near(merged.Variance(), seq.Variance()) {
			t.Fatalf("trial %d: variance = %g, want %g", trial, merged.Variance(), seq.Variance())
		}
		if merged.Min() != seq.Min() || merged.Max() != seq.Max() {
			t.Fatalf("trial %d: min/max = %g/%g, want %g/%g",
				trial, merged.Min(), merged.Max(), seq.Min(), seq.Max())
		}
	}
}

// TestStreamMergeEmpty checks the identity cases: merging an empty
// stream changes nothing, and merging into an empty stream copies.
func TestStreamMergeEmpty(t *testing.T) {
	var a, empty Stream
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(empty)
	if a != before {
		t.Fatal("merging an empty stream changed the receiver")
	}
	var b Stream
	b.Merge(a)
	if b != a {
		t.Fatal("merging into an empty stream did not copy")
	}
}

// near compares with a relative tolerance loose enough for the float
// reassociation a merge implies, tight enough to catch real bugs.
func near(got, want float64) bool {
	diff := math.Abs(got - want)
	scale := math.Max(math.Abs(got), math.Abs(want))
	return diff <= 1e-9*math.Max(scale, 1)
}
