package kernel

import (
	"math"
	"testing"

	"smistudy/internal/clock"
	"smistudy/internal/cpu"
	"smistudy/internal/sim"
)

func newKernel(seed int64, htt bool) (*sim.Engine, *Kernel) {
	e := sim.New(seed)
	m := cpu.MustNew(e, cpu.Params{
		PhysCores: 4, HTT: htt, BaseHz: 1e9, MissPenalty: 100, SMTEfficiency: 0.9,
	})
	clk := clock.New(e, 1e9, sim.Millisecond)
	return e, New(e, m, clk, DefaultParams())
}

var cpuBound = cpu.Profile{CPI: 1}

func TestSpawnComputeExit(t *testing.T) {
	e, k := newKernel(1, true)
	var took sim.Time
	k.Spawn("worker", cpuBound, func(t *Task) {
		start := t.Gettime()
		t.Compute(1e9)
		took = t.Gettime() - start
	})
	e.Run()
	if math.Abs(took.Seconds()-1.0) > 1e-6 {
		t.Fatalf("compute took %v, want 1s", took)
	}
}

func TestTaskIdentity(t *testing.T) {
	e, k := newKernel(1, true)
	t1 := k.Spawn("a", cpuBound, func(*Task) {})
	t2 := k.Spawn("b", cpuBound, func(*Task) {})
	if t1.PID() == t2.PID() {
		t.Error("pids not unique")
	}
	if t1.Name() != "a" || t1.Kernel() != k {
		t.Error("task accessors wrong")
	}
	e.Run()
	if ok, _ := t1.Exited(); !ok {
		t.Error("task not marked exited")
	}
}

func TestJoin(t *testing.T) {
	e, k := newKernel(1, true)
	worker := k.Spawn("worker", cpuBound, func(t *Task) { t.Compute(5e8) })
	var joinedAt sim.Time
	k.Spawn("parent", cpuBound, func(t *Task) {
		t.Join(worker)
		joinedAt = t.Gettime()
	})
	e.Run()
	if math.Abs(joinedAt.Seconds()-0.5) > 1e-3 {
		t.Fatalf("join returned at %v, want 0.5s", joinedAt)
	}
}

func TestJoinAlreadyExited(t *testing.T) {
	e, k := newKernel(1, true)
	worker := k.Spawn("w", cpuBound, func(t *Task) {})
	joined := false
	k.Spawn("p", cpuBound, func(t *Task) {
		t.Nanosleep(100 * sim.Millisecond)
		t.Join(worker) // already exited — must not block
		joined = true
	})
	e.Run()
	if !joined {
		t.Fatal("join on exited task blocked forever")
	}
}

func TestWaitAllExited(t *testing.T) {
	e, k := newKernel(1, true)
	for i := 0; i < 3; i++ {
		d := sim.Time(i+1) * 100 * sim.Millisecond
		k.Spawn("w", cpuBound, func(t *Task) { t.Nanosleep(d) })
	}
	var doneAt sim.Time
	e.Go("waiter", func(p *sim.Proc) {
		k.WaitAllExited(p)
		doneAt = p.Now()
	})
	e.Run()
	if math.Abs(doneAt.Seconds()-0.3) > 1e-3 {
		t.Fatalf("WaitAllExited at %v, want ~0.3s", doneAt)
	}
}

func TestNanosleep(t *testing.T) {
	e, k := newKernel(1, true)
	var woke sim.Time
	k.Spawn("s", cpuBound, func(t *Task) {
		t.Nanosleep(250 * sim.Millisecond)
		woke = t.Gettime()
	})
	e.Run()
	if woke < 250*sim.Millisecond {
		t.Fatalf("woke early: %v", woke)
	}
}

func TestSyscallCost(t *testing.T) {
	e, k := newKernel(1, true)
	const calls = 1000
	var took sim.Time
	k.Spawn("sc", cpuBound, func(t *Task) {
		start := t.Gettime()
		for i := 0; i < calls; i++ {
			t.Syscall()
		}
		took = t.Gettime() - start
	})
	e.Run()
	want := float64(calls) * k.Params().SyscallOps / 1e9
	if math.Abs(took.Seconds()-want) > want*0.01 {
		t.Fatalf("syscalls took %v, want %.6fs", took, want)
	}
}

func TestPipeWriteRead(t *testing.T) {
	e, k := newKernel(1, true)
	p := k.NewPipe(0) // default capacity
	var got int
	k.Spawn("writer", cpuBound, func(t *Task) {
		n, err := p.Write(t, 512)
		if err != nil || n != 512 {
			panic("write failed")
		}
	})
	k.Spawn("reader", cpuBound, func(t *Task) {
		n, err := p.Read(t, 512)
		if err != nil {
			panic(err)
		}
		got = n
	})
	e.Run()
	if got != 512 {
		t.Fatalf("read %d, want 512", got)
	}
	if p.Buffered() != 0 {
		t.Fatalf("pipe not drained: %d", p.Buffered())
	}
}

func TestPipeBlocksWhenFull(t *testing.T) {
	e, k := newKernel(1, true)
	p := k.NewPipe(1024)
	var writeDone sim.Time
	k.Spawn("writer", cpuBound, func(t *Task) {
		if _, err := p.Write(t, 2048); err != nil {
			panic(err)
		}
		writeDone = t.Gettime()
	})
	k.Spawn("reader", cpuBound, func(t *Task) {
		t.Nanosleep(100 * sim.Millisecond)
		total := 0
		for total < 2048 {
			n, err := p.Read(t, 2048)
			if err != nil {
				panic(err)
			}
			total += n
		}
	})
	e.Run()
	if writeDone < 100*sim.Millisecond {
		t.Fatalf("writer did not block on full pipe: done at %v", writeDone)
	}
}

func TestPipeEOF(t *testing.T) {
	e, k := newKernel(1, true)
	p := k.NewPipe(1024)
	var n int
	var err error
	k.Spawn("reader", cpuBound, func(t *Task) {
		n, err = p.Read(t, 100)
	})
	e.At(50*sim.Millisecond, p.Close)
	e.Run()
	if err != nil || n != 0 {
		t.Fatalf("EOF read = (%d, %v), want (0, nil)", n, err)
	}
}

func TestPipeWriteOnClosed(t *testing.T) {
	e, k := newKernel(1, true)
	p := k.NewPipe(100)
	var err error
	k.Spawn("writer", cpuBound, func(t *Task) {
		if _, e1 := p.Write(t, 100); e1 != nil {
			panic(e1)
		}
		_, err = p.Write(t, 100) // buffer full, then pipe closes
	})
	e.At(100*sim.Millisecond, p.Close)
	e.Run()
	if err == nil {
		t.Fatal("write on closed pipe did not error")
	}
}

func TestPipeNegativeArgs(t *testing.T) {
	e, k := newKernel(1, true)
	p := k.NewPipe(100)
	k.Spawn("x", cpuBound, func(t *Task) {
		if _, err := p.Write(t, -1); err == nil {
			panic("negative write accepted")
		}
		if _, err := p.Read(t, -1); err == nil {
			panic("negative read accepted")
		}
	})
	e.Run()
}

func TestPingPongThroughPipes(t *testing.T) {
	// Two tasks passing a token back and forth — the pipe-based context
	// switching pattern from UnixBench.
	e, k := newKernel(1, true)
	a2b := k.NewPipe(4096)
	b2a := k.NewPipe(4096)
	const rounds = 100
	count := 0
	k.Spawn("a", cpuBound, func(t *Task) {
		for i := 0; i < rounds; i++ {
			if _, err := a2b.Write(t, 4); err != nil {
				panic(err)
			}
			if _, err := b2a.Read(t, 4); err != nil {
				panic(err)
			}
			count++
		}
	})
	k.Spawn("b", cpuBound, func(t *Task) {
		for i := 0; i < rounds; i++ {
			if _, err := a2b.Read(t, 4); err != nil {
				panic(err)
			}
			if _, err := b2a.Write(t, 4); err != nil {
				panic(err)
			}
		}
	})
	e.Run()
	if count != rounds {
		t.Fatalf("ping-pong completed %d rounds, want %d", count, rounds)
	}
}

func TestUTimeIncludesSMMButTrueTimeDoesNot(t *testing.T) {
	e, k := newKernel(1, true)
	var task *Task
	task = k.Spawn("victim", cpuBound, func(t *Task) { t.Compute(1e9) })
	e.At(200*sim.Millisecond, func() { k.CPU().Stall() })
	e.At(300*sim.Millisecond, func() { k.CPU().Unstall() })
	e.Run()
	if math.Abs(task.UTime().Seconds()-1.1) > 1e-6 {
		t.Fatalf("utime = %v, want 1.1s (SMM charged to task)", task.UTime())
	}
	if math.Abs(task.TrueCPUTime().Seconds()-1.0) > 1e-6 {
		t.Fatalf("true time = %v, want 1.0s", task.TrueCPUTime())
	}
}

func TestHotplugInterface(t *testing.T) {
	e, k := newKernel(1, true)
	if err := k.OnlineCPUs(2); err != nil {
		t.Fatal(err)
	}
	if k.CPU().NumOnline() != 2 {
		t.Fatalf("online = %d, want 2", k.CPU().NumOnline())
	}
	if err := k.SetCPUOnline(7, true); err != nil {
		t.Fatal(err)
	}
	if k.CPU().NumOnline() != 3 {
		t.Fatalf("online = %d, want 3", k.CPU().NumOnline())
	}
	if err := k.SetCPUOnline(42, true); err == nil {
		t.Fatal("bogus CPU id accepted")
	}
	e.Run()
}
