package kernel

import (
	"fmt"

	"smistudy/internal/sim"
)

// FSParams models a simple filesystem: reads and writes move through a
// buffer cache at copy speed; dirty data beyond the cache drains to a
// bandwidth-limited disk. This is all UnixBench's File Copy tests
// exercise.
type FSParams struct {
	BufferCacheBytes int64   // page cache size
	DiskBytesPerSec  float64 // sustained device bandwidth
	OpenOps          float64 // open/creat cost
}

// DefaultFSParams resembles a 2010s SATA disk with a generous cache.
func DefaultFSParams() FSParams {
	return FSParams{
		BufferCacheBytes: 256 << 20,
		DiskBytesPerSec:  120e6,
		OpenOps:          2500,
	}
}

// FS is a node's filesystem instance.
type FS struct {
	k     *Kernel
	par   FSParams
	dirty int64    // bytes not yet drained to disk
	free  sim.Time // disk-idle time horizon
	files map[string]*File
}

// NewFS attaches a filesystem to the kernel.
func (k *Kernel) NewFS(par FSParams) *FS {
	if par.BufferCacheBytes <= 0 {
		par.BufferCacheBytes = DefaultFSParams().BufferCacheBytes
	}
	if par.DiskBytesPerSec <= 0 {
		par.DiskBytesPerSec = DefaultFSParams().DiskBytesPerSec
	}
	return &FS{k: k, par: par, files: make(map[string]*File)}
}

// File is an open file (size-only; contents are irrelevant to timing).
type File struct {
	fs   *FS
	name string
	size int64
	off  int64
}

// Create opens a new empty file, truncating any existing one.
func (fs *FS) Create(t *Task, name string) *File {
	t.Syscall()
	t.Compute(fs.par.OpenOps)
	f := &File{fs: fs, name: name}
	fs.files[name] = f
	return f
}

// Open opens an existing file for reading.
func (fs *FS) Open(t *Task, name string) (*File, error) {
	t.Syscall()
	t.Compute(fs.par.OpenOps)
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("fs: %s: no such file", name)
	}
	return &File{fs: fs, name: name, size: f.size}, nil
}

// Size reports the file's length.
func (f *File) Size() int64 { return f.size }

// Write appends n bytes: a syscall, a user→cache copy, and — once the
// buffer cache is saturated — throttling at disk bandwidth (the task
// blocks while the device drains).
func (f *File) Write(t *Task, n int) int {
	t.Syscall()
	t.Compute(float64(n) * f.fs.k.par.CopyOpsPerByte)
	f.size += int64(n)
	if master, ok := f.fs.files[f.name]; ok {
		master.size = f.size
	}
	f.fs.dirty += int64(n)
	if f.fs.dirty > f.fs.par.BufferCacheBytes {
		// Writeback throttling: block for the disk time of the excess.
		excess := f.fs.dirty - f.fs.par.BufferCacheBytes
		f.fs.dirty = f.fs.par.BufferCacheBytes
		d := sim.Time(float64(excess) / f.fs.par.DiskBytesPerSec * float64(sim.Second))
		now := t.Gettime()
		if f.fs.free < now {
			f.fs.free = now
		}
		f.fs.free += d
		t.proc.Sleep(f.fs.free - now)
	}
	return n
}

// Read consumes up to n bytes from the current offset: a syscall and a
// cache→user copy (reads hit the buffer cache in the File Copy pattern).
func (f *File) Read(t *Task, n int) int {
	t.Syscall()
	left := f.size - f.off
	if int64(n) > left {
		n = int(left)
	}
	if n <= 0 {
		return 0
	}
	t.Compute(float64(n) * f.fs.k.par.CopyOpsPerByte)
	f.off += int64(n)
	return n
}

// Rewind resets the read offset to the start (UnixBench's copy loop
// lseeks back to 0 each pass).
func (f *File) Rewind() { f.off = 0 }

// Sync drains all dirty data to disk, blocking the caller.
func (fs *FS) Sync(t *Task) {
	t.Syscall()
	if fs.dirty == 0 {
		return
	}
	d := sim.Time(float64(fs.dirty) / fs.par.DiskBytesPerSec * float64(sim.Second))
	fs.dirty = 0
	now := t.Gettime()
	if fs.free < now {
		fs.free = now
	}
	fs.free += d
	t.proc.Sleep(fs.free - now)
}

// Remove deletes a file.
func (fs *FS) Remove(t *Task, name string) {
	t.Syscall()
	delete(fs.files, name)
}
