// Package kernel is a minimal simulated operating system for one node.
//
// It binds simulation processes (sim.Proc) to schedulable CPU threads
// (cpu.Thread) and provides the kernel services the paper's workloads
// exercise: compute, syscalls with entry/exit cost, nanosleep,
// CLOCK_MONOTONIC, pipes with blocking readers/writers, sysfs-style CPU
// hotplug, and per-task CPU accounting. Like a real kernel, the
// accounting is blind to System Management Mode: SMM residency is charged
// to whatever task occupied the CPU, which is the misattribution the
// paper warns performance-tool developers about.
//
// The kernel is tickless (the paper ran its multithreaded study on a
// tickless kernel); there is no periodic scheduler tick to perturb
// measurements.
package kernel

import (
	"fmt"

	"smistudy/internal/clock"
	"smistudy/internal/cpu"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// Params sets the kernel's cost model. Costs are in CPU operations (equal
// to cycles for CPI-1 profiles, which all OS micro-benchmark workloads
// use).
type Params struct {
	SyscallOps     float64 // syscall entry + exit
	CtxSwitchOps   float64 // charged when a blocked task resumes
	CopyOpsPerByte float64 // kernel-user copy cost (pipes)
}

// DefaultParams resembles a 2010s Linux on Nehalem: ~150 cycle syscalls,
// ~2000 cycle context switches, ~0.5 cycles/byte copies.
func DefaultParams() Params {
	return Params{SyscallOps: 150, CtxSwitchOps: 2000, CopyOpsPerByte: 0.5}
}

// Kernel is the OS instance of one node.
type Kernel struct {
	eng *sim.Engine
	cpu *cpu.Model
	clk *clock.Node
	par Params

	nextPID int
	live    int
	allDone sim.Signal

	tr   obs.Tracer // nil unless the run is traced
	node int32
}

// SetTracer attaches an observability tracer for task lifecycle events
// and forwards it to the processor model for scheduling events.
func (k *Kernel) SetTracer(tr obs.Tracer, node int) {
	k.tr = tr
	k.node = int32(node)
	k.cpu.SetTracer(tr, node)
}

// New builds a kernel over the given processor and clocks.
func New(eng *sim.Engine, c *cpu.Model, clk *clock.Node, par Params) *Kernel {
	return &Kernel{eng: eng, cpu: c, clk: clk, par: par}
}

// CPU exposes the underlying processor model.
func (k *Kernel) CPU() *cpu.Model { return k.cpu }

// Clock exposes the node's clocks.
func (k *Kernel) Clock() *clock.Node { return k.clk }

// Params returns the kernel cost model.
func (k *Kernel) Params() Params { return k.par }

// Task is a schedulable process/thread.
type Task struct {
	pid  int
	name string
	k    *Kernel
	proc *sim.Proc
	th   *cpu.Thread

	exited   bool
	exitSig  sim.Signal
	exitTime sim.Time
}

// Spawn creates a task running fn with the given workload profile. The
// task starts at the current simulation time and its thread is removed
// from the scheduler when fn returns.
func (k *Kernel) Spawn(name string, prof cpu.Profile, fn func(t *Task)) *Task {
	k.nextPID++
	k.live++
	t := &Task{pid: k.nextPID, name: name, k: k}
	t.th = k.cpu.NewThread(name, prof)
	if k.tr != nil {
		k.tr.Emit(obs.Event{Time: k.eng.Now(), Type: obs.EvTaskSpawn, Node: k.node,
			Track: -1, A: int64(t.pid), Name: name})
	}
	t.proc = k.eng.Go(name, func(p *sim.Proc) {
		defer func() {
			t.exited = true
			t.exitTime = p.Now()
			k.cpu.Remove(t.th)
			if k.tr != nil {
				k.tr.Emit(obs.Event{Time: p.Now(), Type: obs.EvTaskExit, Node: k.node,
					Track: -1, A: int64(t.pid), Name: name})
			}
			t.exitSig.Broadcast(k.eng)
			k.live--
			if k.live == 0 {
				k.allDone.Broadcast(k.eng)
			}
		}()
		fn(t)
	})
	return t
}

// PID reports the task's process id.
func (t *Task) PID() int { return t.pid }

// Name reports the task name.
func (t *Task) Name() string { return t.name }

// Kernel reports the owning kernel.
func (t *Task) Kernel() *Kernel { return t.k }

// Proc exposes the underlying simulation process.
func (t *Task) Proc() *sim.Proc { return t.proc }

// Thread exposes the underlying CPU thread (for profile changes and
// accounting).
func (t *Task) Thread() *cpu.Thread { return t.th }

// Compute executes ops operations of user-mode work.
func (t *Task) Compute(ops float64) {
	if ops <= 0 {
		return
	}
	t.th.Compute(t.proc, ops)
}

// Syscall charges one syscall entry/exit.
func (t *Task) Syscall() { t.Compute(t.k.par.SyscallOps) }

// Gettime reads CLOCK_MONOTONIC (vDSO — no syscall cost).
func (t *Task) Gettime() sim.Time { return t.k.clk.Monotonic() }

// UTime reports the CPU time the kernel accounts to this task. SMM
// residency is included — the kernel cannot see it.
func (t *Task) UTime() sim.Time { return t.th.OSTime() }

// TrueCPUTime reports the CPU time during which the task actually made
// progress (simulator ground truth; no real kernel can report this).
func (t *Task) TrueCPUTime() sim.Time { return t.th.TrueTime() }

// SetAffinity pins the task to one logical CPU
// (sched_setaffinity-style); cpu -1 clears the pin.
func (t *Task) SetAffinity(cpu int) error {
	t.Syscall()
	if cpu < 0 {
		t.k.cpu.Unpin(t.th)
		return nil
	}
	return t.k.cpu.Pin(t.th, cpu)
}

// Nanosleep blocks the task for d of wall time.
func (t *Task) Nanosleep(d sim.Time) {
	t.Syscall()
	t.proc.Sleep(d)
}

// Join blocks until other exits.
func (t *Task) Join(other *Task) {
	if other.exited {
		return
	}
	other.exitSig.Wait(t.proc)
}

// Exited reports whether the task's function returned, and when.
func (t *Task) Exited() (bool, sim.Time) { return t.exited, t.exitTime }

// WaitAllExited parks the calling process until every spawned task has
// exited. Must be called from a plain sim process, not a Task.
func (k *Kernel) WaitAllExited(p *sim.Proc) {
	for k.live > 0 {
		k.allDone.Wait(p)
	}
}

// SetCPUOnline is the sysfs hotplug interface
// (/sys/devices/system/cpu/cpuN/online).
func (k *Kernel) SetCPUOnline(id int, online bool) error {
	return k.cpu.SetOnline(id, online)
}

// OnlineCPUs onlines exactly n logical CPUs, physical cores before
// hyper-threaded siblings, mirroring the paper's methodology.
func (k *Kernel) OnlineCPUs(n int) error { return k.cpu.OnlineFirst(n) }

// Pipe is a POSIX-style pipe: a bounded byte buffer with blocking reads
// and writes. Only byte counts flow (payloads are irrelevant to timing).
type Pipe struct {
	k        *Kernel
	buffered int
	capacity int
	readers  sim.Signal
	writers  sim.Signal
	closed   bool
}

// DefaultPipeCapacity matches Linux's 64 KiB default.
const DefaultPipeCapacity = 64 << 10

// NewPipe creates a pipe with the given buffer capacity (bytes).
func (k *Kernel) NewPipe(capacity int) *Pipe {
	if capacity <= 0 {
		capacity = DefaultPipeCapacity
	}
	return &Pipe{k: k, capacity: capacity}
}

// Buffered reports the bytes currently in the pipe.
func (p *Pipe) Buffered() int { return p.buffered }

// Close marks the pipe closed; blocked readers return 0 (EOF) and blocked
// writers return an error.
func (p *Pipe) Close() {
	p.closed = true
	p.readers.Broadcast(p.k.eng)
	p.writers.Broadcast(p.k.eng)
}

// Write transfers n bytes into the pipe, blocking while the buffer is
// full. It returns the bytes written (n, or fewer on close) and charges
// the writer one syscall plus copy cost per partial write.
func (p *Pipe) Write(t *Task, n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("pipe: negative write")
	}
	written := 0
	for written < n {
		if p.closed {
			return written, fmt.Errorf("pipe: write on closed pipe (EPIPE)")
		}
		space := p.capacity - p.buffered
		if space == 0 {
			p.writers.Wait(t.proc)
			t.Compute(p.k.par.CtxSwitchOps)
			continue
		}
		chunk := n - written
		if chunk > space {
			chunk = space
		}
		t.Syscall()
		t.Compute(float64(chunk) * p.k.par.CopyOpsPerByte)
		p.buffered += chunk
		written += chunk
		p.readers.Broadcast(p.k.eng)
	}
	return written, nil
}

// Read transfers up to n bytes out of the pipe, blocking while it is
// empty. Returns 0 at EOF (closed and drained).
func (p *Pipe) Read(t *Task, n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("pipe: negative read")
	}
	for {
		if p.buffered == 0 {
			if p.closed {
				return 0, nil
			}
			p.readers.Wait(t.proc)
			t.Compute(p.k.par.CtxSwitchOps)
			continue
		}
		chunk := n
		if chunk > p.buffered {
			chunk = p.buffered
		}
		t.Syscall()
		t.Compute(float64(chunk) * p.k.par.CopyOpsPerByte)
		p.buffered -= chunk
		p.writers.Broadcast(p.k.eng)
		return chunk, nil
	}
}
