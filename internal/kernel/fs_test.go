package kernel

import (
	"math"
	"testing"

	"smistudy/internal/sim"
)

func fsSetup(cacheBytes int64) (*sim.Engine, *Kernel, *FS) {
	e, k := newKernel(1, false)
	fs := k.NewFS(FSParams{BufferCacheBytes: cacheBytes, DiskBytesPerSec: 100e6, OpenOps: 1000})
	return e, k, fs
}

func TestFileWriteRead(t *testing.T) {
	e, k, fs := fsSetup(1 << 30)
	var got int
	k.Spawn("cp", cpuBound, func(tk *Task) {
		f := fs.Create(tk, "out")
		f.Write(tk, 4096)
		f.Write(tk, 4096)
		if f.Size() != 8192 {
			panic("size wrong")
		}
		r, err := fs.Open(tk, "out")
		if err != nil {
			panic(err)
		}
		got += r.Read(tk, 6000)
		got += r.Read(tk, 6000)
		got += r.Read(tk, 6000) // EOF
	})
	e.Run()
	if got != 8192 {
		t.Fatalf("read %d, want 8192", got)
	}
}

func TestOpenMissingFile(t *testing.T) {
	e, k, fs := fsSetup(1 << 30)
	var err error
	k.Spawn("r", cpuBound, func(tk *Task) {
		_, err = fs.Open(tk, "nope")
	})
	e.Run()
	if err == nil {
		t.Fatal("missing file opened")
	}
}

func TestWritebackThrottlesAtDiskSpeed(t *testing.T) {
	// 1 MiB cache, 100 MB/s disk: writing 101 MiB must take ≈1 s of
	// disk time beyond the copy cost.
	e, k, fs := fsSetup(1 << 20)
	var took sim.Time
	k.Spawn("w", cpuBound, func(tk *Task) {
		start := tk.Gettime()
		f := fs.Create(tk, "big")
		for i := 0; i < 101; i++ {
			f.Write(tk, 1<<20)
		}
		took = tk.Gettime() - start
	})
	e.Run()
	if took < 900*sim.Millisecond {
		t.Fatalf("writeback not throttled: %v", took)
	}
	if took > 2*sim.Second {
		t.Fatalf("writeback too slow: %v", took)
	}
}

func TestCacheAbsorbsSmallWrites(t *testing.T) {
	e, k, fs := fsSetup(1 << 30)
	var took sim.Time
	k.Spawn("w", cpuBound, func(tk *Task) {
		start := tk.Gettime()
		f := fs.Create(tk, "small")
		for i := 0; i < 100; i++ {
			f.Write(tk, 4096)
		}
		took = tk.Gettime() - start
	})
	e.Run()
	// Pure syscall+copy cost: ~100×(150+1000... per write ~150+2048+...)
	if took > 5*sim.Millisecond {
		t.Fatalf("cached writes hit the disk: %v", took)
	}
}

func TestSyncDrains(t *testing.T) {
	e, k, fs := fsSetup(1 << 30)
	var syncTook sim.Time
	k.Spawn("w", cpuBound, func(tk *Task) {
		f := fs.Create(tk, "data")
		f.Write(tk, 50<<20) // 50 MiB dirty, cached
		start := tk.Gettime()
		fs.Sync(tk)
		syncTook = tk.Gettime() - start
		fs.Sync(tk) // second sync: nothing dirty
	})
	e.Run()
	want := 0.5 // 50 MiB at 100 MB/s
	if math.Abs(syncTook.Seconds()-want) > 0.05 {
		t.Fatalf("sync took %v, want ≈0.5s", syncTook)
	}
}

func TestRemove(t *testing.T) {
	e, k, fs := fsSetup(1 << 30)
	k.Spawn("w", cpuBound, func(tk *Task) {
		fs.Create(tk, "gone")
		fs.Remove(tk, "gone")
		if _, err := fs.Open(tk, "gone"); err == nil {
			panic("removed file still opens")
		}
	})
	e.Run()
}

func TestSeek(t *testing.T) {
	e, k, fs := fsSetup(1 << 30)
	var n1, n2 int
	k.Spawn("w", cpuBound, func(tk *Task) {
		f := fs.Create(tk, "s")
		f.Write(tk, 1000)
		r, _ := fs.Open(tk, "s")
		n1 = r.Read(tk, 1000)
		r.Rewind()
		n2 = r.Read(tk, 1000)
	})
	e.Run()
	if n1 != 1000 || n2 != 1000 {
		t.Fatalf("seek/read = %d,%d", n1, n2)
	}
}

func TestFSDefaults(t *testing.T) {
	_, k := newKernel(1, false)
	fs := k.NewFS(FSParams{})
	if fs.par.BufferCacheBytes <= 0 || fs.par.DiskBytesPerSec <= 0 {
		t.Fatal("defaults not applied")
	}
}
