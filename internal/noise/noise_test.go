package noise

import (
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func detect(t *testing.T, smi smm.DriverConfig, cfg DetectorConfig, seed int64) DetectorReport {
	t.Helper()
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.R410(smi))
	cl.StartSMI()
	return RunDetector(cl, cfg)
}

func TestDetectorFindsLongSMIs(t *testing.T) {
	rep := detect(t, smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 1000, PhaseJitter: true},
		DetectorConfig{Duration: 5 * sim.Second}, 1)
	if rep.Matched < 4 {
		t.Fatalf("matched %d long SMIs over 5s, want ≥4 (missed %d, fp %d)",
			rep.Matched, rep.Missed, rep.FalsePositives)
	}
	if rep.Missed > 1 {
		t.Fatalf("missed %d long SMIs", rep.Missed)
	}
	if rep.MaxLatency < 90*sim.Millisecond {
		t.Fatalf("max detected latency %v, want ≈100ms", rep.MaxLatency)
	}
}

func TestDetectorFindsShortSMIs(t *testing.T) {
	rep := detect(t, smm.DriverConfig{Level: smm.SMMShort, PeriodJiffies: 500, PhaseJitter: true},
		DetectorConfig{Duration: 5 * sim.Second}, 2)
	if rep.Matched < 8 {
		t.Fatalf("matched %d short SMIs, want ≥8 (missed %d)", rep.Matched, rep.Missed)
	}
}

func TestDetectorQuietMachine(t *testing.T) {
	rep := detect(t, smm.DriverConfig{}, DetectorConfig{Duration: 3 * sim.Second}, 1)
	if len(rep.Detections) != 0 || rep.FalsePositives != 0 {
		t.Fatalf("false positives on a quiet machine: %+v", rep)
	}
	if rep.Matched != 0 || rep.Missed != 0 {
		t.Fatalf("phantom episodes: %+v", rep)
	}
}

func TestDetectorLatencyAccuracy(t *testing.T) {
	rep := detect(t, smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 1000, DurMin: 100 * sim.Millisecond, DurMax: 100 * sim.Millisecond, PhaseJitter: true},
		DetectorConfig{Duration: 4 * sim.Second}, 3)
	if len(rep.Detections) == 0 {
		t.Fatal("no detections")
	}
	for _, d := range rep.Detections {
		// Residency = 100ms + per-CPU rendezvous (8 × 400µs).
		want := 100*sim.Millisecond + 8*400*sim.Microsecond
		err := d.Latency - want
		if err < -sim.Millisecond || err > sim.Millisecond {
			t.Fatalf("latency %v, want ≈%v", d.Latency, want)
		}
	}
}

func TestDetectorConfigDefaults(t *testing.T) {
	var cfg DetectorConfig
	cfg.defaults()
	if cfg.ChunkOps <= 0 || cfg.Threshold <= 0 || cfg.Duration <= 0 {
		t.Fatal("defaults not applied")
	}
}

func TestAmplification(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.Wyeast(2, false, smm.SMMLong))
	cl.StartSMI()
	e.RunUntil(10 * sim.Second)
	a := ComputeAmplification(10*sim.Second, 12*sim.Second, cl.Nodes)
	if a.Residency <= 0 {
		t.Fatal("no residency measured")
	}
	if a.Factor <= 0 {
		t.Fatal("factor not computed")
	}
	want := float64(2*sim.Second) / float64(a.Residency)
	if a.Factor != want {
		t.Fatalf("factor = %v, want %v", a.Factor, want)
	}
}

func TestAmplificationNoNodes(t *testing.T) {
	a := ComputeAmplification(1, 2, nil)
	if a.Factor != 0 || a.Residency != 0 {
		t.Fatal("empty node list should yield zero amplification")
	}
}

func TestPercentilesAndHistogram(t *testing.T) {
	rep := DetectorReport{Detections: []Detection{
		{Latency: 1 * sim.Millisecond},
		{Latency: 2 * sim.Millisecond},
		{Latency: 3 * sim.Millisecond},
		{Latency: 100 * sim.Millisecond},
	}}
	if got := rep.Percentile(50); got != 2*sim.Millisecond {
		t.Errorf("p50 = %v, want 2ms", got)
	}
	if got := rep.Percentile(100); got != 100*sim.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
	if got := rep.Percentile(0); got != sim.Millisecond {
		t.Errorf("p0 = %v, want 1ms", got)
	}
	h := rep.Histogram([]sim.Time{2 * sim.Millisecond, 10 * sim.Millisecond})
	// <2ms: {1ms} → 1; [2,10): {2,3} → 2; ≥10: {100} → 1.
	if h[0] != 1 || h[1] != 2 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestPercentileEmpty(t *testing.T) {
	var rep DetectorReport
	if rep.Percentile(50) != 0 {
		t.Error("empty report percentile should be 0")
	}
	if h := rep.Histogram([]sim.Time{sim.Millisecond}); h[0] != 0 || h[1] != 0 {
		t.Error("empty histogram should be zero")
	}
}

func TestDetectorPercentilesSeparateShortAndLong(t *testing.T) {
	// Mixed injection: the detector's latency distribution must show
	// two distinct populations.
	e := sim.New(7)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{
		Level: smm.SMMLong, PeriodJiffies: 700, PhaseJitter: true,
	}))
	// A second, short-SMI source on the same node.
	e.Go("short-src", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			p.Sleep(500 * sim.Millisecond)
			cl.Nodes[0].SMM.TriggerSMI(2*sim.Millisecond, nil)
		}
	})
	cl.StartSMI()
	rep := RunDetector(cl, DetectorConfig{Duration: 6 * sim.Second})
	if rep.Matched < 8 {
		t.Fatalf("matched %d mixed SMIs", rep.Matched)
	}
	p25 := rep.Percentile(25)
	p90 := rep.Percentile(90)
	if p25 > 10*sim.Millisecond {
		t.Fatalf("p25 = %v, want short-SMI scale", p25)
	}
	if p90 < 90*sim.Millisecond {
		t.Fatalf("p90 = %v, want long-SMI scale", p90)
	}
}
