// Package noise provides the tooling side of the paper's motivation:
// detecting SMIs from inside the system (the way hwlat and RTOS users
// do) and quantifying how injected SMM noise is absorbed or amplified by
// an application.
//
// The Detector runs a spin loop on the simulated machine, repeatedly
// executing a short calibrated chunk of work and reading the TSC. When a
// chunk takes much longer than calibration predicts, something invisible
// preempted the spin — on an otherwise idle core that something is an
// SMI. Detections are compared against the SMM controller's ground-truth
// episode log, which a real tool never has.
package noise

import (
	"math"
	"sort"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/obs"
	"smistudy/internal/perturb"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// Detection is one latency gap the detector observed.
type Detection struct {
	At      sim.Time // when the gap ended
	Latency sim.Time // how much longer the chunk took than expected
}

// DetectorConfig tunes the spin-loop detector.
type DetectorConfig struct {
	// ChunkOps is the calibrated spin chunk (default 100k ops ≈ 42 µs
	// at 2.4 GHz).
	ChunkOps float64
	// Threshold is the minimum excess latency reported (default 500 µs;
	// hwlat uses 10 µs, but a shared machine needs headroom).
	Threshold sim.Time
	// Duration is how long to spin.
	Duration sim.Time
}

func (c *DetectorConfig) defaults() {
	if c.ChunkOps <= 0 {
		c.ChunkOps = 100e3
	}
	if c.Threshold <= 0 {
		c.Threshold = 500 * sim.Microsecond
	}
	if c.Duration <= 0 {
		c.Duration = 5 * sim.Second
	}
}

// TaggedEpisode is one ground-truth steal window labeled with the
// noise family that produced it, so a detector run under several
// concurrent sources can be scored per family.
type TaggedEpisode struct {
	Family   string
	CPU      int // perturb.AllCPUs when the episode stalls every CPU
	Start    sim.Time
	Duration sim.Time
}

// FamilyScore is one noise family's slice of a union scoring.
type FamilyScore struct {
	Family      string
	GroundTruth int
	Matched     int
	Missed      int
}

// Recall reports the fraction of this family's episodes detected; 1
// when the family injected nothing.
func (f FamilyScore) Recall() float64 {
	if f.GroundTruth == 0 {
		return 1
	}
	return float64(f.Matched) / float64(f.GroundTruth)
}

// DetectorReport summarizes a detector run against ground truth.
type DetectorReport struct {
	Detections []Detection
	// GroundTruth is the number of episodes scored against.
	GroundTruth int
	// Matched counts ground-truth episodes the detector saw (within
	// one chunk of the episode window); Missed are episodes it did not.
	Matched, Missed int
	// FalsePositives are detections not matching any episode.
	FalsePositives int
	// MaxLatency is the largest gap observed.
	MaxLatency sim.Time
	// Families breaks GroundTruth/Matched/Missed down per noise family,
	// in sorted family order. A detector cannot attribute a gap to a
	// family — precision is global — but recall is per family.
	Families []FamilyScore
}

// Precision reports the fraction of detections that matched a real
// episode; 1 when there were no detections (nothing wrongly claimed).
func (r DetectorReport) Precision() float64 {
	if r.Matched+r.FalsePositives == 0 {
		return 1
	}
	return float64(r.Matched) / float64(r.Matched+r.FalsePositives)
}

// Recall reports the fraction of ground-truth episodes detected; 1 when
// there was nothing to detect.
func (r DetectorReport) Recall() float64 {
	if r.GroundTruth == 0 {
		return 1
	}
	return float64(r.Matched) / float64(r.GroundTruth)
}

// Percentile reports the p-th percentile (0–100) of detected gap
// latencies, by nearest-rank; zero if there are no detections.
func (r DetectorReport) Percentile(p float64) sim.Time {
	n := len(r.Detections)
	if n == 0 {
		return 0
	}
	lats := make([]sim.Time, n)
	for i, d := range r.Detections {
		lats[i] = d.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if p <= 0 {
		return lats[0]
	}
	if p >= 100 {
		return lats[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return lats[rank]
}

// Histogram buckets detected latencies into the given boundaries
// (hwlat-style): counts[i] holds gaps in [bounds[i-1], bounds[i]), with
// counts[0] below bounds[0] and counts[len(bounds)] at or above the last
// boundary.
func (r DetectorReport) Histogram(bounds []sim.Time) []int {
	counts := make([]int, len(bounds)+1)
	for _, d := range r.Detections {
		i := sort.Search(len(bounds), func(i int) bool { return d.Latency < bounds[i] })
		counts[i]++
	}
	return counts
}

// RunDetector spins on the first node of cl for the configured duration
// while the node's SMI driver (if armed by the caller) injects SMIs, then
// scores detections against the controller's episode log.
func RunDetector(cl *cluster.Cluster, cfg DetectorConfig) DetectorReport {
	cfg.defaults()
	node := cl.Nodes[0]
	var dets []Detection

	done := false
	node.Kernel.Spawn("smidetect", cpu.Profile{CPI: 1}, func(t *kernel.Task) {
		// Calibrate: how long does a chunk take on this machine when
		// nothing interferes? Use the best of a few warm-up chunks
		// (minimum filters out unlucky calibration runs).
		calib := sim.Forever
		for i := 0; i < 8; i++ {
			s := t.Gettime()
			t.Compute(cfg.ChunkOps)
			if d := t.Gettime() - s; d < calib {
				calib = d
			}
		}
		deadline := t.Gettime() + cfg.Duration
		for t.Gettime() < deadline {
			s := t.Gettime()
			t.Compute(cfg.ChunkOps)
			gap := t.Gettime() - s - calib
			if gap >= cfg.Threshold {
				dets = append(dets, Detection{At: t.Gettime(), Latency: gap})
			}
		}
		done = true
		cl.Eng.Stop()
	})
	cl.Eng.Run()
	if !done {
		panic("noise: detector never finished")
	}
	// Ground truth is the union of every noise source on the node. The
	// spin task runs alone on an otherwise idle machine, so it lands on
	// logical CPU 0; core-scoped episodes elsewhere cannot have touched
	// it and are excluded from the score.
	var eps []TaggedEpisode
	for _, s := range node.Sources() {
		fam := s.Meta().Family
		for _, ep := range s.Episodes() {
			if ep.CPU != perturb.AllCPUs && ep.CPU != 0 {
				continue
			}
			eps = append(eps, TaggedEpisode{Family: fam, CPU: ep.CPU, Start: ep.Start, Duration: ep.Duration})
		}
	}
	return ScoreUnion(dets, eps)
}

// EpisodesFromEvents reconstructs a node's SMM episode log from
// observability events (obs.EvSMMExit carries the episode end and
// residency). It lets a detector be scored against a trace captured on
// the bus instead of reaching into the controller — the overlay path
// cmd/smidetect uses to validate traces as ground truth.
func EpisodesFromEvents(evs []obs.Event, node int32) []smm.Episode {
	var eps []smm.Episode
	for _, ev := range evs {
		if ev.Type == obs.EvSMMExit && ev.Node == node {
			eps = append(eps, smm.Episode{Start: ev.Time - ev.Dur, Duration: ev.Dur})
		}
	}
	return eps
}

// Score matches detections to ground-truth SMM episodes: each episode
// consumes at most one detection landing at or shortly after it, leftover
// detections are false positives. It is the single-family (SMM) special
// case of ScoreUnion.
func Score(dets []Detection, eps []smm.Episode) DetectorReport {
	tagged := make([]TaggedEpisode, len(eps))
	for i, ep := range eps {
		tagged[i] = TaggedEpisode{Family: smm.Family, CPU: perturb.AllCPUs, Start: ep.Start, Duration: ep.Duration}
	}
	return ScoreUnion(dets, tagged)
}

// ScoreUnion matches detections against the union of several noise
// families' ground truth: episodes are merged in time order and each
// consumes at most one detection landing at or shortly after it.
// Leftover detections are false positives; matches and misses are also
// tallied per family.
func ScoreUnion(dets []Detection, eps []TaggedEpisode) DetectorReport {
	eps = append([]TaggedEpisode(nil), eps...)
	sort.SliceStable(eps, func(i, j int) bool {
		if eps[i].Start != eps[j].Start {
			return eps[i].Start < eps[j].Start
		}
		return eps[i].Family < eps[j].Family
	})
	rep := DetectorReport{Detections: dets, GroundTruth: len(eps)}
	byFam := map[string]*FamilyScore{}
	famOf := func(name string) *FamilyScore {
		f, ok := byFam[name]
		if !ok {
			f = &FamilyScore{Family: name}
			byFam[name] = f
		}
		return f
	}
	used := make([]bool, len(dets))
	const slack = 2 * sim.Millisecond
	for _, ep := range eps {
		f := famOf(ep.Family)
		f.GroundTruth++
		found := false
		for i, d := range dets {
			if used[i] {
				continue
			}
			// The detection lands when the chunk spanning the episode
			// completes: at or shortly after episode end.
			if d.At >= ep.Start && d.At <= ep.Start+ep.Duration+slack+d.Latency {
				used[i] = true
				found = true
				break
			}
		}
		if found {
			rep.Matched++
			f.Matched++
		} else {
			rep.Missed++
			f.Missed++
		}
	}
	for i := range dets {
		if !used[i] {
			rep.FalsePositives++
		}
		if dets[i].Latency > rep.MaxLatency {
			rep.MaxLatency = dets[i].Latency
		}
	}
	fams := make([]string, 0, len(byFam))
	for name := range byFam {
		fams = append(fams, name)
	}
	sort.Strings(fams)
	for _, name := range fams {
		rep.Families = append(rep.Families, *byFam[name])
	}
	return rep
}

// Amplification quantifies how an application's slowdown compares to the
// raw SMM residency injected into it — below 1 the noise was partially
// absorbed (idle/wait time soaked it up), above 1 it was amplified
// (synchronization propagated one node's stall to all).
type Amplification struct {
	BaseTime  sim.Time // runtime without noise
	NoisyTime sim.Time // runtime with noise
	// Residency is the per-node mean SMM residency during the noisy run.
	Residency sim.Time
	// Factor = (NoisyTime-BaseTime)/Residency.
	Factor float64
}

// ComputeAmplification builds the amplification summary for a run across
// the given nodes' SMM stats.
func ComputeAmplification(base, noisy sim.Time, nodes []*cluster.Node) Amplification {
	var total sim.Time
	for _, n := range nodes {
		total += n.SMM.Stats().TotalResidency
	}
	a := Amplification{BaseTime: base, NoisyTime: noisy}
	if len(nodes) > 0 {
		a.Residency = total / sim.Time(len(nodes))
	}
	if a.Residency > 0 {
		a.Factor = float64(noisy-base) / float64(a.Residency)
	}
	return a
}
