package perturb

import (
	"testing"

	"smistudy/internal/sim"
)

// fakeStaller records stall/unstall calls without a real CPU model.
type fakeStaller struct {
	n     int
	depth map[int]int
}

func newFakeStaller(n int) *fakeStaller { return &fakeStaller{n: n, depth: map[int]int{}} }

func (f *fakeStaller) StallCPU(id int)   { f.depth[id]++ }
func (f *fakeStaller) UnstallCPU(id int) { f.depth[id]-- }
func (f *fakeStaller) NumLogical() int   { return f.n }

func TestDeriveSeedDistinctAndStable(t *testing.T) {
	seen := map[int64]bool{}
	for salt := uint64(0); salt < 64; salt++ {
		s := DeriveSeed(7, salt)
		if seen[s] {
			t.Fatalf("salt %d collides", salt)
		}
		seen[s] = true
		if s != DeriveSeed(7, salt) {
			t.Fatalf("salt %d not stable", salt)
		}
	}
	if DeriveSeed(7, 0) == DeriveSeed(8, 0) {
		t.Fatalf("base seeds 7 and 8 collide at salt 0")
	}
}

func TestJitterConfigValidate(t *testing.T) {
	ms := sim.Millisecond
	us := sim.Microsecond
	bad := []JitterConfig{
		{},
		{Period: 10 * ms},
		{Period: 10 * ms, Duration: 10 * ms},
		{Period: 10 * ms, Duration: 20 * ms},
		{Period: 10 * ms, Duration: 100 * us, Jitter: -0.1},
		{Period: 10 * ms, Duration: 100 * us, Jitter: 1},
		{Period: 10 * ms, Duration: 100 * us, CPUs: []int{-1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	good := JitterConfig{Period: 10 * ms, Duration: 100 * us, Jitter: 0.3, CPUs: []int{0, 3}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestJitterRejectsOutOfRangeCPU(t *testing.T) {
	e := sim.New(1)
	cfg := JitterConfig{Period: 10 * sim.Millisecond, Duration: 100 * sim.Microsecond, CPUs: []int{5}}
	if _, err := NewJitter(e, newFakeStaller(4), cfg); err == nil {
		t.Fatalf("NewJitter accepted CPU 5 on a 4-logical machine")
	}
}

// runJitter drives a jitter source for the given horizon and returns it.
func runJitter(t *testing.T, seed int64, horizon sim.Time, cpus []int) *Jitter {
	t.Helper()
	e := sim.New(1)
	st := newFakeStaller(4)
	j, err := NewJitter(e, st, JitterConfig{
		Period:   10 * sim.Millisecond,
		Duration: 200 * sim.Microsecond,
		Jitter:   0.25,
		Seed:     seed,
		CPUs:     cpus,
	})
	if err != nil {
		t.Fatalf("NewJitter: %v", err)
	}
	j.Start()
	// Stop the source at the horizon but let the engine drain: an
	// in-flight steal completes (and unstalls its CPU) past the edge.
	e.After(horizon, func() { j.Stop() })
	e.After(horizon+20*sim.Millisecond, func() { e.Stop() })
	e.Run()
	for id, d := range st.depth {
		if d != 0 {
			t.Fatalf("cpu %d left at stall depth %d", id, d)
		}
	}
	return j
}

func TestJitterReplayDeterminism(t *testing.T) {
	a := runJitter(t, 42, sim.Second, nil)
	b := runJitter(t, 42, sim.Second, nil)
	ea, eb := a.Episodes(), b.Episodes()
	if len(ea) == 0 {
		t.Fatalf("no episodes after 1 s of 10 ms ticks")
	}
	if len(ea) != len(eb) {
		t.Fatalf("replay produced %d episodes vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("episode %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if a.Stolen() != b.Stolen() {
		t.Fatalf("stolen differs: %v vs %v", a.Stolen(), b.Stolen())
	}
	c := runJitter(t, 43, sim.Second, nil)
	if len(c.Episodes()) == len(ea) && c.Episodes()[0] == ea[0] {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestJitterEpisodeBounds(t *testing.T) {
	j := runJitter(t, 1, sim.Second, []int{0, 2})
	period, dur, frac := 10*sim.Millisecond, 200*sim.Microsecond, 0.25
	minDur := sim.Time(float64(dur) * (1 - frac))
	maxDur := sim.Time(float64(dur)*(1+frac)) + 1
	perCPU := map[int]int{}
	for _, ep := range j.Episodes() {
		if ep.CPU != 0 && ep.CPU != 2 {
			t.Fatalf("episode on unexpected CPU %d", ep.CPU)
		}
		perCPU[ep.CPU]++
		if ep.Duration < minDur || ep.Duration > maxDur {
			t.Fatalf("episode duration %v outside [%v, %v]", ep.Duration, minDur, maxDur)
		}
	}
	// ~100 ticks/CPU over 1 s at a 10 ms period; jitter keeps it close.
	for _, cpu := range []int{0, 2} {
		n := perCPU[cpu]
		if n < 80 || n > 120 {
			t.Fatalf("cpu %d saw %d episodes over 1 s at period %v", cpu, n, period)
		}
	}
	var stolen sim.Time
	for _, ep := range j.Episodes() {
		stolen += ep.Duration
	}
	if stolen != j.Stolen() {
		t.Fatalf("Stolen() = %v, episode sum = %v", j.Stolen(), stolen)
	}
}

func TestJitterStopCancelsFutureTicks(t *testing.T) {
	e := sim.New(1)
	st := newFakeStaller(2)
	j, err := NewJitter(e, st, JitterConfig{
		Period: 10 * sim.Millisecond, Duration: 200 * sim.Microsecond,
	})
	if err != nil {
		t.Fatalf("NewJitter: %v", err)
	}
	j.Start()
	if !j.Running() {
		t.Fatalf("not running after Start")
	}
	e.After(100*sim.Millisecond, func() { j.Stop() })
	e.After(sim.Second, func() { e.Stop() })
	e.Run()
	if j.Running() {
		t.Fatalf("still running after Stop")
	}
	for _, ep := range j.Episodes() {
		// In-flight steals may complete just past the stop edge, but no
		// new tick may start after it.
		if ep.Start > 100*sim.Millisecond {
			t.Fatalf("episode started at %v, after Stop at 100 ms", ep.Start)
		}
	}
	for id, d := range st.depth {
		if d != 0 {
			t.Fatalf("cpu %d left at stall depth %d", id, d)
		}
	}
}

func TestMetaAndScopeStrings(t *testing.T) {
	e := sim.New(1)
	j, err := NewJitter(e, newFakeStaller(2), JitterConfig{
		Period: 10 * sim.Millisecond, Duration: 200 * sim.Microsecond,
	})
	if err != nil {
		t.Fatalf("NewJitter: %v", err)
	}
	m := j.Meta()
	if m.Family != JitterFamily || m.Scope != ScopeCore || !m.Visible {
		t.Fatalf("jitter meta = %+v", m)
	}
	for s, want := range map[Scope]string{ScopeCore: "core", ScopeSocket: "socket", ScopeGlobal: "global"} {
		if s.String() != want {
			t.Errorf("Scope(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}
