// Package perturb defines the noise-source abstraction the simulator's
// perturbation families plug into. A Source produces a schedule of
// steal episodes — intervals during which one or more logical CPUs
// make no forward progress — plus metadata describing what kind of
// noise it is. SMM (internal/smm) is the first family: a global,
// OS-invisible source. OS/daemon jitter (Jitter, in this package) is
// the second: core-scoped and OS-visible. Detectors score against the
// union of all sources' ground truth, and the report layer attributes
// stolen time per family, so new families compose without re-threading
// the stack.
package perturb

import "smistudy/internal/sim"

// Scope describes how much of a node one of a source's episodes
// freezes at a time.
type Scope int

const (
	// ScopeCore episodes steal a single logical CPU (daemon ticks,
	// per-core kernel housekeeping).
	ScopeCore Scope = iota
	// ScopeSocket episodes steal every logical CPU of one socket.
	ScopeSocket
	// ScopeGlobal episodes steal every logical CPU of the node (SMM:
	// all CPUs rendezvous in the handler).
	ScopeGlobal
)

func (s Scope) String() string {
	switch s {
	case ScopeCore:
		return "core"
	case ScopeSocket:
		return "socket"
	case ScopeGlobal:
		return "global"
	}
	return "unknown"
}

// Meta identifies a noise family and its steal semantics.
type Meta struct {
	// Family is the short name used for attribution categories
	// ("<family>-stolen"), detector scoring, and scenario configs:
	// "smm", "osjitter".
	Family string
	// Scope is how much of the node one episode freezes.
	Scope Scope
	// Visible reports whether the OS can observe and account the
	// stolen time. SMM is invisible (the kernel keeps charging the
	// interrupted thread); a daemon tick is visible (the kernel
	// charges the daemon, not the preempted thread).
	Visible bool
}

// AllCPUs marks an episode that froze every logical CPU of the node.
const AllCPUs = -1

// Episode is one completed steal interval: ground truth for detectors
// and the per-family attribution in reports.
type Episode struct {
	// CPU is the logical CPU the episode stole, or AllCPUs for a
	// node-global episode.
	CPU      int
	Start    sim.Time
	Duration sim.Time
}

// End is the episode's end time.
func (e Episode) End() sim.Time { return e.Start + e.Duration }

// Source is one provisioned noise source on a node. Both the SMM
// driver and the jitter source implement it; cluster provisioning,
// detectors, and reports consume sources through this interface only.
type Source interface {
	Meta() Meta
	// Start arms the source; Stop disarms it (an in-flight episode
	// still completes so no CPU is left stalled).
	Start()
	Stop()
	Running() bool
	// Episodes returns the completed-steal ground-truth log.
	Episodes() []Episode
	// Stolen is the total residency stolen so far.
	Stolen() sim.Time
}

// CPUStaller is the processor-side hook core-scoped sources drive.
// cpu.Model satisfies it.
type CPUStaller interface {
	// StallCPU freezes one logical CPU; UnstallCPU releases it.
	// Stalls nest per CPU and independently of the node-global stall.
	StallCPU(id int)
	UnstallCPU(id int)
	NumLogical() int
}

// DeriveSeed deterministically derives an independent stream seed from
// a base seed and a salt (splitmix64 finalizer). Related sources — per
// node, per run, per CPU — mix distinct salts so they never share an
// RNG stream, while the same (base, salt) always replays the same
// schedule.
func DeriveSeed(base int64, salt uint64) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(salt+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
