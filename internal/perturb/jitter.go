package perturb

import (
	"fmt"
	"math/rand"

	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// JitterFamily is the family name of the OS/daemon-jitter source.
const JitterFamily = "osjitter"

// JitterConfig parameterizes one OS-jitter source: per-CPU daemon
// ticks with independently jittered period and duration, replayable
// from the seed like fault schedules.
type JitterConfig struct {
	// Period is the mean gap between ticks on each target CPU.
	Period sim.Time
	// Duration is the mean length of one tick's steal.
	Duration sim.Time
	// Jitter is the uniform fractional spread applied independently to
	// every period and duration draw: a value x is drawn from
	// [x·(1-Jitter), x·(1+Jitter)). Zero means strictly periodic.
	Jitter float64
	// Seed selects the schedule. Each target CPU mixes its id into the
	// seed, so streams are independent per CPU and the schedule does
	// not depend on event interleaving with the rest of the sim.
	Seed int64
	// CPUs lists the target logical CPUs; empty means all of them.
	CPUs []int
}

// Validate rejects non-runnable configs.
func (c JitterConfig) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("perturb: jitter period must be positive, got %v", c.Period)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("perturb: jitter duration must be positive, got %v", c.Duration)
	}
	if c.Duration >= c.Period {
		return fmt.Errorf("perturb: jitter duration %v must be shorter than period %v", c.Duration, c.Period)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("perturb: jitter fraction must be in [0,1), got %g", c.Jitter)
	}
	for _, id := range c.CPUs {
		if id < 0 {
			return fmt.Errorf("perturb: negative jitter target CPU %d", id)
		}
	}
	return nil
}

// Jitter models per-core OS/daemon noise (Cui et al.'s OpenMP runtime
// variability generalized): each target CPU is periodically stolen for
// a short tick, visible to the OS — the kernel charges the daemon, not
// the preempted thread. It is the second noise family after SMM.
type Jitter struct {
	eng *sim.Engine
	cpu CPUStaller
	cfg JitterConfig

	running bool
	streams []*jitterStream
	eps     []Episode
	stolen  sim.Time

	tr   obs.Tracer // nil unless the run is traced
	node int32
}

// jitterStream is one target CPU's independent tick schedule. The
// stream owns its RNG: draws happen in a fixed per-CPU order, so the
// schedule is a pure function of (seed, cpu) no matter what else the
// engine interleaves.
type jitterStream struct {
	cpu  int
	rng  *rand.Rand
	next *sim.Event // pending tick, nil while idle or mid-steal
}

// NewJitter builds a jitter source against a processor model. The
// config must validate; target CPUs must exist on the model.
func NewJitter(eng *sim.Engine, cpu CPUStaller, cfg JitterConfig) (*Jitter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	targets := cfg.CPUs
	if len(targets) == 0 {
		targets = make([]int, cpu.NumLogical())
		for i := range targets {
			targets[i] = i
		}
	}
	j := &Jitter{eng: eng, cpu: cpu, cfg: cfg}
	for _, id := range targets {
		if id >= cpu.NumLogical() {
			return nil, fmt.Errorf("perturb: jitter target CPU %d out of range (%d logical)", id, cpu.NumLogical())
		}
		j.streams = append(j.streams, &jitterStream{
			cpu: id,
			rng: rand.New(rand.NewSource(DeriveSeed(cfg.Seed, uint64(id)))),
		})
	}
	return j, nil
}

// SetTracer attaches an observability tracer; events carry node as
// their node index. A nil tracer disables emission.
func (j *Jitter) SetTracer(tr obs.Tracer, node int) {
	j.tr = tr
	j.node = int32(node)
}

// Meta identifies the family: core-scoped and OS-visible.
func (j *Jitter) Meta() Meta {
	return Meta{Family: JitterFamily, Scope: ScopeCore, Visible: true}
}

// Config returns the source's configuration.
func (j *Jitter) Config() JitterConfig { return j.cfg }

// Start arms a tick on every target CPU. Restarting after Stop
// continues each CPU's stream where it left off.
func (j *Jitter) Start() {
	if j.running {
		return
	}
	j.running = true
	for _, s := range j.streams {
		j.arm(s)
	}
}

// Stop cancels pending ticks. In-flight steals complete normally so no
// CPU is left stalled.
func (j *Jitter) Stop() {
	if !j.running {
		return
	}
	j.running = false
	for _, s := range j.streams {
		if s.next != nil {
			j.eng.Cancel(s.next)
			s.next = nil
		}
	}
}

// Running reports whether the source is armed.
func (j *Jitter) Running() bool { return j.running }

// Episodes returns the completed-steal ground-truth log.
func (j *Jitter) Episodes() []Episode { return j.eps }

// Stolen is the total residency stolen across all target CPUs.
func (j *Jitter) Stolen() sim.Time { return j.stolen }

func (j *Jitter) arm(s *jitterStream) {
	s.next = j.eng.After(jittered(s.rng, j.cfg.Period, j.cfg.Jitter), func() {
		s.next = nil
		j.tick(s)
	})
}

func (j *Jitter) tick(s *jitterStream) {
	d := jittered(s.rng, j.cfg.Duration, j.cfg.Jitter)
	start := j.eng.Now()
	j.cpu.StallCPU(s.cpu)
	if j.tr != nil {
		j.tr.Emit(obs.Event{Time: start, Type: obs.EvStealEnter, Node: j.node, Track: int32(s.cpu), Name: JitterFamily})
	}
	j.eng.After(d, func() {
		j.cpu.UnstallCPU(s.cpu)
		j.eps = append(j.eps, Episode{CPU: s.cpu, Start: start, Duration: d})
		j.stolen += d
		if j.tr != nil {
			j.tr.Emit(obs.Event{Time: j.eng.Now(), Dur: d, Type: obs.EvStealExit, Node: j.node, Track: int32(s.cpu), Name: JitterFamily})
		}
		if j.running {
			j.arm(s)
		}
	})
}

// jittered draws base scaled by a uniform factor in [1-frac, 1+frac),
// clamped to at least one tick so schedules always advance.
func jittered(rng *rand.Rand, base sim.Time, frac float64) sim.Time {
	if frac <= 0 {
		return base
	}
	d := sim.Time(float64(base) * (1 + frac*(2*rng.Float64()-1)))
	if d < 1 {
		d = 1
	}
	return d
}
