// Package netsim models a cluster interconnect with per-node link
// serialization, suitable for gigabit-Ethernet-class fabrics like the one
// under the paper's Wyeast cluster.
//
// A message from node A to node B is serialized onto A's egress link
// (bandwidth-limited), travels one latency, and is serialized off B's
// ingress link. Messages between tasks on the same node bypass the NIC
// and use a memory-bandwidth fast path. The model is pipelined: the first
// byte arrives one latency after transmission starts, so big transfers
// overlap transmission and reception.
package netsim

import (
	"fmt"

	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// Params configures a fabric.
type Params struct {
	Latency          sim.Time // one-way wire+stack latency per message
	BytesPerSec      float64  // per-node link bandwidth
	IntraLatency     sim.Time // same-node message latency
	IntraBytesPerSec float64  // same-node copy bandwidth

	// CongestionBeta models TCP incast collapse on commodity Ethernet.
	// A message heading to a node that c *other source nodes*
	// are already transmitting toward is serialized (1 + CongestionBeta·c²)
	// times slower: a few concurrent flows cost little, but wide fan-in
	// overruns switch buffers and collapses goodput through
	// retransmission timeouts. Fitted to the paper's FT results
	// (~14× at 15 concurrent flows). Zero disables congestion. All-to-all traffic — the
	// reason FT scales so poorly on the paper's gigabit cluster — is
	// the main victim.
	CongestionBeta float64
}

// GigabitEthernet matches a 2010s GigE cluster fabric: ~45 µs end-to-end
// latency (kernel TCP stack) and ~117 MiB/s of goodput.
func GigabitEthernet() Params {
	return Params{
		Latency:          45 * sim.Microsecond,
		BytesPerSec:      117e6,
		IntraLatency:     1 * sim.Microsecond,
		IntraBytesPerSec: 3e9,
		CongestionBeta:   0.062,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Latency < 0 || p.IntraLatency < 0 {
		return fmt.Errorf("netsim: negative latency")
	}
	if p.BytesPerSec <= 0 || p.IntraBytesPerSec <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth")
	}
	if p.CongestionBeta < 0 {
		// A negative beta would make congested messages arrive faster
		// than their serialization allows.
		return fmt.Errorf("netsim: negative CongestionBeta %v", p.CongestionBeta)
	}
	return nil
}

// Verdict is a Perturber's decision about one message.
type Verdict struct {
	// Drop loses the message: it is serialized onto the sender's egress
	// link (the NIC transmitted it) but never arrives and the delivery
	// callback never runs.
	Drop bool
	// SlowFactor multiplies the serialization time when > 1 (degraded
	// link bandwidth). Values ≤ 1 leave bandwidth untouched.
	SlowFactor float64
	// ExtraLatency is added to the one-way latency.
	ExtraLatency sim.Time
}

// Perturber decides the fate of messages in flight — the hook through
// which a fault injector makes the fabric lossy or degraded. Perturb is
// called once per internode message before any link bookkeeping; it must
// be deterministic given the engine's RNG state.
type Perturber interface {
	Perturb(src, dst, bytes int) Verdict
}

// LinkStats counts traffic on one directed node pair.
type LinkStats struct {
	Messages int64
	Bytes    int64
	Drops    int64
	Dropped  int64 // bytes lost
}

// Stats summarizes fabric traffic, including losses.
type Stats struct {
	Messages int64
	Bytes    int64
	Drops    int64
	Dropped  int64 // bytes lost
}

// Fabric connects the nodes of a cluster.
type Fabric struct {
	eng     *sim.Engine
	par     Params
	egress  []sim.Time // per-node link-free times
	ingress []sim.Time
	// flows[src][dst] counts in-flight messages per node pair;
	// inFlows[dst] counts distinct source nodes currently sending to
	// dst (the incast flow count).
	flows   [][]int
	inFlows []int

	pert  Perturber
	stats Stats
	links [][]LinkStats

	tr obs.Tracer // nil unless the run is traced

	sh *fabricShards // nil unless the fabric is sharded (see shard.go)
}

// SetTracer attaches an observability tracer for internode delivery,
// drop and delay events (the loopback fast path is not traced).
func (f *Fabric) SetTracer(tr obs.Tracer) { f.tr = tr }

// New builds a fabric for `nodes` nodes.
func New(eng *sim.Engine, nodes int, par Params) (*Fabric, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("netsim: %d nodes", nodes)
	}
	flows := make([][]int, nodes)
	links := make([][]LinkStats, nodes)
	for i := range flows {
		flows[i] = make([]int, nodes)
		links[i] = make([]LinkStats, nodes)
	}
	return &Fabric{
		eng:     eng,
		par:     par,
		egress:  make([]sim.Time, nodes),
		ingress: make([]sim.Time, nodes),
		flows:   flows,
		inFlows: make([]int, nodes),
		links:   links,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(eng *sim.Engine, nodes int, par Params) *Fabric {
	f, err := New(eng, nodes, par)
	if err != nil {
		panic(err)
	}
	return f
}

// Params returns the fabric configuration.
func (f *Fabric) Params() Params { return f.par }

// Nodes reports the number of attached nodes.
func (f *Fabric) Nodes() int { return len(f.egress) }

// Stats reports total traffic carried and lost.
func (f *Fabric) Stats() Stats {
	total := f.stats
	if f.sh != nil {
		for _, s := range f.sh.stats {
			total.Messages += s.Messages
			total.Bytes += s.Bytes
			total.Drops += s.Drops
			total.Dropped += s.Dropped
		}
	}
	return total
}

// Link reports the traffic counters of the directed link src -> dst.
func (f *Fabric) Link(src, dst int) LinkStats { return f.links[src][dst] }

// SetPerturber installs (or, with nil, removes) the fault hook consulted
// for every internode message.
func (f *Fabric) SetPerturber(p Perturber) { f.pert = p }

// Deliver schedules delivery of a message of the given size from node src
// to node dst, invoking fn when the last byte arrives. It returns the
// arrival time. If the active Perturber drops the message, fn never runs
// and the returned time is when the sender finished transmitting into the
// void.
func (f *Fabric) Deliver(src, dst int, bytes int, fn func()) sim.Time {
	if src < 0 || src >= len(f.egress) || dst < 0 || dst >= len(f.egress) {
		panic(fmt.Sprintf("netsim: node out of range (%d -> %d of %d)", src, dst, len(f.egress)))
	}
	if bytes < 0 {
		panic("netsim: negative message size")
	}
	if fn == nil {
		fn = func() {}
	}
	if f.sh != nil {
		return f.deliverSharded(src, dst, bytes, fn)
	}
	f.stats.Messages++
	f.stats.Bytes += int64(bytes)
	f.links[src][dst].Messages++
	f.links[src][dst].Bytes += int64(bytes)
	now := f.eng.Now()

	if src == dst {
		// The loopback fast path never touches the NIC; node and link
		// faults do not apply.
		d := f.par.IntraLatency + serialize(bytes, f.par.IntraBytesPerSec)
		at := now + d
		f.eng.At(at, fn)
		return at
	}

	var v Verdict
	if f.pert != nil {
		v = f.pert.Perturb(src, dst, bytes)
	}

	ser := serialize(bytes, f.par.BytesPerSec)
	if v.SlowFactor > 1 {
		ser = sim.Time(float64(ser) * v.SlowFactor)
	}
	if v.Drop {
		// The sender's NIC still serializes the message; it is lost in
		// the switch (or at a dead receiver) and never engages the
		// ingress link or the incast bookkeeping.
		f.stats.Drops++
		f.stats.Dropped += int64(bytes)
		f.links[src][dst].Drops++
		f.links[src][dst].Dropped += int64(bytes)
		if f.tr != nil {
			f.tr.Emit(obs.Event{Time: now, Type: obs.EvNetDrop, Node: int32(src),
				Track: -1, A: int64(dst), B: int64(bytes)})
		}
		txEnd := maxTime(now, f.egress[src]) + ser
		f.egress[src] = txEnd
		return txEnd
	}
	if f.tr != nil && (v.SlowFactor > 1 || v.ExtraLatency > 0) {
		f.tr.Emit(obs.Event{Time: now, Dur: v.ExtraLatency, Type: obs.EvNetDelay,
			Node: int32(src), Track: -1, A: int64(dst), B: int64(bytes)})
	}
	// Incast congestion: concurrent flows from other nodes toward dst
	// degrade goodput past the switch-buffer cliff.
	if f.par.CongestionBeta > 0 {
		c := float64(f.inFlows[dst])
		if f.flows[src][dst] > 0 {
			c-- // our own flow does not congest itself
		}
		if c > 0 {
			ser = sim.Time(float64(ser) * (1 + f.par.CongestionBeta*c*c))
		}
	}
	if f.flows[src][dst] == 0 {
		f.inFlows[dst]++
	}
	f.flows[src][dst]++
	txStart := maxTime(now, f.egress[src])
	txEnd := txStart + ser
	f.egress[src] = txEnd
	// Pipelined: first byte hits the receiver one latency after txStart;
	// the ingress link then serializes it subject to earlier arrivals.
	rxStart := maxTime(txStart+f.par.Latency+v.ExtraLatency, f.ingress[dst])
	rxEnd := rxStart + ser
	f.ingress[dst] = rxEnd
	if f.tr != nil {
		f.tr.Emit(obs.Event{Time: now, Dur: rxEnd - now, Type: obs.EvNetDeliver,
			Node: int32(src), Track: -1, A: int64(dst), B: int64(bytes)})
	}
	f.eng.At(rxEnd, func() {
		f.flows[src][dst]--
		if f.flows[src][dst] == 0 {
			f.inFlows[dst]--
		}
		fn()
	})
	return rxEnd
}

func serialize(bytes int, bw float64) sim.Time {
	return sim.Time(float64(bytes) / bw * float64(sim.Second))
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
