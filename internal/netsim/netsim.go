// Package netsim models a cluster interconnect with per-node link
// serialization, suitable for gigabit-Ethernet-class fabrics like the one
// under the paper's Wyeast cluster.
//
// A message from node A to node B is serialized onto A's egress link
// (bandwidth-limited), travels one latency, and is serialized off B's
// ingress link. Messages between tasks on the same node bypass the NIC
// and use a memory-bandwidth fast path. The model is pipelined: the first
// byte arrives one latency after transmission starts, so big transfers
// overlap transmission and reception.
package netsim

import (
	"fmt"

	"smistudy/internal/sim"
)

// Params configures a fabric.
type Params struct {
	Latency          sim.Time // one-way wire+stack latency per message
	BytesPerSec      float64  // per-node link bandwidth
	IntraLatency     sim.Time // same-node message latency
	IntraBytesPerSec float64  // same-node copy bandwidth

	// CongestionBeta models TCP incast collapse on commodity Ethernet.
	// A message heading to a node that c *other source nodes*
	// are already transmitting toward is serialized (1 + CongestionBeta·c²)
	// times slower: a few concurrent flows cost little, but wide fan-in
	// overruns switch buffers and collapses goodput through
	// retransmission timeouts. Fitted to the paper's FT results
	// (~14× at 15 concurrent flows). Zero disables congestion. All-to-all traffic — the
	// reason FT scales so poorly on the paper's gigabit cluster — is
	// the main victim.
	CongestionBeta float64
}

// GigabitEthernet matches a 2010s GigE cluster fabric: ~45 µs end-to-end
// latency (kernel TCP stack) and ~117 MiB/s of goodput.
func GigabitEthernet() Params {
	return Params{
		Latency:          45 * sim.Microsecond,
		BytesPerSec:      117e6,
		IntraLatency:     1 * sim.Microsecond,
		IntraBytesPerSec: 3e9,
		CongestionBeta:   0.062,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Latency < 0 || p.IntraLatency < 0 {
		return fmt.Errorf("netsim: negative latency")
	}
	if p.BytesPerSec <= 0 || p.IntraBytesPerSec <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth")
	}
	return nil
}

// Fabric connects the nodes of a cluster.
type Fabric struct {
	eng     *sim.Engine
	par     Params
	egress  []sim.Time // per-node link-free times
	ingress []sim.Time
	// flows[src][dst] counts in-flight messages per node pair;
	// inFlows[dst] counts distinct source nodes currently sending to
	// dst (the incast flow count).
	flows   [][]int
	inFlows []int

	// Stats
	messages int64
	bytes    int64
}

// New builds a fabric for `nodes` nodes.
func New(eng *sim.Engine, nodes int, par Params) (*Fabric, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("netsim: %d nodes", nodes)
	}
	flows := make([][]int, nodes)
	for i := range flows {
		flows[i] = make([]int, nodes)
	}
	return &Fabric{
		eng:     eng,
		par:     par,
		egress:  make([]sim.Time, nodes),
		ingress: make([]sim.Time, nodes),
		flows:   flows,
		inFlows: make([]int, nodes),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(eng *sim.Engine, nodes int, par Params) *Fabric {
	f, err := New(eng, nodes, par)
	if err != nil {
		panic(err)
	}
	return f
}

// Params returns the fabric configuration.
func (f *Fabric) Params() Params { return f.par }

// Nodes reports the number of attached nodes.
func (f *Fabric) Nodes() int { return len(f.egress) }

// Stats reports total messages and bytes carried.
func (f *Fabric) Stats() (messages, bytes int64) { return f.messages, f.bytes }

// Deliver schedules delivery of a message of the given size from node src
// to node dst, invoking fn when the last byte arrives. It returns the
// arrival time.
func (f *Fabric) Deliver(src, dst int, bytes int, fn func()) sim.Time {
	if src < 0 || src >= len(f.egress) || dst < 0 || dst >= len(f.egress) {
		panic(fmt.Sprintf("netsim: node out of range (%d -> %d of %d)", src, dst, len(f.egress)))
	}
	if bytes < 0 {
		panic("netsim: negative message size")
	}
	if fn == nil {
		fn = func() {}
	}
	f.messages++
	f.bytes += int64(bytes)
	now := f.eng.Now()

	if src == dst {
		d := f.par.IntraLatency + serialize(bytes, f.par.IntraBytesPerSec)
		at := now + d
		f.eng.At(at, fn)
		return at
	}

	ser := serialize(bytes, f.par.BytesPerSec)
	// Incast congestion: concurrent flows from other nodes toward dst
	// degrade goodput past the switch-buffer cliff.
	if f.par.CongestionBeta > 0 {
		c := float64(f.inFlows[dst])
		if f.flows[src][dst] > 0 {
			c-- // our own flow does not congest itself
		}
		if c > 0 {
			ser = sim.Time(float64(ser) * (1 + f.par.CongestionBeta*c*c))
		}
	}
	if f.flows[src][dst] == 0 {
		f.inFlows[dst]++
	}
	f.flows[src][dst]++
	txStart := maxTime(now, f.egress[src])
	txEnd := txStart + ser
	f.egress[src] = txEnd
	// Pipelined: first byte hits the receiver one latency after txStart;
	// the ingress link then serializes it subject to earlier arrivals.
	rxStart := maxTime(txStart+f.par.Latency, f.ingress[dst])
	rxEnd := rxStart + ser
	f.ingress[dst] = rxEnd
	f.eng.At(rxEnd, func() {
		f.flows[src][dst]--
		if f.flows[src][dst] == 0 {
			f.inFlows[dst]--
		}
		fn()
	})
	return rxEnd
}

func serialize(bytes int, bw float64) sim.Time {
	return sim.Time(float64(bytes) / bw * float64(sim.Second))
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
