package netsim

import (
	"fmt"
	"sort"

	"smistudy/internal/sim"
)

// Sharded operation: the fabric's node set is partitioned over the
// engines of a sim.ShardGroup, each shard owning the egress side of its
// nodes. During a window a Deliver call runs on the sending node's
// engine and performs only sender-local bookkeeping (egress link time,
// per-source link counters, per-shard totals); the receive side — the
// ingress link, incast flow tracking and the delivery callback — is
// queued and applied by Flush, single-threaded at the window barrier, in
// a schedule-independent order (send time, then shard, then per-shard
// issue order). Whenever the sequential engine would have resolved an
// ordering by global scheduling order that the flush cannot reconstruct
// — incast congestion inflating a serialization already committed to the
// sender's link, two shards sending to one node at the same instant, a
// flow expiring exactly when a new message arrives, or a delivery
// landing at the same instant as a shard-local event — the fabric aborts
// the group and the caller reruns sequentially.

// shardSend is one queued internode message: everything the flush needs
// to replay the receive side exactly as the sequential fabric would.
type shardSend struct {
	shard   int
	seq     uint64   // per-shard issue order
	sent    sim.Time // engine time at Deliver
	src     int
	dst     int
	ser     sim.Time // uncongested serialization, already on the egress link
	txStart sim.Time
	fn      func()
}

// shardFlow is an in-flight internode message for incast bookkeeping;
// the flush expires it lazily against later sends.
type shardFlow struct {
	rxEnd    sim.Time
	src, dst int
}

// fabricShards is the sharded-mode state hanging off a Fabric.
type fabricShards struct {
	group   *sim.ShardGroup
	engOf   []*sim.Engine // per node
	shardOf []int         // per node

	queues [][]shardSend // per shard, filled during windows
	seqs   []uint64      // per shard
	stats  []Stats       // per shard

	flows  []shardFlow // in-flight, kept sorted by rxEnd (small)
	merged []shardSend // flush scratch
}

// Shard switches the fabric to sharded operation over the group's
// engines, with node i owned by engOf[i] (= group engine shardOf[i]).
// The fabric must be untraced and unperturbed — sharded runs are
// steady-state only — and must not have carried traffic yet.
func (f *Fabric) Shard(group *sim.ShardGroup, engOf []*sim.Engine, shardOf []int) error {
	if len(engOf) != len(f.egress) || len(shardOf) != len(f.egress) {
		return fmt.Errorf("netsim: shard map covers %d of %d nodes", len(engOf), len(f.egress))
	}
	if f.tr != nil || f.pert != nil {
		return fmt.Errorf("netsim: sharded fabric must be untraced and unperturbed")
	}
	if f.stats.Messages != 0 {
		return fmt.Errorf("netsim: fabric already carried traffic")
	}
	n := len(group.Engines())
	f.sh = &fabricShards{
		group:   group,
		engOf:   engOf,
		shardOf: shardOf,
		queues:  make([][]shardSend, n),
		seqs:    make([]uint64, n),
		stats:   make([]Stats, n),
	}
	return nil
}

// deliverSharded is Deliver's sharded-mode path; it runs on the sending
// node's engine goroutine.
func (f *Fabric) deliverSharded(src, dst, bytes int, fn func()) sim.Time {
	s := f.sh
	shard := s.shardOf[src]
	st := &s.stats[shard]
	st.Messages++
	st.Bytes += int64(bytes)
	f.links[src][dst].Messages++
	f.links[src][dst].Bytes += int64(bytes)
	eng := s.engOf[src]
	now := eng.Now()

	if src == dst {
		d := f.par.IntraLatency + serialize(bytes, f.par.IntraBytesPerSec)
		at := now + d
		eng.At(at, fn)
		return at
	}
	ser := serialize(bytes, f.par.BytesPerSec)
	if ser <= 0 {
		// A zero-serialization message could land exactly on the window
		// horizon, where its order against already-fired events is lost.
		s.group.Abort()
		return now
	}
	txStart := maxTime(now, f.egress[src])
	txEnd := txStart + ser
	f.egress[src] = txEnd
	s.seqs[shard]++
	s.queues[shard] = append(s.queues[shard], shardSend{
		shard: shard, seq: s.seqs[shard], sent: now,
		src: src, dst: dst, ser: ser, txStart: txStart, fn: fn,
	})
	// The sequential Deliver returns the arrival time; the receive side
	// is not computed until the flush, so sharded mode can only report
	// when the sender's link is free. The MPI runtime ignores the value.
	return txEnd
}

// Flush applies the queued receive sides at a window barrier. It runs
// single-threaded; no shard engine is executing. No-op when unsharded.
func (f *Fabric) Flush() {
	s := f.sh
	if s == nil {
		return
	}
	s.merged = s.merged[:0]
	for i := range s.queues {
		s.merged = append(s.merged, s.queues[i]...)
		s.queues[i] = s.queues[i][:0]
	}
	if len(s.merged) == 0 {
		return
	}
	// Schedule-independent order: send time, then shard, then issue
	// order. Within one shard this preserves program order; across
	// shards simultaneous sends only commute when they touch different
	// receivers, which the collision checks below enforce.
	sort.Slice(s.merged, func(i, j int) bool {
		a, b := s.merged[i], s.merged[j]
		if a.sent != b.sent {
			return a.sent < b.sent
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.seq < b.seq
	})
	for i, sd := range s.merged {
		// Expire flows that ended strictly before this send; a flow
		// ending exactly at the send instant toward the same receiver is
		// an ordering the sequential engine resolves by scheduling order.
		kept := s.flows[:0]
		abort := false
		for _, fl := range s.flows {
			switch {
			case fl.rxEnd < sd.sent:
				f.flows[fl.src][fl.dst]--
				if f.flows[fl.src][fl.dst] == 0 {
					f.inFlows[fl.dst]--
				}
			case fl.rxEnd == sd.sent && fl.dst == sd.dst:
				abort = true
				kept = append(kept, fl)
			default:
				kept = append(kept, fl)
			}
		}
		s.flows = kept
		if abort {
			s.group.Abort()
			return
		}
		// Two shards sending to one receiver at the same instant: the
		// ingress serialization order is the sequential engine's global
		// scheduling order, which is not reconstructible here.
		if i > 0 {
			if p := s.merged[i-1]; p.sent == sd.sent && p.dst == sd.dst && p.shard != sd.shard {
				s.group.Abort()
				return
			}
		}
		// Incast congestion would inflate a serialization the sender's
		// shard already committed to its egress link mid-window.
		if f.par.CongestionBeta > 0 {
			c := f.inFlows[sd.dst]
			if f.flows[sd.src][sd.dst] > 0 {
				c--
			}
			if c > 0 {
				s.group.Abort()
				return
			}
		}
		if f.flows[sd.src][sd.dst] == 0 {
			f.inFlows[sd.dst]++
		}
		f.flows[sd.src][sd.dst]++
		rxStart := maxTime(sd.txStart+f.par.Latency, f.ingress[sd.dst])
		rxEnd := rxStart + sd.ser
		f.ingress[sd.dst] = rxEnd
		dstEng := s.engOf[sd.dst]
		// The lookahead guarantees rxEnd is past every window the
		// receiver has run; landing at the same instant as a pending
		// shard-local event would still be an unresolvable tie.
		if rxEnd < dstEng.Now() || dstEng.HasPendingAt(rxEnd) {
			s.group.Abort()
			return
		}
		dstEng.At(rxEnd, sd.fn)
		s.flows = append(s.flows, shardFlow{rxEnd: rxEnd, src: sd.src, dst: sd.dst})
	}
}
