package netsim

import (
	"math/rand"
	"testing"

	"smistudy/internal/sim"
)

// perturbFunc adapts a function to the Perturber interface.
type perturbFunc func(src, dst, bytes int) Verdict

func (f perturbFunc) Perturb(src, dst, bytes int) Verdict { return f(src, dst, bytes) }

func TestNegativeCongestionBetaRejected(t *testing.T) {
	p := GigabitEthernet()
	p.CongestionBeta = -0.01
	if err := p.Validate(); err == nil {
		t.Fatal("negative CongestionBeta accepted")
	}
	if _, err := New(sim.New(1), 2, p); err == nil {
		t.Fatal("New accepted a fabric with negative CongestionBeta")
	}
}

func TestPerturberDrop(t *testing.T) {
	e, f := fabric(t, 2)
	f.SetPerturber(perturbFunc(func(src, dst, bytes int) Verdict {
		return Verdict{Drop: dst == 1}
	}))
	delivered := 0
	f.Deliver(0, 1, 1000, func() { delivered++ }) // dropped
	f.Deliver(1, 0, 1000, func() { delivered++ }) // survives
	e.Run()
	if delivered != 1 {
		t.Fatalf("%d deliveries, want 1", delivered)
	}
	st := f.Stats()
	if st.Drops != 1 || st.Dropped != 1000 {
		t.Fatalf("drops = (%d msgs, %d bytes), want (1, 1000)", st.Drops, st.Dropped)
	}
	if l := f.Link(0, 1); l.Drops != 1 || l.Dropped != 1000 {
		t.Fatalf("link 0->1 drops = %+v", l)
	}
	if l := f.Link(1, 0); l.Drops != 0 {
		t.Fatalf("link 1->0 recorded a phantom drop: %+v", l)
	}
}

func TestPerturberDegrade(t *testing.T) {
	run := func(v Verdict) sim.Time {
		e, f := fabric(t, 2)
		f.SetPerturber(perturbFunc(func(src, dst, bytes int) Verdict { return v }))
		var at sim.Time
		f.Deliver(0, 1, 1_000_000, func() { at = e.Now() })
		e.Run()
		return at
	}
	clean := run(Verdict{})
	slowed := run(Verdict{SlowFactor: 4})
	lagged := run(Verdict{ExtraLatency: 10 * sim.Millisecond})
	if slowed < 3*clean {
		t.Fatalf("4x degradation delivered at %v vs clean %v", slowed, clean)
	}
	if got := lagged - clean; got != 10*sim.Millisecond {
		t.Fatalf("extra latency shifted arrival by %v, want 10ms", got)
	}
}

// Intra-node messages bypass the NIC, so the perturber must never see
// them and they can never be dropped.
func TestPerturberSkipsLoopback(t *testing.T) {
	e, f := fabric(t, 2)
	f.SetPerturber(perturbFunc(func(src, dst, bytes int) Verdict {
		t.Errorf("perturber consulted for loopback %d->%d", src, dst)
		return Verdict{Drop: true}
	}))
	delivered := false
	f.Deliver(1, 1, 4096, func() { delivered = true })
	e.Run()
	if !delivered {
		t.Fatal("loopback message lost")
	}
}

// checkFlowInvariants asserts the incast bookkeeping invariants:
// flows ≥ 0 everywhere, and inFlows[dst] equals the number of distinct
// sources with at least one in-flight message toward dst.
func checkFlowInvariants(t *testing.T, f *Fabric) {
	t.Helper()
	for dst := range f.inFlows {
		distinct := 0
		for src := range f.flows {
			if f.flows[src][dst] < 0 {
				t.Fatalf("flows[%d][%d] = %d < 0", src, dst, f.flows[src][dst])
			}
			if f.flows[src][dst] > 0 {
				distinct++
			}
		}
		if f.inFlows[dst] != distinct {
			t.Fatalf("inFlows[%d] = %d, want %d distinct senders", dst, f.inFlows[dst], distinct)
		}
	}
}

// Property: under randomized overlapping Deliver schedules — with and
// without a lossy perturber in play — the flows/inFlows incast
// bookkeeping stays consistent at every delivery instant and drains to
// zero at the end.
func TestFlowBookkeepingProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 6
		e := sim.New(seed)
		p := GigabitEthernet()
		p.CongestionBeta = 0.05
		f, err := New(e, nodes, p)
		if err != nil {
			t.Fatal(err)
		}
		lossy := seed%2 == 1
		if lossy {
			f.SetPerturber(perturbFunc(func(src, dst, bytes int) Verdict {
				return Verdict{Drop: e.Rand().Float64() < 0.3}
			}))
		}
		const msgs = 200
		delivered := 0
		for i := 0; i < msgs; i++ {
			src := rng.Intn(nodes)
			dst := rng.Intn(nodes)
			bytes := rng.Intn(1 << 20)
			at := sim.Time(rng.Int63n(int64(50 * sim.Millisecond)))
			e.At(at, func() {
				f.Deliver(src, dst, bytes, func() {
					delivered++
					checkFlowInvariants(t, f)
				})
				checkFlowInvariants(t, f)
			})
		}
		e.Run()
		checkFlowInvariants(t, f)
		for dst := range f.inFlows {
			if f.inFlows[dst] != 0 {
				t.Fatalf("seed %d: inFlows[%d] = %d after drain", seed, dst, f.inFlows[dst])
			}
		}
		st := f.Stats()
		if int64(delivered)+st.Drops != st.Messages {
			// Every message either arrived or was counted lost.
			t.Fatalf("seed %d: delivered %d + drops %d != %d messages", seed, delivered, st.Drops, st.Messages)
		}
		if lossy && st.Drops == 0 {
			t.Fatalf("seed %d: lossy run dropped nothing", seed)
		}
	}
}
