package netsim

import (
	"math"
	"testing"

	"smistudy/internal/sim"
)

func fabric(t *testing.T, nodes int) (*sim.Engine, *Fabric) {
	t.Helper()
	e := sim.New(1)
	f, err := New(e, nodes, Params{
		Latency: 50 * sim.Microsecond, BytesPerSec: 100e6,
		IntraLatency: sim.Microsecond, IntraBytesPerSec: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, f
}

func TestSmallMessageLatency(t *testing.T) {
	e, f := fabric(t, 2)
	var at sim.Time
	f.Deliver(0, 1, 0, func() { at = e.Now() })
	e.Run()
	if at != 50*sim.Microsecond {
		t.Fatalf("zero-byte delivery at %v, want 50µs", at)
	}
}

func TestBandwidthDominatesLargeMessages(t *testing.T) {
	e, f := fabric(t, 2)
	var at sim.Time
	f.Deliver(0, 1, 100_000_000, func() { at = e.Now() }) // 100 MB at 100 MB/s
	e.Run()
	if math.Abs(at.Seconds()-1.00005) > 1e-4 {
		t.Fatalf("100MB delivery at %v, want ~1s", at)
	}
}

func TestEgressSerialization(t *testing.T) {
	e, f := fabric(t, 3)
	var first, second sim.Time
	// Two 10MB messages from node 0 to different destinations must
	// serialize on node 0's egress link: 0.1s each.
	f.Deliver(0, 1, 10_000_000, func() { first = e.Now() })
	f.Deliver(0, 2, 10_000_000, func() { second = e.Now() })
	e.Run()
	if math.Abs(first.Seconds()-0.10005) > 1e-3 {
		t.Fatalf("first delivery at %v", first)
	}
	if math.Abs(second.Seconds()-0.20005) > 1e-3 {
		t.Fatalf("second delivery at %v, want ~0.2s (egress serialized)", second)
	}
}

func TestIngressSerialization(t *testing.T) {
	e, f := fabric(t, 3)
	var a, b sim.Time
	// Two senders to one receiver: ingress link of node 2 serializes.
	f.Deliver(0, 2, 10_000_000, func() { a = e.Now() })
	f.Deliver(1, 2, 10_000_000, func() { b = e.Now() })
	e.Run()
	late := b
	if a > b {
		late = a
	}
	if math.Abs(late.Seconds()-0.2) > 1e-3 {
		t.Fatalf("latest ingress-serialized delivery at %v, want ~0.2s", late)
	}
}

func TestIntraNodeFastPath(t *testing.T) {
	e, f := fabric(t, 2)
	var at sim.Time
	f.Deliver(1, 1, 1_000_000, func() { at = e.Now() }) // 1MB at 1GB/s + 1µs
	e.Run()
	want := 0.001 + 1e-6
	if math.Abs(at.Seconds()-want) > 1e-6 {
		t.Fatalf("intra-node delivery at %v, want %.6fs", at, want)
	}
}

func TestIntraDoesNotConsumeNIC(t *testing.T) {
	e, f := fabric(t, 2)
	var netAt sim.Time
	f.Deliver(0, 0, 100_000_000, func() {}) // huge local copy
	f.Deliver(0, 1, 0, func() { netAt = e.Now() })
	e.Run()
	if netAt != 50*sim.Microsecond {
		t.Fatalf("network message delayed by local copy: %v", netAt)
	}
}

func TestStats(t *testing.T) {
	e, f := fabric(t, 2)
	f.Deliver(0, 1, 100, nil)
	f.Deliver(1, 0, 200, nil)
	e.Shutdown() // don't run nil fns
	st := f.Stats()
	if st.Messages != 2 || st.Bytes != 300 {
		t.Fatalf("stats = (%d,%d), want (2,300)", st.Messages, st.Bytes)
	}
	if l := f.Link(0, 1); l.Messages != 1 || l.Bytes != 100 {
		t.Fatalf("link 0->1 = %+v, want 1 message of 100 bytes", l)
	}
}

func TestValidation(t *testing.T) {
	e := sim.New(1)
	if _, err := New(e, 0, GigabitEthernet()); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := New(e, 2, Params{Latency: -1, BytesPerSec: 1, IntraBytesPerSec: 1}); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := New(e, 2, Params{BytesPerSec: 0, IntraBytesPerSec: 1}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := GigabitEthernet().Validate(); err != nil {
		t.Errorf("GigabitEthernet invalid: %v", err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	e, f := fabric(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node did not panic")
		}
	}()
	f.Deliver(0, 5, 10, nil)
	e.Run()
}

func TestDeliverReturnsArrivalTime(t *testing.T) {
	e, f := fabric(t, 2)
	var got sim.Time
	at := f.Deliver(0, 1, 1000, func() { got = e.Now() })
	e.Run()
	if got != at {
		t.Fatalf("returned %v but delivered at %v", at, got)
	}
}
