// Package durable makes sweeps crash-safe: a content-addressed result
// store checkpoints every finished cell, so a sweep killed at any
// instant — including mid-write — resumes exactly where it stopped and
// replays finished cells byte-identically; per-cell isolation turns
// panics, hangs and transient faults into structured per-cell errors
// instead of lost sweeps.
//
// The store is addressed by measurement identity, not by invocation:
// the key is the SHA-256 of the parent spec's canonical JSON (the same
// byte-stable encoding scenario.Spec.JSON pins), and each repetition
// cell is filed under that key plus its run index. Two sweeps that
// measure the same spec — different machines, different worker counts,
// different flag spellings that lower to the same spec — share cache
// entries; any change to what is measured changes the key.
//
// Crash safety is layered:
//
//   - Object files (the measurement JSON) are written to a temp file in
//     the destination directory and renamed into place, so a reader
//     never observes a half-written object.
//   - Completion is recorded by appending one JSONL entry (with the
//     object's checksum) to the journal. A kill mid-append tears at
//     most the journal's last line; recovery drops the torn tail, and
//     the cell — whose journal entry never completed — simply re-runs.
//
// The journal is the authority: an object without a journal entry is
// invisible, and a journal entry whose object is missing or fails its
// checksum is treated as absent so the cell re-executes rather than
// replaying corrupt bytes.
package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"smistudy/internal/scenario"
)

// Key derives a spec's content address: the SHA-256 of its canonical
// JSON encoding, hex-encoded. Execution-only knobs (workers, tracers)
// are not part of scenario.Spec, so the key is a pure function of what
// is measured.
func Key(sp scenario.Spec) (string, error) {
	data, err := sp.JSON()
	if err != nil {
		return "", fmt.Errorf("durable: keying spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Store is a content-addressed result store rooted at one directory:
//
//	<dir>/journal.jsonl                    completion journal (JSONL)
//	<dir>/objects/<kk>/<key>-r<run>.json   measurement bytes per cell
//
// where <kk> is the key's first two hex digits (fan-out) and <run> the
// cell's repetition index within its parent spec. A Store is safe for
// concurrent use by the sweep workers of one process; it does not
// arbitrate between processes.
type Store struct {
	dir     string
	journal *journal
}

// Open opens (creating if needed) the store rooted at dir, recovering
// the journal: complete entries index the finished cells, a torn final
// line from a killed writer is dropped.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	j, err := openJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, journal: j}, nil
}

// Close releases the journal handle. The store's on-disk state is
// consistent at every instant regardless; Close only matters for file
// handles.
func (s *Store) Close() error { return s.journal.close() }

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len reports how many finished cells the journal records.
func (s *Store) Len() int { return s.journal.len() }

func (s *Store) objectPath(key string, run int) string {
	return filepath.Join(s.dir, "objects", key[:2], fmt.Sprintf("%s-r%d.json", key, run))
}

// Has reports whether the journal records cell (key, run) as finished.
func (s *Store) Has(key string, run int) bool { return s.journal.has(key, run) }

// Get loads a finished cell's measurement bytes, verifying them against
// the journaled checksum. Missing or corrupt objects return an error;
// callers treat that as a cache miss and re-execute.
func (s *Store) Get(key string, run int) ([]byte, error) {
	e, ok := s.journal.lookup(key, run)
	if !ok {
		return nil, fmt.Errorf("durable: no journal entry for %s run %d", key, run)
	}
	data, err := os.ReadFile(s.objectPath(key, run))
	if err != nil {
		return nil, fmt.Errorf("durable: journaled object unreadable: %w", err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return nil, fmt.Errorf("durable: object %s run %d fails its checksum", key, run)
	}
	return data, nil
}

// specPath is where a key's canonical spec document lives. The spec is
// report metadata, not result data: the journal never references it,
// so stores written before it existed stay fully valid (reports simply
// lose the spec-dimension analysis for those keys).
func (s *Store) specPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".spec.json")
}

// PutSpec records a key's canonical spec document (idempotent: the
// content address guarantees identical bytes, so an existing file is
// left alone). This is the journal → report linkage: with it, a report
// can enumerate a sweep's cells and recover what each one measured.
func (s *Store) PutSpec(key string, spec []byte) error {
	p := s.specPath(key)
	if _, err := os.Stat(p); err == nil {
		return nil
	}
	// The spec is written at planning time, before any result object
	// has created the key's shard directory.
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".spec-*")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := tmp.Write(spec); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// SpecJSON loads a key's canonical spec document. A missing spec is
// not an error in the store's own terms (old stores never wrote one);
// callers get os.ErrNotExist semantics to branch on.
func (s *Store) SpecJSON(key string) ([]byte, error) {
	return os.ReadFile(s.specPath(key))
}

// Cell identifies one journaled completion.
type Cell struct {
	Key string
	Run int
}

// Cells enumerates every journaled completion, sorted by (Key, Run) so
// enumeration order is deterministic regardless of execution order.
func (s *Store) Cells() []Cell {
	s.journal.mu.Lock()
	out := make([]Cell, 0, len(s.journal.done))
	for id := range s.journal.done {
		out = append(out, Cell{Key: id.key, Run: id.run})
	}
	s.journal.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Run < out[j].Run
	})
	return out
}

// Put persists a finished cell: the object lands via temp-file +
// rename (atomic against kills), then the completion entry is appended
// to the journal. Only after both steps is the cell visible to Has/Get,
// so a kill between them costs one re-run, never a corrupt replay.
func (s *Store) Put(key string, run int, data []byte) error {
	p := s.objectPath(key, run)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: %w", err)
	}
	sum := sha256.Sum256(data)
	return s.journal.append(entry{Key: key, Run: run, Sum: hex.EncodeToString(sum[:])})
}
