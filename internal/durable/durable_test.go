package durable

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"smistudy/internal/obs"
	"smistudy/internal/parsweep"
	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

// swapExecute installs a test execution seam, restoring the real one at
// cleanup. Tests using it must not run in parallel.
func swapExecute(t *testing.T, fn func(scenario.Spec, runner.Exec) (runner.Measurement, error)) {
	t.Helper()
	orig := execute
	execute = fn
	t.Cleanup(func() { execute = orig })
}

// swapSleep collapses retry backoff to zero wall time.
func swapSleep(t *testing.T) {
	t.Helper()
	orig := sleep
	sleep = func(ctx context.Context, d time.Duration) bool { return ctx.Err() == nil }
	t.Cleanup(func() { sleep = orig })
}

func nasSpec(runs int) scenario.Spec {
	return scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 1, RanksPerNode: 1},
		Runs:     runs,
		Seed:     11,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
}

func TestKeyStableAndSensitive(t *testing.T) {
	sp := nasSpec(3)
	k1, err := Key(sp)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key(sp)
	if k1 != k2 {
		t.Fatalf("Key not stable: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("Key = %q, want 64 hex chars", k1)
	}
	sp.Seed++
	k3, _ := Key(sp)
	if k3 == k1 {
		t.Fatal("Key insensitive to the spec's seed")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := strings.Repeat("ab", 32)
	if s.Has(key, 0) {
		t.Fatal("empty store claims a cell")
	}
	want := []byte("{\"workload\":\"nas\"}\n")
	if err := s.Put(key, 0, want); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key, 0) {
		t.Fatal("Put not visible to Has")
	}
	if s.Has(key, 1) {
		t.Fatal("run index not part of the address")
	}
	got, err := s.Get(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
}

func TestStoreDetectsCorruptObject(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("cd", 32)
	if err := s.Put(key, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "objects", key[:2], fmt.Sprintf("%s-r0.json", key))
	if err := os.WriteFile(p, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key, 0); err == nil {
		t.Fatal("Get accepted bytes that fail the journaled checksum")
	}
	s.Close()
}

func TestJournalSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keyA, keyB := strings.Repeat("0a", 32), strings.Repeat("0b", 32)
	if err := s.Put(keyA, 0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyA, 1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the tail the way a kill mid-append would: truncate inside the
	// last line, then verify reopen keeps the complete entries, drops
	// the fragment, and appends cleanly on a fresh line.
	jp := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if !s.Has(keyA, 0) {
		t.Fatal("complete entry lost in recovery")
	}
	if s.Has(keyA, 1) {
		t.Fatal("torn entry resurrected")
	}
	if err := s.Put(keyB, 0, []byte("c")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A second recovery sees the neutralized fragment as a skippable
	// line and every real entry intact.
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(keyA, 0) || !s.Has(keyB, 0) || s.Has(keyA, 1) {
		t.Fatal("second recovery mis-indexed the journal")
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("journal indexes %d cells, want 2", got)
	}
	s.Close()
}

func TestRunSpecColdMatchesDirect(t *testing.T) {
	sp := nasSpec(3)
	direct, err := runner.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := direct.JSON()

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, st, err := RunSpec(context.Background(), sp, Options{Store: s, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.JSON()
	if !bytes.Equal(got, want) {
		t.Errorf("durable run differs from direct run:\n%s\nvs\n%s", got, want)
	}
	if st.Executed != 3 || st.Cached != 0 || st.Cells != 3 {
		t.Errorf("stats = %+v, want 3 executed cells", *st)
	}
	if s.Len() != 3 {
		t.Errorf("store holds %d cells, want 3", s.Len())
	}
}

func TestRunSpecWarmReplaysWithoutExecuting(t *testing.T) {
	sp := nasSpec(3)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := RunSpec(context.Background(), sp, Options{Store: s, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	want, _ := first.JSON()

	// Warm pass: the execute seam panics if any simulation is attempted.
	swapExecute(t, func(scenario.Spec, runner.Exec) (runner.Measurement, error) {
		t.Error("warm resume executed a simulation")
		return runner.Measurement{}, errors.New("executed")
	})
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var events atomic.Int64
	tr := obs.TracerFunc(func(ev obs.Event) {
		if ev.Type == obs.EvSweepCellCached {
			events.Add(1)
		}
	})
	m, st, err := RunSpec(context.Background(), sp, Options{Store: s, Resume: true, Workers: 2, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.JSON()
	if !bytes.Equal(got, want) {
		t.Errorf("warm replay differs:\n%s\nvs\n%s", got, want)
	}
	if st.Executed != 0 || st.Cached != 3 || st.Attempts != 0 {
		t.Errorf("stats = %+v, want pure cache replay", *st)
	}
	if events.Load() != 3 {
		t.Errorf("saw %d cell_cached events, want 3", events.Load())
	}
}

func TestRunSpecResumesPartialStore(t *testing.T) {
	sp := nasSpec(4)
	dir := t.TempDir()

	// First pass dies (transiently) on every cell after the first two.
	var calls atomic.Int64
	real := execute
	swapExecute(t, func(c scenario.Spec, x runner.Exec) (runner.Measurement, error) {
		if calls.Add(1) > 2 {
			return runner.Measurement{}, MarkTransient(errors.New("injected outage"))
		}
		return real(c, x)
	})
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := RunSpec(context.Background(), sp, Options{Store: s, Workers: 1})
	if err == nil {
		t.Fatal("expected the injected outage to fail the sweep")
	}
	if st.Executed != 2 || st.Failed != 2 {
		t.Fatalf("first pass stats = %+v, want 2 executed + 2 failed", *st)
	}
	s.Close()

	// Resume executes exactly the missing cells and matches a direct run.
	swapExecute(t, real)
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, st, err := RunSpec(context.Background(), sp, Options{Store: s, Resume: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 2 || st.Executed != 2 {
		t.Errorf("resume stats = %+v, want 2 cached + 2 executed", *st)
	}
	direct, err := runner.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := direct.JSON()
	got, _ := m.JSON()
	if !bytes.Equal(got, want) {
		t.Errorf("resumed run differs from direct run:\n%s\nvs\n%s", got, want)
	}
}

func TestRunSpecCorruptCellReExecutes(t *testing.T) {
	sp := nasSpec(2)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunSpec(context.Background(), sp, Options{Store: s, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	key, _ := Key(sp)
	p := filepath.Join(dir, "objects", key[:2], fmt.Sprintf("%s-r1.json", key))
	if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, st, err := RunSpec(context.Background(), sp, Options{Store: s, Resume: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 1 || st.Executed != 1 {
		t.Errorf("stats = %+v, want the corrupt cell re-executed", *st)
	}
	direct, _ := runner.Run(sp)
	want, _ := direct.JSON()
	got, _ := m.JSON()
	if !bytes.Equal(got, want) {
		t.Errorf("recovery from corrupt cell not byte-identical")
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	swapSleep(t)
	sp := nasSpec(1)
	var calls atomic.Int64
	real := execute
	swapExecute(t, func(c scenario.Spec, x runner.Exec) (runner.Measurement, error) {
		if calls.Add(1) <= 2 {
			return runner.Measurement{}, MarkTransient(errors.New("flaky fabric"))
		}
		return real(c, x)
	})
	var retries atomic.Int64
	tr := obs.TracerFunc(func(ev obs.Event) {
		if ev.Type == obs.EvSweepCellRetry {
			retries.Add(1)
		}
	})
	_, st, err := RunSpec(context.Background(), sp, Options{Retry: Policy{MaxRetries: 3}, Tracer: tr})
	if err != nil {
		t.Fatalf("retries should have recovered the cell: %v", err)
	}
	if st.Retries != 2 || st.Attempts != 3 || st.Executed != 1 {
		t.Errorf("stats = %+v, want 3 attempts / 2 retries", *st)
	}
	if retries.Load() != 2 {
		t.Errorf("saw %d cell_retry events, want 2", retries.Load())
	}
}

func TestTransientRetriesExhaust(t *testing.T) {
	swapSleep(t)
	sp := nasSpec(1)
	swapExecute(t, func(scenario.Spec, runner.Exec) (runner.Measurement, error) {
		return runner.Measurement{}, MarkTransient(errors.New("hard outage"))
	})
	_, st, err := RunSpec(context.Background(), sp, Options{Retry: Policy{MaxRetries: 2}})
	if err == nil {
		t.Fatal("exhausted retries must fail the cell")
	}
	var ce *parsweep.CellError
	if !errors.As(err, &ce) || ce.Index != 0 {
		t.Fatalf("err = %v, want a CellError for cell 0", err)
	}
	if st.Attempts != 3 || st.Retries != 2 || st.Failed != 1 {
		t.Errorf("stats = %+v, want 3 attempts then failure", *st)
	}
}

func TestNonTransientErrorNotRetried(t *testing.T) {
	swapSleep(t)
	sp := nasSpec(1)
	swapExecute(t, func(scenario.Spec, runner.Exec) (runner.Measurement, error) {
		return runner.Measurement{}, errors.New("deterministic bug")
	})
	_, st, err := RunSpec(context.Background(), sp, Options{Retry: Policy{MaxRetries: 5}})
	if err == nil {
		t.Fatal("expected failure")
	}
	if st.Attempts != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v, want exactly one attempt", *st)
	}
}

func TestCellTimeoutIsTerminal(t *testing.T) {
	sp := nasSpec(1)
	swapExecute(t, func(scenario.Spec, runner.Exec) (runner.Measurement, error) {
		time.Sleep(2 * time.Second)
		return runner.Measurement{}, nil
	})
	start := time.Now()
	_, st, err := RunSpec(context.Background(), sp, Options{CellTimeout: 20 * time.Millisecond, Retry: Policy{MaxRetries: 5}})
	if !errors.Is(err, ErrCellTimeout) {
		t.Fatalf("err = %v, want ErrCellTimeout", err)
	}
	if st.Timeouts != 1 || st.Attempts != 1 {
		t.Errorf("stats = %+v, want one timed-out attempt (timeouts are not retried)", *st)
	}
	if time.Since(start) > time.Second {
		t.Error("timeout did not abandon the cell promptly")
	}
}

func TestPanicIsolatedPerCell(t *testing.T) {
	sp := nasSpec(2)
	real := execute
	swapExecute(t, func(c scenario.Spec, x runner.Exec) (runner.Measurement, error) {
		if c.Seed == 12 { // second repetition cell
			panic("cell exploded")
		}
		return real(c, x)
	})
	ms, errs, st := RunSpecs(context.Background(), []scenario.Spec{sp, nasSpec(1)}, Options{Workers: 2, CellTimeout: time.Minute})
	if errs[0] == nil {
		t.Fatal("panicking cell must fail its spec")
	}
	var pe *parsweep.PanicError
	if !errors.As(errs[0], &pe) || pe.Value != "cell exploded" {
		t.Fatalf("errs[0] = %v, want the recovered panic", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("sibling spec infected by the panic: %v", errs[1])
	}
	if ms[1].NAS == nil {
		t.Fatal("sibling spec lost its measurement")
	}
	if st.Panics != 1 {
		t.Errorf("stats = %+v, want one isolated panic", *st)
	}
}

func TestFaultPartialMeasurementPassthrough(t *testing.T) {
	sp := nasSpec(1)
	partial := runner.Measurement{Workload: "nas", NAS: &runner.NASResult{Dropped: 7}}
	swapExecute(t, func(scenario.Spec, runner.Exec) (runner.Measurement, error) {
		return partial, errors.New("job failed under faults")
	})
	m, _, err := RunSpec(context.Background(), sp, Options{})
	if err == nil {
		t.Fatal("expected the fault failure")
	}
	if m.NAS == nil || m.NAS.Dropped != 7 {
		t.Fatalf("partial measurement dropped: %+v", m)
	}
}

func TestCancellationMarksSkipped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := nasSpec(4)
	_, st, err := RunSpec(ctx, sp, Options{Workers: 1})
	if err == nil {
		t.Fatal("canceled sweep must report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Skipped != 4 || st.Attempts != 0 {
		t.Errorf("stats = %+v, want every cell skipped", *st)
	}
}

func TestInvalidSpecRejectedBeforePlanning(t *testing.T) {
	ms, errs, st := RunSpecs(context.Background(), []scenario.Spec{
		{Workload: "no-such-workload"},
		nasSpec(1),
	}, Options{})
	if !errors.Is(errs[0], runner.ErrInvalidSpec) {
		t.Fatalf("errs[0] = %v, want ErrInvalidSpec", errs[0])
	}
	if errs[1] != nil || ms[1].NAS == nil {
		t.Fatalf("valid sibling spec affected: %v", errs[1])
	}
	if st.Cells != 1 {
		t.Errorf("stats count rejected specs as cells: %+v", *st)
	}
}

func TestFailedCellsAreNotCached(t *testing.T) {
	swapSleep(t)
	sp := nasSpec(2)
	dir := t.TempDir()
	real := execute
	swapExecute(t, func(c scenario.Spec, x runner.Exec) (runner.Measurement, error) {
		if c.Seed == 12 {
			return runner.Measurement{}, errors.New("deterministic failure")
		}
		return real(c, x)
	})
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunSpec(context.Background(), sp, Options{Store: s, Workers: 1}); err == nil {
		t.Fatal("expected failure")
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d cells, want only the successful one", s.Len())
	}
	s.Close()

	// The resumed sweep re-attempts exactly the failed cell.
	swapExecute(t, real)
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, st, err := RunSpec(context.Background(), sp, Options{Store: s, Resume: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 1 || st.Executed != 1 {
		t.Errorf("stats = %+v, want the failed cell (only) re-executed", *st)
	}
}
