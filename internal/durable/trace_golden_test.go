package durable

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smistudy/internal/obs"
	"smistudy/internal/scenario"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// epShardSpec is the golden cell: a 2-node EP.S sweep, run with 2
// engine shards requested.
func epShardSpec() scenario.Spec {
	return scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 2, RanksPerNode: 1},
		SMM:      scenario.SMMPlan{Level: "none"},
		Runs:     2, Seed: 7,
		Params: scenario.Params{Bench: "EP", Class: "S"},
	}
}

func traceCell(t *testing.T, shards int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	_, _, err := RunSpec(context.Background(), epShardSpec(), Options{
		Workers: 1, Shards: shards, Tracer: sink,
	})
	if err != nil {
		t.Fatalf("run (shards=%d): %v", shards, err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedEPTraceGolden pins the trace byte stream of a 2-shard EP
// cell against a checked-in golden file. Two contracts at once:
//
//   - A traced run is never sharded (the bus would interleave
//     nondeterministically), so requesting 2 shards must produce the
//     byte-identical trace of the sequential fallback.
//   - The ChromeSink's pid/tid layout for a 2-run, 2-node cell — the
//     coordinates smireport decodes with SplitPid/TrackOf — is a
//     compatibility surface; any change must be a conscious golden
//     update, not an accident.
//
// Regenerate with: go test ./internal/durable -run ShardedEPTraceGolden -update
func TestShardedEPTraceGolden(t *testing.T) {
	sharded := traceCell(t, 2)
	sequential := traceCell(t, 1)
	if !bytes.Equal(sharded, sequential) {
		t.Fatal("2-shard traced cell differs from the sequential trace: tracing no longer forces the sequential fallback")
	}

	goldenPath := filepath.Join("testdata", "ep-2shard.trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, sharded, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(sharded))
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(sharded, golden) {
		t.Fatalf("trace diverged from golden %s: sink layout or event emission changed (run with -update if intentional); got %d bytes, want %d",
			goldenPath, len(sharded), len(golden))
	}

	// The golden must decode through the exported reader with the
	// expected coordinates: 2 runs × (cluster + 2 nodes).
	tr, err := obs.ReadTrace(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("golden does not parse: %v", err)
	}
	if got := tr.RunIDs(); len(got) != 2 {
		t.Fatalf("golden runs = %v, want 2", got)
	}
	for _, run := range tr.RunIDs() {
		for node := int32(0); node < 2; node++ {
			if tr.ProcNames[obs.PidFor(run, node)] == "" {
				t.Errorf("run %d node %d has no process metadata at pid %d",
					run, node, obs.PidFor(run, node))
			}
		}
		if len(tr.Select(run, obs.TrackCells)) == 0 {
			t.Errorf("run %d has no sweep-cell track", run)
		}
		if len(tr.Select(run, obs.TrackCPU)) == 0 {
			t.Errorf("run %d has no CPU scheduling track", run)
		}
	}
}
