package durable

import (
	"context"
	"errors"
	"fmt"
	"time"

	"smistudy/internal/mpi"
)

// ErrCellTimeout marks a cell that exceeded its wall-clock deadline.
// Timeouts are terminal, not retried: the simulation is deterministic,
// so a cell that hung once hangs again.
var ErrCellTimeout = errors.New("durable: cell deadline exceeded")

// Policy bounds the retry behavior for transient cell failures.
type Policy struct {
	// MaxRetries is how many times a transiently-failed cell is re-run
	// after its first attempt. Zero disables retries.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it. Zero means 10 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Zero means 1 s.
	MaxBackoff time.Duration
}

// backoff is the delay before retry n (1-based): BaseBackoff·2^(n-1),
// capped at MaxBackoff.
func (p Policy) backoff(n int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max || d <= 0 {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// Transient reports whether a cell error is worth retrying: anything
// that declares itself via a `Transient() bool` method (see
// MarkTransient), plus the MPI runtime's peer-unreachable failure — the
// canonical "the fabric ate it" error of the fault studies.
func Transient(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, mpi.ErrPeerUnreachable)
}

// MarkTransient wraps err so Transient reports it retryable. Nil stays
// nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

type transientErr struct{ err error }

func (t *transientErr) Error() string   { return fmt.Sprintf("transient: %v", t.err) }
func (t *transientErr) Unwrap() error   { return t.err }
func (t *transientErr) Transient() bool { return true }

// sleep waits d or until ctx is done, reporting whether the full delay
// elapsed. A variable so tests can collapse backoff to zero time.
var sleep = func(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
