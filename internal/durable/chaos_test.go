package durable

// Chaos harness: a child process (this test binary re-exec'd through
// the TestMain hook below) runs a multi-repetition sweep against a
// durable store while the parent SIGKILLs it when the store's journal
// reaches a randomly chosen byte offset — the moments a naive
// checkpointer corrupts state. The parent keeps killing and resuming
// until a run completes, then asserts the surviving output is
// byte-identical to an uninterrupted in-process run, and that one more
// warm pass replays entirely from cache with zero simulations.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

const (
	chaosChildEnv = "SMISTUDY_DURABLE_CHAOS_CHILD"
	chaosStoreEnv = "SMISTUDY_DURABLE_CHAOS_STORE"
	chaosOutEnv   = "SMISTUDY_DURABLE_CHAOS_OUT"
	chaosStatsEnv = "SMISTUDY_DURABLE_CHAOS_STATS"
	chaosDelayEnv = "SMISTUDY_DURABLE_CHAOS_DELAY_MS"
)

// TestMain lets the test binary double as the chaos child: with the
// child env set it runs one durable sweep and exits instead of running
// the test suite.
func TestMain(m *testing.M) {
	if os.Getenv(chaosChildEnv) == "1" {
		chaosChild()
		return
	}
	os.Exit(m.Run())
}

// chaosSpec is the sweep under chaos: enough repetitions that kills
// land between checkpoints, cheap enough that the whole dance stays
// inside a unit-test budget.
func chaosSpec() scenario.Spec {
	return scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 2, RanksPerNode: 1},
		Runs:     8,
		Seed:     42,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
}

// chaosChild runs the sweep durably and writes the final measurement
// and stats; it is the process the parent kills.
func chaosChild() {
	if ms, _ := strconv.Atoi(os.Getenv(chaosDelayEnv)); ms > 0 {
		// Pace each cell so the parent's journal watcher has a window to
		// land its kill between checkpoints.
		real := execute
		execute = func(sp scenario.Spec, x runner.Exec) (runner.Measurement, error) {
			m, err := real(sp, x)
			time.Sleep(time.Duration(ms) * time.Millisecond)
			return m, err
		}
	}
	s, err := Open(os.Getenv(chaosStoreEnv))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer s.Close()
	m, st, err := RunSpec(context.Background(), chaosSpec(), Options{Store: s, Resume: true, Workers: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := m.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(os.Getenv(chaosOutEnv), data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stats, _ := json.Marshal(st)
	if err := os.WriteFile(os.Getenv(chaosStatsEnv), stats, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runChaosChild starts one child pass. killAtOffset ≥ 0 SIGKILLs the
// child once the journal file reaches that many bytes; the return
// reports whether the child completed (wrote its output) or was killed.
func runChaosChild(t *testing.T, dir string, killAtOffset int64, delayMS int) bool {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		chaosChildEnv+"=1",
		chaosStoreEnv+"="+filepath.Join(dir, "store"),
		chaosOutEnv+"="+filepath.Join(dir, "out.json"),
		chaosStatsEnv+"="+filepath.Join(dir, "stats.json"),
		chaosDelayEnv+"="+strconv.Itoa(delayMS),
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	journal := filepath.Join(dir, "store", "journal.jsonl")
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	deadline := time.After(2 * time.Minute)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("chaos child failed: %v\n%s", err, stderr.String())
			}
			return true
		case <-tick.C:
			if killAtOffset < 0 {
				continue
			}
			if fi, err := os.Stat(journal); err == nil && fi.Size() >= killAtOffset {
				cmd.Process.Kill()
				<-done
				return false
			}
		case <-deadline:
			cmd.Process.Kill()
			<-done
			t.Fatal("chaos child wedged")
		}
	}
}

func TestChaosKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness re-executes the test binary")
	}
	// Reference: the same sweep uninterrupted, no store involved.
	ref, err := runner.Run(chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.JSON()

	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1)) // reproducible kill schedule
	// A journal entry is ~100 bytes and the sweep writes eight, so
	// offsets up to ~1 KiB land kills before, between and inside entries
	// across passes. Each pass resumes the last one's store.
	completed := false
	for pass := 0; pass < 12 && !completed; pass++ {
		offset := int64(rng.Intn(1024))
		completed = runChaosChild(t, dir, offset, 25)
	}
	if !completed {
		// Every pass was killed before finishing; one clean pass resumes
		// whatever the kills left behind.
		if !runChaosChild(t, dir, -1, 0) {
			t.Fatal("unkilled chaos pass did not complete")
		}
	}
	got, err := os.ReadFile(filepath.Join(dir, "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output after kill/resume differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}

	// Warm pass over the now-complete store: zero simulations, every
	// cell replayed, output still byte-identical.
	if err := os.Remove(filepath.Join(dir, "out.json")); err != nil {
		t.Fatal(err)
	}
	if !runChaosChild(t, dir, -1, 0) {
		t.Fatal("warm chaos pass did not complete")
	}
	got, err = os.ReadFile(filepath.Join(dir, "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("warm replay output differs from uninterrupted run")
	}
	stats, err := os.ReadFile(filepath.Join(dir, "stats.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Executed != 0 || st.Cached != 8 {
		t.Errorf("warm pass stats = %+v, want 8 cached / 0 executed", st)
	}
}
