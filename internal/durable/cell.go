package durable

import (
	"context"
	"sync/atomic"

	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

// SpecPlan is one spec's decomposition into durable execution units:
// the content address its cells are filed under, the per-repetition
// cell specs (the spec itself when unsplittable), and the workload's
// Merge hook when the cells need reassembly. It is the planning half of
// RunSpecs, exported so callers that schedule cells themselves — the
// sweep server — share the exact store layout of the CLI path: a cell
// executed by either is a cache hit for both.
type SpecPlan struct {
	// Key is the parent spec's content address (see Key).
	Key string
	// Cells are the execution units, in run-index order; cell i is
	// stored under (Key, i).
	Cells []scenario.Spec
	// Merge reassembles the parent measurement from the cells'
	// measurements. Nil when Cells is the spec itself (pass through).
	Merge func(scenario.Spec, []runner.Measurement) (runner.Measurement, error)
	// Runs is the parent spec's repetition count, the fast-path
	// dispatcher's RunsHint for every cell.
	Runs int
}

// PlanSpec validates a spec and decomposes it into its durable cells,
// recording the key's canonical spec document in the store (best-effort
// report metadata) when one is given.
func PlanSpec(sp scenario.Spec, store *Store) (SpecPlan, error) {
	if err := runner.Validate(sp); err != nil {
		return SpecPlan{}, err
	}
	key, err := Key(sp)
	if err != nil {
		return SpecPlan{}, err
	}
	if store != nil {
		// Record the key's canonical spec alongside its objects so a
		// report can walk the journal back to what each cell measured.
		// Best-effort: a failed spec write costs report metadata, not
		// results, so it must not fail the sweep.
		if data, jerr := sp.JSON(); jerr == nil {
			_ = store.PutSpec(key, data)
		}
	}
	w, _ := runner.Lookup(sp.Workload)
	var cells []scenario.Spec
	if w.Split != nil {
		cells = w.Split(sp)
	}
	if len(cells) == 0 {
		return SpecPlan{Key: key, Cells: []scenario.Spec{sp}, Runs: sp.Runs}, nil
	}
	return SpecPlan{Key: key, Cells: cells, Merge: w.Merge, Runs: sp.Runs}, nil
}

// CellRequest identifies one durable execution unit for callers that
// schedule cells themselves.
type CellRequest struct {
	// Spec is the cell's (single-repetition) spec, from SpecPlan.Cells.
	Spec scenario.Spec
	// Key and Run file the cell in the store: the parent spec's content
	// address and the cell's index in SpecPlan.Cells.
	Key string
	Run int
	// RunsHint is the parent's repetition count (SpecPlan.Runs).
	RunsHint int
	// Global is the trace run index stamped on the cell's events.
	Global int32
}

// CellResult is one cell's outcome. The measurement may be non-zero
// alongside an error (fault-scenario NAS cells report partial
// accounting).
type CellResult struct {
	M runner.Measurement
	// Cached reports a byte-identical replay from the store (zero
	// simulation work).
	Cached bool
	Err    error
}

// RunCell executes one cell end to end with the full durable contract —
// store replay when Resume is set, wall-clock deadline, bounded
// transient-error retries, panic isolation, checkpoint on success —
// accumulating accounting into st (optional). It is RunSpecs's per-cell
// engine exposed for external schedulers.
func RunCell(ctx context.Context, req CellRequest, o Options, st *Stats) CellResult {
	if st == nil {
		st = &Stats{}
	}
	atomic.AddInt64(&st.Cells, 1)
	it := item{
		spec:    req.Spec,
		key:     req.Key,
		cellIdx: req.Run,
		global:  int(req.Global),
		runs:    req.RunsHint,
	}
	r := runItem(ctx, it, o, st)
	return CellResult{M: r.m, Cached: r.cached, Err: r.err}
}
