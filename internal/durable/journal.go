package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// entry is one completion record: cell (Key, Run) finished and its
// object bytes hash to Sum.
type entry struct {
	Key string `json:"key"`
	Run int    `json:"run"`
	Sum string `json:"sum"`
}

type cellID struct {
	key string
	run int
}

// journal is an append-only JSONL file of completion entries plus its
// in-memory index. Appends are serialized under mu; each entry is one
// Write call, so a killed process tears at most the final line.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[cellID]entry
	// needNL records that the existing file ends mid-line (the torn
	// tail of a killed append); the next append starts a fresh line
	// first so the fragment stays inert.
	needNL bool
}

// openJournal loads the journal at path (which need not exist) and
// opens it for appending. Recovery is lenient by construction: the
// trailing fragment after the last newline is a torn append and is
// dropped; a complete line that does not parse is a neutralized
// fragment from an earlier recovery and is skipped.
func openJournal(path string) (*journal, error) {
	j := &journal{done: map[cellID]entry{}}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: %w", err)
	}
	j.needNL = len(data) > 0 && data[len(data)-1] != '\n'
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		var e entry
		if len(line) == 0 || json.Unmarshal(line, &e) != nil || e.Key == "" {
			continue
		}
		j.done[cellID{e.Key, e.Run}] = e
	}
	// A torn tail is not an entry: bytes.Split surfaces it as the final
	// segment and the Unmarshal above rejects it, so nothing extra to do
	// beyond starting the next append on a fresh line.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	j.f = f
	return j, nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

func (j *journal) len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

func (j *journal) has(key string, run int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[cellID{key, run}]
	return ok
}

func (j *journal) lookup(key string, run int) (entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.done[cellID{key, run}]
	return e, ok
}

// append records a completion. The line lands in one Write call (plus a
// leading newline when recovering a torn tail) so concurrent appends
// never interleave and a kill tears at most this line.
func (j *journal) append(e entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("durable: journal is closed")
	}
	buf := make([]byte, 0, len(line)+2)
	if j.needNL {
		buf = append(buf, '\n')
	}
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	j.needNL = false
	j.done[cellID{e.Key, e.Run}] = e
	return nil
}
