package durable

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"smistudy/internal/obs"
	"smistudy/internal/parsweep"
	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

// Options configures a durable sweep execution.
type Options struct {
	// Store, when non-nil, checkpoints every finished cell. Nil runs
	// without persistence (isolation and retries still apply).
	Store *Store
	// Resume permits replaying cells the store already holds. Without
	// it every cell re-executes (and overwrites its store entry).
	Resume bool
	// Workers fans cells over this many OS threads (parsweep rules:
	// ≤ 1 sequential). Results are identical for any worker count.
	Workers int
	// CellTimeout is the per-cell wall-clock deadline; zero disables.
	// A timed-out cell fails terminally — the simulation is
	// deterministic, so re-running a hung cell hangs again.
	CellTimeout time.Duration
	// Retry bounds re-execution of transiently-failed cells.
	Retry Policy
	// Tracer, when non-nil, receives the durable layer's cell events
	// (cached, retry, timeout, fail) and every simulation event from
	// executed cells, stamped with global cell indices.
	Tracer obs.Tracer
	// Dispatch, when non-nil, is the analytic fast-path dispatcher every
	// executed cell consults before building an engine. Cells the
	// dispatcher serves are checkpointed exactly like simulated cells —
	// the measurement is byte-identical, so the store cannot tell.
	Dispatch *runner.Dispatcher
	// Stats, when non-nil, accumulates execution accounting (cells,
	// simulated runs, engine events, fast-path hits/misses).
	Stats *runner.ExecStats
	// Shards is the per-cell engine shard count forwarded to executed
	// cells (see runner.Exec.Shards).
	Shards int
}

// Stats is the sweep's execution accounting; it is the manifest's
// DurableStats so CLIs attach it to run manifests directly.
type Stats = obs.DurableStats

// item is one durable execution unit: a single-repetition (or
// unsplittable) spec filed under its parent's content address.
type item struct {
	spec    scenario.Spec
	key     string
	specIdx int // position in the caller's spec slice
	cellIdx int // repetition index within the parent spec
	global  int // position across all cells of the sweep
	runs    int // the parent spec's repetition count (fast-path hint)
}

// out is one cell's outcome. The measurement may be non-zero alongside
// an error (fault-scenario NAS cells report partial accounting).
type out struct {
	m      runner.Measurement
	err    error
	cached bool
}

// plan records how one caller spec maps onto cells.
type plan struct {
	first int // index of the spec's first cell in the item list
	n     int
	merge func(scenario.Spec, []runner.Measurement) (runner.Measurement, error)
}

// RunSpec executes one spec durably. See RunSpecs.
func RunSpec(ctx context.Context, sp scenario.Spec, o Options) (runner.Measurement, *Stats, error) {
	ms, errs, st := RunSpecs(ctx, []scenario.Spec{sp}, o)
	return ms[0], st, errs[0]
}

// RunSpecs executes a batch of specs through the durable path:
//
//  1. Each spec is content-addressed (Key) and decomposed into
//     per-repetition cells via its workload's Split hook (unsplittable
//     specs run as one cell).
//  2. Cells already journaled in the store replay byte-identically with
//     zero simulation work (when Resume is set); the rest execute with
//     per-cell panic isolation, wall-clock deadlines and bounded
//     transient-error retries, checkpointing each success.
//  3. Split cells are reassembled by the workload's Merge hook, which
//     is pinned byte-identical to an unsplit run.
//
// Results and errors land at their spec's input index — errs[i] is the
// lowest-cell-index failure of spec i (a *parsweep.CellError), exactly
// the error an abort-on-first-failure loop reports — and the sweep
// never aborts early: every cell of every spec is attempted unless ctx
// is canceled, in which case unattempted cells are marked Skipped.
func RunSpecs(ctx context.Context, specs []scenario.Spec, o Options) ([]runner.Measurement, []error, *Stats) {
	st := &Stats{}
	ms := make([]runner.Measurement, len(specs))
	errsOut := make([]error, len(specs))
	plans := make([]plan, len(specs))
	var items []item
	for i, sp := range specs {
		sp2, err := PlanSpec(sp, o.Store)
		if err != nil {
			errsOut[i] = err
			plans[i] = plan{first: -1}
			continue
		}
		plans[i] = plan{first: len(items), n: len(sp2.Cells), merge: sp2.Merge}
		for j, c := range sp2.Cells {
			// The parent's run count rides along so the fast-path
			// dispatcher sees how many sibling repetitions the split
			// cell's region serves (a Runs=1 cell alone is never worth
			// certifying; six of them are).
			items = append(items, item{spec: c, key: sp2.Key, specIdx: i, cellIdx: j, global: len(items), runs: sp2.Runs})
		}
	}
	atomic.AddInt64(&st.Cells, int64(len(items)))

	outs, perrs := parsweep.RunPartial(ctx, items, o.Workers, func(it item) (out, error) {
		return runItem(ctx, it, o, st), nil
	})
	// runItem never returns an error to RunPartial, so perrs entries are
	// cancellation markers for cells that were never attempted.
	for gi := range outs {
		if perrs[gi] == nil || outs[gi].err != nil {
			continue
		}
		var ce *parsweep.CellError
		cause := perrs[gi]
		if errors.As(perrs[gi], &ce) {
			cause = ce.Err
		}
		outs[gi].err = cause
		atomic.AddInt64(&st.Skipped, 1)
	}

	for i := range specs {
		p := plans[i]
		if p.first < 0 {
			continue // rejected before planning
		}
		cells := outs[p.first : p.first+p.n]
		var firstErr error
		for j, co := range cells {
			if co.err != nil {
				firstErr = &parsweep.CellError{Index: j, Err: co.err}
				break
			}
		}
		if firstErr != nil {
			errsOut[i] = firstErr
			if p.n == 1 {
				// Unsplit fault-scenario cells carry partial accounting
				// alongside their error; pass the section through.
				ms[i] = cells[0].m
			}
			continue
		}
		if p.n == 1 && p.merge == nil {
			ms[i] = cells[0].m
			continue
		}
		parts := make([]runner.Measurement, p.n)
		for j, co := range cells {
			parts[j] = co.m
		}
		m, err := p.merge(specs[i], parts)
		if err != nil {
			errsOut[i] = err
			continue
		}
		ms[i] = m
	}
	return ms, errsOut, st
}

// execute is the cell execution seam; tests swap it for flaky, slow or
// panicking workloads without inventing spec shapes for them.
var execute = runner.RunWith

// runItem runs one cell end to end: cache replay, attempt loop with
// deadline and retry, checkpoint on success. It never returns through
// panic — execution is recovered into a *parsweep.PanicError.
func runItem(ctx context.Context, it item, o Options, st *Stats) out {
	if o.Store != nil && o.Resume && o.Store.Has(it.key, it.cellIdx) {
		if data, err := o.Store.Get(it.key, it.cellIdx); err == nil {
			var m runner.Measurement
			if json.Unmarshal(data, &m) == nil {
				atomic.AddInt64(&st.Cached, 1)
				emit(o.Tracer, obs.Event{Type: obs.EvSweepCellCached, Run: int32(it.global), Node: -1})
				return out{m: m, cached: true}
			}
		}
		// Unreadable or corrupt cache entry: fall through and re-execute.
	}
	x := runner.Exec{
		Workers:  1,
		Tracer:   obs.WithRun(o.Tracer, int32(it.global)),
		Stats:    o.Stats,
		Dispatch: o.Dispatch,
		Shards:   o.Shards,
		RunsHint: it.runs,
	}
	for attempt := 1; ; attempt++ {
		atomic.AddInt64(&st.Attempts, 1)
		m, err := execCell(ctx, it.spec, x, o.CellTimeout)
		if err == nil {
			atomic.AddInt64(&st.Executed, 1)
			if o.Store != nil {
				if perr := persist(o.Store, it, m); perr != nil {
					// A cell whose checkpoint failed is a failed cell:
					// the resume guarantee depends on the write.
					atomic.AddInt64(&st.Failed, 1)
					emit(o.Tracer, obs.Event{Type: obs.EvSweepCellFail, Run: int32(it.global), Node: -1, A: int64(attempt), Name: "store"})
					return out{m: m, err: perr}
				}
			}
			return out{m: m}
		}
		var cause string
		var pe *parsweep.PanicError
		switch {
		case errors.Is(err, ErrCellTimeout):
			atomic.AddInt64(&st.Timeouts, 1)
			emit(o.Tracer, obs.Event{Type: obs.EvSweepCellTimeout, Run: int32(it.global), Node: -1, A: int64(attempt)})
			cause = "timeout"
		case errors.As(err, &pe):
			atomic.AddInt64(&st.Panics, 1)
			cause = "panic"
		case Transient(err) && attempt <= o.Retry.MaxRetries:
			atomic.AddInt64(&st.Retries, 1)
			emit(o.Tracer, obs.Event{Type: obs.EvSweepCellRetry, Run: int32(it.global), Node: -1, A: int64(attempt + 1), Name: "transient"})
			if !sleep(ctx, o.Retry.backoff(attempt)) {
				atomic.AddInt64(&st.Failed, 1)
				emit(o.Tracer, obs.Event{Type: obs.EvSweepCellFail, Run: int32(it.global), Node: -1, A: int64(attempt), Name: "canceled"})
				return out{m: m, err: ctx.Err()}
			}
			continue
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			cause = "canceled"
		default:
			cause = "error"
		}
		atomic.AddInt64(&st.Failed, 1)
		emit(o.Tracer, obs.Event{Type: obs.EvSweepCellFail, Run: int32(it.global), Node: -1, A: int64(attempt), Name: cause})
		return out{m: m, err: err}
	}
}

// persist checkpoints a successful cell measurement.
func persist(s *Store, it item, m runner.Measurement) error {
	data, err := m.JSON()
	if err != nil {
		return err
	}
	return s.Put(it.key, it.cellIdx, data)
}

// execCell runs one attempt, racing it against the cell deadline and
// ctx. The simulation is uninterruptible, so a timed-out or canceled
// attempt abandons its goroutine — the goroutine finishes its (bounded)
// simulated work and its result is discarded.
func execCell(ctx context.Context, sp scenario.Spec, x runner.Exec, timeout time.Duration) (runner.Measurement, error) {
	// Capture the execution seam before any goroutine exists: an
	// abandoned (timed-out) attempt must keep the function it started
	// with rather than observe a later swap.
	fn := execute
	if timeout <= 0 {
		if err := ctx.Err(); err != nil {
			return runner.Measurement{}, err
		}
		return safeExec(fn, sp, x)
	}
	type res struct {
		m   runner.Measurement
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := safeExec(fn, sp, x)
		ch <- res{m, err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.m, r.err
	case <-t.C:
		return runner.Measurement{}, fmt.Errorf("%w (%v)", ErrCellTimeout, timeout)
	case <-ctx.Done():
		return runner.Measurement{}, ctx.Err()
	}
}

// safeExec converts a panicking execution into a *parsweep.PanicError,
// the same isolation contract parsweep gives its own workers — needed
// here because deadline races run the cell on a goroutine of their own.
func safeExec(fn func(scenario.Spec, runner.Exec) (runner.Measurement, error), sp scenario.Spec, x runner.Exec) (m runner.Measurement, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &parsweep.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(sp, x)
}

func emit(tr obs.Tracer, ev obs.Event) {
	if tr != nil {
		tr.Emit(ev)
	}
}
