package analytic

import (
	"math"
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/mpi"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func longSMI() Schedule {
	return Schedule{Period: sim.Second, Duration: 105 * sim.Millisecond}
}

func TestDutyCycle(t *testing.T) {
	s := longSMI()
	want := 0.105 / 1.105
	if math.Abs(s.DutyCycle()-want) > 1e-12 {
		t.Fatalf("duty = %v, want %v", s.DutyCycle(), want)
	}
	if (Schedule{}).DutyCycle() != 0 {
		t.Fatal("empty schedule should have zero duty")
	}
}

func TestSerialSlowdownFormula(t *testing.T) {
	s := longSMI()
	// duty/(1-duty) = 0.105/1.0 = 10.5%.
	if p := s.ExpectedSlowdownPct(); math.Abs(p-10.5) > 0.01 {
		t.Fatalf("expected slowdown %v%%, want 10.5%%", p)
	}
	if s.SerialSlowdown(10*sim.Second) <= 10*sim.Second {
		t.Fatal("slowdown not applied")
	}
	sat := Schedule{Period: 0, Duration: sim.Second}
	if sat.SerialSlowdown(sim.Second) != sim.Forever {
		t.Fatal("100% duty should never finish")
	}
	if !math.IsInf(sat.ExpectedSlowdownPct(), 1) {
		t.Fatal("100% duty pct should be +Inf")
	}
}

// The analytic serial prediction must match the simulator within 2% for
// a single-node compute-bound run.
func TestSerialModelMatchesSimulator(t *testing.T) {
	e := sim.New(1)
	par := cluster.Wyeast(1, false, smm.SMMLong)
	// Fixed-duration SMIs to match the deterministic model.
	par.Node.SMI.DurMin = 105 * sim.Millisecond
	par.Node.SMI.DurMax = 105 * sim.Millisecond
	par.Node.PerCPURendezvous = 0
	cl := cluster.MustNew(e, par)
	cl.StartSMI()
	var measured sim.Time
	base := 30 * sim.Second
	ops := base.Seconds() * 2.27e9
	cl.Nodes[0].Kernel.Spawn("w", cpu.Profile{CPI: 1}, func(tk *kernel.Task) {
		tk.Compute(ops)
		measured = tk.Gettime()
		e.Stop()
	})
	e.Run()
	predicted := longSMI().SerialSlowdown(base)
	err := math.Abs(float64(measured-predicted)) / float64(predicted)
	if err > 0.02 {
		t.Fatalf("simulator %v vs analytic %v (%.1f%% apart)", measured, predicted, err*100)
	}
}

func TestBSPModelBasics(t *testing.T) {
	b := BSP{Nodes: 4, Step: 100 * sim.Millisecond, Steps: 50}
	if b.BaseTime() != 5*sim.Second {
		t.Fatal("base time wrong")
	}
	s := longSMI()
	noisy := b.ExpectedTime(s)
	if noisy <= b.BaseTime() {
		t.Fatal("noise should lengthen BSP runs")
	}
	if noisy > b.UpperBound(s) {
		t.Fatalf("discrete model %v above independent-extension bound %v", noisy, b.UpperBound(s))
	}
	// Saturated upper bound.
	big := BSP{Nodes: 16, Step: sim.Millisecond, Steps: 10}
	if big.UpperBound(s) != sim.Forever {
		t.Fatal("16×9.5% duty should saturate the upper bound")
	}
	if big.ExpectedTime(s) == sim.Forever {
		t.Fatal("discrete model must stay finite")
	}
}

func TestBSPAmplificationLimits(t *testing.T) {
	s := longSMI()
	// Very short supersteps: amplification approaches the node count.
	short := BSP{Nodes: 8, Step: 5 * sim.Millisecond, Steps: 1000}
	// Very long supersteps: amplification approaches 1 (absorption).
	long := BSP{Nodes: 8, Step: 100 * sim.Second, Steps: 1}
	aShort := short.Amplification(s)
	aLong := long.Amplification(s)
	if aShort <= aLong {
		t.Fatalf("short supersteps should amplify more: %.2f vs %.2f", aShort, aLong)
	}
	if aShort < 4 {
		t.Fatalf("short-step amplification %.2f, want near 8", aShort)
	}
	if aLong > 1.3 {
		t.Fatalf("long-step amplification %.2f, want near 1", aLong)
	}
}

// The discrete BSP prediction must track the simulator for a synthetic
// barrier-synchronized workload (mean over seeds, fixed SMI durations).
func TestBSPModelMatchesSimulator(t *testing.T) {
	nodes := 4
	step := 200 * sim.Millisecond
	steps := 40
	stepOps := step.Seconds() * 2.27e9

	var sum float64
	seeds := []int64{1, 2, 3, 5, 8}
	for _, seed := range seeds {
		e := sim.New(seed)
		par := cluster.Wyeast(nodes, false, smm.SMMLong)
		par.Node.SMI.DurMin = 105 * sim.Millisecond
		par.Node.SMI.DurMax = 105 * sim.Millisecond
		par.Node.PerCPURendezvous = 0
		cl := cluster.MustNew(e, par)
		cl.StartSMI()
		w := mpi.MustNewWorld(cl, 1, mpi.DefaultParams())
		measured := w.Run(cpu.Profile{CPI: 1}, func(r *mpi.Rank, tk *kernel.Task) {
			for i := 0; i < steps; i++ {
				tk.Compute(stepOps)
				r.Barrier(tk)
			}
		})
		sum += measured.Seconds()
	}
	mean := sum / float64(len(seeds))

	model := BSP{Nodes: nodes, Step: step, Steps: steps}
	base := model.BaseTime().Seconds()
	predicted := model.ExpectedTime(longSMI()).Seconds()
	upper := model.UpperBound(longSMI()).Seconds()

	if mean <= base {
		t.Fatalf("mean measured %.2fs below noise-free base %.2fs", mean, base)
	}
	if mean > upper*1.05 {
		t.Fatalf("mean measured %.2fs exceeds independent-extension bound %.2fs", mean, upper)
	}
	// The discrete model should predict the measured extra within 50%
	// either way (phase clustering across finite seeds is noisy).
	extraMeasured := mean - base
	extraPredicted := predicted - base
	ratio := extraMeasured / extraPredicted
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("measured extra %.2fs vs discrete model %.2fs (ratio %.2f)",
			extraMeasured, extraPredicted, ratio)
	}
}

func TestQuantizationPenalty(t *testing.T) {
	s := longSMI()
	if s.QuantizationPenalty(0) != 0 {
		t.Fatal("zero-length run should have no penalty")
	}
	// A 1-second run can lose up to half an SMI: ~5.25%.
	p := s.QuantizationPenalty(sim.Second)
	if math.Abs(p-0.0525) > 1e-9 {
		t.Fatalf("penalty %v, want 0.0525", p)
	}
}

func TestZeroScheduleIsIdentity(t *testing.T) {
	b := BSP{Nodes: 4, Step: sim.Second, Steps: 10}
	if b.ExpectedTime(Schedule{}) != b.BaseTime() {
		t.Fatal("no injection should leave runtime at base")
	}
	if b.Amplification(Schedule{}) != 0 {
		t.Fatal("no injection should have zero amplification")
	}
}
