// Package analytic provides closed-form performance models for SMI
// noise, against which the simulator is validated (and vice versa).
//
// Two classical regimes bracket the paper's observations:
//
//   - Serial / embarrassingly parallel work: SMM residency simply
//     inflates runtime by its duty cycle (plus an end-of-run quantization
//     term when runtimes are comparable to the SMI period).
//   - Bulk-synchronous (BSP) work: every superstep ends at the *slowest*
//     node, so each node's independent noise adds until supersteps are
//     long enough to absorb whole SMIs. This is the Ferreira-style
//     amplification that drives Tables 1–3's scaling columns.
package analytic

import (
	"math"

	"smistudy/internal/sim"
)

// Schedule describes periodic SMI injection on one node: an SMI of mean
// duration D every (P + D) of wall time (the driver re-arms after each
// handler returns).
type Schedule struct {
	Period   sim.Time // driver period (x jiffies)
	Duration sim.Time // mean SMM residency per SMI
}

// DutyCycle is the fraction of wall time the node spends in SMM.
func (s Schedule) DutyCycle() float64 {
	cycle := s.Period + s.Duration
	if cycle <= 0 {
		return 0
	}
	return float64(s.Duration) / float64(cycle)
}

// SerialSlowdown predicts the runtime of `base` of work on one node
// under the schedule: t = base / (1 - duty).
func (s Schedule) SerialSlowdown(base sim.Time) sim.Time {
	d := s.DutyCycle()
	if d >= 1 {
		return sim.Forever
	}
	return sim.Time(float64(base) / (1 - d))
}

// ExpectedSlowdownPct is the percentage form of SerialSlowdown.
func (s Schedule) ExpectedSlowdownPct() float64 {
	d := s.DutyCycle()
	if d >= 1 {
		return math.Inf(1)
	}
	return d / (1 - d) * 100
}

// BSP models a bulk-synchronous application: n nodes alternately compute
// for `Step` and synchronize (every node waits for the slowest).
type BSP struct {
	Nodes int
	Step  sim.Time // compute time per superstep per node (noise-free)
	Steps int
}

// BaseTime is the noise-free runtime (communication excluded).
func (b BSP) BaseTime() sim.Time { return sim.Time(b.Steps) * b.Step }

// UpperBound predicts the noisy runtime assuming every node's SMIs
// extend every superstep independently (no overlap absorption):
//
//	t = Step / (1 − n·duty)   while n·duty < 1
//
// Beyond n·duty ≥ 1 the bound saturates to Forever (the simulator still
// progresses, because real SMIs on different nodes overlap).
func (b BSP) UpperBound(s Schedule) sim.Time {
	agg := float64(b.Nodes) * s.DutyCycle()
	if agg >= 1 {
		return sim.Forever
	}
	per := float64(b.Step) / (1 - agg)
	return sim.Time(per * float64(b.Steps))
}

// ExpectedTime predicts the noisy runtime with a discrete per-superstep
// model: each node suffers N_i SMIs inside a stretched superstep of
// length t, where N_i = ⌊m⌋ + Bernoulli(m−⌊m⌋) and m = t/(P+D); the
// superstep ends with the slowest node, so its extension is
// D·E[max_i N_i] = D·(⌊m⌋ + 1 − (1−frac)^n). The fixed point
//
//	t = Step + D·(⌊m⌋ + 1 − (1−frac)^n),  m = t/(P+D)
//
// captures both limits: short supersteps are hit by at most one SMI
// somewhere (amplification → n), long supersteps absorb concurrent
// stalls (amplification → 1).
func (b BSP) ExpectedTime(s Schedule) sim.Time {
	cycle := float64(s.Period + s.Duration)
	if cycle <= 0 {
		return b.BaseTime()
	}
	t := float64(b.Step)
	for i := 0; i < 200; i++ {
		m := t / cycle
		frac := m - math.Floor(m)
		emax := math.Floor(m) + 1 - math.Pow(1-frac, float64(b.Nodes))
		next := float64(b.Step) + float64(s.Duration)*emax
		if math.Abs(next-t) < 1e-6*t {
			t = next
			break
		}
		t = next
	}
	return sim.Time(t * float64(b.Steps))
}

// Amplification reports the discrete model's noise amplification factor:
// (noisy − base) / (per-node residency over the noisy runtime). It is at
// most Nodes (every node's residency charged to everyone) and approaches
// 1 as Step grows (absorption of concurrent stalls).
func (b BSP) Amplification(s Schedule) float64 {
	noisy := b.ExpectedTime(s)
	base := b.BaseTime()
	residency := float64(noisy) * s.DutyCycle()
	if residency <= 0 {
		return 0
	}
	amp := float64(noisy-base) / residency
	if amp > float64(b.Nodes) {
		amp = float64(b.Nodes)
	}
	return amp
}

// QuantizationPenalty estimates the extra relative cost when the total
// runtime is short: the run cannot end mid-SMI, so expected extra delay
// is up to half an SMI duration. Returns the expected extra fraction for
// a run of length t.
func (s Schedule) QuantizationPenalty(t sim.Time) float64 {
	if t <= 0 {
		return 0
	}
	return float64(s.Duration) / 2 / float64(t)
}
