package analytic

import (
	"math"
	"testing"
)

func TestResidualRatioAndLogError(t *testing.T) {
	r := Residual{Simulated: 12, Predicted: 10}
	if r.Ratio() != 1.2 {
		t.Fatalf("ratio = %v", r.Ratio())
	}
	over := Residual{Simulated: 12, Predicted: 10}.LogError()
	under := Residual{Simulated: 10, Predicted: 12}.LogError()
	if math.Abs(over-under) > 1e-12 {
		t.Fatalf("log error asymmetric: %v vs %v", over, under)
	}
	if !math.IsNaN(Residual{Simulated: 1, Predicted: 0}.Ratio()) {
		t.Fatal("zero prediction must yield NaN ratio")
	}
	if !math.IsInf(Residual{Simulated: -1, Predicted: 1}.LogError(), 1) {
		t.Fatal("negative ratio must yield infinite log error")
	}
}

func TestResidualWithinBoundary(t *testing.T) {
	// Exactly at the band edge passes in both directions.
	if !(Residual{Simulated: 1.2, Predicted: 1}).Within(0.2) {
		t.Fatal("upper boundary must pass")
	}
	if !(Residual{Simulated: 1, Predicted: 1.2}).Within(0.2) {
		t.Fatal("lower boundary must pass")
	}
	if (Residual{Simulated: 1.21, Predicted: 1}).Within(0.2) {
		t.Fatal("beyond the band must fail")
	}
	if (Residual{Simulated: 1, Predicted: 1}).Within(-0.1) {
		t.Fatal("negative tolerance must fail")
	}
}

func TestResidualSetHelpers(t *testing.T) {
	rs := []Residual{
		{Simulated: 1.0, Predicted: 1.0},
		{Simulated: 1.1, Predicted: 1.0},
	}
	if !AllWithin(rs, 0.15) {
		t.Fatal("set within tolerance rejected")
	}
	rs = append(rs, Residual{Simulated: 2, Predicted: 1})
	if AllWithin(rs, 0.15) {
		t.Fatal("outlier accepted")
	}
	if got := MaxLogError(rs); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("max log error = %v", got)
	}
	if MaxLogError(nil) != 0 {
		t.Fatal("empty set must score zero")
	}
}
