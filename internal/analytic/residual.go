package analytic

import "math"

// Residual is one model-vs-simulation comparison: the simulator's
// measured value next to the closed-form prediction for the same
// configuration. The fidelity harness gates on these — a physics change
// that moves the simulator away from the theory trips the residual
// check even when no paper cell covers the configuration.
type Residual struct {
	Simulated float64
	Predicted float64
}

// Ratio reports simulated/predicted; NaN when the prediction is zero.
func (r Residual) Ratio() float64 {
	if r.Predicted == 0 {
		return math.NaN()
	}
	return r.Simulated / r.Predicted
}

// LogError reports |ln(simulated/predicted)| — the symmetric
// multiplicative error, so over- and under-prediction by the same
// factor score identically.
func (r Residual) LogError() float64 {
	ratio := r.Ratio()
	if math.IsNaN(ratio) || ratio <= 0 {
		return math.Inf(1)
	}
	return math.Abs(math.Log(ratio))
}

// Within reports whether the residual's ratio lies inside the
// symmetric multiplicative band [1/(1+tol), 1+tol]. tol = 0.2 accepts
// ratios in [0.833, 1.2]; the boundary itself passes.
func (r Residual) Within(tol float64) bool {
	if tol < 0 {
		return false
	}
	return r.LogError() <= math.Log(1+tol)
}

// MaxLogError reports the largest LogError over the set (zero when
// empty).
func MaxLogError(rs []Residual) float64 {
	max := 0.0
	for _, r := range rs {
		if le := r.LogError(); le > max {
			max = le
		}
	}
	return max
}

// AllWithin reports whether every residual passes Within(tol).
func AllWithin(rs []Residual, tol float64) bool {
	for _, r := range rs {
		if !r.Within(tol) {
			return false
		}
	}
	return true
}
