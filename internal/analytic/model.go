package analytic

import (
	"fmt"
	"math"

	"smistudy/internal/sim"
)

// Closed-form cell models for the fast-path dispatcher (the inversion
// of this package: instead of validating the simulator against the
// theory after the fact, the dispatcher uses the theory to *replace*
// simulation where the residual gate proves it equivalent).
//
// Only the embarrassingly-parallel regime is modeled here, because only
// there is the closed form tight enough to certify against: compute is
// perfectly divisible across ranks, and communication is a handful of
// latency-bound collective rounds. Everything with nearest-neighbor
// exchanges, transposes or congestion stays on the simulator.

// EPCell describes one steady-state embarrassingly-parallel cell.
type EPCell struct {
	// TotalOps is the kernel's calibrated total model operations,
	// divided evenly over Ranks.
	TotalOps float64
	// Ranks is the total MPI rank count.
	Ranks int
	// RatePerRank is each rank's sustained execution rate in model
	// operations per second (every rank on its own core, solo cache
	// profile).
	RatePerRank float64
	// Latency is the fabric's one-way message latency.
	Latency sim.Time
	// Collectives is the number of small all-reduce style collectives
	// the kernel ends with; each costs reduce+broadcast trees of
	// ⌈log₂ Ranks⌉ latency-bound rounds.
	Collectives int
}

// Time predicts the cell's runtime in seconds: perfectly-parallel
// compute plus the latency-bound collective tail. The collective term
// is an upper-bound sketch (every round charged one inter-node
// latency); for EP-style kernels it is orders of magnitude below the
// compute term, which is exactly why the shape is certifiable.
func (c EPCell) Time() (float64, error) {
	if c.Ranks <= 0 {
		return 0, fmt.Errorf("analytic: EP cell needs ranks ≥ 1 (got %d)", c.Ranks)
	}
	if c.RatePerRank <= 0 {
		return 0, fmt.Errorf("analytic: EP cell needs a positive per-rank rate")
	}
	if c.TotalOps <= 0 {
		return 0, fmt.Errorf("analytic: EP cell needs calibrated total ops")
	}
	compute := c.TotalOps / float64(c.Ranks) / c.RatePerRank
	rounds := 0.0
	if c.Ranks > 1 {
		rounds = 2 * math.Ceil(math.Log2(float64(c.Ranks))) * float64(c.Collectives)
	}
	comm := rounds * c.Latency.Seconds()
	return compute + comm, nil
}
