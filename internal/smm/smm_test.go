package smm

import (
	"math"
	"testing"
	"testing/quick"

	"smistudy/internal/clock"
	"smistudy/internal/cpu"
	"smistudy/internal/sim"
)

func newNode(seed int64) (*sim.Engine, *cpu.Model, *clock.Node) {
	e := sim.New(seed)
	m := cpu.MustNew(e, cpu.Params{
		PhysCores: 4, HTT: true, BaseHz: 1e9, MissPenalty: 100, SMTEfficiency: 0.9,
	})
	clk := clock.New(e, 1e9, sim.Millisecond)
	return e, m, clk
}

func TestTriggerSMIStallsAllCPUs(t *testing.T) {
	e, m, clk := newNode(1)
	ctrl := NewController(e, m, clk)
	th := m.NewThread("t", cpu.Profile{CPI: 1})
	var doneAt sim.Time
	m.StartCompute(th, 1e9, func() { doneAt = e.Now() })
	e.At(200*sim.Millisecond, func() { ctrl.TriggerSMI(50*sim.Millisecond, nil) })
	e.Run()
	if math.Abs(doneAt.Seconds()-1.05) > 1e-6 {
		t.Fatalf("thread finished at %v, want 1.05s", doneAt)
	}
	st := ctrl.Stats()
	if st.Count != 1 || st.TotalResidency != 50*sim.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
	if st.Warnings != 1 {
		t.Fatalf("50ms SMI should trip the BIOSBITS warning, got %d", st.Warnings)
	}
}

func TestShortSMIBelowWarnThreshold(t *testing.T) {
	e, m, clk := newNode(1)
	ctrl := NewController(e, m, clk)
	ctrl.TriggerSMI(100*sim.Microsecond, nil)
	e.Run()
	if ctrl.Stats().Warnings != 0 {
		t.Fatal("100µs SMI should not warn")
	}
}

func TestEpisodeGroundTruth(t *testing.T) {
	e, m, clk := newNode(1)
	ctrl := NewController(e, m, clk)
	e.At(100*sim.Millisecond, func() { ctrl.TriggerSMI(2*sim.Millisecond, nil) })
	e.At(500*sim.Millisecond, func() { ctrl.TriggerSMI(3*sim.Millisecond, nil) })
	e.Run()
	eps := ctrl.Episodes()
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	if eps[0].Start != 100*sim.Millisecond || eps[0].Duration != 2*sim.Millisecond {
		t.Errorf("episode 0 = %+v", eps[0])
	}
	// The TSC keeps counting in SMM: the driver-measured latency equals
	// the true duration.
	if got := clk.CyclesToTime(eps[0].TSCDelta); got != 2*sim.Millisecond {
		t.Errorf("TSC-measured latency = %v, want 2ms", got)
	}
}

func TestInSMMFlag(t *testing.T) {
	e, m, clk := newNode(1)
	ctrl := NewController(e, m, clk)
	e.At(10*sim.Millisecond, func() { ctrl.TriggerSMI(5*sim.Millisecond, nil) })
	e.At(12*sim.Millisecond, func() {
		if !ctrl.InSMM() {
			t.Error("InSMM false during residency")
		}
	})
	e.At(16*sim.Millisecond, func() {
		if ctrl.InSMM() {
			t.Error("InSMM true after exit")
		}
	})
	e.Run()
}

func TestOnExitCallback(t *testing.T) {
	e, m, clk := newNode(1)
	ctrl := NewController(e, m, clk)
	var exitAt sim.Time
	ctrl.TriggerSMI(7*sim.Millisecond, func() { exitAt = e.Now() })
	e.Run()
	if exitAt != 7*sim.Millisecond {
		t.Fatalf("onExit at %v, want 7ms", exitAt)
	}
}

func TestDriverPeriodAndDurations(t *testing.T) {
	e, m, clk := newNode(3)
	ctrl := NewController(e, m, clk)
	drv := NewDriver(e, ctrl, clk, DriverConfig{Level: SMMShort, PeriodJiffies: 100})
	drv.Start()
	if !drv.Running() {
		t.Fatal("driver not running after Start")
	}
	e.RunUntil(1 * sim.Second)
	drv.Stop()
	st := ctrl.Stats()
	// One SMI per 100ms over 1s → ~10 (the last may be in flight).
	if st.Count < 9 || st.Count > 10 {
		t.Fatalf("SMI count = %d, want ≈10", st.Count)
	}
	for _, ep := range ctrl.Episodes() {
		if ep.Duration < ShortMin || ep.Duration > ShortMax {
			t.Fatalf("short SMI duration %v out of [1ms,3ms]", ep.Duration)
		}
	}
}

func TestDriverLongDurations(t *testing.T) {
	e, m, clk := newNode(4)
	ctrl := NewController(e, m, clk)
	drv := NewDriver(e, ctrl, clk, DriverConfig{Level: SMMLong, PeriodJiffies: 1000})
	drv.Start()
	e.RunUntil(5 * sim.Second)
	drv.Stop()
	for _, ep := range ctrl.Episodes() {
		if ep.Duration < LongMin || ep.Duration > LongMax {
			t.Fatalf("long SMI duration %v out of [100ms,110ms]", ep.Duration)
		}
	}
	if ctrl.Stats().Count < 4 {
		t.Fatalf("count = %d, want ≥4", ctrl.Stats().Count)
	}
}

func TestDriverNoneLevelIsInert(t *testing.T) {
	e, m, clk := newNode(1)
	ctrl := NewController(e, m, clk)
	drv := NewDriver(e, ctrl, clk, DriverConfig{Level: SMMNone, PeriodJiffies: 10})
	drv.Start()
	if drv.Running() {
		t.Fatal("SMMNone driver should not run")
	}
	e.RunUntil(time1s())
	if ctrl.Stats().Count != 0 {
		t.Fatal("SMMNone driver fired")
	}
}

func time1s() sim.Time { return sim.Second }

func TestDriverStopCancelsFutureSMIs(t *testing.T) {
	e, m, clk := newNode(1)
	ctrl := NewController(e, m, clk)
	drv := NewDriver(e, ctrl, clk, DriverConfig{Level: SMMShort, PeriodJiffies: 100})
	drv.Start()
	e.RunUntil(350 * sim.Millisecond)
	drv.Stop()
	countAtStop := ctrl.Stats().Count
	e.RunUntil(2 * sim.Second)
	if ctrl.Stats().Count != countAtStop {
		t.Fatalf("SMIs fired after Stop: %d -> %d", countAtStop, ctrl.Stats().Count)
	}
}

func TestPhaseJitterDesynchronizesNodes(t *testing.T) {
	firstFire := func(seed int64) sim.Time {
		e, m, clk := newNode(seed)
		ctrl := NewController(e, m, clk)
		drv := NewDriver(e, ctrl, clk, DriverConfig{Level: SMMLong, PeriodJiffies: 1000, PhaseJitter: true})
		drv.Start()
		e.RunUntil(3 * sim.Second)
		eps := ctrl.Episodes()
		if len(eps) == 0 {
			t.Fatal("no episodes")
		}
		return eps[0].Start
	}
	a, b := firstFire(10), firstFire(20)
	if a == b {
		t.Fatal("phase jitter produced identical phases for different seeds")
	}
	if a > sim.Second || b > sim.Second {
		t.Fatal("first jittered SMI should fall within one period")
	}
}

func TestLevelString(t *testing.T) {
	if SMMNone.String() != "SMM0" || SMMShort.String() != "SMM1" || SMMLong.String() != "SMM2" {
		t.Error("Level strings wrong")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level string wrong")
	}
}

func TestMeanLatency(t *testing.T) {
	var s Stats
	if s.MeanLatency() != 0 {
		t.Error("empty stats mean should be 0")
	}
	s = Stats{Count: 4, TotalResidency: 8 * sim.Millisecond}
	if s.MeanLatency() != 2*sim.Millisecond {
		t.Errorf("mean = %v, want 2ms", s.MeanLatency())
	}
}

func TestDriverCustomDurations(t *testing.T) {
	e, m, clk := newNode(5)
	ctrl := NewController(e, m, clk)
	drv := NewDriver(e, ctrl, clk, DriverConfig{
		Level: SMMLong, PeriodJiffies: 500,
		DurMin: 10 * sim.Millisecond, DurMax: 10 * sim.Millisecond,
	})
	drv.Start()
	e.RunUntil(3 * sim.Second)
	for _, ep := range ctrl.Episodes() {
		if ep.Duration != 10*sim.Millisecond {
			t.Fatalf("custom duration not honored: %v", ep.Duration)
		}
	}
}

func TestSetKeepLogFalse(t *testing.T) {
	e, m, clk := newNode(1)
	ctrl := NewController(e, m, clk)
	ctrl.SetKeepLog(false)
	ctrl.TriggerSMI(sim.Millisecond, nil)
	e.Run()
	if len(ctrl.Episodes()) != 0 {
		t.Fatal("episodes recorded with log disabled")
	}
	if ctrl.Stats().Count != 1 {
		t.Fatal("stats should still accumulate")
	}
}

func TestDriverPeriodShorterThanDurationStillProgresses(t *testing.T) {
	// Long SMIs at a 50 ms period: on real hardware the timer is
	// deferred through SMM, so the machine is brutally throttled but
	// work still completes.
	e, m, clk := newNode(6)
	ctrl := NewController(e, m, clk)
	drv := NewDriver(e, ctrl, clk, DriverConfig{Level: SMMLong, PeriodJiffies: 50})
	drv.Start()
	th := m.NewThread("t", cpu.Profile{CPI: 1})
	done := false
	m.StartCompute(th, 1e7, func() { done = true }) // 10ms of solo work
	e.RunUntil(120 * sim.Second)
	if !done {
		t.Fatal("work starved forever under overlapping SMI schedule")
	}
	// SMIs must never overlap: the node is in SMM at most once at a time.
	eps := ctrl.Episodes()
	for i := 1; i < len(eps); i++ {
		if eps[i].Start < eps[i-1].Start+eps[i-1].Duration {
			t.Fatal("overlapping SMM episodes")
		}
	}
}

// Property: for any random SMI schedule, episodes never overlap and
// their durations sum exactly to the controller's total residency.
func TestEpisodeConsistencyProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		e, m, clk := newNode(seed)
		ctrl := NewController(e, m, clk)
		count := int(n8%10) + 1
		at := sim.Time(0)
		for i := 0; i < count; i++ {
			at += sim.Time(e.Rand().Int63n(int64(200*sim.Millisecond)) + int64(sim.Millisecond))
			dur := sim.Time(e.Rand().Int63n(int64(50*sim.Millisecond)) + int64(sim.Millisecond))
			e.At(at, func() { ctrl.TriggerSMI(dur, nil) })
			at += dur // keep the schedule non-overlapping, like the driver does
		}
		e.Run()
		eps := ctrl.Episodes()
		var total sim.Time
		for i, ep := range eps {
			total += ep.Duration
			if i > 0 && ep.Start < eps[i-1].Start+eps[i-1].Duration {
				return false
			}
		}
		return total == ctrl.Stats().TotalResidency && len(eps) == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: over any horizon, the driver's episode count is within one
// of horizon/(period+meanDuration) — the re-arm cycle.
func TestDriverCadenceProperty(t *testing.T) {
	prop := func(seed int64, periodSel uint8) bool {
		period := uint64(periodSel%16)*100 + 100 // 100..1600 ms
		e, m, clk := newNode(seed)
		ctrl := NewController(e, m, clk)
		drv := NewDriver(e, ctrl, clk, DriverConfig{Level: SMMLong, PeriodJiffies: period, PhaseJitter: true})
		drv.Start()
		horizon := 30 * sim.Second
		e.RunUntil(horizon)
		cycle := sim.Time(period)*sim.Millisecond + 105*sim.Millisecond
		want := int64(horizon) / int64(cycle)
		got := int64(ctrl.Stats().Count)
		return got >= want-2 && got <= want+2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
