// Package smm models System Management Mode and the "Blackbox SMI"
// driver used by the paper to inject System Management Interrupts.
//
// An SMI is the most disruptive interrupt on x86: when one fires, every
// logical CPU of the node enters SMM and stays there until the handler
// finishes, and the operating system neither sees the time spent nor can
// mask the interrupt. The Controller implements exactly those semantics
// against a cpu.Model; the Driver reproduces the paper's injection tool —
// one SMI every x jiffies with a configurable handler duration ("short"
// = 1–3 ms, "long" = 100–110 ms) and TSC-based latency measurement.
package smm

import (
	"fmt"

	"smistudy/internal/clock"
	"smistudy/internal/obs"
	"smistudy/internal/perturb"
	"smistudy/internal/sim"
)

// BIOSBITSWarnThreshold is the SMM residency above which Intel's BIOSBITS
// test suite flags a platform (150 microseconds).
const BIOSBITSWarnThreshold = 150 * sim.Microsecond

// Staller is the processor-side hook the controller drives. cpu.Model
// satisfies it.
type Staller interface {
	Stall()
	Unstall()
}

// Episode is one completed SMM residency, recorded as ground truth for
// validating detectors.
type Episode struct {
	Start    sim.Time
	Duration sim.Time
	TSCDelta uint64 // latency as the driver measures it, in TSC cycles
}

// Stats summarizes SMM activity on a node.
type Stats struct {
	Count          int
	TotalResidency sim.Time
	MaxLatency     sim.Time
	Warnings       int // episodes exceeding BIOSBITSWarnThreshold
}

// MeanLatency reports the average SMM residency per SMI.
func (s Stats) MeanLatency() sim.Time {
	if s.Count == 0 {
		return 0
	}
	return s.TotalResidency / sim.Time(s.Count)
}

// CPUCounter is implemented by processor models that can report their
// online logical CPU count (cpu.Model does).
type CPUCounter interface {
	NumOnline() int
}

// Controller is the SMM entry/exit machinery of one node.
type Controller struct {
	eng   *sim.Engine
	cpu   Staller
	clk   *clock.Node
	inSMM bool

	// perCPURendezvous is the extra SMM residency per online logical
	// CPU: on SMI entry every logical CPU must rendezvous in SMM and
	// have its context saved and restored by microcode/BIOS, so total
	// residency grows with the number of logical CPUs — one of the
	// reasons hyper-threading amplifies SMI impact.
	perCPURendezvous sim.Time

	stats    Stats
	episodes []Episode
	keepLog  bool

	tr   obs.Tracer // nil unless the run is traced
	node int32
}

// SetTracer attaches an observability tracer; events carry node as
// their node index. A nil tracer disables emission.
func (c *Controller) SetTracer(tr obs.Tracer, node int) {
	c.tr = tr
	c.node = int32(node)
}

// SetPerCPURendezvous sets the additional SMM residency charged per
// online logical CPU on every SMI (zero by default).
func (c *Controller) SetPerCPURendezvous(d sim.Time) { c.perCPURendezvous = d }

// NewController attaches SMM machinery to a node's processor and clocks.
func NewController(eng *sim.Engine, cpu Staller, clk *clock.Node) *Controller {
	return &Controller{eng: eng, cpu: cpu, clk: clk, keepLog: true}
}

// SetKeepLog controls whether the controller records per-episode ground
// truth (on by default; disable for very long runs).
func (c *Controller) SetKeepLog(keep bool) { c.keepLog = keep }

// InSMM reports whether the node is currently in System Management Mode.
func (c *Controller) InSMM() bool { return c.inSMM }

// Stats returns aggregate SMM statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Episodes returns the ground-truth log of completed SMM residencies.
func (c *Controller) Episodes() []Episode { return c.episodes }

// TriggerSMI enters SMM for the given handler duration: all CPUs stall,
// and after duration the context is restored. Overlapping triggers extend
// the current residency (the new handler runs after the current one, with
// the CPUs never leaving SMM in between). onExit, if non-nil, runs at SMM
// exit.
func (c *Controller) TriggerSMI(duration sim.Time, onExit func()) {
	if duration <= 0 {
		panic(fmt.Sprintf("smm: non-positive SMI duration %v", duration))
	}
	if c.perCPURendezvous > 0 {
		if counter, ok := c.cpu.(CPUCounter); ok {
			duration += c.perCPURendezvous * sim.Time(counter.NumOnline())
		}
	}
	start := c.eng.Now()
	startTSC := c.clk.TSC()
	c.inSMM = true
	c.cpu.Stall()
	if c.tr != nil {
		c.tr.Emit(obs.Event{Time: start, Type: obs.EvSMMEnter, Node: c.node, Track: -1})
	}
	c.eng.After(duration, func() {
		c.cpu.Unstall()
		c.inSMM = false
		end := c.eng.Now()
		d := end - start
		c.stats.Count++
		c.stats.TotalResidency += d
		if d > c.stats.MaxLatency {
			c.stats.MaxLatency = d
		}
		if d > BIOSBITSWarnThreshold {
			c.stats.Warnings++
		}
		if c.keepLog {
			c.episodes = append(c.episodes, Episode{
				Start:    start,
				Duration: d,
				TSCDelta: c.clk.TSC() - startTSC,
			})
		}
		if c.tr != nil {
			c.tr.Emit(obs.Event{Time: end, Dur: d, Type: obs.EvSMMExit, Node: c.node, Track: -1})
		}
		if onExit != nil {
			onExit()
		}
	})
}

// Level selects one of the paper's SMI injection configurations.
type Level int

const (
	// SMMNone injects no SMIs (the paper's "SMM 0" baseline).
	SMMNone Level = iota
	// SMMShort injects 1–3 ms SMIs (the paper's "SMM 1").
	SMMShort
	// SMMLong injects 100–110 ms SMIs (the paper's "SMM 2").
	SMMLong
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case SMMNone:
		return "SMM0"
	case SMMShort:
		return "SMM1"
	case SMMLong:
		return "SMM2"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Duration bounds for the paper's short and long SMIs.
const (
	ShortMin = 1 * sim.Millisecond
	ShortMax = 3 * sim.Millisecond
	LongMin  = 100 * sim.Millisecond
	LongMax  = 110 * sim.Millisecond
)

// DriverConfig configures the Blackbox-style SMI driver.
type DriverConfig struct {
	Level Level
	// PeriodJiffies is the trigger period in jiffies (x in "one SMI
	// every x jiffies"). The paper's MPI study uses 1000 (one per
	// second on a 1 ms jiffy); the Convolve/UnixBench studies sweep it.
	PeriodJiffies uint64
	// DurMin/DurMax override the Level's duration range when non-zero.
	DurMin, DurMax sim.Time
	// DurationScale multiplies the resolved duration range when > 0 and
	// ≠ 1. It exists for sensitivity studies and for the fidelity
	// harness, which deliberately perturbs the physics (e.g. doubles the
	// long-SMI residency) to prove its tolerance gates trip. Scaling
	// happens after range resolution, so the driver draws the same
	// random sequence at any scale.
	DurationScale float64
	// PhaseJitter randomizes the first trigger within one period so
	// that multiple nodes do not fire in lockstep (true on real
	// clusters: SMI phase is uncorrelated across machines).
	PhaseJitter bool
}

// durations resolves the effective duration range.
func (cfg DriverConfig) durations() (sim.Time, sim.Time) {
	lo, hi := cfg.rawDurations()
	if cfg.DurationScale > 0 && cfg.DurationScale != 1 {
		lo = sim.Time(float64(lo) * cfg.DurationScale)
		hi = sim.Time(float64(hi) * cfg.DurationScale)
	}
	return lo, hi
}

func (cfg DriverConfig) rawDurations() (sim.Time, sim.Time) {
	if cfg.DurMin > 0 && cfg.DurMax >= cfg.DurMin {
		return cfg.DurMin, cfg.DurMax
	}
	switch cfg.Level {
	case SMMShort:
		return ShortMin, ShortMax
	case SMMLong:
		return LongMin, LongMax
	}
	return 0, 0
}

// Driver periodically triggers SMIs, like the modified Delgado driver the
// paper used.
type Driver struct {
	eng  *sim.Engine
	ctrl *Controller
	clk  *clock.Node
	cfg  DriverConfig

	running bool
	next    *sim.Event
}

// NewDriver builds an SMI driver for the controller's node.
func NewDriver(eng *sim.Engine, ctrl *Controller, clk *clock.Node, cfg DriverConfig) *Driver {
	return &Driver{eng: eng, ctrl: ctrl, clk: clk, cfg: cfg}
}

// Config returns the driver configuration.
func (d *Driver) Config() DriverConfig { return d.cfg }

// Start arms the driver. With Level SMMNone it does nothing.
func (d *Driver) Start() {
	if d.running || d.cfg.Level == SMMNone {
		return
	}
	if d.cfg.PeriodJiffies == 0 {
		panic("smm: driver period is zero")
	}
	d.running = true
	period := sim.Time(d.cfg.PeriodJiffies) * d.clk.Jiffy()
	first := period
	if d.cfg.PhaseJitter {
		first = sim.Time(d.eng.Rand().Int63n(int64(period))) + 1
	}
	d.next = d.eng.After(first, d.fire)
}

// Stop disarms the driver; an in-flight SMI still completes.
func (d *Driver) Stop() {
	if !d.running {
		return
	}
	d.running = false
	if d.next != nil {
		d.eng.Cancel(d.next)
		d.next = nil
	}
}

// Running reports whether the driver is armed.
func (d *Driver) Running() bool { return d.running }

// Reconfigure swaps the driver's configuration, rearming it if it was
// running or if the new configuration injects SMIs (an SMI-storm fault
// must fire even on a node whose baseline driver is idle). An in-flight
// SMI still completes under the old duration.
func (d *Driver) Reconfigure(cfg DriverConfig) {
	wasRunning := d.running
	d.Stop()
	d.cfg = cfg
	if wasRunning || cfg.Level != SMMNone {
		d.Start()
	}
}

func (d *Driver) fire() {
	// The armed event has fired; drop the handle before anything else
	// so a Stop during the in-flight SMI cannot cancel a recycled event.
	d.next = nil
	if !d.running {
		return
	}
	period := sim.Time(d.cfg.PeriodJiffies) * d.clk.Jiffy()
	if d.ctrl.InSMM() {
		// The driver's timer cannot be serviced while the CPUs are in
		// SMM (nothing preempts SMM); the pending trigger is deferred
		// to the next jiffy after SMM exit.
		d.next = d.eng.After(d.clk.Jiffy(), d.fire)
		return
	}
	lo, hi := d.cfg.durations()
	dur := lo
	if hi > lo {
		dur = lo + sim.Time(d.eng.Rand().Int63n(int64(hi-lo)+1))
	}
	if dur <= 0 {
		d.next = d.eng.After(period, d.fire)
		return
	}
	// The driver's timer callback triggers the SMI synchronously (an
	// outb to port 0xB2) and is itself frozen in SMM with everything
	// else; it re-arms mod_timer(jiffies+x) only after the handler
	// returns. The effective cycle is therefore duration + period —
	// which is why even a 50 ms period with 105 ms SMIs throttles the
	// machine brutally (≈68% duty cycle) but never starves it.
	d.ctrl.TriggerSMI(dur, func() {
		if !d.running {
			return
		}
		d.next = d.eng.After(period, d.fire)
	})
}

// Family is the SMM noise-family name used in attribution categories,
// scenario noise blocks, and detector scoring.
const Family = "smm"

// The driver is the SMM implementation of the generic noise-source
// contract: node-global, OS-invisible steal episodes.
var _ perturb.Source = (*Driver)(nil)

// Meta identifies the family: every logical CPU rendezvouses in the
// handler (global scope) and the OS cannot see the residency.
func (d *Driver) Meta() perturb.Meta {
	return perturb.Meta{Family: Family, Scope: perturb.ScopeGlobal, Visible: false}
}

// Episodes returns the controller's ground-truth log in the generic
// form; every episode stole all CPUs.
func (d *Driver) Episodes() []perturb.Episode {
	eps := d.ctrl.Episodes()
	out := make([]perturb.Episode, len(eps))
	for i, e := range eps {
		out[i] = perturb.Episode{CPU: perturb.AllCPUs, Start: e.Start, Duration: e.Duration}
	}
	return out
}

// Stolen is the total SMM residency so far.
func (d *Driver) Stolen() sim.Time { return d.ctrl.Stats().TotalResidency }
