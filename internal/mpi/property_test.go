package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smistudy/internal/cluster"
	"smistudy/internal/kernel"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// Property: any random traffic pattern in which every send has exactly
// one matching receive completes without deadlock, and every byte sent
// is received.
func TestRandomTrafficCompletes(t *testing.T) {
	prop := func(seed int64, n8, m8 uint8) bool {
		ranks := int(n8%6) + 2
		msgs := int(m8%20) + 1
		rng := rand.New(rand.NewSource(seed))

		// Build a random message list: (src, dst, tag, bytes).
		type msg struct{ src, dst, tag, bytes int }
		var plan []msg
		for i := 0; i < msgs; i++ {
			src := rng.Intn(ranks)
			dst := rng.Intn(ranks)
			plan = append(plan, msg{src, dst, i, rng.Intn(200<<10) + 1})
		}
		sendsBy := make(map[int][]msg)
		recvsBy := make(map[int][]msg)
		for _, m := range plan {
			sendsBy[m.src] = append(sendsBy[m.src], m)
			recvsBy[m.dst] = append(recvsBy[m.dst], m)
		}

		w := worldN(seed, ranks)
		received := 0
		bytesIn := 0
		w.Run(prof, func(r *Rank, tk *kernel.Task) {
			// Post all receives first (non-blocking), then all sends,
			// then wait — a pattern that cannot deadlock.
			var reqs []*Request
			for _, m := range recvsBy[r.ID()] {
				reqs = append(reqs, r.Irecv(tk, m.src, m.tag))
			}
			for _, m := range sendsBy[r.ID()] {
				reqs = append(reqs, r.Isend(tk, m.dst, m.tag, m.bytes))
			}
			r.WaitAll(tk, reqs...)
			for i, m := range recvsBy[r.ID()] {
				q := reqs[i]
				if q.Bytes() != m.bytes || q.Source() != m.src {
					panic("mismatched completion")
				}
				received++
				bytesIn += q.Bytes()
			}
		})
		wantBytes := 0
		for _, m := range plan {
			wantBytes += m.bytes
		}
		return received == msgs && bytesIn == wantBytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func worldN(seed int64, ranks int) *World {
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.Wyeast(ranks, false, smm.SMMNone))
	return MustNewWorld(cl, 1, DefaultParams())
}

// Property: collectives complete for every rank count and the engine
// time is identical across repeated runs (determinism under load).
func TestCollectiveMatrixProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		ranks := int(n8%7) + 1
		run := func() sim.Time {
			w := worldN(seed, ranks)
			return w.Run(prof, func(r *Rank, tk *kernel.Task) {
				r.Barrier(tk)
				r.Bcast(tk, ranks/2, 1<<12)
				r.Reduce(tk, 0, 256)
				r.Allreduce(tk, 64)
				r.Allgather(tk, 512)
				r.Alltoall(tk, 1<<10)
				r.Barrier(tk)
			})
		}
		return run() == run()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
