package mpi

import (
	"fmt"
	"strconv"
	"strings"

	"smistudy/internal/sim"
)

// DefaultWatchdogInterval is the no-progress observation window when
// Params.Watchdog is zero. It is deliberately generous: a window must
// comfortably exceed the longest legitimate silent interval (a class-C
// compute phase with every peer already blocked) to never false-fire.
const DefaultWatchdogInterval = 120 * sim.Second

// FaultObserver tells the progress watchdog what the fault injector
// knows, so a fault-induced stall can be distinguished from a slow
// computation. faults.Injector implements it.
type FaultObserver interface {
	// NodeDown reports whether the node's CPUs are currently halted
	// (crashed or hung), i.e. its ranks cannot be expected to progress.
	NodeDown(node int) bool
	// FaultsPending reports whether scheduled fault transitions are
	// still to come; a pending expiry can revive a halted node, so the
	// watchdog must not declare the run dead before it fires.
	FaultsPending() bool
}

// SetFaultObserver connects a fault injector (or any observer) to the
// world's progress watchdog.
func (w *World) SetFaultObserver(obs FaultObserver) { w.obs = obs }

// RankState is one rank's status in a no-progress report.
type RankState struct {
	Rank, Node int
	State      string // "done", "computing", "node down", or "blocked in ..."
	Mailbox    int    // unexpected messages queued
	Posted     int    // receives posted and unmatched
}

// NoProgressError is the watchdog's report: every unfinished rank is
// blocked (or hosted on a halted node), nothing moved for a full
// observation interval, and no scheduled fault transition can change
// that. With Interval zero the event queue drained outright — a hard
// deadlock in the communication pattern itself.
type NoProgressError struct {
	At       sim.Time
	Interval sim.Time
	Ranks    []RankState
}

// Error formats the per-rank blocked-state report.
func (e *NoProgressError) Error() string {
	var b strings.Builder
	if e.Interval > 0 {
		fmt.Fprintf(&b, "mpi: no progress for %v at t=%v", e.Interval, e.At)
	} else {
		fmt.Fprintf(&b, "mpi: deadlock at t=%v — event queue drained with ranks outstanding", e.At)
	}
	stuck := 0
	for _, r := range e.Ranks {
		if r.State == "done" {
			continue
		}
		stuck++
		fmt.Fprintf(&b, "\n  rank %d (node %d): %s, mailbox %d, posted %d",
			r.Rank, r.Node, r.State, r.Mailbox, r.Posted)
	}
	fmt.Fprintf(&b, "\n  (%d of %d ranks outstanding)", stuck, len(e.Ranks))
	return b.String()
}

// armWatchdog starts the periodic no-progress check. Params.Watchdog
// selects the interval: zero means DefaultWatchdogInterval, negative
// disables the watchdog entirely.
func (w *World) armWatchdog() {
	iv := w.par.Watchdog
	if iv < 0 {
		return
	}
	if iv == 0 {
		iv = DefaultWatchdogInterval
	}
	last := w.progress.Load()
	var tick func()
	tick = func() {
		w.wdEvent = nil
		if w.remaining == 0 || w.wderr != nil {
			return
		}
		if w.progress.Load() == last && w.allBlocked() && !w.faultsPending() {
			w.wderr = w.noProgress(iv)
			w.cl.Eng.Stop()
			return
		}
		last = w.progress.Load()
		w.wdEvent = w.cl.Eng.After(iv, tick)
	}
	w.wdEvent = w.cl.Eng.After(iv, tick)
}

// allBlocked reports whether every unfinished rank is either parked in
// Wait or hosted on a node the fault observer knows is down.
func (w *World) allBlocked() bool {
	for _, r := range w.ranks {
		if r.done || r.waiting != nil {
			continue
		}
		if w.obs != nil && w.obs.NodeDown(r.node.Index) {
			continue
		}
		return false
	}
	return true
}

func (w *World) faultsPending() bool { return w.obs != nil && w.obs.FaultsPending() }

// noProgress snapshots every rank's state into a report. Interval zero
// marks a drained-queue deadlock rather than a timed observation.
func (w *World) noProgress(iv sim.Time) *NoProgressError {
	e := &NoProgressError{At: w.cl.Eng.Now(), Interval: iv}
	for _, r := range w.ranks {
		st := RankState{Rank: r.id, Node: r.node.Index,
			Mailbox: len(r.mailbox), Posted: len(r.posted)}
		switch {
		case r.done:
			st.State = "done"
		case w.obs != nil && w.obs.NodeDown(r.node.Index):
			st.State = "node down"
		case r.waiting != nil:
			st.State = r.waiting.describe()
		default:
			st.State = "computing"
		}
		e.Ranks = append(e.Ranks, st)
	}
	return e
}

// describe renders the operation a request represents, for blocked-state
// reports only (never on the hot path).
func (q *Request) describe() string {
	op := "send to"
	if q.kind == 'r' {
		op = "recv from"
	}
	peer := strconv.Itoa(q.peer)
	if q.peer == AnySource {
		peer = "any"
	}
	return fmt.Sprintf("blocked in %s rank %s tag %d", op, peer, q.tag)
}
