package mpi

import (
	"fmt"

	"smistudy/internal/kernel"
)

// Additional collectives beyond what the NAS skeletons strictly need,
// built with the standard MPICH algorithms so the runtime is usable for
// workloads past the paper's three benchmarks.

// Gather collects `bytes` from every rank onto root (binomial tree; an
// interior node forwards its subtree's accumulated payload).
func (r *Rank) Gather(t *kernel.Task, root, bytes int) {
	p := len(r.w.ranks)
	seq := r.collSeq
	r.collSeq++
	r.collBegin("gather")
	defer r.collEnd("gather")
	if p == 1 {
		return
	}
	tag := collTag(seq, 0)
	rel := (r.id - root + p) % p
	// Leaf-to-root: the reverse of a binomial broadcast. Every node
	// first collects from its children (the ranks that differ in bits
	// below its own lowest set bit), then forwards the accumulated
	// subtree payload to its parent.
	mask := 1
	for mask < p && rel&mask == 0 {
		src := rel | mask
		if src < p {
			r.Recv(t, (src+root)%p, tag)
		}
		mask <<= 1
	}
	if rel != 0 {
		dst := ((rel &^ mask) + root) % p
		r.Send(t, dst, tag, bytes*subtreeSize(rel, mask, p))
	}
}

// subtreeSize is the number of ranks in the binomial subtree rooted at
// relative rank rel, whose lowest set bit is `mask`.
func subtreeSize(rel, mask, p int) int {
	size := mask
	if rel+size > p {
		size = p - rel
	}
	return size
}

// Scatter distributes `bytes` per rank from root (binomial tree; interior
// nodes receive their whole subtree's payload and forward halves).
func (r *Rank) Scatter(t *kernel.Task, root, bytes int) {
	p := len(r.w.ranks)
	seq := r.collSeq
	r.collSeq++
	r.collBegin("scatter")
	defer r.collEnd("scatter")
	if p == 1 {
		return
	}
	tag := collTag(seq, 0)
	rel := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := ((rel &^ mask) + root) % p
			r.Recv(t, src, tag)
			break
		}
		mask <<= 1
	}
	if rel == 0 {
		mask = 1
		for mask < p {
			mask <<= 1
		}
	}
	mask >>= 1
	for mask > 0 {
		if rel&(mask-1) == 0 && rel+mask < p {
			dst := (rel + mask + root) % p
			r.Send(t, dst, tag, bytes*subtreeSize(rel+mask, mask, p))
		}
		mask >>= 1
	}
}

// Allgather makes every rank hold every rank's `bytes` (ring algorithm:
// p-1 steps, each passing one block to the right neighbor).
func (r *Rank) Allgather(t *kernel.Task, bytes int) {
	p := len(r.w.ranks)
	seq := r.collSeq
	r.collSeq++
	r.collBegin("allgather")
	defer r.collEnd("allgather")
	if p == 1 {
		return
	}
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	for step := 0; step < p-1; step++ {
		tag := collTag(seq, step)
		r.Sendrecv(t, right, tag, bytes, left, tag)
	}
}

// ReduceScatter combines a vector of p×bytes across all ranks and leaves
// each rank with its `bytes` share (pairwise-exchange algorithm for any
// p: p-1 steps of sendrecv + local combine).
func (r *Rank) ReduceScatter(t *kernel.Task, bytes int) {
	p := len(r.w.ranks)
	seq := r.collSeq
	r.collSeq++
	r.collBegin("reduce_scatter")
	defer r.collEnd("reduce_scatter")
	if p == 1 {
		return
	}
	for step := 1; step < p; step++ {
		tag := collTag(seq, step)
		dst := (r.id + step) % p
		src := (r.id - step + p) % p
		r.Sendrecv(t, dst, tag, bytes, src, tag)
		t.Compute(float64(bytes) * r.w.par.ReduceOpsPerByte)
	}
}

// Alltoallv exchanges per-destination byte counts (irregular all-to-all,
// as IS's key redistribution really is). sizes[d] is what this rank
// sends to rank d; every rank must pass a consistent matrix (SPMD).
func (r *Rank) Alltoallv(t *kernel.Task, sizes []int) {
	p := len(r.w.ranks)
	if len(sizes) != p {
		panic(fmt.Sprintf("mpi: Alltoallv sizes has %d entries for %d ranks", len(sizes), p))
	}
	seq := r.collSeq
	r.collSeq++
	r.collBegin("alltoallv")
	defer r.collEnd("alltoallv")
	if p == 1 {
		t.Compute(float64(sizes[0]) * r.w.par.PackOpsPerByte)
		return
	}
	tag := collTag(seq, 0)
	reqs := make([]*Request, 0, 2*(p-1))
	for step := 1; step < p; step++ {
		src := (r.id - step + p) % p
		reqs = append(reqs, r.Irecv(t, src, tag))
	}
	for step := 1; step < p; step++ {
		dst := (r.id + step) % p
		reqs = append(reqs, r.Isend(t, dst, tag, sizes[dst]))
	}
	r.WaitAll(t, reqs...)
}
