package mpi

import (
	"math"
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

var prof = cpu.Profile{CPI: 1}

func world(t *testing.T, seed int64, nodes, rpn int) *World {
	t.Helper()
	e := sim.New(seed)
	c, err := cluster.New(e, cluster.Wyeast(nodes, false, smm.SMMNone))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(c, rpn, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldPlacement(t *testing.T) {
	w := world(t, 1, 4, 4)
	if w.Size() != 16 {
		t.Fatalf("size = %d, want 16", w.Size())
	}
	for i := 0; i < 16; i++ {
		if got := w.Rank(i).Node().Index; got != i/4 {
			t.Errorf("rank %d on node %d, want %d (block placement)", i, got, i/4)
		}
	}
}

func TestInvalidWorld(t *testing.T) {
	e := sim.New(1)
	c := cluster.MustNew(e, cluster.Wyeast(1, false, smm.SMMNone))
	if _, err := NewWorld(c, 0, DefaultParams()); err == nil {
		t.Error("ranksPerNode=0 accepted")
	}
}

func TestEagerSendRecv(t *testing.T) {
	w := world(t, 1, 2, 1)
	var got, gotSrc int
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		switch r.ID() {
		case 0:
			r.Send(tk, 1, 7, 1024)
		case 1:
			req := r.Irecv(tk, 0, 7)
			r.Wait(tk, req)
			got = req.Bytes()
			gotSrc = req.Source()
		}
	})
	if got != 1024 || gotSrc != 0 {
		t.Fatalf("recv got (%d bytes, src %d), want (1024, 0)", got, gotSrc)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	w := world(t, 1, 2, 1)
	const bytes = 10 << 20 // well over eager limit
	var elapsed sim.Time
	end := w.Run(prof, func(r *Rank, tk *kernel.Task) {
		switch r.ID() {
		case 0:
			start := tk.Gettime()
			r.Send(tk, 1, 1, bytes)
			elapsed = tk.Gettime() - start
		case 1:
			tk.Nanosleep(100 * sim.Millisecond) // delay posting
			r.Recv(tk, 0, 1)
		}
	})
	// Sender must block until the receiver posts (~100ms) plus transfer
	// (~10MB at 117MB/s ≈ 90ms).
	if elapsed < 150*sim.Millisecond {
		t.Fatalf("rendezvous sender returned after %v, should have blocked past 150ms", elapsed)
	}
	if end < elapsed {
		t.Fatal("end time before sender completion")
	}
}

func TestEagerDoesNotBlockSender(t *testing.T) {
	w := world(t, 1, 2, 1)
	var elapsed sim.Time
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		switch r.ID() {
		case 0:
			start := tk.Gettime()
			r.Send(tk, 1, 1, 100)
			elapsed = tk.Gettime() - start
		case 1:
			tk.Nanosleep(500 * sim.Millisecond)
			r.Recv(tk, 0, 1)
		}
	})
	if elapsed > 10*sim.Millisecond {
		t.Fatalf("eager sender blocked %v waiting for receiver", elapsed)
	}
}

func TestAnySource(t *testing.T) {
	w := world(t, 1, 4, 1)
	srcs := map[int]bool{}
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		if r.ID() == 0 {
			for i := 0; i < 3; i++ {
				srcs[r.Recv(tk, AnySource, 5)] = true
			}
		} else {
			r.Send(tk, 0, 5, 64)
		}
	})
	if len(srcs) != 3 {
		t.Fatalf("received from %d distinct sources, want 3", len(srcs))
	}
}

func TestTagMatching(t *testing.T) {
	w := world(t, 1, 2, 1)
	var order []int
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		switch r.ID() {
		case 0:
			r.Send(tk, 1, 10, 64)
			r.Send(tk, 1, 20, 64)
		case 1:
			// Receive tag 20 first even though tag 10 arrives first.
			r.Recv(tk, 0, 20)
			order = append(order, 20)
			r.Recv(tk, 0, 10)
			order = append(order, 10)
		}
	})
	if len(order) != 2 || order[0] != 20 || order[1] != 10 {
		t.Fatalf("tag matching broken: %v", order)
	}
}

func TestSendrecvNoDeadlock(t *testing.T) {
	w := world(t, 1, 2, 1)
	const bytes = 5 << 20 // rendezvous both ways
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		other := 1 - r.ID()
		r.Sendrecv(tk, other, 1, bytes, other, 1)
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	w := world(t, 1, 4, 2)
	var minExit sim.Time = sim.Forever
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		// Rank 3 arrives 200ms late; nobody may leave before that.
		if r.ID() == 3 {
			tk.Nanosleep(200 * sim.Millisecond)
		}
		r.Barrier(tk)
		if at := tk.Gettime(); at < minExit {
			minExit = at
		}
	})
	if minExit < 200*sim.Millisecond {
		t.Fatalf("a rank left the barrier at %v, before the last arrival", minExit)
	}
}

func TestBarrierSingleRank(t *testing.T) {
	w := world(t, 1, 1, 1)
	end := w.Run(prof, func(r *Rank, tk *kernel.Task) {
		r.Barrier(tk)
		r.Barrier(tk)
	})
	if end > sim.Millisecond {
		t.Fatalf("single-rank barrier took %v", end)
	}
}

func TestBcastReachesAll(t *testing.T) {
	for _, ranks := range []int{2, 3, 4, 7, 8} {
		w := world(t, 1, ranks, 1)
		var after []sim.Time
		w.Run(prof, func(r *Rank, tk *kernel.Task) {
			if r.ID() == 2%ranks {
				tk.Nanosleep(50 * sim.Millisecond)
			}
			r.Bcast(tk, 2%ranks, 4096)
			after = append(after, tk.Gettime())
		})
		for _, at := range after {
			if at < 50*sim.Millisecond {
				t.Fatalf("P=%d: a rank finished bcast at %v before root sent", ranks, at)
			}
		}
	}
}

func TestReduceAllreduce(t *testing.T) {
	for _, ranks := range []int{2, 4, 5, 8} {
		w := world(t, 1, ranks, 1)
		w.Run(prof, func(r *Rank, tk *kernel.Task) {
			r.Reduce(tk, 0, 80)
			r.Allreduce(tk, 80)
		})
	}
}

func TestAlltoallCompletes(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 6, 8} {
		w := world(t, 1, ranks, 1)
		w.Run(prof, func(r *Rank, tk *kernel.Task) {
			r.Alltoall(tk, 1<<16)
		})
	}
}

func TestAlltoallScalesWithMessageSize(t *testing.T) {
	run := func(bytes int) sim.Time {
		w := world(t, 1, 4, 1)
		return w.Run(prof, func(r *Rank, tk *kernel.Task) {
			r.Alltoall(tk, bytes)
		})
	}
	small := run(1 << 10)
	big := run(1 << 22)
	if big < 4*small {
		t.Fatalf("4MB alltoall (%v) not ≫ 1KB alltoall (%v)", big, small)
	}
}

func TestCollectivesBackToBackNoCrosstalk(t *testing.T) {
	// Consecutive collectives use distinct internal tags; a slow rank in
	// the first barrier must not corrupt the second.
	w := world(t, 1, 4, 1)
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		for i := 0; i < 5; i++ {
			if r.ID() == i%4 {
				tk.Nanosleep(10 * sim.Millisecond)
			}
			r.Barrier(tk)
		}
		r.Allreduce(tk, 24)
		r.Alltoall(tk, 2048)
		r.Barrier(tk)
	})
}

func TestSMIStallDelaysCollective(t *testing.T) {
	// A long SMI on one node during a barrier delays every rank: noise
	// amplification through synchronization.
	run := func(stall bool) sim.Time {
		e := sim.New(5)
		c := cluster.MustNew(e, cluster.Wyeast(4, false, smm.SMMNone))
		w := MustNewWorld(c, 1, DefaultParams())
		if stall {
			e.At(100*sim.Millisecond, func() {
				c.Nodes[2].SMM.TriggerSMI(105*sim.Millisecond, nil)
			})
		}
		return w.Run(prof, func(r *Rank, tk *kernel.Task) {
			tk.Compute(2.27e8) // ~100ms of work
			r.Barrier(tk)
		})
	}
	clean := run(false)
	noisy := run(true)
	if noisy < clean+90*sim.Millisecond {
		t.Fatalf("SMI on one node should delay the barrier: clean=%v noisy=%v", clean, noisy)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		w := world(t, 42, 4, 2)
		return w.Run(prof, func(r *Rank, tk *kernel.Task) {
			tk.Compute(1e7)
			r.Alltoall(tk, 1<<15)
			r.Allreduce(tk, 64)
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical runs differ: %v vs %v", a, b)
	}
}

func TestSelfSend(t *testing.T) {
	w := world(t, 1, 1, 2)
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		if r.ID() == 0 {
			req := r.Isend(tk, 0, 3, 128)
			got := r.Recv(tk, 0, 3)
			r.Wait(tk, req)
			if got != 0 {
				panic("self-recv matched wrong source")
			}
		}
	})
}

func TestIsendOutOfRangePanics(t *testing.T) {
	w := world(t, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Isend did not panic")
		}
	}()
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		r.Isend(tk, 5, 0, 10)
	})
}

func TestRequestAccessors(t *testing.T) {
	q := &Request{}
	if q.Done() {
		t.Error("fresh request done")
	}
	q.complete(3, 99)
	if !q.Done() || q.Source() != 3 || q.Bytes() != 99 {
		t.Error("completion state wrong")
	}
	q.complete(4, 100) // second completion ignored
	if q.Source() != 3 {
		t.Error("double completion overwrote state")
	}
}

func TestIntraVsInterNodeLatency(t *testing.T) {
	lat := func(nodes, rpn int) sim.Time {
		w := world(t, 1, nodes, rpn)
		var rtt sim.Time
		w.Run(prof, func(r *Rank, tk *kernel.Task) {
			const rounds = 50
			switch r.ID() {
			case 0:
				start := tk.Gettime()
				for i := 0; i < rounds; i++ {
					r.Send(tk, 1, 1, 8)
					r.Recv(tk, 1, 2)
				}
				rtt = (tk.Gettime() - start) / rounds
			case 1:
				for i := 0; i < rounds; i++ {
					r.Recv(tk, 0, 1)
					r.Send(tk, 0, 2, 8)
				}
			}
		})
		return rtt
	}
	intra := lat(1, 2)
	inter := lat(2, 1)
	if intra >= inter {
		t.Fatalf("intra-node RTT %v should beat inter-node %v", intra, inter)
	}
	if inter < 90*sim.Microsecond {
		t.Fatalf("inter-node RTT %v implausibly low for GigE", inter)
	}
}

func TestEPStyleScaling(t *testing.T) {
	// Embarrassingly parallel work + one tiny allreduce: runtime should
	// halve (roughly) when rank count doubles.
	run := func(nodes int) sim.Time {
		w := world(t, 1, nodes, 1)
		total := 2.27e9 * 4 // ~4 core-seconds of work
		return w.Run(prof, func(r *Rank, tk *kernel.Task) {
			tk.Compute(total / float64(w.Size()))
			r.Allreduce(tk, 80)
		})
	}
	t1 := run(1)
	t4 := run(4)
	ratio := float64(t1) / float64(t4)
	if math.Abs(ratio-4) > 0.5 {
		t.Fatalf("EP-style speedup 1→4 nodes = %.2f, want ≈4", ratio)
	}
}
