package mpi

import (
	"errors"
	"fmt"

	"smistudy/internal/cluster"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// ErrPeerUnreachable is surfaced (wrapped) when the retransmission
// protocol exhausts its retries without an acknowledgment — the peer
// node crashed, was partitioned away, or the link is losing everything.
var ErrPeerUnreachable = errors.New("mpi: peer unreachable")

// DefaultMaxRetries bounds retransmissions per transfer when
// Params.MaxRetries is zero.
const DefaultMaxRetries = 8

// TransportStats counts reliable-transport activity across the world.
type TransportStats struct {
	Transfers   int64 // transfers carried by the reliable protocol
	Retransmits int64 // timeout-driven resends
	Duplicates  int64 // copies discarded at the receiver
	Acks        int64 // acknowledgments sent
	Failures    int64 // transfers that exhausted their retries
}

// TransportStats reports the world's reliable-transport counters (all
// zero when the protocol is disabled).
func (w *World) TransportStats() TransportStats { return w.net }

// xfer is one reliable transfer: the sender-side retransmission state
// and the receiver-side dedup bit. (The simulator shares one object for
// both ends; the wire protocol it models is a per-transfer sequence
// number acknowledged end-to-end.)
type xfer struct {
	w         *World
	src, dst  *cluster.Node
	bytes     int
	rto       sim.Time
	tries     int
	acked     bool
	delivered bool
	deliver   func()
	fail      func(error)
	timer     *sim.Event
}

// xmit moves `bytes` of wire data from node src to node dst, invoking
// deliver exactly once when the data first arrives.
//
// With Params.RTO zero the transfer is fire-and-forget, exactly the
// pre-fault fabric semantics: a dropped message is simply gone. With RTO
// positive, every transfer is acknowledged by the receiver and
// retransmitted on timeout with exponential backoff; after MaxRetries
// the transfer fails with ErrPeerUnreachable, delivered through `fail`
// (or, when fail is nil, by poisoning the owning rank's next blocking
// operation).
func (w *World) xmit(owner *Rank, src, dst *cluster.Node, bytes int, deliver func(), fail func(error)) {
	if w.par.RTO <= 0 {
		w.cl.Fabric.Deliver(src.Index, dst.Index, bytes, deliver)
		return
	}
	if fail == nil {
		fail = func(err error) { owner.fatal(err) }
	}
	x := &xfer{w: w, src: src, dst: dst, bytes: bytes,
		rto: w.initialRTO(bytes), deliver: deliver, fail: fail}
	w.net.Transfers++
	x.attempt()
}

// initialRTO scales the configured RTO floor by the transfer's expected
// flight time so large rendezvous payloads are not declared lost while
// still serializing. Congestion can exceed the headroom; the resulting
// spurious retransmits are deduplicated and counted, like real TCP
// timeouts under incast.
func (w *World) initialRTO(bytes int) sim.Time {
	par := w.cl.Fabric.Params()
	est := 2*par.Latency + 2*sim.Time(float64(bytes+envelopeBytes)/par.BytesPerSec*float64(sim.Second))
	if rto := 4 * est; rto > w.par.RTO {
		return rto
	}
	return w.par.RTO
}

func (x *xfer) attempt() {
	x.w.cl.Fabric.Deliver(x.src.Index, x.dst.Index, x.bytes, x.arrive)
	x.timer = x.w.cl.Eng.After(x.rto, x.timeout)
}

// arrive runs at the receiver when a copy of the transfer lands.
func (x *xfer) arrive() {
	if x.delivered {
		x.w.net.Duplicates++
		x.sendAck()
		return
	}
	x.delivered = true
	x.sendAck()
	x.w.bump()
	x.deliver()
}

// sendAck returns an acknowledgment envelope. Acks are themselves
// unacknowledged; a lost ack costs one retransmission round.
func (x *xfer) sendAck() {
	x.w.net.Acks++
	x.w.cl.Fabric.Deliver(x.dst.Index, x.src.Index, envelopeBytes, x.ackArrive)
}

func (x *xfer) ackArrive() {
	if x.acked {
		return
	}
	x.acked = true
	if x.timer != nil {
		x.w.cl.Eng.Cancel(x.timer)
		x.timer = nil
	}
}

func (x *xfer) timeout() {
	// This retransmission timer has fired; drop the handle so an ack
	// arriving after the final retry cannot cancel a recycled event.
	x.timer = nil
	if x.acked {
		return
	}
	w := x.w
	limit := w.par.MaxRetries
	if limit <= 0 {
		limit = DefaultMaxRetries
	}
	x.tries++
	if x.tries > limit {
		w.net.Failures++
		x.fail(fmt.Errorf("%w: node %d -> node %d (%d bytes, %d attempts)",
			ErrPeerUnreachable, x.src.Index, x.dst.Index, x.bytes, x.tries))
		return
	}
	w.net.Retransmits++
	if w.tr != nil {
		w.tr.Emit(obs.Event{Time: w.cl.Eng.Now(), Type: obs.EvMPIRetransmit,
			Node: int32(x.src.Index), Track: -1, A: int64(x.dst.Index), B: int64(x.bytes)})
	}
	backoff := w.par.RTOBackoff
	if backoff < 1 {
		backoff = 2
	}
	x.rto = sim.Time(float64(x.rto) * backoff)
	x.attempt()
}
