package mpi

import (
	"errors"
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/faults"
	"smistudy/internal/kernel"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// faultWorld builds a world with the reliable transport and an armed
// fault schedule, returning the world and its injector.
func faultWorld(t *testing.T, seed int64, nodes int, par Params, sched faults.Schedule) (*World, *faults.Injector) {
	t.Helper()
	e := sim.New(seed)
	c, err := cluster.New(e, cluster.Wyeast(nodes, false, smm.SMMNone))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(c, 1, par)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := c.Inject(sched)
	if err != nil {
		t.Fatal(err)
	}
	w.SetFaultObserver(inj)
	return w, inj
}

func TestReliableCleanFabricNoRetransmits(t *testing.T) {
	w, _ := faultWorld(t, 1, 2, ReliableParams(), faults.Schedule{})
	_, err := w.RunE(prof, func(r *Rank, tk *kernel.Task) {
		for i := 0; i < 10; i++ {
			if r.ID() == 0 {
				r.Send(tk, 1, i, 1024)
			} else {
				r.Recv(tk, 0, i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.TransportStats()
	if st.Transfers == 0 || st.Acks == 0 {
		t.Fatalf("reliable transport unused: %+v", st)
	}
	if st.Retransmits != 0 || st.Failures != 0 || st.Duplicates != 0 {
		t.Fatalf("clean fabric saw retransmission activity: %+v", st)
	}
}

func TestLossyEagerCompletesViaRetransmission(t *testing.T) {
	var sched faults.Schedule
	sched.Add(faults.UniformLoss(0.3))
	w, _ := faultWorld(t, 7, 2, ReliableParams(), sched)
	got := 0
	_, err := w.RunE(prof, func(r *Rank, tk *kernel.Task) {
		for i := 0; i < 50; i++ {
			if r.ID() == 0 {
				r.Send(tk, 1, i, 1024)
			} else {
				r.Recv(tk, 0, i)
				got++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("received %d of 50 messages", got)
	}
	st := w.TransportStats()
	if st.Retransmits == 0 {
		t.Fatalf("30%% loss produced no retransmits: %+v", st)
	}
	fst := w.cl.Fabric.Stats()
	if fst.Drops == 0 {
		t.Fatalf("fabric recorded no drops: %+v", fst)
	}
}

func TestLossyRendezvousCompletes(t *testing.T) {
	var sched faults.Schedule
	sched.Add(faults.UniformLoss(0.3))
	w, _ := faultWorld(t, 11, 2, ReliableParams(), sched)
	const bytes = 1 << 20 // over the eager limit
	var gotBytes int
	_, err := w.RunE(prof, func(r *Rank, tk *kernel.Task) {
		for i := 0; i < 5; i++ {
			if r.ID() == 0 {
				r.Send(tk, 1, i, bytes)
			} else {
				req := r.Irecv(tk, 0, i)
				r.Wait(tk, req)
				gotBytes += req.Bytes()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotBytes != 5*bytes {
		t.Fatalf("received %d bytes, want %d", gotBytes, 5*bytes)
	}
	if st := w.TransportStats(); st.Retransmits == 0 {
		t.Fatalf("30%% loss on a rendezvous handshake produced no retransmits: %+v", st)
	}
}

func TestCrashSurfacesPeerUnreachable(t *testing.T) {
	par := ReliableParams()
	par.Watchdog = 5 * sim.Second
	var sched faults.Schedule
	sched.Add(faults.CrashAt(1, 10*sim.Millisecond))
	w, inj := faultWorld(t, 3, 2, par, sched)
	end, err := w.RunE(prof, func(r *Rank, tk *kernel.Task) {
		// Rank 1 crashes before the exchange; rank 0's sends go into the
		// void and its receive never completes.
		tk.Nanosleep(20 * sim.Millisecond)
		if r.ID() == 0 {
			r.Send(tk, 1, 0, 1024)
			r.Recv(tk, 1, 1)
		} else {
			r.Recv(tk, 0, 0)
			r.Send(tk, 0, 1, 1024)
		}
	})
	if err == nil {
		t.Fatal("run against a crashed peer succeeded")
	}
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", err)
	}
	if end > 60*sim.Second {
		t.Fatalf("failure took %v of simulated time; want bounded", end)
	}
	if inj.Stats().Drops == 0 {
		t.Fatal("injector condemned no messages for the crashed node")
	}
}

func TestHangTripsWatchdog(t *testing.T) {
	par := DefaultParams()
	par.Watchdog = 2 * sim.Second
	var sched faults.Schedule
	sched.Add(faults.HangAt(1, 5*sim.Millisecond, 0))
	w, _ := faultWorld(t, 5, 2, par, sched)
	end, err := w.RunE(prof, func(r *Rank, tk *kernel.Task) {
		if r.ID() == 0 {
			r.Recv(tk, 1, 0) // never arrives: the peer hangs first
		} else {
			tk.Nanosleep(50 * sim.Millisecond)
			r.Send(tk, 0, 0, 64)
		}
	})
	var np *NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("err = %v, want NoProgressError", err)
	}
	if len(np.Ranks) != 2 {
		t.Fatalf("report covers %d ranks, want 2", len(np.Ranks))
	}
	if got := np.Ranks[0].State; got != "blocked in recv from rank 1 tag 0" {
		t.Fatalf("rank 0 state = %q", got)
	}
	if got := np.Ranks[1].State; got != "node down" {
		t.Fatalf("rank 1 state = %q", got)
	}
	if end > 60*sim.Second {
		t.Fatalf("no-progress detection took %v of simulated time", end)
	}
}

func TestDrainedQueueDeadlockReported(t *testing.T) {
	w := world(t, 1, 2, 1)
	w.par.Watchdog = -1 // even with the watchdog off, a drained queue is reported
	_, err := w.RunE(prof, func(r *Rank, tk *kernel.Task) {
		r.Recv(tk, 1-r.ID(), 0) // both ranks receive, nobody sends
	})
	var np *NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("err = %v, want NoProgressError", err)
	}
	if np.Interval != 0 {
		t.Fatalf("interval = %v, want 0 (drained queue)", np.Interval)
	}
}

func TestWatchdogNoFalsePositive(t *testing.T) {
	// Long compute phases with a tight watchdog: ranks that are merely
	// slow must never be declared dead.
	par := DefaultParams()
	par.Watchdog = 100 * sim.Millisecond
	w, _ := faultWorld(t, 9, 4, par, faults.Schedule{})
	_, err := w.RunE(prof, func(r *Rank, tk *kernel.Task) {
		for i := 0; i < 5; i++ {
			tk.Compute(5e8) // ~220 ms on the Wyeast node
			r.Barrier(tk)
		}
	})
	if err != nil {
		t.Fatalf("clean run tripped the watchdog: %v", err)
	}
}

func TestPartitionHealsAndRunCompletes(t *testing.T) {
	// A transient partition shorter than the retry budget: the transport
	// must ride it out, not abort.
	var sched faults.Schedule
	sched.Add(faults.PartitionLink(0, 1, 0, 20*sim.Millisecond))
	w, _ := faultWorld(t, 13, 2, ReliableParams(), sched)
	_, err := w.RunE(prof, func(r *Rank, tk *kernel.Task) {
		if r.ID() == 0 {
			r.Send(tk, 1, 0, 1024)
		} else {
			r.Recv(tk, 0, 0)
		}
	})
	if err != nil {
		t.Fatalf("transient partition aborted the run: %v", err)
	}
	if st := w.TransportStats(); st.Retransmits == 0 {
		t.Fatalf("partition produced no retransmits: %+v", st)
	}
}
