package mpi

import (
	"testing"

	"smistudy/internal/kernel"
	"smistudy/internal/sim"
)

func TestGatherCompletes(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < ranks; root += 2 {
			w := world(t, 1, ranks, 1)
			w.Run(prof, func(r *Rank, tk *kernel.Task) {
				r.Gather(tk, root, 4096)
			})
		}
	}
}

func TestGatherWaitsForSlowLeaf(t *testing.T) {
	w := world(t, 1, 4, 1)
	var rootDone sim.Time
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		if r.ID() == 3 {
			tk.Nanosleep(100 * sim.Millisecond)
		}
		r.Gather(tk, 0, 64)
		if r.ID() == 0 {
			rootDone = tk.Gettime()
		}
	})
	if rootDone < 100*sim.Millisecond {
		t.Fatalf("root finished gather at %v before slow leaf contributed", rootDone)
	}
}

func TestScatterCompletes(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 5, 8} {
		w := world(t, 1, ranks, 1)
		w.Run(prof, func(r *Rank, tk *kernel.Task) {
			r.Scatter(tk, 0, 2048)
		})
	}
}

func TestScatterReachesEveryone(t *testing.T) {
	w := world(t, 1, 8, 1)
	var after []sim.Time
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		if r.ID() == 0 {
			tk.Nanosleep(50 * sim.Millisecond)
		}
		r.Scatter(tk, 0, 1024)
		after = append(after, tk.Gettime())
	})
	for _, at := range after {
		if at < 50*sim.Millisecond {
			t.Fatalf("a rank left scatter at %v before the root sent", at)
		}
	}
}

func TestAllgatherCompletes(t *testing.T) {
	for _, ranks := range []int{1, 2, 5, 8} {
		w := world(t, 1, ranks, 1)
		w.Run(prof, func(r *Rank, tk *kernel.Task) {
			r.Allgather(tk, 1024)
		})
	}
}

func TestAllgatherSynchronizes(t *testing.T) {
	w := world(t, 1, 4, 1)
	var minExit sim.Time = sim.Forever
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		if r.ID() == 2 {
			tk.Nanosleep(80 * sim.Millisecond)
		}
		r.Allgather(tk, 256)
		if at := tk.Gettime(); at < minExit {
			minExit = at
		}
	})
	if minExit < 80*sim.Millisecond {
		t.Fatalf("allgather completed at %v before the slow rank arrived", minExit)
	}
}

func TestReduceScatterCompletes(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 6} {
		w := world(t, 1, ranks, 1)
		w.Run(prof, func(r *Rank, tk *kernel.Task) {
			r.ReduceScatter(tk, 512)
		})
	}
}

func TestAlltoallvCompletes(t *testing.T) {
	w := world(t, 1, 4, 1)
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		sizes := make([]int, 4)
		for d := range sizes {
			// Irregular: rank i sends (i+1)*(d+1) KiB to rank d.
			sizes[d] = (r.ID() + 1) * (d + 1) << 10
		}
		r.Alltoallv(tk, sizes)
	})
}

func TestAlltoallvSingleRank(t *testing.T) {
	w := world(t, 1, 1, 1)
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		r.Alltoallv(tk, []int{1 << 20})
	})
}

func TestAlltoallvBadSizesPanics(t *testing.T) {
	w := world(t, 1, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("mismatched sizes did not panic")
		}
	}()
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		r.Alltoallv(tk, []int{1})
	})
}

func TestCollectivesInterleaveCleanly(t *testing.T) {
	// A mixed sequence of every collective must not cross-match tags.
	w := world(t, 3, 4, 2)
	w.Run(prof, func(r *Rank, tk *kernel.Task) {
		r.Gather(tk, 1, 128)
		r.Scatter(tk, 2, 128)
		r.Allgather(tk, 64)
		r.ReduceScatter(tk, 64)
		r.Alltoallv(tk, []int{8, 8, 8, 8, 8, 8, 8, 8})
		r.Barrier(tk)
		r.Allreduce(tk, 8)
	})
}

func TestSubtreeSize(t *testing.T) {
	// In an 8-rank binomial tree, relative rank 4 with lowbit 4 owns
	// ranks 4-7.
	if got := subtreeSize(4, 4, 8); got != 4 {
		t.Errorf("subtreeSize(4,4,8) = %d, want 4", got)
	}
	// Truncated tree: relative rank 4 in a 6-rank tree owns 4,5.
	if got := subtreeSize(4, 4, 6); got != 2 {
		t.Errorf("subtreeSize(4,4,6) = %d, want 2", got)
	}
}
