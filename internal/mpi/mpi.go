// Package mpi is a message-passing runtime for simulated clusters.
//
// It implements the MPI subset the NAS benchmark skeletons need —
// point-to-point send/receive with eager and rendezvous protocols, and
// the collectives Barrier, Bcast, Reduce, Allreduce and Alltoall built
// from point-to-point the way MPICH builds them (dissemination barrier,
// binomial trees, pairwise exchange). Ranks are kernel tasks placed on
// cluster nodes, so every MPI operation pays CPU cost on its node and is
// frozen whenever that node is in System Management Mode: exactly the
// coupling through which per-node SMI noise is amplified by
// synchronization, the paper's central MPI finding.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// AnySource matches a receive against any sender.
const AnySource = -1

const envelopeBytes = 64 // control-message wire size (RTS/CTS/barrier)

// Params is the runtime cost/protocol model.
type Params struct {
	// EagerLimit is the largest message sent eagerly (buffered at the
	// receiver); larger messages use a rendezvous handshake.
	EagerLimit int
	// SendOps/RecvOps are the CPU costs of posting a send/receive.
	SendOps float64
	RecvOps float64
	// PackOpsPerByte is the per-byte CPU cost of packing/unpacking.
	PackOpsPerByte float64
	// WaitOps is the CPU cost of completing a request in Wait.
	WaitOps float64
	// ReduceOpsPerByte is the arithmetic cost of combining reduction
	// operands.
	ReduceOpsPerByte float64

	// RTO enables the reliable transport: every transfer is acknowledged
	// and retransmitted on timeout, with RTO as the minimum timeout (the
	// effective per-transfer timeout also scales with message flight
	// time). Zero disables reliability — transfers are fire-and-forget,
	// appropriate for a perfect fabric and free of any timing overhead.
	RTO sim.Time
	// RTOBackoff multiplies the timeout after each retransmission
	// (default 2).
	RTOBackoff float64
	// MaxRetries bounds retransmissions per transfer; exceeding it fails
	// the transfer with ErrPeerUnreachable (default DefaultMaxRetries).
	MaxRetries int

	// Watchdog is the progress watchdog's observation interval: zero
	// selects DefaultWatchdogInterval, negative disables the watchdog.
	Watchdog sim.Time
}

// DefaultParams resembles an MPICH-over-TCP stack of the period.
func DefaultParams() Params {
	return Params{
		EagerLimit:       64 << 10,
		SendOps:          4000,
		RecvOps:          4000,
		PackOpsPerByte:   0.25,
		WaitOps:          800,
		ReduceOpsPerByte: 1.0,
	}
}

// ReliableParams is DefaultParams with the retransmission protocol
// enabled — the configuration for runs over a faulty fabric.
func ReliableParams() Params {
	p := DefaultParams()
	p.RTO = 2 * sim.Millisecond
	p.RTOBackoff = 2
	p.MaxRetries = DefaultMaxRetries
	return p
}

// Request is a pending point-to-point operation.
type Request struct {
	done  bool
	err   error
	bytes int
	src   int
	wakes []func(any)

	// Operation identity, kept as plain ints so blocked-state reports
	// can be rendered lazily ('s' = send, 'r' = recv).
	kind      byte
	peer, tag int
}

func (q *Request) complete(src, bytes int) {
	if q.done {
		return
	}
	q.done = true
	q.src = src
	q.bytes = bytes
	for _, w := range q.wakes {
		w(nil)
	}
	q.wakes = nil
}

// fail completes the request with an error, waking any waiters so they
// can observe it.
func (q *Request) fail(err error) {
	if q.done {
		return
	}
	q.done = true
	q.err = err
	for _, w := range q.wakes {
		w(nil)
	}
	q.wakes = nil
}

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

// Err reports the failure of a completed request, if any.
func (q *Request) Err() error { return q.err }

// Source reports the matched sender of a completed receive.
func (q *Request) Source() int { return q.src }

// Bytes reports the transferred size of a completed request.
func (q *Request) Bytes() int { return q.bytes }

// message is an in-flight envelope at the receiver: either a delivered
// eager payload or a rendezvous RTS.
type message struct {
	src, tag, bytes int
	rendezvous      bool
	sendReq         *Request // completed when the rendezvous data lands
}

type recvReq struct {
	src, tag int
	req      *Request
}

// World is one MPI job: a set of ranks placed over a cluster.
type World struct {
	cl    *cluster.Cluster
	par   Params
	ranks []*Rank

	remaining int
	endTime   sim.Time

	net      TransportStats
	obs      FaultObserver
	progress atomic.Uint64 // bumped on every delivery/completion; watched by the watchdog
	errsMu   sync.Mutex    // ranks on different shards can abort concurrently
	errs     []error
	wderr    *NoProgressError
	wdEvent  *sim.Event

	tr obs.Tracer // nil unless the run is traced
}

// SetTracer attaches an observability tracer for MPI traffic events
// (send/recv per rank, collective phases, retransmissions). Usually the
// same tracer the cluster carries.
func (w *World) SetTracer(tr obs.Tracer) { w.tr = tr }

// bump records forward progress for the watchdog. Atomic: in a sharded
// run deliveries bump from several shard goroutines at once.
func (w *World) bump() { w.progress.Add(1) }

// Rank is one MPI process.
type Rank struct {
	w    *World
	id   int
	node *cluster.Node
	task *kernel.Task

	mailbox []*message
	posted  []*recvReq
	collSeq int

	done    bool
	err     error     // asynchronous transport failure, observed at Wait
	wake    func(any) // set while parked in Wait
	waiting *Request  // the request being waited on, for the watchdog
}

// rankAbort is the panic sentinel that unwinds a rank out of the MPI
// stack when an operation fails; RunE's spawn wrapper recovers it.
type rankAbort struct {
	rank int
	err  error
}

// abort unwinds the rank with the given error.
func (r *Rank) abort(err error) {
	panic(rankAbort{rank: r.id, err: err})
}

// fatal poisons the rank with an asynchronous transport error; the
// rank aborts at its current or next blocking operation.
func (r *Rank) fatal(err error) {
	if r.done {
		return
	}
	if r.err == nil {
		r.err = err
	}
	if r.wake != nil {
		r.wake(nil)
	}
}

// NewWorld creates size = nodes × ranksPerNode ranks with block placement
// (ranks 0..r-1 on node 0, and so on), matching how mpirun lays out ranks
// with a per-node slot count.
func NewWorld(cl *cluster.Cluster, ranksPerNode int, par Params) (*World, error) {
	if ranksPerNode <= 0 {
		return nil, fmt.Errorf("mpi: ranksPerNode = %d", ranksPerNode)
	}
	w := &World{cl: cl, par: par}
	size := len(cl.Nodes) * ranksPerNode
	for i := 0; i < size; i++ {
		w.ranks = append(w.ranks, &Rank{
			w:    w,
			id:   i,
			node: cl.Nodes[i/ranksPerNode],
		})
	}
	return w, nil
}

// MustNewWorld is NewWorld but panics on error.
func MustNewWorld(cl *cluster.Cluster, ranksPerNode int, par Params) *World {
	w, err := NewWorld(cl, ranksPerNode, par)
	if err != nil {
		panic(err)
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank id (for post-run inspection).
func (w *World) Rank(id int) *Rank { return w.ranks[id] }

// Run spawns every rank as a kernel task running main with the given
// workload profile, drives the simulation until all ranks return, and
// reports the completion time. The engine is stopped at completion; SMI
// drivers must be armed by the caller beforehand if desired. Run panics
// on any failure; RunE is the error-returning form.
func (w *World) Run(prof cpu.Profile, main func(r *Rank, t *kernel.Task)) sim.Time {
	end, err := w.RunE(prof, main)
	if err != nil {
		panic(fmt.Sprintf("mpi: run failed: %v", err))
	}
	return end
}

// RunE is Run with failure reporting: rank aborts (ErrPeerUnreachable
// from the reliable transport, or any error raised through Request
// failure) and watchdog no-progress reports come back as an error
// instead of a hang or panic, with the engine shut down so the run ends
// at a bounded simulated time.
func (w *World) RunE(prof cpu.Profile, main func(r *Rank, t *kernel.Task)) (sim.Time, error) {
	if g := w.cl.ShardGroup(); g != nil {
		return w.runSharded(g, prof, main)
	}
	w.remaining = len(w.ranks)
	for _, r := range w.ranks {
		r := r
		r.task = r.node.Kernel.Spawn(fmt.Sprintf("rank%d", r.id), prof, func(t *kernel.Task) {
			w.runRank(r, t, main)
			r.done = true
			w.bump()
			w.remaining--
			if w.remaining == 0 {
				w.endTime = w.cl.Eng.Now()
				w.cl.Eng.Stop()
			}
		})
	}
	w.armWatchdog()
	w.cl.Eng.Run()
	if w.wdEvent != nil {
		w.cl.Eng.Cancel(w.wdEvent)
		w.wdEvent = nil
	}
	if w.remaining != 0 && w.wderr == nil && len(w.errs) == 0 {
		// The event queue drained with ranks outstanding: a deadlock in
		// the communication pattern itself (nothing in flight, no timer
		// armed). Report it like a watchdog trip with interval zero.
		w.wderr = w.noProgress(0)
	}
	if w.remaining != 0 {
		// Reap parked rank processes so the engine is reusable.
		w.cl.Eng.Shutdown()
	}
	if len(w.errs) > 0 || w.wderr != nil {
		errs := w.errs
		if w.wderr != nil {
			errs = append(errs[:len(errs):len(errs)], error(w.wderr))
		}
		return w.cl.Eng.Now(), errors.Join(errs...)
	}
	return w.endTime, nil
}

// ErrShardFallback marks a sharded run that aborted because the
// execution hit an ordering the deterministic cross-shard merge cannot
// reproduce (incast congestion, simultaneous sends to one receiver, a
// rendezvous transfer, …). The run's state is discarded; the caller
// must rerun on a single engine, which is byte-identical by definition.
var ErrShardFallback = errors.New("mpi: sharded run aborted, rerun sequentially")

// runSharded drives the ranks over the cluster's shard group: each
// rank's events execute on its node's shard engine, windows run
// concurrently, and the fabric merges cross-shard traffic at window
// barriers. Any outcome other than a clean all-ranks completion —
// a merge abort, a rank error, ranks left outstanding — is reported as
// ErrShardFallback, because a partial sharded state cannot be trusted
// for the sequential error-reporting contract. The progress watchdog is
// not armed: sharded runs are steady-state (no faults, no reliable
// transport), where the only hang is a model bug the sequential rerun
// will reproduce and report.
func (w *World) runSharded(g *sim.ShardGroup, prof cpu.Profile, main func(r *Rank, t *kernel.Task)) (sim.Time, error) {
	var remaining atomic.Int64
	remaining.Store(int64(len(w.ranks)))
	ends := make([]sim.Time, len(w.ranks))
	for _, r := range w.ranks {
		r := r
		r.task = r.node.Kernel.Spawn(fmt.Sprintf("rank%d", r.id), prof, func(t *kernel.Task) {
			w.runRank(r, t, main)
			r.done = true
			w.bump()
			ends[r.id] = t.Gettime()
			if remaining.Add(-1) == 0 {
				g.Stop()
			}
		})
	}
	w.cl.RunShards()
	w.errsMu.Lock()
	failed := len(w.errs) > 0
	w.errsMu.Unlock()
	if g.Aborted() || remaining.Load() != 0 || failed {
		g.Shutdown()
		return 0, ErrShardFallback
	}
	for _, end := range ends {
		if end > w.endTime {
			w.endTime = end
		}
	}
	return w.endTime, nil
}

// runRank runs one rank's main, converting a rankAbort unwind into a
// recorded error. Anything else — including the engine's kill sentinel
// during Shutdown — propagates.
func (w *World) runRank(r *Rank, t *kernel.Task, main func(r *Rank, t *kernel.Task)) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		ab, ok := v.(rankAbort)
		if !ok {
			panic(v)
		}
		w.errsMu.Lock()
		w.errs = append(w.errs, fmt.Errorf("rank %d: %w", ab.rank, ab.err))
		w.errsMu.Unlock()
	}()
	main(r, t)
}

// emitMPI reports one MPI event on the rank's timeline (no-op when the
// world is untraced).
func (r *Rank) emitMPI(t obs.Type, a, b int64, name string) {
	tr := r.w.tr
	if tr == nil {
		return
	}
	tr.Emit(obs.Event{Time: r.w.cl.Eng.Now(), Type: t,
		Node: int32(r.node.Index), Track: int32(r.id), A: a, B: b, Name: name})
}

// collBegin/collEnd bracket a collective phase on the rank's timeline.
// Nested collectives (Allreduce = Reduce + Bcast) nest properly because
// ranks execute them sequentially.
func (r *Rank) collBegin(name string) { r.emitMPI(obs.EvCollBegin, 0, 0, name) }
func (r *Rank) collEnd(name string)   { r.emitMPI(obs.EvCollEnd, 0, 0, name) }

// ID reports the rank number.
func (r *Rank) ID() int { return r.id }

// Node reports the cluster node hosting the rank.
func (r *Rank) Node() *cluster.Node { return r.node }

// Isend posts a non-blocking send of `bytes` to rank dst with the given
// tag, charging the posting cost to the calling task.
func (r *Rank) Isend(t *kernel.Task, dst, tag, bytes int) *Request {
	if dst < 0 || dst >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi: Isend to rank %d of %d", dst, len(r.w.ranks)))
	}
	par := r.w.par
	if bytes > par.EagerLimit {
		if g := r.w.cl.ShardGroup(); g != nil {
			// A rendezvous completes the sender's request from the
			// receiver's shard — cross-shard state the merge cannot order.
			g.Abort()
			r.abort(ErrShardFallback)
		}
	}
	t.Compute(par.SendOps + float64(bytes)*par.PackOpsPerByte)
	r.emitMPI(obs.EvMPISend, int64(dst), int64(bytes), "")
	req := &Request{kind: 's', peer: dst, tag: tag}
	target := r.w.ranks[dst]
	if bytes <= par.EagerLimit {
		// Eager: payload travels immediately; the send buffer is
		// reusable as soon as it is on the wire. A transport failure of
		// the payload is asynchronous (the request already completed), so
		// it poisons the sending rank instead.
		m := &message{src: r.id, tag: tag, bytes: bytes}
		r.w.xmit(r, r.node, target.node, bytes+envelopeBytes, func() {
			target.deliver(m)
		}, nil)
		req.complete(r.id, bytes)
		return req
	}
	// Rendezvous: send an RTS; data moves once the receiver has posted.
	m := &message{src: r.id, tag: tag, bytes: bytes, rendezvous: true, sendReq: req}
	r.w.xmit(r, r.node, target.node, envelopeBytes, func() {
		target.deliver(m)
	}, func(err error) {
		req.fail(err)
		r.fatal(err)
	})
	return req
}

// Irecv posts a non-blocking receive matching (src, tag); src may be
// AnySource.
func (r *Rank) Irecv(t *kernel.Task, src, tag int) *Request {
	par := r.w.par
	t.Compute(par.RecvOps)
	req := &Request{kind: 'r', peer: src, tag: tag}
	for i, m := range r.mailbox {
		if matches(src, tag, m.src, m.tag) {
			r.mailbox = append(r.mailbox[:i], r.mailbox[i+1:]...)
			r.consume(m, req)
			return req
		}
	}
	r.posted = append(r.posted, &recvReq{src: src, tag: tag, req: req})
	return req
}

// deliver handles an arriving envelope: match a posted receive or queue.
func (r *Rank) deliver(m *message) {
	r.w.bump()
	for i, rr := range r.posted {
		if matches(rr.src, rr.tag, m.src, m.tag) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			r.consume(m, rr.req)
			return
		}
	}
	r.mailbox = append(r.mailbox, m)
}

// consume completes a matched pair: eagerly delivered data completes at
// once; a rendezvous RTS triggers CTS + data transfer over the fabric.
func (r *Rank) consume(m *message, req *Request) {
	w := r.w
	w.bump()
	if !m.rendezvous {
		r.emitMPI(obs.EvMPIRecv, int64(m.src), int64(m.bytes), "")
		req.complete(m.src, m.bytes)
		return
	}
	sender := w.ranks[m.src]
	// A lost CTS or payload strands both sides of the handshake, so a
	// transport failure fails both requests and poisons both ranks.
	failBoth := func(err error) {
		m.sendReq.fail(err)
		req.fail(err)
		sender.fatal(err)
		r.fatal(err)
	}
	// CTS back to the sender, then the payload to us.
	w.xmit(r, r.node, sender.node, envelopeBytes, func() {
		w.xmit(sender, sender.node, r.node, m.bytes, func() {
			r.emitMPI(obs.EvMPIRecv, int64(m.src), int64(m.bytes), "")
			m.sendReq.complete(m.src, m.bytes)
			req.complete(m.src, m.bytes)
		}, failBoth)
	}, failBoth)
}

func matches(wantSrc, wantTag, src, tag int) bool {
	return (wantSrc == AnySource || wantSrc == src) && wantTag == tag
}

// Wait blocks until the request completes, charging completion cost. A
// failed request — or an asynchronous transport failure poisoning the
// rank — aborts the rank here, surfacing through RunE.
func (r *Rank) Wait(t *kernel.Task, req *Request) {
	for !req.done {
		if r.err != nil {
			r.abort(r.err)
		}
		wake, wait := t.Proc().Wait()
		req.wakes = append(req.wakes, wake)
		r.wake = wake
		r.waiting = req
		wait()
		r.wake = nil
		r.waiting = nil
	}
	if req.err != nil {
		r.abort(req.err)
	}
	if r.err != nil {
		r.abort(r.err)
	}
	t.Compute(r.w.par.WaitOps)
}

// WaitAll completes all the given requests.
func (r *Rank) WaitAll(t *kernel.Task, reqs ...*Request) {
	for _, q := range reqs {
		r.Wait(t, q)
	}
}

// Send is a blocking send.
func (r *Rank) Send(t *kernel.Task, dst, tag, bytes int) {
	r.Wait(t, r.Isend(t, dst, tag, bytes))
}

// Recv is a blocking receive; it returns the matched source.
func (r *Rank) Recv(t *kernel.Task, src, tag int) int {
	req := r.Irecv(t, src, tag)
	r.Wait(t, req)
	return req.Source()
}

// Sendrecv exchanges messages with dst/src concurrently.
func (r *Rank) Sendrecv(t *kernel.Task, dst, sendTag, sendBytes, src, recvTag int) {
	rq := r.Irecv(t, src, recvTag)
	sq := r.Isend(t, dst, sendTag, sendBytes)
	r.WaitAll(t, rq, sq)
}

// collTag builds a unique internal (negative) tag for collective `seq`,
// round `round`. SPMD code calls collectives in the same order on every
// rank, so sequence numbers agree across ranks.
func collTag(seq, round int) int { return -((seq << 8) | round) - 1 }

// Barrier blocks until every rank has entered it (dissemination
// algorithm, ⌈log2 P⌉ rounds).
func (r *Rank) Barrier(t *kernel.Task) {
	p := len(r.w.ranks)
	seq := r.collSeq
	r.collSeq++
	r.collBegin("barrier")
	defer r.collEnd("barrier")
	if p == 1 {
		return
	}
	round := 0
	for k := 1; k < p; k <<= 1 {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		tag := collTag(seq, round)
		sq := r.Isend(t, dst, tag, 1)
		rq := r.Irecv(t, src, tag)
		r.WaitAll(t, sq, rq)
		round++
	}
}

// Bcast distributes `bytes` from root to every rank (binomial tree).
func (r *Rank) Bcast(t *kernel.Task, root, bytes int) {
	p := len(r.w.ranks)
	seq := r.collSeq
	r.collSeq++
	r.collBegin("bcast")
	defer r.collEnd("bcast")
	if p == 1 {
		return
	}
	tag := collTag(seq, 0)
	rel := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			r.Recv(t, src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			r.Send(t, dst, tag, bytes)
		}
		mask >>= 1
	}
}

// Reduce combines `bytes` of operands onto root (binomial tree); each
// combine charges arithmetic cost.
func (r *Rank) Reduce(t *kernel.Task, root, bytes int) {
	p := len(r.w.ranks)
	seq := r.collSeq
	r.collSeq++
	r.collBegin("reduce")
	defer r.collEnd("reduce")
	if p == 1 {
		return
	}
	tag := collTag(seq, 0)
	rel := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask == 0 {
			src := rel | mask
			if src < p {
				r.Recv(t, (src+root)%p, tag)
				t.Compute(float64(bytes) * r.w.par.ReduceOpsPerByte)
			}
		} else {
			dst := (rel&^mask + root) % p
			r.Send(t, dst, tag, bytes)
			break
		}
		mask <<= 1
	}
}

// Allreduce combines operands on every rank (reduce to 0, then
// broadcast).
func (r *Rank) Allreduce(t *kernel.Task, bytes int) {
	r.collBegin("allreduce")
	defer r.collEnd("allreduce")
	r.Reduce(t, 0, bytes)
	r.Bcast(t, 0, bytes)
}

// Alltoall exchanges bytesPerRank with every other rank using pairwise
// exchange: XOR partners when the size is a power of two, a ring
// schedule otherwise.
func (r *Rank) Alltoall(t *kernel.Task, bytesPerRank int) {
	p := len(r.w.ranks)
	seq := r.collSeq
	r.collSeq++
	r.collBegin("alltoall")
	defer r.collEnd("alltoall")
	if p == 1 {
		// Local transpose: just the copy cost.
		t.Compute(float64(bytesPerRank) * r.w.par.PackOpsPerByte)
		return
	}
	// Post every receive and send at once and wait for all of them —
	// MPICH's medium-message algorithm. This floods the fabric with P-1
	// concurrent flows per rank, which is what makes all-to-all patterns
	// collapse on commodity Ethernet (netsim's incast model).
	tag := collTag(seq, 0)
	reqs := make([]*Request, 0, 2*(p-1))
	for step := 1; step < p; step++ {
		src := (r.id - step + p) % p
		reqs = append(reqs, r.Irecv(t, src, tag))
	}
	for step := 1; step < p; step++ {
		dst := (r.id + step) % p
		reqs = append(reqs, r.Isend(t, dst, tag, bytesPerRank))
	}
	r.WaitAll(t, reqs...)
}
