package cluster

import (
	"testing"

	"smistudy/internal/netsim"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func TestWyeastAssembly(t *testing.T) {
	e := sim.New(1)
	c, err := New(e, Wyeast(4, false, smm.SMMLong))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.Index != i {
			t.Errorf("node %d has index %d", i, n.Index)
		}
		if n.CPU.NumLogical() != 4 {
			t.Errorf("HTT off should expose 4 logical CPUs, got %d", n.CPU.NumLogical())
		}
		if n.Kernel.CPU() != n.CPU {
			t.Error("kernel not bound to node CPU")
		}
	}
	if c.Fabric.Nodes() != 4 {
		t.Errorf("fabric nodes = %d", c.Fabric.Nodes())
	}
}

func TestWyeastHTT(t *testing.T) {
	e := sim.New(1)
	c := MustNew(e, Wyeast(1, true, smm.SMMNone))
	if c.Nodes[0].CPU.NumLogical() != 8 {
		t.Fatalf("HTT on should expose 8 logical CPUs, got %d", c.Nodes[0].CPU.NumLogical())
	}
}

func TestStartStopSMI(t *testing.T) {
	e := sim.New(1)
	c := MustNew(e, Wyeast(2, false, smm.SMMLong))
	c.StartSMI()
	e.RunUntil(5 * sim.Second)
	c.StopSMI()
	if c.TotalSMMResidency() == 0 {
		t.Fatal("no SMM residency accumulated with long SMIs armed")
	}
	for _, n := range c.Nodes {
		st := n.SMM.Stats()
		if st.Count < 3 {
			t.Errorf("node %d fired %d SMIs over 5s, want ≥3", n.Index, st.Count)
		}
	}
	// Phase jitter: the two nodes must not fire in lockstep.
	a := c.Nodes[0].SMM.Episodes()
	b := c.Nodes[1].SMM.Episodes()
	if a[0].Start == b[0].Start {
		t.Error("SMI phases identical across nodes despite jitter")
	}
}

func TestSMMNoneClusterQuiet(t *testing.T) {
	e := sim.New(1)
	c := MustNew(e, Wyeast(2, false, smm.SMMNone))
	c.StartSMI()
	e.RunUntil(3 * sim.Second)
	if c.TotalSMMResidency() != 0 {
		t.Fatal("SMM residency with level SMM0")
	}
}

func TestR410Preset(t *testing.T) {
	e := sim.New(1)
	cfg := R410(smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 100})
	c := MustNew(e, cfg)
	if len(c.Nodes) != 1 {
		t.Fatalf("R410 is a single machine, got %d nodes", len(c.Nodes))
	}
	if c.Nodes[0].CPU.NumLogical() != 8 {
		t.Fatal("R410 should expose 8 logical CPUs")
	}
	c.StartSMI()
	e.RunUntil(1 * sim.Second)
	if c.Nodes[0].SMM.Stats().Count < 4 {
		t.Fatalf("expected ≥4 SMIs at 100ms period over 1s (cycle ≈ duration+period), got %d", c.Nodes[0].SMM.Stats().Count)
	}
}

func TestInvalidParams(t *testing.T) {
	e := sim.New(1)
	if _, err := New(e, Params{Nodes: 0}); err == nil {
		t.Error("0 nodes accepted")
	}
	bad := Wyeast(2, false, smm.SMMNone)
	bad.Node.CPU.PhysCores = 0
	if _, err := New(e, bad); err == nil {
		t.Error("invalid CPU params accepted")
	}
	bad2 := Wyeast(2, false, smm.SMMNone)
	bad2.Fabric = netsim.Params{}
	if _, err := New(e, bad2); err == nil {
		t.Error("invalid fabric params accepted")
	}
}

func TestPerCPURendezvousGrowsResidencyWithHTT(t *testing.T) {
	residency := func(htt bool) sim.Time {
		e := sim.New(9)
		c := MustNew(e, Wyeast(1, htt, smm.SMMLong))
		c.StartSMI()
		e.RunUntil(10 * sim.Second)
		return c.Nodes[0].SMM.Stats().TotalResidency
	}
	off := residency(false)
	on := residency(true)
	if on <= off {
		t.Fatalf("HTT-on residency %v not greater than HTT-off %v (per-CPU rendezvous)", on, off)
	}
}
