// Package cluster assembles complete simulated machines — processor,
// clocks, kernel, SMM machinery — and wires any number of them to an
// interconnect fabric. It provides presets for the two platforms in the
// paper: the 16-node "Wyeast" Xeon E5520 cluster used for the MPI study
// and the Dell PowerEdge R410 (Xeon E5620) used for the multithreaded
// study.
package cluster

import (
	"fmt"

	"smistudy/internal/clock"
	"smistudy/internal/cpu"
	"smistudy/internal/faults"
	"smistudy/internal/kernel"
	"smistudy/internal/netsim"
	"smistudy/internal/obs"
	"smistudy/internal/perturb"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// NodeParams configures one node.
type NodeParams struct {
	CPU    cpu.Params
	TSCHz  float64
	Jiffy  sim.Time
	Kernel kernel.Params
	SMI    smm.DriverConfig
	// PerCPURendezvous is the extra SMM residency per online logical
	// CPU per SMI (context save/restore rendezvous cost).
	PerCPURendezvous sim.Time
	// Jitter lists OS-jitter sources provisioned on every node
	// alongside the SMI driver. Each node mixes its index into the
	// configured seed, so multi-node clusters never tick in lockstep
	// (the core-scoped analog of the SMI driver's PhaseJitter).
	Jitter []perturb.JitterConfig
}

// Params configures a whole cluster.
type Params struct {
	Nodes  int
	Node   NodeParams
	Fabric netsim.Params
}

// Node is one assembled machine.
type Node struct {
	Index  int
	CPU    *cpu.Model
	Clock  *clock.Node
	Kernel *kernel.Kernel
	SMM    *smm.Controller
	SMI    *smm.Driver
	Jitter []*perturb.Jitter
}

// Sources returns every perturbation source provisioned on the node —
// the SMI driver first, then the jitter sources — through the generic
// noise-source interface. Detectors score against the union of these
// sources' ground truth.
func (n *Node) Sources() []perturb.Source {
	out := make([]perturb.Source, 0, 1+len(n.Jitter))
	out = append(out, n.SMI)
	for _, j := range n.Jitter {
		out = append(out, j)
	}
	return out
}

// Cluster is a set of nodes over a fabric, sharing one engine — or,
// when built with NewSharded, partitioned over the engines of a shard
// group (Eng is then the first shard's engine, kept for components that
// need *an* engine, like the reliable transport, which sharded runs
// never use).
type Cluster struct {
	Eng    *sim.Engine
	Nodes  []*Node
	Fabric *netsim.Fabric

	tr    obs.Tracer      // nil unless the run is traced
	group *sim.ShardGroup // nil unless built by NewSharded
}

// SetTracer attaches an observability tracer to the whole machine:
// every node's SMM controller, kernel and scheduler, the fabric, and
// any injector armed by a later Inject. Call before the run starts; a
// nil tracer leaves everything untraced.
func (c *Cluster) SetTracer(tr obs.Tracer) {
	c.tr = tr
	c.Fabric.SetTracer(tr)
	for _, n := range c.Nodes {
		n.SMM.SetTracer(tr, n.Index)
		n.Kernel.SetTracer(tr, n.Index)
		for _, j := range n.Jitter {
			j.SetTracer(tr, n.Index)
		}
	}
}

// Tracer reports the cluster's attached tracer (nil when untraced).
func (c *Cluster) Tracer() obs.Tracer { return c.tr }

// New assembles a cluster on engine e.
func New(e *sim.Engine, par Params) (*Cluster, error) {
	if par.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: %d nodes", par.Nodes)
	}
	fabric, err := netsim.New(e, par.Nodes, par.Fabric)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Eng: e, Fabric: fabric}
	for i := 0; i < par.Nodes; i++ {
		if err := c.addNode(e, i, par.Node); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// addNode assembles node i on engine e.
func (c *Cluster) addNode(e *sim.Engine, i int, np NodeParams) error {
	cpum, err := cpu.New(e, np.CPU)
	if err != nil {
		return err
	}
	clk := clock.New(e, np.TSCHz, np.Jiffy)
	kern := kernel.New(e, cpum, clk, np.Kernel)
	ctrl := smm.NewController(e, cpum, clk)
	ctrl.SetPerCPURendezvous(np.PerCPURendezvous)
	drv := smm.NewDriver(e, ctrl, clk, np.SMI)
	node := &Node{
		Index: i, CPU: cpum, Clock: clk, Kernel: kern, SMM: ctrl, SMI: drv,
	}
	for _, jc := range np.Jitter {
		jc.Seed = perturb.DeriveSeed(jc.Seed, uint64(i))
		j, err := perturb.NewJitter(e, cpum, jc)
		if err != nil {
			return err
		}
		node.Jitter = append(node.Jitter, j)
	}
	c.Nodes = append(c.Nodes, node)
	return nil
}

// NewSharded assembles a cluster whose nodes are partitioned round-robin
// over the given engines (node i on engine i mod len(engs)), with the
// fabric in sharded mode: cross-shard traffic is queued during lockstep
// windows and merged deterministically at window barriers, with the
// fabric latency as the group's lookahead. The caller drives the run
// through RunShards (mpi.World.RunE does so automatically) and must
// discard the whole run if the group aborts.
func NewSharded(engs []*sim.Engine, par Params) (*Cluster, error) {
	if len(engs) < 2 {
		return nil, fmt.Errorf("cluster: sharded cluster needs ≥ 2 engines, got %d", len(engs))
	}
	if par.Nodes < len(engs) {
		return nil, fmt.Errorf("cluster: %d nodes over %d shards", par.Nodes, len(engs))
	}
	group := sim.NewShardGroup(engs, par.Fabric.Latency)
	fabric, err := netsim.New(engs[0], par.Nodes, par.Fabric)
	if err != nil {
		return nil, err
	}
	engOf := make([]*sim.Engine, par.Nodes)
	shardOf := make([]int, par.Nodes)
	for i := range engOf {
		engOf[i] = engs[i%len(engs)]
		shardOf[i] = i % len(engs)
	}
	if err := fabric.Shard(group, engOf, shardOf); err != nil {
		return nil, err
	}
	c := &Cluster{Eng: engs[0], Fabric: fabric, group: group}
	for i := 0; i < par.Nodes; i++ {
		if err := c.addNode(engOf[i], i, par.Node); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// ShardGroup reports the cluster's shard group, nil when the cluster
// runs on a single engine.
func (c *Cluster) ShardGroup() *sim.ShardGroup { return c.group }

// RunShards drives a sharded cluster to completion (or abort), merging
// cross-shard fabric traffic at every window barrier.
func (c *Cluster) RunShards() {
	c.group.Run(c.Fabric.Flush)
}

// MustNew is New but panics on error.
func MustNew(e *sim.Engine, par Params) *Cluster {
	c, err := New(e, par)
	if err != nil {
		panic(err)
	}
	return c
}

// Inject arms a fault schedule across the cluster: link faults hook the
// fabric, node faults drive the per-node CPU stall machinery and SMI
// drivers. Fault times are relative to the current engine time. The
// returned injector doubles as an mpi.FaultObserver for the progress
// watchdog.
func (c *Cluster) Inject(sched faults.Schedule) (*faults.Injector, error) {
	ctl := make([]faults.NodeControl, len(c.Nodes))
	for i, n := range c.Nodes {
		ctl[i] = faults.NodeControl{CPU: n.CPU, SMI: n.SMI}
	}
	in, err := faults.New(c.Eng, c.Fabric, ctl, sched)
	if err != nil {
		return nil, err
	}
	if c.tr != nil {
		in.SetTracer(c.tr)
	}
	return in, nil
}

// StartSMI arms every perturbation source on every node: the SMI
// driver plus any provisioned jitter sources. (The name predates the
// noise-family abstraction; StartNoise is the family-neutral alias.)
func (c *Cluster) StartSMI() { c.StartNoise() }

// StopSMI disarms every perturbation source on every node.
func (c *Cluster) StopSMI() { c.StopNoise() }

// StartNoise arms every perturbation source on every node.
func (c *Cluster) StartNoise() {
	for _, n := range c.Nodes {
		for _, s := range n.Sources() {
			s.Start()
		}
	}
}

// StopNoise disarms every perturbation source on every node.
func (c *Cluster) StopNoise() {
	for _, n := range c.Nodes {
		for _, s := range n.Sources() {
			s.Stop()
		}
	}
}

// TotalSMMResidency sums SMM residency over all nodes.
func (c *Cluster) TotalSMMResidency() sim.Time {
	var total sim.Time
	for _, n := range c.Nodes {
		total += n.SMM.Stats().TotalResidency
	}
	return total
}

// TotalStolen sums the residency the given noise family has stolen
// across all nodes.
func (c *Cluster) TotalStolen(family string) sim.Time {
	var total sim.Time
	for _, n := range c.Nodes {
		for _, s := range n.Sources() {
			if s.Meta().Family == family {
				total += s.Stolen()
			}
		}
	}
	return total
}

// Wyeast returns the parameters of the paper's MPI-study cluster: nodes
// with a quad-core Xeon E5520 at 2.27 GHz (HTT configurable), CentOS-era
// kernel costs, gigabit fabric, and the requested SMI configuration. The
// paper's driver fires one SMI per second (period 1000 jiffies, 1 ms
// jiffy).
func Wyeast(nodes int, htt bool, level smm.Level) Params {
	return Params{
		Nodes: nodes,
		Node: NodeParams{
			CPU: cpu.Params{
				PhysCores:     4,
				HTT:           htt,
				BaseHz:        2.27e9,
				MissPenalty:   180,
				MemBandwidth:  4.2e8, // ~27 GB/s ÷ 64 B lines
				SMTEfficiency: 0.9,
			},
			TSCHz:  2.27e9,
			Jiffy:  sim.Millisecond,
			Kernel: kernel.DefaultParams(),
			SMI: smm.DriverConfig{
				Level:         level,
				PeriodJiffies: 1000,
				PhaseJitter:   true,
			},
			PerCPURendezvous: 400 * sim.Microsecond,
		},
		Fabric: netsim.GigabitEthernet(),
	}
}

// R410 returns the parameters of the paper's multithreaded-study machine:
// a Dell PowerEdge R410 with a quad-core Xeon E5620 at 2.4 GHz with HTT,
// running a tickless Fedora kernel. SMI level and period are provided by
// the experiment (the Convolve/UnixBench studies sweep the period).
func R410(smi smm.DriverConfig) Params {
	return Params{
		Nodes: 1,
		Node: NodeParams{
			CPU: cpu.Params{
				PhysCores:     4,
				HTT:           true,
				BaseHz:        2.4e9,
				MissPenalty:   180,
				MemBandwidth:  3.0e8, // ~19 GB/s of 64 B lines
				SMTEfficiency: 0.9,
			},
			TSCHz:            2.4e9,
			Jiffy:            sim.Millisecond,
			Kernel:           kernel.DefaultParams(),
			SMI:              smi,
			PerCPURendezvous: 400 * sim.Microsecond,
		},
		Fabric: netsim.GigabitEthernet(),
	}
}
