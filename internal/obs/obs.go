// Package obs is the simulator's observability bus: typed events from
// every subsystem (SMM entry/exit, scheduling, MPI traffic, fabric
// perturbations, fault activations, sweep cells, profiler decisions)
// flow through one Tracer into pluggable sinks — an in-memory ring, a
// streaming Chrome/Perfetto trace writer, and a metrics registry of
// counters, gauges and fixed-bucket histograms keyed by node/rank.
//
// The paper's point is that SMM time is invisible to system software;
// the simulator knows the ground truth, and this package is how a run
// exports that truth as a live record instead of a few end-of-run
// numbers. Emission is strictly opt-in: components hold a nil Tracer by
// default and every emit site is guarded by a nil check, so an untraced
// run pays one predictable branch per event and the sim engine's
// scheduling hot path stays allocation-free (guarded by the alloc tests
// in internal/sim).
//
// Events are flat value structs passed by value through the Tracer
// interface — no boxing, no per-event allocation at the emit site. Only
// static or pre-built strings belong in Event.Name.
package obs

import "smistudy/internal/sim"

// Version identifies the package revision recorded in run manifests.
const Version = "0.4.0"

// Category groups event types for filtering and for the Chrome sink's
// "cat" field.
type Category uint8

// Event categories.
const (
	CatNone Category = iota
	CatSMM
	CatSched
	CatMPI
	CatNet
	CatFault
	CatSweep
	CatProf
	CatTask
	CatNoise
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatSMM:
		return "smm"
	case CatSched:
		return "sched"
	case CatMPI:
		return "mpi"
	case CatNet:
		return "net"
	case CatFault:
		return "fault"
	case CatSweep:
		return "sweep"
	case CatProf:
		return "prof"
	case CatTask:
		return "task"
	case CatNoise:
		return "noise"
	default:
		return "none"
	}
}

// Type identifies what happened.
type Type uint8

// Event types. The meaning of the generic fields per type:
//
//	SMMEnter        Node                       SMM entry (all CPUs stall)
//	SMMExit         Node, Dur = residency      SMM exit; span [Time-Dur, Time]
//	SchedRun        Node, Track = CPU, A = tid thread placed on a CPU
//	SchedPreempt    Node, Track = CPU, A = tid thread left its CPU (blocked/exited)
//	SchedMigrate    Node, Track = CPU, A = tid, B = old CPU
//	TaskSpawn       Node, A = pid              kernel task created
//	TaskExit        Node, A = pid              kernel task returned
//	MPISend         Node, Track = rank, A = dst rank, B = bytes
//	MPIRecv         Node, Track = rank, A = src rank, B = bytes
//	MPIRetransmit   Node = src node, A = dst node, B = bytes
//	CollBegin       Node, Track = rank, Name = collective
//	CollEnd         Node, Track = rank, Name = collective
//	NetDeliver      Node = src, A = dst, B = bytes, Dur = delivery latency
//	NetDrop         Node = src, A = dst, B = bytes
//	NetDelay        Node = src, A = dst, B = bytes, Dur = extra latency
//	FaultStart      Node (-1 for link faults), A = src, B = dst, Name = kind
//	FaultEnd        same as FaultStart
//	SweepCellStart  Run, A = cell seed
//	SweepCellFinish Run, A = cell seed, Dur = simulated cell length
//	SweepCellCached  Run                       cell replayed from the durable store
//	SweepCellRetry   Run, A = next attempt (1-based), Name = cause
//	SweepCellTimeout Run, A = attempt (1-based)     cell hit its wall-clock deadline
//	SweepCellFail    Run, A = attempts, Name = cause cell failed permanently
//	ProfSample      Node, A = CPU samples taken this tick
//	ProfDrop        Node                       tick lost inside SMM
//	ProfDefer       Node                       tick taken late at SMM exit
//	FastPathHit     Name = replicate|merge|model, A = residual log-error (ppm), B = tolerance (ppm)
//	FastPathMiss    Name = decline reason (workload, smm, faults, runs, ...)
//	FastPathCertify Name = certified | rejected:<reason>, A = residual log-error (ppm), B = tolerance (ppm)
//	UserSpan        Track, Name, Dur           caller-defined span [Time-Dur, Time]
//	StealEnter      Node, Track = CPU, Name = family    core-scoped steal begins
//	StealExit       Node, Track = CPU, Name = family, Dur = stolen; span [Time-Dur, Time]
const (
	EvNone Type = iota
	EvSMMEnter
	EvSMMExit
	EvSchedRun
	EvSchedPreempt
	EvSchedMigrate
	EvTaskSpawn
	EvTaskExit
	EvMPISend
	EvMPIRecv
	EvMPIRetransmit
	EvCollBegin
	EvCollEnd
	EvNetDeliver
	EvNetDrop
	EvNetDelay
	EvFaultStart
	EvFaultEnd
	EvSweepCellStart
	EvSweepCellFinish
	EvSweepCellCached
	EvSweepCellRetry
	EvSweepCellTimeout
	EvSweepCellFail
	EvProfSample
	EvProfDrop
	EvProfDefer
	EvFastPathHit
	EvFastPathMiss
	EvFastPathCertify
	EvUserSpan
	EvStealEnter
	EvStealExit

	numTypes // sentinel
)

var typeNames = [numTypes]string{
	EvNone:             "none",
	EvSMMEnter:         "smm_enter",
	EvSMMExit:          "smm",
	EvSchedRun:         "run",
	EvSchedPreempt:     "preempt",
	EvSchedMigrate:     "migrate",
	EvTaskSpawn:        "spawn",
	EvTaskExit:         "exit",
	EvMPISend:          "send",
	EvMPIRecv:          "recv",
	EvMPIRetransmit:    "retransmit",
	EvCollBegin:        "coll",
	EvCollEnd:          "coll",
	EvNetDeliver:       "deliver",
	EvNetDrop:          "drop",
	EvNetDelay:         "delay",
	EvFaultStart:       "fault",
	EvFaultEnd:         "fault_end",
	EvSweepCellStart:   "cell",
	EvSweepCellFinish:  "cell",
	EvSweepCellCached:  "cell_cached",
	EvSweepCellRetry:   "cell_retry",
	EvSweepCellTimeout: "cell_timeout",
	EvSweepCellFail:    "cell_fail",
	EvProfSample:       "sample",
	EvProfDrop:         "sample_lost",
	EvProfDefer:        "sample_deferred",
	EvFastPathHit:      "fastpath_hit",
	EvFastPathMiss:     "fastpath_miss",
	EvFastPathCertify:  "fastpath_certify",
	EvUserSpan:         "span",
	EvStealEnter:       "steal_enter",
	EvStealExit:        "steal",
}

var typeCats = [numTypes]Category{
	EvSMMEnter:         CatSMM,
	EvSMMExit:          CatSMM,
	EvSchedRun:         CatSched,
	EvSchedPreempt:     CatSched,
	EvSchedMigrate:     CatSched,
	EvTaskSpawn:        CatSched,
	EvTaskExit:         CatSched,
	EvMPISend:          CatMPI,
	EvMPIRecv:          CatMPI,
	EvMPIRetransmit:    CatMPI,
	EvCollBegin:        CatMPI,
	EvCollEnd:          CatMPI,
	EvNetDeliver:       CatNet,
	EvNetDrop:          CatNet,
	EvNetDelay:         CatNet,
	EvFaultStart:       CatFault,
	EvFaultEnd:         CatFault,
	EvSweepCellStart:   CatSweep,
	EvSweepCellFinish:  CatSweep,
	EvSweepCellCached:  CatSweep,
	EvSweepCellRetry:   CatSweep,
	EvSweepCellTimeout: CatSweep,
	EvSweepCellFail:    CatSweep,
	EvProfSample:       CatProf,
	EvProfDrop:         CatProf,
	EvProfDefer:        CatProf,
	EvFastPathHit:      CatSweep,
	EvFastPathMiss:     CatSweep,
	EvFastPathCertify:  CatSweep,
	EvUserSpan:         CatTask,
	EvStealEnter:       CatNoise,
	EvStealExit:        CatNoise,
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if t < numTypes {
		return typeNames[t]
	}
	return "unknown"
}

// Category reports the event type's category.
func (t Type) Category() Category {
	if t < numTypes {
		return typeCats[t]
	}
	return CatNone
}

// Event is one typed occurrence on the simulation timeline. It is a
// flat value struct: emitting one costs no allocation. Field meaning
// varies by Type (see the Type constants); unused fields are zero.
type Event struct {
	Time sim.Time // when the event happened (engine time)
	Dur  sim.Time // span length for span-like events, zero otherwise
	Type Type
	Run  int32 // sweep-cell / run index the event belongs to
	Node int32 // originating node, -1 when not node-scoped
	// Track is the per-node timeline the event belongs to: a logical
	// CPU id for scheduling events, a rank id for MPI events, a
	// caller-chosen track for UserSpan. -1 when not tracked.
	Track int32
	A, B  int64  // type-specific arguments
	Name  string // static label (thread name, collective, fault kind)
}

// Tracer receives events. Implementations must tolerate concurrent
// Emit calls when the run fans sweep cells over multiple workers (Bus
// serializes; bare sinks used directly are single-goroutine).
type Tracer interface {
	Emit(Event)
}

// TracerFunc adapts a plain function to the Tracer interface. The
// function must tolerate concurrent calls under the same conditions a
// Tracer must.
type TracerFunc func(Event)

// Emit implements Tracer.
func (f TracerFunc) Emit(ev Event) { f(ev) }

// runScope stamps a run index onto every event, so concurrent sweep
// cells sharing one bus land on disjoint (Run, Node) timelines.
type runScope struct {
	tr  Tracer
	run int32
}

// Emit implements Tracer.
func (s runScope) Emit(ev Event) {
	ev.Run = s.run
	s.tr.Emit(ev)
}

// WithRun wraps a tracer so every event it forwards carries the given
// run index. Wrapping is cheap (a stack value and one virtual call);
// per-run wrappers are how a parallel sweep keeps cells separable in
// one trace.
func WithRun(tr Tracer, run int32) Tracer {
	if tr == nil {
		return nil
	}
	return runScope{tr: tr, run: run}
}
