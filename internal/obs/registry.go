package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics keyed by an integer scope (a node index,
// a rank id, or -1 for run-global metrics). Metric handles are
// get-or-create and stable, so hot paths fetch them once; value updates
// are atomic (counters, gauges) or internally locked (histograms), so
// parallel sweep workers can share one registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	histograms map[metricKey]*Histogram
}

type metricKey struct {
	name string
	id   int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[metricKey]*Counter),
		gauges:     make(map[metricKey]*Gauge),
		histograms: make(map[metricKey]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: counts[i] holds observations
// x < Bounds[i] (and ≥ Bounds[i-1]); counts[len(Bounds)] holds the
// overflow at or above the last bound. Bounds are fixed at creation, so
// merging and serializing never rebuckets. The running sum is kept in
// fixed point (1/1000 of a unit): integer addition commutes, so a
// snapshot is byte-identical however many workers interleaved their
// observations — float accumulation would leak the merge order into the
// low bits.
type Histogram struct {
	mu       sync.Mutex
	bounds   []float64
	counts   []int64
	n        int64
	sumMilli int64
	max      float64
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, x)
	// SearchFloat64s finds the first bound ≥ x; an observation equal to
	// a bound belongs to the next bucket (buckets are [lo, hi)).
	if i < len(h.bounds) && h.bounds[i] == x {
		i++
	}
	h.counts[i]++
	h.n++
	h.sumMilli += int64(math.Round(x * 1000))
	if h.n == 1 || x > h.max {
		h.max = x
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Counter returns the counter for (name, id), creating it on first use.
func (r *Registry) Counter(name string, id int) *Counter {
	k := metricKey{name, id}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (name, id), creating it on first use.
func (r *Registry) Gauge(name string, id int) *Gauge {
	k := metricKey{name, id}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Log2Bounds builds fixed power-of-two bucket bounds covering [lo, hi]:
// lo, 2lo, 4lo, ... up to the first bound ≥ hi. Log2 buckets give every
// decade the same resolution, which is the right shape for the
// long-tailed distributions the bus records (per-SMI stolen time spans
// tens of µs to several ms; message latencies likewise), and fixed
// bounds mean merging and serializing never rebuckets.
func Log2Bounds(lo, hi float64) []float64 {
	if lo <= 0 {
		lo = 1
	}
	var out []float64
	for b := lo; ; b *= 2 {
		out = append(out, b)
		if b >= hi {
			return out
		}
	}
}

// Histogram returns the histogram for (name, id), creating it with the
// given bucket bounds on first use (bounds must be sorted ascending;
// later calls reuse the existing buckets and ignore the argument).
func (r *Registry) Histogram(name string, id int, bounds []float64) *Histogram {
	k := metricKey{name, id}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[k]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.histograms[k] = h
	}
	return h
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	ID    int    `json:"id"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	ID    int    `json:"id"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram in a snapshot.
type HistogramSnap struct {
	Name   string    `json:"name"`
	ID     int       `json:"id"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last is overflow
	N      int64     `json:"n"`
	Sum    float64   `json:"sum"`
	Max    float64   `json:"max"`
}

// Mean reports the histogram's exact running mean (not bucketed).
func (h HistogramSnap) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Snapshot is a deterministic point-in-time copy of a registry,
// sorted by (name, id) so serialization is byte-stable regardless of
// how many workers fed the metrics.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for k, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: k.name, ID: k.id, Value: c.Value()})
	}
	for k, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: k.name, ID: k.id, Value: g.Value()})
	}
	for k, h := range r.histograms {
		h.mu.Lock()
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name:   k.name,
			ID:     k.id,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			N:      h.n,
			Sum:    float64(h.sumMilli) / 1000,
			Max:    h.max,
		})
		h.mu.Unlock()
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return lessSnap(s.Counters[i].Name, s.Counters[i].ID, s.Counters[j].Name, s.Counters[j].ID)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return lessSnap(s.Gauges[i].Name, s.Gauges[i].ID, s.Gauges[j].Name, s.Gauges[j].ID)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return lessSnap(s.Histograms[i].Name, s.Histograms[i].ID, s.Histograms[j].Name, s.Histograms[j].ID)
	})
	return s
}

func lessSnap(an string, ai int, bn string, bi int) bool {
	if an != bn {
		return an < bn
	}
	return ai < bi
}

// Counter reads one counter from the snapshot (zero when absent).
func (s Snapshot) Counter(name string, id int) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.ID == id {
			return c.Value
		}
	}
	return 0
}

// JSON serializes the snapshot.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", " ")
}
