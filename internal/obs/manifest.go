package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// Manifest is the self-describing record of one run: the command, every
// input flag at its effective value (defaults included), and the
// package/toolchain versions. Feeding a manifest back through a
// command's -replay flag reproduces the run; flags given explicitly on
// the replaying command line win over manifest values, so a replay can
// vary one axis while pinning the rest.
//
// Serialization is deterministic — Go marshals the flag map with sorted
// keys and the manifest carries no timestamps — so capture → JSON →
// Load → JSON is byte-identical, which CI asserts.
// ManifestSchema is the manifest document revision Capture stamps.
// Manifests without the field predate versioning and read as schema 1;
// LoadManifest accepts both (the backward-compat test pins that old
// documents still load and replay).
//
//	1  PR 3: command, flags, versions (+ durable/fastpath blocks later)
//	2  PR 8: schema field itself, obs sink-loss stats, scenario echo
const ManifestSchema = 2

type Manifest struct {
	// Schema is the manifest document revision (see ManifestSchema).
	// Zero means a pre-versioning document — treat as 1.
	Schema    int               `json:"schema,omitempty"`
	Command   string            `json:"command"`
	Version   string            `json:"version"`    // obs package revision
	GoVersion string            `json:"go_version"` // toolchain that produced the run
	Flags     map[string]string `json:"flags"`
	// Scenario, when present, is the canonical encoding of the scenario
	// spec the run measured — the content-address identity the durable
	// store and the report pipeline key on. Raw so obs stays decoupled
	// from the scenario package.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Obs, when present, records the run's observability sink
	// accounting: how many trace records were written, whether the
	// trace writer errored, and ring retention. A report consumer uses
	// it to detect lossy traces before trusting attribution.
	Obs *SinkStats `json:"obs,omitempty"`
	// Durable, when present, records the durable sweep layer's execution
	// accounting for the run: attempts, retries, timeouts and store
	// cache activity. It is attached after the run finishes (or is
	// interrupted), so a manifest flushed mid-sweep documents exactly
	// how far the sweep got. Absent for non-durable runs, keeping legacy
	// manifests byte-identical.
	Durable *DurableStats `json:"durable,omitempty"`
	// Serve, when present, records a sweep server's lifetime accounting:
	// how many submissions it admitted and how their cells resolved
	// (executed vs cache replay vs single-flight coalescing). Attached
	// by cmd/smiserve at shutdown; absent for every other command,
	// keeping legacy manifests byte-identical.
	Serve *ServeStats `json:"serve,omitempty"`
	// FastPath, when present, records the analytic fast-path
	// dispatcher's accounting for the run: which cells were served
	// without simulation, why the rest declined, and the residual
	// evidence behind every certified region. Attached after the run so
	// smivalidate can audit exactly what the fast path did. Absent when
	// the run dispatched with -fastpath off, keeping legacy manifests
	// byte-identical.
	FastPath *FastPathStats `json:"fastpath,omitempty"`
}

// SinkStats records where the run's observability outputs could have
// lost data. A truncated or write-errored trace is not an error for the
// run itself — the measurement is unaffected — but any attribution
// computed from it is approximate, and the manifest is how that fact
// survives to the report.
type SinkStats struct {
	// TraceEvents counts records the Chrome sink wrote (metadata
	// included). A reader that parses fewer has a truncated file.
	TraceEvents int64 `json:"trace_events,omitempty"`
	// TraceError is the trace sink's first write error, if any.
	TraceError string `json:"trace_error,omitempty"`
	// Ring accounting, when an in-memory ring was attached: total
	// events emitted and how many fell off the ring.
	RingTotal   int64 `json:"ring_total,omitempty"`
	RingDropped int64 `json:"ring_dropped,omitempty"`
}

// Lossy reports whether any sink lost or may have lost events.
func (s *SinkStats) Lossy() bool {
	return s != nil && (s.TraceError != "" || s.RingDropped > 0)
}

// FastPathStats is the analytic fast-path dispatcher's per-run
// accounting, as recorded in the run manifest. Cells = Hits + Misses;
// Regions = Certified + Rejected once the run finishes.
type FastPathStats struct {
	// Mode is the dispatch mode the run used (off, auto or model).
	Mode string `json:"mode"`
	// Hits counts cells served without discrete simulation; Misses
	// counts cells that simulated (with per-reason breakdown below).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Probes and Shadows count the certification simulations the
	// dispatcher spent proving regions.
	Probes  int64 `json:"probes"`
	Shadows int64 `json:"shadows"`
	// Regions counts distinct spec shapes the dispatcher examined;
	// Certified passed the seed-independence and residual gates,
	// Rejected failed one of them.
	Regions   int64 `json:"regions"`
	Certified int64 `json:"certified"`
	Rejected  int64 `json:"rejected"`
	// MissReasons breaks Misses down by decline reason. Go serializes
	// the map with sorted keys, keeping manifests deterministic.
	MissReasons map[string]int64 `json:"miss_reasons,omitempty"`
}

// HitRate reports Hits/(Hits+Misses), or 0 for an idle dispatcher.
func (f *FastPathStats) HitRate() float64 {
	if f == nil || f.Hits+f.Misses == 0 {
		return 0
	}
	return float64(f.Hits) / float64(f.Hits+f.Misses)
}

// ServeStats is a sweep server's lifetime accounting, as recorded in
// its shutdown manifest. Cells = Executed + Cached + Coalesced + Failed
// once every admitted job has finished; the dedup story is
// (Cached + Coalesced) / Cells.
type ServeStats struct {
	// Submissions counts accepted POST /v1/sweeps requests; Rejected
	// counts 429 admission-control rejections.
	Submissions int64 `json:"submissions"`
	Rejected    int64 `json:"rejected,omitempty"`
	// Jobs counts jobs that finished clean; JobsFailed those with at
	// least one permanently-failed spec.
	Jobs       int64 `json:"jobs"`
	JobsFailed int64 `json:"jobs_failed,omitempty"`
	// Cells counts every cell across all submissions; Executed built an
	// engine, Cached replayed from the store, Coalesced shared another
	// submission's in-flight execution, Failed failed permanently.
	Cells     int64 `json:"cells"`
	Executed  int64 `json:"executed"`
	Cached    int64 `json:"cached"`
	Coalesced int64 `json:"coalesced"`
	Failed    int64 `json:"failed,omitempty"`
}

// DedupRate reports the fraction of cells served without a fresh
// execution (cache replays plus coalesced waiters), or 0 when idle.
func (s *ServeStats) DedupRate() float64 {
	if s == nil || s.Cells == 0 {
		return 0
	}
	return float64(s.Cached+s.Coalesced) / float64(s.Cells)
}

// DurableStats is the durable sweep layer's per-run accounting, as
// recorded in the run manifest: every attempt, retry, timeout and
// cache replay, plus how many cells failed permanently. Cells = Cached
// + Executed + Failed + Skipped.
type DurableStats struct {
	// Cells is the total number of durable execution units (content-
	// addressed (spec, run-index) cells) the sweep covered.
	Cells int64 `json:"cells"`
	// Cached cells were replayed byte-identically from the store with
	// zero simulation work.
	Cached int64 `json:"cached"`
	// Executed cells ran to a successful measurement this run.
	Executed int64 `json:"executed"`
	// Failed cells exhausted their attempts (or failed terminally).
	Failed int64 `json:"failed"`
	// Skipped cells were never attempted (cancellation mid-sweep).
	Skipped int64 `json:"skipped"`
	// Attempts counts every execution attempt, including retries.
	Attempts int64 `json:"attempts"`
	// Retries counts re-attempts after transient failures.
	Retries int64 `json:"retries"`
	// Timeouts counts attempts abandoned at the per-cell deadline.
	Timeouts int64 `json:"timeouts"`
	// Panics counts attempts that panicked and were isolated.
	Panics int64 `json:"panics"`
}

// Output flags that describe where a run writes, not what it computes;
// Capture drops them so a replayed run can choose its own outputs.
func isOutputFlag(name string, exclude []string) bool {
	for _, e := range exclude {
		if name == e {
			return true
		}
	}
	return false
}

// Capture records the command and every parsed flag value except the
// excluded (output) flags. Call after fs.Parse.
func Capture(command string, fs *flag.FlagSet, exclude ...string) Manifest {
	m := Manifest{
		Schema:    ManifestSchema,
		Command:   command,
		Version:   Version,
		GoVersion: runtime.Version(),
		Flags:     map[string]string{},
	}
	fs.VisitAll(func(f *flag.Flag) {
		if isOutputFlag(f.Name, exclude) {
			return
		}
		m.Flags[f.Name] = f.Value.String()
	})
	return m
}

// JSON serializes the manifest deterministically.
func (m Manifest) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", " ")
}

// LoadManifest parses a manifest document.
func LoadManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("manifest: %w", err)
	}
	if m.Flags == nil {
		m.Flags = map[string]string{}
	}
	return m, nil
}

// LoadManifestFile reads and parses a manifest from disk.
func LoadManifestFile(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	return LoadManifest(data)
}

// Apply sets fs flags from the manifest, skipping flags the user set
// explicitly (the command line wins) and flag names fs does not define.
// Call after fs.Parse, with explicit built from fs.Visit.
func (m Manifest) Apply(fs *flag.FlagSet, explicit map[string]bool) error {
	names := make([]string, 0, len(m.Flags))
	for name := range m.Flags {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if explicit[name] || fs.Lookup(name) == nil {
			continue
		}
		if err := fs.Set(name, m.Flags[name]); err != nil {
			return fmt.Errorf("manifest: flag -%s=%q: %w", name, m.Flags[name], err)
		}
	}
	return nil
}

// ExplicitFlags reports which flags were set on the command line.
// Call after fs.Parse.
func ExplicitFlags(fs *flag.FlagSet) map[string]bool {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}
