package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// oldManifest is a verbatim schema-1 document from before the schema
// field, sink stats and scenario echo existed. Documents like this are
// on disk in users' run archives; they must keep loading and replaying.
const oldManifest = `{
 "command": "smisim",
 "version": "0.2.0",
 "go_version": "go1.24.0",
 "flags": {
  "bench": "EP",
  "class": "A",
  "nodes": "4",
  "runs": "3",
  "seed": "17",
  "smm": "2",
  "workload": "nas"
 }
}`

func TestManifestBackwardCompat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(oldManifest), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifestFile(path)
	if err != nil {
		t.Fatalf("old manifest failed to load: %v", err)
	}
	if m.Schema != 0 {
		t.Fatalf("Schema = %d, want 0 (pre-versioning document)", m.Schema)
	}
	if m.Obs != nil || m.Scenario != nil {
		t.Fatal("old manifest grew sink stats or a scenario echo from nowhere")
	}

	// Replay: the old flags apply onto a current flag surface, with an
	// explicit command-line flag still winning.
	fs := flag.NewFlagSet("smisim", flag.ContinueOnError)
	bench := fs.String("bench", "EP", "")
	nodes := fs.Int("nodes", 1, "")
	runs := fs.Int("runs", 1, "")
	seed := fs.Int64("seed", 1, "")
	if err := fs.Parse([]string{"-runs", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(fs, ExplicitFlags(fs)); err != nil {
		t.Fatalf("old manifest failed to replay: %v", err)
	}
	if *bench != "EP" || *nodes != 4 || *seed != 17 {
		t.Fatalf("replayed flags = bench %s nodes %d seed %d, want EP 4 17", *bench, *nodes, *seed)
	}
	if *runs != 9 {
		t.Fatalf("explicit -runs overridden to %d, want 9", *runs)
	}
}

// TestManifestCurrentRoundtrip pins that a schema-2 document with the
// new fields survives JSON → Load → JSON byte-identically.
func TestManifestCurrentRoundtrip(t *testing.T) {
	fs := flag.NewFlagSet("smisim", flag.ContinueOnError)
	fs.String("bench", "EP", "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	m := Capture("smisim", fs)
	if m.Schema != ManifestSchema {
		t.Fatalf("Capture schema = %d, want %d", m.Schema, ManifestSchema)
	}
	m.Obs = &SinkStats{TraceEvents: 123, RingTotal: 1000, RingDropped: 7}
	m.Scenario = []byte(`{"workload":"nas"}`)
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := m2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("roundtrip not byte-identical:\n%s\nvs\n%s", data, data2)
	}
	if !m2.Obs.Lossy() {
		t.Fatal("ring drops not reported lossy")
	}
	if (&SinkStats{TraceEvents: 5}).Lossy() {
		t.Fatal("clean sink reported lossy")
	}
	var nilStats *SinkStats
	if nilStats.Lossy() {
		t.Fatal("nil stats reported lossy")
	}
}
