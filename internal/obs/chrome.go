package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"smistudy/internal/sim"
)

// ChromeSink streams bus events to an io.Writer in the Chrome
// trace-event JSON format (load in Perfetto or chrome://tracing).
//
// Layout: one trace process per (run, node) pair — pid = run·1024 +
// node + 1, so parallel sweep cells wrapped in WithRun occupy disjoint
// pid ranges — and one track (tid) per timeline inside a node:
//
//	tid 1+cpu   scheduling instants for each logical CPU
//	tid 100+r   MPI traffic and collective phases for rank r
//	tid 900     fabric drops/delays/deliveries
//	tid 901     fault activations
//	tid 902     profiler sample decisions
//	tid 903     transport retransmissions
//	tid 998     kernel task spawn/exit
//	tid 1000    ground-truth SMM residency spans
//	tid Track   caller-chosen tracks for UserSpan events
//
// Events with Node = -1 (link faults, sweep cells) land on the run's
// "cluster" process (pid = run·1024). Metadata records naming processes
// and threads are emitted lazily on first appearance. Events are
// written in Emit order; a single engine emits in time order, so ts is
// monotone per track. Writes are unbuffered — hand the sink a
// bufio.Writer and flush after Close.
type ChromeSink struct {
	w       io.Writer
	err     error
	started bool
	first   bool
	events  int64

	procNamed   map[int64]bool
	threadNamed map[trackKey]bool
	procNames   map[int64]string // pre-registered display names
}

// trackKey identifies one (process, thread) timeline.
type trackKey struct {
	pid int64
	tid int32
}

// NewChromeSink returns a sink streaming to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{
		w:           w,
		procNamed:   map[int64]bool{},
		threadNamed: map[trackKey]bool{},
		procNames:   map[int64]string{},
	}
}

// NameProcess pre-registers a display name for the (run, node) process,
// overriding the default "run R · node N" label.
func (c *ChromeSink) NameProcess(run, node int32, name string) {
	c.procNames[PidFor(run, node)] = name
}

// Err reports the first write error, if any. A trace whose sink
// reported an error is lossy: downstream consumers (smireport) must
// treat attribution computed from it as approximate.
func (c *ChromeSink) Err() error { return c.err }

// Events reports how many trace records (spans, instants, metadata)
// were written. Manifests record it so a reader can detect truncation.
func (c *ChromeSink) Events() int64 { return c.events }

// Close terminates the JSON document. The sink must not be used after.
func (c *ChromeSink) Close() error {
	if c.err != nil {
		return c.err
	}
	if !c.started {
		_, c.err = io.WriteString(c.w, `{"traceEvents":[]}`+"\n")
		return c.err
	}
	_, c.err = io.WriteString(c.w, "\n]}\n")
	return c.err
}

// PidFor maps a (run, node) pair onto its trace-process id: runs own
// disjoint blocks of 1024 pids, node -1 (the run's cluster-scoped
// events) takes the block's first slot. The result is 64-bit so sweep
// traces with millions of cells never wrap: pids stay unique for any
// run index as long as node < 1023, far above the modeled topologies.
// SplitPid is the inverse.
func PidFor(run, node int32) int64 { return int64(run)*1024 + int64(node) + 1 }

// SplitPid recovers the (run, node) pair PidFor encoded.
func SplitPid(pid int64) (run, node int32) {
	return int32(pid / 1024), int32(pid%1024) - 1
}

// us renders a sim.Time as Chrome's microsecond timestamps.
func us(t sim.Time) string {
	return strconv.FormatFloat(float64(t)/float64(sim.Microsecond), 'f', 3, 64)
}

// jstr JSON-encodes a label (labels are caller-supplied for UserSpan).
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}

func (c *ChromeSink) raw(s string) {
	if c.err != nil {
		return
	}
	if !c.started {
		c.started = true
		c.first = true
		if _, c.err = io.WriteString(c.w, `{"traceEvents":[`+"\n"); c.err != nil {
			return
		}
	}
	if !c.first {
		if _, c.err = io.WriteString(c.w, ",\n"); c.err != nil {
			return
		}
	}
	c.first = false
	if _, c.err = io.WriteString(c.w, s); c.err == nil {
		c.events++
	}
}

func (c *ChromeSink) meta(pid int64, tid int32, kind, name string) {
	c.raw(fmt.Sprintf(`{"name":%q,"ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
		kind, pid, tid, jstr(name)))
}

// ensureTrack lazily emits process_name / thread_name metadata.
func (c *ChromeSink) ensureTrack(run, node, tid int32, threadName string) int64 {
	pid := PidFor(run, node)
	if !c.procNamed[pid] {
		c.procNamed[pid] = true
		name, ok := c.procNames[pid]
		if !ok {
			switch {
			case node < 0 && run == 0:
				name = "cluster"
			case node < 0:
				name = fmt.Sprintf("run%d · cluster", run)
			case run == 0:
				name = fmt.Sprintf("node%d", node)
			default:
				name = fmt.Sprintf("run%d · node%d", run, node)
			}
		}
		c.meta(pid, 0, "process_name", name)
	}
	key := trackKey{pid, tid}
	if !c.threadNamed[key] {
		c.threadNamed[key] = true
		c.meta(pid, tid, "thread_name", threadName)
	}
	return pid
}

// complete writes an "X" span.
func (c *ChromeSink) complete(pid int64, tid int32, name, cat string, start, dur sim.Time, a, b int64) {
	c.raw(fmt.Sprintf(`{"name":%s,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"a":%d,"b":%d}}`,
		jstr(name), cat, us(start), us(dur), pid, tid, a, b))
}

// instant writes an "i" thread-scoped instant.
func (c *ChromeSink) instant(pid int64, tid int32, name, cat string, t sim.Time, a, b int64) {
	c.raw(fmt.Sprintf(`{"name":%s,"cat":%q,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"a":%d,"b":%d}}`,
		jstr(name), cat, us(t), pid, tid, a, b))
}

// beginEnd writes a "B" or "E" duration edge.
func (c *ChromeSink) beginEnd(ph string, pid int64, tid int32, name, cat string, t sim.Time) {
	c.raw(fmt.Sprintf(`{"name":%s,"cat":%q,"ph":%q,"ts":%s,"pid":%d,"tid":%d}`,
		jstr(name), cat, ph, us(t), pid, tid))
}

// Tid constants for fixed per-node tracks (see the type comment).
// Exported via the Track* constants in stream.go; these aliases keep
// the emit switch readable.
const (
	tidNet       = TidNet
	tidFault     = TidFault
	tidProf      = TidProf
	tidTransport = TidTransport
	tidTasks     = TidTasks
	tidSMM       = TidSMM
	tidSteal0    = TidSteal0
	tidCells     = TidCells
	tidFastPath  = TidFastPath
)

// Emit implements Tracer.
func (c *ChromeSink) Emit(ev Event) {
	cat := ev.Type.Category().String()
	switch ev.Type {
	case EvSMMEnter:
		// The residency span written at exit covers the episode; the
		// entry itself adds nothing to the timeline.
	case EvSMMExit:
		pid := c.ensureTrack(ev.Run, ev.Node, tidSMM, "smm")
		c.complete(pid, tidSMM, "smm", cat, ev.Time-ev.Dur, ev.Dur, ev.A, ev.B)
	case EvStealEnter:
		// As with SMM, the residency span written at exit covers the
		// whole episode.
	case EvStealExit:
		tid := tidSteal0 + ev.Track
		pid := c.ensureTrack(ev.Run, ev.Node, tid, "steal"+strconv.Itoa(int(ev.Track)))
		c.complete(pid, tid, ev.Name, cat, ev.Time-ev.Dur, ev.Dur, ev.A, ev.B)
	case EvSchedRun, EvSchedPreempt, EvSchedMigrate:
		tid := 1 + ev.Track
		pid := c.ensureTrack(ev.Run, ev.Node, tid, "cpu"+strconv.Itoa(int(ev.Track)))
		c.instant(pid, tid, ev.Type.String(), cat, ev.Time, ev.A, ev.B)
	case EvTaskSpawn, EvTaskExit:
		pid := c.ensureTrack(ev.Run, ev.Node, tidTasks, "tasks")
		name := ev.Type.String()
		if ev.Name != "" {
			name = ev.Name
		}
		c.instant(pid, tidTasks, name, cat, ev.Time, ev.A, ev.B)
	case EvMPISend, EvMPIRecv:
		tid := 100 + ev.Track
		pid := c.ensureTrack(ev.Run, ev.Node, tid, "rank"+strconv.Itoa(int(ev.Track)))
		c.instant(pid, tid, ev.Type.String(), cat, ev.Time, ev.A, ev.B)
	case EvMPIRetransmit:
		pid := c.ensureTrack(ev.Run, ev.Node, tidTransport, "transport")
		c.instant(pid, tidTransport, "retransmit", cat, ev.Time, ev.A, ev.B)
	case EvCollBegin, EvCollEnd:
		tid := 100 + ev.Track
		pid := c.ensureTrack(ev.Run, ev.Node, tid, "rank"+strconv.Itoa(int(ev.Track)))
		ph := "B"
		if ev.Type == EvCollEnd {
			ph = "E"
		}
		c.beginEnd(ph, pid, tid, ev.Name, cat, ev.Time)
	case EvNetDeliver:
		pid := c.ensureTrack(ev.Run, ev.Node, tidNet, "net")
		c.complete(pid, tidNet, "deliver", cat, ev.Time, ev.Dur, ev.A, ev.B)
	case EvNetDrop, EvNetDelay:
		pid := c.ensureTrack(ev.Run, ev.Node, tidNet, "net")
		c.instant(pid, tidNet, ev.Type.String(), cat, ev.Time, ev.A, ev.B)
	case EvFaultStart, EvFaultEnd:
		pid := c.ensureTrack(ev.Run, ev.Node, tidFault, "faults")
		name := ev.Name
		if name == "" {
			name = ev.Type.String()
		} else if ev.Type == EvFaultEnd {
			name += " end"
		}
		c.instant(pid, tidFault, name, cat, ev.Time, ev.A, ev.B)
	case EvProfSample, EvProfDrop, EvProfDefer:
		pid := c.ensureTrack(ev.Run, ev.Node, tidProf, "profiler")
		c.instant(pid, tidProf, ev.Type.String(), cat, ev.Time, ev.A, ev.B)
	case EvSweepCellStart:
		pid := c.ensureTrack(ev.Run, -1, tidCells, "cells")
		c.instant(pid, tidCells, "cell start", cat, ev.Time, ev.A, ev.B)
	case EvSweepCellFinish:
		pid := c.ensureTrack(ev.Run, -1, tidCells, "cells")
		c.complete(pid, tidCells, "cell", cat, ev.Time-ev.Dur, ev.Dur, ev.A, ev.B)
	case EvSweepCellCached, EvSweepCellRetry, EvSweepCellTimeout, EvSweepCellFail:
		pid := c.ensureTrack(ev.Run, -1, tidCells, "cells")
		name := ev.Type.String()
		if ev.Name != "" {
			name += " " + ev.Name
		}
		c.instant(pid, tidCells, name, cat, ev.Time, ev.A, ev.B)
	case EvFastPathHit, EvFastPathMiss, EvFastPathCertify:
		// Dispatcher decisions land on the run's cluster process so a
		// report can tell fast-path-served cells (no engine timeline at
		// all) from simulated ones.
		pid := c.ensureTrack(ev.Run, -1, tidFastPath, "fastpath")
		name := ev.Type.String()
		if ev.Name != "" {
			name += " " + ev.Name
		}
		c.instant(pid, tidFastPath, name, cat, ev.Time, ev.A, ev.B)
	case EvUserSpan:
		pid := c.ensureTrack(ev.Run, ev.Node, ev.Track, ev.Name)
		c.complete(pid, ev.Track, ev.Name, cat, ev.Time-ev.Dur, ev.Dur, ev.A, ev.B)
	}
}
