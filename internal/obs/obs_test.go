package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"testing"

	"smistudy/internal/sim"
)

func TestRingSink(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Time: sim.Time(i), Type: EvSMMEnter})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Time != sim.Time(6+i) {
			t.Fatalf("event %d has time %d, want %d (oldest-first order)", i, ev.Time, 6+i)
		}
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRingSink(8)
	r.Emit(Event{Type: EvSMMExit})
	r.Emit(Event{Type: EvMPISend})
	r.Emit(Event{Type: EvSMMEnter})
	if got := len(r.Filter(CatSMM)); got != 2 {
		t.Fatalf("smm events = %d, want 2", got)
	}
}

func TestFilterSink(t *testing.T) {
	inner := NewRingSink(8)
	f := FilterSink{Cat: CatSMM, Sink: inner}
	f.Emit(Event{Type: EvSMMExit})
	f.Emit(Event{Type: EvMPISend})
	f.Emit(Event{Type: EvSchedRun})
	if inner.Total() != 1 || inner.Events()[0].Type != EvSMMExit {
		t.Fatalf("filter passed wrong events: %+v", inner.Events())
	}
}

func TestTypeTaxonomy(t *testing.T) {
	// Every event type must have a name and a category; the five
	// categories the acceptance criteria name must all be reachable.
	seen := map[Category]bool{}
	for ty := EvSMMEnter; ty < numTypes; ty++ {
		if ty.String() == "" || ty.String() == "unknown" {
			t.Errorf("type %d has no name", ty)
		}
		if ty.Category() == CatNone {
			t.Errorf("type %v has no category", ty)
		}
		seen[ty.Category()] = true
	}
	for _, c := range []Category{CatSMM, CatSched, CatMPI, CatNet, CatFault} {
		if !seen[c] {
			t.Errorf("category %v unreachable from any event type", c)
		}
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b", 1).Add(2)
	reg.Counter("a", 3).Add(1)
	reg.Counter("a", 0).Add(5)
	reg.Gauge("g", 0).Set(7)
	h := reg.Histogram("h", 2, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(1) // on-bound observation belongs to the next bucket
	h.Observe(99)

	s := reg.Snapshot()
	if len(s.Counters) != 3 || s.Counters[0].Name != "a" || s.Counters[0].ID != 0 {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Counter("a", 3) != 1 || s.Counter("missing", 0) != 0 {
		t.Fatal("counter lookup wrong")
	}
	hs := s.Histograms[0]
	if hs.N != 3 || hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Fatalf("histogram buckets: %+v", hs)
	}
	if hs.Max != 99 || !near(hs.Mean(), (0.5+1+99)/3) {
		t.Fatalf("histogram stats: max=%v mean=%v", hs.Max, hs.Mean())
	}

	j1, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := reg.Snapshot().JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("snapshot JSON not byte-stable")
	}
}

func near(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestBusDerivesMetrics(t *testing.T) {
	b := NewBus()
	ring := NewRingSink(16)
	b.Attach(ring)
	b.Emit(Event{Time: 10 * sim.Millisecond, Dur: 2 * sim.Millisecond, Type: EvSMMExit, Node: 1})
	b.Emit(Event{Type: EvMPIRetransmit, Node: 0})
	b.Emit(Event{Type: EvNetDrop, Node: 0})
	b.EngineEvent(sim.ProbeSchedule)
	b.EngineEvent(sim.ProbeFire)

	s := b.MetricsSnapshot()
	if s.Counter("smm_episodes", 1) != 1 {
		t.Fatal("smm episode not counted")
	}
	if s.Counter("mpi_retransmits", 0) != 1 || s.Counter("net_drops", 0) != 1 {
		t.Fatal("transport counters wrong")
	}
	if s.Counter("engine_events_scheduled", -1) != 1 || s.Counter("engine_events_fired", -1) != 1 {
		t.Fatal("engine probe counters wrong")
	}
	if ring.Total() != 3 {
		t.Fatalf("sink saw %d events, want 3", ring.Total())
	}
}

func TestWithRun(t *testing.T) {
	ring := NewRingSink(4)
	tr := WithRun(ring, 7)
	tr.Emit(Event{Type: EvSweepCellStart})
	if got := ring.Events()[0].Run; got != 7 {
		t.Fatalf("run = %d, want 7", got)
	}
	if WithRun(nil, 3) != nil {
		t.Fatal("WithRun(nil) must stay nil (fast-path contract)")
	}
}

// chromeDoc parses a sink's output for structural assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	} `json:"traceEvents"`
}

func TestChromeSinkValidity(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	// One event from every category, two runs to exercise the pid split.
	events := []Event{
		{Time: 1 * sim.Millisecond, Type: EvSchedRun, Node: 0, Track: 2, A: 1, Name: "worker"},
		{Time: 2 * sim.Millisecond, Dur: sim.Millisecond, Type: EvSMMExit, Node: 0, Track: -1},
		{Time: 3 * sim.Millisecond, Type: EvMPISend, Node: 0, Track: 0, A: 1, B: 64},
		{Time: 3 * sim.Millisecond, Type: EvCollBegin, Node: 0, Track: 0, Name: "barrier"},
		{Time: 4 * sim.Millisecond, Type: EvCollEnd, Node: 0, Track: 0, Name: "barrier"},
		{Time: 4 * sim.Millisecond, Type: EvNetDrop, Node: 0, Track: -1, A: 1, B: 64},
		{Time: 5 * sim.Millisecond, Type: EvFaultStart, Node: -1, Track: -1, A: 0, B: 1, Name: "loss"},
		{Time: 6 * sim.Millisecond, Type: EvProfDrop, Node: 0, Track: -1},
		{Time: 7 * sim.Millisecond, Dur: 7 * sim.Millisecond, Type: EvSweepCellFinish, Run: 1, Node: -1, A: 99},
		{Time: 8 * sim.Millisecond, Dur: 2 * sim.Millisecond, Type: EvUserSpan, Node: 0, Track: 5, Name: "task \"x\""},
	}
	for _, ev := range events {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !json.Valid(out) {
		t.Fatalf("sink output is not valid JSON:\n%s", out)
	}
	var doc chromeDoc
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	// Every non-metadata event must land on a named process and thread,
	// and ts must be monotone per (pid, tid) track.
	named := map[[2]int]bool{}
	lastTS := map[[2]int]float64{}
	for _, ev := range doc.TraceEvents {
		key := [2]int{ev.PID, ev.TID}
		if ev.Ph == "M" {
			named[key] = true
			if ev.Name == "process_name" {
				named[[2]int{ev.PID, 0}] = true
			}
			continue
		}
		if !named[[2]int{ev.PID, 0}] || !named[key] {
			t.Errorf("event %q on unnamed track pid=%d tid=%d", ev.Name, ev.PID, ev.TID)
		}
		if last, ok := lastTS[key]; ok && ev.TS < last {
			t.Errorf("ts regressed on pid=%d tid=%d: %v after %v", ev.PID, ev.TID, ev.TS, last)
		}
		lastTS[key] = ev.TS
	}
	// Runs must occupy disjoint pid namespaces.
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	if !pids[1] { // run 0, node 0
		t.Error("node process missing")
	}
	if !pids[1024] { // run 1, cluster
		t.Error("run-1 cluster process missing")
	}
}

func TestChromeSinkEmpty(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty trace invalid: %s", buf.Bytes())
	}
}

func TestManifestRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("smisim", flag.ContinueOnError)
	fs.String("workload", "nas", "")
	fs.Int("nodes", 4, "")
	fs.String("trace", "", "")
	if err := fs.Parse([]string{"-nodes", "8", "-trace", "out.json"}); err != nil {
		t.Fatal(err)
	}
	m := Capture("smisim", fs, "trace")
	if _, ok := m.Flags["trace"]; ok {
		t.Fatal("output flag leaked into the manifest")
	}
	if m.Flags["nodes"] != "8" || m.Flags["workload"] != "nas" {
		t.Fatalf("flags = %v", m.Flags)
	}

	j1, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadManifest(j1)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := m2.JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", j1, j2)
	}

	// Replay: manifest values apply, explicit command-line values win.
	fs2 := flag.NewFlagSet("smisim", flag.ContinueOnError)
	fs2.String("workload", "nas", "")
	fs2.Int("nodes", 4, "")
	fs2.String("trace", "", "")
	if err := fs2.Parse([]string{"-workload", "convolve"}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Apply(fs2, ExplicitFlags(fs2)); err != nil {
		t.Fatal(err)
	}
	if fs2.Lookup("nodes").Value.String() != "8" {
		t.Fatal("manifest value did not apply")
	}
	if fs2.Lookup("workload").Value.String() != "convolve" {
		t.Fatal("explicit flag lost to the manifest")
	}
}

func TestManifestUnknownFlagIgnored(t *testing.T) {
	m := Manifest{Flags: map[string]string{"gone": "1"}}
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(fs, ExplicitFlags(fs)); err != nil {
		t.Fatalf("unknown manifest flag should be skipped, got %v", err)
	}
}
