package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"smistudy/internal/sim"
)

// This file is the stable read-side of the observability bus: the
// Chrome/Perfetto trace a run streams to disk can be loaded back into
// typed records, with the (run, node, track) coordinates the sink
// encoded recovered exactly. cmd/smireport builds its attribution trees
// and flame renderings on this surface, so the track layout below is a
// compatibility contract, not an implementation detail.

// Exported per-node track ids (the ChromeSink "tid" layout). CPU tracks
// occupy [TidCPU0, TidCPU0+cpus), rank tracks [TidRank0, TidNet).
const (
	TidCPU0      int32 = 1    // scheduling instants for logical CPU c land on TidCPU0+c
	TidRank0     int32 = 100  // MPI traffic for rank r lands on TidRank0+r
	TidNet       int32 = 900  // fabric deliveries, drops, delays
	TidFault     int32 = 901  // fault activations
	TidProf      int32 = 902  // profiler sample decisions
	TidTransport int32 = 903  // reliable-transport retransmissions
	TidTasks     int32 = 998  // kernel task spawn/exit
	TidSMM       int32 = 1000 // ground-truth SMM residency spans
	TidSteal0    int32 = 1100 // core-scoped steal spans for CPU c land on TidSteal0+c

	// Cluster-process tracks (node = -1): the sweep-cell timeline and
	// the fast-path dispatcher's decision stream.
	TidCells    int32 = 1
	TidFastPath int32 = 2
)

// TrackKind classifies a (node, tid) timeline.
type TrackKind uint8

// Track kinds, in the order a flame rendering stacks them.
const (
	TrackUnknown   TrackKind = iota
	TrackCells               // cluster: sweep-cell spans
	TrackFastPath            // cluster: dispatcher decisions
	TrackCPU                 // per-node: one logical CPU's scheduling
	TrackRank                // per-node: one MPI rank's traffic
	TrackNet                 // per-node: fabric activity
	TrackFault               // per-node: fault activations
	TrackProf                // per-node: profiler decisions
	TrackTransport           // per-node: retransmissions
	TrackTasks               // per-node: kernel task lifecycle
	TrackSMM                 // per-node: SMM residency ground truth
	TrackSteal               // per-node: one CPU's core-scoped steal ground truth
)

// String implements fmt.Stringer.
func (k TrackKind) String() string {
	switch k {
	case TrackCells:
		return "cells"
	case TrackFastPath:
		return "fastpath"
	case TrackCPU:
		return "cpu"
	case TrackRank:
		return "rank"
	case TrackNet:
		return "net"
	case TrackFault:
		return "fault"
	case TrackProf:
		return "prof"
	case TrackTransport:
		return "transport"
	case TrackTasks:
		return "tasks"
	case TrackSMM:
		return "smm"
	case TrackSteal:
		return "steal"
	default:
		return "unknown"
	}
}

// TrackOf classifies a timeline and recovers its index (the CPU number
// for TrackCPU, the rank id for TrackRank, zero otherwise). node is the
// decoded SplitPid node; cluster processes use node -1.
func TrackOf(node, tid int32) (TrackKind, int) {
	if node < 0 {
		switch tid {
		case TidCells:
			return TrackCells, 0
		case TidFastPath:
			return TrackFastPath, 0
		}
		return TrackUnknown, 0
	}
	switch {
	case tid >= TidCPU0 && tid < TidRank0:
		return TrackCPU, int(tid - TidCPU0)
	case tid >= TidRank0 && tid < TidNet:
		return TrackRank, int(tid - TidRank0)
	case tid == TidNet:
		return TrackNet, 0
	case tid == TidFault:
		return TrackFault, 0
	case tid == TidProf:
		return TrackProf, 0
	case tid == TidTransport:
		return TrackTransport, 0
	case tid == TidTasks:
		return TrackTasks, 0
	case tid == TidSMM:
		return TrackSMM, 0
	case tid >= TidSteal0 && tid < TidSteal0+99:
		return TrackSteal, int(tid - TidSteal0)
	}
	return TrackUnknown, 0
}

// Span is one interval or instant recovered from a trace: "X" complete
// spans keep their duration, matched "B"/"E" pairs become spans, and
// "i" instants carry Dur 0 with Instant set.
type Span struct {
	Run     int32
	Node    int32 // -1 for cluster-process events
	Tid     int32
	Kind    TrackKind
	Index   int // CPU number or rank id for CPU/rank tracks
	Name    string
	Cat     string
	Start   sim.Time
	Dur     sim.Time
	A, B    int64
	Instant bool
}

// End reports the span's end time.
func (s Span) End() sim.Time { return s.Start + s.Dur }

// Trace is a fully parsed trace stream.
type Trace struct {
	// Spans holds every recovered record in a deterministic order:
	// (Run, Node, Tid, Start, Name).
	Spans []Span
	// ProcNames maps a (run, node) process to its display name.
	ProcNames map[int64]string
	// ThreadNames maps a (pid, tid) timeline to its display name.
	ThreadNames map[int64]map[int32]string
	// Records counts trace records parsed, metadata included — the
	// number a manifest's SinkStats.TraceEvents should match.
	Records int64
	// Truncated is set when the stream ended mid-document (a killed or
	// write-errored producer): everything parsed up to the tear is
	// retained, and consumers must treat the trace as lossy.
	Truncated bool
	// Unbalanced counts "B" edges that never saw their "E" (or E
	// without B): a structural anomaly attribution must surface.
	Unbalanced int
}

// RunIDs reports the distinct run indices in the trace, ascending.
func (t *Trace) RunIDs() []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, s := range t.Spans {
		if !seen[s.Run] {
			seen[s.Run] = true
			out = append(out, s.Run)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Select returns the spans of one run matching the kind filter
// (TrackUnknown selects every kind), preserving order.
func (t *Trace) Select(run int32, kind TrackKind) []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.Run == run && (kind == TrackUnknown || s.Kind == kind) {
			out = append(out, s)
		}
	}
	return out
}

// rawEvent is one Chrome trace-event JSON object.
type rawEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int64   `json:"pid"`
	Tid  int32   `json:"tid"`
	Args struct {
		Name string `json:"name"`
		A    int64  `json:"a"`
		B    int64  `json:"b"`
	} `json:"args"`
}

// fromUS converts Chrome's microsecond timestamps back to sim.Time,
// rounding to the sink's millisecond-of-a-microsecond precision.
func fromUS(us float64) sim.Time {
	return sim.Time(math.Round(us * float64(sim.Microsecond)))
}

// ReadTrace parses a Chrome trace-event stream written by ChromeSink
// (any {"traceEvents":[...]} document works). Parsing is lenient about
// torn tails: a stream cut mid-record — the shape a killed producer
// leaves — returns everything before the tear with Truncated set
// instead of failing, because a partial timeline is exactly what a
// post-mortem needs. Any other malformation is an error.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	tr := &Trace{
		ProcNames:   map[int64]string{},
		ThreadNames: map[int64]map[int32]string{},
	}
	// Expect `{ "traceEvents" : [`.
	for _, want := range []json.Delim{'{'} {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if d, ok := tok.(json.Delim); !ok || d != want {
			return nil, fmt.Errorf("obs: trace: unexpected token %v", tok)
		}
	}
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	if key, ok := tok.(string); !ok || key != "traceEvents" {
		return nil, fmt.Errorf("obs: trace: expected traceEvents, got %v", tok)
	}
	if tok, err = dec.Token(); err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("obs: trace: expected event array, got %v", tok)
	}

	// open tracks per-(pid,tid) unmatched "B" edges, a stack per track
	// (collectives nest).
	type trackID struct {
		pid int64
		tid int32
	}
	open := map[trackID][]rawEvent{}
	for dec.More() {
		var ev rawEvent
		if err := dec.Decode(&ev); err != nil {
			// A tear inside the array: keep what we have.
			tr.Truncated = true
			break
		}
		tr.Records++
		run, node := SplitPid(ev.Pid)
		kind, idx := TrackOf(node, ev.Tid)
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				tr.ProcNames[ev.Pid] = ev.Args.Name
			case "thread_name":
				m := tr.ThreadNames[ev.Pid]
				if m == nil {
					m = map[int32]string{}
					tr.ThreadNames[ev.Pid] = m
				}
				m[ev.Tid] = ev.Args.Name
			}
		case "X":
			tr.Spans = append(tr.Spans, Span{
				Run: run, Node: node, Tid: ev.Tid, Kind: kind, Index: idx,
				Name: ev.Name, Cat: ev.Cat,
				Start: fromUS(ev.Ts), Dur: fromUS(ev.Dur),
				A: ev.Args.A, B: ev.Args.B,
			})
		case "i", "I":
			tr.Spans = append(tr.Spans, Span{
				Run: run, Node: node, Tid: ev.Tid, Kind: kind, Index: idx,
				Name: ev.Name, Cat: ev.Cat,
				Start: fromUS(ev.Ts),
				A:     ev.Args.A, B: ev.Args.B, Instant: true,
			})
		case "B":
			id := trackID{ev.Pid, ev.Tid}
			open[id] = append(open[id], ev)
		case "E":
			id := trackID{ev.Pid, ev.Tid}
			stack := open[id]
			if len(stack) == 0 {
				tr.Unbalanced++
				continue
			}
			b := stack[len(stack)-1]
			open[id] = stack[:len(stack)-1]
			tr.Spans = append(tr.Spans, Span{
				Run: run, Node: node, Tid: ev.Tid, Kind: kind, Index: idx,
				Name: b.Name, Cat: b.Cat,
				Start: fromUS(b.Ts), Dur: fromUS(ev.Ts) - fromUS(b.Ts),
				A: b.Args.A, B: b.Args.B,
			})
		}
	}
	if !tr.Truncated {
		// Consume `] }`; a tear here still means a complete event list.
		if _, err := dec.Token(); err != nil {
			tr.Truncated = true
		} else if _, err := dec.Token(); err != nil {
			tr.Truncated = true
		}
	}
	for _, stack := range open {
		tr.Unbalanced += len(stack)
	}
	sort.SliceStable(tr.Spans, func(i, j int) bool {
		a, b := tr.Spans[i], tr.Spans[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Name < b.Name
	})
	return tr, nil
}
