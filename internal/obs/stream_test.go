package obs

import (
	"bytes"
	"strings"
	"testing"

	"smistudy/internal/sim"
)

// emitSample drives a ChromeSink through a representative event mix
// across two runs: SMM residency spans, scheduling instants, MPI
// traffic, a nested collective, task lifecycle and the sweep-cell span.
func emitSample(sink *ChromeSink) {
	for run := int32(0); run < 2; run++ {
		tr := WithRun(Tracer(sink), run)
		tr.Emit(Event{Time: 0, Type: EvSweepCellStart, Node: -1, Track: -1, A: 42})
		tr.Emit(Event{Time: 1 * sim.Millisecond, Type: EvTaskSpawn, Node: 0, Track: -1, A: 7, Name: "rank0"})
		tr.Emit(Event{Time: 1 * sim.Millisecond, Type: EvSchedRun, Node: 0, Track: 0, A: 7})
		tr.Emit(Event{Time: 2 * sim.Millisecond, Type: EvMPISend, Node: 0, Track: 0, A: 1, B: 4096})
		tr.Emit(Event{Time: 3 * sim.Millisecond, Type: EvCollBegin, Node: 0, Track: 0, Name: "allreduce"})
		tr.Emit(Event{Time: 5 * sim.Millisecond, Type: EvCollEnd, Node: 0, Track: 0, Name: "allreduce"})
		tr.Emit(Event{Time: 9 * sim.Millisecond, Dur: 3 * sim.Millisecond, Type: EvSMMExit, Node: 0, Track: -1})
		tr.Emit(Event{Time: 10 * sim.Millisecond, Type: EvSchedPreempt, Node: 0, Track: 0, A: 7})
		tr.Emit(Event{Time: 11 * sim.Millisecond, Type: EvMPIRetransmit, Node: 0, A: 1, B: 4096})
		tr.Emit(Event{Time: 12 * sim.Millisecond, Type: EvSweepCellFinish, Node: -1, Track: -1, A: 42, Dur: 12 * sim.Millisecond})
	}
}

func TestReadTraceRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	emitSample(sink)
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.Truncated {
		t.Fatal("complete stream reported truncated")
	}
	if tr.Unbalanced != 0 {
		t.Fatalf("Unbalanced = %d, want 0", tr.Unbalanced)
	}
	if tr.Records != sink.Events() {
		t.Fatalf("Records = %d, sink wrote %d", tr.Records, sink.Events())
	}
	if got := tr.RunIDs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("RunIDs = %v, want [0 1]", got)
	}

	// Per run: the cell span, the matched collective, the SMM span with
	// its start shifted back by the residency, and the sched instants.
	for _, run := range []int32{0, 1} {
		cells := tr.Select(run, TrackCells)
		var cellSpan *Span
		for i := range cells {
			if !cells[i].Instant && cells[i].Name == "cell" {
				cellSpan = &cells[i]
			}
		}
		if cellSpan == nil || cellSpan.Dur != 12*sim.Millisecond {
			t.Fatalf("run %d: cell span = %+v, want 12ms span", run, cellSpan)
		}
		smm := tr.Select(run, TrackSMM)
		if len(smm) != 1 || smm[0].Start != 6*sim.Millisecond || smm[0].Dur != 3*sim.Millisecond {
			t.Fatalf("run %d: smm spans = %+v, want one [6ms,9ms]", run, smm)
		}
		var coll *Span
		for _, s := range tr.Select(run, TrackRank) {
			if !s.Instant && s.Name == "allreduce" {
				c := s
				coll = &c
			}
		}
		if coll == nil || coll.Start != 3*sim.Millisecond || coll.Dur != 2*sim.Millisecond {
			t.Fatalf("run %d: collective = %+v, want [3ms,5ms]", run, coll)
		}
		cpu := tr.Select(run, TrackCPU)
		if len(cpu) != 2 || cpu[0].Name != "run" || cpu[1].Name != "preempt" {
			t.Fatalf("run %d: cpu instants = %+v, want run+preempt", run, cpu)
		}
		if cpu[0].A != 7 {
			t.Fatalf("run %d: sched run A = %d, want tid 7", run, cpu[0].A)
		}
		if n := len(tr.Select(run, TrackTransport)); n != 1 {
			t.Fatalf("run %d: transport instants = %d, want 1", run, n)
		}
	}

	// Metadata round-trips through process/thread names.
	if name := tr.ProcNames[PidFor(1, 0)]; name == "" {
		t.Fatal("run 1 node 0 process has no name")
	}
}

func TestReadTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	emitSample(sink)
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	full, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace(full): %v", err)
	}

	// Cut the stream mid-record, as a killed producer would.
	cut := buf.Bytes()[:buf.Len()*3/5]
	tr, err := ReadTrace(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("ReadTrace(torn): %v", err)
	}
	if !tr.Truncated {
		t.Fatal("torn stream not reported truncated")
	}
	if tr.Records == 0 || tr.Records >= full.Records {
		t.Fatalf("torn Records = %d, want in (0, %d)", tr.Records, full.Records)
	}
}

func TestReadTraceUnbalanced(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	sink.Emit(Event{Time: 1 * sim.Millisecond, Type: EvCollBegin, Node: 0, Track: 0, Name: "barrier"})
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.Unbalanced != 1 {
		t.Fatalf("Unbalanced = %d, want 1 (open collective)", tr.Unbalanced)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`[1,2,3]`)); err == nil {
		t.Fatal("non-trace JSON accepted")
	}
}

// TestPidForUniqueAtScale pins the satellite requirement: pids stay
// collision-free at high run counts. The pre-int64 layout wrapped int32
// at run ≈ 2M; the widened layout must keep (run, node) → pid injective
// across the whole practical range and SplitPid must invert it.
func TestPidForUniqueAtScale(t *testing.T) {
	runs := []int32{0, 1, 2, 1023, 1024, 4095, 100_000, 2_100_000, 1 << 30}
	seen := map[int64]struct{}{}
	for _, run := range runs {
		for node := int32(-1); node < 64; node++ {
			pid := PidFor(run, node)
			if _, dup := seen[pid]; dup {
				t.Fatalf("pid collision at run=%d node=%d (pid %d)", run, node, pid)
			}
			seen[pid] = struct{}{}
			r, n := SplitPid(pid)
			if r != run || n != node {
				t.Fatalf("SplitPid(PidFor(%d,%d)) = (%d,%d)", run, node, r, n)
			}
		}
	}
	// Dense sweep over the first 4096 runs × full node range.
	for run := int32(0); run < 4096; run++ {
		for _, node := range []int32{-1, 0, 511, 1022} {
			pid := PidFor(run, node)
			if r, n := SplitPid(pid); r != run || n != node {
				t.Fatalf("SplitPid(PidFor(%d,%d)) = (%d,%d)", run, node, r, n)
			}
		}
	}
}

func TestTrackOfLayout(t *testing.T) {
	cases := []struct {
		node, tid int32
		kind      TrackKind
		index     int
	}{
		{-1, TidCells, TrackCells, 0},
		{-1, TidFastPath, TrackFastPath, 0},
		{0, TidCPU0, TrackCPU, 0},
		{0, TidCPU0 + 7, TrackCPU, 7},
		{0, TidRank0, TrackRank, 0},
		{0, TidRank0 + 15, TrackRank, 15},
		{0, TidNet, TrackNet, 0},
		{0, TidFault, TrackFault, 0},
		{0, TidProf, TrackProf, 0},
		{0, TidTransport, TrackTransport, 0},
		{0, TidTasks, TrackTasks, 0},
		{0, TidSMM, TrackSMM, 0},
		{-1, 999, TrackUnknown, 0},
		{0, 999, TrackUnknown, 0},
	}
	for _, c := range cases {
		kind, idx := TrackOf(c.node, c.tid)
		if kind != c.kind || idx != c.index {
			t.Errorf("TrackOf(%d, %d) = (%v, %d), want (%v, %d)",
				c.node, c.tid, kind, idx, c.kind, c.index)
		}
	}
}

func TestLog2Bounds(t *testing.T) {
	b := Log2Bounds(8, 1<<17)
	if len(b) == 0 || b[0] != 8 || b[len(b)-1] != 1<<17 {
		t.Fatalf("Log2Bounds(8, 2^17) = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bounds not doubling at %d: %v", i, b)
		}
	}
	if got := Log2Bounds(0, 4); got[0] != 1 {
		t.Fatalf("Log2Bounds(0, 4) starts at %v, want 1", got[0])
	}
}
