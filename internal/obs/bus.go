package obs

import (
	"sync"

	"smistudy/internal/sim"
)

// Default histogram bucket bounds, in microseconds: fixed log2 buckets
// from 8 µs to ~131 ms, spanning the paper's SMM residency range (tens
// of µs to a few ms) and fabric latencies with equal per-decade
// resolution. The report pipeline renders these distributions directly.
var defaultUSBounds = Log2Bounds(8, 1<<17)

// Bus is the per-run observability hub: it fans events out to attached
// sinks and derives registry metrics from them centrally, so emit sites
// stay a single nil-guarded call. Emit serializes internally, making
// one bus safe to share across parallel sweep workers (wrap each cell
// with WithRun so their timelines stay separable).
//
// Bus also implements sim.Probe, counting engine scheduling operations
// with plain atomic counters — attach it with Engine.SetProbe to see
// event-queue traffic in the metrics snapshot without disturbing the
// engine's zero-allocation hot path.
type Bus struct {
	mu    sync.Mutex
	sinks []Tracer
	reg   *Registry

	// Pre-fetched engine-probe counters: EngineEvent is on the sim hot
	// path and must stay a single atomic add.
	engScheduled *Counter
	engFired     *Counter
	engCancelled *Counter
}

// NewBus returns a bus with its own registry and no sinks.
func NewBus() *Bus {
	reg := NewRegistry()
	return &Bus{
		reg:          reg,
		engScheduled: reg.Counter("engine_events_scheduled", -1),
		engFired:     reg.Counter("engine_events_fired", -1),
		engCancelled: reg.Counter("engine_events_cancelled", -1),
	}
}

// Attach adds a sink. Events already emitted are not replayed; attach
// sinks before the run starts.
func (b *Bus) Attach(sink Tracer) *Bus {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sinks = append(b.sinks, sink)
	return b
}

// Registry exposes the bus's metrics registry.
func (b *Bus) Registry() *Registry { return b.reg }

// Emit implements Tracer: updates derived metrics and forwards the
// event to every sink, serialized under the bus lock.
func (b *Bus) Emit(ev Event) {
	b.mu.Lock()
	b.record(ev)
	for _, s := range b.sinks {
		s.Emit(ev)
	}
	b.mu.Unlock()
}

// record derives registry metrics from one event. Counters and
// histograms commute, so parallel sweep cells feeding one bus still
// produce a deterministic snapshot.
func (b *Bus) record(ev Event) {
	node := int(ev.Node)
	switch ev.Type {
	case EvSMMExit:
		b.reg.Counter("smm_episodes", node).Add(1)
		b.reg.Histogram("smm_residency_us", node, defaultUSBounds).Observe(float64(ev.Dur) / float64(sim.Microsecond))
	case EvStealExit:
		b.reg.Counter("steal_episodes", node).Add(1)
		b.reg.Histogram("steal_residency_us", node, defaultUSBounds).Observe(float64(ev.Dur) / float64(sim.Microsecond))
	case EvSchedMigrate:
		b.reg.Counter("sched_migrations", node).Add(1)
	case EvTaskSpawn:
		b.reg.Counter("tasks_spawned", node).Add(1)
	case EvMPISend:
		b.reg.Counter("mpi_sends", int(ev.Track)).Add(1)
		b.reg.Counter("mpi_send_bytes", int(ev.Track)).Add(ev.B)
	case EvMPIRecv:
		b.reg.Counter("mpi_recvs", int(ev.Track)).Add(1)
	case EvMPIRetransmit:
		b.reg.Counter("mpi_retransmits", node).Add(1)
	case EvCollEnd:
		b.reg.Counter("mpi_collectives", int(ev.Track)).Add(1)
	case EvNetDeliver:
		b.reg.Counter("net_delivered", node).Add(1)
		b.reg.Histogram("net_latency_us", node, defaultUSBounds).Observe(float64(ev.Dur) / float64(sim.Microsecond))
	case EvNetDrop:
		b.reg.Counter("net_drops", node).Add(1)
	case EvNetDelay:
		b.reg.Counter("net_delays", node).Add(1)
	case EvFaultStart:
		b.reg.Counter("faults_activated", node).Add(1)
	case EvSweepCellStart:
		b.reg.Counter("sweep_cells_started", -1).Add(1)
	case EvSweepCellFinish:
		b.reg.Counter("sweep_cells_finished", -1).Add(1)
	case EvSweepCellCached:
		b.reg.Counter("sweep_cells_cached", -1).Add(1)
	case EvSweepCellRetry:
		b.reg.Counter("sweep_cell_retries", -1).Add(1)
	case EvSweepCellTimeout:
		b.reg.Counter("sweep_cell_timeouts", -1).Add(1)
	case EvSweepCellFail:
		b.reg.Counter("sweep_cells_failed", -1).Add(1)
	case EvProfSample:
		b.reg.Counter("prof_samples", node).Add(ev.A)
	case EvProfDrop:
		b.reg.Counter("prof_samples_lost", node).Add(1)
	case EvProfDefer:
		b.reg.Counter("prof_samples_deferred", node).Add(1)
	}
}

// EngineEvent implements sim.Probe: one atomic add per engine
// scheduling operation, no locks, no allocation.
func (b *Bus) EngineEvent(op sim.ProbeOp) {
	switch op {
	case sim.ProbeSchedule:
		b.engScheduled.Add(1)
	case sim.ProbeFire:
		b.engFired.Add(1)
	case sim.ProbeCancel:
		b.engCancelled.Add(1)
	}
}

// MetricsSnapshot snapshots the bus registry.
func (b *Bus) MetricsSnapshot() Snapshot { return b.reg.Snapshot() }
