package obs

// RingSink keeps the most recent events in a fixed-capacity ring: the
// cheap always-on sink for tests, the detector overlay, and post-run
// inspection without streaming anything to disk.
type RingSink struct {
	buf   []Event
	next  int
	total int64
}

// NewRingSink returns a ring holding at most cap events (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit implements Tracer.
func (r *RingSink) Emit(ev Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
}

// Total reports how many events were emitted, including any that have
// been overwritten.
func (r *RingSink) Total() int64 { return r.total }

// Dropped reports how many events fell off the ring.
func (r *RingSink) Dropped() int64 { return r.total - int64(len(r.buf)) }

// Events returns the retained events oldest-first as a fresh slice.
func (r *RingSink) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns the retained events of one category, oldest-first.
func (r *RingSink) Filter(cat Category) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Type.Category() == cat {
			out = append(out, ev)
		}
	}
	return out
}

// FilterSink forwards only one category's events to an inner sink —
// e.g. keep every SMM episode in a small ring while the scheduler's far
// chattier stream passes by.
type FilterSink struct {
	Cat  Category
	Sink Tracer
}

// Emit implements Tracer.
func (f FilterSink) Emit(ev Event) {
	if ev.Type.Category() == f.Cat {
		f.Sink.Emit(ev)
	}
}
