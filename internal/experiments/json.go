package experiments

import (
	"encoding/json"
	"fmt"
)

// JSON serialization of regenerated experiments, for downstream plotting
// tools. Types marshal with self-describing field names; NaNs (cells the
// paper leaves blank) become nulls.

// jsonTriple is the wire form of a Triple.
type jsonTriple struct {
	SMM0     float64 `json:"smm0_s"`
	SMM1     float64 `json:"smm1_s"`
	SMM2     float64 `json:"smm2_s"`
	PctShort float64 `json:"short_pct"`
	PctLong  float64 `json:"long_pct"`
}

func toJSONTriple(t *Triple) *jsonTriple {
	if t == nil {
		return nil
	}
	return &jsonTriple{
		SMM0: t.SMM0, SMM1: t.SMM1, SMM2: t.SMM2,
		PctShort: t.PctShort(), PctLong: t.PctLong(),
	}
}

// MarshalJSON renders the table with per-row one/four halves.
func (t NASTable) MarshalJSON() ([]byte, error) {
	type row struct {
		Class string      `json:"class"`
		Nodes int         `json:"nodes"`
		One   *jsonTriple `json:"one_rank_per_node"`
		Four  *jsonTriple `json:"four_ranks_per_node"`
	}
	out := struct {
		Table int    `json:"table"`
		Title string `json:"title"`
		Bench string `json:"bench"`
		Rows  []row  `json:"rows"`
	}{Table: t.Number, Title: t.Title, Bench: string(t.Bench)}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, row{
			Class: string(r.Class),
			Nodes: r.Nodes,
			One:   toJSONTriple(r.One),
			Four:  toJSONTriple(r.Four),
		})
	}
	return json.Marshal(out)
}

// MarshalJSON renders the HTT table.
func (t HTTTable) MarshalJSON() ([]byte, error) {
	type row struct {
		Class string     `json:"class"`
		Nodes int        `json:"nodes"`
		Off   jsonTriple `json:"ht0"`
		On    jsonTriple `json:"ht1"`
	}
	out := struct {
		Table int    `json:"table"`
		Title string `json:"title"`
		Bench string `json:"bench"`
		Rows  []row  `json:"rows"`
	}{Table: t.Number, Title: t.Title, Bench: string(t.Bench)}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, row{
			Class: string(r.Class),
			Nodes: r.Nodes,
			Off:   *toJSONTriple(&r.Off),
			On:    *toJSONTriple(&r.On),
		})
	}
	return json.Marshal(out)
}

// MarshalJSON renders the Convolve figure points.
func (f Figure1) MarshalJSON() ([]byte, error) {
	type point struct {
		Behavior   string  `json:"behavior"`
		CPUs       int     `json:"cpus"`
		IntervalMS int     `json:"interval_ms"`
		Seconds    float64 `json:"seconds"`
		StdDev     float64 `json:"stddev"`
	}
	pts := make([]point, 0, len(f.Points))
	for _, p := range f.Points {
		pts = append(pts, point{
			Behavior: p.Behavior.String(), CPUs: p.CPUs,
			IntervalMS: p.IntervalMS, Seconds: p.Seconds, StdDev: p.StdDev,
		})
	}
	return json.Marshal(struct {
		Figure int     `json:"figure"`
		Points []point `json:"points"`
	}{1, pts})
}

// MarshalJSON renders the UnixBench figure points.
func (f Figure2) MarshalJSON() ([]byte, error) {
	type point struct {
		CPUs       int     `json:"cpus"`
		IntervalMS int     `json:"interval_ms"`
		Iteration  int     `json:"iteration"`
		Score      float64 `json:"score"`
	}
	pts := make([]point, 0, len(f.Points))
	for _, p := range f.Points {
		pts = append(pts, point{p.CPUs, p.IntervalMS, p.Iteration, p.Score})
	}
	return json.Marshal(struct {
		Figure int     `json:"figure"`
		Points []point `json:"points"`
	}{2, pts})
}

// ToJSON marshals any experiment artifact with indentation.
func ToJSON(v any) (string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: %w", err)
	}
	return string(b), nil
}
