package experiments

import (
	"fmt"

	"smistudy"
	"smistudy/internal/metrics"
	"smistudy/internal/parsweep"
	"smistudy/internal/runner"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// AmpCell is one measured amplification cell: how much extra runtime one
// unit of injected per-node SMM residency cost a benchmark.
type AmpCell struct {
	Bench     string  `json:"bench"`
	Class     string  `json:"class"`
	Nodes     int     `json:"nodes"`
	BaseS     float64 `json:"base_s"`
	NoisyS    float64 `json:"noisy_s"`
	Residency float64 `json:"residency_per_node_s"`
	Factor    float64 `json:"amplification"`
}

// AmpResult is the structured amplification study.
type AmpResult struct {
	Cells []AmpCell `json:"cells"`
}

// Find returns the cell for a configuration, or nil.
func (a AmpResult) Find(bench string, class byte, nodes int) *AmpCell {
	for i := range a.Cells {
		c := &a.Cells[i]
		if c.Bench == bench && c.Class == string(class) && c.Nodes == nodes {
			return c
		}
	}
	return nil
}

// AmplificationData quantifies Ferreira et al.'s absorption/
// amplification framing for the paper's benchmarks: the amplification
// factor is (noisy − base) / injected residency per node. A factor of 1
// means each node's noise cost exactly its residency (no interaction);
// below 1 the noise was absorbed in slack; above 1 synchronization
// propagated one node's stalls to all of them.
func AmplificationData(cfg Config) (AmpResult, error) {
	type cell struct {
		bench smistudy.Benchmark
		class smistudy.Class
		nodes int
	}
	cells := []cell{
		{smistudy.EP, smistudy.ClassA, 1},
		{smistudy.EP, smistudy.ClassA, 16},
		{smistudy.BT, smistudy.ClassA, 16},
		{smistudy.BT, smistudy.ClassC, 16},
		{smistudy.FT, smistudy.ClassB, 4},
	}
	if cfg.Quick {
		cells = cells[:2]
	}
	// Flatten each cell into its two independent runs (quiet, noisy);
	// the per-cell "no residency injected" check moves to the fold so
	// the sweep units stay independent single runs.
	type ampPoint struct {
		cell  cell
		level smm.Level
	}
	var pts []ampPoint
	for _, c := range cells {
		pts = append(pts, ampPoint{c, smm.SMMNone}, ampPoint{c, smm.SMMLong})
	}
	type ampOut struct {
		time      sim.Time
		residency sim.Time
	}
	outs, err := parsweep.Run(cfg.ctx(), pts, cfg.Workers, func(p ampPoint) (ampOut, error) {
		t, res, err := amplifyRun(cfg, p.cell.bench, p.cell.class, p.cell.nodes, p.level)
		return ampOut{t, res}, err
	})
	if err != nil {
		return AmpResult{}, err
	}
	var out AmpResult
	for i, c := range cells {
		base, noisy, res := outs[2*i].time, outs[2*i+1].time, outs[2*i+1].residency
		if res == 0 {
			return AmpResult{}, fmt.Errorf("experiments: no residency injected for %s.%c on %d nodes", c.bench, c.class, c.nodes)
		}
		out.Cells = append(out.Cells, AmpCell{
			Bench: string(c.bench), Class: string(c.class), Nodes: c.nodes,
			BaseS: base.Seconds(), NoisyS: noisy.Seconds(),
			Residency: res.Seconds(),
			Factor:    (noisy - base).Seconds() / res.Seconds(),
		})
	}
	return out, nil
}

// Render prints the study in its report layout.
func (a AmpResult) Render() string {
	tab := metrics.NewTable("bench", "class", "nodes", "base (s)", "noisy (s)", "residency/node (s)", "amplification ×")
	for _, c := range a.Cells {
		tab.AddRow(c.Bench, c.Class, c.Nodes, c.BaseS, c.NoisyS, c.Residency, c.Factor)
	}
	return "Noise amplification (long SMIs at 1/s): extra runtime ÷ injected\n" +
		"per-node SMM residency. ≈1 on one node (no one to absorb or\n" +
		"amplify); >1 where synchronization propagates stalls cluster-wide;\n" +
		"<1 where slack absorbs them (Ferreira et al.'s framing):\n\n" +
		tab.String()
}

// AmplificationStudy renders AmplificationData for the extension report.
func AmplificationStudy(cfg Config) (string, error) {
	a, err := AmplificationData(cfg)
	if err != nil {
		return "", err
	}
	return a.Render(), nil
}

// amplifyRun measures one benchmark run under the given SMM level on a
// fresh engine, returning the run time and the per-node SMM residency.
func amplifyRun(cfg Config, b smistudy.Benchmark, class smistudy.Class, nodes int, level smm.Level) (sim.Time, sim.Time, error) {
	return runner.AmplifyRun(cfg.seed(), b, class, nodes, level, cfg.SMIScale)
}
