package experiments

import (
	"fmt"

	"smistudy"
	"smistudy/internal/cluster"
	"smistudy/internal/metrics"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// AmplificationStudy quantifies Ferreira et al.'s absorption/
// amplification framing for the paper's benchmarks: the amplification
// factor is (noisy − base) / injected residency per node. A factor of 1
// means each node's noise cost exactly its residency (no interaction);
// below 1 the noise was absorbed in slack; above 1 synchronization
// propagated one node's stalls to all of them.
func AmplificationStudy(cfg Config) (string, error) {
	type cell struct {
		bench smistudy.Benchmark
		class smistudy.Class
		nodes int
	}
	cells := []cell{
		{smistudy.EP, smistudy.ClassA, 1},
		{smistudy.EP, smistudy.ClassA, 16},
		{smistudy.BT, smistudy.ClassA, 16},
		{smistudy.BT, smistudy.ClassC, 16},
		{smistudy.FT, smistudy.ClassB, 4},
	}
	if cfg.Quick {
		cells = cells[:2]
	}
	tab := metrics.NewTable("bench", "class", "nodes", "base (s)", "noisy (s)", "residency/node (s)", "amplification ×")
	for _, c := range cells {
		base, noisy, res, err := amplifyCell(cfg, c.bench, c.class, c.nodes)
		if err != nil {
			return "", err
		}
		factor := 0.0
		if res > 0 {
			factor = (noisy - base).Seconds() / res.Seconds()
		}
		tab.AddRow(string(c.bench), string(c.class), c.nodes,
			base.Seconds(), noisy.Seconds(), res.Seconds(), factor)
	}
	return "Noise amplification (long SMIs at 1/s): extra runtime ÷ injected\n" +
		"per-node SMM residency. ≈1 on one node (no one to absorb or\n" +
		"amplify); >1 where synchronization propagates stalls cluster-wide;\n" +
		"<1 where slack absorbs them (Ferreira et al.'s framing):\n\n" +
		tab.String(), nil
}

func amplifyCell(cfg Config, b smistudy.Benchmark, class smistudy.Class, nodes int) (base, noisy sim.Time, residency sim.Time, err error) {
	run := func(level smm.Level) (sim.Time, sim.Time, error) {
		e := sim.New(cfg.seed())
		cl, err := cluster.New(e, cluster.Wyeast(nodes, false, level))
		if err != nil {
			return 0, 0, err
		}
		cl.StartSMI()
		w, err := mpi.NewWorld(cl, 1, mpi.DefaultParams())
		if err != nil {
			return 0, 0, err
		}
		res, err := nas.Run(w, nas.Spec{Bench: nas.Benchmark(b), Class: nas.Class(class)})
		if err != nil {
			return 0, 0, err
		}
		return res.Time, cl.TotalSMMResidency() / sim.Time(len(cl.Nodes)), nil
	}
	base, _, err = run(smm.SMMNone)
	if err != nil {
		return 0, 0, 0, err
	}
	noisy, residency, err = run(smm.SMMLong)
	if err != nil {
		return 0, 0, 0, err
	}
	if residency == 0 {
		return base, noisy, 0, fmt.Errorf("experiments: no residency injected for %s.%c on %d nodes", b, class, nodes)
	}
	return base, noisy, residency, nil
}
