package experiments

import (
	"context"
	"fmt"

	"smistudy"
	"smistudy/internal/cluster"
	"smistudy/internal/metrics"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/parsweep"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// AmplificationStudy quantifies Ferreira et al.'s absorption/
// amplification framing for the paper's benchmarks: the amplification
// factor is (noisy − base) / injected residency per node. A factor of 1
// means each node's noise cost exactly its residency (no interaction);
// below 1 the noise was absorbed in slack; above 1 synchronization
// propagated one node's stalls to all of them.
func AmplificationStudy(cfg Config) (string, error) {
	type cell struct {
		bench smistudy.Benchmark
		class smistudy.Class
		nodes int
	}
	cells := []cell{
		{smistudy.EP, smistudy.ClassA, 1},
		{smistudy.EP, smistudy.ClassA, 16},
		{smistudy.BT, smistudy.ClassA, 16},
		{smistudy.BT, smistudy.ClassC, 16},
		{smistudy.FT, smistudy.ClassB, 4},
	}
	if cfg.Quick {
		cells = cells[:2]
	}
	// Flatten each cell into its two independent runs (quiet, noisy);
	// the per-cell "no residency injected" check moves to the fold so
	// the sweep units stay independent single runs.
	type ampPoint struct {
		cell  cell
		level smm.Level
	}
	var pts []ampPoint
	for _, c := range cells {
		pts = append(pts, ampPoint{c, smm.SMMNone}, ampPoint{c, smm.SMMLong})
	}
	type ampOut struct {
		time      sim.Time
		residency sim.Time
	}
	outs, err := parsweep.Run(context.Background(), pts, cfg.Workers, func(p ampPoint) (ampOut, error) {
		t, res, err := amplifyRun(cfg, p.cell.bench, p.cell.class, p.cell.nodes, p.level)
		return ampOut{t, res}, err
	})
	if err != nil {
		return "", err
	}
	tab := metrics.NewTable("bench", "class", "nodes", "base (s)", "noisy (s)", "residency/node (s)", "amplification ×")
	for i, c := range cells {
		base, noisy, res := outs[2*i].time, outs[2*i+1].time, outs[2*i+1].residency
		if res == 0 {
			return "", fmt.Errorf("experiments: no residency injected for %s.%c on %d nodes", c.bench, c.class, c.nodes)
		}
		factor := (noisy - base).Seconds() / res.Seconds()
		tab.AddRow(string(c.bench), string(c.class), c.nodes,
			base.Seconds(), noisy.Seconds(), res.Seconds(), factor)
	}
	return "Noise amplification (long SMIs at 1/s): extra runtime ÷ injected\n" +
		"per-node SMM residency. ≈1 on one node (no one to absorb or\n" +
		"amplify); >1 where synchronization propagates stalls cluster-wide;\n" +
		"<1 where slack absorbs them (Ferreira et al.'s framing):\n\n" +
		tab.String(), nil
}

// amplifyRun measures one benchmark run under the given SMM level on a
// fresh engine, returning the run time and the per-node SMM residency.
func amplifyRun(cfg Config, b smistudy.Benchmark, class smistudy.Class, nodes int, level smm.Level) (sim.Time, sim.Time, error) {
	e := sim.New(cfg.seed())
	cl, err := cluster.New(e, cluster.Wyeast(nodes, false, level))
	if err != nil {
		return 0, 0, err
	}
	cl.StartSMI()
	w, err := mpi.NewWorld(cl, 1, mpi.DefaultParams())
	if err != nil {
		return 0, 0, err
	}
	res, err := nas.Run(w, nas.Spec{Bench: nas.Benchmark(b), Class: nas.Class(class)})
	if err != nil {
		return 0, 0, err
	}
	return res.Time, cl.TotalSMMResidency() / sim.Time(len(cl.Nodes)), nil
}
