package experiments

import (
	"strings"
	"testing"

	"smistudy"
)

func quick() Config { return Config{Quick: true, Runs: 1, Seed: 1} }

func TestTripleMath(t *testing.T) {
	tr := Triple{SMM0: 100, SMM1: 101, SMM2: 110}
	if tr.DeltaShort() != 1 || tr.DeltaLong() != 10 {
		t.Error("deltas wrong")
	}
	if tr.PctShort() != 1 || tr.PctLong() != 10 {
		t.Error("pcts wrong")
	}
}

func TestTable2EPQuick(t *testing.T) {
	tab, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Number != 2 || tab.Bench != smistudy.EP {
		t.Fatalf("metadata wrong: %+v", tab)
	}
	if len(tab.Rows) != 2 { // class A × nodes {1,4}
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row.One == nil || row.Four == nil {
			t.Fatal("missing halves")
		}
		// Long SMIs must hurt; short must be mild.
		if row.One.PctLong() < 5 {
			t.Errorf("nodes=%d: long-SMM impact %.1f%%, want ≥5%%", row.Nodes, row.One.PctLong())
		}
		if row.One.PctShort() > 3 {
			t.Errorf("nodes=%d: short-SMM impact %.1f%%, want small", row.Nodes, row.One.PctShort())
		}
		// 4 ranks/node must be faster than 1 rank/node at equal nodes.
		if row.Four.SMM0 >= row.One.SMM0 {
			t.Errorf("nodes=%d: 4/node (%v) not faster than 1/node (%v)", row.Nodes, row.Four.SMM0, row.One.SMM0)
		}
	}
	out := tab.Render()
	for _, want := range []string{"Table 2", "1 MPI rank per node", "4 MPI ranks per node", "SMM2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable1BTQuick(t *testing.T) {
	tab, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0].One.SMM0 < 80 || tab.Rows[0].One.SMM0 > 95 {
		t.Errorf("BT.A solo baseline %.1f, want ≈86.9", tab.Rows[0].One.SMM0)
	}
}

func TestTable3FTSkipsUnmeasuredCells(t *testing.T) {
	cfg := quick()
	cfg.Quick = false
	cfg.Runs = 1
	// Don't run the whole table — just verify the skip predicate via a
	// minimal hand-rolled variant: class C, 1 node.
	tab, err := nasPow2Table(Config{Runs: 1, Seed: 1, Quick: true}, 3, smistudy.FT,
		"t", func(c smistudy.Class, n int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row.One != nil {
			t.Fatal("skip predicate ignored")
		}
		if row.Four == nil {
			t.Fatal("four half missing")
		}
	}
	out := tab.Render()
	if !strings.Contains(out, "-") {
		t.Error("skipped cells should render as '-'")
	}
}

func TestTable4HTTQuick(t *testing.T) {
	tab, err := Table4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row.Off.SMM0 <= 0 || row.On.SMM0 <= 0 {
			t.Fatal("empty cells")
		}
	}
	out := tab.Render()
	if !strings.Contains(out, "ht=1") || !strings.Contains(out, "Table 4") {
		t.Error("render wrong")
	}
}

func TestFigure1Quick(t *testing.T) {
	fig, err := Figure1Convolve(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 2 behaviours × 3 cpus × 3 intervals.
	if len(fig.Points) != 18 {
		t.Fatalf("points = %d, want 18", len(fig.Points))
	}
	// At 50 ms intervals the run must be much slower than at 1500 ms.
	byKey := map[[3]int]float64{}
	for _, p := range fig.Points {
		byKey[[3]int{int(p.Behavior), p.CPUs, p.IntervalMS}] = p.Seconds
	}
	for _, beh := range []smistudy.CacheBehavior{smistudy.CacheFriendly, smistudy.CacheUnfriendly} {
		fast := byKey[[3]int{int(beh), 4, 1500}]
		slow := byKey[[3]int{int(beh), 4, 50}]
		if slow < fast*1.5 {
			t.Errorf("%v: 50ms run (%.2fs) not ≫ 1500ms run (%.2fs)", beh, slow, fast)
		}
	}
	left := fig.Left(smistudy.CacheUnfriendly)
	right := fig.Right(smistudy.CacheUnfriendly)
	if !strings.Contains(left, "4 CPUs") || !strings.Contains(right, "50 ms") {
		t.Error("figure renders missing series")
	}
	if !strings.Contains(fig.CSV(), "behavior,cpus,interval_ms") {
		t.Error("CSV header wrong")
	}
}

func TestFigure2Quick(t *testing.T) {
	fig, err := Figure2UnixBench(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 3 cpus × 2 intervals × 1 iteration.
	if len(fig.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(fig.Points))
	}
	score := map[[2]int]float64{}
	for _, p := range fig.Points {
		score[[2]int{p.CPUs, p.IntervalMS}] = p.Score
	}
	// Frequent long SMIs must lower the score; more CPUs must raise it.
	if score[[2]int{4, 100}] >= score[[2]int{4, 1600}] {
		t.Errorf("100ms score %.1f not below 1600ms score %.1f", score[[2]int{4, 100}], score[[2]int{4, 1600}])
	}
	if score[[2]int{4, 1600}] <= score[[2]int{1, 1600}] {
		t.Error("score did not grow with CPUs")
	}
	if !strings.Contains(fig.Render(), "Figure 2") {
		t.Error("render missing title")
	}
	if !strings.Contains(fig.CSV(), "cpus,interval_ms") {
		t.Error("CSV wrong")
	}
}

func TestSweep(t *testing.T) {
	s := sweep(50, 200, 50)
	if len(s) != 4 || s[0] != 50 || s[3] != 200 {
		t.Fatalf("sweep = %v", s)
	}
}
