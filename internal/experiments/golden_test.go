package experiments

// Golden equivalence: the parallel sweep runner's determinism contract
// is that worker count never changes a byte of output. Each test runs
// the same quick-scale sweep sequentially and with 4 workers and
// compares both the rendered text and the JSON encoding.

import "testing"

func goldenCfg(workers int) Config {
	return Config{Quick: true, Seed: 7, Workers: workers}
}

// assertSameJSON compares the ToJSON encodings of two results.
func assertSameJSON(t *testing.T, seq, par any) {
	t.Helper()
	js, err := ToJSON(seq)
	if err != nil {
		t.Fatalf("ToJSON(seq): %v", err)
	}
	jp, err := ToJSON(par)
	if err != nil {
		t.Fatalf("ToJSON(par): %v", err)
	}
	if js != jp {
		t.Errorf("JSON differs between workers=1 and workers=4:\nseq:\n%s\npar:\n%s", js, jp)
	}
}

func TestGoldenTable1ParallelEquivalence(t *testing.T) {
	seq, err := Table1(goldenCfg(1))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Table1(goldenCfg(4))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Render() != par.Render() {
		t.Errorf("rendered Table 1 differs between workers=1 and workers=4:\nseq:\n%s\npar:\n%s",
			seq.Render(), par.Render())
	}
	assertSameJSON(t, seq, par)
}

func TestGoldenFigure1ParallelEquivalence(t *testing.T) {
	seq, err := Figure1Convolve(goldenCfg(1))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Figure1Convolve(goldenCfg(4))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.CSV() != par.CSV() {
		t.Errorf("Figure 1 CSV differs between workers=1 and workers=4:\nseq:\n%s\npar:\n%s",
			seq.CSV(), par.CSV())
	}
	assertSameJSON(t, seq, par)
}

func TestGoldenFigure2ParallelEquivalence(t *testing.T) {
	seq, err := Figure2UnixBench(goldenCfg(1))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Figure2UnixBench(goldenCfg(4))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Render() != par.Render() {
		t.Errorf("rendered Figure 2 differs between workers=1 and workers=4")
	}
	assertSameJSON(t, seq, par)
}

func TestGoldenFaultStudyParallelEquivalence(t *testing.T) {
	seq, err := FaultStudy(goldenCfg(1))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := FaultStudy(goldenCfg(4))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq != par {
		t.Errorf("fault study report differs between workers=1 and workers=4:\nseq:\n%s\npar:\n%s", seq, par)
	}
}
