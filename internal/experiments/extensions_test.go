package experiments

import (
	"strings"
	"testing"

	"smistudy"
)

func TestRIMTradeoffQuick(t *testing.T) {
	out, err := RIMTradeoff(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"whole (25 MB)", "256 KiB", "worst stall"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEnergyStudy(t *testing.T) {
	out, err := EnergyStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SMM1") || !strings.Contains(out, "SMM2") {
		t.Errorf("missing levels:\n%s", out)
	}
}

func TestDriftStudyQuick(t *testing.T) {
	out, err := DriftStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ppm") {
		t.Errorf("missing ppm column:\n%s", out)
	}
}

func TestProfilerStudy(t *testing.T) {
	out, err := ProfilerStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"drop-in-SMM", "defer-to-exit", "heavy", "light"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExtendedNASQuick(t *testing.T) {
	out, err := ExtendedNAS(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CG", "IS", "long impact"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONMarshaling(t *testing.T) {
	tab, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	out, err := ToJSON(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"table": 2`, `"bench": "EP"`, `"one_rank_per_node"`, `"long_pct"`} {
		if !strings.Contains(out, want) {
			t.Errorf("table JSON missing %s", want)
		}
	}

	htt, err := Table4(quick())
	if err != nil {
		t.Fatal(err)
	}
	out, err = ToJSON(htt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ht1"`) {
		t.Error("HTT JSON missing ht1")
	}

	f1, err := Figure1Convolve(quick())
	if err != nil {
		t.Fatal(err)
	}
	out, err = ToJSON(f1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"figure": 1`) || !strings.Contains(out, `"behavior"`) {
		t.Error("figure1 JSON malformed")
	}

	f2, err := Figure2UnixBench(quick())
	if err != nil {
		t.Fatal(err)
	}
	out, err = ToJSON(f2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"figure": 2`) || !strings.Contains(out, `"score"`) {
		t.Error("figure2 JSON malformed")
	}
}

func TestJSONSkippedCellsAreNull(t *testing.T) {
	tab, err := nasPow2Table(Config{Runs: 1, Seed: 1, Quick: true}, 3, smistudy.FT,
		"t", func(c smistudy.Class, n int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	out, err := ToJSON(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"one_rank_per_node": null`) {
		t.Errorf("skipped halves should be null:\n%s", out)
	}
}

func TestAmplificationStudyQuick(t *testing.T) {
	out, err := AmplificationStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "amplification") || !strings.Contains(out, "EP") {
		t.Errorf("amplification output malformed:\n%s", out)
	}
}

func TestModelStudyQuick(t *testing.T) {
	out, err := ModelStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sim/model") || !strings.Contains(out, "superstep") {
		t.Errorf("model study malformed:\n%s", out)
	}
}

func TestCompareAgainstPaper(t *testing.T) {
	out, err := Compare(quick(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"paper SMM0", "ours long %", "baseline error"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
	if _, err := Compare(quick(), 9); err == nil {
		t.Error("table 9 accepted")
	}
}
