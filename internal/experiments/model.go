package experiments

import (
	"smistudy/internal/analytic"
	"smistudy/internal/metrics"
	"smistudy/internal/runner"
	"smistudy/internal/sim"
)

// ModelRow is one simulated-vs-analytic comparison cell: a
// barrier-synchronized workload measured by the simulator next to the
// closed-form prediction for the same schedule.
type ModelRow struct {
	Nodes    int     `json:"nodes"`
	Step     string  `json:"superstep"`
	Serial   bool    `json:"serial"`
	BaseS    float64 `json:"base_s"`
	SimRunS  float64 `json:"simulated_s"`
	PredictS float64 `json:"analytic_s"`
	Residual float64 `json:"sim_over_model"`
}

// ModelResult is the structured model-vs-simulator study.
type ModelResult struct {
	Rows []ModelRow `json:"rows"`
}

// Residuals exposes the rows as analytic residual checks.
func (m ModelResult) Residuals() []analytic.Residual {
	rs := make([]analytic.Residual, 0, len(m.Rows))
	for _, r := range m.Rows {
		rs = append(rs, analytic.Residual{Simulated: r.SimRunS, Predicted: r.PredictS})
	}
	return rs
}

// ModelData measures the closed-form analytic noise models
// (internal/analytic) against the simulator across superstep lengths and
// node counts, returning the per-cell results for programmatic
// consumption (the fidelity harness gates on the residuals).
func ModelData(cfg Config) (ModelResult, error) {
	type cell struct {
		nodes  int
		step   sim.Time
		steps  int
		serial bool
	}
	cells := []cell{
		{1, 30 * sim.Second, 1, true},
		{4, 50 * sim.Millisecond, 120, false},
		{4, 200 * sim.Millisecond, 40, false},
		{4, 2 * sim.Second, 6, false},
		{8, 200 * sim.Millisecond, 40, false},
		{16, 500 * sim.Millisecond, 16, false},
	}
	if cfg.Quick {
		cells = []cell{{1, 10 * sim.Second, 1, true}, {4, 200 * sim.Millisecond, 20, false}}
	}
	sched := analytic.Schedule{Period: sim.Second, Duration: 105 * sim.Millisecond}
	seeds := []int64{1, 2, 3}
	if cfg.Quick {
		seeds = seeds[:1]
	}

	var out ModelResult
	for _, c := range cells {
		var meas metrics.Stream
		for _, seed := range seeds {
			meas.Add(simulateBSP(seed+cfg.seed()-1, c.nodes, c.step, c.steps, cfg.SMIScale).Seconds())
		}
		var predicted, base float64
		if c.serial {
			base = (sim.Time(c.steps) * c.step).Seconds()
			predicted = sched.SerialSlowdown(sim.Time(c.steps) * c.step).Seconds()
		} else {
			m := analytic.BSP{Nodes: c.nodes, Step: c.step, Steps: c.steps}
			base = m.BaseTime().Seconds()
			predicted = m.ExpectedTime(sched).Seconds()
		}
		out.Rows = append(out.Rows, ModelRow{
			Nodes: c.nodes, Step: c.step.String(), Serial: c.serial,
			BaseS: base, SimRunS: meas.Mean(), PredictS: predicted,
			Residual: meas.Mean() / predicted,
		})
	}
	return out, nil
}

// Render prints the study in its report layout.
func (m ModelResult) Render() string {
	tab := metrics.NewTable("nodes", "superstep", "base (s)", "simulated (s)", "analytic (s)", "sim/model")
	for _, r := range m.Rows {
		tab.AddRow(r.Nodes, r.Step, r.BaseS, r.SimRunS, r.PredictS, r.Residual)
	}
	return "Closed-form noise models vs the simulator (long SMIs at 1/s,\n" +
		"fixed 105 ms duration, barrier-synchronized supersteps):\n\n" +
		tab.String() +
		"\nsim/model ≈ 1 everywhere means the discrete-event platform and the\n" +
		"analytic theory agree on how SMM noise scales with superstep length\n" +
		"and node count.\n"
}

// ModelStudy compares the closed-form analytic noise models against the
// simulator — the cross-validation that ties the whole platform to
// first principles — and renders the comparison.
func ModelStudy(cfg Config) (string, error) {
	m, err := ModelData(cfg)
	if err != nil {
		return "", err
	}
	return m.Render(), nil
}

// simulateBSP runs a synthetic barrier-synchronized workload.
func simulateBSP(seed int64, nodes int, step sim.Time, steps int, smiScale float64) sim.Time {
	return runner.SimulateBSP(seed, nodes, step, steps, smiScale)
}
