package experiments

import (
	"fmt"
	"math"
	"strings"

	"smistudy/internal/metrics"
	"smistudy/internal/paperdata"
)

// Compare regenerates Table 1, 2 or 3 and joins it against the paper's
// published values, reporting per-cell deltas — the quantitative core of
// EXPERIMENTS.md, as a query.
func Compare(cfg Config, table int) (string, error) {
	var (
		t   NASTable
		err error
	)
	switch table {
	case 1:
		t, err = Table1(cfg)
	case 2:
		t, err = Table2(cfg)
	case 3:
		t, err = Table3(cfg)
	default:
		return "", fmt.Errorf("experiments: Compare supports tables 1-3, got %d", table)
	}
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Comparison against the paper's Table %d (long-SMM impact):\n\n", table)
	tab := metrics.NewTable("class", "nodes", "rpn",
		"paper SMM0", "ours SMM0", "base err %",
		"paper long %", "ours long %")
	var baseErr, matched metrics.Stream
	for _, row := range t.Rows {
		for _, half := range []struct {
			rpn int
			tr  *Triple
		}{{1, row.One}, {4, row.Four}} {
			if half.tr == nil {
				continue
			}
			p := paperdata.Find(string(t.Bench), byte(row.Class), row.Nodes, half.rpn)
			if p == nil {
				continue
			}
			be := metrics.PercentChange(p.SMM0, half.tr.SMM0)
			tab.AddRow(string(row.Class), row.Nodes, half.rpn,
				p.SMM0, half.tr.SMM0, be,
				p.PctLong(), half.tr.PctLong())
			baseErr.Add(math.Abs(be))
			if sameSign(p.PctLong(), half.tr.PctLong()) {
				matched.Add(1)
			} else {
				matched.Add(0)
			}
		}
	}
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\nmean |baseline error| = %.1f%%; long-SMM impact direction agrees in %.0f%% of cells\n",
		baseErr.Mean(), matched.Mean()*100)
	return b.String(), nil
}

func sameSign(a, b float64) bool {
	// Treat anything within ±2% as "no effect" so near-zero cells on
	// both sides count as agreement.
	const eps = 2.0
	if math.Abs(a) < eps && math.Abs(b) < eps {
		return true
	}
	return a*b > 0
}
