package experiments

import (
	"errors"
	"fmt"
	"strings"

	"smistudy"
	"smistudy/internal/faults"
	"smistudy/internal/metrics"
	"smistudy/internal/nas"
	"smistudy/internal/parsweep"
	"smistudy/internal/runner"
	"smistudy/internal/sim"
)

// FaultStudy extends the paper's noise framework from SMIs to cluster
// faults: message loss absorbed by retransmission, single-node
// degradation amplified through synchronization, and crash scenarios
// turned from hangs into bounded, attributed failures. The common
// thread is the paper's amplification mechanism — a blocking collective
// ends at the *worst* node, so one faulty node bills the whole cluster
// (the max-over-nodes shape internal/analytic formalizes for SMM
// noise).
func FaultStudy(cfg Config) (string, error) {
	var b strings.Builder
	loss, err := lossSweep(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(loss)
	amp, err := degradeAmplification(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString("\n" + amp)
	crash, err := crashTiming(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString("\n" + crash)
	return b.String(), nil
}

// lossSweep runs the benchmarks over increasingly lossy fabrics: the
// reliable transport must complete every run, paying for the loss in
// retransmissions and time.
func lossSweep(cfg Config) (string, error) {
	benches := []smistudy.Benchmark{smistudy.EP, smistudy.BT, smistudy.FT}
	rates := []float64{0, 0.001, 0.01, 0.05}
	if cfg.Quick {
		benches = benches[:1]
		rates = []float64{0, 0.01}
	}
	type lossPoint struct {
		bench smistudy.Benchmark
		rate  float64
	}
	var pts []lossPoint
	for _, bench := range benches {
		for _, p := range rates {
			pts = append(pts, lossPoint{bench, p})
		}
	}
	results, err := parsweep.Run(cfg.ctx(), pts, cfg.Workers, func(pt lossPoint) (smistudy.NASResult, error) {
		opts := smistudy.NASOptions{
			Bench: pt.bench, Class: smistudy.ClassA,
			Nodes: 4, RanksPerNode: 1, Seed: cfg.seed(),
			Tracer: cfg.Tracer,
		}
		if pt.rate > 0 {
			opts.Faults = &smistudy.FaultPlan{LossProb: pt.rate}
		}
		res, err := smistudy.RunNAS(opts)
		if err != nil {
			return smistudy.NASResult{}, fmt.Errorf("experiments: %s.A at %.1f%% loss: %w", pt.bench, pt.rate*100, err)
		}
		return res, nil
	})
	if err != nil {
		return "", err
	}
	tab := metrics.NewTable("bench", "loss %", "time (s)", "slowdown %", "drops", "retransmits")
	var base float64
	for i, pt := range pts {
		res := results[i]
		sec := res.MeanTime.Seconds()
		if pt.rate == 0 {
			base = sec
		}
		tab.AddRow(string(pt.bench), pt.rate*100, sec,
			metrics.PercentChange(base, sec), res.Dropped, res.Retransmits)
	}
	return "Loss sweep (class A, 4 nodes, ack/retransmit transport when lossy;\n" +
		"the 0% rows are the fire-and-forget baseline, so their slowdown\n" +
		"column also prices the ack protocol itself):\n\n" + tab.String(), nil
}

// faultedNASRun runs one benchmark over an explicit fault schedule,
// reporting the result plus the total SMM residency the faults
// injected.
func faultedNASRun(seed int64, spec nas.Spec, nodes int, sched faults.Schedule) (nas.Result, sim.Time, error) {
	return runner.FaultedNAS(seed, spec, nodes, sched)
}

// DegradeResult is the structured single-node fault-amplification
// study: one degraded node vs a fully degraded fabric vs an SMI storm
// on one node, all against the clean baseline. OneShare near 1 is the
// max-over-nodes shape the analytic model predicts (one bad node bills
// the whole cluster); 1/Nodes would be proportional resource sharing.
type DegradeResult struct {
	Spec       string  `json:"spec"`
	Nodes      int     `json:"nodes"`
	CleanS     float64 `json:"clean_s"`
	OneS       float64 `json:"one_degraded_s"`
	AllS       float64 `json:"all_degraded_s"`
	StormS     float64 `json:"storm_s"`
	StormResid float64 `json:"storm_residency_s"`
	// OneShare is (one − clean) / (all − clean): the fraction of the
	// whole-fabric cost a single bad node already causes.
	OneShare float64 `json:"one_share"`
	// StormShare is (storm − clean) / injected residency on the noisy
	// node: ≈1 when the job pays that node's bill in full.
	StormShare float64 `json:"storm_share"`
}

// DegradeData measures the max-over-nodes shape on a synchronized
// benchmark: degrading the links into ONE of n nodes costs nearly as
// much as degrading every link, because each iteration's exchange ends
// at the slowest link either way. It cross-checks the same shape with
// an SMI storm on one node: the whole job pays that node's residency in
// full (amplification ≈ 1 × the faulty node's bill, not 1/n of it).
func DegradeData(cfg Config) (DegradeResult, error) {
	const nodes = 4
	spec := nas.Spec{Bench: nas.BT, Class: nas.ClassA}
	if cfg.Quick {
		spec.Class = nas.ClassS
	}
	slow := faults.DegradeNodeLinks(1, 0, 0, 4, 200*sim.Microsecond)

	var one faults.Schedule
	one.Add(slow)
	var all faults.Schedule
	allSlow := slow
	allSlow.Dst = faults.Wildcard
	all.Add(allSlow)
	var storm faults.Schedule
	storm.Add(faults.StormAt(1, 0, 0, 10))

	type faultedOut struct {
		res       nas.Result
		residency sim.Time
	}
	scheds := []faults.Schedule{{}, one, all, storm}
	outs, err := parsweep.Run(cfg.ctx(), scheds, cfg.Workers, func(s faults.Schedule) (faultedOut, error) {
		res, residency, err := faultedNASRun(cfg.seed(), spec, nodes, s)
		return faultedOut{res, residency}, err
	})
	if err != nil {
		return DegradeResult{}, err
	}
	clean, oneRes, allRes, stormRes := outs[0].res, outs[1].res, outs[2].res, outs[3].res
	stormResidency := outs[3].residency
	stormExtra := stormRes.Time - clean.Time
	stormShare := 0.0
	if stormResidency > 0 {
		stormShare = stormExtra.Seconds() / stormResidency.Seconds()
	}
	oneExtra := (oneRes.Time - clean.Time).Seconds()
	allExtra := (allRes.Time - clean.Time).Seconds()
	ratio := 0.0
	if allExtra > 0 {
		ratio = oneExtra / allExtra
	}
	return DegradeResult{
		Spec: spec.String(), Nodes: nodes,
		CleanS: clean.Time.Seconds(), OneS: oneRes.Time.Seconds(),
		AllS: allRes.Time.Seconds(), StormS: stormRes.Time.Seconds(),
		StormResid: stormResidency.Seconds(),
		OneShare:   ratio, StormShare: stormShare,
	}, nil
}

// Render prints the study in its report layout.
func (d DegradeResult) Render() string {
	tab := metrics.NewTable("scenario", "time (s)", "slowdown %")
	tab.AddRow("clean", d.CleanS, 0.0)
	tab.AddRow("degrade links into node 1 (4x + 200 us)", d.OneS,
		metrics.PercentChange(d.CleanS, d.OneS))
	tab.AddRow("degrade every link", d.AllS,
		metrics.PercentChange(d.CleanS, d.AllS))
	tab.AddRow("SMI storm on node 1 (short SMI / 10 jiffies)", d.StormS,
		metrics.PercentChange(d.CleanS, d.StormS))
	return fmt.Sprintf(
		"Single-node fault amplification (%s, %d nodes):\n\n%s\n"+
			"One degraded node costs %.0f%% of degrading the whole fabric\n"+
			"(resource share would predict %.0f%%): every exchange ends at the\n"+
			"slowest link — the analytic model's max-over-nodes bound. The SMI\n"+
			"storm confirms it: the job stretched by %.2f s against %.2f s of\n"+
			"residency injected on one node (share %.2f; 1/n sharing would\n"+
			"predict %.2f).\n",
		d.Spec, d.Nodes, tab.String(),
		d.OneShare*100, 100.0/float64(d.Nodes),
		d.StormS-d.CleanS, d.StormResid, d.StormShare, 1.0/float64(d.Nodes))
}

// degradeAmplification renders DegradeData for FaultStudy.
func degradeAmplification(cfg Config) (string, error) {
	d, err := DegradeData(cfg)
	if err != nil {
		return "", err
	}
	return d.Render(), nil
}

// crashTiming crashes one node at several points of an EP run and
// reports how the failure surfaces: ErrPeerUnreachable from the
// retransmission protocol when a rank was actively talking to the dead
// node, or a watchdog no-progress report when every survivor was merely
// waiting. Either way the run ends at a bounded simulated time instead
// of hanging.
func crashTiming(cfg Config) (string, error) {
	base, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 4, RanksPerNode: 1, Seed: cfg.seed(),
		Tracer: cfg.Tracer,
	})
	if err != nil {
		return "", err
	}
	fractions := []float64{0.25, 0.75}
	if cfg.Quick {
		fractions = fractions[:1]
	}
	// The crash error is the measured outcome, not a sweep failure, so it
	// rides inside the payload instead of aborting the pool.
	type crashOut struct {
		res smistudy.NASResult
		err error
	}
	outs, poolErr := parsweep.Run(cfg.ctx(), fractions, cfg.Workers, func(frac float64) (crashOut, error) {
		crashAt := sim.FromSeconds(base.MeanTime.Seconds() * frac)
		res, err := smistudy.RunNAS(smistudy.NASOptions{
			Bench: smistudy.EP, Class: smistudy.ClassA,
			Nodes: 4, RanksPerNode: 1, Seed: cfg.seed(),
			Watchdog: 10 * sim.Second,
			Faults:   &smistudy.FaultPlan{CrashNode: 1, CrashAt: crashAt},
			Tracer:   cfg.Tracer,
		})
		return crashOut{res, err}, nil
	})
	if poolErr != nil {
		return "", poolErr
	}
	tab := metrics.NewTable("crash at", "outcome", "detected after (s)", "retransmits")
	for i, frac := range fractions {
		crashAt := sim.FromSeconds(base.MeanTime.Seconds() * frac)
		res, err := outs[i].res, outs[i].err
		var np *smistudy.NoProgressError
		outcome := "completed"
		detected := "-"
		switch {
		case err == nil:
			// A crash after the job's communication epilogue is
			// survivable; report it as such.
		case errors.Is(err, smistudy.ErrPeerUnreachable):
			outcome = "peer unreachable"
			if errors.As(err, &np) && np.At > crashAt {
				detected = fmt.Sprintf("%.2f", (np.At - crashAt).Seconds())
			}
		case errors.As(err, &np):
			outcome = "watchdog: no progress"
			if np.At > crashAt {
				detected = fmt.Sprintf("%.2f", (np.At - crashAt).Seconds())
			}
		default:
			return "", err
		}
		tab.AddRow(fmt.Sprintf("%.0f%% of the run", frac*100), outcome, detected, res.Retransmits)
	}
	return fmt.Sprintf(
		"Crash timing (EP.A, 4 nodes, node 1 crashes mid-run; baseline\n"+
			"%.2f s): a run against a dead peer now fails with an attributed\n"+
			"error in bounded simulated time instead of deadlocking.\n\n%s",
		base.MeanTime.Seconds(), tab.String()), nil
}
