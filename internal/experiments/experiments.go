// Package experiments regenerates every table and figure in the paper's
// evaluation: Tables 1–3 (BT/EP/FT under no/short/long SMM), Tables 4–5
// (the HTT effect on EP/FT), Figure 1 (Convolve vs SMI interval and CPU
// configuration) and Figure 2 (UnixBench score vs SMI interval). Each
// generator returns structured data plus renderers that print the same
// rows and series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"smistudy"
	"smistudy/internal/durable"
	"smistudy/internal/metrics"
	"smistudy/internal/parsweep"
	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

// Config scopes a regeneration run.
type Config struct {
	// Runs per cell (the paper averages six MPI runs, three Convolve
	// runs). Zero selects the paper's counts.
	Runs int
	// Seed bases the deterministic seeds.
	Seed int64
	// Quick shrinks grids (class A only, fewer sweep points) for smoke
	// tests and benchmarks.
	Quick bool
	// Workers fans the sweep's independent cells over this many OS
	// threads (each cell builds its own simulation engine, so any
	// worker count produces byte-identical output). ≤ 1 runs
	// sequentially; the CLIs resolve their -parallel flag to all CPUs
	// before it reaches here.
	Workers int
	// SMIScale multiplies every injected SMI's duration range when > 0
	// and ≠ 1. The fidelity harness uses it as a deliberate physics
	// perturbation to prove its tolerance gates trip; zero reproduces
	// the paper's calibrated durations byte-for-byte.
	SMIScale float64
	// Tracer, when non-nil, is threaded into every cell of every sweep
	// so one bus observes the whole experiment; cells stamp their
	// events with per-run indices. Must be concurrency-safe (an
	// *obs.Bus is) when Workers > 1.
	Tracer smistudy.Tracer
	// Ctx cancels the run: a canceled context stops claiming new sweep
	// cells and the generators return the context error. Nil means
	// context.Background().
	Ctx context.Context
	// Store, when non-nil, checkpoints every finished sweep cell of the
	// table/figure generators so a killed regeneration resumes instead
	// of restarting (see internal/durable).
	Store *durable.Store
	// Resume permits replaying store-cached cells byte-identically.
	Resume bool
	// CellTimeout bounds each durable cell's wall-clock time (0 = none).
	CellTimeout time.Duration
	// Retries re-runs transiently-failed cells with exponential backoff.
	Retries int
	// Dispatch, when non-nil, is the analytic fast-path dispatcher every
	// sweep cell consults before building an engine (see runner
	// dispatch.go). One dispatcher spans the whole run so region
	// evidence is shared across sweeps. Nil means -fastpath off.
	Dispatch *runner.Dispatcher
	// Stats, when non-nil, accumulates execution accounting across every
	// cell of every sweep: cells dispatched, simulated runs, engine
	// events, fast-path hits and misses.
	Stats *runner.ExecStats
	// Shards is the per-cell engine shard count (see runner.Exec.Shards).
	Shards int
}

// ctx resolves the run's context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// durableOptions lowers the Config's robustness knobs for the durable
// sweep layer.
func (c Config) durableOptions() durable.Options {
	return durable.Options{
		Store:       c.Store,
		Resume:      c.Resume,
		Workers:     c.Workers,
		CellTimeout: c.CellTimeout,
		Retry:       durable.Policy{MaxRetries: c.Retries},
		Tracer:      c.Tracer,
		Dispatch:    c.Dispatch,
		Stats:       c.Stats,
		Shards:      c.Shards,
	}
}

func (c Config) runs(def int) int {
	if c.Runs > 0 {
		return c.Runs
	}
	if c.Quick {
		return 1
	}
	return def
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

// Triple holds one cell's three SMM levels, in seconds.
type Triple struct {
	SMM0, SMM1, SMM2 float64
}

// DeltaShort reports SMM1−SMM0.
func (t Triple) DeltaShort() float64 { return t.SMM1 - t.SMM0 }

// PctShort reports the short-SMM percent change.
func (t Triple) PctShort() float64 { return metrics.PercentChange(t.SMM0, t.SMM1) }

// DeltaLong reports SMM2−SMM0.
func (t Triple) DeltaLong() float64 { return t.SMM2 - t.SMM0 }

// PctLong reports the long-SMM percent change.
func (t Triple) PctLong() float64 { return metrics.PercentChange(t.SMM0, t.SMM2) }

// NASRow is one (class, node-count) row of Tables 1–3.
type NASRow struct {
	Class smistudy.Class
	Nodes int
	// One and Four are the 1-rank-per-node and 4-ranks-per-node halves;
	// a nil half was not measured (the paper leaves FT.C × {1,2} nodes
	// × 1 rank blank).
	One, Four *Triple
}

// NASTable is a regenerated Table 1, 2 or 3.
type NASTable struct {
	Number int
	Title  string
	Bench  smistudy.Benchmark
	Rows   []NASRow
}

// nasCellPoint is one independent sweep unit of the MPI tables: a
// single (benchmark, class, nodes, ranks/node, HTT, SMM level)
// configuration. Tables flatten their grids into these points, fan them
// over cfg.Workers with parsweep, and reassemble rows in input order —
// so the rendered output is byte-identical to the nested sequential
// loops this replaces.
type nasCellPoint struct {
	bench smistudy.Benchmark
	class smistudy.Class
	nodes int
	rpn   int
	htt   bool
	level smistudy.SMMLevel
}

// levels expands one table cell into its three SMM-level points.
func levels(b smistudy.Benchmark, cl smistudy.Class, nodes, rpn int, htt bool) []nasCellPoint {
	pts := make([]nasCellPoint, 0, 3)
	for _, lv := range []smistudy.SMMLevel{smistudy.SMM0, smistudy.SMM1, smistudy.SMM2} {
		pts = append(pts, nasCellPoint{bench: b, class: cl, nodes: nodes, rpn: rpn, htt: htt, level: lv})
	}
	return pts
}

// levelName maps an injection level to its scenario spelling.
func levelName(lv smistudy.SMMLevel) string {
	switch lv {
	case smistudy.SMM1:
		return "short"
	case smistudy.SMM2:
		return "long"
	default:
		return "none"
	}
}

// runNASCells measures every point through the durable sweep layer —
// per-cell isolation, optional checkpoint/resume — returning each
// point's mean runtime in seconds in input order. The declarative specs
// lower onto exactly the typed RunNAS call this replaces, so the output
// is byte-identical with or without a store, for any worker count.
func runNASCells(cfg Config, pts []nasCellPoint) ([]float64, error) {
	specs := make([]scenario.Spec, len(pts))
	for i, p := range pts {
		specs[i] = scenario.Spec{
			Workload: "nas",
			Machine:  scenario.Machine{Nodes: p.nodes, RanksPerNode: p.rpn, HTT: p.htt},
			SMM:      scenario.SMMPlan{Level: levelName(p.level), SMIScale: cfg.SMIScale},
			Runs:     cfg.runs(6),
			Seed:     cfg.seed(),
			Params:   scenario.Params{Bench: string(p.bench), Class: string(p.class)},
		}
	}
	ms, errs, _ := durable.RunSpecs(cfg.ctx(), specs, cfg.durableOptions())
	if err := parsweep.FirstError(errs); err != nil {
		return nil, err
	}
	secs := make([]float64, len(ms))
	for i, m := range ms {
		secs[i] = m.NAS.Seconds()
	}
	return secs, nil
}

// tripleReader walks a runNASCells result slice three seconds at a time.
type tripleReader struct {
	secs []float64
	k    int
}

func (r *tripleReader) next() *Triple {
	tr := Triple{SMM0: r.secs[r.k], SMM1: r.secs[r.k+1], SMM2: r.secs[r.k+2]}
	r.k += 3
	return &tr
}

func (c Config) classes() []smistudy.Class {
	if c.Quick {
		return []smistudy.Class{smistudy.ClassA}
	}
	return []smistudy.Class{smistudy.ClassA, smistudy.ClassB, smistudy.ClassC}
}

// Table1 regenerates Table 1: BT with no/short/long SMM intervals over
// square rank counts.
func Table1(cfg Config) (NASTable, error) {
	t := NASTable{Number: 1, Bench: smistudy.BT,
		Title: "Table 1: BT Benchmark with no (0), short (1) and long (2) SMM intervals"}
	nodes := []int{1, 4, 16}
	if cfg.Quick {
		nodes = []int{1, 4}
	}
	var pts []nasCellPoint
	for _, class := range cfg.classes() {
		for _, n := range nodes {
			pts = append(pts, levels(smistudy.BT, class, n, 1, false)...)
			pts = append(pts, levels(smistudy.BT, class, n, 4, false)...)
		}
	}
	secs, err := runNASCells(cfg, pts)
	if err != nil {
		return t, err
	}
	rd := tripleReader{secs: secs}
	for _, class := range cfg.classes() {
		for _, n := range nodes {
			row := NASRow{Class: class, Nodes: n}
			row.One = rd.next()
			row.Four = rd.next()
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Table2 regenerates Table 2: EP with no/short/long SMM intervals.
func Table2(cfg Config) (NASTable, error) {
	return nasPow2Table(cfg, 2, smistudy.EP,
		"Table 2: EP Benchmark with no (0), short (1) and long (2) SMM intervals", nil)
}

// Table3 regenerates Table 3: FT with no/short/long SMM intervals. The
// paper leaves FT.C on 1 and 2 nodes × 1 rank/node unmeasured; those
// halves are nil here too.
func Table3(cfg Config) (NASTable, error) {
	skipOne := func(class smistudy.Class, nodes int) bool {
		return class == smistudy.ClassC && nodes <= 2
	}
	return nasPow2Table(cfg, 3, smistudy.FT,
		"Table 3: FT Benchmark with no (0), short (1) and long (2) SMM intervals", skipOne)
}

func nasPow2Table(cfg Config, number int, b smistudy.Benchmark, title string, skipOne func(smistudy.Class, int) bool) (NASTable, error) {
	t := NASTable{Number: number, Bench: b, Title: title}
	nodes := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		nodes = []int{1, 4}
	}
	var pts []nasCellPoint
	for _, class := range cfg.classes() {
		for _, n := range nodes {
			if skipOne == nil || !skipOne(class, n) {
				pts = append(pts, levels(b, class, n, 1, false)...)
			}
			pts = append(pts, levels(b, class, n, 4, false)...)
		}
	}
	secs, err := runNASCells(cfg, pts)
	if err != nil {
		return t, err
	}
	rd := tripleReader{secs: secs}
	for _, class := range cfg.classes() {
		for _, n := range nodes {
			row := NASRow{Class: class, Nodes: n}
			if skipOne == nil || !skipOne(class, n) {
				row.One = rd.next()
			}
			row.Four = rd.next()
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Render prints the table in the paper's layout.
func (t NASTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", t.Title)
	for _, half := range []struct {
		name string
		get  func(NASRow) *Triple
	}{
		{"1 MPI rank per node", func(r NASRow) *Triple { return r.One }},
		{"4 MPI ranks per node", func(r NASRow) *Triple { return r.Four }},
	} {
		fmt.Fprintf(&b, "  [%s]\n", half.name)
		tab := metrics.NewTable("class", "nodes", "SMM0", "SMM1", "d1", "%1", "SMM2", "d2", "%2")
		for _, row := range t.Rows {
			tr := half.get(row)
			if tr == nil {
				tab.AddRow(string(row.Class), row.Nodes, "-", "-", "-", "-", "-", "-", "-")
				continue
			}
			tab.AddRow(string(row.Class), row.Nodes,
				tr.SMM0, tr.SMM1, tr.DeltaShort(), tr.PctShort(),
				tr.SMM2, tr.DeltaLong(), tr.PctLong())
		}
		b.WriteString(indent(tab.String(), "  "))
		b.WriteByte('\n')
	}
	return b.String()
}

// HTTRow is one row of Tables 4–5: ht=0 vs ht=1 per SMM level.
type HTTRow struct {
	Class smistudy.Class
	Nodes int
	// Off and On are the ht=0 and ht=1 triples.
	Off, On Triple
}

// HTTTable is a regenerated Table 4 or 5.
type HTTTable struct {
	Number int
	Title  string
	Bench  smistudy.Benchmark
	Rows   []HTTRow
}

// Table4 regenerates Table 4: the effect of HTT on EP with 4 ranks/node.
func Table4(cfg Config) (HTTTable, error) {
	return httTable(cfg, 4, smistudy.EP, "Table 4: Effect of HTT on EP with 4 MPI ranks per node")
}

// Table5 regenerates Table 5: the effect of HTT on FT with 4 ranks/node.
func Table5(cfg Config) (HTTTable, error) {
	return httTable(cfg, 5, smistudy.FT, "Table 5: Effect of HTT on FT with 4 MPI Ranks Per Node")
}

func httTable(cfg Config, number int, b smistudy.Benchmark, title string) (HTTTable, error) {
	t := HTTTable{Number: number, Bench: b, Title: title}
	nodes := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		nodes = []int{1, 4}
	}
	var pts []nasCellPoint
	for _, class := range cfg.classes() {
		for _, n := range nodes {
			pts = append(pts, levels(b, class, n, 4, false)...)
			pts = append(pts, levels(b, class, n, 4, true)...)
		}
	}
	secs, err := runNASCells(cfg, pts)
	if err != nil {
		return t, err
	}
	rd := tripleReader{secs: secs}
	for _, class := range cfg.classes() {
		for _, n := range nodes {
			row := HTTRow{Class: class, Nodes: n}
			row.Off = *rd.next()
			row.On = *rd.next()
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Render prints the table in the paper's layout.
func (t HTTTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", t.Title)
	tab := metrics.NewTable("class", "nodes",
		"SMM0 ht=0", "ht=1", "d",
		"SMM1 ht=0", "ht=1", "d",
		"SMM2 ht=0", "ht=1", "d", "%")
	for _, row := range t.Rows {
		d0 := row.On.SMM0 - row.Off.SMM0
		d1 := row.On.SMM1 - row.Off.SMM1
		d2 := row.On.SMM2 - row.Off.SMM2
		tab.AddRow(string(row.Class), row.Nodes,
			row.Off.SMM0, row.On.SMM0, d0,
			row.Off.SMM1, row.On.SMM1, d1,
			row.Off.SMM2, row.On.SMM2, d2,
			metrics.PercentChange(row.Off.SMM2, row.On.SMM2))
	}
	b.WriteString(tab.String())
	return b.String()
}

// ConvolvePoint is one measured Figure-1 point.
type ConvolvePoint struct {
	Behavior   smistudy.CacheBehavior
	CPUs       int
	IntervalMS int // 0 = no SMIs
	Seconds    float64
	StdDev     float64
}

// Figure1 is the regenerated Convolve study: execution time vs SMI
// interval per CPU configuration (left panels) — the right panels (time
// vs CPU count at 50 ms) are a re-slicing of the same points.
type Figure1 struct {
	Points []ConvolvePoint
}

// Figure1Convolve regenerates Figure 1. The full sweep covers intervals
// 50–1500 ms in 50 ms steps for 1–8 CPUs and both cache behaviours;
// Quick reduces it to a coarse grid.
func Figure1Convolve(cfg Config) (Figure1, error) {
	intervals := sweep(50, 1500, 50)
	cpus := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		intervals = []int{50, 400, 1500}
		cpus = []int{1, 4, 8}
	}
	type convPoint struct {
		beh smistudy.CacheBehavior
		nc  int
		iv  int
	}
	var pts []convPoint
	for _, beh := range []smistudy.CacheBehavior{smistudy.CacheUnfriendly, smistudy.CacheFriendly} {
		for _, nc := range cpus {
			for _, iv := range intervals {
				pts = append(pts, convPoint{beh, nc, iv})
			}
		}
	}
	var fig Figure1
	cacheName := func(beh smistudy.CacheBehavior) string {
		if beh == smistudy.CacheUnfriendly {
			return "unfriendly"
		}
		return "friendly"
	}
	specs := make([]scenario.Spec, len(pts))
	for i, p := range pts {
		specs[i] = scenario.Spec{
			Workload: "convolve",
			Machine:  scenario.Machine{CPUs: p.nc},
			SMM:      scenario.SMMPlan{IntervalMS: p.iv, SMIScale: cfg.SMIScale},
			Runs:     cfg.runs(3),
			Seed:     cfg.seed(),
			Params:   scenario.Params{Cache: cacheName(p.beh)},
		}
	}
	ms, errs, _ := durable.RunSpecs(cfg.ctx(), specs, cfg.durableOptions())
	if err := parsweep.FirstError(errs); err != nil {
		return fig, err
	}
	fig.Points = make([]ConvolvePoint, len(ms))
	for i, m := range ms {
		fig.Points[i] = ConvolvePoint{
			Behavior: pts[i].beh, CPUs: pts[i].nc, IntervalMS: pts[i].iv,
			Seconds: m.Convolve.MeanTime.Seconds(),
			StdDev:  m.Convolve.StdDev.Seconds(),
		}
	}
	return fig, nil
}

// Left renders the time-vs-interval chart for one behaviour.
func (f Figure1) Left(beh smistudy.CacheBehavior) string {
	byCPU := map[int]*metrics.Series{}
	var order []int
	for _, p := range f.Points {
		if p.Behavior != beh {
			continue
		}
		s, ok := byCPU[p.CPUs]
		if !ok {
			s = &metrics.Series{Name: fmt.Sprintf("%d CPUs", p.CPUs)}
			byCPU[p.CPUs] = s
			order = append(order, p.CPUs)
		}
		s.X = append(s.X, float64(p.IntervalMS))
		s.Y = append(s.Y, p.Seconds)
	}
	ch := metrics.Chart{
		Title:  fmt.Sprintf("Figure 1 (%v): execution time vs time between SMIs", beh),
		XLabel: "time between SMIs (ms)",
		YLabel: "seconds",
	}
	for _, c := range order {
		ch.Series = append(ch.Series, *byCPU[c])
	}
	return ch.Render()
}

// Right renders the time-vs-CPUs chart at the highest SMI frequency.
func (f Figure1) Right(beh smistudy.CacheBehavior) string {
	s := metrics.Series{Name: "50 ms interval"}
	for _, p := range f.Points {
		if p.Behavior == beh && p.IntervalMS == 50 {
			s.X = append(s.X, float64(p.CPUs))
			s.Y = append(s.Y, p.Seconds)
		}
	}
	ch := metrics.Chart{
		Title:  fmt.Sprintf("Figure 1 (%v): execution time vs logical CPUs at 50 ms", beh),
		XLabel: "online logical CPUs",
		YLabel: "seconds",
		Series: []metrics.Series{s},
	}
	return ch.Render()
}

// CSV dumps all Figure-1 points.
func (f Figure1) CSV() string {
	tab := metrics.NewTable("behavior", "cpus", "interval_ms", "seconds", "stddev")
	for _, p := range f.Points {
		tab.AddRow(p.Behavior.String(), p.CPUs, p.IntervalMS, p.Seconds, p.StdDev)
	}
	return tab.CSV()
}

// UnixBenchPoint is one measured Figure-2 point.
type UnixBenchPoint struct {
	CPUs       int
	IntervalMS int
	Iteration  int
	Score      float64
}

// Figure2 is the regenerated UnixBench study.
type Figure2 struct {
	Points []UnixBenchPoint
}

// Figure2UnixBench regenerates Figure 2: long SMIs at intervals from
// 100 ms to 1600 ms in 500 ms increments for each CPU configuration,
// looped (the paper plots the score per iteration).
func Figure2UnixBench(cfg Config) (Figure2, error) {
	intervals := []int{100, 600, 1100, 1600}
	cpus := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		intervals = []int{100, 1600}
		cpus = []int{1, 4, 8}
	}
	iters := cfg.runs(3)
	type ubPoint struct {
		nc, iv, it int
	}
	var pts []ubPoint
	for _, nc := range cpus {
		for _, iv := range intervals {
			for it := 0; it < iters; it++ {
				pts = append(pts, ubPoint{nc, iv, it})
			}
		}
	}
	var fig Figure2
	specs := make([]scenario.Spec, len(pts))
	for i, p := range pts {
		specs[i] = scenario.Spec{
			Workload: "unixbench",
			Machine:  scenario.Machine{CPUs: p.nc},
			SMM:      scenario.SMMPlan{Level: "long", IntervalMS: p.iv, SMIScale: cfg.SMIScale},
			// Mix the cell coordinates into the derived seed: the old
			// base+iteration derivation reused identical seeds across
			// every (CPUs, interval) cell, making sibling cells
			// statistically dependent.
			Seed:   parsweep.Seed(cfg.seed(), int64(p.nc), int64(p.iv), int64(p.it)),
			Params: scenario.Params{DurationS: 2},
		}
	}
	ms, errs, _ := durable.RunSpecs(cfg.ctx(), specs, cfg.durableOptions())
	if err := parsweep.FirstError(errs); err != nil {
		return fig, err
	}
	fig.Points = make([]UnixBenchPoint, len(ms))
	for i, m := range ms {
		fig.Points[i] = UnixBenchPoint{
			CPUs: pts[i].nc, IntervalMS: pts[i].iv, Iteration: pts[i].it, Score: m.UnixBench.Score,
		}
	}
	return fig, nil
}

// Render draws the score-vs-interval chart, one series per CPU config.
func (f Figure2) Render() string {
	byCPU := map[int]*metrics.Series{}
	var order []int
	for _, p := range f.Points {
		s, ok := byCPU[p.CPUs]
		if !ok {
			s = &metrics.Series{Name: fmt.Sprintf("%d CPUs", p.CPUs)}
			byCPU[p.CPUs] = s
			order = append(order, p.CPUs)
		}
		s.X = append(s.X, float64(p.IntervalMS))
		s.Y = append(s.Y, p.Score)
	}
	ch := metrics.Chart{
		Title:  "Figure 2: UnixBench index score vs time between long SMIs",
		XLabel: "time between SMIs (ms / jiffies)",
		YLabel: "index score (higher is better)",
	}
	for _, c := range order {
		ch.Series = append(ch.Series, *byCPU[c])
	}
	return ch.Render()
}

// CSV dumps all Figure-2 points.
func (f Figure2) CSV() string {
	tab := metrics.NewTable("cpus", "interval_ms", "iteration", "score")
	for _, p := range f.Points {
		tab.AddRow(p.CPUs, p.IntervalMS, p.Iteration, p.Score)
	}
	return tab.CSV()
}

func sweep(from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
