package experiments

import (
	"encoding/json"
	"runtime"
	"time"

	"smistudy/internal/runner"
	"smistudy/internal/sim"
)

// Bench harness: the recorded perf baseline behind BENCH_sweeps.json.
// Each table/figure sweep runs at quick scale once per requested worker
// count, measuring wall time, heap churn and cell throughput; the
// steady-state EP sweep additionally runs under the analytic fast path
// so the recorded baseline tracks the dispatch speedup trajectory. A
// final entry measures the sim engine's steady-state allocations per
// scheduled event (the free list should hold this at zero). The JSON
// this produces is committed under results/ so later optimization work
// has a trajectory to diff against.

// BenchEntry is one measured sweep (or the engine churn probe).
type BenchEntry struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
	Mallocs    uint64  `json:"mallocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
	// Cells counts the scenario cells the sweep dispatched; Events the
	// discrete engine events those cells processed (zero for sweeps
	// that bypass the scenario path).
	Cells  int64 `json:"cells"`
	Events int64 `json:"events"`
	// CellsPerSec is the sweep's cell throughput — the quantity the
	// bench comparator gates one-sidedly, and the axis the fast-path
	// speedup shows up on.
	CellsPerSec float64 `json:"cells_per_sec"`
	// FastPath is the dispatch mode the entry ran under ("off", "auto");
	// FastHits and FastMisses are the dispatcher's decision counts.
	FastPath   string `json:"fastpath"`
	FastHits   int64  `json:"fast_hits"`
	FastMisses int64  `json:"fast_misses"`
}

// BenchReport is the full harness output.
type BenchReport struct {
	GoMaxProcs    int          `json:"gomaxprocs"`
	Quick         bool         `json:"quick"`
	Seed          int64        `json:"seed"`
	Sweeps        []BenchEntry `json:"sweeps"`
	EngineEventNS float64      `json:"engine_event_ns"`
	// EngineEventAllocs is allocations per steady-state schedule+fire
	// on a warm engine; the event free list keeps this at 0.
	EngineEventAllocs float64 `json:"engine_event_allocs"`
}

// ToJSON renders the report as indented JSON.
func (r BenchReport) ToJSON() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// benchSweepSuite lists the sweeps the harness times. Each returns only
// an error: results are discarded, the subject is the sweep machinery.
func benchSweepSuite() []struct {
	name string
	fn   func(Config) error
} {
	return []struct {
		name string
		fn   func(Config) error
	}{
		{"table1", func(c Config) error { _, err := Table1(c); return err }},
		{"table4", func(c Config) error { _, err := Table4(c); return err }},
		{"figure1_convolve", func(c Config) error { _, err := Figure1Convolve(c); return err }},
		{"figure2_unixbench", func(c Config) error { _, err := Figure2UnixBench(c); return err }},
		{"fault_study", func(c Config) error { _, err := FaultStudy(c); return err }},
		{"amplification", func(c Config) error { _, err := AmplificationStudy(c); return err }},
	}
}

// BenchSweeps runs every sweep in the suite once per worker count in
// workerSets, at quick scale, and measures the engine's per-event cost.
// The table and figure sweeps run with the fast path off — their quick
// single-repetition cells are never dispatch-eligible, so "off" is also
// what production measured. The steady-state EP sweep runs under both
// off and auto so the baseline records the dispatch speedup.
func BenchSweeps(cfg Config, workerSets []int) (BenchReport, error) {
	rep := BenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      true,
		Seed:       cfg.Seed,
	}
	cfg.Quick = true
	type benchCase struct {
		name     string
		fn       func(Config) error
		fastpath runner.FastPathMode
	}
	var cases []benchCase
	for _, s := range benchSweepSuite() {
		cases = append(cases, benchCase{s.name, s.fn, runner.FastOff})
	}
	steady := func(c Config) error { _, err := SteadyStateEP(c); return err }
	cases = append(cases,
		benchCase{"steady_state_ep", steady, runner.FastOff},
		benchCase{"steady_state_ep", steady, runner.FastAuto},
	)
	for _, bc := range cases {
		for _, w := range workerSets {
			c := cfg
			c.Workers = w
			st := &runner.ExecStats{}
			c.Stats = st
			if bc.fastpath != runner.FastOff {
				// A fresh dispatcher per entry: certification work is
				// measured inside the entry that profits from it.
				c.Dispatch = runner.NewDispatcher(bc.fastpath, 0)
			} else {
				// Entries labelled "off" must run undispatched even when
				// the invocation itself passed -fastpath.
				c.Dispatch = nil
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if err := bc.fn(c); err != nil {
				return BenchReport{}, err
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			entry := BenchEntry{
				Name:       bc.name,
				Workers:    w,
				WallMS:     float64(wall.Microseconds()) / 1000,
				Mallocs:    after.Mallocs - before.Mallocs,
				AllocBytes: after.TotalAlloc - before.TotalAlloc,
				Cells:      st.CellsValue(),
				Events:     st.EventsValue(),
				FastPath:   string(bc.fastpath),
				FastHits:   st.HitsValue(),
				FastMisses: st.MissesValue(),
			}
			if secs := wall.Seconds(); secs > 0 {
				entry.CellsPerSec = float64(entry.Cells) / secs
			}
			rep.Sweeps = append(rep.Sweeps, entry)
		}
	}
	rep.EngineEventNS, rep.EngineEventAllocs = sim.MeasureEventCost()
	return rep, nil
}
