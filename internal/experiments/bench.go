package experiments

import (
	"encoding/json"
	"runtime"
	"time"

	"smistudy/internal/sim"
)

// Bench harness: the recorded perf baseline behind BENCH_sweeps.json.
// Each table/figure sweep runs at quick scale once per requested worker
// count, measuring wall time and heap churn; a final entry measures the
// sim engine's steady-state allocations per scheduled event (the free
// list should hold this at zero). The JSON this produces is committed
// under results/ so later optimization work has a trajectory to diff
// against.

// BenchEntry is one measured sweep (or the engine churn probe).
type BenchEntry struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
	Mallocs    uint64  `json:"mallocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// BenchReport is the full harness output.
type BenchReport struct {
	GoMaxProcs    int          `json:"gomaxprocs"`
	Quick         bool         `json:"quick"`
	Seed          int64        `json:"seed"`
	Sweeps        []BenchEntry `json:"sweeps"`
	EngineEventNS float64      `json:"engine_event_ns"`
	// EngineEventAllocs is allocations per steady-state schedule+fire
	// on a warm engine; the event free list keeps this at 0.
	EngineEventAllocs float64 `json:"engine_event_allocs"`
}

// ToJSON renders the report as indented JSON.
func (r BenchReport) ToJSON() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// benchSweepSuite lists the sweeps the harness times. Each returns only
// an error: results are discarded, the subject is the sweep machinery.
func benchSweepSuite() []struct {
	name string
	fn   func(Config) error
} {
	return []struct {
		name string
		fn   func(Config) error
	}{
		{"table1", func(c Config) error { _, err := Table1(c); return err }},
		{"table4", func(c Config) error { _, err := Table4(c); return err }},
		{"figure1_convolve", func(c Config) error { _, err := Figure1Convolve(c); return err }},
		{"figure2_unixbench", func(c Config) error { _, err := Figure2UnixBench(c); return err }},
		{"fault_study", func(c Config) error { _, err := FaultStudy(c); return err }},
		{"amplification", func(c Config) error { _, err := AmplificationStudy(c); return err }},
	}
}

// BenchSweeps runs every sweep in the suite once per worker count in
// workerSets, at quick scale, and measures the engine's per-event cost.
func BenchSweeps(cfg Config, workerSets []int) (BenchReport, error) {
	rep := BenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      true,
		Seed:       cfg.Seed,
	}
	cfg.Quick = true
	for _, s := range benchSweepSuite() {
		for _, w := range workerSets {
			c := cfg
			c.Workers = w
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if err := s.fn(c); err != nil {
				return BenchReport{}, err
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			rep.Sweeps = append(rep.Sweeps, BenchEntry{
				Name:       s.name,
				Workers:    w,
				WallMS:     float64(wall.Microseconds()) / 1000,
				Mallocs:    after.Mallocs - before.Mallocs,
				AllocBytes: after.TotalAlloc - before.TotalAlloc,
			})
		}
	}
	rep.EngineEventNS, rep.EngineEventAllocs = sim.MeasureEventCost()
	return rep, nil
}
