package experiments

import (
	"fmt"
	"strings"

	"smistudy/internal/durable"
	"smistudy/internal/metrics"
	"smistudy/internal/parsweep"
	"smistudy/internal/scenario"
)

// SteadyPoint is one steady-state EP scaling measurement.
type SteadyPoint struct {
	Nodes   int
	Seconds float64
}

// SteadyState is the regenerated SMM-off EP scaling column: the
// baseline the paper's Tables 1–3 percent-changes are computed against,
// isolated as its own sweep. Every cell is steady state (no SMM, no
// faults) with the full six repetitions, which makes this the sweep the
// analytic fast path can serve almost entirely from certified regions —
// the bench harness runs it under -fastpath off and auto to record the
// speedup trajectory.
type SteadyState struct {
	Points []SteadyPoint
}

// SteadyStateEP measures the EP class-A baseline over 1, 2 and 4 nodes
// at one rank per node. Unlike the table sweeps, Quick does not shrink
// the repetition count: repetition amortization is the sweep's subject,
// and a steady-state EP run costs well under a millisecond.
func SteadyStateEP(cfg Config) (SteadyState, error) {
	nodes := []int{1, 2, 4}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 6
	}
	specs := make([]scenario.Spec, len(nodes))
	for i, n := range nodes {
		specs[i] = scenario.Spec{
			Workload: "nas",
			Machine:  scenario.Machine{Nodes: n, RanksPerNode: 1},
			SMM:      scenario.SMMPlan{SMIScale: cfg.SMIScale},
			Runs:     runs,
			Seed:     cfg.seed(),
			Params:   scenario.Params{Bench: "EP", Class: "A"},
		}
	}
	ms, errs, _ := durable.RunSpecs(cfg.ctx(), specs, cfg.durableOptions())
	if err := parsweep.FirstError(errs); err != nil {
		return SteadyState{}, err
	}
	st := SteadyState{Points: make([]SteadyPoint, len(ms))}
	for i, m := range ms {
		st.Points[i] = SteadyPoint{Nodes: nodes[i], Seconds: m.NAS.Seconds()}
	}
	return st, nil
}

// Render prints the scaling column.
func (s SteadyState) Render() string {
	var b strings.Builder
	b.WriteString("Steady-state EP.A scaling (no SMM)\n")
	tab := metrics.NewTable("nodes", "seconds")
	for _, p := range s.Points {
		tab.AddRow(p.Nodes, fmt.Sprintf("%.2f", p.Seconds))
	}
	b.WriteString(tab.String())
	return b.String()
}
