package experiments

import (
	"strings"
	"testing"
)

func TestFaultStudyQuick(t *testing.T) {
	out, err := FaultStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Loss sweep", "retransmits",
		"Single-node fault amplification", "degrade links into node 1", "SMI storm",
		"Crash timing", "watchdog",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
