package experiments

// Durable-path equivalence: the table/figure generators route their
// sweeps through internal/durable, so a store-backed run, a resumed
// warm run and a plain run must all render identical output — and the
// warm run must do zero simulation work.

import (
	"context"
	"testing"

	"smistudy/internal/durable"
)

func TestTable2DurableStoreEquivalence(t *testing.T) {
	plain, err := Table2(goldenCfg(2))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenCfg(2)
	cfg.Store = s
	cfg.Resume = true
	cold, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Render() != plain.Render() {
		t.Errorf("store-backed run differs from plain run:\n%s\nvs\n%s", cold.Render(), plain.Render())
	}
	cells := s.Len()
	if cells == 0 {
		t.Fatal("store-backed run checkpointed nothing")
	}
	s.Close()

	// Warm pass over a fresh store handle replays every cell.
	s, err = durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg.Store = s
	warm, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Render() != plain.Render() {
		t.Errorf("warm resumed run differs from plain run:\n%s\nvs\n%s", warm.Render(), plain.Render())
	}
	if s.Len() != cells {
		t.Errorf("warm run grew the store from %d to %d cells", cells, s.Len())
	}
}

func TestTableCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := goldenCfg(1)
	cfg.Ctx = ctx
	if _, err := Table2(cfg); err == nil {
		t.Fatal("canceled context must abort the regeneration")
	}
}
