package experiments

import (
	"fmt"
	"strings"

	"smistudy"
	"smistudy/internal/metrics"
	"smistudy/internal/parsweep"
)

// Extension experiments: beyond the paper's tables and figures, these
// quantify (a) the RIM security workload that motivates the paper, (b)
// the energy and timekeeping side effects established by the prior work
// it builds on, (c) profiler distortion, and (d) the paper's stated
// future work — additional parallel applications under SMM noise.

// RIMTradeoff measures application slowdown, worst single stall and
// check latency across integrity-measurement chunking strategies.
func RIMTradeoff(cfg Config) (string, error) {
	chunks := []int{0, 4096, 1024, 256, 64}
	if cfg.Quick {
		chunks = []int{0, 256}
	}
	results, err := parsweep.Run(cfg.ctx(), chunks, cfg.Workers, func(kb int) (smistudy.RIMResult, error) {
		return smistudy.RunRIM(smistudy.RIMOptions{ChunkKB: kb, Seed: cfg.seed()})
	})
	if err != nil {
		return "", err
	}
	tab := metrics.NewTable("chunk", "slowdown %", "worst stall (ms)", "check latency (ms)", "checks")
	for i, kb := range chunks {
		res := results[i]
		label := "whole (25 MB)"
		if kb > 0 {
			label = fmt.Sprintf("%d KiB", kb)
		}
		tab.AddRow(label, res.SlowdownPct,
			res.WorstStall.Milliseconds(), res.CheckLatency.Milliseconds(), res.Checks)
	}
	return "RIM integrity checks at 1/s, 25 MB per check, 4-core compute app:\n\n" +
		tab.String() +
		"\nSmaller chunks bound the worst stall (good for latency-sensitive\n" +
		"code) but pay per-SMI entry/exit and rendezvous overhead on every\n" +
		"chunk, stretching check latency and costing throughput.\n", nil
}

// EnergyStudy measures the extra energy to complete fixed work under
// each SMI level (the IISWC'13 finding).
func EnergyStudy(cfg Config) (string, error) {
	lvls := []smistudy.SMMLevel{smistudy.SMM1, smistudy.SMM2}
	results, err := parsweep.Run(cfg.ctx(), lvls, cfg.Workers, func(lv smistudy.SMMLevel) (smistudy.EnergyResult, error) {
		return smistudy.MeasureEnergy(lv, cfg.seed())
	})
	if err != nil {
		return "", err
	}
	tab := metrics.NewTable("level", "quiet (J)", "noisy (J)", "extra energy %", "extra time %")
	for i, lv := range lvls {
		res := results[i]
		tab.AddRow(lv.String(), res.QuietJoules, res.NoisyJoules,
			res.EnergyIncreasePct,
			metrics.PercentChange(res.QuietTime.Seconds(), res.NoisyTime.Seconds()))
	}
	return "Energy to complete the same work (5 s × 4 cores) under SMIs at 1/s:\n\n" +
		tab.String(), nil
}

// DriftStudy measures tick-clock drift per SMI schedule.
func DriftStudy(cfg Config) (string, error) {
	intervals := []int{1000, 500, 200}
	if cfg.Quick {
		intervals = []int{1000}
	}
	type driftPoint struct {
		lv smistudy.SMMLevel
		iv int
	}
	var pts []driftPoint
	for _, lv := range []smistudy.SMMLevel{smistudy.SMM1, smistudy.SMM2} {
		for _, iv := range intervals {
			pts = append(pts, driftPoint{lv, iv})
		}
	}
	results, err := parsweep.Run(cfg.ctx(), pts, cfg.Workers, func(p driftPoint) (smistudy.DriftResult, error) {
		return smistudy.MeasureClockDrift(p.lv, p.iv, 10, cfg.seed())
	})
	if err != nil {
		return "", err
	}
	tab := metrics.NewTable("level", "interval (ms)", "drift over 10s", "ppm")
	for i, p := range pts {
		tab.AddRow(p.lv.String(), p.iv, results[i].Drift.String(), results[i].PPM)
	}
	return "Tick-counted wall-clock drift (ticks lost in SMM; NTP tolerates ~500 ppm):\n\n" +
		tab.String(), nil
}

// ProfilerStudy measures sampling-profiler distortion under long SMIs.
func ProfilerStudy(cfg Config) (string, error) {
	type profMode struct {
		name string
		m    smistudy.ProfilerMode
	}
	modes := []profMode{
		{"drop-in-SMM (NMI profiler)", smistudy.ProfilerDropInSMM},
		{"defer-to-exit (timer profiler)", smistudy.ProfilerDeferToExit},
	}
	chunks, err := parsweep.Run(cfg.ctx(), modes, cfg.Workers, func(mode profMode) (string, error) {
		rep := smistudy.ProfileWorkload(mode.m, cfg.seed())
		var c strings.Builder
		fmt.Fprintf(&c, "[%s]  samples=%d lost=%d deferred=%d max share skew=%.1f%%\n",
			mode.name, rep.Total, rep.Lost, rep.Deferred, rep.MaxSkew*100)
		c.WriteString(indent(rep.Table(), "  "))
		c.WriteByte('\n')
		return c.String(), nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Sampling profiler under long SMIs every 500 ms (2:1 workload):\n\n")
	for _, c := range chunks {
		b.WriteString(c)
	}
	return b.String(), nil
}

// ExtendedNAS runs the non-paper NPB kernels under no/long SMM — the
// paper's stated future work.
func ExtendedNAS(cfg Config) (string, error) {
	benches := []smistudy.Benchmark{"CG", "MG", "IS", "LU", "SP"}
	nodes := []int{1, 4, 16}
	if cfg.Quick {
		benches = []smistudy.Benchmark{"CG", "IS"}
		nodes = []int{1, 4}
	}
	type extPoint struct {
		bench smistudy.Benchmark
		nodes int
		level smistudy.SMMLevel
	}
	var pts []extPoint
	for _, bench := range benches {
		for _, n := range nodes {
			for _, lv := range []smistudy.SMMLevel{smistudy.SMM0, smistudy.SMM2} {
				pts = append(pts, extPoint{bench, n, lv})
			}
		}
	}
	secs, err := parsweep.Run(cfg.ctx(), pts, cfg.Workers, func(p extPoint) (float64, error) {
		res, err := smistudy.RunNAS(smistudy.NASOptions{
			Bench: p.bench, Class: smistudy.ClassA,
			Nodes: p.nodes, RanksPerNode: 1, SMM: p.level,
			Runs: cfg.runs(3), Seed: cfg.seed(),
			Tracer: cfg.Tracer,
		})
		if err != nil {
			return 0, err
		}
		return res.Seconds(), nil
	})
	if err != nil {
		return "", err
	}
	tab := metrics.NewTable("bench", "nodes", "SMM0 (s)", "SMM2 (s)", "long impact %")
	for i := 0; i < len(pts); i += 2 {
		base, long := secs[i], secs[i+1]
		tab.AddRow(string(pts[i].bench), pts[i].nodes, base, long, metrics.PercentChange(base, long))
	}
	return "Extended NPB kernels (class A, 1 rank/node, long SMIs at 1/s) —\n" +
		"the paper's future work, 'additional parallel applications':\n\n" +
		tab.String(), nil
}
