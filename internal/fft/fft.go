// Package fft implements the complex fast Fourier transforms underlying
// the NPB FT benchmark: an iterative radix-2 1-D transform and the
// dimension-by-dimension 3-D transform FT performs between its global
// transposes. Like internal/convolve's real convolution, this gives the
// repository a working numerical kernel alongside the timing skeleton.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Forward computes the in-place forward FFT of x (len must be a power of
// two), using the e^{-2πi/n} convention.
func Forward(x []complex128) error { return transform(x, -1) }

// Inverse computes the in-place inverse FFT of x, including the 1/n
// normalization.
func Inverse(x []complex128) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, sign float64) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	// Danielson–Lanczos butterflies.
	for span := 1; span < n; span <<= 1 {
		w := cmplx.Exp(complex(0, sign*math.Pi/float64(span)))
		for start := 0; start < n; start += span << 1 {
			wk := complex(1, 0)
			for k := 0; k < span; k++ {
				a := x[start+k]
				b := x[start+k+span] * wk
				x[start+k] = a + b
				x[start+k+span] = a - b
				wk *= w
			}
		}
	}
	return nil
}

// DFT computes the discrete Fourier transform directly in O(n²) — the
// reference the FFT is validated against.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// Grid3D is a dense complex grid of dimensions Nx×Ny×Nz, stored x-major
// (index = (z*Ny+y)*Nx + x), as FT lays out its pencils.
type Grid3D struct {
	Nx, Ny, Nz int
	Data       []complex128
}

// NewGrid3D allocates a zero grid; all dimensions must be powers of two.
func NewGrid3D(nx, ny, nz int) (*Grid3D, error) {
	for _, n := range []int{nx, ny, nz} {
		if n <= 0 || n&(n-1) != 0 {
			return nil, fmt.Errorf("fft: grid dimension %d is not a power of two", n)
		}
	}
	return &Grid3D{Nx: nx, Ny: ny, Nz: nz, Data: make([]complex128, nx*ny*nz)}, nil
}

// At returns the element at (x,y,z).
func (g *Grid3D) At(x, y, z int) complex128 { return g.Data[(z*g.Ny+y)*g.Nx+x] }

// Set assigns the element at (x,y,z).
func (g *Grid3D) Set(x, y, z int, v complex128) { g.Data[(z*g.Ny+y)*g.Nx+x] = v }

// Forward3D applies the forward FFT along all three dimensions
// (dimension-by-dimension with explicit gathers, the structure FT
// parallelizes with transposes).
func (g *Grid3D) Forward3D() error { return g.transform3D(Forward) }

// Inverse3D applies the inverse FFT along all three dimensions.
func (g *Grid3D) Inverse3D() error { return g.transform3D(Inverse) }

func (g *Grid3D) transform3D(f func([]complex128) error) error {
	// X pencils (contiguous).
	for z := 0; z < g.Nz; z++ {
		for y := 0; y < g.Ny; y++ {
			row := g.Data[(z*g.Ny+y)*g.Nx : (z*g.Ny+y+1)*g.Nx]
			if err := f(row); err != nil {
				return err
			}
		}
	}
	// Y pencils.
	buf := make([]complex128, g.Ny)
	for z := 0; z < g.Nz; z++ {
		for x := 0; x < g.Nx; x++ {
			for y := 0; y < g.Ny; y++ {
				buf[y] = g.At(x, y, z)
			}
			if err := f(buf); err != nil {
				return err
			}
			for y := 0; y < g.Ny; y++ {
				g.Set(x, y, z, buf[y])
			}
		}
	}
	// Z pencils.
	buf = make([]complex128, g.Nz)
	for y := 0; y < g.Ny; y++ {
		for x := 0; x < g.Nx; x++ {
			for z := 0; z < g.Nz; z++ {
				buf[z] = g.At(x, y, z)
			}
			if err := f(buf); err != nil {
				return err
			}
			for z := 0; z < g.Nz; z++ {
				g.Set(x, y, z, buf[z])
			}
		}
	}
	return nil
}

// Checksum returns FT's per-iteration checksum: the sum of a strided
// subset of grid points (the benchmark sums 1024 of them; here all
// points with linear index ≡ 0 mod stride).
func (g *Grid3D) Checksum(stride int) complex128 {
	if stride < 1 {
		stride = 1
	}
	var sum complex128
	for i := 0; i < len(g.Data); i += stride {
		sum += g.Data[i]
	}
	return sum
}
