package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randVec(rng, n)
		want := DFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT differs from DFT by %v", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	prop := func(seed int64, lg uint8) bool {
		n := 1 << (lg%9 + 1)
		rng := rand.New(rand.NewSource(seed))
		x := randVec(rng, n)
		y := append([]complex128(nil), x...)
		if Forward(y) != nil || Inverse(y) != nil {
			return false
		}
		return maxDiff(x, y) < 1e-9*float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randVec(rng, 128)
	var timeE float64
	for _, v := range x {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/128-timeE) > 1e-9*timeE {
		t.Errorf("Parseval violated: time %v, freq/n %v", timeE, freqE/128)
	}
}

func TestImpulseResponse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 32)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	if err := Forward(make([]complex128, 12)); err == nil {
		t.Error("length 12 accepted")
	}
	if err := Inverse(make([]complex128, 3)); err == nil {
		t.Error("length 3 accepted")
	}
	if err := Forward(nil); err != nil {
		t.Error("empty transform should be a no-op")
	}
}

func TestGrid3DRoundTrip(t *testing.T) {
	g, err := NewGrid3D(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = g.Data[i]
	}
	if err := g.Forward3D(); err != nil {
		t.Fatal(err)
	}
	if err := g.Inverse3D(); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(g.Data, orig); d > 1e-9 {
		t.Fatalf("3D round trip error %v", d)
	}
}

func TestGrid3DImpulse(t *testing.T) {
	g, err := NewGrid3D(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(0, 0, 0, 1)
	if err := g.Forward3D(); err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("3D impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestGrid3DValidation(t *testing.T) {
	if _, err := NewGrid3D(3, 4, 4); err == nil {
		t.Error("non-power-of-two dimension accepted")
	}
	if _, err := NewGrid3D(0, 4, 4); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestGrid3DAccessors(t *testing.T) {
	g, err := NewGrid3D(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(3, 1, 1, 42)
	if g.At(3, 1, 1) != 42 {
		t.Error("At/Set disagree")
	}
	if g.Data[(1*2+1)*4+3] != 42 {
		t.Error("layout is not x-major")
	}
}

func TestChecksum(t *testing.T) {
	g, _ := NewGrid3D(2, 2, 2)
	for i := range g.Data {
		g.Data[i] = complex(float64(i), 0)
	}
	if got := g.Checksum(1); got != complex(28, 0) {
		t.Errorf("checksum = %v, want 28", got)
	}
	if got := g.Checksum(2); got != complex(0+2+4+6, 0) {
		t.Errorf("strided checksum = %v, want 12", got)
	}
	if got := g.Checksum(0); got != complex(28, 0) {
		t.Errorf("stride 0 should clamp to 1, got %v", got)
	}
}
