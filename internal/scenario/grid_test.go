package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

func rawVals(vs ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		out[i] = json.RawMessage(v)
	}
	return out
}

func TestGridExpandCartesian(t *testing.T) {
	g := Grid{
		Base: Spec{
			Workload: "convolve",
			Machine:  Machine{CPUs: 6},
			Params:   Params{Cache: "friendly"},
		},
		Axes: []Axis{
			{Path: "smm.interval_ms", Values: rawVals("75", "150", "600")},
			{Path: "params.cache", Values: rawVals(`"friendly"`, `"unfriendly"`)},
		},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("got %d cells, want 6", len(specs))
	}
	// Row-major: first axis slowest, second fastest.
	wantIntervals := []int{75, 75, 150, 150, 600, 600}
	wantCaches := []string{"friendly", "unfriendly", "friendly", "unfriendly", "friendly", "unfriendly"}
	for i, sp := range specs {
		if sp.SMM.IntervalMS != wantIntervals[i] || sp.Params.Cache != wantCaches[i] {
			t.Errorf("cell %d: interval=%d cache=%q, want %d/%q",
				i, sp.SMM.IntervalMS, sp.Params.Cache, wantIntervals[i], wantCaches[i])
		}
		if sp.Machine.CPUs != 6 {
			t.Errorf("cell %d lost base field cpus: %d", i, sp.Machine.CPUs)
		}
	}
	// Expanded cells must round-trip canonically like any other spec.
	data, err := specs[1].JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, specs[1]) {
		t.Fatalf("round-trip changed the cell: %+v vs %+v", back, specs[1])
	}
}

func TestGridNoAxesIsBase(t *testing.T) {
	g := Grid{Base: Spec{Workload: "nas", Params: Params{Bench: "EP", Class: "S"}}}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || !reflect.DeepEqual(specs[0], g.Base) {
		t.Fatalf("got %+v, want the base spec alone", specs)
	}
}

func TestGridRejects(t *testing.T) {
	base := Spec{Workload: "nas", Params: Params{Bench: "EP", Class: "S"}}
	cases := []struct {
		name string
		grid Grid
	}{
		{"typoed path", Grid{Base: base, Axes: []Axis{{Path: "smm.intervalms", Values: rawVals("75")}}}},
		{"empty path", Grid{Base: base, Axes: []Axis{{Path: "", Values: rawVals("1")}}}},
		{"no values", Grid{Base: base, Axes: []Axis{{Path: "seed"}}}},
		{"scalar segment", Grid{Base: base, Axes: []Axis{{Path: "workload.x", Values: rawVals("1")}}}},
		{"bad value shape", Grid{Base: base, Axes: []Axis{{Path: "runs", Values: rawVals(`"three"`)}}}},
		{"invalid base", Grid{Base: Spec{}}},
	}
	for _, tc := range cases {
		if _, err := tc.grid.Expand(); err == nil {
			t.Errorf("%s: expansion succeeded, want error", tc.name)
		}
	}
}

func TestGridCellCap(t *testing.T) {
	vals := make([]json.RawMessage, 400)
	for i := range vals {
		vals[i] = json.RawMessage("1")
	}
	g := Grid{
		Base: Spec{Workload: "nas", Params: Params{Bench: "EP", Class: "S"}},
		Axes: []Axis{{Path: "seed", Values: vals}, {Path: "runs", Values: vals}},
	}
	if _, err := g.Expand(); err == nil {
		t.Fatal("160k-cell grid expanded, want cap error")
	}
}
