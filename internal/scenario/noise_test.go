package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func jitterEntry() NoiseSource {
	return NoiseSource{Family: NoiseOSJitter, PeriodMS: 10, DurationUS: 200, JitterFrac: 0.2}
}

// TestNoiseRoundTripByteStable extends the canonical-form contract to
// specs carrying noise blocks.
func TestNoiseRoundTripByteStable(t *testing.T) {
	for name, sp := range map[string]Spec{
		"jitter only": {
			Workload: "nas",
			Noise:    []NoiseSource{jitterEntry()},
			Params:   Params{Bench: "BT", Class: "A"},
		},
		"mixed": {
			Workload: "nas",
			Noise: []NoiseSource{
				{Family: NoiseSMM, Level: "long", IntervalMS: 600},
				{Family: NoiseOSJitter, PeriodMS: 20, DurationUS: 500, Seed: 9, CPUs: []int{0, 2}},
			},
			Params: Params{Bench: "EP", Class: "A"},
		},
	} {
		doc, err := sp.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", name, err)
		}
		got, err := Parse(doc)
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		if !reflect.DeepEqual(got, sp) {
			t.Fatalf("%s: parse changed the spec: %+v vs %+v", name, got, sp)
		}
		doc2, err := got.JSON()
		if err != nil {
			t.Fatalf("%s: re-JSON: %v", name, err)
		}
		if !bytes.Equal(doc, doc2) {
			t.Errorf("%s: round trip not byte-stable:\n%s\nvs\n%s", name, doc, doc2)
		}
	}
}

// TestNoiseStrictParse pins that typos inside noise entries are errors,
// same as everywhere else in the spec tree.
func TestNoiseStrictParse(t *testing.T) {
	doc := `{"workload": "nas", "noise": [{"family": "osjitter", "period_msx": 10}], "params": {"bench": "EP", "class": "A"}}`
	if _, err := Parse([]byte(doc)); err == nil {
		t.Fatal("typoed noise field accepted")
	}
}

func TestEffectiveSMMResolution(t *testing.T) {
	legacy := Spec{Workload: "nas", SMM: SMMPlan{Level: "long", IntervalMS: 600}}
	if got := legacy.EffectiveSMM(); got != legacy.SMM {
		t.Fatalf("legacy block not passed through: %+v", got)
	}
	viaNoise := Spec{
		Workload: "nas",
		Noise: []NoiseSource{
			jitterEntry(),
			{Family: NoiseSMM, Level: "long", IntervalMS: 600, SMIScale: 1.5},
		},
	}
	want := SMMPlan{Level: "long", IntervalMS: 600, SMIScale: 1.5}
	if got := viaNoise.EffectiveSMM(); got != want {
		t.Fatalf("smm noise entry resolved to %+v, want %+v", got, want)
	}
	if got := (Spec{Workload: "nas"}).EffectiveSMM(); got != (SMMPlan{}) {
		t.Fatalf("quiet spec resolved to %+v", got)
	}
	js := viaNoise.JitterSources()
	if len(js) != 1 || js[0].Family != NoiseOSJitter {
		t.Fatalf("JitterSources = %+v", js)
	}
}

// TestNoiseValidateRejections pins family/field-group separation and
// the legacy-block exclusivity rule.
func TestNoiseValidateRejections(t *testing.T) {
	mk := func(noise []NoiseSource, smm SMMPlan) Spec {
		return Spec{Workload: "nas", SMM: smm, Noise: noise, Params: Params{Bench: "EP", Class: "A"}}
	}
	cases := map[string]struct {
		sp   Spec
		want string
	}{
		"unknown family": {
			mk([]NoiseSource{{Family: "cosmic"}}, SMMPlan{}),
			"unknown noise family",
		},
		"two smm entries": {
			mk([]NoiseSource{{Family: NoiseSMM, Level: "short"}, {Family: NoiseSMM, Level: "long"}}, SMMPlan{}),
			"at most one smm noise entry",
		},
		"jitter field on smm entry": {
			mk([]NoiseSource{{Family: NoiseSMM, Level: "long", PeriodMS: 10}}, SMMPlan{}),
			"jitter fields are not valid",
		},
		"smm field on jitter entry": {
			mk([]NoiseSource{{Family: NoiseOSJitter, Level: "long", PeriodMS: 10, DurationUS: 100}}, SMMPlan{}),
			"smm fields are not valid",
		},
		"legacy block and smm entry": {
			mk([]NoiseSource{{Family: NoiseSMM, Level: "long"}}, SMMPlan{Level: "short"}),
			"mutually exclusive",
		},
		"bad level via noise": {
			mk([]NoiseSource{{Family: NoiseSMM, Level: "loud"}}, SMMPlan{}),
			"level",
		},
		"zero period": {
			mk([]NoiseSource{{Family: NoiseOSJitter, DurationUS: 100}}, SMMPlan{}),
			"period_ms",
		},
		"zero duration": {
			mk([]NoiseSource{{Family: NoiseOSJitter, PeriodMS: 10}}, SMMPlan{}),
			"duration_us",
		},
		"duration >= period": {
			mk([]NoiseSource{{Family: NoiseOSJitter, PeriodMS: 1, DurationUS: 1000}}, SMMPlan{}),
			"shorter than",
		},
		"jitter frac 1": {
			mk([]NoiseSource{{Family: NoiseOSJitter, PeriodMS: 10, DurationUS: 100, JitterFrac: 1}}, SMMPlan{}),
			"jitter_frac",
		},
		"negative cpu": {
			mk([]NoiseSource{{Family: NoiseOSJitter, PeriodMS: 10, DurationUS: 100, CPUs: []int{-2}}}, SMMPlan{}),
			"cpus",
		},
	}
	for name, tc := range cases {
		err := tc.sp.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
	ok := mk([]NoiseSource{
		{Family: NoiseSMM, Level: "long", IntervalMS: 600},
		jitterEntry(),
	}, SMMPlan{})
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid mixed-noise spec rejected: %v", err)
	}
}

// TestGridNoiseAxes pins dotted-path sweeps into noise entries: indexed
// paths address existing entries, and typos or out-of-range indexes
// fail loudly instead of creating elements.
func TestGridNoiseAxes(t *testing.T) {
	base := Spec{
		Workload: "nas",
		Noise:    []NoiseSource{jitterEntry()},
		Params:   Params{Bench: "BT", Class: "A"},
	}
	g := Grid{
		Base: base,
		Axes: []Axis{{Path: "noise[0].period_ms", Values: rawVals("5", "10", "20")}},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d cells, want 3", len(specs))
	}
	for i, want := range []float64{5, 10, 20} {
		if got := specs[i].Noise[0].PeriodMS; got != want {
			t.Errorf("cell %d: period_ms = %g, want %g", i, got, want)
		}
		if specs[i].Noise[0].DurationUS != 200 {
			t.Errorf("cell %d lost sibling field duration_us", i)
		}
	}

	bad := []struct {
		name string
		axis Axis
	}{
		{"typoed leaf", Axis{Path: "noise[0].period_msx", Values: rawVals("5")}},
		{"index out of range", Axis{Path: "noise[5].period_ms", Values: rawVals("5")}},
		{"negative index", Axis{Path: "noise[-1].period_ms", Values: rawVals("5")}},
		{"missing array", Axis{Path: "faults[0].loss_prob", Values: rawVals("0.1")}},
		{"non-array name", Axis{Path: "machine[0].nodes", Values: rawVals("4")}},
	}
	for _, tc := range bad {
		g := Grid{Base: base, Axes: []Axis{tc.axis}}
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: expansion succeeded, want error", tc.name)
		}
	}
}

// TestGridNoiseAxisCellsValidate pins that every expanded cell passes
// the same validation a hand-written spec would.
func TestGridNoiseAxisCellsValidate(t *testing.T) {
	g := Grid{
		Base: Spec{
			Workload: "nas",
			Noise:    []NoiseSource{{Family: NoiseSMM, Level: "long"}, jitterEntry()},
			Params:   Params{Bench: "EP", Class: "A"},
		},
		Axes: []Axis{
			{Path: "noise[0].interval_ms", Values: rawVals("300", "600")},
			{Path: "noise[1].duration_us", Values: rawVals("100", "400")},
		},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("got %d cells, want 4", len(specs))
	}
	for i, sp := range specs {
		if err := sp.Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
	}
	if specs[3].Noise[0].IntervalMS != 600 || specs[3].Noise[1].DurationUS != 400 {
		t.Fatalf("last cell = %+v", specs[3].Noise)
	}
}

// TestNoiseOmittedFromQuietSpec pins encoding hygiene: a spec with no
// noise block never emits a "noise" key, so pre-noise goldens and
// manifests stay byte-identical.
func TestNoiseOmittedFromQuietSpec(t *testing.T) {
	doc, err := (Spec{Workload: "nas", Params: Params{Bench: "EP", Class: "A"}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(doc, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["noise"]; ok {
		t.Fatalf("quiet spec emitted a noise key:\n%s", doc)
	}
}
