package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Axis is one swept dimension of a Grid: a dotted path into the spec
// document ("smm.interval_ms", "params.cache", "seed") and the JSON
// values it takes. A segment may index into an array the base spec
// declares — "noise[1].period_ms" sweeps the second noise entry's
// period. Values are raw JSON so an axis can sweep numbers, strings or
// booleans without per-field plumbing.
type Axis struct {
	Path   string            `json:"path"`
	Values []json.RawMessage `json:"values"`
}

// Grid is a declarative parameter sweep: a base spec plus axes whose
// cartesian product it expands into. The expansion goes through the
// strict canonical parser, so a typo'd path fails loudly exactly like a
// typo'd field in a scenario file, and every produced cell is a valid,
// canonically-encodable Spec — which is what makes a grid submission
// content-addressable cell by cell.
type Grid struct {
	Base Spec   `json:"base"`
	Axes []Axis `json:"axes,omitempty"`
}

// MaxGridCells bounds one expansion. The sweep server's admission
// control bounds queued work; this bounds the planning step itself so a
// hostile or fat-fingered grid cannot allocate unbounded specs.
const MaxGridCells = 100000

// Expand produces the grid's cells in deterministic row-major order
// (first axis slowest, last axis fastest). A grid with no axes is the
// base spec alone.
func (g Grid) Expand() ([]Spec, error) {
	if err := g.Base.Validate(); err != nil {
		return nil, err
	}
	total := 1
	for _, ax := range g.Axes {
		if ax.Path == "" {
			return nil, fmt.Errorf("scenario: grid axis with empty path")
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("scenario: grid axis %q has no values", ax.Path)
		}
		if total > MaxGridCells/len(ax.Values) {
			return nil, fmt.Errorf("scenario: grid exceeds %d cells", MaxGridCells)
		}
		total *= len(ax.Values)
	}
	base, err := g.Base.JSON()
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, 0, total)
	idx := make([]int, len(g.Axes))
	for {
		var doc map[string]any
		if err := json.Unmarshal(base, &doc); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		for a, ax := range g.Axes {
			if err := setPath(doc, ax.Path, ax.Values[idx[a]]); err != nil {
				return nil, fmt.Errorf("scenario: grid axis %q: %w", ax.Path, err)
			}
		}
		data, err := json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		// Parse is strict: an axis path naming a field no Spec has is
		// rejected here, before any cell is admitted anywhere.
		sp, err := Parse(data)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
		// Odometer increment, last axis fastest.
		a := len(idx) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(g.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			return specs, nil
		}
	}
}

// setPath writes a raw JSON value at a dotted path, creating
// intermediate objects as needed (the strict re-parse rejects paths
// that invent fields, so creation cannot smuggle unknowns through).
// "name[idx]" segments step into array elements the base spec already
// declares; arrays are never created or extended — an axis can vary an
// entry but not invent one.
func setPath(doc map[string]any, path string, v json.RawMessage) error {
	parts := strings.Split(path, ".")
	cur := doc
	for i, p := range parts {
		name, idx, hasIdx, err := splitSegment(p)
		if err != nil {
			return err
		}
		last := i == len(parts)-1
		if !hasIdx {
			if last {
				cur[name] = v
				return nil
			}
			next, ok := cur[name]
			if !ok || next == nil {
				m := map[string]any{}
				cur[name] = m
				cur = m
				continue
			}
			m, ok := next.(map[string]any)
			if !ok {
				return fmt.Errorf("segment %q is not an object", p)
			}
			cur = m
			continue
		}
		next, ok := cur[name]
		if !ok || next == nil {
			return fmt.Errorf("segment %q: base spec has no %q array", p, name)
		}
		arr, ok := next.([]any)
		if !ok {
			return fmt.Errorf("segment %q: %q is not an array", p, name)
		}
		if idx >= len(arr) {
			return fmt.Errorf("segment %q: index %d out of range (array has %d entries)", p, idx, len(arr))
		}
		if last {
			arr[idx] = v
			return nil
		}
		m, ok := arr[idx].(map[string]any)
		if !ok {
			return fmt.Errorf("segment %q: element is not an object", p)
		}
		cur = m
	}
	return nil
}

// splitSegment parses one path segment, recognizing a trailing
// "[idx]" array index.
func splitSegment(p string) (name string, idx int, hasIdx bool, err error) {
	open := strings.IndexByte(p, '[')
	if open < 0 {
		return p, 0, false, nil
	}
	if open == 0 || !strings.HasSuffix(p, "]") {
		return "", 0, false, fmt.Errorf("segment %q: malformed array index", p)
	}
	n, aerr := strconv.Atoi(p[open+1 : len(p)-1])
	if aerr != nil || n < 0 {
		return "", 0, false, fmt.Errorf("segment %q: malformed array index", p)
	}
	return p[:open], n, true, nil
}
