package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Axis is one swept dimension of a Grid: a dotted path into the spec
// document ("smm.interval_ms", "params.cache", "seed") and the JSON
// values it takes. Values are raw JSON so an axis can sweep numbers,
// strings or booleans without per-field plumbing.
type Axis struct {
	Path   string            `json:"path"`
	Values []json.RawMessage `json:"values"`
}

// Grid is a declarative parameter sweep: a base spec plus axes whose
// cartesian product it expands into. The expansion goes through the
// strict canonical parser, so a typo'd path fails loudly exactly like a
// typo'd field in a scenario file, and every produced cell is a valid,
// canonically-encodable Spec — which is what makes a grid submission
// content-addressable cell by cell.
type Grid struct {
	Base Spec   `json:"base"`
	Axes []Axis `json:"axes,omitempty"`
}

// MaxGridCells bounds one expansion. The sweep server's admission
// control bounds queued work; this bounds the planning step itself so a
// hostile or fat-fingered grid cannot allocate unbounded specs.
const MaxGridCells = 100000

// Expand produces the grid's cells in deterministic row-major order
// (first axis slowest, last axis fastest). A grid with no axes is the
// base spec alone.
func (g Grid) Expand() ([]Spec, error) {
	if err := g.Base.Validate(); err != nil {
		return nil, err
	}
	total := 1
	for _, ax := range g.Axes {
		if ax.Path == "" {
			return nil, fmt.Errorf("scenario: grid axis with empty path")
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("scenario: grid axis %q has no values", ax.Path)
		}
		if total > MaxGridCells/len(ax.Values) {
			return nil, fmt.Errorf("scenario: grid exceeds %d cells", MaxGridCells)
		}
		total *= len(ax.Values)
	}
	base, err := g.Base.JSON()
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, 0, total)
	idx := make([]int, len(g.Axes))
	for {
		var doc map[string]any
		if err := json.Unmarshal(base, &doc); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		for a, ax := range g.Axes {
			if err := setPath(doc, ax.Path, ax.Values[idx[a]]); err != nil {
				return nil, fmt.Errorf("scenario: grid axis %q: %w", ax.Path, err)
			}
		}
		data, err := json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		// Parse is strict: an axis path naming a field no Spec has is
		// rejected here, before any cell is admitted anywhere.
		sp, err := Parse(data)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
		// Odometer increment, last axis fastest.
		a := len(idx) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(g.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			return specs, nil
		}
	}
}

// setPath writes a raw JSON value at a dotted path, creating
// intermediate objects as needed (the strict re-parse rejects paths
// that invent fields, so creation cannot smuggle unknowns through).
func setPath(doc map[string]any, path string, v json.RawMessage) error {
	parts := strings.Split(path, ".")
	cur := doc
	for _, p := range parts[:len(parts)-1] {
		next, ok := cur[p]
		if !ok || next == nil {
			m := map[string]any{}
			cur[p] = m
			cur = m
			continue
		}
		m, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("segment %q is not an object", p)
		}
		cur = m
	}
	cur[parts[len(parts)-1]] = v
	return nil
}
