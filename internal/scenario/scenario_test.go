package scenario

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// fullSpec exercises every field group of the spec.
func fullSpec() Spec {
	return Spec{
		Name:     "kitchen-sink",
		Workload: "nas",
		Machine:  Machine{Nodes: 8, RanksPerNode: 4, HTT: true},
		SMM:      SMMPlan{Level: "long", IntervalMS: 1000, SMIScale: 1.5},
		Faults: &FaultPlan{
			LossProb:  0.01,
			CrashNode: 1, CrashAtS: 5,
			HangNode: 2, HangAtS: 6, HangForS: 1,
			StormNode: 3, StormAtS: 7, StormForS: 2, StormPeriodJiffies: 10,
			DegradeNode: 1, DegradeAtS: 8, DegradeForS: 3, DegradeSlow: 4, DegradeLatencyS: 0.0002,
		},
		Runs: 6, Seed: 42, WatchdogS: 10,
		Params: Params{Bench: "BT", Class: "A"},
		Obs:    ObsPlan{Trace: "t.json", Metrics: "m.json"},
	}
}

// TestRoundTripByteStable pins the canonical-form contract:
// Parse(s.JSON()) == s, and re-encoding what was parsed reproduces the
// encoding byte for byte.
func TestRoundTripByteStable(t *testing.T) {
	for name, sp := range map[string]Spec{
		"full":    fullSpec(),
		"minimal": {Workload: "convolve"},
		"typical": {
			Workload: "unixbench",
			Machine:  Machine{CPUs: 8},
			SMM:      SMMPlan{Level: "long", IntervalMS: 600},
			Params:   Params{DurationS: 2},
		},
	} {
		doc, err := sp.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", name, err)
		}
		got, err := Parse(doc)
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		doc2, err := got.JSON()
		if err != nil {
			t.Fatalf("%s: re-JSON: %v", name, err)
		}
		if !bytes.Equal(doc, doc2) {
			t.Errorf("%s: round trip not byte-stable:\n%s\nvs\n%s", name, doc, doc2)
		}
	}
}

// TestParseRejectsUnknownFields pins strict decoding: a typo anywhere in
// the tree is an error, not a silently-applied default.
func TestParseRejectsUnknownFields(t *testing.T) {
	for name, doc := range map[string]string{
		"top level": `{"workload": "nas", "bogus": 1, "params": {"bench": "EP", "class": "A"}}`,
		"nested":    `{"workload": "nas", "machine": {"nodez": 4}, "params": {"bench": "EP", "class": "A"}}`,
		"in faults": `{"workload": "nas", "faults": {"loss": 0.1}, "params": {"bench": "EP", "class": "A"}}`,
	} {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: unknown field accepted", name)
		}
	}
}

// TestParseRejectsTrailingData pins that a concatenation of documents is
// not silently truncated to its first.
func TestParseRejectsTrailingData(t *testing.T) {
	doc := `{"workload": "nas", "params": {"bench": "EP", "class": "A"}}{"workload": "convolve"}`
	if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing document accepted (err = %v)", err)
	}
}

// TestValidateRejections pins the workload-independent shape rules.
func TestValidateRejections(t *testing.T) {
	cases := map[string]Spec{
		"no workload":    {},
		"negative nodes": {Workload: "nas", Machine: Machine{Nodes: -1}},
		"negative rpn":   {Workload: "nas", Machine: Machine{RanksPerNode: -1}},
		"negative cpus":  {Workload: "convolve", Machine: Machine{CPUs: -4}},
		"negative runs":  {Workload: "nas", Runs: -1},
		"negative ival":  {Workload: "convolve", SMM: SMMPlan{IntervalMS: -1}},
		"negative scale": {Workload: "nas", SMM: SMMPlan{SMIScale: -0.5}},
		"bad level":      {Workload: "nas", SMM: SMMPlan{Level: "loud"}},
		"loss > 1":       {Workload: "nas", Faults: &FaultPlan{LossProb: 1.5}},
		"loss < 0":       {Workload: "nas", Faults: &FaultPlan{LossProb: -0.5}},
		"negative time":  {Workload: "nas", Faults: &FaultPlan{CrashAtS: -3}},
	}
	for name, sp := range cases {
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := Spec{
		Workload:  "nas",
		SMM:       SMMPlan{Level: "short"},
		WatchdogS: -1, // negative = watchdog disabled, deliberately legal
		Params:    Params{Bench: "EP", Class: "A"},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestFaultPlanActive pins the nil-safe field-check semantics.
func TestFaultPlanActive(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.Active() {
		t.Fatal("nil plan active")
	}
	if (&FaultPlan{}).Active() {
		t.Fatal("zero plan active")
	}
	// A node selector without its arming time stays inert, matching the
	// runner's Schedule lowering.
	if (&FaultPlan{CrashNode: 3}).Active() {
		t.Fatal("unarmed crash selector active")
	}
	for name, p := range map[string]*FaultPlan{
		"loss":    {LossProb: 0.01},
		"crash":   {CrashAtS: 1},
		"hang":    {HangAtS: 1},
		"storm":   {StormAtS: 1},
		"degrade": {DegradeAtS: 1, DegradeSlow: 2},
	} {
		if !p.Active() {
			t.Errorf("%s plan inactive", name)
		}
	}
}

// TestLoad pins file loading and its error paths.
func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cell.json"
	sp := fullSpec()
	doc, err := sp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != sp.Name || got.Faults == nil || got.Faults.LossProb != sp.Faults.LossProb {
		t.Fatalf("Load mismatch: %+v", got)
	}
	if _, err := Load(dir + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
