// Package scenario defines the declarative run specification shared by
// every experiment path in the repository. A Spec captures, as plain
// serializable data, everything that determines a measurement's result:
// the simulated machine topology, the SMM injection plan, an optional
// fault scenario, the workload name with its parameters, and the
// seed/repetition schedule. Execution-only concerns that cannot change
// a result — worker counts, tracers, output files — live outside the
// Spec (internal/runner.Exec), so a Spec is a complete, reproducible
// description of *what* was measured.
//
// Specs are JSON documents with a byte-stable canonical form:
// Parse(s.JSON()) returns s unchanged, and JSON(Parse(doc)) is the
// canonical re-encoding of doc. Parsing is strict — unknown fields are
// rejected so a typo in a scenario file fails loudly instead of
// silently meaning a default.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Spec is one declarative experiment cell. The zero value of every
// field means "workload default": the runner's defaulting rules (seed
// 1, one run, one node, the workload's own interval and duration
// presets) are applied at execution time, never by mutating the Spec,
// so round-trips stay byte-stable.
type Spec struct {
	// Name is a free-form label for reports and manifests.
	Name string `json:"name,omitempty"`
	// Workload selects a registered workload (internal/runner's
	// registry): nas, convolve, unixbench, rim, energy, drift,
	// profiler, ...
	Workload string `json:"workload"`
	// Machine describes the simulated platform topology.
	Machine Machine `json:"machine"`
	// SMM describes the SMI injection plan.
	SMM SMMPlan `json:"smm"`
	// Faults, when non-nil and active, arms a fault scenario.
	Faults *FaultPlan `json:"faults,omitempty"`
	// Runs averages this many repetitions with derived seeds (0 = 1).
	Runs int `json:"runs,omitempty"`
	// Seed bases the deterministic seeds (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// WatchdogS overrides the MPI progress-watchdog interval in seconds
	// (0 = default, negative = disabled). NAS-family workloads only.
	WatchdogS float64 `json:"watchdog_s,omitempty"`
	// Params carries the workload-specific knobs.
	Params Params `json:"params"`
	// Obs names default observability outputs for CLI runs.
	Obs ObsPlan `json:"obs"`
}

// Machine is the simulated platform topology.
type Machine struct {
	// Nodes is the cluster node count (0 = 1).
	Nodes int `json:"nodes,omitempty"`
	// RanksPerNode is the MPI ranks per node (NAS; 0 = 1).
	RanksPerNode int `json:"ranks_per_node,omitempty"`
	// HTT enables hyper-threading (NAS Wyeast nodes; the R410 single
	// node always has HTT and exposes it via CPUs instead).
	HTT bool `json:"htt,omitempty"`
	// CPUs is the online logical CPU count for single-node workloads
	// (convolve/unixbench, 1–8; 0 = 4, the paper's physical core count).
	CPUs int `json:"cpus,omitempty"`
}

// SMMPlan is the SMI injection plan.
type SMMPlan struct {
	// Level is the injection level: "" or "none" (SMM0), "short"
	// (SMM1), "long" (SMM2). Workloads that imply a level (convolve
	// always injects long SMIs when an interval is set) validate it.
	Level string `json:"level,omitempty"`
	// IntervalMS is the gap between SMIs in milliseconds (0 = the
	// workload's default: off for convolve/unixbench, 1000 for NAS).
	IntervalMS int `json:"interval_ms,omitempty"`
	// SMIScale multiplies the SMI duration range when > 0 and ≠ 1 — the
	// deliberate physics perturbation used by sensitivity studies and
	// the fidelity harness's negative tests.
	SMIScale float64 `json:"smi_scale,omitempty"`
}

// FaultPlan describes a fault scenario in wall-clock seconds. It is
// the serializable twin of internal/runner.FaultPlan; each fault is
// armed by its probability or start time and the zero plan injects
// nothing.
type FaultPlan struct {
	// LossProb drops every fabric message with this probability.
	LossProb float64 `json:"loss_prob,omitempty"`

	// CrashAtS > 0 crashes CrashNode at that time, permanently.
	CrashNode int     `json:"crash_node,omitempty"`
	CrashAtS  float64 `json:"crash_at_s,omitempty"`

	// HangAtS > 0 hangs HangNode for HangForS (0 = forever).
	HangNode int     `json:"hang_node,omitempty"`
	HangAtS  float64 `json:"hang_at_s,omitempty"`
	HangForS float64 `json:"hang_for_s,omitempty"`

	// StormAtS > 0 reconfigures StormNode's SMI driver to one short SMI
	// every StormPeriodJiffies jiffies (0 = 10) for StormForS.
	StormNode          int     `json:"storm_node,omitempty"`
	StormAtS           float64 `json:"storm_at_s,omitempty"`
	StormForS          float64 `json:"storm_for_s,omitempty"`
	StormPeriodJiffies uint64  `json:"storm_period_jiffies,omitempty"`

	// DegradeAtS > 0 degrades all traffic into DegradeNode for
	// DegradeForS: serialization × DegradeSlow plus DegradeLatencyS.
	DegradeNode     int     `json:"degrade_node,omitempty"`
	DegradeAtS      float64 `json:"degrade_at_s,omitempty"`
	DegradeForS     float64 `json:"degrade_for_s,omitempty"`
	DegradeSlow     float64 `json:"degrade_slow,omitempty"`
	DegradeLatencyS float64 `json:"degrade_latency_s,omitempty"`
}

// Active reports whether the plan injects anything. It is a plain
// field check — no schedule is built — so call sites can consult it
// freely; the runner lowers the plan to a fault schedule exactly once
// per run.
func (p *FaultPlan) Active() bool {
	if p == nil {
		return false
	}
	return p.LossProb > 0 || p.CrashAtS > 0 || p.HangAtS > 0 ||
		p.StormAtS > 0 || p.DegradeAtS > 0
}

// Params is the union of workload-specific knobs. Each workload
// consumes its own subset and rejects values that make no sense for
// it; unrelated zero fields are simply absent from the JSON.
type Params struct {
	// Bench is the NAS benchmark: EP, BT, FT, CG, MG, IS, LU, SP.
	Bench string `json:"bench,omitempty"`
	// Class is the NPB problem class: S, A, B or C.
	Class string `json:"class,omitempty"`
	// Cache is the convolve cache behavior: "friendly" (default) or
	// "unfriendly".
	Cache string `json:"cache,omitempty"`
	// Passes overrides the convolve pass count (0 = preset default).
	Passes int `json:"passes,omitempty"`
	// DurationS is a workload duration in seconds: the per-test window
	// for unixbench (0 = 4), the measurement run for drift (0 = 10).
	DurationS float64 `json:"duration_s,omitempty"`
	// PeriodMS is the RIM integrity-check period (0 = 1000).
	PeriodMS int `json:"period_ms,omitempty"`
	// MegaBytes is the RIM measurement size per check (0 = 25).
	MegaBytes int `json:"megabytes,omitempty"`
	// ChunkKB splits RIM checks into bounded SMIs (0 = whole checks).
	ChunkKB int `json:"chunk_kb,omitempty"`
	// WorkSeconds is the RIM app compute per core (0 = 5).
	WorkSeconds float64 `json:"work_seconds,omitempty"`
	// Mode is the profiler SMM handling mode: "defer" (default) or
	// "drop".
	Mode string `json:"mode,omitempty"`
}

// ObsPlan names default observability outputs. CLI flags win over
// these; they exist so a scenario file can ship with its preferred
// artifact paths.
type ObsPlan struct {
	// Trace is a Chrome trace-event timeline output path.
	Trace string `json:"trace,omitempty"`
	// Metrics is a metrics-snapshot JSON output path.
	Metrics string `json:"metrics,omitempty"`
}

// Parse decodes a scenario document strictly: unknown fields anywhere
// in the tree are errors, so typos fail instead of meaning defaults.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	// Reject trailing garbage after the document.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// JSON renders the spec in its canonical byte-stable form.
func (s Spec) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(data, '\n'), nil
}

// Validate checks the workload-independent shape of the spec. The
// runner layers workload-specific validation (known workload name,
// bench/class/cache values, CPU ranges) on top.
func (s Spec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("scenario: workload is required")
	}
	if s.Machine.Nodes < 0 || s.Machine.RanksPerNode < 0 || s.Machine.CPUs < 0 {
		return fmt.Errorf("scenario: machine counts must be ≥ 0 (nodes=%d, ranks_per_node=%d, cpus=%d)",
			s.Machine.Nodes, s.Machine.RanksPerNode, s.Machine.CPUs)
	}
	if s.Runs < 0 {
		return fmt.Errorf("scenario: runs must be ≥ 0 (got %d)", s.Runs)
	}
	if s.SMM.IntervalMS < 0 {
		return fmt.Errorf("scenario: smm.interval_ms must be ≥ 0 (got %d)", s.SMM.IntervalMS)
	}
	if s.SMM.SMIScale < 0 {
		return fmt.Errorf("scenario: smm.smi_scale must be ≥ 0 (got %g)", s.SMM.SMIScale)
	}
	switch s.SMM.Level {
	case "", "none", "short", "long":
	default:
		return fmt.Errorf("scenario: unknown smm.level %q (want none, short or long)", s.SMM.Level)
	}
	if f := s.Faults; f != nil {
		if f.LossProb < 0 || f.LossProb > 1 {
			return fmt.Errorf("scenario: faults.loss_prob must be in [0,1] (got %g)", f.LossProb)
		}
		for _, t := range []struct {
			name string
			v    float64
		}{
			{"crash_at_s", f.CrashAtS}, {"hang_at_s", f.HangAtS},
			{"hang_for_s", f.HangForS}, {"storm_at_s", f.StormAtS},
			{"storm_for_s", f.StormForS}, {"degrade_at_s", f.DegradeAtS},
			{"degrade_for_s", f.DegradeForS}, {"degrade_latency_s", f.DegradeLatencyS},
		} {
			if t.v < 0 {
				return fmt.Errorf("scenario: faults.%s must be ≥ 0 (got %g)", t.name, t.v)
			}
		}
	}
	return nil
}
