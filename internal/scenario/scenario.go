// Package scenario defines the declarative run specification shared by
// every experiment path in the repository. A Spec captures, as plain
// serializable data, everything that determines a measurement's result:
// the simulated machine topology, the SMM injection plan, an optional
// fault scenario, the workload name with its parameters, and the
// seed/repetition schedule. Execution-only concerns that cannot change
// a result — worker counts, tracers, output files — live outside the
// Spec (internal/runner.Exec), so a Spec is a complete, reproducible
// description of *what* was measured.
//
// Specs are JSON documents with a byte-stable canonical form:
// Parse(s.JSON()) returns s unchanged, and JSON(Parse(doc)) is the
// canonical re-encoding of doc. Parsing is strict — unknown fields are
// rejected so a typo in a scenario file fails loudly instead of
// silently meaning a default.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Spec is one declarative experiment cell. The zero value of every
// field means "workload default": the runner's defaulting rules (seed
// 1, one run, one node, the workload's own interval and duration
// presets) are applied at execution time, never by mutating the Spec,
// so round-trips stay byte-stable.
type Spec struct {
	// Name is a free-form label for reports and manifests.
	Name string `json:"name,omitempty"`
	// Workload selects a registered workload (internal/runner's
	// registry): nas, convolve, unixbench, rim, energy, drift,
	// profiler, ...
	Workload string `json:"workload"`
	// Machine describes the simulated platform topology.
	Machine Machine `json:"machine"`
	// SMM describes the SMI injection plan.
	SMM SMMPlan `json:"smm"`
	// Noise lists perturbation sources by family. It generalizes the
	// smm block: at most one "smm" entry — equivalent to, and mutually
	// exclusive with, a non-zero smm block above — plus any number of
	// "osjitter" entries (per-core daemon-tick jitter). Absent means
	// the smm block alone drives injection.
	Noise []NoiseSource `json:"noise,omitempty"`
	// Faults, when non-nil and active, arms a fault scenario.
	Faults *FaultPlan `json:"faults,omitempty"`
	// Runs averages this many repetitions with derived seeds (0 = 1).
	Runs int `json:"runs,omitempty"`
	// Seed bases the deterministic seeds (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// WatchdogS overrides the MPI progress-watchdog interval in seconds
	// (0 = default, negative = disabled). NAS-family workloads only.
	WatchdogS float64 `json:"watchdog_s,omitempty"`
	// Params carries the workload-specific knobs.
	Params Params `json:"params"`
	// Obs names default observability outputs for CLI runs.
	Obs ObsPlan `json:"obs"`
}

// Machine is the simulated platform topology.
type Machine struct {
	// Nodes is the cluster node count (0 = 1).
	Nodes int `json:"nodes,omitempty"`
	// RanksPerNode is the MPI ranks per node (NAS; 0 = 1).
	RanksPerNode int `json:"ranks_per_node,omitempty"`
	// HTT enables hyper-threading (NAS Wyeast nodes; the R410 single
	// node always has HTT and exposes it via CPUs instead).
	HTT bool `json:"htt,omitempty"`
	// CPUs is the online logical CPU count for single-node workloads
	// (convolve/unixbench, 1–8; 0 = 4, the paper's physical core count).
	CPUs int `json:"cpus,omitempty"`
	// SMTShares sets per-physical-core asymmetric SMT slot shares
	// (SYNPA-style): the fraction of contested issue slots the
	// sibling-0 logical CPU keeps when both hyper-threaded siblings
	// are busy. Entries in (0,1); empty or short means the symmetric
	// 0.5 split for the remaining cores.
	SMTShares []float64 `json:"smt_shares,omitempty"`
}

// SMMPlan is the SMI injection plan.
type SMMPlan struct {
	// Level is the injection level: "" or "none" (SMM0), "short"
	// (SMM1), "long" (SMM2). Workloads that imply a level (convolve
	// always injects long SMIs when an interval is set) validate it.
	Level string `json:"level,omitempty"`
	// IntervalMS is the gap between SMIs in milliseconds (0 = the
	// workload's default: off for convolve/unixbench, 1000 for NAS).
	IntervalMS int `json:"interval_ms,omitempty"`
	// SMIScale multiplies the SMI duration range when > 0 and ≠ 1 — the
	// deliberate physics perturbation used by sensitivity studies and
	// the fidelity harness's negative tests.
	SMIScale float64 `json:"smi_scale,omitempty"`
}

// Noise-family names a NoiseSource entry may use.
const (
	// NoiseSMM is the SMM family: node-global, OS-invisible SMIs.
	NoiseSMM = "smm"
	// NoiseOSJitter is the OS/daemon-jitter family: per-core,
	// OS-visible periodic steals.
	NoiseOSJitter = "osjitter"
)

// NoiseSource configures one perturbation source. Family selects which
// of the field groups applies: "smm" entries use the SMMPlan-shaped
// fields (level/interval_ms/smi_scale), "osjitter" entries use the
// jitter fields (period_ms/duration_us/jitter_frac/seed/cpus).
type NoiseSource struct {
	// Family is the source family: "smm" or "osjitter".
	Family string `json:"family"`

	// SMM-family fields, with SMMPlan semantics.
	Level      string  `json:"level,omitempty"`
	IntervalMS int     `json:"interval_ms,omitempty"`
	SMIScale   float64 `json:"smi_scale,omitempty"`

	// OS-jitter-family fields.
	//
	// PeriodMS is the mean gap between daemon ticks on each target CPU
	// in milliseconds; DurationUS the mean tick length in microseconds;
	// JitterFrac the uniform fractional spread in [0,1) applied to
	// every period and duration draw. Seed offsets the per-CPU steal
	// schedule (mixed with the node index and run seed at provisioning,
	// so repetitions vary like SMI phases do). CPUs lists target
	// logical CPUs (empty = all).
	PeriodMS   float64 `json:"period_ms,omitempty"`
	DurationUS float64 `json:"duration_us,omitempty"`
	JitterFrac float64 `json:"jitter_frac,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	CPUs       []int   `json:"cpus,omitempty"`
}

// EffectiveSMM resolves the spec's SMI injection plan: the "smm" noise
// entry when one exists, the legacy smm block otherwise (validation
// guarantees they are never both set). Every consumer of the SMM plan
// goes through this, which is what lets the legacy block lower into
// the noise list without behavior changes.
func (s Spec) EffectiveSMM() SMMPlan {
	for _, n := range s.Noise {
		if n.Family == NoiseSMM {
			return SMMPlan{Level: n.Level, IntervalMS: n.IntervalMS, SMIScale: n.SMIScale}
		}
	}
	return s.SMM
}

// JitterSources returns the spec's osjitter noise entries.
func (s Spec) JitterSources() []NoiseSource {
	var out []NoiseSource
	for _, n := range s.Noise {
		if n.Family == NoiseOSJitter {
			out = append(out, n)
		}
	}
	return out
}

// FaultPlan describes a fault scenario in wall-clock seconds. It is
// the serializable twin of internal/runner.FaultPlan; each fault is
// armed by its probability or start time and the zero plan injects
// nothing.
type FaultPlan struct {
	// LossProb drops every fabric message with this probability.
	LossProb float64 `json:"loss_prob,omitempty"`

	// CrashAtS > 0 crashes CrashNode at that time, permanently.
	CrashNode int     `json:"crash_node,omitempty"`
	CrashAtS  float64 `json:"crash_at_s,omitempty"`

	// HangAtS > 0 hangs HangNode for HangForS (0 = forever).
	HangNode int     `json:"hang_node,omitempty"`
	HangAtS  float64 `json:"hang_at_s,omitempty"`
	HangForS float64 `json:"hang_for_s,omitempty"`

	// StormAtS > 0 reconfigures StormNode's SMI driver to one short SMI
	// every StormPeriodJiffies jiffies (0 = 10) for StormForS.
	StormNode          int     `json:"storm_node,omitempty"`
	StormAtS           float64 `json:"storm_at_s,omitempty"`
	StormForS          float64 `json:"storm_for_s,omitempty"`
	StormPeriodJiffies uint64  `json:"storm_period_jiffies,omitempty"`

	// DegradeAtS > 0 degrades all traffic into DegradeNode for
	// DegradeForS: serialization × DegradeSlow plus DegradeLatencyS.
	DegradeNode     int     `json:"degrade_node,omitempty"`
	DegradeAtS      float64 `json:"degrade_at_s,omitempty"`
	DegradeForS     float64 `json:"degrade_for_s,omitempty"`
	DegradeSlow     float64 `json:"degrade_slow,omitempty"`
	DegradeLatencyS float64 `json:"degrade_latency_s,omitempty"`
}

// Active reports whether the plan injects anything. It is a plain
// field check — no schedule is built — so call sites can consult it
// freely; the runner lowers the plan to a fault schedule exactly once
// per run.
func (p *FaultPlan) Active() bool {
	if p == nil {
		return false
	}
	return p.LossProb > 0 || p.CrashAtS > 0 || p.HangAtS > 0 ||
		p.StormAtS > 0 || p.DegradeAtS > 0
}

// Params is the union of workload-specific knobs. Each workload
// consumes its own subset and rejects values that make no sense for
// it; unrelated zero fields are simply absent from the JSON.
type Params struct {
	// Bench is the NAS benchmark: EP, BT, FT, CG, MG, IS, LU, SP.
	Bench string `json:"bench,omitempty"`
	// Class is the NPB problem class: S, A, B or C.
	Class string `json:"class,omitempty"`
	// Cache is the convolve cache behavior: "friendly" (default) or
	// "unfriendly".
	Cache string `json:"cache,omitempty"`
	// Passes overrides the convolve pass count (0 = preset default).
	Passes int `json:"passes,omitempty"`
	// DurationS is a workload duration in seconds: the per-test window
	// for unixbench (0 = 4), the measurement run for drift (0 = 10).
	DurationS float64 `json:"duration_s,omitempty"`
	// PeriodMS is the RIM integrity-check period (0 = 1000).
	PeriodMS int `json:"period_ms,omitempty"`
	// MegaBytes is the RIM measurement size per check (0 = 25).
	MegaBytes int `json:"megabytes,omitempty"`
	// ChunkKB splits RIM checks into bounded SMIs (0 = whole checks).
	ChunkKB int `json:"chunk_kb,omitempty"`
	// WorkSeconds is the RIM app compute per core (0 = 5).
	WorkSeconds float64 `json:"work_seconds,omitempty"`
	// Mode is the profiler SMM handling mode: "defer" (default) or
	// "drop".
	Mode string `json:"mode,omitempty"`
}

// ObsPlan names default observability outputs. CLI flags win over
// these; they exist so a scenario file can ship with its preferred
// artifact paths.
type ObsPlan struct {
	// Trace is a Chrome trace-event timeline output path.
	Trace string `json:"trace,omitempty"`
	// Metrics is a metrics-snapshot JSON output path.
	Metrics string `json:"metrics,omitempty"`
}

// Parse decodes a scenario document strictly: unknown fields anywhere
// in the tree are errors, so typos fail instead of meaning defaults.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	// Reject trailing garbage after the document.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// JSON renders the spec in its canonical byte-stable form.
func (s Spec) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(data, '\n'), nil
}

// Validate checks the workload-independent shape of the spec. The
// runner layers workload-specific validation (known workload name,
// bench/class/cache values, CPU ranges) on top.
func (s Spec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("scenario: workload is required")
	}
	if s.Machine.Nodes < 0 || s.Machine.RanksPerNode < 0 || s.Machine.CPUs < 0 {
		return fmt.Errorf("scenario: machine counts must be ≥ 0 (nodes=%d, ranks_per_node=%d, cpus=%d)",
			s.Machine.Nodes, s.Machine.RanksPerNode, s.Machine.CPUs)
	}
	if s.Runs < 0 {
		return fmt.Errorf("scenario: runs must be ≥ 0 (got %d)", s.Runs)
	}
	if err := s.SMM.validate("smm"); err != nil {
		return err
	}
	for i, sh := range s.Machine.SMTShares {
		if sh <= 0 || sh >= 1 {
			return fmt.Errorf("scenario: machine.smt_shares[%d] must be in (0,1) (got %g)", i, sh)
		}
	}
	if err := s.validateNoise(); err != nil {
		return err
	}
	if f := s.Faults; f != nil {
		if f.LossProb < 0 || f.LossProb > 1 {
			return fmt.Errorf("scenario: faults.loss_prob must be in [0,1] (got %g)", f.LossProb)
		}
		for _, t := range []struct {
			name string
			v    float64
		}{
			{"crash_at_s", f.CrashAtS}, {"hang_at_s", f.HangAtS},
			{"hang_for_s", f.HangForS}, {"storm_at_s", f.StormAtS},
			{"storm_for_s", f.StormForS}, {"degrade_at_s", f.DegradeAtS},
			{"degrade_for_s", f.DegradeForS}, {"degrade_latency_s", f.DegradeLatencyS},
		} {
			if t.v < 0 {
				return fmt.Errorf("scenario: faults.%s must be ≥ 0 (got %g)", t.name, t.v)
			}
		}
	}
	return nil
}

// validate checks an SMM plan's fields; where names the plan in errors
// ("smm" for the legacy block, "noise[i]" for a noise entry).
func (p SMMPlan) validate(where string) error {
	if p.IntervalMS < 0 {
		return fmt.Errorf("scenario: %s.interval_ms must be ≥ 0 (got %d)", where, p.IntervalMS)
	}
	if p.SMIScale < 0 {
		return fmt.Errorf("scenario: %s.smi_scale must be ≥ 0 (got %g)", where, p.SMIScale)
	}
	switch p.Level {
	case "", "none", "short", "long":
	default:
		return fmt.Errorf("scenario: unknown %s.level %q (want none, short or long)", where, p.Level)
	}
	return nil
}

// validateNoise checks the noise list: known families, each entry
// using only its family's field group, at most one smm entry, and that
// entry mutually exclusive with a non-zero legacy smm block.
func (s Spec) validateNoise() error {
	smmEntries := 0
	for i, n := range s.Noise {
		where := fmt.Sprintf("noise[%d]", i)
		switch n.Family {
		case NoiseSMM:
			smmEntries++
			if smmEntries > 1 {
				return fmt.Errorf("scenario: %s: at most one smm noise entry is allowed", where)
			}
			if n.PeriodMS != 0 || n.DurationUS != 0 || n.JitterFrac != 0 || n.Seed != 0 || len(n.CPUs) > 0 {
				return fmt.Errorf("scenario: %s: jitter fields are not valid on an smm entry", where)
			}
			if s.SMM != (SMMPlan{}) {
				return fmt.Errorf("scenario: %s: the smm block and an smm noise entry are mutually exclusive", where)
			}
			if err := (SMMPlan{Level: n.Level, IntervalMS: n.IntervalMS, SMIScale: n.SMIScale}).validate(where); err != nil {
				return err
			}
		case NoiseOSJitter:
			if n.Level != "" || n.IntervalMS != 0 || n.SMIScale != 0 {
				return fmt.Errorf("scenario: %s: smm fields are not valid on an osjitter entry", where)
			}
			if n.PeriodMS <= 0 {
				return fmt.Errorf("scenario: %s.period_ms must be > 0 (got %g)", where, n.PeriodMS)
			}
			if n.DurationUS <= 0 {
				return fmt.Errorf("scenario: %s.duration_us must be > 0 (got %g)", where, n.DurationUS)
			}
			if n.DurationUS/1000 >= n.PeriodMS {
				return fmt.Errorf("scenario: %s: duration_us %g must be shorter than period_ms %g", where, n.DurationUS, n.PeriodMS)
			}
			if n.JitterFrac < 0 || n.JitterFrac >= 1 {
				return fmt.Errorf("scenario: %s.jitter_frac must be in [0,1) (got %g)", where, n.JitterFrac)
			}
			for _, c := range n.CPUs {
				if c < 0 {
					return fmt.Errorf("scenario: %s.cpus entries must be ≥ 0 (got %d)", where, c)
				}
			}
		default:
			return fmt.Errorf("scenario: %s: unknown noise family %q (want %s or %s)", where, n.Family, NoiseSMM, NoiseOSJitter)
		}
	}
	return nil
}
