// Package rim models SMM-based Runtime Integrity Measurement agents —
// HyperSentry, HyperCheck and SPECTRE-style introspection frameworks —
// the security use case that motivates the paper: periodically hashing
// hypervisor or kernel memory *from SMM*, where malware cannot interfere
// but where every byte scanned is an all-core stall.
//
// The agent converts a measurement's size into SMM residency through a
// scan-rate model (SMM code runs with caches in a restricted state, far
// below normal memory throughput). It supports the whole-measurement
// strategy the early systems used (one long SMI per check) and the
// chunked strategy proposed to bound latency (split each check into many
// short SMIs), so the coverage-vs-interference tradeoff the paper's
// findings imply can be measured directly.
package rim

import (
	"fmt"

	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// Config describes an integrity-measurement agent.
type Config struct {
	// Period between the starts of consecutive checks.
	Period sim.Time
	// Bytes of memory measured per check (hypervisor text + page
	// tables; HyperSentry-class systems scan megabytes).
	Bytes int64
	// ScanBytesPerSec is the in-SMM hash throughput. SMM executes from
	// SMRAM with limited caching; tens to a few hundred MB/s is
	// realistic. Zero selects 250 MB/s.
	ScanBytesPerSec float64
	// ChunkBytes splits each check into multiple SMIs of at most this
	// many bytes, with ChunkGap between them. Zero scans whole
	// measurements in single SMIs.
	ChunkBytes int64
	// ChunkGap is the host-execution window between chunk SMIs.
	ChunkGap sim.Time
	// FixedOverhead is per-SMI entry/exit cost beyond scanning (state
	// save, SMRAM setup). Zero selects 50 µs.
	FixedOverhead sim.Time
}

func (c *Config) defaults() error {
	if c.Period <= 0 {
		return fmt.Errorf("rim: period %v", c.Period)
	}
	if c.Bytes <= 0 {
		return fmt.Errorf("rim: %d bytes per check", c.Bytes)
	}
	if c.ScanBytesPerSec == 0 {
		c.ScanBytesPerSec = 250e6
	}
	if c.ScanBytesPerSec < 0 {
		return fmt.Errorf("rim: negative scan rate")
	}
	if c.FixedOverhead == 0 {
		c.FixedOverhead = 50 * sim.Microsecond
	}
	if c.ChunkBytes < 0 || c.ChunkGap < 0 {
		return fmt.Errorf("rim: negative chunking")
	}
	if c.ChunkBytes > 0 && c.ChunkGap == 0 {
		c.ChunkGap = sim.Millisecond
	}
	return nil
}

// SMIDuration reports the SMM residency of scanning `bytes` in one SMI.
func (c Config) SMIDuration(bytes int64) sim.Time {
	return c.FixedOverhead + sim.Time(float64(bytes)/c.ScanBytesPerSec*float64(sim.Second))
}

// Stats summarizes an agent's activity.
type Stats struct {
	Checks        int   // completed measurements
	SMIs          int   // SMIs issued
	BytesMeasured int64 // total bytes hashed
	// CheckLatency is the wall time from a check's start to its
	// completion (equal to the SMI duration when unchunked; chunking
	// trades longer check latency for shorter individual stalls).
	LastCheckLatency sim.Time
	MaxCheckLatency  sim.Time
}

// Agent periodically measures integrity via the node's SMM controller.
type Agent struct {
	eng  *sim.Engine
	ctrl *smm.Controller
	cfg  Config

	running bool
	stats   Stats
	next    *sim.Event
}

// NewAgent builds an agent over the node's SMM controller.
func NewAgent(eng *sim.Engine, ctrl *smm.Controller, cfg Config) (*Agent, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	return &Agent{eng: eng, ctrl: ctrl, cfg: cfg}, nil
}

// Config reports the agent's effective configuration.
func (a *Agent) Config() Config { return a.cfg }

// Stats reports activity so far.
func (a *Agent) Stats() Stats { return a.stats }

// Start arms the agent; the first check begins one period from now.
func (a *Agent) Start() {
	if a.running {
		return
	}
	a.running = true
	a.next = a.eng.After(a.cfg.Period, a.check)
}

// Stop disarms the agent; an in-flight check completes.
func (a *Agent) Stop() {
	if !a.running {
		return
	}
	a.running = false
	if a.next != nil {
		a.eng.Cancel(a.next)
		a.next = nil
	}
}

// Running reports whether the agent is armed.
func (a *Agent) Running() bool { return a.running }

// check runs one measurement (possibly as a chain of chunk SMIs), then
// re-arms for the next period.
func (a *Agent) check() {
	// The armed event has fired; drop the handle so a Stop during the
	// chunk chain cannot cancel a recycled event.
	a.next = nil
	if !a.running {
		return
	}
	start := a.eng.Now()
	remaining := a.cfg.Bytes
	var step func()
	step = func() {
		chunk := remaining
		if a.cfg.ChunkBytes > 0 && chunk > a.cfg.ChunkBytes {
			chunk = a.cfg.ChunkBytes
		}
		remaining -= chunk
		a.stats.SMIs++
		a.stats.BytesMeasured += chunk
		a.ctrl.TriggerSMI(a.cfg.SMIDuration(chunk), func() {
			if remaining > 0 {
				a.eng.After(a.cfg.ChunkGap, step)
				return
			}
			a.stats.Checks++
			lat := a.eng.Now() - start
			a.stats.LastCheckLatency = lat
			if lat > a.stats.MaxCheckLatency {
				a.stats.MaxCheckLatency = lat
			}
			if a.running {
				// Re-arm relative to the check's start so the period
				// is the check cadence, not dead time.
				wait := a.cfg.Period - lat
				if wait < sim.Millisecond {
					wait = sim.Millisecond
				}
				a.next = a.eng.After(wait, a.check)
			}
		})
	}
	step()
}
