package rim

import (
	"math"
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func newNode(seed int64) (*sim.Engine, *cluster.Cluster) {
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{}))
	return e, cl
}

func TestConfigValidation(t *testing.T) {
	e, cl := newNode(1)
	_ = e
	bad := []Config{
		{},
		{Period: sim.Second},
		{Period: sim.Second, Bytes: 1, ScanBytesPerSec: -1},
		{Period: sim.Second, Bytes: 1, ChunkBytes: -1},
	}
	for i, cfg := range bad {
		if _, err := NewAgent(cl.Eng, cl.Nodes[0].SMM, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	a, err := NewAgent(cl.Eng, cl.Nodes[0].SMM, Config{Period: sim.Second, Bytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().ScanBytesPerSec != 250e6 || a.Config().FixedOverhead != 50*sim.Microsecond {
		t.Error("defaults not applied")
	}
}

func TestSMIDuration(t *testing.T) {
	cfg := Config{Period: sim.Second, Bytes: 1, ScanBytesPerSec: 100e6, FixedOverhead: sim.Millisecond}
	// 10 MB at 100 MB/s = 100ms + 1ms overhead.
	got := cfg.SMIDuration(10e6)
	if math.Abs(float64(got-101*sim.Millisecond)) > float64(sim.Microsecond) {
		t.Fatalf("duration = %v, want 101ms", got)
	}
}

func TestWholeMeasurementChecks(t *testing.T) {
	e, cl := newNode(1)
	// 25 MB at 250 MB/s → 100 ms SMIs once a second: exactly the
	// paper's long-SMI scenario, now grounded in the RIM use case.
	a, err := NewAgent(e, cl.Nodes[0].SMM, Config{Period: sim.Second, Bytes: 25 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	e.RunUntil(10 * sim.Second)
	st := a.Stats()
	if st.Checks < 8 {
		t.Fatalf("checks = %d over 10s, want ≈9", st.Checks)
	}
	if st.SMIs < st.Checks || st.SMIs > st.Checks+1 {
		// One SMI may be in flight when the horizon cuts off.
		t.Fatalf("unchunked agent issued %d SMIs for %d checks", st.SMIs, st.Checks)
	}
	if st.MaxCheckLatency < 100*sim.Millisecond || st.MaxCheckLatency > 120*sim.Millisecond {
		t.Fatalf("check latency %v, want ≈105ms", st.MaxCheckLatency)
	}
	smmStats := cl.Nodes[0].SMM.Stats()
	// The controller counts completed episodes; the agent may have one
	// SMI still in flight at the horizon.
	if smmStats.Count != st.Checks {
		t.Fatalf("controller saw %d completed SMIs, agent completed %d checks", smmStats.Count, st.Checks)
	}
}

func TestChunkedChecksBoundStallLength(t *testing.T) {
	e, cl := newNode(1)
	a, err := NewAgent(e, cl.Nodes[0].SMM, Config{
		Period: sim.Second, Bytes: 25 << 20,
		ChunkBytes: 512 << 10, ChunkGap: 2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	e.RunUntil(5 * sim.Second)
	st := a.Stats()
	if st.Checks < 3 {
		t.Fatalf("checks = %d", st.Checks)
	}
	if st.SMIs < st.Checks*50 {
		t.Fatalf("SMIs = %d for %d checks; expected ≈51 chunks each", st.SMIs, st.Checks)
	}
	// No individual stall may exceed the chunk's scan time (+overhead).
	maxStall := cl.Nodes[0].SMM.Stats().MaxLatency
	chunkDur := a.Config().SMIDuration(512 << 10)
	if maxStall > chunkDur+8*400*sim.Microsecond+sim.Millisecond {
		t.Fatalf("a chunk stalled %v, chunk budget %v", maxStall, chunkDur)
	}
	// But the check latency stretches well past the unchunked 105ms.
	if st.MaxCheckLatency < 150*sim.Millisecond {
		t.Fatalf("chunked check latency %v suspiciously low", st.MaxCheckLatency)
	}
}

// The tradeoff the paper's results imply: chunking slashes the worst
// single stall (latency) but pays per-SMI entry/exit + rendezvous
// overhead on every chunk (throughput) — there is no free lunch, which
// is exactly why long-SMI RIM designs exist despite their noise.
func TestChunkingReducesWorstStall(t *testing.T) {
	run := func(chunk int64) (worst sim.Time, elapsed sim.Time) {
		e, cl := newNode(2)
		a, err := NewAgent(e, cl.Nodes[0].SMM, Config{
			Period: sim.Second, Bytes: 25 << 20, ChunkBytes: chunk,
		})
		if err != nil {
			t.Fatal(err)
		}
		a.Start()
		var done sim.Time
		cl.Nodes[0].Kernel.Spawn("app", cpu.Profile{CPI: 1}, func(tk *kernel.Task) {
			tk.Compute(2.4e9 * 5)
			done = tk.Gettime()
			e.Stop()
		})
		e.Run()
		return cl.Nodes[0].SMM.Stats().MaxLatency, done
	}
	worstWhole, elapsedWhole := run(0)
	worstChunk, elapsedChunk := run(256 << 10)
	if worstChunk >= worstWhole/10 {
		t.Fatalf("chunking should slash the worst stall: %v vs %v", worstChunk, worstWhole)
	}
	// ...at a real throughput cost: ~100 extra SMI entries per check,
	// each paying fixed overhead plus per-CPU rendezvous.
	ratio := float64(elapsedChunk) / float64(elapsedWhole)
	if ratio <= 1.0 {
		t.Fatalf("chunking showed no per-SMI overhead cost (%.2f×)", ratio)
	}
	if ratio > 2.0 {
		t.Fatalf("chunking overhead implausibly large: %.2f×", ratio)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	e, cl := newNode(1)
	a, err := NewAgent(e, cl.Nodes[0].SMM, Config{Period: sim.Second, Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	a.Start()
	if !a.Running() {
		t.Fatal("not running")
	}
	e.RunUntil(2500 * sim.Millisecond)
	a.Stop()
	a.Stop()
	n := a.Stats().Checks
	e.RunUntil(10 * sim.Second)
	if a.Stats().Checks != n {
		t.Fatal("checks after Stop")
	}
}
