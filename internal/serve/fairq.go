package serve

import (
	"fmt"
	"sync"
)

// fairQueue is a weighted start-time fair queue over tenants. Every
// cell has unit cost; a tenant's next cell is tagged with a virtual
// finish time max(V, lastTag) + 1/weight, and dispatch always picks the
// smallest tag (ties broken by enqueue order). With uniform costs this
// interleaves tenants in weight proportion regardless of backlog shape:
// a tenant holding ten thousand queued cells advances the virtual clock
// with every dispatch, so a newly arriving single-cell tenant is tagged
// at most one slot behind the heavy tenant's next cell — the "heavy
// tenant never delays light tenant by more than one cell slot" bound
// the fairness tests pin.
//
// The queue also enforces admission: inSystem counts every admitted,
// unfinished cell (queued or executing; coalesced waiters are free), and
// an enqueue that would push it past max is rejected atomically — all of
// a submission's cells are admitted or none are.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	max    int
	closed bool

	inSystem int
	queued   int
	vtime    float64
	seq      int64
	tenants  map[string]*tenant
}

type tenant struct {
	weight  float64
	lastTag float64
	fifo    []queuedCell
}

type queuedCell struct {
	task *cellTask
	tag  float64
	seq  int64
}

// errOverloaded is the admission-control rejection; the HTTP layer maps
// it to 429 with a Retry-After derived from the queue's state.
type errOverloaded struct {
	inSystem int
	max      int
}

func (e *errOverloaded) Error() string {
	return fmt.Sprintf("serve: queue full (%d cells in flight, limit %d)", e.inSystem, e.max)
}

func newFairQueue(max int) *fairQueue {
	q := &fairQueue{max: max, tenants: map[string]*tenant{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// enqueue admits tasks for one tenant atomically: either every task is
// queued or none is and an *errOverloaded is returned. weight ≤ 0 keeps
// the tenant's current weight (1 for a new tenant).
func (q *fairQueue) enqueue(client string, weight float64, tasks []*cellTask) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("serve: server is shutting down")
	}
	if q.inSystem+len(tasks) > q.max {
		return &errOverloaded{inSystem: q.inSystem, max: q.max}
	}
	t := q.tenants[client]
	if t == nil {
		t = &tenant{weight: 1}
		q.tenants[client] = t
	}
	if weight > 0 {
		if weight > 1000 {
			weight = 1000
		}
		t.weight = weight
	}
	for _, task := range tasks {
		tag := q.vtime
		if t.lastTag > tag {
			tag = t.lastTag
		}
		tag += 1 / t.weight
		t.lastTag = tag
		t.fifo = append(t.fifo, queuedCell{task: task, tag: tag, seq: q.seq})
		q.seq++
	}
	q.inSystem += len(tasks)
	q.queued += len(tasks)
	q.cond.Broadcast()
	return nil
}

// dequeue blocks until a cell is available and returns the one with the
// smallest virtual finish tag; ok is false once the queue is closed.
func (q *fairQueue) dequeue() (*cellTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		var best *tenant
		for _, t := range q.tenants {
			if len(t.fifo) == 0 {
				continue
			}
			if best == nil || less(t.fifo[0], best.fifo[0]) {
				best = t
			}
		}
		if best != nil {
			head := best.fifo[0]
			best.fifo = best.fifo[1:]
			q.queued--
			if head.tag > q.vtime {
				q.vtime = head.tag
			}
			return head.task, true
		}
		q.cond.Wait()
	}
}

// less orders queued cells by tag, ties by arrival.
func less(a, b queuedCell) bool {
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	return a.seq < b.seq
}

// release returns n admission slots once their cells finish executing.
func (q *fairQueue) release(n int) {
	q.mu.Lock()
	q.inSystem -= n
	q.mu.Unlock()
	q.cond.Broadcast()
}

// depth reports (queued, in-system) cell counts.
func (q *fairQueue) depth() (int, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued, q.inSystem
}

// close wakes every waiting worker; dequeue then reports done. Cells
// still queued are abandoned (their jobs never complete) — close is a
// process-shutdown operation, not a drain.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
