package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"smistudy/internal/durable"
)

// A store that cannot open must degrade the server, not crash it: the
// process stays up, /healthz answers, and /readyz plus every
// store-backed endpoint report 503 so an orchestrator holds traffic.
func TestStoreOpenFailureDegradesNotCrashes(t *testing.T) {
	// A regular file where the store directory should be makes
	// durable.Open fail deterministically.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "store")
	if err := os.WriteFile(blocked, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{StoreDir: blocked, Workers: 1})
	defer srv.Close()
	if srv.Ready() == nil {
		t.Fatal("Ready() = nil for an unopenable store")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz: %d, want 200 (process is alive)", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz: %d, want 503", code)
	}
	if code := get("/v1/results/" + "ab"); code != http.StatusServiceUnavailable {
		t.Errorf("results: %d, want 503", code)
	}
	resp, body := postSweeps(t, ts, SubmitRequest{Specs: seedSpecs(t, 1)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit: %d, want 503: %s", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close on a degraded server: %v", err)
	}
}

// A torn journal tail — the crash signature the durable store is built
// to survive — must not impair the server path: the store opens, the
// torn record is dropped, and intact cells still replay byte-identically.
func TestTornJournalTailUnderServerPath(t *testing.T) {
	dir := t.TempDir()

	// Populate the store through the CLI path.
	sp := epSpec(9, 2)
	store, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := durable.RunSpec(context.Background(), sp, durable.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// Tear the journal: a partial record with no trailing newline, as a
	// kill mid-append leaves it.
	jpath := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"dead`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{StoreDir: dir, Workers: 2})
	defer srv.Close()
	if err := srv.Ready(); err != nil {
		t.Fatalf("torn tail failed readiness: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sr := submitOK(t, ts, SubmitRequest{Specs: []json.RawMessage{specRaw(t, sp)}})
	st := waitDone(t, ts, sr.ID)
	if st.State != "done" {
		t.Fatalf("job: %+v", st)
	}
	if st.Cells.Cached != 2 || st.Cells.Executed != 0 {
		t.Fatalf("after torn tail: executed=%d cached=%d, want 0/2 (recovery kept the intact cells)",
			st.Cells.Executed, st.Cells.Cached)
	}
	if !bytes.Equal(compactJSON(t, st.Specs[0].Measurement), compactJSON(t, wantJSON)) {
		t.Fatal("replayed measurement differs from the pre-crash run")
	}
}
