package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"smistudy/internal/durable"
)

// gatedServer wires a Server whose executions block until released, so
// tests control scheduling order exactly. Each exec announces its
// spec's seed on started, then waits for one token on release before
// running the real cell.
type gatedServer struct {
	srv     *Server
	ts      *httptest.Server
	started chan int64
	release chan struct{}
	execs   atomic.Int64
}

func newGated(t *testing.T, cfg Config) *gatedServer {
	t.Helper()
	g := &gatedServer{
		srv:     New(cfg),
		started: make(chan int64, 256),
		release: make(chan struct{}),
	}
	g.srv.exec = func(req durable.CellRequest, o durable.Options, st *durable.Stats) durable.CellResult {
		g.started <- req.Spec.Seed
		<-g.release
		g.execs.Add(1)
		return durable.RunCell(context.Background(), req, o, st)
	}
	g.ts = httptest.NewServer(g.srv.Handler())
	t.Cleanup(func() {
		g.ts.Close()
		g.srv.Close()
	})
	return g
}

func (g *gatedServer) waitStarted(t *testing.T) int64 {
	t.Helper()
	select {
	case seed := <-g.started:
		return seed
	case <-time.After(10 * time.Second):
		t.Fatal("no execution started")
		return 0
	}
}

func seedSpecs(t *testing.T, seeds ...int64) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, len(seeds))
	for i, seed := range seeds {
		out[i] = specRaw(t, epSpec(seed, 1))
	}
	return out
}

func TestAdmissionControl429AndRetryAfterHonored(t *testing.T) {
	g := newGated(t, Config{Workers: 1, MaxQueued: 3})

	// Fill the system: three cells — one executing, two queued.
	a := submitOK(t, g.ts, SubmitRequest{Client: "heavy", Specs: seedSpecs(t, 1, 2, 3)})
	g.waitStarted(t)

	// A fourth submission mixing a duplicate of an in-flight cell (free,
	// coalesces) with one genuinely new cell must be rejected whole: the
	// new cell does not fit.
	resp, body := postSweeps(t, g.ts, SubmitRequest{Client: "light", Specs: seedSpecs(t, 1, 9)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	sec, err := strconv.Atoi(ra)
	if err != nil || sec < 1 || sec > 60 {
		t.Fatalf("Retry-After %q, want an integer in [1, 60]", ra)
	}
	var doc errorDoc
	if err := json.Unmarshal(body, &doc); err != nil || doc.RetryAfter != sec {
		t.Fatalf("body retry_after_s %d does not match header %d: %s", doc.RetryAfter, sec, body)
	}
	if got := g.srv.Stats().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	// Honor the Retry-After: drain the system, then resubmit — now it
	// fits. The earlier rejection must have rolled back completely: job
	// A still completes exactly, and the rejected duplicate left no
	// waiter to disturb it.
	for i := 0; i < 3; i++ {
		g.release <- struct{}{}
		if i < 2 {
			g.waitStarted(t)
		}
	}
	st := waitDone(t, g.ts, a.ID)
	if st.State != "done" || st.Cells.Done != 3 {
		t.Fatalf("job A after rejection rollback: %+v", st)
	}

	b := submitOK(t, g.ts, SubmitRequest{Client: "light", Specs: seedSpecs(t, 1, 9)})
	g.waitStarted(t)
	g.release <- struct{}{}
	g.waitStarted(t)
	g.release <- struct{}{}
	if st := waitDone(t, g.ts, b.ID); st.State != "done" {
		t.Fatalf("resubmission after drain: %+v", st)
	}
}

func TestWeightedFairQueueBoundsHeavyTenant(t *testing.T) {
	// One worker, a heavy tenant with 8 queued cells, then a light
	// tenant arriving with 1. Start-time fair queueing tags the light
	// cell just past the heavy cell currently ahead of it, so the light
	// cell starts after at most one more heavy cell — not after all 8.
	g := newGated(t, Config{Workers: 1, MaxQueued: 64})

	submitOK(t, g.ts, SubmitRequest{Client: "heavy", Specs: seedSpecs(t, 1, 2, 3, 4, 5, 6, 7, 8)})
	order := []int64{g.waitStarted(t)} // heavy's first cell is executing
	submitOK(t, g.ts, SubmitRequest{Client: "light", Specs: seedSpecs(t, 100)})

	for len(order) < 9 {
		g.release <- struct{}{}
		order = append(order, g.waitStarted(t))
	}
	g.release <- struct{}{}

	lightAt := -1
	for i, seed := range order {
		if seed == 100 {
			lightAt = i
		}
	}
	// order[0] was already running; the light cell may yield to at most
	// one queued heavy cell beyond it.
	if lightAt < 0 || lightAt > 2 {
		t.Fatalf("light tenant's cell started at position %d of %v, want ≤ 2", lightAt, order)
	}
}

func TestWeightScalesFairShare(t *testing.T) {
	// Same shape, but the light tenant declares weight 8: its virtual
	// finish tag lands well inside the heavy backlog, so it starts
	// immediately after the in-flight cell.
	g := newGated(t, Config{Workers: 1, MaxQueued: 64})

	submitOK(t, g.ts, SubmitRequest{Client: "heavy", Specs: seedSpecs(t, 1, 2, 3, 4, 5, 6, 7, 8)})
	order := []int64{g.waitStarted(t)}
	submitOK(t, g.ts, SubmitRequest{Client: "vip", Weight: 8, Specs: seedSpecs(t, 100)})

	for len(order) < 9 {
		g.release <- struct{}{}
		order = append(order, g.waitStarted(t))
	}
	g.release <- struct{}{}

	if order[1] != 100 {
		t.Fatalf("weight-8 tenant started at %v, want position 1", order)
	}
}

func TestCoalescingSharesOneExecutionByteIdentically(t *testing.T) {
	// Memory-only server (no store): the only dedup in play is
	// single-flight coalescing.
	g := newGated(t, Config{Workers: 1, MaxQueued: 64})

	a := submitOK(t, g.ts, SubmitRequest{Client: "a", Specs: seedSpecs(t, 5)})
	g.waitStarted(t)
	// While A's cell executes, B submits the identical spec: it must
	// attach to the in-flight execution, not queue a duplicate.
	b := submitOK(t, g.ts, SubmitRequest{Client: "b", Specs: seedSpecs(t, 5)})
	if b.Cells != 1 || b.Coalesced != 1 {
		t.Fatalf("B: cells=%d coalesced=%d, want 1/1", b.Cells, b.Coalesced)
	}
	g.release <- struct{}{}

	sa := waitDone(t, g.ts, a.ID)
	sb := waitDone(t, g.ts, b.ID)
	if g.execs.Load() != 1 {
		t.Fatalf("%d executions for two submissions of one cell, want 1", g.execs.Load())
	}
	if sa.Cells.Executed != 1 || sb.Cells.Coalesced != 1 {
		t.Fatalf("via accounting: A=%+v B=%+v", sa.Cells, sb.Cells)
	}
	if len(sa.Specs[0].Measurement) == 0 ||
		!bytes.Equal(sa.Specs[0].Measurement, sb.Specs[0].Measurement) {
		t.Fatalf("coalesced result is not byte-identical:\n%s\nvs\n%s",
			sa.Specs[0].Measurement, sb.Specs[0].Measurement)
	}
}

func TestDuplicateCellsWithinOneSubmissionCoalesce(t *testing.T) {
	g := newGated(t, Config{Workers: 1, MaxQueued: 64})

	j := submitOK(t, g.ts, SubmitRequest{Specs: seedSpecs(t, 5, 5)})
	if j.Cells != 2 || j.Coalesced != 1 {
		t.Fatalf("cells=%d coalesced=%d, want 2/1", j.Cells, j.Coalesced)
	}
	g.waitStarted(t)
	g.release <- struct{}{}
	st := waitDone(t, g.ts, j.ID)
	if g.execs.Load() != 1 {
		t.Fatalf("%d executions, want 1", g.execs.Load())
	}
	if st.State != "done" || st.Cells.Executed != 1 || st.Cells.Coalesced != 1 {
		t.Fatalf("status: %+v", st)
	}
	if !bytes.Equal(st.Specs[0].Measurement, st.Specs[1].Measurement) {
		t.Fatal("intra-submission duplicate specs differ")
	}
}

func TestFailedExecutionPropagatesToEveryWaiter(t *testing.T) {
	g := newGated(t, Config{Workers: 1, MaxQueued: 64})
	g.srv.exec = func(req durable.CellRequest, o durable.Options, st *durable.Stats) durable.CellResult {
		g.started <- req.Spec.Seed
		<-g.release
		return durable.CellResult{Err: fmt.Errorf("engine exploded")}
	}

	a := submitOK(t, g.ts, SubmitRequest{Client: "a", Specs: seedSpecs(t, 5)})
	g.waitStarted(t)
	b := submitOK(t, g.ts, SubmitRequest{Client: "b", Specs: seedSpecs(t, 5)})
	g.release <- struct{}{}

	sa := waitDone(t, g.ts, a.ID)
	sb := waitDone(t, g.ts, b.ID)
	for name, st := range map[string]JobStatus{"A": sa, "B": sb} {
		if st.State != "failed" || st.Cells.Failed != 1 {
			t.Errorf("%s: %+v", name, st)
		}
		if st.Specs[0].Error == "" {
			t.Errorf("%s: spec error not propagated", name)
		}
	}
	if got := g.srv.Stats(); got.Failed != 2 || got.JobsFailed != 2 {
		t.Fatalf("failure accounting: %+v", got)
	}
}
