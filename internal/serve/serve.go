// Package serve turns the durable sweep runner into a multi-tenant
// HTTP/JSON service. A submission — single cells or a declarative
// parameter grid — is validated, canonicalized and content-addressed
// exactly like the CLI path (internal/durable's key = SHA-256 of the
// canonical spec, cell = key + run index), then deduplicated twice:
//
//   - against the persistent store: a cell any prior run of any process
//     checkpointed replays byte-identically with zero simulation work;
//   - against in-flight work: a cell already queued or executing for
//     any other job attaches as a single-flight waiter, so a thousand
//     clients submitting the same grid share one execution per cell.
//
// Cells that do execute are scheduled across a bounded worker fleet
// through a weighted fair queue keyed by client, with admission control
// (bounded in-system cells, 429 + Retry-After on overload) so one
// tenant's ten-thousand-cell grid can neither starve another tenant's
// single cell nor exhaust memory. Progress streams per job over SSE,
// and every queue/cache/latency signal lands in an obs registry served
// from /metricsz.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"smistudy/internal/durable"
	"smistudy/internal/obs"
	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

// Config shapes a Server.
type Config struct {
	// StoreDir roots the durable result store. Empty runs memory-only:
	// single-flight coalescing still applies, but nothing survives a
	// restart and /v1/results has nothing to serve.
	StoreDir string
	// Workers bounds the execution fleet (≤ 0: one per CPU).
	Workers int
	// MaxQueued bounds admitted, unfinished cells (≤ 0: 4096). Coalesced
	// waiters are free — only cells that will occupy a worker count.
	MaxQueued int
	// CellTimeout, Retries: the durable per-cell policy.
	CellTimeout time.Duration
	Retries     int
	// Dispatch, when non-nil, is the analytic fast-path dispatcher cells
	// consult; Shards the per-cell engine shard count.
	Dispatch *runner.Dispatcher
	Shards   int
	// Tracer, when non-nil, receives the durable layer's cell events.
	Tracer obs.Tracer
}

// Server is the sweep service. Create with New, serve Handler, Close on
// shutdown.
type Server struct {
	cfg      Config
	store    *durable.Store
	storeErr error
	dopts    durable.Options
	reg      *obs.Registry
	mux      *http.ServeMux
	q        *fairQueue
	co       *coalescer
	workers  int

	durStats durable.Stats // aggregate durable accounting across all cells

	mu      sync.Mutex
	jobs    map[string]*job
	nextJob int64

	ewmaUS int64 // recent mean cell latency, µs (atomic; Retry-After input)

	wg     sync.WaitGroup
	closed atomic.Bool

	// exec is the cell execution seam; tests swap it for gated or
	// failing executions without inventing workload shapes.
	exec func(req durable.CellRequest, o durable.Options, st *durable.Stats) durable.CellResult
}

// New builds the server and starts its worker fleet. A store that fails
// to open does not fail construction: the server comes up degraded —
// /healthz is alive, /readyz and submissions report 503 — so an
// orchestrator sees a readiness failure instead of a crash loop.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		reg:     obs.NewRegistry(),
		co:      newCoalescer(),
		jobs:    map[string]*job{},
		workers: cfg.Workers,
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	max := cfg.MaxQueued
	if max <= 0 {
		max = 4096
	}
	s.q = newFairQueue(max)
	s.exec = func(req durable.CellRequest, o durable.Options, st *durable.Stats) durable.CellResult {
		// In-flight cells run to completion even across Close (the cell
		// deadline in o bounds them); a background context keeps a
		// graceful shutdown from turning finished work into errors.
		return durable.RunCell(context.Background(), req, o, st)
	}
	if cfg.StoreDir != "" {
		s.store, s.storeErr = durable.Open(cfg.StoreDir)
	}
	s.dopts = durable.Options{
		Store:       s.store,
		Resume:      true,
		CellTimeout: cfg.CellTimeout,
		Retry:       durable.Policy{MaxRetries: cfg.Retries},
		Dispatch:    cfg.Dispatch,
		Shards:      cfg.Shards,
		Tracer:      cfg.Tracer,
	}
	s.routes()
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Ready reports nil when the server can accept work; the store-open
// error otherwise (the /readyz body).
func (s *Server) Ready() error { return s.storeErr }

// Close stops admission, wakes the workers and waits for in-flight
// cells, then closes the store. Cells still queued are abandoned.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.q.close()
	s.wg.Wait()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// MetricsSnapshot snapshots the server's obs registry (the /metricsz
// document).
func (s *Server) MetricsSnapshot() obs.Snapshot { return s.reg.Snapshot() }

// Stats summarizes the server's lifetime accounting for a manifest.
func (s *Server) Stats() obs.ServeStats {
	snap := s.reg.Snapshot()
	return obs.ServeStats{
		Submissions: snap.Counter("serve_submissions", -1),
		Jobs:        snap.Counter("serve_jobs_done", -1),
		JobsFailed:  snap.Counter("serve_jobs_failed", -1),
		Rejected:    snap.Counter("serve_rejected", -1),
		Cells:       snap.Counter("serve_cells_total", -1),
		Executed:    snap.Counter("serve_cells_executed", -1),
		Cached:      snap.Counter("serve_cells_cached", -1),
		Coalesced:   snap.Counter("serve_cells_coalesced", -1),
		Failed:      snap.Counter("serve_cells_failed", -1),
	}
}

// DurableStats returns the aggregate durable-layer accounting (the
// manifest's durable block).
func (s *Server) DurableStats() *durable.Stats { return &s.durStats }

// SubmitRequest is the POST /v1/sweeps body. Specs are raw scenario
// documents (strict-parsed); Grid expands to further cells. At least
// one cell must result.
type SubmitRequest struct {
	// Client identifies the tenant for fair queueing ("anonymous" when
	// empty). Weight scales the tenant's fair share (default 1).
	Client string  `json:"client,omitempty"`
	Weight float64 `json:"weight,omitempty"`

	Specs []json.RawMessage `json:"specs,omitempty"`
	Grid  *scenario.Grid    `json:"grid,omitempty"`
}

// SubmitSpec echoes one accepted spec's identity.
type SubmitSpec struct {
	Name  string `json:"name,omitempty"`
	Key   string `json:"key"`
	Cells int    `json:"cells"`
}

// SubmitResponse is the 202 body.
type SubmitResponse struct {
	ID        string       `json:"id"`
	Cells     int          `json:"cells"`
	Coalesced int          `json:"coalesced"`
	Specs     []SubmitSpec `json:"specs"`
	StatusURL string       `json:"status_url"`
	EventsURL string       `json:"events_url"`
}

// errorDoc is every non-2xx JSON body.
type errorDoc struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_s,omitempty"`
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if err := s.storeErr; err != nil {
		http.Error(w, fmt.Sprintf("store unavailable: %v", err), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, inSystem := s.q.depth()
	s.reg.Gauge("serve_queue_depth", -1).Set(int64(queued))
	s.reg.Gauge("serve_cells_in_system", -1).Set(int64(inSystem))
	data, err := s.reg.Snapshot().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
	w.Write([]byte("\n"))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.storeErr != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorDoc{Error: fmt.Sprintf("store unavailable: %v", s.storeErr)})
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("bad submission: %v", err)})
		return
	}
	var specs []scenario.Spec
	for i, raw := range req.Specs {
		sp, err := scenario.Parse(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("spec %d: %v", i, err)})
			return
		}
		specs = append(specs, sp)
	}
	if req.Grid != nil {
		cells, err := req.Grid.Expand()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("grid: %v", err)})
			return
		}
		specs = append(specs, cells...)
	}
	if len(specs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "submission has no specs"})
		return
	}
	plans := make([]durable.SpecPlan, len(specs))
	for i, sp := range specs {
		p, err := durable.PlanSpec(sp, s.store)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("spec %d: %v", i, err)})
			return
		}
		plans[i] = p
	}

	client := req.Client
	if client == "" {
		client = "anonymous"
	}
	s.mu.Lock()
	s.nextJob++
	j := newJob(jobID(s.nextJob), client, specs, plans)
	s.mu.Unlock()
	j.onDone = func(failed bool) {
		if failed {
			s.reg.Counter("serve_jobs_failed", -1).Add(1)
		} else {
			s.reg.Counter("serve_jobs_done", -1).Add(1)
		}
	}

	reqs, refs := j.refs()
	coalesced, err := s.co.attach(reqs, refs, time.Now(), func(ts []*cellTask) error {
		return s.q.enqueue(client, req.Weight, ts)
	})
	if err != nil {
		var full *errOverloaded
		if errors.As(err, &full) {
			retry := s.retryAfter()
			s.reg.Counter("serve_rejected", -1).Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: err.Error(), RetryAfter: retry})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
		return
	}

	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.reg.Counter("serve_submissions", -1).Add(1)
	s.reg.Counter("serve_cells_total", -1).Add(int64(len(j.cells)))
	s.reg.Counter("serve_cells_coalesced", -1).Add(int64(coalesced))
	j.start()

	resp := SubmitResponse{
		ID:        j.id,
		Cells:     len(j.cells),
		Coalesced: coalesced,
		StatusURL: "/v1/sweeps/" + j.id,
		EventsURL: "/v1/sweeps/" + j.id + "/events",
	}
	for i, p := range plans {
		resp.Specs = append(resp.Specs, SubmitSpec{Name: specs[i].Name, Key: p.Key, Cells: len(p.Cells)})
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, ch, cancel := j.subscribe()
	defer cancel()
	for _, ev := range history {
		writeSSE(w, ev)
		if ev.terminal() {
			fl.Flush()
			return
		}
	}
	fl.Flush()
	for {
		select {
		case ev := <-ch:
			writeSSE(w, ev)
			fl.Flush()
			if ev.terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
}

// handleResult serves the store's view of one content address: every
// journaled run plus the canonical spec document when recorded.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.storeErr != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorDoc{Error: fmt.Sprintf("store unavailable: %v", s.storeErr)})
		return
	}
	if s.store == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "server runs without a store"})
		return
	}
	key := r.PathValue("hash")
	type resultCell struct {
		Run         int     `json:"run"`
		Measurement jsonRaw `json:"measurement"`
	}
	doc := struct {
		Key   string       `json:"key"`
		Spec  jsonRaw      `json:"spec,omitempty"`
		Cells []resultCell `json:"cells"`
	}{Key: key}
	for _, c := range s.store.Cells() {
		if c.Key != key {
			continue
		}
		data, err := s.store.Get(c.Key, c.Run)
		if err != nil {
			continue // corrupt object: absent, exactly as the sweep path treats it
		}
		doc.Cells = append(doc.Cells, resultCell{Run: c.Run, Measurement: data})
	}
	if len(doc.Cells) == 0 {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "no results for " + key})
		return
	}
	if spec, err := s.store.SpecJSON(key); err == nil {
		doc.Spec = spec
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// retryAfter estimates seconds until the queue has drained enough to
// admit new work: in-system cells over fleet throughput at the recent
// mean cell latency, clamped to [1, 60].
func (s *Server) retryAfter() int {
	_, inSystem := s.q.depth()
	ewma := time.Duration(atomic.LoadInt64(&s.ewmaUS)) * time.Microsecond
	if ewma <= 0 {
		return 1
	}
	sec := math.Ceil(float64(inSystem) * ewma.Seconds() / float64(s.workers))
	if sec < 1 {
		return 1
	}
	if sec > 60 {
		return 60
	}
	return int(sec)
}

// worker drains the fair queue until close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		t, ok := s.q.dequeue()
		if !ok {
			return
		}
		wait := time.Since(t.enq)
		s.reg.Histogram("serve_queue_wait_ms", -1, obs.Log2Bounds(1, 1<<20)).
			Observe(float64(wait) / float64(time.Millisecond))
		start := time.Now()
		res := s.exec(t.req, s.dopts, &s.durStats)
		lat := time.Since(start)
		s.observeLatency(lat)
		s.complete(t, res, lat)
		s.q.release(1)
	}
}

// observeLatency feeds the cell-latency histogram and the Retry-After
// EWMA.
func (s *Server) observeLatency(lat time.Duration) {
	s.reg.Histogram("serve_cell_latency_ms", -1, obs.Log2Bounds(1, 1<<20)).
		Observe(float64(lat) / float64(time.Millisecond))
	us := lat.Microseconds()
	for {
		old := atomic.LoadInt64(&s.ewmaUS)
		next := us
		if old > 0 {
			next = (old*9 + us) / 10
		}
		if atomic.CompareAndSwapInt64(&s.ewmaUS, old, next) {
			return
		}
	}
}

// complete detaches the finished task and delivers the result to the
// owner and every coalesced waiter.
func (s *Server) complete(t *cellTask, res durable.CellResult, lat time.Duration) {
	refs := s.co.finish(t)
	ownerVia := "executed"
	if res.Cached {
		ownerVia = "cached"
	}
	switch {
	case res.Err != nil:
		s.reg.Counter("serve_cells_failed", -1).Add(int64(len(refs)))
	case res.Cached:
		s.reg.Counter("serve_cells_cached", -1).Add(1)
	default:
		s.reg.Counter("serve_cells_executed", -1).Add(1)
	}
	for i, ref := range refs {
		via := ownerVia
		if i > 0 {
			via = "coalesced"
		}
		ref.j.cellDone(ref.cell, res, via, lat)
	}
}
