package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smistudy/internal/durable"
	"smistudy/internal/scenario"
)

// epSpec is the cheap test cell: NAS EP class S on one node simulates
// in a few milliseconds.
func epSpec(seed int64, runs int) scenario.Spec {
	return scenario.Spec{
		Workload: "nas",
		SMM:      scenario.SMMPlan{Level: "none"},
		Runs:     runs,
		Seed:     seed,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
}

func specRaw(t *testing.T, sp scenario.Spec) json.RawMessage {
	t.Helper()
	data, err := sp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postSweeps(t *testing.T, ts *httptest.Server, req SubmitRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// compactJSON normalizes whitespace: the status encoder re-indents
// embedded measurement bytes, so cross-path identity is checked on the
// compact form.
func compactJSON(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatalf("compact %q: %v", data, err)
	}
	return buf.Bytes()
}

func submitOK(t *testing.T, ts *httptest.Server, req SubmitRequest) SubmitResponse {
	t.Helper()
	resp, body := postSweeps(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("submit response: %v: %s", err, body)
	}
	return sr
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func TestSubmitExecutesAndWarmPassIsAllCached(t *testing.T) {
	srv := New(Config{StoreDir: t.TempDir(), Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sp := epSpec(7, 2)
	sr := submitOK(t, ts, SubmitRequest{Client: "alice", Specs: []json.RawMessage{specRaw(t, sp)}})
	if sr.Cells != 2 {
		t.Fatalf("cells = %d, want 2 (runs split)", sr.Cells)
	}
	st := waitDone(t, ts, sr.ID)
	if st.State != "done" {
		t.Fatalf("state %q: %+v", st.State, st)
	}
	if st.Cells.Executed != 2 || st.Cells.Cached != 0 {
		t.Fatalf("cold pass: executed=%d cached=%d, want 2/0", st.Cells.Executed, st.Cells.Cached)
	}

	// The served measurement must be byte-identical to the direct
	// durable path measuring the same spec.
	want, _, err := durable.RunSpec(context.Background(), sp, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compactJSON(t, st.Specs[0].Measurement), compactJSON(t, wantJSON)) {
		t.Fatalf("served measurement differs from direct run:\n%s\nvs\n%s",
			st.Specs[0].Measurement, wantJSON)
	}

	// Warm pass: same spec resubmitted — every cell replays from the
	// store, nothing simulates, bytes identical.
	sr2 := submitOK(t, ts, SubmitRequest{Client: "bob", Specs: []json.RawMessage{specRaw(t, sp)}})
	st2 := waitDone(t, ts, sr2.ID)
	if st2.Cells.Cached != 2 || st2.Cells.Executed != 0 {
		t.Fatalf("warm pass: executed=%d cached=%d, want 0/2", st2.Cells.Executed, st2.Cells.Cached)
	}
	// Served cold and warm passes go through the same encoder, so those
	// bytes are identical verbatim.
	if !bytes.Equal(st2.Specs[0].Measurement, st.Specs[0].Measurement) {
		t.Fatal("warm measurement is not byte-identical to the cold pass")
	}
	if !bytes.Equal(compactJSON(t, st2.Specs[0].Measurement), compactJSON(t, wantJSON)) {
		t.Fatal("warm measurement differs from the direct run")
	}

	// The content-addressed result endpoint serves both journaled runs
	// plus the canonical spec document.
	resp, err := http.Get(ts.URL + "/v1/results/" + sr.Specs[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	var doc struct {
		Key   string          `json:"key"`
		Spec  json.RawMessage `json:"spec"`
		Cells []struct {
			Run int `json:"run"`
		} `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 2 {
		t.Fatalf("results: %d cells, want 2", len(doc.Cells))
	}
	spJSON, _ := sp.JSON()
	if !bytes.Equal(compactJSON(t, doc.Spec), compactJSON(t, spJSON)) {
		t.Fatalf("results spec differs from canonical encoding")
	}

	stats := srv.Stats()
	if stats.Submissions != 2 || stats.Executed != 2 || stats.Cached != 2 {
		t.Fatalf("server stats: %+v", stats)
	}
}

func TestGridSubmission(t *testing.T) {
	srv := New(Config{StoreDir: t.TempDir(), Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sr := submitOK(t, ts, SubmitRequest{
		Grid: &scenario.Grid{
			Base: epSpec(1, 1),
			Axes: []scenario.Axis{{Path: "seed", Values: rawVals(t, "1", "2", "3")}},
		},
	})
	if sr.Cells != 3 || len(sr.Specs) != 3 {
		t.Fatalf("grid: cells=%d specs=%d, want 3/3", sr.Cells, len(sr.Specs))
	}
	seen := map[string]bool{}
	for _, s := range sr.Specs {
		seen[s.Key] = true
	}
	if len(seen) != 3 {
		t.Fatalf("grid cells share keys: %v", seen)
	}
	st := waitDone(t, ts, sr.ID)
	if st.State != "done" || st.Cells.Executed != 3 {
		t.Fatalf("grid job: %+v", st)
	}
}

// TestGridNoiseAxisSweep pins the serve-layer sweep surface of the
// noise block: dotted paths into noise entries expand into distinct
// cells that all execute.
func TestGridNoiseAxisSweep(t *testing.T) {
	srv := New(Config{StoreDir: t.TempDir(), Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := epSpec(1, 1)
	base.SMM = scenario.SMMPlan{}
	base.Noise = []scenario.NoiseSource{{
		Family: scenario.NoiseOSJitter, PeriodMS: 10, DurationUS: 200,
	}}
	sr := submitOK(t, ts, SubmitRequest{
		Grid: &scenario.Grid{
			Base: base,
			Axes: []scenario.Axis{{Path: "noise[0].period_ms", Values: rawVals(t, "5", "10", "20")}},
		},
	})
	if sr.Cells != 3 || len(sr.Specs) != 3 {
		t.Fatalf("noise sweep: cells=%d specs=%d, want 3/3", sr.Cells, len(sr.Specs))
	}
	seen := map[string]bool{}
	for _, s := range sr.Specs {
		seen[s.Key] = true
	}
	if len(seen) != 3 {
		t.Fatalf("noise sweep cells share content keys: %v", seen)
	}
	st := waitDone(t, ts, sr.ID)
	if st.State != "done" || st.Cells.Executed != 3 {
		t.Fatalf("noise sweep job: %+v", st)
	}
}

func rawVals(t *testing.T, vs ...string) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		out[i] = json.RawMessage(v)
	}
	return out
}

func TestSSEStreamsEveryCellToTermination(t *testing.T) {
	srv := New(Config{StoreDir: t.TempDir(), Workers: 1})
	defer srv.Close()
	// Gate execution so the SSE subscription provably attaches while
	// the job is still running — the live-stream path, not just replay.
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.exec = func(req durable.CellRequest, o durable.Options, st *durable.Stats) durable.CellResult {
		started <- struct{}{}
		<-release
		return durable.RunCell(context.Background(), req, o, st)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sr := submitOK(t, ts, SubmitRequest{Specs: []json.RawMessage{specRaw(t, epSpec(3, 2))}})
	<-started

	resp, err := http.Get(ts.URL + sr.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	go func() {
		close(release) // let both cells finish
	}()
	events := readSSE(t, resp.Body)
	var cellEvents, jobEvents int
	var last Event
	for _, ev := range events {
		switch ev.Kind {
		case "cell":
			cellEvents++
		case "job":
			jobEvents++
		}
		last = ev
	}
	if cellEvents != 2 {
		t.Fatalf("saw %d cell events, want 2: %+v", cellEvents, events)
	}
	if !last.terminal() || last.State != "done" {
		t.Fatalf("stream did not end with a terminal job event: %+v", last)
	}
	if last.Done != 2 || last.Total != 2 {
		t.Fatalf("terminal progress %d/%d, want 2/2", last.Done, last.Total)
	}

	// A subscriber arriving after completion replays the full history.
	resp2, err := http.Get(ts.URL + sr.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay := readSSE(t, resp2.Body)
	if len(replay) != len(events) {
		t.Fatalf("late subscriber got %d events, live got %d", len(replay), len(events))
	}
}

// readSSE parses an SSE stream until it closes, returning the decoded
// events.
func readSSE(t *testing.T, r interface{ Read([]byte) (int, error) }) []Event {
	t.Helper()
	var events []Event
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

func TestSubmitRejections(t *testing.T) {
	srv := New(Config{StoreDir: t.TempDir(), Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", `{`, http.StatusBadRequest},
		{"unknown top-level field", `{"spex": []}`, http.StatusBadRequest},
		{"no specs", `{"client": "x"}`, http.StatusBadRequest},
		{"spec typo", `{"specs": [{"workload": "nas", "machine": {}, "smm": {}, "params": {"bensch": "EP"}, "obs": {}}]}`, http.StatusBadRequest},
		{"unknown workload", `{"specs": [{"workload": "nope", "machine": {}, "smm": {}, "params": {}, "obs": {}}]}`, http.StatusBadRequest},
		{"grid typo path", `{"grid": {"base": {"workload": "nas", "machine": {}, "smm": {}, "params": {"bench": "EP", "class": "S"}, "obs": {}}, "axes": [{"path": "sed", "values": [1]}]}}`, http.StatusBadRequest},
		{"noise axis typo leaf", `{"grid": {"base": {"workload": "nas", "machine": {}, "smm": {}, "noise": [{"family": "osjitter", "period_ms": 10, "duration_us": 200}], "params": {"bench": "EP", "class": "S"}, "obs": {}}, "axes": [{"path": "noise[0].period_msx", "values": [5]}]}}`, http.StatusBadRequest},
		{"noise axis out of range", `{"grid": {"base": {"workload": "nas", "machine": {}, "smm": {}, "noise": [{"family": "osjitter", "period_ms": 10, "duration_us": 200}], "params": {"bench": "EP", "class": "S"}, "obs": {}}, "axes": [{"path": "noise[5].period_ms", "values": [5]}]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/sweeps/job-999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/results/" + strings.Repeat("ab", 32)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown result: status %d, want 404", resp.StatusCode)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{StoreDir: t.TempDir(), Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sr := submitOK(t, ts, SubmitRequest{Specs: []json.RawMessage{specRaw(t, epSpec(11, 1))}})
	waitDone(t, ts, sr.ID)

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Histograms []struct {
			Name string `json:"name"`
			N    int64  `json:"n"`
		} `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{"serve_submissions", "serve_cells_total", "serve_cells_executed", "serve_jobs_done"} {
		if counters[name] < 1 {
			t.Errorf("counter %s = %d, want ≥ 1 (have %v)", name, counters[name], counters)
		}
	}
	hists := map[string]int64{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h.N
	}
	for _, name := range []string{"serve_cell_latency_ms", "serve_queue_wait_ms"} {
		if hists[name] < 1 {
			t.Errorf("histogram %s has no observations", name)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestJobIDFormat(t *testing.T) {
	if got := jobID(7); got != "job-000007" {
		t.Fatalf("jobID(7) = %q", got)
	}
	if fmt.Sprintf("%s", jobID(1234567)) != "job-1234567" {
		t.Fatalf("jobID overflow handling: %q", jobID(1234567))
	}
}
