package serve

import (
	"sync"
	"time"

	"smistudy/internal/durable"
)

// cellID is the serve-layer identity of one durable execution unit: the
// parent spec's content address plus the repetition index — exactly the
// store's (key, run) coordinate, so coalescing and the persistent cache
// agree about what "the same cell" means.
type cellID struct {
	key string
	run int
}

// cellRef points one job's cell at an execution. The first ref on a
// task is the owner (its job triggered the execution); later refs are
// coalesced waiters sharing the same result.
type cellRef struct {
	j    *job
	cell int
}

// cellTask is one scheduled execution: the durable cell request plus
// every job cell waiting on its result.
type cellTask struct {
	id  cellID
	req durable.CellRequest
	enq time.Time
	// refs is guarded by the coalescer's lock until finish() detaches
	// the task; after that it is owned by the completing worker.
	refs []cellRef
}

// coalescer is the single-flight layer: at most one task per cellID is
// in flight (queued or executing) at any instant, and every submission
// of that cell while it is in flight attaches as a waiter instead of
// queueing duplicate work. Two clients submitting the same grid
// concurrently therefore share one execution per cell — the in-memory
// half of the dedup story (the durable store is the cross-restart
// half).
type coalescer struct {
	mu       sync.Mutex
	inflight map[cellID]*cellTask
}

func newCoalescer() *coalescer {
	return &coalescer{inflight: map[cellID]*cellTask{}}
}

// attach registers refs for their cells: cells already in flight gain a
// waiter, the rest become new tasks (returned for enqueueing) with
// their ref as owner. admit is consulted with the new-task count while
// the lock is held, so admission and registration are one atomic step —
// a rejected submission leaves no waiter behind and no task queued.
func (c *coalescer) attach(reqs []durable.CellRequest, refs []cellRef, now time.Time, admit func(newTasks []*cellTask) error) (coalesced int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var newTasks []*cellTask
	staged := map[cellID]*cellTask{}
	for i, req := range reqs {
		id := cellID{key: req.Key, run: req.Run}
		if t, ok := c.inflight[id]; ok {
			t.refs = append(t.refs, refs[i])
			coalesced++
			continue
		}
		if t, ok := staged[id]; ok {
			// Duplicate cell within this same submission.
			t.refs = append(t.refs, refs[i])
			coalesced++
			continue
		}
		t := &cellTask{id: id, req: req, enq: now, refs: []cellRef{refs[i]}}
		staged[id] = t
		newTasks = append(newTasks, t)
	}
	if err := admit(newTasks); err != nil {
		// Roll back the waiters attached above: the submission was
		// rejected as a whole, so none of its cells may stay registered.
		for _, t := range c.inflight {
			t.refs = dropJob(t.refs, refs)
		}
		return 0, err
	}
	for id, t := range staged {
		c.inflight[id] = t
	}
	return coalesced, nil
}

// dropJob removes the refs of a rejected submission from a task's
// waiter list (identity: same job pointer and cell index).
func dropJob(have []cellRef, rejected []cellRef) []cellRef {
	out := have[:0]
	for _, r := range have {
		keep := true
		for _, rj := range rejected {
			if r.j == rj.j && r.cell == rj.cell {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out
}

// finish detaches a completed task, returning its final waiter list.
// Late duplicates attach right up until this call; afterwards the cell
// is no longer in flight and a resubmission replays from the store.
func (c *coalescer) finish(t *cellTask) []cellRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.inflight, t.id)
	return t.refs
}
