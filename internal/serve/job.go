package serve

import (
	"fmt"
	"sync"
	"time"

	"smistudy/internal/durable"
	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

// Event is one entry in a job's progress log, delivered over the SSE
// stream and retained so late subscribers replay the full history.
type Event struct {
	Seq   int    `json:"seq"`
	Kind  string `json:"kind"`  // "job" or "cell"
	State string `json:"state"` // job: running|done|failed; cell: done|failed
	// Cell coordinates, for Kind == "cell".
	Cell int    `json:"cell,omitempty"`
	Key  string `json:"key,omitempty"`
	Run  int    `json:"run,omitempty"`
	// Via records how the cell resolved: executed, cached or coalesced.
	Via string `json:"via,omitempty"`
	// MS is the cell's wall-clock execution latency (owner cell only).
	MS    float64 `json:"ms,omitempty"`
	Error string  `json:"error,omitempty"`
	// Done/Total snapshot job progress at this event.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// terminal reports whether the event closes the stream.
func (e Event) terminal() bool {
	return e.Kind == "job" && (e.State == "done" || e.State == "failed")
}

// jobCell is one cell's slot in a job.
type jobCell struct {
	specIdx int
	key     string
	run     int
	done    bool
	via     string
	err     string
	m       runner.Measurement
}

// specResult is a finished spec's outcome within a job.
type specResult struct {
	state string // done | failed
	err   string
	data  []byte // canonical measurement JSON when done
}

// job is one accepted submission: its specs, their planned cells, the
// progress log and the SSE subscribers. All mutable state is guarded by
// mu; completion callbacks arrive from scheduler workers.
type job struct {
	id      string
	client  string
	created time.Time

	specs []scenario.Spec
	plans []durable.SpecPlan
	first []int // plans[i].Cells start at cells[first[i]]

	mu          sync.Mutex
	cells       []jobCell
	specPending []int
	results     []specResult
	pending     int
	failed      bool
	state       string // running | done | failed
	wall        time.Duration
	events      []Event
	subs        map[chan Event]struct{}

	// onDone is called exactly once, outside mu, when the job reaches a
	// terminal state (the server's jobs-done accounting).
	onDone func(failed bool)
}

func newJob(id, client string, specs []scenario.Spec, plans []durable.SpecPlan) *job {
	j := &job{
		id:      id,
		client:  client,
		created: time.Now(),
		specs:   specs,
		plans:   plans,
		first:   make([]int, len(plans)),
		state:   "running",
		subs:    map[chan Event]struct{}{},
		results: make([]specResult, len(plans)),
	}
	for i, p := range plans {
		j.first[i] = len(j.cells)
		for run := range p.Cells {
			j.cells = append(j.cells, jobCell{specIdx: i, key: p.Key, run: run})
		}
		j.specPending = append(j.specPending, len(p.Cells))
	}
	j.pending = len(j.cells)
	return j
}

// refs builds the cell references and durable requests for scheduling,
// in cell order.
func (j *job) refs() ([]durable.CellRequest, []cellRef) {
	reqs := make([]durable.CellRequest, len(j.cells))
	refs := make([]cellRef, len(j.cells))
	for i, c := range j.cells {
		p := j.plans[c.specIdx]
		reqs[i] = durable.CellRequest{
			Spec:     p.Cells[c.run],
			Key:      p.Key,
			Run:      c.run,
			RunsHint: p.Runs,
			Global:   int32(i),
		}
		refs[i] = cellRef{j: j, cell: i}
	}
	return reqs, refs
}

// start emits the initial job event. Called once after admission.
func (j *job) start() {
	j.mu.Lock()
	j.emit(Event{Kind: "job", State: "running"})
	j.mu.Unlock()
}

// cellDone lands one cell's outcome (via: executed | cached |
// coalesced), advances spec and job completion, and broadcasts events.
func (j *job) cellDone(cell int, res durable.CellResult, via string, lat time.Duration) {
	var done func(bool)
	var wasFailed bool
	j.mu.Lock()
	c := &j.cells[cell]
	if c.done {
		j.mu.Unlock()
		return
	}
	c.done = true
	c.via = via
	c.m = res.M
	state := "done"
	if res.Err != nil {
		c.err = res.Err.Error()
		state = "failed"
	}
	j.pending--
	ev := Event{
		Kind: "cell", State: state, Cell: cell, Key: c.key, Run: c.run,
		Via: via, Error: c.err,
	}
	if via != "coalesced" {
		ev.MS = float64(lat) / float64(time.Millisecond)
	}
	j.emit(ev)

	si := c.specIdx
	j.specPending[si]--
	if j.specPending[si] == 0 {
		j.finishSpec(si)
	}
	if j.pending == 0 {
		j.state = "done"
		if j.failed {
			j.state = "failed"
		}
		j.wall = time.Since(j.created)
		j.emit(Event{Kind: "job", State: j.state})
		done, wasFailed = j.onDone, j.failed
		j.onDone = nil
	}
	j.mu.Unlock()
	if done != nil {
		done(wasFailed)
	}
}

// finishSpec assembles spec si's result from its completed cells.
// Called with mu held.
func (j *job) finishSpec(si int) {
	p := j.plans[si]
	lo := j.first[si]
	cells := j.cells[lo : lo+len(p.Cells)]
	for _, c := range cells {
		if c.err != "" {
			j.results[si] = specResult{state: "failed", err: c.err}
			j.failed = true
			return
		}
	}
	m := cells[0].m
	if p.Merge != nil || len(cells) > 1 {
		parts := make([]runner.Measurement, len(cells))
		for i, c := range cells {
			parts[i] = c.m
		}
		if p.Merge == nil {
			j.results[si] = specResult{state: "failed", err: "serve: multi-cell spec without a merge hook"}
			j.failed = true
			return
		}
		merged, err := p.Merge(j.specs[si], parts)
		if err != nil {
			j.results[si] = specResult{state: "failed", err: err.Error()}
			j.failed = true
			return
		}
		m = merged
	}
	data, err := m.JSON()
	if err != nil {
		j.results[si] = specResult{state: "failed", err: err.Error()}
		j.failed = true
		return
	}
	j.results[si] = specResult{state: "done", data: data}
}

// emit appends an event to the log and delivers it to every subscriber.
// Called with mu held. Subscriber channels are sized for the job's full
// event volume, so sends never block.
func (j *job) emit(ev Event) {
	ev.Seq = len(j.events)
	ev.Done = len(j.cells) - j.pending
	ev.Total = len(j.cells)
	j.events = append(j.events, ev)
	for ch := range j.subs {
		ch <- ev
	}
}

// subscribe returns the event history so far and a channel for what
// follows. The channel has capacity for every event the job can still
// emit; cancel detaches it.
func (j *job) subscribe() (history []Event, ch chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	ch = make(chan Event, len(j.cells)+4)
	j.subs[ch] = struct{}{}
	return history, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// CellCounts is a job's progress breakdown; Total = Executed + Cached +
// Coalesced + Failed once the job finishes.
type CellCounts struct {
	Total     int `json:"total"`
	Done      int `json:"done"`
	Executed  int `json:"executed"`
	Cached    int `json:"cached"`
	Coalesced int `json:"coalesced"`
	Failed    int `json:"failed"`
}

// SpecStatus is one spec's slice of a job status document.
type SpecStatus struct {
	Name  string `json:"name,omitempty"`
	Key   string `json:"key"`
	Cells int    `json:"cells"`
	State string `json:"state"` // running | done | failed
	Error string `json:"error,omitempty"`
	// Measurement is the spec's canonical measurement JSON once done —
	// byte-identical to what any other path measuring this spec yields.
	Measurement jsonRaw `json:"measurement,omitempty"`
}

// jsonRaw avoids importing encoding/json here just for RawMessage.
type jsonRaw []byte

// MarshalJSON implements json.Marshaler.
func (r jsonRaw) MarshalJSON() ([]byte, error) {
	if len(r) == 0 {
		return []byte("null"), nil
	}
	return r, nil
}

// UnmarshalJSON implements json.Unmarshaler (clients decoding a status
// document keep the measurement bytes verbatim).
func (r *jsonRaw) UnmarshalJSON(data []byte) error {
	*r = append((*r)[:0], data...)
	return nil
}

// JobStatus is the GET /v1/sweeps/{id} document.
type JobStatus struct {
	ID     string       `json:"id"`
	Client string       `json:"client"`
	State  string       `json:"state"`
	Cells  CellCounts   `json:"cells"`
	Specs  []SpecStatus `json:"specs"`
	WallMS float64      `json:"wall_ms,omitempty"`
}

// status snapshots the job.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, Client: j.client, State: j.state}
	st.Cells.Total = len(j.cells)
	for _, c := range j.cells {
		if !c.done {
			continue
		}
		st.Cells.Done++
		if c.err != "" {
			st.Cells.Failed++
			continue
		}
		switch c.via {
		case "executed":
			st.Cells.Executed++
		case "cached":
			st.Cells.Cached++
		case "coalesced":
			st.Cells.Coalesced++
		}
	}
	for i, p := range j.plans {
		ss := SpecStatus{
			Name:  j.specs[i].Name,
			Key:   p.Key,
			Cells: len(p.Cells),
			State: "running",
		}
		if r := j.results[i]; r.state != "" {
			ss.State = r.state
			ss.Error = r.err
			ss.Measurement = r.data
		}
		st.Specs = append(st.Specs, ss)
	}
	if j.state != "running" {
		st.WallMS = float64(j.wall) / float64(time.Millisecond)
	}
	return st
}

// jobID formats the server's monotonic job counter.
func jobID(n int64) string { return fmt.Sprintf("job-%06d", n) }
