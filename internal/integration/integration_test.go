// Package integration_test exercises the full stack — cluster, MPI, NAS
// skeletons, SMM machinery, energy metering, tracing, hotplug — in
// combined scenarios none of the unit tests cover alone.
package integration_test

import (
	"math"
	"testing"

	"smistudy"
	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/energy"
	"smistudy/internal/kernel"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
	"smistudy/internal/trace"
)

// A full MPI run with SMIs, energy meters and attribution all active at
// once: every subsystem must agree on the same ground truth.
func TestFullStackConsistency(t *testing.T) {
	e := sim.New(3)
	cl := cluster.MustNew(e, cluster.Wyeast(4, false, smm.SMMLong))
	cl.StartSMI()

	meters := make([]*energy.Meter, len(cl.Nodes))
	for i, n := range cl.Nodes {
		meters[i] = energy.NewMeter(e, n.CPU, energy.NehalemServer())
	}

	w := mpi.MustNewWorld(cl, 1, mpi.DefaultParams())
	res, err := nas.Run(w, nas.Spec{Bench: nas.EP, Class: nas.ClassA})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("run not verified")
	}

	for i, n := range cl.Nodes {
		st := n.SMM.Stats()
		if st.Count == 0 {
			t.Fatalf("node %d saw no SMIs over %v", i, res.Time)
		}
		// Episode log must be consistent with aggregate stats.
		var total sim.Time
		for _, ep := range n.SMM.Episodes() {
			total += ep.Duration
		}
		if total != st.TotalResidency {
			t.Fatalf("node %d: episode sum %v != residency %v", i, total, st.TotalResidency)
		}
		// Energy must include an SMM component matching residency.
		r := meters[i].Read()
		wantSMM := energy.NehalemServer().SMMPerCore * 4 * st.TotalResidency.Seconds()
		if math.Abs(r.SMMJoules-wantSMM) > 1e-6 {
			t.Fatalf("node %d: SMM energy %v, want %v", i, r.SMMJoules, wantSMM)
		}
	}
}

// Attribution across a whole MPI world: the sum of stolen time over all
// ranks must not exceed residency × cores, and every rank on a node with
// SMIs must show stolen time.
func TestAttributionAcrossCluster(t *testing.T) {
	e := sim.New(5)
	cl := cluster.MustNew(e, cluster.Wyeast(2, false, smm.SMMLong))
	cl.StartSMI()
	w := mpi.MustNewWorld(cl, 4, mpi.DefaultParams())

	var tasks [][]*kernel.Task
	tasks = make([][]*kernel.Task, 2)
	w.Run(nas.Profile(nas.EP), func(r *mpi.Rank, tk *kernel.Task) {
		tasks[r.Node().Index] = append(tasks[r.Node().Index], tk)
		tk.Compute(2.27e9 * 5)
		r.Barrier(tk)
	})
	for i, n := range cl.Nodes {
		a := trace.Attribute(n, tasks[i])
		residency := n.SMM.Stats().TotalResidency
		if a.TotalStolen <= 0 {
			t.Fatalf("node %d: no stolen time", i)
		}
		if a.TotalStolen > residency*4+sim.Millisecond {
			t.Fatalf("node %d: stolen %v exceeds residency %v × 4 cores", i, a.TotalStolen, residency)
		}
	}
}

// CPU hotplug in the middle of an MPI run must not wedge or corrupt the
// run — threads migrate and the job completes.
func TestHotplugDuringMPIRun(t *testing.T) {
	e := sim.New(7)
	cl := cluster.MustNew(e, cluster.Wyeast(2, false, smm.SMMNone))
	// Take node 1 down to a single CPU mid-run and bring it back.
	e.At(2*sim.Second, func() {
		if err := cl.Nodes[1].Kernel.OnlineCPUs(1); err != nil {
			t.Error(err)
		}
	})
	e.At(4*sim.Second, func() {
		if err := cl.Nodes[1].Kernel.OnlineCPUs(4); err != nil {
			t.Error(err)
		}
	})
	w := mpi.MustNewWorld(cl, 4, mpi.DefaultParams())
	res, err := nas.Run(w, nas.Spec{Bench: nas.EP, Class: nas.ClassA})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("hotplug corrupted the run")
	}
	// Reference run without hotplug.
	e2 := sim.New(7)
	cl2 := cluster.MustNew(e2, cluster.Wyeast(2, false, smm.SMMNone))
	w2 := mpi.MustNewWorld(cl2, 4, mpi.DefaultParams())
	ref, err := nas.Run(w2, nas.Spec{Bench: nas.EP, Class: nas.ClassA})
	if err != nil {
		t.Fatal(err)
	}
	// 4 ranks forced onto 1 CPU for 2 s must cost node 1 real time.
	if res.Time < ref.Time+sim.Second {
		t.Fatalf("hotplug had no effect: %v vs unperturbed %v", res.Time, ref.Time)
	}
}

// An SMI storm (short SMIs at high frequency) across a synchronizing job
// must slow it roughly by aggregate duty cycle, not wedge it.
func TestSMIStormOnBT(t *testing.T) {
	run := func(period uint64) sim.Time {
		e := sim.New(11)
		par := cluster.Wyeast(4, false, smm.SMMShort)
		par.Node.SMI.PeriodJiffies = period
		cl := cluster.MustNew(e, par)
		cl.StartSMI()
		w := mpi.MustNewWorld(cl, 1, mpi.DefaultParams())
		res, err := nas.Run(w, nas.Spec{Bench: nas.BT, Class: nas.ClassS})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	calm := run(100000)
	storm := run(10) // ~2ms SMI every ~12ms → ≈17% duty cycle per node
	slow := float64(storm)/float64(calm) - 1
	if slow < 0.15 {
		t.Fatalf("SMI storm cost only %.0f%%", slow*100)
	}
	if slow > 3 {
		t.Fatalf("SMI storm implausibly destructive: %.1fx", slow+1)
	}
}

// Determinism across the whole stack: identical seeds give bit-identical
// outcomes even with SMIs, hotplug and collectives in play.
func TestWholeStackDeterminism(t *testing.T) {
	run := func() (sim.Time, sim.Time, int) {
		e := sim.New(13)
		cl := cluster.MustNew(e, cluster.Wyeast(4, true, smm.SMMLong))
		cl.StartSMI()
		e.At(sim.Second, func() { _ = cl.Nodes[2].Kernel.OnlineCPUs(3) })
		w := mpi.MustNewWorld(cl, 2, mpi.DefaultParams())
		res, err := nas.Run(w, nas.Spec{Bench: nas.FT, Class: nas.ClassS})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time, cl.TotalSMMResidency(), cl.Nodes[0].SMM.Stats().Count
	}
	t1, r1, c1 := run()
	t2, r2, c2 := run()
	if t1 != t2 || r1 != r2 || c1 != c2 {
		t.Fatalf("stack not deterministic: (%v,%v,%d) vs (%v,%v,%d)", t1, r1, c1, t2, r2, c2)
	}
}

// Pinned ranks: pinning each rank to its own physical core must match
// the default spread placement's performance for EP.
func TestPinnedRanksEPPerformance(t *testing.T) {
	run := func(pin bool) sim.Time {
		e := sim.New(17)
		cl := cluster.MustNew(e, cluster.Wyeast(1, true, smm.SMMNone))
		w := mpi.MustNewWorld(cl, 4, mpi.DefaultParams())
		return w.Run(nas.Profile(nas.EP), func(r *mpi.Rank, tk *kernel.Task) {
			if pin {
				if err := tk.SetAffinity(r.ID() % 4); err != nil {
					t.Error(err)
				}
			}
			tk.Compute(2.27e9 * 2)
			r.Allreduce(tk, 80)
		})
	}
	spread := run(false)
	pinned := run(true)
	diff := math.Abs(float64(pinned)-float64(spread)) / float64(spread)
	if diff > 0.02 {
		t.Fatalf("pinning changed EP runtime by %.1f%%: %v vs %v", diff*100, pinned, spread)
	}
}

// The CPU model under combined stress: HTT contention + bandwidth cap +
// SMIs + hotplug, all at once, conserving every thread's requested work.
func TestKitchenSinkWorkConservation(t *testing.T) {
	e := sim.New(19)
	par := cluster.R410(smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 300, PhaseJitter: true})
	cl := cluster.MustNew(e, par)
	cl.StartSMI()
	node := cl.Nodes[0]

	const workers = 12
	const ops = 3e8
	done := 0
	threads := make([]*cpu.Thread, workers)
	for i := 0; i < workers; i++ {
		prof := cpu.Profile{CPI: 1, MissRate: 0.002 * float64(i%3), MemMissRate: 0.01}
		threads[i] = node.CPU.NewThread("w", prof)
		node.CPU.StartCompute(threads[i], ops, func() { done++ })
	}
	e.At(sim.Second, func() { _ = node.Kernel.OnlineCPUs(3) })
	e.At(2*sim.Second, func() { _ = node.Kernel.OnlineCPUs(7) })
	e.RunUntil(120 * sim.Second)
	if done != workers {
		t.Fatalf("only %d/%d workers completed", done, workers)
	}
	for i, th := range threads {
		if math.Abs(th.OpsDone()-ops)/ops > 1e-6 {
			t.Fatalf("worker %d did %v ops, want %v", i, th.OpsDone(), ops)
		}
	}
}

// Determinism must extend to fault scenarios: the same seed and the
// same fault schedule replay the same message losses, retransmissions
// and timings bit-for-bit. Without this, a faulted run could never be
// debugged by re-running it.
func TestFaultScenarioDeterminism(t *testing.T) {
	run := func() smistudy.NASResult {
		res, err := smistudy.RunNAS(smistudy.NASOptions{
			Bench: smistudy.FT, Class: smistudy.ClassA,
			Nodes: 4, RanksPerNode: 1, Seed: 21,
			Faults: &smistudy.FaultPlan{
				LossProb:    0.01,
				DegradeNode: 2, DegradeAt: sim.Second, DegradeFor: 2 * sim.Second,
				DegradeSlow: 1.5, DegradeLatency: 10 * sim.Microsecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatal("run not verified")
		}
		return res
	}
	a, b := run(), run()
	if a.MeanTime != b.MeanTime || a.Dropped != b.Dropped ||
		a.Retransmits != b.Retransmits || a.Duplicates != b.Duplicates {
		t.Fatalf("faulted run not deterministic:\n  (%v, %d drops, %d rexmit, %d dup)\n  (%v, %d drops, %d rexmit, %d dup)",
			a.MeanTime, a.Dropped, a.Retransmits, a.Duplicates,
			b.MeanTime, b.Dropped, b.Retransmits, b.Duplicates)
	}
	if a.Dropped == 0 || a.Retransmits == 0 {
		t.Fatalf("fault schedule left no trace: %d drops, %d retransmits", a.Dropped, a.Retransmits)
	}
}

// The same holds for destructive faults: a crash scenario fails the
// same way, with the same attributed error, at the same point.
func TestCrashScenarioDeterminism(t *testing.T) {
	run := func() (string, int64) {
		res, err := smistudy.RunNAS(smistudy.NASOptions{
			Bench: smistudy.EP, Class: smistudy.ClassA,
			Nodes: 4, RanksPerNode: 1, Seed: 4,
			Watchdog: 10 * sim.Second,
			Faults: &smistudy.FaultPlan{
				LossProb:  0.01,
				CrashNode: 1, CrashAt: 3 * sim.Second,
			},
		})
		if err == nil {
			t.Fatal("crashed run succeeded")
		}
		return err.Error(), res.Dropped
	}
	e1, d1 := run()
	e2, d2 := run()
	if e1 != e2 || d1 != d2 {
		t.Fatalf("crash scenario not deterministic:\n  %q (%d drops)\n  %q (%d drops)", e1, d1, e2, d2)
	}
}
