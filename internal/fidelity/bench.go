package fidelity

import (
	"encoding/json"
	"fmt"
	"sort"

	"smistudy/internal/experiments"
)

// BenchDelta is one baseline-vs-new comparison of a recorded sweep.
type BenchDelta struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// FastPath distinguishes entries of one sweep measured under
	// different dispatch modes (empty for pre-fast-path baselines).
	FastPath string  `json:"fastpath,omitempty"`
	Metric   string  `json:"metric"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	// Pct is the relative change in percent (positive = regression).
	Pct  float64 `json:"pct"`
	Pass bool    `json:"pass"`
}

// BenchComparison is the outcome of a bench-regression check.
type BenchComparison struct {
	TolPct float64      `json:"tol_pct"`
	Deltas []BenchDelta `json:"deltas"`
	Failed int          `json:"failed"`
}

// Ok reports whether no entry regressed beyond tolerance.
func (c BenchComparison) Ok() bool { return c.Failed == 0 && len(c.Deltas) > 0 }

// CompareBench judges a fresh BenchReport against the committed
// baseline: per-entry wall time and allocation counts must not regress
// by more than tolPct percent, and per-entry cell throughput
// (cells_per_sec) must not drop by more than tolPct percent — the gate
// that tracks the fast-path speedup trajectory once the baseline
// records it. Improvements always pass — the gate is one-sided, because
// CI runners are slower some days and faster others, and only the bad
// direction is a signal worth failing on. A sweep name present on one
// side only fails (a renamed or dropped sweep would silently exit the
// regression gate otherwise); an individual (worker count, fastpath
// mode) present on one side only is skipped, because the parallel
// worker count follows the measuring machine's CPU count.
func CompareBench(baseline, fresh experiments.BenchReport, tolPct float64) BenchComparison {
	cmp := BenchComparison{TolPct: tolPct}
	type entryKey struct {
		name     string
		workers  int
		fastpath string
	}
	oldByKey := map[entryKey]experiments.BenchEntry{}
	oldNames := map[string]bool{}
	for _, e := range baseline.Sweeps {
		oldByKey[entryKey{e.Name, e.Workers, e.FastPath}] = e
		oldNames[e.Name] = true
	}
	newNames := map[string]bool{}
	judge := func(e experiments.BenchEntry, metric string, old, new float64) {
		pct := 0.0
		if old > 0 {
			pct = (new - old) / old * 100
		}
		cmp.Deltas = append(cmp.Deltas, BenchDelta{
			Name: e.Name, Workers: e.Workers, FastPath: e.FastPath, Metric: metric,
			Old: old, New: new, Pct: pct, Pass: pct <= tolPct,
		})
	}
	for _, e := range fresh.Sweeps {
		newNames[e.Name] = true
		old, ok := oldByKey[entryKey{e.Name, e.Workers, e.FastPath}]
		if !ok {
			if !oldNames[e.Name] {
				cmp.Deltas = append(cmp.Deltas, BenchDelta{Name: e.Name, Workers: e.Workers,
					FastPath: e.FastPath, Metric: "missing-in-baseline", New: e.WallMS})
			}
			continue
		}
		judge(e, "wall_ms", old.WallMS, e.WallMS)
		judge(e, "mallocs", float64(old.Mallocs), float64(e.Mallocs))
		// Throughput regresses downward, so the sign flips: a drop in
		// cells/sec is the positive-percent direction the gate fails on.
		// Baselines recorded before the counter existed hold zero and are
		// skipped rather than judged against a meaningless denominator.
		if old.CellsPerSec > 0 {
			judge(e, "cells_per_sec_drop", old.CellsPerSec, e.CellsPerSec)
			d := &cmp.Deltas[len(cmp.Deltas)-1]
			d.Pct = -d.Pct
			d.Pass = d.Pct <= tolPct
		}
	}
	for _, e := range baseline.Sweeps {
		if !newNames[e.Name] {
			cmp.Deltas = append(cmp.Deltas, BenchDelta{Name: e.Name, Workers: e.Workers,
				Metric: "missing-in-new", Old: e.WallMS})
			newNames[e.Name] = true // report each dropped sweep once
		}
	}
	// The engine churn probe is the tightest invariant in the file: the
	// free list holds steady-state allocations per event at zero, and
	// any nonzero value is a leak of the zero-alloc property, not noise.
	cmp.Deltas = append(cmp.Deltas, BenchDelta{
		Name: "engine", Metric: "event_allocs",
		Old: baseline.EngineEventAllocs, New: fresh.EngineEventAllocs,
		Pass: fresh.EngineEventAllocs <= baseline.EngineEventAllocs,
	})
	for _, d := range cmp.Deltas {
		if !d.Pass {
			cmp.Failed++
		}
	}
	return cmp
}

// Render prints the comparison with the worst offenders first.
func (c BenchComparison) Render() string {
	sorted := append([]BenchDelta(nil), c.Deltas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pct > sorted[j].Pct })
	out := fmt.Sprintf("Bench regression check (tolerance +%g%% per entry): %d comparisons, %d failed\n",
		c.TolPct, len(c.Deltas), c.Failed)
	n := len(sorted)
	if n > 10 {
		n = 10
	}
	out += "Worst offenders:\n"
	for _, d := range sorted[:n] {
		status := "ok"
		if !d.Pass {
			status = "FAIL"
		}
		out += fmt.Sprintf("  %-20s w=%d %-12s %12.2f → %12.2f  %+7.2f%%  %s\n",
			d.Name, d.Workers, d.Metric, d.Old, d.New, d.Pct, status)
	}
	return out
}

// JSON serializes the comparison.
func (c BenchComparison) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// LoadBenchReport parses a BENCH_sweeps.json document.
func LoadBenchReport(data []byte) (experiments.BenchReport, error) {
	var r experiments.BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("fidelity: parse bench report: %w", err)
	}
	if len(r.Sweeps) == 0 {
		return r, fmt.Errorf("fidelity: bench report has no sweep entries")
	}
	return r, nil
}
