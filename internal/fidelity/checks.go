package fidelity

import (
	"fmt"
	"math"
	"sort"

	"smistudy"
	"smistudy/internal/analytic"
	"smistudy/internal/experiments"
	"smistudy/internal/paperdata"
	"smistudy/internal/stats"
)

// The gate calibration. Thresholds are set from the committed
// full-scale results with slack, so the tree as reproduced passes and a
// physics change (or a regression in the simulator) trips them; the
// rationale per artifact is in DESIGN.md §8.
const (
	// Mean relative baseline (SMM0) error budget per table. EP is
	// communication-free and tracks the paper tightly; BT and FT
	// inherit the paper's own multi-node network artifacts, which the
	// reproduction does not model per-switch, so their budgets cover
	// the divergence measured at calibration time (0.44 and 0.27)
	// without letting it grow.
	baselineBudgetEP = 0.05
	baselineBudgetBT = 0.55
	baselineBudgetFT = 0.40
	// Fraction of cells whose long-SMM impact must agree in sign with
	// the paper (within ±2 percentage points of zero counts as
	// agreement — near-zero cells have no meaningful direction).
	directionFloor = 0.75
	directionEps   = 2.0
	// Model-vs-simulator residual band: sim/analytic within ×(1±0.2).
	modelResidualTol = 0.2
	// HTT: without SMM the simulator's HT-on and HT-off runs must be
	// equal to numerical noise (the rendezvous cost only exists in SMM).
	httParityTol = 0.005
	// Figure endpoint ratios, calibrated from the committed sweeps
	// (Convolve 50 ms vs 1500 ms ≈ 2.9×, UnixBench 1600 ms vs
	// 100 ms ≈ 1.94×), with ±25% slack.
	figure1Endpoint    = 2.90
	figure2Endpoint    = 1.94
	figureEndpointBand = 0.25
	// Monotonicity slack per step, as a fraction of the earlier point.
	monotoneSlack = 0.05
)

func bandDesc(b paperdata.Band) string {
	switch {
	case b.Abs == 0:
		return fmt.Sprintf("±%g%% rel", b.Rel*100)
	case b.Rel == 0:
		return fmt.Sprintf("±%g abs", b.Abs)
	}
	return fmt.Sprintf("±(%g + %g%%)", b.Abs, b.Rel*100)
}

// bandCheck judges one sampled metric against a paperdata band.
func bandCheck(rep *Report, artifact, name string, s *stats.Sample, e *paperdata.Expectation) {
	got := s.Mean()
	rep.add(Check{
		Artifact: artifact, Name: name, Kind: "band",
		Got: got, Want: e.Want, Tol: bandDesc(e.Band),
		Pass:   e.Band.Within(got, e.Want),
		Detail: fmt.Sprintf("margin %.2f× of tolerance", e.Band.Margin(got, e.Want)),
		N:      s.N(), CI95: s.CI95(),
	})
}

// cellSamples accumulates one table cell's metrics across seeds.
type cellSamples struct {
	base, shortPct, longPct stats.Sample
}

// nasArtifact validates one of Tables 1–3: per-cell expectation bands
// on the single-node cells, an aggregate baseline error budget, a
// long-impact direction-agreement floor, and (for the benchmarks where
// the paper shows it cleanly) the impact-grows-with-nodes ordering.
func nasArtifact(cfg Config, exp paperdata.ExpectationSet, rep *Report,
	name string, gen func(experiments.Config) (experiments.NASTable, error)) ([]byte, error) {

	samples := map[string]*cellSamples{}
	var first experiments.NASTable
	for i, seed := range cfg.seeds() {
		t, err := gen(cfg.expCfg(seed))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = t
		}
		for _, row := range t.Rows {
			for _, half := range []struct {
				rpn int
				tr  *experiments.Triple
			}{{1, row.One}, {4, row.Four}} {
				if half.tr == nil {
					continue
				}
				key := paperdata.CellKey(string(t.Bench), byte(row.Class), row.Nodes, half.rpn)
				cs := samples[key]
				if cs == nil {
					cs = &cellSamples{}
					samples[key] = cs
				}
				cs.base.Add(half.tr.SMM0)
				cs.shortPct.Add(half.tr.PctShort())
				cs.longPct.Add(half.tr.PctLong())
			}
		}
	}
	bench := string(first.Bench)

	// Per-cell bands, in the paper's cell order.
	for _, c := range paperdata.Tables1to3 {
		if c.Bench != bench {
			continue
		}
		key := paperdata.CellKey(c.Bench, c.Class, c.Nodes, c.RanksPerNode)
		cs := samples[key]
		if cs == nil {
			continue // cell outside this tier's grid
		}
		for _, m := range []struct {
			metric string
			s      *stats.Sample
		}{
			{paperdata.MetricBaseSeconds, &cs.base},
			{paperdata.MetricShortPct, &cs.shortPct},
			{paperdata.MetricLongPct, &cs.longPct},
		} {
			if e := exp.Find(name, key, m.metric); e != nil {
				bandCheck(rep, name, key+" "+m.metric, m.s, e)
			}
		}
	}

	// Aggregate baseline budget and direction agreement over every
	// measured cell with a paper entry.
	budget := map[string]float64{"EP": baselineBudgetEP, "BT": baselineBudgetBT, "FT": baselineBudgetFT}[bench]
	var errSum float64
	cells, agree, dirN := 0, 0, 0
	for _, c := range paperdata.Tables1to3 {
		if c.Bench != bench {
			continue
		}
		cs := samples[paperdata.CellKey(c.Bench, c.Class, c.Nodes, c.RanksPerNode)]
		if cs == nil {
			continue
		}
		errSum += stats.RelErr(cs.base.Mean(), c.SMM0)
		cells++
		dirN++
		if stats.SameSign(cs.longPct.Mean(), c.PctLong(), directionEps) {
			agree++
		}
	}
	if cells > 0 {
		rep.add(Check{Artifact: name, Name: "mean baseline rel err", Kind: "aggregate",
			Got: errSum / float64(cells), Want: budget, Tol: "≤ want",
			Pass:   errSum/float64(cells) <= budget,
			Detail: fmt.Sprintf("%d cells vs paper", cells)})
		rep.add(Check{Artifact: name, Name: "long-impact direction agreement", Kind: "aggregate",
			Got: float64(agree) / float64(dirN), Want: directionFloor, Tol: "≥ want",
			Pass:   float64(agree)/float64(dirN) >= directionFloor,
			Detail: fmt.Sprintf("%d/%d cells match the paper's sign (±%g pp ≈ 0)", agree, dirN, directionEps)})
	}

	// Ordering: the paper's headline scaling claim — long-SMM impact
	// grows with node count — holds cleanly for BT and EP (Tables 1–2);
	// FT's multi-node cells are non-monotone in the paper itself.
	if bench == "BT" || bench == "EP" {
		nasOrderingChecks(rep, name, bench, samples)
	}
	s, err := experiments.ToJSON(first)
	return []byte(s), err
}

// nasOrderingChecks asserts longPct(max nodes) > longPct(1 node) per
// (class, ranks-per-node) series of the table.
func nasOrderingChecks(rep *Report, name, bench string, samples map[string]*cellSamples) {
	type series struct {
		class byte
		rpn   int
	}
	byNodes := map[series]map[int]float64{}
	var keys []series
	for _, c := range paperdata.Tables1to3 {
		if c.Bench != bench {
			continue
		}
		cs := samples[paperdata.CellKey(c.Bench, c.Class, c.Nodes, c.RanksPerNode)]
		if cs == nil {
			continue
		}
		sk := series{c.Class, c.RanksPerNode}
		if byNodes[sk] == nil {
			byNodes[sk] = map[int]float64{}
			keys = append(keys, sk)
		}
		byNodes[sk][c.Nodes] = cs.longPct.Mean()
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return keys[i].rpn < keys[j].rpn
	})
	for _, sk := range keys {
		pts := byNodes[sk]
		minN, maxN := 0, 0
		for n := range pts {
			if minN == 0 || n < minN {
				minN = n
			}
			if n > maxN {
				maxN = n
			}
		}
		if minN == maxN {
			continue
		}
		rep.add(Check{Artifact: name,
			Name: fmt.Sprintf("%c.r%d long impact grows %d→%d nodes", sk.class, sk.rpn, minN, maxN),
			Kind: "ordering", Got: pts[maxN], Want: pts[minN], Tol: "> want",
			Pass:   pts[maxN] > pts[minN],
			Detail: "synchronization amplifies per-node noise with scale"})
	}
}

// httArtifact validates Table 4 or 5: HT-on and HT-off must coincide
// without SMM, and the long-SMM HTT effect must reproduce the paper's
// direction — a consistent penalty for EP (the extra rendezvous
// latency of 2× logical CPUs), and a small mixed effect for FT.
func httArtifact(cfg Config, rep *Report, name string,
	gen func(experiments.Config) (experiments.HTTTable, error)) ([]byte, error) {

	var parity, longDelta, absLongDelta stats.Sample
	nonNeg, rows := 0, 0
	var first experiments.HTTTable
	for i, seed := range cfg.seeds() {
		t, err := gen(cfg.expCfg(seed))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = t
		}
		for _, row := range t.Rows {
			parity.Add(math.Abs(row.On.SMM0-row.Off.SMM0) / row.Off.SMM0)
			pct := (row.On.SMM2 - row.Off.SMM2) / row.Off.SMM2 * 100
			longDelta.Add(pct)
			absLongDelta.Add(math.Abs(pct))
			rows++
			if pct >= 0 {
				nonNeg++
			}
		}
	}
	rep.add(Check{Artifact: name, Name: "HT parity without SMM", Kind: "aggregate",
		Got: parity.Mean(), Want: httParityTol, Tol: "≤ want",
		Pass:   parity.Mean() <= httParityTol,
		Detail: "HT-on must equal HT-off when no SMIs fire",
		N:      parity.N(), CI95: parity.CI95()})
	if name == "table4" {
		rep.add(Check{Artifact: name, Name: "mean HTT long-SMI penalty %", Kind: "ordering",
			Got: longDelta.Mean(), Want: 0, Tol: "> want",
			Pass:   longDelta.Mean() > 0,
			Detail: "HT-off beats HT-on under long SMIs on EP (2× CPUs to rendezvous)",
			N:      longDelta.N(), CI95: longDelta.CI95()})
		rep.add(Check{Artifact: name, Name: "rows with HTT penalty ≥ 0", Kind: "aggregate",
			Got: float64(nonNeg) / float64(rows), Want: 0.8, Tol: "≥ want",
			Pass:   float64(nonNeg)/float64(rows) >= 0.8,
			Detail: fmt.Sprintf("%d/%d rows", nonNeg, rows)})
	} else {
		rep.add(Check{Artifact: name, Name: "mean |HTT long-SMI effect| %", Kind: "aggregate",
			Got: absLongDelta.Mean(), Want: 2.5, Tol: "≤ want",
			Pass:   absLongDelta.Mean() <= 2.5,
			Detail: "the paper's FT HTT effect is small in both directions",
			N:      absLongDelta.N(), CI95: absLongDelta.CI95()})
	}
	s, err := experiments.ToJSON(first)
	return []byte(s), err
}

// figure1Artifact validates the Convolve study: execution time falls
// monotonically as the SMI interval grows for every CPU count and both
// cache behaviours, the 50 ms-vs-longest-interval ratio matches the
// committed calibration, and the cache-unfriendly variant is always the
// slower one (SMM flushes cost it more, the paper's Figure 1 contrast).
func figure1Artifact(cfg Config, rep *Report) ([]byte, error) {
	type seriesKey struct {
		beh  smistudy.CacheBehavior
		cpus int
	}
	acc := map[seriesKey]map[int]*stats.Sample{}
	var first experiments.Figure1
	for i, seed := range cfg.seeds() {
		f, err := experiments.Figure1Convolve(cfg.expCfg(seed))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = f
		}
		for _, p := range f.Points {
			sk := seriesKey{p.Behavior, p.CPUs}
			if acc[sk] == nil {
				acc[sk] = map[int]*stats.Sample{}
			}
			if acc[sk][p.IntervalMS] == nil {
				acc[sk][p.IntervalMS] = &stats.Sample{}
			}
			acc[sk][p.IntervalMS].Add(p.Seconds)
		}
	}
	var keys []seriesKey
	for sk := range acc {
		keys = append(keys, sk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].beh != keys[j].beh {
			return keys[i].beh < keys[j].beh
		}
		return keys[i].cpus < keys[j].cpus
	})
	monotone, total := 0, 0
	var endpoint1 float64
	for _, sk := range keys {
		ivs := sortedKeys(acc[sk])
		var ys []float64
		for _, iv := range ivs {
			ys = append(ys, acc[sk][iv].Mean())
		}
		total++
		if stats.Monotone(ys, stats.Decreasing, monotoneSlack) {
			monotone++
		}
		if sk.cpus == 1 && sk.beh == smistudy.CacheUnfriendly && len(ys) > 1 {
			endpoint1 = ys[0] / ys[len(ys)-1]
		}
	}
	rep.add(Check{Artifact: "figure1", Name: "time falls with SMI interval", Kind: "ordering",
		Got: float64(monotone), Want: float64(total), Tol: "= want",
		Pass:   monotone == total,
		Detail: fmt.Sprintf("%d/%d (behaviour × CPUs) series monotone decreasing (slack %g)", monotone, total, monotoneSlack)})
	band := paperdata.Band{Rel: figureEndpointBand}
	rep.add(Check{Artifact: "figure1", Name: "1-CPU cache-unfriendly 50ms/longest ratio", Kind: "band",
		Got: endpoint1, Want: figure1Endpoint, Tol: bandDesc(band),
		Pass:   band.Within(endpoint1, figure1Endpoint),
		Detail: "calibrated duty-cycle cost of the densest SMI schedule"})
	// Cache-unfriendly pays more than cache-friendly at the densest
	// schedule, for every CPU count.
	worse, cpusN := 0, 0
	for _, sk := range keys {
		if sk.beh != smistudy.CacheUnfriendly {
			continue
		}
		ivs := sortedKeys(acc[sk])
		friendly := acc[seriesKey{smistudy.CacheFriendly, sk.cpus}]
		if friendly == nil || len(ivs) == 0 {
			continue
		}
		cpusN++
		if acc[sk][ivs[0]].Mean() > friendly[ivs[0]].Mean() {
			worse++
		}
	}
	rep.add(Check{Artifact: "figure1", Name: "cache-unfriendly slower at 50ms", Kind: "ordering",
		Got: float64(worse), Want: float64(cpusN), Tol: "= want",
		Pass:   worse == cpusN,
		Detail: "SMM-induced cache flushes must cost the unfriendly workload more"})
	s, err := experiments.ToJSON(first)
	return []byte(s), err
}

// figure2Artifact validates the UnixBench study: the index score rises
// monotonically with the SMI interval for every CPU count, and the
// longest/shortest-interval score ratio matches calibration.
func figure2Artifact(cfg Config, rep *Report) ([]byte, error) {
	acc := map[int]map[int]*stats.Sample{}
	var first experiments.Figure2
	for i, seed := range cfg.seeds() {
		f, err := experiments.Figure2UnixBench(cfg.expCfg(seed))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = f
		}
		for _, p := range f.Points {
			if acc[p.CPUs] == nil {
				acc[p.CPUs] = map[int]*stats.Sample{}
			}
			if acc[p.CPUs][p.IntervalMS] == nil {
				acc[p.CPUs][p.IntervalMS] = &stats.Sample{}
			}
			acc[p.CPUs][p.IntervalMS].Add(p.Score)
		}
	}
	var cpus []int
	for c := range acc {
		cpus = append(cpus, c)
	}
	sort.Ints(cpus)
	monotone, total := 0, 0
	var endpoint1 float64
	for _, c := range cpus {
		ivs := sortedKeys(acc[c])
		var ys []float64
		for _, iv := range ivs {
			ys = append(ys, acc[c][iv].Mean())
		}
		total++
		if stats.Monotone(ys, stats.Increasing, monotoneSlack) {
			monotone++
		}
		if c == 1 && len(ys) > 1 {
			endpoint1 = ys[len(ys)-1] / ys[0]
		}
	}
	rep.add(Check{Artifact: "figure2", Name: "score rises with SMI interval", Kind: "ordering",
		Got: float64(monotone), Want: float64(total), Tol: "= want",
		Pass:   monotone == total,
		Detail: fmt.Sprintf("%d/%d CPU-count series monotone increasing (slack %g)", monotone, total, monotoneSlack)})
	band := paperdata.Band{Rel: figureEndpointBand}
	rep.add(Check{Artifact: "figure2", Name: "1-CPU longest/shortest score ratio", Kind: "band",
		Got: endpoint1, Want: figure2Endpoint, Tol: bandDesc(band),
		Pass:   band.Within(endpoint1, figure2Endpoint),
		Detail: "calibrated recovery of the index score as SMIs thin out"})
	s, err := experiments.ToJSON(first)
	return []byte(s), err
}

// modelArtifact validates the closed-form-model cross-check: every
// sim-vs-analytic residual inside ×(1±tol), per row and in aggregate.
func modelArtifact(cfg Config, rep *Report) ([]byte, error) {
	var first experiments.ModelResult
	var worst []analytic.Residual
	for i, seed := range cfg.seeds() {
		m, err := experiments.ModelData(cfg.expCfg(seed))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = m
			for _, row := range m.Rows {
				r := analytic.Residual{Simulated: row.SimRunS, Predicted: row.PredictS}
				rep.add(Check{Artifact: "model",
					Name: fmt.Sprintf("%d nodes × %s residual", row.Nodes, row.Step),
					Kind: "residual", Got: r.Ratio(), Want: 1,
					Tol:    fmt.Sprintf("×(1±%g)", modelResidualTol),
					Pass:   r.Within(modelResidualTol),
					Detail: "simulated/analytic time for the same superstep schedule"})
			}
		}
		worst = append(worst, m.Residuals()...)
	}
	maxLE := analytic.MaxLogError(worst)
	rep.add(Check{Artifact: "model", Name: "max log residual (all seeds)", Kind: "residual",
		Got: maxLE, Want: math.Log(1 + modelResidualTol), Tol: "≤ want",
		Pass:   maxLE <= math.Log(1+modelResidualTol),
		Detail: fmt.Sprintf("%d residuals", len(worst))})
	s, err := experiments.ToJSON(first)
	return []byte(s), err
}

// amplificationArtifact validates the Ferreira-style amplification
// extension: one node has no one to amplify to (factor ≈ 1), and
// synchronization propagates noise with scale (16-node EP amplifies
// more than 1-node EP; full tier also pins BT above EP — tight
// coupling amplifies more than embarrassing parallelism).
func amplificationArtifact(cfg Config, rep *Report) ([]byte, error) {
	type key struct {
		bench string
		class byte
		nodes int
	}
	acc := map[key]*stats.Sample{}
	var first experiments.AmpResult
	for i, seed := range cfg.seeds() {
		a, err := experiments.AmplificationData(cfg.expCfg(seed))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = a
		}
		for _, c := range a.Cells {
			k := key{c.Bench, c.Class[0], c.Nodes}
			if acc[k] == nil {
				acc[k] = &stats.Sample{}
			}
			acc[k].Add(c.Factor)
		}
	}
	factor := func(bench string, class byte, nodes int) *stats.Sample {
		return acc[key{bench, class, nodes}]
	}
	if s := factor("EP", 'A', 1); s != nil {
		band := paperdata.Band{Abs: 0.3}
		rep.add(Check{Artifact: "amplification", Name: "EP.A 1-node factor ≈ 1", Kind: "band",
			Got: s.Mean(), Want: 1, Tol: bandDesc(band),
			Pass:   band.Within(s.Mean(), 1),
			Detail: "one node's job pays exactly its own residency",
			N:      s.N(), CI95: s.CI95()})
	}
	if s1, s16 := factor("EP", 'A', 1), factor("EP", 'A', 16); s1 != nil && s16 != nil {
		rep.add(Check{Artifact: "amplification", Name: "EP.A 16 nodes > 1 node", Kind: "ordering",
			Got: s16.Mean(), Want: s1.Mean(), Tol: "> want",
			Pass:   s16.Mean() > s1.Mean(),
			Detail: "the max-over-nodes tail grows with node count"})
	}
	if sEP, sBT := factor("EP", 'A', 16), factor("BT", 'A', 16); sEP != nil && sBT != nil {
		rep.add(Check{Artifact: "amplification", Name: "BT.A 16 nodes > EP.A 16 nodes", Kind: "ordering",
			Got: sBT.Mean(), Want: sEP.Mean(), Tol: "> want",
			Pass:   sBT.Mean() > sEP.Mean(),
			Detail: "tight coupling amplifies more than embarrassing parallelism"})
	}
	s, err := experiments.ToJSON(first)
	return []byte(s), err
}

// faultsArtifact validates the single-node degradation study: one
// degraded node costs most of the whole-fabric price (max-over-nodes,
// not 1/n resource sharing), degrading everything is at least as bad,
// and an SMI storm's stretch tracks the injected residency.
func faultsArtifact(cfg Config, rep *Report) ([]byte, error) {
	var oneShare, stormShare stats.Sample
	var first experiments.DegradeResult
	for i, seed := range cfg.seeds() {
		d, err := experiments.DegradeData(cfg.expCfg(seed))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = d
		}
		oneShare.Add(d.OneShare)
		stormShare.Add(d.StormShare)
	}
	// One degraded node must cost clearly more than its 1/n resource
	// share of the whole-fabric price (the max-over-nodes shape), but
	// not implausibly more than the whole fabric itself. It may exceed
	// 1 slightly: when every link is slow the stalls synchronize, while
	// one slow node desynchronizes the exchange pattern.
	propShare := 1.0 / float64(first.Nodes)
	floor := 1.25 * propShare
	rep.add(Check{Artifact: "faults", Name: "one-node share of whole-fabric cost", Kind: "aggregate",
		Got: oneShare.Mean(), Want: floor, Tol: "≥ want",
		Pass:   oneShare.Mean() >= floor,
		Detail: fmt.Sprintf("max-over-nodes; 1/n sharing would predict %.2f", propShare),
		N:      oneShare.N(), CI95: oneShare.CI95()})
	rep.add(Check{Artifact: "faults", Name: "one-node share sanity ceiling", Kind: "aggregate",
		Got: oneShare.Mean(), Want: 1.3, Tol: "≤ want",
		Pass:   oneShare.Mean() <= 1.3,
		Detail: "one node's links cannot cost far more than degrading every link"})
	band := paperdata.Band{Abs: 0.6}
	rep.add(Check{Artifact: "faults", Name: "storm stretch / injected residency", Kind: "band",
		Got: stormShare.Mean(), Want: 1, Tol: bandDesc(band),
		Pass:   band.Within(stormShare.Mean(), 1),
		Detail: "the job pays the noisy node's bill in full, not 1/n of it",
		N:      stormShare.N(), CI95: stormShare.CI95()})
	s, err := experiments.ToJSON(first)
	return []byte(s), err
}

// sortedKeys returns the sorted int keys of a sample map.
func sortedKeys(m map[int]*stats.Sample) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
