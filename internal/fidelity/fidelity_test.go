package fidelity

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smistudy/internal/experiments"
)

// quickCfg is the fastest real validation: one artifact, one seed.
func quickCfg(only ...string) Config {
	return Config{Only: only, Seeds: []int64{1}, Workers: 2}
}

func TestValidateQuickTable2Passes(t *testing.T) {
	rep, err := Validate(quickCfg("table2"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("committed tree must pass:\n%s", rep.Render())
	}
	if rep.Failed != 0 || rep.Passed != len(rep.Checks) {
		t.Fatalf("counts inconsistent: %+v", rep)
	}
	kinds := map[string]bool{}
	for _, c := range rep.Checks {
		kinds[c.Kind] = true
	}
	for _, k := range []string{"band", "aggregate", "ordering"} {
		if !kinds[k] {
			t.Fatalf("table2 validation must include a %s gate", k)
		}
	}
}

// TestPerturbedPhysicsTrips is the harness's own acceptance criterion:
// doubling every SMI duration is a deliberate physics bug, and the
// tolerance gates must catch it.
func TestPerturbedPhysicsTrips(t *testing.T) {
	cfg := quickCfg("table2")
	cfg.SMIScale = 2
	rep, err := Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatalf("doubled long-SMI duration must trip the gates:\n%s", rep.Render())
	}
	var sawLongPct bool
	for _, c := range rep.Checks {
		if !c.Pass && strings.Contains(c.Name, "long_pct") {
			sawLongPct = true
		}
	}
	if !sawLongPct {
		t.Fatalf("the long-SMM impact bands should be what trips:\n%s", rep.Render())
	}
}

func TestValidateRejectsUnknownArtifact(t *testing.T) {
	if _, err := Validate(quickCfg("table9")); err == nil || !strings.Contains(err.Error(), "unknown artifact") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsGoldenOnFullTier(t *testing.T) {
	cfg := quickCfg("table2")
	cfg.Full = true
	cfg.GoldenDir = t.TempDir()
	if _, err := Validate(cfg); err == nil || !strings.Contains(err.Error(), "quick tier") {
		t.Fatalf("err = %v", err)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Validate(quickCfg("faults"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Failed != rep.Failed || len(back.Checks) != len(rep.Checks) || back.Tier != rep.Tier {
		t.Fatalf("round trip changed the report: %+v vs %+v", back, *rep)
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg("model")
	if err := UpdateGolden(cfg, dir, nil); err != nil {
		t.Fatal(err)
	}
	cfg.GoldenDir = dir
	rep, err := Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("freshly regenerated goldens must byte-match:\n%s", rep.Render())
	}
	// Corrupting the golden must fail the gate.
	path := filepath.Join(dir, "model.json")
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("corrupted golden must fail the byte-compare")
	}
	// A missing golden fails too — absent baselines are invisible drift.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	rep, err = Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("missing golden must fail the byte-compare")
	}
}

func benchReport(entries ...experiments.BenchEntry) experiments.BenchReport {
	return experiments.BenchReport{GoMaxProcs: 4, Quick: true, Sweeps: entries}
}

func TestCompareBench(t *testing.T) {
	base := benchReport(
		experiments.BenchEntry{Name: "table1", Workers: 1, WallMS: 100, Mallocs: 1000},
		experiments.BenchEntry{Name: "table1", Workers: 4, WallMS: 40, Mallocs: 1000},
	)
	// Within tolerance (and an improvement) passes.
	ok := benchReport(
		experiments.BenchEntry{Name: "table1", Workers: 1, WallMS: 110, Mallocs: 1000},
		experiments.BenchEntry{Name: "table1", Workers: 4, WallMS: 20, Mallocs: 900},
	)
	if cmp := CompareBench(base, ok, 15); !cmp.Ok() {
		t.Fatalf("within-tolerance run failed:\n%s", cmp.Render())
	}
	// A wall-time regression beyond tolerance fails.
	slow := benchReport(
		experiments.BenchEntry{Name: "table1", Workers: 1, WallMS: 130, Mallocs: 1000},
		experiments.BenchEntry{Name: "table1", Workers: 4, WallMS: 40, Mallocs: 1000},
	)
	if cmp := CompareBench(base, slow, 15); cmp.Ok() {
		t.Fatal("30% wall regression passed")
	}
	// Exactly at tolerance passes (boundary is inclusive).
	edge := benchReport(
		experiments.BenchEntry{Name: "table1", Workers: 1, WallMS: 115, Mallocs: 1000},
		experiments.BenchEntry{Name: "table1", Workers: 4, WallMS: 40, Mallocs: 1000},
	)
	if cmp := CompareBench(base, edge, 15); !cmp.Ok() {
		t.Fatalf("at-tolerance run failed:\n%s", cmp.Render())
	}
	// A dropped sweep name fails; a differing worker count does not.
	differentWorkers := benchReport(
		experiments.BenchEntry{Name: "table1", Workers: 1, WallMS: 100, Mallocs: 1000},
		experiments.BenchEntry{Name: "table1", Workers: 8, WallMS: 25, Mallocs: 1000},
	)
	if cmp := CompareBench(base, differentWorkers, 15); !cmp.Ok() {
		t.Fatalf("differing worker count must be tolerated:\n%s", cmp.Render())
	}
	dropped := benchReport(
		experiments.BenchEntry{Name: "renamed", Workers: 1, WallMS: 1, Mallocs: 1},
	)
	cmp := CompareBench(base, dropped, 15)
	if cmp.Ok() {
		t.Fatal("dropped sweep name passed")
	}
	// The engine zero-alloc invariant is absolute, not percentage-based.
	leak := benchReport(base.Sweeps...)
	leakRep := experiments.BenchReport{Sweeps: leak.Sweeps, EngineEventAllocs: 0.5}
	if cmp := CompareBench(base, leakRep, 15); cmp.Ok() {
		t.Fatal("engine alloc leak passed")
	}
}

func TestLoadBenchReport(t *testing.T) {
	if _, err := LoadBenchReport([]byte("not json")); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := LoadBenchReport([]byte(`{"sweeps": []}`)); err == nil {
		t.Fatal("empty sweep list must fail")
	}
	if _, err := LoadBenchReport([]byte(`{"sweeps": [{"name":"x","workers":1,"wall_ms":1}]}`)); err != nil {
		t.Fatal(err)
	}
}
