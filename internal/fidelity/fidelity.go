// Package fidelity is the paper-fidelity validation harness: it re-runs
// every reproduced artifact (Tables 1–5, Figures 1–2, the model,
// amplification and fault extension studies) through
// internal/experiments, aggregates each cell across repeated seeds, and
// judges the results against declarative tolerance gates — per-cell
// bands from internal/paperdata, aggregate error budgets, ordering and
// monotonicity predicates, and model-vs-simulator residuals.
//
// The output is a machine-readable Report plus a human diff table;
// cmd/smivalidate drives it and CI requires it. The gates are
// calibrated so the committed tree passes and a physics perturbation
// (Config.SMIScale ≠ 1 doubles or halves every SMI) trips them — the
// harness is tested against its own blind spot.
package fidelity

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"smistudy/internal/experiments"
	"smistudy/internal/obs"
	"smistudy/internal/paperdata"
	"smistudy/internal/runner"
)

// Config scopes one validation run.
type Config struct {
	// Full selects the full tier (all classes, paper-scale grids,
	// more seeds); the default quick tier shrinks grids for PR CI.
	Full bool
	// Only restricts the run to the named artifacts (nil = all).
	Only []string
	// Seeds are the deterministic base seeds each artifact is repeated
	// with; nil selects the tier default ({1,2}).
	Seeds []int64
	// Runs per cell within one seed; zero selects the tier default
	// (quick 1, full 3).
	Runs int
	// Workers fans independent sweep cells over OS threads.
	Workers int
	// SMIScale ≠ 0,1 deliberately perturbs the physics (multiplies
	// every SMI duration) so the gates can be shown to trip.
	SMIScale float64
	// Expectations overrides the built-in per-cell expectation set.
	Expectations *paperdata.ExpectationSet
	// GoldenDir, when set, byte-compares each artifact's canonical JSON
	// against <dir>/<artifact>.json. Quick tier with default seeds
	// only: goldens pin the deterministic quick run.
	GoldenDir string
	// Dispatch, when non-nil, is the analytic fast-path dispatcher every
	// sweep cell consults (see runner dispatch.go). Auto mode is
	// byte-identical to simulation, so goldens must pass unchanged with
	// it on — exactly what CI asserts.
	Dispatch *runner.Dispatcher
	// Stats, when non-nil, accumulates execution accounting across every
	// artifact's cells.
	Stats *runner.ExecStats
	// Shards is the per-cell engine shard count (see runner.Exec.Shards).
	Shards int
}

// Tier names the configured tier.
func (c Config) Tier() string {
	if c.Full {
		return "full"
	}
	return "quick"
}

func (c Config) seeds() []int64 {
	if len(c.Seeds) > 0 {
		return c.Seeds
	}
	return []int64{1, 2}
}

func (c Config) runs() int {
	if c.Runs > 0 {
		return c.Runs
	}
	if c.Full {
		return 3
	}
	return 1
}

// expCfg builds the experiments config for one seed.
func (c Config) expCfg(seed int64) experiments.Config {
	return experiments.Config{
		Runs:     c.runs(),
		Seed:     seed,
		Quick:    !c.Full,
		Workers:  c.Workers,
		SMIScale: c.SMIScale,
		Dispatch: c.Dispatch,
		Stats:    c.Stats,
		Shards:   c.Shards,
	}
}

func (c Config) expectations() (paperdata.ExpectationSet, error) {
	var s paperdata.ExpectationSet
	if c.Expectations != nil {
		s = *c.Expectations
	} else {
		s = paperdata.Expectations()
	}
	return s, s.Validate()
}

// artifact is one validatable reproduction target.
type artifact struct {
	name string
	run  func(cfg Config, exp paperdata.ExpectationSet, rep *Report) ([]byte, error)
}

// registry lists every artifact in report order.
func registry() []artifact {
	return []artifact{
		{"table1", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return nasArtifact(c, e, r, "table1", experiments.Table1)
		}},
		{"table2", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return nasArtifact(c, e, r, "table2", experiments.Table2)
		}},
		{"table3", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return nasArtifact(c, e, r, "table3", experiments.Table3)
		}},
		{"table4", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return httArtifact(c, r, "table4", experiments.Table4)
		}},
		{"table5", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return httArtifact(c, r, "table5", experiments.Table5)
		}},
		{"figure1", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return figure1Artifact(c, r)
		}},
		{"figure2", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return figure2Artifact(c, r)
		}},
		{"model", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return modelArtifact(c, r)
		}},
		{"amplification", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return amplificationArtifact(c, r)
		}},
		{"faults", func(c Config, e paperdata.ExpectationSet, r *Report) ([]byte, error) {
			return faultsArtifact(c, r)
		}},
	}
}

// Artifacts lists the validatable artifact names, for -only validation
// and usage text.
func Artifacts() []string {
	var names []string
	for _, a := range registry() {
		names = append(names, a.name)
	}
	return names
}

func (c Config) selected(name string) bool {
	if len(c.Only) == 0 {
		return true
	}
	for _, o := range c.Only {
		if o == name {
			return true
		}
	}
	return false
}

// Validate runs every selected artifact and judges its gates.
func Validate(cfg Config) (*Report, error) {
	exp, err := cfg.expectations()
	if err != nil {
		return nil, err
	}
	if cfg.GoldenDir != "" && cfg.Full {
		return nil, fmt.Errorf("fidelity: golden comparison pins the quick tier; run -update-golden or drop -golden for full")
	}
	known := map[string]bool{}
	for _, a := range registry() {
		known[a.name] = true
	}
	for _, o := range cfg.Only {
		if !known[o] {
			return nil, fmt.Errorf("fidelity: unknown artifact %q (have %v)", o, Artifacts())
		}
	}
	rep := &Report{Tier: cfg.Tier(), Seeds: cfg.seeds(), Runs: cfg.runs(), SMIScale: cfg.SMIScale}
	for _, a := range registry() {
		if !cfg.selected(a.name) {
			continue
		}
		rep.Artifacts = append(rep.Artifacts, a.name)
		data, err := a.run(cfg, exp, rep)
		if err != nil {
			return nil, fmt.Errorf("fidelity: %s: %w", a.name, err)
		}
		if cfg.GoldenDir != "" {
			goldenCheck(rep, cfg.GoldenDir, a.name, data)
		}
	}
	if len(rep.Artifacts) == 0 {
		return nil, fmt.Errorf("fidelity: no artifacts selected")
	}
	rep.FastPath = cfg.Dispatch.Stats()
	return rep, nil
}

// goldenCheck byte-compares an artifact's canonical JSON against its
// committed golden. A missing golden fails: the gate exists to catch
// silent drift, and an absent baseline is drift nobody can see.
func goldenCheck(rep *Report, dir, name string, data []byte) {
	path := filepath.Join(dir, name+".json")
	want, err := os.ReadFile(path)
	if err != nil {
		rep.add(Check{Artifact: name, Name: "golden " + name + ".json", Kind: "golden",
			Tol: "byte-identical", Detail: fmt.Sprintf("read golden: %v (regenerate with -update-golden)", err)})
		return
	}
	pass := bytes.Equal(data, want)
	detail := ""
	if !pass {
		detail = fmt.Sprintf("regenerated JSON differs from %s (%d vs %d bytes); inspect, then -update-golden if intended", path, len(data), len(want))
	}
	rep.add(Check{Artifact: name, Name: "golden " + name + ".json", Kind: "golden",
		Got: float64(len(data)), Want: float64(len(want)),
		Tol: "byte-identical", Pass: pass, Detail: detail})
}

// UpdateGolden regenerates every selected artifact's canonical JSON
// into dir, plus a provenance manifest when one is supplied. It runs
// the same generators as Validate at the same configuration, so a
// subsequent Validate with GoldenDir set passes by construction.
func UpdateGolden(cfg Config, dir string, manifest *obs.Manifest) error {
	exp, err := cfg.expectations()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, a := range registry() {
		if !cfg.selected(a.name) {
			continue
		}
		var scratch Report
		data, err := a.run(cfg, exp, &scratch)
		if err != nil {
			return fmt.Errorf("fidelity: %s: %w", a.name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, a.name+".json"), data, 0o644); err != nil {
			return err
		}
	}
	if manifest != nil {
		data, err := manifest.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
