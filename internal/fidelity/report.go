package fidelity

import (
	"encoding/json"
	"fmt"
	"strings"

	"smistudy/internal/metrics"
	"smistudy/internal/obs"
)

// Check is one judged gate: a measured quantity against its acceptance
// criterion. Kind classifies the criterion so report consumers can
// filter structural gates (golden, bench) from physics gates (band,
// ordering, residual, aggregate).
type Check struct {
	Artifact string `json:"artifact"`
	// Name addresses the check inside the artifact ("EP.A.n1.r1 base_s").
	Name string `json:"name"`
	// Kind is band | ordering | residual | aggregate | golden | bench.
	Kind string `json:"kind"`
	// Got and Want are the measured and expected values (Want may be a
	// threshold rather than a target; Tol says which).
	Got  float64 `json:"got"`
	Want float64 `json:"want"`
	// Tol describes the acceptance criterion in words.
	Tol  string `json:"tol"`
	Pass bool   `json:"pass"`
	// Detail carries failure context (how far out, which cells).
	Detail string `json:"detail,omitempty"`
	// N and CI95 describe the sample behind Got when it was measured
	// across repeated seeds (zero otherwise).
	N    int     `json:"n,omitempty"`
	CI95 float64 `json:"ci95,omitempty"`
}

// Report is the machine-readable outcome of one validation run.
type Report struct {
	Tier      string   `json:"tier"`
	Seeds     []int64  `json:"seeds"`
	Runs      int      `json:"runs"`
	SMIScale  float64  `json:"smi_scale,omitempty"`
	Artifacts []string `json:"artifacts"`
	Checks    []Check  `json:"checks"`
	Passed    int      `json:"passed"`
	Failed    int      `json:"failed"`
	// FastPath, when present, is the analytic fast-path dispatcher's
	// accounting for the run — the audit trail of which cells were
	// served without simulation and why the rest declined. Absent when
	// the run dispatched with -fastpath off.
	FastPath *obs.FastPathStats `json:"fastpath,omitempty"`
}

func (r *Report) add(c Check) {
	r.Checks = append(r.Checks, c)
	if c.Pass {
		r.Passed++
	} else {
		r.Failed++
	}
}

// Ok reports whether the run judged at least one gate and failed none.
func (r *Report) Ok() bool { return r.Failed == 0 && len(r.Checks) > 0 }

// JSON serializes the report.
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseReport decodes a serialized report.
func ParseReport(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("fidelity: parse report: %w", err)
	}
	return r, nil
}

// Render prints the human diff table: every check grouped by artifact,
// failures expanded with their detail lines at the end.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fidelity validation (%s tier, seeds %v, %d runs/cell): %d checks, %d failed\n\n",
		r.Tier, r.Seeds, r.Runs, len(r.Checks), r.Failed)
	tab := metrics.NewTable("artifact", "check", "kind", "got", "want", "tolerance", "status")
	for _, c := range r.Checks {
		status := "ok"
		if !c.Pass {
			status = "FAIL"
		}
		tab.AddRow(c.Artifact, c.Name, c.Kind, c.Got, c.Want, c.Tol, status)
	}
	b.WriteString(tab.String())
	if f := r.FastPath; f != nil {
		fmt.Fprintf(&b, "\nFast path (%s): %d/%d cells served (%.0f%% hit rate), %d regions (%d certified, %d rejected), %d certification sims\n",
			f.Mode, f.Hits, f.Hits+f.Misses, f.HitRate()*100, f.Regions, f.Certified, f.Rejected, f.Probes+f.Shadows)
	}
	if r.Failed > 0 {
		b.WriteString("\nFailures:\n")
		for _, c := range r.Checks {
			if c.Pass {
				continue
			}
			fmt.Fprintf(&b, "  %s / %s: got %.6g, want %.6g (%s)", c.Artifact, c.Name, c.Got, c.Want, c.Tol)
			if c.Detail != "" {
				fmt.Fprintf(&b, " — %s", c.Detail)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
