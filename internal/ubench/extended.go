package ubench

import (
	"fmt"

	"smistudy/internal/kernel"
	"smistudy/internal/sim"
)

// The rest of UnixBench's default index suite, beyond the five tests the
// paper selects: the three File Copy sizes, Process Creation, Execl
// Throughput and the two Shell Scripts runs. With these the Run harness
// can produce a full-suite index, not just the paper's subset.

// Baselines are the classic SPARCstation 20-61 values from UnixBench's
// own table.
const (
	fcopy1kBase  = 3960.0 // KBps, 1024-byte buffers, 2000 maxblocks
	fcopy256Base = 1655.0 // KBps, 256-byte buffers, 500 maxblocks
	fcopy4kBase  = 5800.0 // KBps, 4096-byte buffers, 8000 maxblocks
	procBase     = 126.0  // forks per second
	execlBase    = 43.0   // execs per second
	shellBase    = 42.4   // loops per minute (1 concurrent)
	shell8Base   = 6.0    // loops per minute (8 concurrent)
	forkOps      = 250e3  // cycles to fork a process
	execOps      = 700e3  // cycles to exec a binary
	shellScript  = 4e6    // cycles of utilities per script loop
)

// FileCopy measures copying through the filesystem with the given buffer
// size, like UnixBench's fstime/fsbuffer/fsdisk trio.
func FileCopy(bufBytes int, baseline float64) *Benchmark {
	b := &Benchmark{
		Name:     fmt.Sprintf("File Copy %d bufsize", bufBytes),
		Baseline: baseline,
		Unit:     "KBps",
	}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, osProfile(), copies, dur, done, func(t *kernel.Task, deadline sim.Time) float64 {
			fs := k.NewFS(kernel.DefaultFSParams())
			src := fs.Create(t, t.Name()+"-src")
			// Seed the source file (outside the timed semantics the
			// same way UnixBench pre-creates its file).
			src.Write(t, 64*bufBytes)
			dst := fs.Create(t, t.Name()+"-dst")
			kb := 0.0
			par := k.Params()
			// Batched: one read+write syscall pair per buffer, charged
			// in blocks with a real fs round per block.
			blockBufs := 64
			perBuf := 2*par.SyscallOps + 2*float64(bufBytes)*par.CopyOpsPerByte
			for t.Gettime() < deadline {
				t.Compute(float64(blockBufs-1) * perBuf)
				src.Rewind()
				if src.Read(t, bufBytes) != bufBytes {
					panic("short read")
				}
				dst.Write(t, bufBytes)
				kb += float64(blockBufs*bufBytes) / 1024
			}
			return kb
		})
	}
	return b
}

// ProcessCreation measures fork+wait throughput.
func ProcessCreation() *Benchmark {
	b := &Benchmark{Name: "Process Creation", Baseline: procBase, Unit: "lps"}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, osProfile(), copies, dur, done, func(t *kernel.Task, deadline sim.Time) float64 {
			loops := 0.0
			batch := batchOps / forkOps
			if batch < 1 {
				batch = 1
			}
			for t.Gettime() < deadline {
				// A batch of forks charged as compute, plus one real
				// spawn+join to keep the scheduler honest.
				t.Compute((batch - 1) * forkOps)
				child := k.Spawn(t.Name()+"-child", osProfile(), func(ct *kernel.Task) {})
				t.Join(child)
				loops += batch
			}
			return loops
		})
	}
	return b
}

// ExeclThroughput measures exec chain throughput.
func ExeclThroughput() *Benchmark {
	b := &Benchmark{Name: "Execl Throughput", Baseline: execlBase, Unit: "lps"}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, osProfile(), copies, dur, done, func(t *kernel.Task, deadline sim.Time) float64 {
			loops := 0.0
			batch := batchOps / execOps
			if batch < 1 {
				batch = 1
			}
			for t.Gettime() < deadline {
				t.Compute(batch * execOps)
				loops += batch
			}
			return loops
		})
	}
	return b
}

// ShellScripts measures running a shell script that exercises several
// utilities, with `concurrent` copies per loop. Rates are loops per
// minute, as UnixBench reports them.
func ShellScripts(concurrent int, baseline float64) *Benchmark {
	b := &Benchmark{
		Name:     fmt.Sprintf("Shell Scripts (%d concurrent)", concurrent),
		Baseline: baseline,
		Unit:     "lpm",
	}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, osProfile(), copies, dur, func(r float64) { done(r * 60) },
			func(t *kernel.Task, deadline sim.Time) float64 {
				loops := 0.0
				for t.Gettime() < deadline {
					// Spawn `concurrent` script executions and reap
					// them: forks + execs + utility work.
					kids := make([]*kernel.Task, concurrent)
					for i := range kids {
						kids[i] = k.Spawn(t.Name()+"-sh", osProfile(), func(ct *kernel.Task) {
							ct.Compute(forkOps + execOps + shellScript)
						})
					}
					for _, c := range kids {
						t.Join(c)
					}
					loops++
				}
				return loops
			})
	}
	return b
}

// FullSuite is UnixBench's complete default index run: the paper's five
// tests plus file copies, process creation, execl and shell scripts.
func FullSuite() []*Benchmark {
	return append(Selected(),
		FileCopy(1024, fcopy1kBase),
		FileCopy(256, fcopy256Base),
		FileCopy(4096, fcopy4kBase),
		ProcessCreation(),
		ExeclThroughput(),
		ShellScripts(1, shellBase),
		ShellScripts(8, shell8Base),
	)
}
