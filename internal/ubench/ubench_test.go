package ubench

import (
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func runSuite(t *testing.T, cpus int, smi smm.DriverConfig, seed int64) Result {
	t.Helper()
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.R410(smi))
	if err := cl.Nodes[0].Kernel.OnlineCPUs(cpus); err != nil {
		t.Fatal(err)
	}
	cl.StartSMI()
	cfg := DefaultConfig()
	cfg.Duration = 1 * sim.Second // keep tests fast
	return Run(cl, cfg)
}

func TestSuiteRunsAllTests(t *testing.T) {
	res := runSuite(t, 4, smm.DriverConfig{}, 1)
	if len(res.Tests) != 5 {
		t.Fatalf("ran %d tests, want 5", len(res.Tests))
	}
	names := map[string]bool{}
	for _, ts := range res.Tests {
		names[ts.Name] = true
		if ts.SingleRate <= 0 || ts.MultiRate <= 0 {
			t.Errorf("%s has non-positive rates: %+v", ts.Name, ts)
		}
		if ts.SingleIndex <= 0 || ts.MultiIndex <= 0 {
			t.Errorf("%s has non-positive indices", ts.Name)
		}
		if ts.MultiCopies != 4 {
			t.Errorf("%s copies = %d, want 4", ts.Name, ts.MultiCopies)
		}
	}
	for _, want := range []string{"Dhrystone 2", "Double-Precision Whetstone", "Pipe Throughput", "Pipe-based Context Switching", "System Call Overhead"} {
		if !names[want] {
			t.Errorf("missing test %q", want)
		}
	}
	if res.Score <= 0 {
		t.Fatalf("score = %v", res.Score)
	}
}

func TestMultiCopyScalesOnMultipleCPUs(t *testing.T) {
	res := runSuite(t, 4, smm.DriverConfig{}, 1)
	for _, ts := range res.Tests {
		if ts.Name == "Pipe-based Context Switching" {
			continue // serial by nature
		}
		if ts.MultiRate < 2*ts.SingleRate {
			t.Errorf("%s multi rate %.0f not ≫ single %.0f on 4 CPUs", ts.Name, ts.MultiRate, ts.SingleRate)
		}
	}
}

func TestScoreGrowsWithCPUs(t *testing.T) {
	prev := 0.0
	for _, cpus := range []int{1, 2, 4} {
		s := runSuite(t, cpus, smm.DriverConfig{}, 1).Score
		if s <= prev {
			t.Fatalf("score did not grow with CPUs: %d CPUs → %.1f (prev %.1f)", cpus, s, prev)
		}
		prev = s
	}
}

func TestHTTGainsScore(t *testing.T) {
	four := runSuite(t, 4, smm.DriverConfig{}, 1).Score
	eight := runSuite(t, 8, smm.DriverConfig{}, 1).Score
	if eight <= four {
		t.Fatalf("UnixBench should gain from HTT: 4 CPUs %.1f vs 8 CPUs %.1f", four, eight)
	}
}

func TestLongSMIsLowerScore(t *testing.T) {
	quiet := runSuite(t, 4, smm.DriverConfig{}, 1).Score
	noisy := runSuite(t, 4, smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 300, PhaseJitter: true}, 1).Score
	loss := 1 - noisy/quiet
	// ~105/300 ≈ 35% duty cycle.
	if loss < 0.2 {
		t.Fatalf("long SMIs at 300ms lowered score only %.0f%%", loss*100)
	}
}

func TestShortSMIsBarelyMatter(t *testing.T) {
	quiet := runSuite(t, 4, smm.DriverConfig{}, 1).Score
	short := runSuite(t, 4, smm.DriverConfig{Level: smm.SMMShort, PeriodJiffies: 100, PhaseJitter: true}, 1).Score
	loss := 1 - short/quiet
	if loss > 0.05 {
		t.Fatalf("short SMIs lowered score %.1f%%, paper found no noticeable effect", loss*100)
	}
}

func TestRareSMIsBarelyMatter(t *testing.T) {
	quiet := runSuite(t, 4, smm.DriverConfig{}, 1).Score
	rare := runSuite(t, 4, smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 1600, PhaseJitter: true}, 1).Score
	loss := 1 - rare/quiet
	if loss > 0.15 {
		t.Fatalf("1600ms-interval long SMIs lowered score %.0f%%", loss*100)
	}
}

func TestCustomTestListAndCopies(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{}))
	cfg := Config{Duration: 500 * sim.Millisecond, Copies: 2, Tests: []*Benchmark{Dhrystone()}}
	res := Run(cl, cfg)
	if len(res.Tests) != 1 || res.Tests[0].MultiCopies != 2 {
		t.Fatalf("custom config not honored: %+v", res)
	}
}

func TestDeterministic(t *testing.T) {
	a := runSuite(t, 4, smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 600, PhaseJitter: true}, 9)
	b := runSuite(t, 4, smm.DriverConfig{Level: smm.SMMLong, PeriodJiffies: 600, PhaseJitter: true}, 9)
	if a.Score != b.Score {
		t.Fatalf("same seed, different scores: %v vs %v", a.Score, b.Score)
	}
}

func TestFullSuite(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{}))
	cfg := Config{Duration: 400 * sim.Millisecond, Tests: FullSuite()}
	res := Run(cl, cfg)
	if len(res.Tests) != 12 {
		t.Fatalf("full suite ran %d tests, want 12", len(res.Tests))
	}
	for _, ts := range res.Tests {
		if ts.SingleRate <= 0 || ts.MultiRate <= 0 {
			t.Errorf("%s has non-positive rate: %+v", ts.Name, ts)
		}
	}
	if res.Score <= 0 {
		t.Fatal("full-suite score non-positive")
	}
}

func TestFileCopyScalesWithBufferSize(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{}))
	cfg := Config{
		Duration: 400 * sim.Millisecond,
		Copies:   1,
		Tests:    []*Benchmark{FileCopy(256, fcopy256Base), FileCopy(4096, fcopy4kBase)},
	}
	res := Run(cl, cfg)
	small, big := res.Tests[0].SingleRate, res.Tests[1].SingleRate
	if big <= small {
		t.Fatalf("4096-byte copies (%.0f KBps) not faster than 256-byte (%.0f KBps)", big, small)
	}
}

func TestShellScriptsConcurrency(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{}))
	cfg := Config{
		Duration: 400 * sim.Millisecond,
		Copies:   1,
		Tests:    []*Benchmark{ShellScripts(1, shellBase), ShellScripts(8, shell8Base)},
	}
	res := Run(cl, cfg)
	one, eight := res.Tests[0].SingleRate, res.Tests[1].SingleRate
	if eight >= one {
		t.Fatalf("8-concurrent loops (%.1f lpm) should be slower than 1-concurrent (%.1f lpm)", eight, one)
	}
}

func TestProcessCreationSlowerThanSyscalls(t *testing.T) {
	e := sim.New(1)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{}))
	cfg := Config{
		Duration: 400 * sim.Millisecond,
		Copies:   1,
		Tests:    []*Benchmark{ProcessCreation(), SyscallOverhead()},
	}
	res := Run(cl, cfg)
	if res.Tests[0].SingleRate >= res.Tests[1].SingleRate {
		t.Fatal("forks should be far slower than null syscalls")
	}
}
