// Package ubench models the UnixBench micro-benchmarks the paper selects
// — Dhrystone, Whetstone, Pipe Throughput, Pipe-based Context Switching
// and System Call Overhead — and scores them with the real UnixBench
// algorithm: each test's rate is divided by the classic SPARCstation
// 20-61 baseline and multiplied by 10, and the run's index is the
// geometric mean of the per-test indices. Following UnixBench's default
// configuration, every test runs twice: once with a single copy and once
// with one copy per online CPU.
//
// Hot loops are batched: the cost of one loop iteration is computed from
// the kernel's cost model and charged in multi-millisecond compute
// batches, with one real pipe round trip per batch to keep the kernel
// machinery exercised. Under the simulator's fluid CPU model this is
// timing-equivalent to executing every iteration and keeps event counts
// tractable.
package ubench

import (
	"fmt"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/metrics"
	"smistudy/internal/sim"
)

// Benchmark describes one UnixBench test.
type Benchmark struct {
	Name     string
	Baseline float64 // classic UnixBench baseline rate (units/sec)
	Unit     string
	run      func(k *kernel.Kernel, copies int, dur sim.Time, done func(rate float64))
}

// Config controls a run.
type Config struct {
	// Duration per test run (UnixBench uses 10 s; shorter keeps
	// simulations cheap and is long enough to integrate SMI noise).
	Duration sim.Time
	// Copies for the multi-copy pass; 0 means one per online CPU.
	Copies int
	// Tests to run; nil means Selected (the paper's subset).
	Tests []*Benchmark
}

// DefaultConfig matches the paper's usage with a 4-second window.
func DefaultConfig() Config { return Config{Duration: 4 * sim.Second} }

// TestScore is one benchmark's outcome.
type TestScore struct {
	Name        string
	Unit        string
	SingleRate  float64
	MultiRate   float64
	MultiCopies int
	SingleIndex float64
	MultiIndex  float64
}

// Result is a whole UnixBench iteration.
type Result struct {
	Tests []TestScore
	// Score is the run's total index: the geometric mean of all single-
	// and multi-copy indices, like UnixBench's "System Benchmarks Index
	// Score".
	Score float64
}

// Workload constants.
const (
	dhryOpsPerLoop = 320 // one Dhrystone loop: string ops, branches
	whetCPI        = 3.0 // FP latency chains
	pipeMsgBytes   = 512 // pipe throughput block size
	ctxTokenBytes  = 4   // context-switch test passes an int
	batchOps       = 2e6 // target compute ops per accounting batch
)

// Selected returns the paper's benchmark subset.
func Selected() []*Benchmark {
	return []*Benchmark{
		Dhrystone(),
		Whetstone(),
		PipeThroughput(),
		PipeContextSwitch(),
		SyscallOverhead(),
	}
}

func osProfile() cpu.Profile { return cpu.Profile{CPI: 1, MissRate: 0.0005} }

// Dhrystone performs various string manipulations (integer/branch code;
// latency gaps let HTT help).
func Dhrystone() *Benchmark {
	b := &Benchmark{Name: "Dhrystone 2", Baseline: 116700, Unit: "lps"}
	prof := cpu.Profile{CPI: 1.45, MissRate: 0.0004, MissRateShared: 0.0006}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, prof, copies, dur, done, func(t *kernel.Task, deadline sim.Time) float64 {
			loops := 0.0
			batch := batchOps / dhryOpsPerLoop
			for t.Gettime() < deadline {
				t.Compute(batch * dhryOpsPerLoop)
				loops += batch
			}
			return loops
		})
	}
	return b
}

// Whetstone measures floating-point performance via mathematical
// functions (sin, cos, sqrt — long dependency chains). Rates are MWIPS.
func Whetstone() *Benchmark {
	b := &Benchmark{Name: "Double-Precision Whetstone", Baseline: 55.0, Unit: "MWIPS"}
	prof := cpu.Profile{CPI: whetCPI, MissRate: 0.0002, MissRateShared: 0.0003}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, prof, copies, dur, func(r float64) { done(r / 1e6) },
			func(t *kernel.Task, deadline sim.Time) float64 {
				wis := 0.0
				for t.Gettime() < deadline {
					t.Compute(batchOps)
					wis += batchOps
				}
				return wis
			})
	}
	return b
}

// PipeThroughput measures writing 512 bytes to a pipe and reading them
// back.
func PipeThroughput() *Benchmark {
	b := &Benchmark{Name: "Pipe Throughput", Baseline: 12440, Unit: "lps"}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, osProfile(), copies, dur, done, func(t *kernel.Task, deadline sim.Time) float64 {
			p := k.NewPipe(2 * pipeMsgBytes)
			par := k.Params()
			// One loop: write(512)+read(512) = 2 syscalls + 2 copies.
			loopOps := 2*par.SyscallOps + 2*pipeMsgBytes*par.CopyOpsPerByte
			batch := batchOps / loopOps
			loops := 0.0
			for t.Gettime() < deadline {
				// Charge a batch, then do one real round trip.
				t.Compute((batch - 1) * loopOps)
				if _, err := p.Write(t, pipeMsgBytes); err != nil {
					panic(err)
				}
				if _, err := p.Read(t, pipeMsgBytes); err != nil {
					panic(err)
				}
				loops += batch
			}
			return loops
		})
	}
	return b
}

// PipeContextSwitch measures two processes exchanging an increasing
// integer through a pair of pipes. The exchange is inherently serial —
// each side runs only while the other waits — so a batch charges both
// sides' costs on the driving task and performs one real round trip with
// the partner per batch.
func PipeContextSwitch() *Benchmark {
	b := &Benchmark{Name: "Pipe-based Context Switching", Baseline: 4000, Unit: "lps"}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, osProfile(), copies, dur, done, func(t *kernel.Task, deadline sim.Time) float64 {
			ping := k.NewPipe(64)
			pong := k.NewPipe(64)
			par := k.Params()
			stop := false
			partner := k.Spawn(t.Name()+"-partner", osProfile(), func(pt *kernel.Task) {
				for {
					if _, err := ping.Read(pt, ctxTokenBytes); err != nil {
						panic(err)
					}
					if stop {
						return
					}
					if _, err := pong.Write(pt, ctxTokenBytes); err != nil {
						panic(err)
					}
				}
			})
			// One round, per side: write + read syscalls, a wakeup
			// context switch, two token copies.
			sideOps := 2*par.SyscallOps + par.CtxSwitchOps + 2*ctxTokenBytes*par.CopyOpsPerByte
			roundOps := 2 * sideOps
			batch := batchOps / roundOps
			loops := 0.0
			for t.Gettime() < deadline {
				t.Compute((batch - 1) * roundOps)
				if _, err := ping.Write(t, ctxTokenBytes); err != nil {
					panic(err)
				}
				if _, err := pong.Read(t, ctxTokenBytes); err != nil {
					panic(err)
				}
				loops += batch
			}
			stop = true
			if _, err := ping.Write(t, ctxTokenBytes); err != nil {
				panic(err)
			}
			t.Join(partner)
			return loops
		})
	}
	return b
}

// SyscallOverhead measures how quickly a process can enter and exit
// system calls (getpid-style null syscalls).
func SyscallOverhead() *Benchmark {
	b := &Benchmark{Name: "System Call Overhead", Baseline: 15000, Unit: "lps"}
	b.run = func(k *kernel.Kernel, copies int, dur sim.Time, done func(float64)) {
		runCopies(k, osProfile(), copies, dur, done, func(t *kernel.Task, deadline sim.Time) float64 {
			loops := 0.0
			batch := batchOps / k.Params().SyscallOps
			for t.Gettime() < deadline {
				t.Compute(batch * k.Params().SyscallOps)
				loops += batch
			}
			return loops
		})
	}
	return b
}

// runCopies spawns `copies` identical workers and reports the summed
// rate over the window (units per second of simulated wall time).
func runCopies(k *kernel.Kernel, prof cpu.Profile, copies int, dur sim.Time, done func(float64), body func(t *kernel.Task, deadline sim.Time) float64) {
	total := 0.0
	remaining := copies
	started := k.Clock().Monotonic()
	for i := 0; i < copies; i++ {
		k.Spawn(fmt.Sprintf("ub-copy%d", i), prof, func(t *kernel.Task) {
			total += body(t, started+dur)
			remaining--
			if remaining == 0 {
				elapsed := t.Gettime() - started
				done(total / elapsed.Seconds())
			}
		})
	}
}

// Run executes the benchmark suite on the first node of cl, driving the
// engine to completion of the suite (the engine is then stopped). SMI
// drivers must be armed by the caller beforehand if desired.
func Run(cl *cluster.Cluster, cfg Config) Result {
	node := cl.Nodes[0]
	k := node.Kernel
	if cfg.Duration <= 0 {
		cfg.Duration = 4 * sim.Second
	}
	tests := cfg.Tests
	if tests == nil {
		tests = Selected()
	}
	multiCopies := cfg.Copies
	if multiCopies <= 0 {
		multiCopies = node.CPU.NumOnline()
	}

	var res Result
	controllerDone := false
	cl.Eng.Go("unixbench", func(p *sim.Proc) {
		for _, b := range tests {
			score := TestScore{Name: b.Name, Unit: b.Unit, MultiCopies: multiCopies}
			for pi, pass := range []int{1, multiCopies} {
				rate := 0.0
				wake, wait := p.Wait()
				b.run(k, pass, cfg.Duration, func(r float64) { rate = r; wake(nil) })
				wait()
				if pi == 0 {
					score.SingleRate = rate
					score.SingleIndex = rate / b.Baseline * 10
				} else {
					score.MultiRate = rate
					score.MultiIndex = rate / b.Baseline * 10
				}
			}
			res.Tests = append(res.Tests, score)
		}
		controllerDone = true
		cl.Eng.Stop()
	})
	cl.Eng.Run()
	if !controllerDone {
		panic("ubench: suite never finished")
	}

	var indices []float64
	for _, ts := range res.Tests {
		indices = append(indices, ts.SingleIndex, ts.MultiIndex)
	}
	res.Score = metrics.GeoMean(indices)
	return res
}
