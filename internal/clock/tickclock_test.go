package clock

import (
	"testing"

	"smistudy/internal/cpu"
	"smistudy/internal/sim"
)

func tickSetup(t *testing.T) (*sim.Engine, *cpu.Model, *TickClock) {
	t.Helper()
	e := sim.New(1)
	m := cpu.MustNew(e, cpu.Params{PhysCores: 2, BaseHz: 1e9, SMTEfficiency: 1})
	n := New(e, 1e9, sim.Millisecond)
	return e, m, n.NewTickClock(m)
}

func TestTickClockTracksQuietTime(t *testing.T) {
	e, _, tc := tickSetup(t)
	e.At(5*sim.Second, func() {
		if tc.Time() != 5*sim.Second {
			t.Errorf("tick time = %v, want 5s", tc.Time())
		}
		if tc.Drift() != 0 || tc.DriftPPM() != 0 {
			t.Error("drift on a quiet machine")
		}
		if tc.Jiffies() != 5000 {
			t.Errorf("jiffies = %d", tc.Jiffies())
		}
	})
	e.Run()
}

func TestTickClockLosesSMMTime(t *testing.T) {
	e, m, tc := tickSetup(t)
	e.At(1*sim.Second, m.Stall)
	e.At(1*sim.Second+200*sim.Millisecond, m.Unstall)
	e.At(2*sim.Second, func() {
		if got := tc.Drift(); got != 200*sim.Millisecond {
			t.Errorf("drift = %v, want 200ms", got)
		}
		if got := tc.Time(); got != 2*sim.Second-200*sim.Millisecond {
			t.Errorf("tick time = %v, want 1.8s", got)
		}
		// 200ms over 2s = 100,000 ppm.
		if ppm := tc.DriftPPM(); ppm < 99_000 || ppm > 101_000 {
			t.Errorf("drift ppm = %v, want ≈100000", ppm)
		}
	})
	e.Run()
}

func TestDriftPPMAtBoot(t *testing.T) {
	_, _, tc := tickSetup(t)
	if tc.DriftPPM() != 0 {
		t.Fatal("drift ppm at t=0 should be 0")
	}
}
