package clock

import "smistudy/internal/sim"

// StallSource reports cumulative all-core stall (SMM residency) —
// cpu.Model satisfies it.
type StallSource interface {
	// Sync brings counters up to the current instant.
	Sync()
	// TotalStallTime is cumulative all-core stall since boot.
	TotalStallTime() sim.Time
}

// TickClock is a tick-counted wall clock, as kept by kernels whose
// timekeeping advances on timer interrupts (the CentOS-5-era kernels on
// the paper's cluster). Timer interrupts cannot fire in System
// Management Mode, so every SMI silently steals ticks: the tick clock
// falls behind real time by exactly the SMM residency. This is the
// "time scaling discrepancy" the prior study observed — NTP fights it,
// interval measurements shrink, and timestamps across nodes diverge.
type TickClock struct {
	node *Node
	src  StallSource
}

// NewTickClock builds a tick clock over the node's jiffy timer, losing
// ticks whenever src reports stall.
func (n *Node) NewTickClock(src StallSource) *TickClock {
	return &TickClock{node: n, src: src}
}

// Time reads the tick-counted wall clock.
func (tc *TickClock) Time() sim.Time {
	tc.src.Sync()
	return tc.node.Monotonic() - tc.src.TotalStallTime()
}

// Jiffies reads the tick counter (whole jiffies of tick time).
func (tc *TickClock) Jiffies() uint64 {
	return uint64(tc.Time() / tc.node.jiffy)
}

// Drift reports how far the tick clock lags true time (equals SMM
// residency: the ticks lost).
func (tc *TickClock) Drift() sim.Time {
	tc.src.Sync()
	return tc.src.TotalStallTime()
}

// DriftPPM reports the drift as parts-per-million of elapsed true time
// — directly comparable to oscillator error budgets (NTP copes with
// ~500 ppm; one 105 ms SMI per second is ~105,000 ppm).
func (tc *TickClock) DriftPPM() float64 {
	now := tc.node.Monotonic()
	if now == 0 {
		return 0
	}
	return float64(tc.Drift()) / float64(now) * 1e6
}
