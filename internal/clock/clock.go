// Package clock provides the virtual time sources of a simulated node.
//
// Three clocks matter for SMI studies:
//
//   - The TSC keeps counting through System Management Mode. This is what
//     the Blackbox SMI driver uses to measure SMI latency, and what
//     hwlat-style detectors use to spot invisible gaps.
//   - CLOCK_MONOTONIC (wall time) also keeps advancing through SMM, which
//     is why SMM residency shows up as inflated application run time.
//   - Jiffies are the kernel's tick counter; on the paper's systems one
//     jiffy is one millisecond. The SMI driver's period is expressed in
//     jiffies.
package clock

import "smistudy/internal/sim"

// Node is the set of clocks on one simulated machine.
type Node struct {
	eng   *sim.Engine
	hz    float64  // TSC frequency, cycles/second
	jiffy sim.Time // duration of one jiffy
}

// New returns the clocks for a node whose TSC runs at hz cycles/second
// with the given jiffy length.
func New(eng *sim.Engine, hz float64, jiffy sim.Time) *Node {
	if hz <= 0 {
		panic("clock: non-positive TSC frequency")
	}
	if jiffy <= 0 {
		panic("clock: non-positive jiffy")
	}
	return &Node{eng: eng, hz: hz, jiffy: jiffy}
}

// TSC reads the time-stamp counter (cycles since boot). It never stops,
// not even in SMM.
func (n *Node) TSC() uint64 {
	return uint64(float64(n.eng.Now()) / float64(sim.Second) * n.hz)
}

// Monotonic reads CLOCK_MONOTONIC.
func (n *Node) Monotonic() sim.Time { return n.eng.Now() }

// Jiffies reads the kernel tick counter.
func (n *Node) Jiffies() uint64 { return uint64(n.eng.Now() / n.jiffy) }

// Jiffy reports the duration of one jiffy.
func (n *Node) Jiffy() sim.Time { return n.jiffy }

// Hz reports the TSC frequency.
func (n *Node) Hz() float64 { return n.hz }

// CyclesToTime converts a TSC cycle count to a duration.
func (n *Node) CyclesToTime(cycles uint64) sim.Time {
	return sim.Time(float64(cycles) / n.hz * float64(sim.Second))
}
