package clock

import (
	"testing"

	"smistudy/internal/sim"
)

func TestClocks(t *testing.T) {
	e := sim.New(1)
	c := New(e, 2.27e9, sim.Millisecond)
	e.At(1*sim.Second, func() {
		if got := c.TSC(); got != 2270000000 {
			t.Errorf("TSC at 1s = %d, want 2.27e9", got)
		}
		if c.Monotonic() != sim.Second {
			t.Errorf("Monotonic = %v", c.Monotonic())
		}
		if c.Jiffies() != 1000 {
			t.Errorf("Jiffies = %d, want 1000", c.Jiffies())
		}
	})
	e.Run()
	if c.Jiffy() != sim.Millisecond || c.Hz() != 2.27e9 {
		t.Error("accessors wrong")
	}
}

func TestCyclesToTime(t *testing.T) {
	e := sim.New(1)
	c := New(e, 1e9, sim.Millisecond)
	if got := c.CyclesToTime(1e6); got != sim.Millisecond {
		t.Errorf("CyclesToTime(1e6) = %v, want 1ms", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	e := sim.New(1)
	for _, f := range []func(){
		func() { New(e, 0, sim.Millisecond) },
		func() { New(e, 1e9, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid clock config did not panic")
				}
			}()
			f()
		}()
	}
}
