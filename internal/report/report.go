package report

import (
	"encoding/json"
	"fmt"
	"os"

	"smistudy/internal/durable"
	"smistudy/internal/obs"
)

// Inputs names the artifacts a report is built from. Every field is
// optional, but at least one must be set; each present artifact adds
// its section to the report.
type Inputs struct {
	TracePath    string // Chrome trace stream (-trace output)
	MetricsPath  string // metrics snapshot JSON (-metrics output)
	ManifestPath string // run manifest JSON (-manifest output)
	StoreDir     string // durable result store (-store directory)

	// FlameRuns caps how many runs get a flame rendering (default 4;
	// the cap and what it dropped are reported, never silent).
	FlameRuns int
	// Tol is the attribution invariant tolerance as a fraction of the
	// wall time (default 0.01 = 1%).
	Tol float64
	// Flame sizes the renderings.
	Flame FlameOptions
}

// TraceSummary carries the trace stream's accounting into the report.
type TraceSummary struct {
	Records    int64 `json:"records"`
	Spans      int   `json:"spans"`
	Runs       int   `json:"runs"`
	Truncated  bool  `json:"truncated,omitempty"`
	Unbalanced int   `json:"unbalanced,omitempty"`
}

// Report is the assembled document. Its JSON encoding is the machine
// surface (CI asserts on Violations); the HTML rendering embeds the
// same data plus the flame SVGs.
type Report struct {
	Tool     string        `json:"tool"`
	Manifest *obs.Manifest `json:"manifest,omitempty"`
	// Warnings lists trust caveats: lossy traces, torn streams,
	// record-count mismatches, skipped flame renderings. A warning means
	// "read the numbers knowing this", not "the report failed".
	Warnings []string      `json:"warnings,omitempty"`
	Trace    *TraceSummary `json:"trace,omitempty"`
	// Runs holds one attribution tree per traced run.
	Runs []RunAttribution `json:"runs,omitempty"`
	// Aggregate is the mean attribution tree across the traced runs.
	Aggregate *Node `json:"aggregate,omitempty"`
	// Violations collects every failed attribution invariant across all
	// runs. CI's JSON mode requires this to be empty.
	Violations []Violation `json:"violations"`
	// Flames holds the per-run renderings (SVG embedded in HTML only).
	Flames []FlameResult `json:"flames,omitempty"`
	// Metrics is the run's metrics snapshot, histograms included.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Similarity is the cross-cell analysis over the durable store.
	Similarity *Similarity `json:"similarity,omitempty"`

	flameRuns []int32 // run ids parallel to Flames, for HTML headers
}

// Build assembles a report from whichever artifacts are present.
func Build(in Inputs) (*Report, error) {
	if in.TracePath == "" && in.MetricsPath == "" && in.ManifestPath == "" && in.StoreDir == "" {
		return nil, fmt.Errorf("report: no inputs: need a trace, metrics, manifest or store")
	}
	if in.FlameRuns <= 0 {
		in.FlameRuns = 4
	}
	if in.Tol <= 0 {
		in.Tol = 0.01
	}
	r := &Report{Tool: "smireport " + obs.Version, Violations: []Violation{}}

	if in.ManifestPath != "" {
		data, err := os.ReadFile(in.ManifestPath)
		if err != nil {
			return nil, fmt.Errorf("report: manifest: %w", err)
		}
		var m obs.Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("report: manifest: %w", err)
		}
		r.Manifest = &m
		if m.Schema > obs.ManifestSchema {
			r.warn("manifest schema %d is newer than this tool (%d): fields may be missing from the report",
				m.Schema, obs.ManifestSchema)
		}
		if m.Obs.Lossy() {
			if m.Obs.TraceError != "" {
				r.warn("trace is lossy: the writer errored (%s) — attribution undercounts everything after the failure",
					m.Obs.TraceError)
			}
			if m.Obs.RingDropped > 0 {
				r.warn("ring sink dropped %d of %d events: the retained window is partial",
					m.Obs.RingDropped, m.Obs.RingTotal)
			}
		}
	}

	if in.TracePath != "" {
		f, err := os.Open(in.TracePath)
		if err != nil {
			return nil, fmt.Errorf("report: trace: %w", err)
		}
		tr, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("report: trace: %w", err)
		}
		runIDs := tr.RunIDs()
		r.Trace = &TraceSummary{
			Records: tr.Records, Spans: len(tr.Spans), Runs: len(runIDs),
			Truncated: tr.Truncated, Unbalanced: tr.Unbalanced,
		}
		if tr.Truncated {
			r.warn("trace stream is truncated (producer killed or write-errored mid-run): the tail is missing")
		}
		if tr.Unbalanced > 0 {
			r.warn("trace has %d unbalanced begin/end edges", tr.Unbalanced)
		}
		if r.Manifest != nil && r.Manifest.Obs != nil && r.Manifest.Obs.TraceEvents > 0 &&
			r.Manifest.Obs.TraceEvents != tr.Records {
			r.warn("manifest records %d trace events but the stream holds %d: trace and manifest are from different runs or the stream is damaged",
				r.Manifest.Obs.TraceEvents, tr.Records)
		}

		r.Runs = Attribute(tr)
		for _, ra := range r.Runs {
			r.Violations = append(r.Violations, ra.Tree.Check(in.Tol)...)
		}
		r.Aggregate = Aggregate(r.Runs)

		for i, run := range runIDs {
			if i >= in.FlameRuns {
				r.warn("flame renderings capped at %d runs: %d more traced runs not rendered (raise -flame-runs)",
					in.FlameRuns, len(runIDs)-in.FlameRuns)
				break
			}
			fl := RenderFlame(tr, run, in.Flame)
			if fl.Dropped > 0 {
				r.warn("run %d flame dropped %d spans to stay under the element budget", run, fl.Dropped)
			}
			r.Flames = append(r.Flames, fl)
			r.flameRuns = append(r.flameRuns, run)
		}
	}

	if in.MetricsPath != "" {
		data, err := os.ReadFile(in.MetricsPath)
		if err != nil {
			return nil, fmt.Errorf("report: metrics: %w", err)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("report: metrics: %w", err)
		}
		r.Metrics = &snap
	}

	if in.StoreDir != "" {
		if _, err := os.Stat(in.StoreDir); err != nil {
			return nil, fmt.Errorf("report: store: %w", err)
		}
		st, err := durable.Open(in.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("report: store: %w", err)
		}
		cells, err := LoadCells(st)
		st.Close()
		if err != nil {
			return nil, err
		}
		if len(cells) > 0 {
			r.Similarity = Analyze(cells)
		} else {
			r.warn("store %s holds no readable cells: similarity section omitted", in.StoreDir)
		}
	}

	return r, nil
}

func (r *Report) warn(format string, args ...interface{}) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// JSON renders the report deterministically (flame SVGs excluded; they
// are an HTML concern).
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return append(data, '\n'), nil
}
