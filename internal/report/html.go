package report

import (
	"fmt"
	"sort"
	"strings"

	"smistudy/internal/obs"
)

// HTML rendering: one self-contained document, no external assets, no
// scripts — inline CSS, inline SVG flames, plain tables. The document
// is meant to be archived next to the run artifacts and stay readable
// in ten years, so nothing in it depends on anything outside the file.

var catCSS = map[string]string{
	CatCompute:        "#2ca02c",
	CatSMMStolen:      "#d62728",
	"osjitter-stolen": "#e377c2",
	CatCommWait:       "#1f77b4",
	CatRetransmit:     "#ff7f0e",
	CatIdle:           "#c7c7c7",
	CatFastPath:       "#9467bd",
}

// catColor resolves a category's color. Unknown "<family>-stolen"
// categories (noise families landed after this table) share the SMM
// red's darker cousin so stolen time is always visually stolen.
func catColor(label string) string {
	if c, ok := catCSS[label]; ok {
		return c
	}
	if strings.HasSuffix(label, "-stolen") {
		return "#a83232"
	}
	return "#aaaaaa"
}

// HTML renders the report as a self-contained document.
func (r *Report) HTML() []byte {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>smireport</title><style>
body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 70em; color: #222; }
h1, h2, h3 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ddd; padding: 0.25em 0.6em; text-align: left; font-size: 0.9em; }
th { background: #f5f5f5; }
.warn { background: #fff3cd; border: 1px solid #ffe08a; padding: 0.5em 0.8em; margin: 0.3em 0; border-radius: 4px; }
.viol { background: #f8d7da; border: 1px solid #f1aeb5; padding: 0.5em 0.8em; margin: 0.3em 0; border-radius: 4px; }
.ok { background: #d1e7dd; border: 1px solid #a3cfbb; padding: 0.5em 0.8em; margin: 0.3em 0; border-radius: 4px; }
ul.tree { list-style: none; padding-left: 1.2em; }
ul.tree > li { margin: 0.1em 0; }
.bar { display: inline-block; height: 0.7em; vertical-align: baseline; border-radius: 2px; }
.mono { font-family: monospace; font-size: 0.9em; }
.dim { color: #777; }
svg { border: 1px solid #eee; margin: 0.5em 0; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>SMI study run report</h1>\n<p class=\"dim\">%s</p>\n", esc(r.Tool))

	if r.Manifest != nil {
		m := r.Manifest
		b.WriteString("<h2>Run</h2>\n<table>\n")
		row := func(k, v string) {
			if v != "" {
				fmt.Fprintf(&b, "<tr><th>%s</th><td class=\"mono\">%s</td></tr>\n", esc(k), esc(v))
			}
		}
		row("command", m.Command)
		row("obs version", m.Version)
		row("go", m.GoVersion)
		schema := m.Schema
		if schema == 0 {
			schema = 1
		}
		row("manifest schema", fmt.Sprintf("%d", schema))
		var flags []string
		for k := range m.Flags {
			flags = append(flags, k)
		}
		sort.Strings(flags)
		for _, k := range flags {
			row("-"+k, m.Flags[k])
		}
		if m.Obs != nil {
			row("trace events", fmt.Sprintf("%d", m.Obs.TraceEvents))
			if m.Obs.RingTotal > 0 {
				row("ring events", fmt.Sprintf("%d (%d dropped)", m.Obs.RingTotal, m.Obs.RingDropped))
			}
			row("trace error", m.Obs.TraceError)
		}
		b.WriteString("</table>\n")
	}

	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "<div class=\"warn\">⚠ %s</div>\n", esc(w))
	}
	if len(r.Violations) == 0 {
		b.WriteString("<div class=\"ok\">✓ all attribution invariants hold</div>\n")
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "<div class=\"viol\">✗ <span class=\"mono\">%s</span>: %s</div>\n",
			esc(v.Path), esc(v.Detail))
	}

	if r.Aggregate != nil {
		b.WriteString("<h2>Where the time went</h2>\n")
		b.WriteString("<p>Each CPU's wall time, decomposed exactly: " + legendHTML() + "</p>\n")
		writeTree(&b, r.Aggregate, r.Aggregate.Seconds)
		for _, ra := range r.Runs {
			fmt.Fprintf(&b, "<h3>run %d <span class=\"dim\">(%.4g s wall", ra.Run, ra.WallSeconds)
			if ra.FastPathHits > 0 {
				fmt.Fprintf(&b, ", %d fast-path hits", ra.FastPathHits)
			}
			b.WriteString(")</span></h3>\n")
			writeTree(&b, ra.Tree, ra.Tree.Seconds)
			if len(ra.Ranks) > 0 {
				b.WriteString("<table>\n<tr><th>rank</th><th>node</th><th>sends</th><th>recvs</th><th>send bytes</th><th>collective s</th></tr>\n")
				for _, rs := range ra.Ranks {
					fmt.Fprintf(&b, "<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.4g</td></tr>\n",
						rs.Rank, rs.Node, rs.Sends, rs.Recvs, rs.SendBytes, rs.CollSeconds)
				}
				b.WriteString("</table>\n")
			}
		}
	}

	if len(r.Flames) > 0 {
		b.WriteString("<h2>Timeline</h2>\n")
		for i, fl := range r.Flames {
			run := int32(i)
			if i < len(r.flameRuns) {
				run = r.flameRuns[i]
			}
			fmt.Fprintf(&b, "<h3>run %d <span class=\"dim\">(%d tracks, %d elements", run, fl.Tracks, fl.Elements)
			if fl.Dropped > 0 {
				fmt.Fprintf(&b, ", %d dropped", fl.Dropped)
			}
			if fl.Culled > 0 {
				fmt.Fprintf(&b, ", %d sub-pixel spans culled", fl.Culled)
			}
			b.WriteString(")</span></h3>\n")
			b.WriteString(fl.SVG)
		}
	}

	if r.Metrics != nil && len(r.Metrics.Histograms) > 0 {
		b.WriteString("<h2>Distributions</h2>\n")
		for _, h := range r.Metrics.Histograms {
			writeHistogram(&b, h)
		}
	}

	if r.Similarity != nil {
		writeSimilarity(&b, r.Similarity)
	}

	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

func legendHTML() string {
	var b strings.Builder
	for _, c := range []string{CatCompute, CatSMMStolen, "osjitter-stolen", CatCommWait, CatRetransmit, CatIdle, CatFastPath} {
		fmt.Fprintf(&b, `<span class="bar" style="width:0.8em;background:%s"></span> %s&nbsp; `, catColor(c), esc(c))
	}
	return b.String()
}

// writeTree renders an attribution tree as nested lists with
// proportional bars; category bars are scaled against the wall time so
// sibling categories visually sum to a full-width parent.
func writeTree(b *strings.Builder, n *Node, wall float64) {
	b.WriteString("<ul class=\"tree\">\n")
	var walk func(n *Node)
	walk = func(n *Node) {
		b.WriteString("<li>")
		if n.Kind == "category" {
			width := 0.0
			if wall > 0 {
				width = n.Seconds / wall * 240
			}
			fmt.Fprintf(b, `<span class="bar" style="width:%.1fpx;background:%s"></span> `,
				width, catColor(n.Label))
		}
		pct := ""
		if wall > 0 && n.Kind == "category" {
			pct = fmt.Sprintf(" <span class=\"dim\">(%.1f%%)</span>", n.Seconds/wall*100)
		}
		cnt := ""
		if n.Count > 0 {
			cnt = fmt.Sprintf(" <span class=\"dim\">×%d</span>", n.Count)
		}
		fmt.Fprintf(b, "%s <span class=\"mono\">%.4g s</span>%s%s", esc(n.Label), n.Seconds, pct, cnt)
		for _, a := range n.Anomalies {
			fmt.Fprintf(b, " <span class=\"viol\">%s</span>", esc(a))
		}
		if len(n.Children) > 0 {
			b.WriteString("<ul class=\"tree\">\n")
			for _, c := range n.Children {
				walk(c)
			}
			b.WriteString("</ul>\n")
		}
		b.WriteString("</li>\n")
	}
	walk(n)
	b.WriteString("</ul>\n")
}

// writeHistogram renders one fixed-bucket histogram as a table with
// inline count bars. The log2 bounds come from the registry as-is.
func writeHistogram(b *strings.Builder, h obs.HistogramSnap) {
	id := ""
	if h.ID != 0 {
		id = fmt.Sprintf(" <span class=\"dim\">#%d</span>", h.ID)
	}
	mean := 0.0
	if h.N > 0 {
		mean = h.Sum / float64(h.N)
	}
	fmt.Fprintf(b, "<h3 class=\"mono\">%s%s</h3>\n<p class=\"dim\">n=%d mean=%.4g max=%.4g</p>\n",
		esc(h.Name), id, h.N, mean, h.Max)
	var peak int64 = 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	b.WriteString("<table>\n<tr><th>bucket</th><th>count</th><th></th></tr>\n")
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		label := ""
		switch {
		case i < len(h.Bounds):
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			label = fmt.Sprintf("%.4g – %.4g", lo, h.Bounds[i])
		default:
			label = fmt.Sprintf("> %.4g", h.Bounds[len(h.Bounds)-1])
		}
		fmt.Fprintf(b, `<tr><td class="mono">%s</td><td>%d</td><td><span class="bar" style="width:%.0fpx;background:#1f77b4"></span></td></tr>`,
			esc(label), c, float64(c)/float64(peak)*160)
		b.WriteString("\n")
	}
	b.WriteString("</table>\n")
}

func writeSimilarity(b *strings.Builder, s *Similarity) {
	b.WriteString("<h2>Cross-run similarity</h2>\n")
	fmt.Fprintf(b, "<p>%d cells form <b>%d behavior cluster(s)</b> (merge threshold %.3g, features: <span class=\"mono\">%s</span>).</p>\n",
		len(s.Cells), s.Clusters, s.Threshold, esc(strings.Join(s.FeatureNames, ", ")))
	if len(s.Dimensions) > 0 {
		b.WriteString("<p>Which scenario dimensions explain the clusters (Rand index vs the clustering; 1 = fully explains, ~0.5 = noise):</p>\n")
		b.WriteString("<table>\n<tr><th>dimension</th><th>distinct values</th><th>relevance</th><th></th></tr>\n")
		for _, d := range s.Dimensions {
			fmt.Fprintf(b, `<tr><td class="mono">%s</td><td>%d</td><td>%.3f</td><td><span class="bar" style="width:%.0fpx;background:%s"></span></td></tr>`,
				esc(d.Name), d.Values, d.Relevance, d.Relevance*160, relColor(d.Relevance))
			b.WriteString("\n")
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("<table>\n<tr><th>cell</th><th>cluster</th></tr>\n")
	for i, c := range s.Cells {
		fmt.Fprintf(b, "<tr><td class=\"mono\">%s</td><td>%d</td></tr>\n", esc(c), s.Cluster[i])
	}
	b.WriteString("</table>\n")
}

func relColor(r float64) string {
	if r >= 0.8 {
		return "#2ca02c"
	}
	if r >= 0.6 {
		return "#ff7f0e"
	}
	return "#c7c7c7"
}
