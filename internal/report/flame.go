package report

import (
	"fmt"
	"sort"
	"strings"

	"smistudy/internal/obs"
)

// This file renders a trace run as a flame-style (icicle) SVG: one
// horizontal track per recovered timeline — cluster tracks first, then
// each node's CPU, rank, fabric, transport and SMM tracks — with spans
// as colored rectangles and instants as ticks on a shared time axis.
// The renderer is pure Go and emits self-contained SVG, so reports
// need no external assets or scripts.

// FlameOptions sizes a rendering. Zero values select the defaults.
type FlameOptions struct {
	Width       int // total pixel width, default 1000
	RowHeight   int // pixel height per track, default 14
	MaxElements int // SVG element budget, default 20000
}

func (o FlameOptions) withDefaults() FlameOptions {
	if o.Width <= 0 {
		o.Width = 1000
	}
	if o.RowHeight <= 0 {
		o.RowHeight = 14
	}
	if o.MaxElements <= 0 {
		o.MaxElements = 20000
	}
	return o
}

// FlameResult is a rendered run. Dropped and Culled make the renderer's
// bounds explicit: Dropped counts spans omitted because the element
// budget ran out (shortest first), Culled counts spans narrower than a
// hundredth of a pixel that could never be visible. Either being
// non-zero must be surfaced to the reader, never silently absorbed.
type FlameResult struct {
	SVG      string `json:"-"`
	Tracks   int    `json:"tracks"`
	Elements int    `json:"elements"`
	Dropped  int    `json:"dropped,omitempty"`
	Culled   int    `json:"culled,omitempty"`
}

// Category colors, keyed by the sink's "cat" field.
var catColors = map[string]string{
	"smm":   "#d62728",
	"sched": "#1f77b4",
	"mpi":   "#2ca02c",
	"net":   "#17becf",
	"fault": "#ff7f0e",
	"sweep": "#7f7f7f",
	"prof":  "#9467bd",
	"task":  "#8c564b",
	"noise": "#e377c2",
}

func colorOf(cat string) string {
	if c, ok := catColors[cat]; ok {
		return c
	}
	return "#aaaaaa"
}

const flameGutter = 170 // left label gutter in pixels

// RenderFlame renders one run of the trace as an icicle SVG.
func RenderFlame(tr *obs.Trace, run int32, opt FlameOptions) FlameResult {
	opt = opt.withDefaults()
	spans := tr.Select(run, obs.TrackUnknown)

	// Track rows in display order: cluster first, then nodes ascending,
	// tids ascending within a node.
	type rowKey struct {
		node int32
		tid  int32
	}
	rows := map[rowKey][]obs.Span{}
	var keys []rowKey
	var wallUS float64
	for _, s := range spans {
		k := rowKey{s.Node, s.Tid}
		if _, ok := rows[k]; !ok {
			keys = append(keys, k)
		}
		rows[k] = append(rows[k], s)
		if end := s.End().Seconds() * 1e6; end > wallUS {
			wallUS = end
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].tid < keys[j].tid
	})
	if wallUS <= 0 {
		wallUS = 1
	}

	res := FlameResult{Tracks: len(keys)}
	plot := float64(opt.Width - flameGutter)
	x := func(us float64) float64 { return flameGutter + us/wallUS*plot }

	// Spend the element budget on the longest spans first so the
	// rendering degrades from the bottom: what disappears under pressure
	// is what was invisible anyway.
	type elem struct {
		row  int
		s    obs.Span
		durU float64
	}
	var elems []elem
	for ri, k := range keys {
		for _, s := range rows[k] {
			elems = append(elems, elem{ri, s, s.Dur.Seconds() * 1e6})
		}
	}
	sort.SliceStable(elems, func(i, j int) bool { return elems[i].durU > elems[j].durU })
	if len(elems) > opt.MaxElements {
		res.Dropped = len(elems) - opt.MaxElements
		elems = elems[:opt.MaxElements]
	}

	height := len(keys)*opt.RowHeight + 24
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`,
		opt.Width, height)
	b.WriteString("\n")

	// Track labels and separators.
	for ri, k := range keys {
		y := ri * opt.RowHeight
		fmt.Fprintf(&b, `<text x="2" y="%d" fill="#333">%s</text>`,
			y+opt.RowHeight-3, esc(trackLabel(tr, run, k.node, k.tid)))
		b.WriteString("\n")
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`,
			flameGutter, y, opt.Width, y)
		b.WriteString("\n")
	}

	for _, e := range elems {
		y := e.row * opt.RowHeight
		startUS := e.s.Start.Seconds() * 1e6
		if e.s.Instant {
			px := x(startUS)
			fmt.Fprintf(&b, `<line x1="%.2f" y1="%d" x2="%.2f" y2="%d" stroke="%s" stroke-width="1"><title>%s @ %.3f ms</title></line>`,
				px, y+2, px, y+opt.RowHeight-2, colorOf(e.s.Cat), esc(e.s.Name), startUS/1000)
			b.WriteString("\n")
			res.Elements++
			continue
		}
		w := e.durU / wallUS * plot
		if w < 0.01 {
			res.Culled++
			continue
		}
		if w < 0.5 {
			w = 0.5
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" stroke="none"><title>%s: %.3f ms @ %.3f ms</title></rect>`,
			x(startUS), y+2, w, opt.RowHeight-4, colorOf(e.s.Cat), esc(e.s.Name), e.durU/1000, startUS/1000)
		b.WriteString("\n")
		res.Elements++
	}

	// Time axis.
	axisY := len(keys)*opt.RowHeight + 14
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		flameGutter, axisY-10, opt.Width, axisY-10)
	b.WriteString("\n")
	for i := 0; i <= 4; i++ {
		us := wallUS * float64(i) / 4
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" fill="#666">%.2f ms</text>`,
			x(us)-18, axisY, us/1000)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	res.SVG = b.String()
	return res
}

// trackLabel resolves a row's display name, preferring the sink's
// thread-name metadata and falling back to the layout's kind/index.
func trackLabel(tr *obs.Trace, run, node, tid int32) string {
	pid := obs.PidFor(run, node)
	if m := tr.ThreadNames[pid]; m != nil {
		if name, ok := m[tid]; ok && name != "" {
			if node < 0 {
				return "cluster/" + name
			}
			return fmt.Sprintf("n%d/%s", node, name)
		}
	}
	kind, idx := obs.TrackOf(node, tid)
	if node < 0 {
		return "cluster/" + kind.String()
	}
	if kind == obs.TrackCPU || kind == obs.TrackRank {
		return fmt.Sprintf("n%d/%s%d", node, kind, idx)
	}
	return fmt.Sprintf("n%d/%s", node, kind)
}

// esc escapes text for SVG/XML content.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
