package report

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smistudy/internal/durable"
	"smistudy/internal/obs"
	"smistudy/internal/scenario"
)

// runTracedCell executes a small traced BT cell — the paper's Table 1
// MPI configuration at class S — writing every artifact smireport
// consumes: trace, metrics, manifest and durable store.
func runTracedCell(t *testing.T, dir string) (spec scenario.Spec, residency float64, in Inputs) {
	t.Helper()
	spec = scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 4, RanksPerNode: 1},
		SMM:      scenario.SMMPlan{Level: "long"},
		Runs:     2, Seed: 11,
		Params: scenario.Params{Bench: "BT", Class: "S"},
	}
	in = Inputs{
		TracePath:    filepath.Join(dir, "trace.json"),
		MetricsPath:  filepath.Join(dir, "metrics.json"),
		ManifestPath: filepath.Join(dir, "manifest.json"),
		StoreDir:     filepath.Join(dir, "store"),
	}

	bus := obs.NewBus()
	f, err := os.Create(in.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewChromeSink(f)
	bus.Attach(sink)
	st, err := durable.Open(in.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	m, _, err := durable.RunSpec(context.Background(), spec,
		durable.Options{Workers: 1, Tracer: bus, Store: st})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if m.NAS == nil || !m.NAS.Verified {
		t.Fatalf("measurement = %+v, want verified NAS result", m)
	}
	residency = m.NAS.Residency.Seconds()
	if residency <= 0 {
		t.Fatal("no SMM residency recorded: the acceptance comparison would be vacuous")
	}

	snap, err := bus.MetricsSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in.MetricsPath, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	man := obs.Manifest{
		Schema: obs.ManifestSchema, Command: "report_test", Version: obs.Version,
		Flags: map[string]string{},
		Obs:   &obs.SinkStats{TraceEvents: sink.Events()},
	}
	if data, err := spec.JSON(); err == nil {
		man.Scenario = data
	}
	data, err := man.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in.ManifestPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return spec, residency, in
}

// TestReportEndToEnd is the tentpole acceptance test: a traced BT run's
// report must hold its attribution invariants, reproduce the runner's
// SMM overhead from the trace alone, and carry every section.
func TestReportEndToEnd(t *testing.T) {
	dir := t.TempDir()
	spec, residency, in := runTracedCell(t, dir)

	r, err := Build(in)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(r.Warnings) != 0 {
		t.Errorf("clean run produced warnings: %v", r.Warnings)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("attribution invariants violated: %+v", r.Violations)
	}
	if r.Trace == nil || r.Trace.Runs != spec.Runs {
		t.Fatalf("trace summary = %+v, want %d runs", r.Trace, spec.Runs)
	}

	// Acceptance: every CPU's categories sum to its run's wall time
	// within 1% (Check enforces this too; assert it directly).
	for _, ra := range r.Runs {
		var walk func(n *Node)
		walk = func(n *Node) {
			if n.Kind == "cpu" {
				var sum float64
				for _, c := range n.Children {
					sum += c.Seconds
				}
				if math.Abs(sum-ra.WallSeconds) > 0.01*ra.WallSeconds {
					t.Errorf("run %d %s: categories sum to %.6f s, wall is %.6f s",
						ra.Run, n.Label, sum, ra.WallSeconds)
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(ra.Tree)
	}

	// Acceptance: the SMM time the attribution recovers from the trace
	// matches the runner's reported mean per-node residency.
	smmSec, _ := r.Aggregate.CategoryTotal(CatSMMStolen)
	perNode := smmSec / float64(spec.Machine.Nodes)
	if math.Abs(perNode-residency) > 0.02*residency {
		t.Errorf("attributed SMM %.6f s/node vs runner residency %.6f s/node (>2%% apart)",
			perNode, residency)
	}

	// The metrics snapshot carries the log2 per-SMI residency histogram.
	var found bool
	for _, h := range r.Metrics.Histograms {
		if h.Name == "smm_residency_us" && h.N > 0 {
			found = true
			for i := 1; i < len(h.Bounds); i++ {
				if h.Bounds[i] != 2*h.Bounds[i-1] {
					t.Fatalf("smm_residency_us bounds not log2: %v", h.Bounds)
				}
			}
		}
	}
	if !found {
		t.Error("smm_residency_us histogram missing or empty")
	}

	// The store section analyzed both repetition cells.
	if r.Similarity == nil || len(r.Similarity.Cells) != 2 {
		t.Fatalf("similarity = %+v, want 2 cells", r.Similarity)
	}

	// The journal → report linkage: every journaled cell must carry the
	// spec dimensions PutSpec recorded at planning time (a silent spec
	// write failure degrades the whole dimension-relevance analysis).
	st, err := durable.Open(in.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cells, err := LoadCells(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Dims["machine.nodes"] != "4" || c.Dims["smm.level"] != "long" {
			t.Errorf("cell %s/r%d lost its spec dimensions: %v", c.Key, c.Run, c.Dims)
		}
	}

	// Both output surfaces render and carry every section.
	html := string(r.HTML())
	for _, want := range []string{"smm-stolen", "<svg", "Cross-run similarity",
		"Distributions", "all attribution invariants hold"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML lacks %q", want)
		}
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if _, ok := back["violations"]; !ok {
		t.Error("JSON lacks the violations field CI asserts on")
	}
}

func TestReportWarnsOnLossyArtifacts(t *testing.T) {
	dir := t.TempDir()

	// A manifest recording ring drops and a trace write error.
	man := obs.Manifest{
		Schema: obs.ManifestSchema, Command: "x", Flags: map[string]string{},
		Obs: &obs.SinkStats{TraceEvents: 10, TraceError: "disk full",
			RingTotal: 100, RingDropped: 25},
	}
	data, err := man.JSON()
	if err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(manPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Build(Inputs{ManifestPath: manPath})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Warnings, "\n")
	if !strings.Contains(joined, "disk full") || !strings.Contains(joined, "ring sink dropped 25") {
		t.Fatalf("lossy manifest warnings = %v", r.Warnings)
	}

	// A torn trace: a stream cut mid-record.
	tracePath := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(tracePath,
		[]byte(`{"traceEvents":[`+"\n"+`{"name":"cell","cat":"sweep","ph":"i","ts":0,"pid":0,"tid":1},`+"\n"+`{"name":"cel`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = Build(Inputs{TracePath: tracePath})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(r.Warnings, "\n"), "truncated") {
		t.Fatalf("torn trace warnings = %v", r.Warnings)
	}

	// Manifest/trace record-count mismatch.
	if err := os.WriteFile(tracePath,
		[]byte(`{"traceEvents":[`+"\n"+`{"name":"cell","cat":"sweep","ph":"i","ts":0,"pid":0,"tid":1}`+"\n"+`]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = Build(Inputs{TracePath: tracePath, ManifestPath: manPath})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(r.Warnings, "\n"), "different runs") {
		t.Fatalf("mismatch warnings = %v", r.Warnings)
	}
}

func TestBuildRejectsEmptyInputs(t *testing.T) {
	if _, err := Build(Inputs{}); err == nil {
		t.Fatal("no inputs accepted")
	}
}
