package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// syntheticTrace builds a one-run, one-node, one-CPU trace with known
// geometry:
//
//	wall                [0, 100ms]
//	on-CPU              [10, 60]          (run @10, preempt @60)
//	SMM residency       [30, 50]          (inside the busy window)
//	retransmission      @70               (inside the idle tail)
//
// giving the exact partition compute 30ms, smm-stolen 20ms,
// fault-retransmit 40ms (idle [60,100] is marked), comm-wait 10ms
// (idle [0,10] is not).
func syntheticTrace(t *testing.T) *obs.Trace {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	ms := sim.Millisecond
	for _, ev := range []obs.Event{
		{Time: 0, Type: obs.EvSweepCellStart, Node: -1, Track: -1},
		{Time: 1 * ms, Type: obs.EvTaskSpawn, Node: 0, Track: -1, A: 7, Name: "rank0"},
		{Time: 5 * ms, Type: obs.EvMPISend, Node: 0, Track: 0, A: 1, B: 2048},
		{Time: 10 * ms, Type: obs.EvSchedRun, Node: 0, Track: 0, A: 7},
		{Time: 50 * ms, Dur: 20 * ms, Type: obs.EvSMMExit, Node: 0, Track: -1},
		{Time: 60 * ms, Type: obs.EvSchedPreempt, Node: 0, Track: 0, A: 7},
		{Time: 70 * ms, Type: obs.EvMPIRetransmit, Node: 0, A: 1, B: 2048},
		{Time: 100 * ms, Dur: 100 * ms, Type: obs.EvSweepCellFinish, Node: -1, Track: -1},
	} {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func secsOf(t *testing.T, cpu *Node, cat string) float64 {
	t.Helper()
	for _, c := range cpu.Children {
		if c.Label == cat {
			return c.Seconds
		}
	}
	return 0
}

func TestAttributeExactPartition(t *testing.T) {
	tr := syntheticTrace(t)
	runs := Attribute(tr)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	ra := runs[0]
	if ra.WallSeconds != 0.1 {
		t.Fatalf("wall = %v, want 0.1", ra.WallSeconds)
	}
	cpu := ra.Tree.Find("node0", "cpu0 · rank0")
	if cpu == nil {
		t.Fatalf("cpu vertex missing; tree: %+v", ra.Tree.Children)
	}
	want := map[string]float64{
		CatCompute:    0.030,
		CatSMMStolen:  0.020,
		CatRetransmit: 0.040,
		CatCommWait:   0.010,
	}
	var sum float64
	for cat, w := range want {
		got := secsOf(t, cpu, cat)
		if math.Abs(got-w) > 1e-9 {
			t.Errorf("%s = %.6f s, want %.6f s", cat, got, w)
		}
		sum += got
	}
	if math.Abs(sum-ra.WallSeconds) > 1e-9 {
		t.Errorf("categories sum to %.6f s, wall is %.6f s", sum, ra.WallSeconds)
	}
	if got := secsOf(t, cpu, CatIdle); got != 0 {
		t.Errorf("MPI node charged %v s of plain idle, want comm-wait", got)
	}
	if v := ra.Tree.Check(0.01); len(v) != 0 {
		t.Errorf("synthetic tree violates invariants: %+v", v)
	}
	if len(ra.Ranks) != 1 || ra.Ranks[0].Sends != 1 || ra.Ranks[0].SendBytes != 2048 {
		t.Errorf("rank stats = %+v, want one rank with one 2048 B send", ra.Ranks)
	}
}

// TestAttributeSMMDuringIdle pins the double-counting rule: SMM time
// overlapping an idle window is charged to smm-stolen, not also to
// comm-wait.
func TestAttributeSMMDuringIdle(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	ms := sim.Millisecond
	for _, ev := range []obs.Event{
		{Time: 10 * ms, Type: obs.EvSchedRun, Node: 0, Track: 0, A: 1},
		{Time: 20 * ms, Type: obs.EvSchedPreempt, Node: 0, Track: 0, A: 1},
		// SMM [40, 70] lies entirely in the idle tail.
		{Time: 70 * ms, Dur: 30 * ms, Type: obs.EvSMMExit, Node: 0, Track: -1},
		{Time: 100 * ms, Dur: 100 * ms, Type: obs.EvSweepCellFinish, Node: -1, Track: -1},
	} {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ra := Attribute(tr)[0]
	cpu := ra.Tree.Find("node0", "cpu0")
	if cpu == nil {
		t.Fatalf("cpu vertex missing")
	}
	if got := secsOf(t, cpu, CatSMMStolen); math.Abs(got-0.030) > 1e-9 {
		t.Errorf("smm-stolen = %v, want 0.030 (idle-time SMM still stolen)", got)
	}
	// No rank track on this node → the plain wait is idle, and it
	// excludes the SMM window: 100 − 10 busy − 30 smm = 60 ms.
	if got := secsOf(t, cpu, CatIdle); math.Abs(got-0.060) > 1e-9 {
		t.Errorf("idle = %v, want 0.060", got)
	}
	if v := ra.Tree.Check(0.01); len(v) != 0 {
		t.Errorf("violations: %+v", v)
	}
}

func TestCheckCatchesBrokenTrees(t *testing.T) {
	// Category children that do not sum to the parent.
	bad := &Node{Label: "cpu0", Kind: "cpu", Seconds: 1.0, Children: []*Node{
		{Label: CatCompute, Kind: "category", Seconds: 0.4},
		{Label: CatCommWait, Kind: "category", Seconds: 0.3},
	}}
	if v := bad.Check(0.01); len(v) == 0 {
		t.Error("0.7 of 1.0 accounted and Check found nothing")
	}
	// Negative time.
	neg := &Node{Label: "x", Kind: "category", Seconds: -0.1}
	if v := neg.Check(0.01); len(v) == 0 {
		t.Error("negative seconds passed Check")
	}
	// Parallel child that does not cover its parent.
	par := &Node{Label: "run0", Kind: "run", Seconds: 1.0, Parallel: true, Children: []*Node{
		{Label: "node0", Kind: "node", Seconds: 0.5},
	}}
	if v := par.Check(0.01); len(v) == 0 {
		t.Error("parallel child covering half the parent passed Check")
	}
	// Recorded anomalies surface as violations.
	anom := &Node{Label: "cpu0", Kind: "cpu", Seconds: 1.0,
		Anomalies: []string{"3 unmatched preempt edges"}}
	if v := anom.Check(0.01); len(v) != 1 || !strings.Contains(v[0].Detail, "unmatched") {
		t.Errorf("anomaly not surfaced: %+v", v)
	}
	// Tolerance is honored: 0.5% off passes at 1%.
	close := &Node{Label: "cpu0", Kind: "cpu", Seconds: 1.0, Children: []*Node{
		{Label: CatCompute, Kind: "category", Seconds: 0.995},
	}}
	if v := close.Check(0.01); len(v) != 0 {
		t.Errorf("0.5%% residue failed a 1%% tolerance: %+v", v)
	}
}

func TestAggregateMeansRuns(t *testing.T) {
	mk := func(compute float64) RunAttribution {
		return RunAttribution{Run: 0, WallSeconds: 1, Tree: &Node{
			Label: "run0", Kind: "run", Seconds: 1, Parallel: true, Children: []*Node{
				{Label: "node0", Kind: "node", Seconds: 1, Parallel: true, Children: []*Node{
					{Label: "cpu0", Kind: "cpu", Seconds: 1, Children: []*Node{
						{Label: CatCompute, Kind: "category", Seconds: compute},
						{Label: CatCommWait, Kind: "category", Seconds: 1 - compute},
					}},
				}},
			},
		}}
	}
	agg := Aggregate([]RunAttribution{mk(0.2), mk(0.6)})
	got := agg.Find("node0", "cpu0", CatCompute)
	if got == nil || math.Abs(got.Seconds-0.4) > 1e-12 {
		t.Fatalf("aggregate compute = %+v, want 0.4", got)
	}
	if cat, wallTot := agg.CategoryTotal(CatCompute); math.Abs(cat-0.4) > 1e-12 || wallTot != 1 {
		t.Fatalf("CategoryTotal = (%v, %v), want (0.4, 1)", cat, wallTot)
	}
	if Aggregate(nil) != nil {
		t.Fatal("Aggregate(nil) != nil")
	}
}

func TestRenderFlame(t *testing.T) {
	tr := syntheticTrace(t)
	fl := RenderFlame(tr, 0, FlameOptions{})
	if fl.Tracks == 0 || fl.Elements == 0 {
		t.Fatalf("empty rendering: %+v", fl)
	}
	for _, want := range []string{"<svg", "n0/", "cluster/", "</svg>"} {
		if !strings.Contains(fl.SVG, want) {
			t.Errorf("SVG lacks %q", want)
		}
	}
	// The element budget drops spans and says so.
	tiny := RenderFlame(tr, 0, FlameOptions{MaxElements: 2})
	if tiny.Dropped == 0 {
		t.Error("2-element budget dropped nothing")
	}
	if tiny.Elements > 2 {
		t.Errorf("budget of 2 rendered %d elements", tiny.Elements)
	}
}
