package report

import (
	"fmt"
	"testing"
)

// figure2Cells builds a synthetic Figure 2 sweep: three SMI-interval
// settings × three seeds. Behavior depends strongly on the interval and
// only cosmetically on the seed, which is exactly the structure the
// analysis must recover.
func figure2Cells() []CellSample {
	base := map[int]float64{8: 2.2, 64: 1.4, 512: 1.0}
	var cells []CellSample
	for _, interval := range []int{8, 64, 512} {
		for seed := 1; seed <= 3; seed++ {
			secs := base[interval] + float64(seed)*0.004 // seed jitter ≪ interval effect
			cells = append(cells, CellSample{
				Key: fmt.Sprintf("key-i%d-s%d", interval, seed),
				Run: 0,
				Dims: map[string]string{
					"smm.interval_ms": fmt.Sprintf("%d", interval),
					"seed":            fmt.Sprintf("%d", seed),
				},
				Features: map[string]float64{
					"seconds": secs,
					"mops":    1000 / secs,
				},
			})
		}
	}
	return cells
}

// TestAnalyzeGroupsByInterval is the acceptance criterion: over a
// Figure 2-style sweep, cells cluster by SMI frequency and the interval
// dimension scores as causal while the seed scores as noise.
func TestAnalyzeGroupsByInterval(t *testing.T) {
	s := Analyze(figure2Cells())
	if s.Clusters != 3 {
		t.Fatalf("clusters = %d (assignment %v), want 3 interval groups", s.Clusters, s.Cluster)
	}
	// Cells 0–2, 3–5, 6–8 share an interval each; they must co-cluster.
	for g := 0; g < 3; g++ {
		for i := 1; i < 3; i++ {
			if s.Cluster[3*g+i] != s.Cluster[3*g] {
				t.Fatalf("interval group %d split: %v", g, s.Cluster)
			}
		}
	}
	rel := map[string]float64{}
	for _, d := range s.Dimensions {
		rel[d.Name] = d.Relevance
	}
	if rel["smm.interval_ms"] < 0.99 {
		t.Errorf("interval relevance = %v, want ≈1 (it drives behavior)", rel["smm.interval_ms"])
	}
	if rel["seed"] >= 0.8 {
		t.Errorf("seed relevance = %v, want < 0.8 (it is noise)", rel["seed"])
	}
	if rel["smm.interval_ms"] <= rel["seed"] {
		t.Errorf("interval (%v) not ranked above seed (%v)", rel["smm.interval_ms"], rel["seed"])
	}
	if len(s.Dimensions) > 0 && s.Dimensions[0].Name != "smm.interval_ms" {
		t.Errorf("dimensions not sorted by relevance: %+v", s.Dimensions)
	}
}

func TestAnalyzeDegenerate(t *testing.T) {
	if s := Analyze(nil); s.Clusters != 0 || len(s.Cluster) != 0 {
		t.Fatalf("empty analysis = %+v", s)
	}
	// Identical cells collapse to one cluster; constant dimensions are
	// dropped from the relevance table.
	cells := []CellSample{
		{Key: "a", Dims: map[string]string{"bench": "EP"}, Features: map[string]float64{"seconds": 1}},
		{Key: "b", Dims: map[string]string{"bench": "EP"}, Features: map[string]float64{"seconds": 1}},
	}
	s := Analyze(cells)
	if s.Clusters != 1 {
		t.Fatalf("identical cells form %d clusters", s.Clusters)
	}
	if len(s.Dimensions) != 0 {
		t.Fatalf("constant dimension scored: %+v", s.Dimensions)
	}
}

func TestFlattenJSON(t *testing.T) {
	flat, err := FlattenJSON([]byte(`{
		"machine": {"nodes": 4, "htt": false},
		"smm": {"level": "long", "interval_ms": 8},
		"tags": ["a", "b"],
		"empty": null
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"machine.nodes":   "4",
		"machine.htt":     "false",
		"smm.level":       "long",
		"smm.interval_ms": "8",
		"tags[0]":         "a",
		"tags[1]":         "b",
	}
	if len(flat) != len(want) {
		t.Fatalf("flat = %v, want %v", flat, want)
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("flat[%q] = %q, want %q", k, flat[k], v)
		}
	}
	if _, err := FlattenJSON([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
