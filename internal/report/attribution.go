// Package report turns run artifacts — Chrome/Perfetto traces from the
// obs bus, metrics snapshots, run manifests, durable result stores —
// into self-contained HTML and JSON reports: a time-attribution tree
// per run/node/CPU (the simulated analogue of a top-down TMA
// breakdown), a flame/icicle rendering of the trace, and a cross-run
// similarity analysis that flags which scenario dimensions actually
// change behavior.
//
// The attribution tree answers the paper's core question — where did
// the wall time go? — from bus events alone: every logical CPU's
// timeline is partitioned exactly into compute, SMM-stolen, per-family
// stolen time (one <family>-stolen category per perturbation source,
// e.g. osjitter-stolen), communication-wait, fault-retransmit wait and
// idle, so the categories sum to the wall time by construction and any
// residue is a processing bug the invariant checker surfaces.
package report

import (
	"fmt"
	"sort"
	"strings"

	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// Attribution categories. They partition a CPU's timeline exactly.
// Per-CPU perturbation sources additionally contribute one
// "<family>-stolen" category each (e.g. "osjitter-stolen").
const (
	CatCompute    = "compute"          // on-CPU, outside SMM
	CatSMMStolen  = "smm-stolen"       // stalled in System Management Mode
	CatCommWait   = "comm-wait"        // off-CPU on a node with MPI ranks
	CatRetransmit = "fault-retransmit" // off-CPU while the transport retransmitted
	CatIdle       = "idle"             // off-CPU on a node without MPI ranks
	CatFastPath   = "fast-path-skipped"
)

// Node is one vertex of a time-attribution tree.
type Node struct {
	Label string `json:"label"`
	// Kind is run, node, cpu or category.
	Kind    string  `json:"kind"`
	Seconds float64 `json:"seconds"`
	// Parallel marks a vertex whose children are concurrent timelines
	// (a run's nodes, a node's CPUs): each child covers the parent's
	// interval, so children individually equal the parent rather than
	// summing to it. Category children of a CPU are an additive
	// partition instead.
	Parallel bool    `json:"parallel,omitempty"`
	Children []*Node `json:"children,omitempty"`
	// Count carries a category's event count where one is meaningful
	// (retransmissions, fast-path hits).
	Count int64 `json:"count,omitempty"`
	// Anomalies records accounting irregularities found while building
	// this vertex (clamped negatives, unmatched span edges) — the
	// report's analogue of trace.TaskSample.Anomalous.
	Anomalies []string `json:"anomalies,omitempty"`
}

// Violation is one failed attribution invariant.
type Violation struct {
	Path   string `json:"path"`
	Detail string `json:"detail"`
}

// Check verifies the tree's invariants recursively: category children
// sum to their parent within tol (relative), parallel children each
// match their parent within tol, every vertex is non-negative, and no
// category exceeds its parent. Anomalies recorded during construction
// are violations too — they mean the partition needed clamping.
func (n *Node) Check(tol float64) []Violation {
	var out []Violation
	n.check("", tol, &out)
	return out
}

func (n *Node) check(prefix string, tol float64, out *[]Violation) {
	path := n.Label
	if prefix != "" {
		path = prefix + "/" + n.Label
	}
	if n.Seconds < 0 {
		*out = append(*out, Violation{path, fmt.Sprintf("negative time %.6g s", n.Seconds)})
	}
	for _, a := range n.Anomalies {
		*out = append(*out, Violation{path, a})
	}
	if len(n.Children) > 0 {
		slack := tol * n.Seconds
		if n.Parallel {
			for _, c := range n.Children {
				if d := c.Seconds - n.Seconds; d > slack || d < -slack {
					*out = append(*out, Violation{path, fmt.Sprintf(
						"parallel child %s covers %.6g s of a %.6g s parent (tol %.2g%%)",
						c.Label, c.Seconds, n.Seconds, tol*100)})
				}
			}
		} else {
			var sum float64
			for _, c := range n.Children {
				sum += c.Seconds
				if c.Seconds > n.Seconds+slack {
					*out = append(*out, Violation{path, fmt.Sprintf(
						"child %s (%.6g s) exceeds parent (%.6g s)", c.Label, c.Seconds, n.Seconds)})
				}
			}
			if d := sum - n.Seconds; d > slack || d < -slack {
				*out = append(*out, Violation{path, fmt.Sprintf(
					"children sum to %.6g s, parent is %.6g s (tol %.2g%%)", sum, n.Seconds, tol*100)})
			}
		}
	}
	for _, c := range n.Children {
		c.check(path, tol, out)
	}
}

// Find walks the tree by labels.
func (n *Node) Find(labels ...string) *Node {
	cur := n
	for _, l := range labels {
		var next *Node
		for _, c := range cur.Children {
			if c.Label == l {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// CategoryTotal sums the given category's seconds over every CPU leaf
// under n, alongside the total wall-seconds of those leaves, so a
// caller can form the category's overall fraction.
func (n *Node) CategoryTotal(category string) (catSec, wallSec float64) {
	if n.Kind == "cpu" {
		wallSec += n.Seconds
		for _, c := range n.Children {
			if c.Label == category {
				catSec += c.Seconds
			}
		}
		return
	}
	for _, c := range n.Children {
		cs, ws := c.CategoryTotal(category)
		catSec += cs
		wallSec += ws
	}
	return
}

// RankStats summarizes one MPI rank's traffic in a run.
type RankStats struct {
	Node        int32   `json:"node"`
	Rank        int     `json:"rank"`
	Sends       int64   `json:"sends"`
	Recvs       int64   `json:"recvs"`
	SendBytes   int64   `json:"send_bytes"`
	CollSeconds float64 `json:"coll_seconds"`
}

// RunAttribution is one run's attribution tree plus per-rank traffic.
type RunAttribution struct {
	Run         int32       `json:"run"`
	WallSeconds float64     `json:"wall_seconds"`
	Tree        *Node       `json:"tree"`
	Ranks       []RankStats `json:"ranks,omitempty"`
	// FastPathHits counts dispatcher hits recorded for this run: cells
	// served without any engine timeline.
	FastPathHits int64 `json:"fastpath_hits,omitempty"`
}

// iv is a half-open interval [lo, hi) on the simulation timeline.
type iv struct{ lo, hi sim.Time }

// clipMerge sorts, clips to [0, wall] and merges overlapping intervals.
func clipMerge(ivs []iv, wall sim.Time) []iv {
	var out []iv
	for _, x := range ivs {
		if x.lo < 0 {
			x.lo = 0
		}
		if x.hi > wall {
			x.hi = wall
		}
		if x.hi > x.lo {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	merged := out[:0]
	for _, x := range out {
		if n := len(merged); n > 0 && x.lo <= merged[n-1].hi {
			if x.hi > merged[n-1].hi {
				merged[n-1].hi = x.hi
			}
			continue
		}
		merged = append(merged, x)
	}
	return merged
}

// total sums interval lengths.
func total(ivs []iv) sim.Time {
	var t sim.Time
	for _, x := range ivs {
		t += x.hi - x.lo
	}
	return t
}

// intersect returns the intersection of two merged interval sets.
func intersect(a, b []iv) []iv {
	var out []iv
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := maxT(a[i].lo, b[j].lo), minT(a[i].hi, b[j].hi)
		if hi > lo {
			out = append(out, iv{lo, hi})
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// complement returns [0, wall] minus the merged set.
func complement(a []iv, wall sim.Time) []iv {
	var out []iv
	cur := sim.Time(0)
	for _, x := range a {
		if x.lo > cur {
			out = append(out, iv{cur, x.lo})
		}
		cur = x.hi
	}
	if cur < wall {
		out = append(out, iv{cur, wall})
	}
	return out
}

// splitBy partitions the merged set a into the parts that do / do not
// contain any of the given instants.
func splitBy(a []iv, instants []sim.Time) (with, without []iv) {
	for _, x := range a {
		hit := false
		for _, t := range instants {
			if t >= x.lo && t < x.hi {
				hit = true
				break
			}
		}
		if hit {
			with = append(with, x)
		} else {
			without = append(without, x)
		}
	}
	return
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func minT(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

// Attribute builds one attribution tree per run in the trace.
func Attribute(tr *obs.Trace) []RunAttribution {
	var out []RunAttribution
	for _, run := range tr.RunIDs() {
		out = append(out, attributeRun(tr, run))
	}
	return out
}

func attributeRun(tr *obs.Trace, run int32) RunAttribution {
	spans := tr.Select(run, obs.TrackUnknown)
	ra := RunAttribution{Run: run}
	root := &Node{Label: fmt.Sprintf("run%d", run), Kind: "run", Parallel: true}
	ra.Tree = root

	// Wall time: the sweep-cell span; without one (a torn trace, or a
	// run traced outside the runner) fall back to the last event time.
	var wall sim.Time
	haveCell := false
	for _, s := range spans {
		if s.Kind == obs.TrackCells && !s.Instant && s.Name == "cell" {
			wall = s.Dur
			haveCell = true
		}
		if s.Kind == obs.TrackFastPath && s.Instant && strings.HasPrefix(s.Name, "fastpath_hit") {
			ra.FastPathHits++
		}
	}
	if !haveCell {
		for _, s := range spans {
			if s.End() > wall {
				wall = s.End()
			}
		}
		if wall > 0 {
			root.Anomalies = append(root.Anomalies,
				"no sweep-cell span: wall time estimated from the last event")
		}
	}
	root.Seconds = wall.Seconds()
	ra.WallSeconds = wall.Seconds()

	if ra.FastPathHits > 0 {
		root.Children = append(root.Children, &Node{
			Label: CatFastPath, Kind: "category", Count: ra.FastPathHits,
			Seconds: wall.Seconds(),
		})
	}

	// Group the run's node-scoped spans by node.
	perNode := map[int32][]obs.Span{}
	var nodes []int32
	for _, s := range spans {
		if s.Node < 0 {
			continue
		}
		if _, ok := perNode[s.Node]; !ok {
			nodes = append(nodes, s.Node)
		}
		perNode[s.Node] = append(perNode[s.Node], s)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	for _, node := range nodes {
		nn, ranks := attributeNode(node, perNode[node], wall)
		root.Children = append(root.Children, nn)
		ra.Ranks = append(ra.Ranks, ranks...)
	}
	return ra
}

// attributeNode partitions each of a node's CPU timelines.
func attributeNode(node int32, spans []obs.Span, wall sim.Time) (*Node, []RankStats) {
	nn := &Node{Label: fmt.Sprintf("node%d", node), Kind: "node",
		Seconds: wall.Seconds(), Parallel: true}

	var smm []iv
	var retrans []sim.Time
	taskNames := map[int64]string{}
	cpuEvents := map[int][]obs.Span{}
	steals := map[int]map[string][]iv{} // cpu → noise family → steal windows
	rankStats := map[int]*RankStats{}
	hasRanks := false

	for _, s := range spans {
		switch s.Kind {
		case obs.TrackSMM:
			if !s.Instant {
				smm = append(smm, iv{s.Start, s.End()})
			}
		case obs.TrackSteal:
			if !s.Instant {
				fams := steals[s.Index]
				if fams == nil {
					fams = map[string][]iv{}
					steals[s.Index] = fams
				}
				fams[s.Name] = append(fams[s.Name], iv{s.Start, s.End()})
			}
		case obs.TrackTransport:
			if s.Instant {
				retrans = append(retrans, s.Start)
			}
		case obs.TrackTasks:
			if s.Instant && s.Name != "exit" {
				taskNames[s.A] = s.Name
			}
		case obs.TrackCPU:
			cpuEvents[s.Index] = append(cpuEvents[s.Index], s)
		case obs.TrackRank:
			hasRanks = true
			rs := rankStats[s.Index]
			if rs == nil {
				rs = &RankStats{Node: node, Rank: s.Index}
				rankStats[s.Index] = rs
			}
			switch {
			case s.Instant && s.Name == "send":
				rs.Sends++
				rs.SendBytes += s.B
			case s.Instant && s.Name == "recv":
				rs.Recvs++
			case !s.Instant:
				rs.CollSeconds += s.Dur.Seconds()
			}
		}
	}
	smm = clipMerge(smm, wall)

	// CPUs appear from scheduling events or from steal windows — a core
	// that only ever got stolen from still owns a timeline.
	var cpus []int
	for c := range cpuEvents {
		cpus = append(cpus, c)
	}
	for c := range steals {
		if _, ok := cpuEvents[c]; !ok {
			cpus = append(cpus, c)
		}
	}
	sort.Ints(cpus)
	for _, c := range cpus {
		nn.Children = append(nn.Children,
			attributeCPU(c, cpuEvents[c], smm, steals[c], retrans, wall, hasRanks, taskNames))
	}

	var ranks []RankStats
	var ids []int
	for r := range rankStats {
		ids = append(ids, r)
	}
	sort.Ints(ids)
	for _, r := range ids {
		ranks = append(ranks, *rankStats[r])
	}
	return nn, ranks
}

// attributeCPU partitions one logical CPU's [0, wall] exactly:
//
//	on-CPU  ∖ claimed          → compute
//	SMM residency              → smm-stolen (stalled whether running or waiting)
//	family steal windows       → <family>-stolen (per-CPU steals, e.g. osjitter)
//	off-CPU ∖ claimed, marked  → fault-retransmit (a retransmission fired inside)
//	off-CPU ∖ claimed, rest    → comm-wait (MPI node) or idle
//
// where claimed is the union of the SMM windows and every family's
// steal windows. Overlaps are resolved deterministically — SMM claims
// first, then families in sorted name order — so the partition stays
// exhaustive and disjoint and the category leaves sum to the wall time
// exactly; clamping never occurs by construction, and unmatched
// scheduling edges are surfaced as anomalies instead of silently
// skewing a bucket.
func attributeCPU(cpu int, events []obs.Span, smm []iv, steals map[string][]iv,
	retrans []sim.Time, wall sim.Time, hasRanks bool, taskNames map[int64]string) *Node {

	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	var busy []iv
	var open sim.Time
	opened := false
	anomalies := 0
	occupant := map[int64]int{} // thread id → run-instant count, for the label
	for _, e := range events {
		if !e.Instant {
			continue
		}
		switch e.Name {
		case "run", "migrate":
			if !opened {
				open, opened = e.Start, true
			}
			occupant[e.A]++
		case "preempt":
			if !opened {
				anomalies++
				continue
			}
			busy = append(busy, iv{open, e.Start})
			opened = false
		}
	}
	if opened {
		busy = append(busy, iv{open, wall})
	}
	busy = clipMerge(busy, wall)

	// Resolve overlapping claims deterministically: SMM first, then each
	// family's per-CPU steal windows in sorted name order, each family
	// keeping only what no earlier claimant took.
	var fams []string
	for f := range steals {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	claimed := smm
	type famPart struct {
		name string
		ivs  []iv
	}
	var famParts []famPart
	for _, f := range fams {
		st := subtract(clipMerge(steals[f], wall), claimed)
		famParts = append(famParts, famPart{f, st})
		claimed = clipMerge(append(append([]iv(nil), claimed...), st...), wall)
	}

	computeIv := subtract(busy, claimed)
	off := complement(busy, wall)
	offAwake := subtract(off, claimed)
	waitRetrans, waitPlain := splitBy(offAwake, retrans)

	label := fmt.Sprintf("cpu%d", cpu)
	if name := majorityName(occupant, taskNames); name != "" {
		label += " · " + name
	}
	n := &Node{Label: label, Kind: "cpu", Seconds: wall.Seconds()}
	if anomalies > 0 {
		n.Anomalies = append(n.Anomalies,
			fmt.Sprintf("%d unmatched preempt edges (trace starts mid-run or is lossy)", anomalies))
	}
	waitCat := CatIdle
	if hasRanks {
		waitCat = CatCommWait
	}
	cats := []struct {
		label string
		secs  float64
		count int64
	}{
		{CatCompute, total(computeIv).Seconds(), 0},
		{CatSMMStolen, total(smm).Seconds(), int64(len(smm))},
	}
	for _, fp := range famParts {
		cats = append(cats, struct {
			label string
			secs  float64
			count int64
		}{fp.name + "-stolen", total(fp.ivs).Seconds(), int64(len(fp.ivs))})
	}
	cats = append(cats, []struct {
		label string
		secs  float64
		count int64
	}{
		{waitCat, total(waitPlain).Seconds(), 0},
		{CatRetransmit, total(waitRetrans).Seconds(), int64(len(waitRetrans))},
	}...)
	for _, c := range cats {
		if c.secs == 0 && c.count == 0 {
			continue
		}
		n.Children = append(n.Children, &Node{
			Label: c.label, Kind: "category", Seconds: c.secs, Count: c.count,
		})
	}
	return n
}

// subtract returns a ∖ b for merged interval sets.
func subtract(a, b []iv) []iv {
	var out []iv
	j := 0
	for _, x := range a {
		lo := x.lo
		for j < len(b) && b[j].hi <= lo {
			j++
		}
		k := j
		for k < len(b) && b[k].lo < x.hi {
			if b[k].lo > lo {
				out = append(out, iv{lo, b[k].lo})
			}
			if b[k].hi > lo {
				lo = b[k].hi
			}
			k++
		}
		if lo < x.hi {
			out = append(out, iv{lo, x.hi})
		}
	}
	return out
}

// majorityName resolves the thread holding the most run instants on a
// CPU to its task name, empty when unknown.
func majorityName(occupant map[int64]int, taskNames map[int64]string) string {
	best, bestN := int64(-1), 0
	for id, n := range occupant {
		if n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	if bestN == 0 {
		return ""
	}
	return taskNames[best]
}

// Aggregate averages several structurally matching run trees (the
// repetitions of one cell) into one mean tree; structure is matched by
// label path, and vertices missing from some runs average over the
// runs that have them.
func Aggregate(runs []RunAttribution) *Node {
	if len(runs) == 0 {
		return nil
	}
	agg := &Node{Label: fmt.Sprintf("mean of %d runs", len(runs)), Kind: "run", Parallel: true}
	var fold func(dst *Node, src *Node, w float64)
	fold = func(dst *Node, src *Node, w float64) {
		dst.Seconds += src.Seconds * w
		dst.Count += src.Count
		for _, sc := range src.Children {
			var dc *Node
			for _, c := range dst.Children {
				if c.Label == sc.Label {
					dc = c
					break
				}
			}
			if dc == nil {
				dc = &Node{Label: sc.Label, Kind: sc.Kind, Parallel: sc.Parallel}
				dst.Children = append(dst.Children, dc)
			}
			fold(dc, sc, w)
		}
	}
	w := 1.0 / float64(len(runs))
	for _, r := range runs {
		fold(agg, r.Tree, w)
	}
	return agg
}
