package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"smistudy/internal/durable"
	"smistudy/internal/runner"
	"smistudy/internal/stats"
)

// This file is the cross-run similarity analysis: sweep cells are
// featurized from their measurements, clustered, and the clustering is
// compared against the partition each scenario dimension induces. A
// dimension whose partition agrees with the behavior clusters (Rand
// index near 1) is one the system responds to — for the paper's
// Figure 2 sweep, the SMI interval; a dimension that cross-cuts the
// clusters — the RNG seed — is noise. The analysis turns "here are 40
// numbers" into "only these knobs mattered".

// CellSample is one sweep cell prepared for similarity analysis.
type CellSample struct {
	Key string `json:"key"` // durable content address (may be synthetic)
	Run int    `json:"run"` // repetition index under the key
	// Dims holds the cell's scenario dimensions as flattened
	// path → value strings (e.g. "smm.interval_ms" → "8").
	Dims map[string]string `json:"dims,omitempty"`
	// Features is the cell's behavior vector, named.
	Features map[string]float64 `json:"features"`
}

// DimRelevance scores one scenario dimension against the behavior
// clustering.
type DimRelevance struct {
	Name string `json:"name"`
	// Values counts the dimension's distinct values across cells.
	Values int `json:"values"`
	// Relevance is the Rand index between the dimension's partition and
	// the behavior clustering: near 1 means the dimension explains the
	// clusters, near the chance level means it is noise.
	Relevance float64 `json:"relevance"`
}

// Similarity is the full analysis result.
type Similarity struct {
	// Cluster holds one cluster id per input cell, parallel to Cells.
	Cluster []int `json:"cluster"`
	// Cells echoes key/run per input, parallel to Cluster.
	Cells []string `json:"cells"`
	// Clusters counts the distinct behavior clusters found.
	Clusters int `json:"clusters"`
	// Threshold is the merge cutoff used (distance units, z-scored).
	Threshold float64 `json:"threshold"`
	// FeatureNames lists the feature columns in matrix order.
	FeatureNames []string `json:"feature_names"`
	// Dimensions ranks the scenario dimensions by relevance, most
	// explanatory first. Only dimensions with at least two distinct
	// values appear (constants can't explain anything).
	Dimensions []DimRelevance `json:"dimensions,omitempty"`
}

// Featurize builds a measurement's behavior vector. Known workloads get
// curated features on comparable scales; anything else falls back to
// the numeric leaves of the measurement's JSON encoding.
func Featurize(m runner.Measurement) map[string]float64 {
	f := map[string]float64{}
	switch {
	case m.NAS != nil:
		f["seconds"] = m.NAS.MeanTime.Seconds()
		f["mops"] = m.NAS.MOPs
		f["residency_s"] = m.NAS.Residency.Seconds()
		f["retransmits"] = float64(m.NAS.Retransmits)
		f["dropped"] = float64(m.NAS.Dropped)
	case m.Convolve != nil:
		f["seconds"] = m.Convolve.MeanTime.Seconds()
		f["stddev_s"] = m.Convolve.StdDev.Seconds()
	case m.UnixBench != nil:
		f["score"] = m.UnixBench.Score
	default:
		data, err := json.Marshal(m)
		if err != nil {
			return f
		}
		flat, err := FlattenJSON(data)
		if err != nil {
			return f
		}
		for path, val := range flat {
			var x float64
			if _, err := fmt.Sscanf(val, "%g", &x); err == nil && !strings.Contains(path, "[") {
				f[path] = x
			}
		}
	}
	return f
}

// FlattenJSON flattens a JSON document into dotted-path → scalar-string
// pairs; array elements get bracketed indices. Numbers keep their exact
// textual form (json.Number), so values round-trip as dimension labels.
func FlattenJSON(data []byte) (map[string]string, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var doc interface{}
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("report: flatten: %w", err)
	}
	out := map[string]string{}
	var walk func(prefix string, v interface{})
	walk = func(prefix string, v interface{}) {
		switch t := v.(type) {
		case map[string]interface{}:
			keys := make([]string, 0, len(t))
			for k := range t {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, t[k])
			}
		case []interface{}:
			for i, e := range t {
				walk(fmt.Sprintf("%s[%d]", prefix, i), e)
			}
		case json.Number:
			out[prefix] = t.String()
		case string:
			out[prefix] = t
		case bool:
			out[prefix] = fmt.Sprintf("%v", t)
		case nil:
			// Absent is not a value.
		}
	}
	walk("", doc)
	return out, nil
}

// LoadCells prepares every journaled cell of a durable store for
// analysis: measurement bytes become features, the key's spec document
// (when present) becomes dimensions, and the repetition index is added
// as the "rep" dimension.
func LoadCells(st *durable.Store) ([]CellSample, error) {
	var out []CellSample
	for _, c := range st.Cells() {
		data, err := st.Get(c.Key, c.Run)
		if err != nil {
			// Journaled but unreadable: the sweep would re-run it; the
			// report simply analyzes without it.
			continue
		}
		var m runner.Measurement
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("report: cell %s run %d: %w", c.Key, c.Run, err)
		}
		cs := CellSample{Key: c.Key, Run: c.Run, Features: Featurize(m)}
		if spec, err := st.SpecJSON(c.Key); err == nil {
			if dims, err := FlattenJSON(spec); err == nil {
				cs.Dims = dims
			}
		}
		if cs.Dims == nil {
			cs.Dims = map[string]string{}
		}
		cs.Dims["rep"] = fmt.Sprintf("%d", c.Run)
		out = append(out, cs)
	}
	return out, nil
}

// gapThreshold picks a clustering cutoff from the pairwise distances:
// the largest multiplicative gap in the sorted positive distances
// separates within-group noise from between-group structure, and the
// threshold sits inside that gap (geometric mean of its edges). Falls
// back to the median when no meaningful gap exists.
func gapThreshold(d [][]float64) float64 {
	var vals []float64
	for i := range d {
		for j := i + 1; j < len(d); j++ {
			if d[i][j] > 0 {
				vals = append(vals, d[i][j])
			}
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	bi, best := -1, 2.0 // require at least a 2x jump to call it structure
	for i := 0; i+1 < len(vals); i++ {
		if vals[i] <= 0 {
			continue
		}
		if r := vals[i+1] / vals[i]; r > best {
			best, bi = r, i
		}
	}
	if bi < 0 {
		return stats.MedianPositive(d)
	}
	return math.Sqrt(vals[bi] * vals[bi+1]) // geometric midpoint of the gap
}

// Analyze clusters the cells by behavior and ranks every scenario
// dimension by how well it explains the clustering.
func Analyze(cells []CellSample) *Similarity {
	sim := &Similarity{}
	if len(cells) == 0 {
		return sim
	}

	// Feature matrix over the union of feature names, missing → 0.
	nameSet := map[string]bool{}
	for _, c := range cells {
		for n := range c.Features {
			nameSet[n] = true
		}
	}
	for n := range nameSet {
		sim.FeatureNames = append(sim.FeatureNames, n)
	}
	sort.Strings(sim.FeatureNames)
	rows := make([][]float64, len(cells))
	for i, c := range cells {
		rows[i] = make([]float64, len(sim.FeatureNames))
		for j, n := range sim.FeatureNames {
			rows[i][j] = c.Features[n]
		}
		sim.Cells = append(sim.Cells, fmt.Sprintf("%s/r%d", shortKey(c.Key), c.Run))
	}
	stats.ZScoreColumns(rows)
	d := stats.PairwiseDistances(rows)
	sim.Threshold = gapThreshold(d)
	sim.Cluster = stats.ClusterAgglomerative(d, sim.Threshold)
	for _, c := range sim.Cluster {
		if c+1 > sim.Clusters {
			sim.Clusters = c + 1
		}
	}

	// Dimension relevance: every dimension present on at least one cell
	// and taking at least two distinct values across cells.
	dimNames := map[string]bool{}
	for _, c := range cells {
		for n := range c.Dims {
			dimNames[n] = true
		}
	}
	var names []string
	for n := range dimNames {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		vals := make([]string, len(cells))
		distinct := map[string]bool{}
		for i, c := range cells {
			vals[i] = c.Dims[n]
			distinct[vals[i]] = true
		}
		if len(distinct) < 2 {
			continue
		}
		sim.Dimensions = append(sim.Dimensions, DimRelevance{
			Name:      n,
			Values:    len(distinct),
			Relevance: stats.RandIndex(sim.Cluster, stats.PartitionOf(vals)),
		})
	}
	sort.SliceStable(sim.Dimensions, func(i, j int) bool {
		if sim.Dimensions[i].Relevance != sim.Dimensions[j].Relevance {
			return sim.Dimensions[i].Relevance > sim.Dimensions[j].Relevance
		}
		return sim.Dimensions[i].Name < sim.Dimensions[j].Name
	})
	return sim
}

// shortKey abbreviates a content address for display.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
