package faults

import (
	"fmt"

	"smistudy/internal/netsim"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// NodeControl is the per-node machinery the injector drives: the CPU
// stall hook (crash/hang) and the SMI driver (storms). cluster.Node
// supplies both.
type NodeControl struct {
	CPU smm.Staller
	SMI *smm.Driver
}

// Stats counts injector activity.
type Stats struct {
	Started int   // fault activations
	Ended   int   // fault expirations
	Drops   int64 // messages the injector condemned
}

// Injector arms a fault schedule on a cluster: it implements
// netsim.Perturber for the link faults and drives node machinery for
// crash, hang and SMI-storm faults. It also serves as the MPI
// watchdog's fault observer (NodeDown / FaultsPending).
type Injector struct {
	eng   *sim.Engine
	fab   *netsim.Fabric
	nodes []NodeControl

	active    []*Fault // link faults currently in force
	haltDepth []int    // per node: active Crash+Hang faults
	downDepth []int    // per node: active Crash faults (off the fabric)
	prevSMI   []smm.DriverConfig

	// pending counts schedule events (starts and expiries) not yet
	// fired; while it is nonzero the world can still change without any
	// application progress.
	pending int
	stats   Stats

	tr obs.Tracer // nil unless the run is traced
}

// SetTracer attaches an observability tracer for fault activation and
// expiry events. Node faults carry their node index; link faults carry
// Node -1 with the src/dst selectors in A/B.
func (in *Injector) SetTracer(tr obs.Tracer) { in.tr = tr }

// emit reports a fault going into or out of force.
func (in *Injector) emit(t obs.Type, f *Fault) {
	node := int32(f.Node)
	if f.Kind.isLink() {
		node = -1
	}
	in.tr.Emit(obs.Event{Time: in.eng.Now(), Type: t, Node: node,
		Track: -1, A: int64(f.Src), B: int64(f.Dst), Name: f.Kind.String()})
}

// New validates the schedule and arms it: fault start/expiry events are
// scheduled on eng, and the injector installs itself as the fabric's
// perturber. All fault times are relative to the current engine time.
func New(eng *sim.Engine, fab *netsim.Fabric, nodes []NodeControl, sched Schedule) (*Injector, error) {
	if len(nodes) != fab.Nodes() {
		return nil, fmt.Errorf("faults: %d node controls for a %d-node fabric", len(nodes), fab.Nodes())
	}
	if err := sched.Validate(len(nodes)); err != nil {
		return nil, err
	}
	in := &Injector{
		eng:       eng,
		fab:       fab,
		nodes:     nodes,
		haltDepth: make([]int, len(nodes)),
		downDepth: make([]int, len(nodes)),
		prevSMI:   make([]smm.DriverConfig, len(nodes)),
	}
	now := eng.Now()
	for i := range sched.Faults {
		f := sched.Faults[i] // copy: the schedule stays caller-owned
		in.pending++
		eng.At(now+f.Start, func() {
			in.pending--
			in.activate(&f)
		})
		if f.Duration > 0 {
			in.pending++
			eng.At(now+f.Start+f.Duration, func() {
				in.pending--
				in.expire(&f)
			})
		}
	}
	fab.SetPerturber(in)
	return in, nil
}

// Stats reports injector activity so far.
func (in *Injector) Stats() Stats { return in.stats }

// NodeDown reports whether the node is currently halted (crashed or
// hung). Part of the MPI watchdog's fault-observer contract.
func (in *Injector) NodeDown(node int) bool { return in.haltDepth[node] > 0 }

// FaultsPending reports whether schedule events are still to come — a
// watchdog must not declare no-progress while a fault may yet expire.
func (in *Injector) FaultsPending() bool { return in.pending > 0 }

// activate puts one fault into force.
func (in *Injector) activate(f *Fault) {
	in.stats.Started++
	if in.tr != nil {
		in.emit(obs.EvFaultStart, f)
	}
	if f.Kind.isLink() {
		in.active = append(in.active, f)
		return
	}
	n := f.Node
	switch f.Kind {
	case Crash:
		in.downDepth[n]++
		in.halt(n)
		in.nodes[n].SMI.Stop()
	case Hang:
		in.halt(n)
	case SMIStorm:
		in.prevSMI[n] = in.nodes[n].SMI.Config()
		period := f.StormPeriodJiffies
		if period == 0 {
			period = 10
		}
		level := f.StormLevel
		if level == smm.SMMNone {
			level = smm.SMMShort
		}
		in.nodes[n].SMI.Reconfigure(smm.DriverConfig{
			Level: level, PeriodJiffies: period, PhaseJitter: true,
		})
	}
}

// expire takes one bounded fault out of force.
func (in *Injector) expire(f *Fault) {
	in.stats.Ended++
	if in.tr != nil {
		in.emit(obs.EvFaultEnd, f)
	}
	if f.Kind.isLink() {
		for i, a := range in.active {
			if a == f {
				in.active = append(in.active[:i], in.active[i+1:]...)
				break
			}
		}
		return
	}
	n := f.Node
	switch f.Kind {
	case Crash:
		in.downDepth[n]--
		in.unhalt(n)
		// The node "reboots": CPUs resume, but its SMI driver stays
		// disarmed (firmware state does not survive a crash).
	case Hang:
		in.unhalt(n)
	case SMIStorm:
		in.nodes[n].SMI.Reconfigure(in.prevSMI[n])
	}
}

// halt stalls a node's CPUs (reference-counted against overlapping
// faults and SMM entries — cpu.Model.Stall nests).
func (in *Injector) halt(n int) {
	in.haltDepth[n]++
	if in.haltDepth[n] == 1 {
		in.nodes[n].CPU.Stall()
	}
}

func (in *Injector) unhalt(n int) {
	in.haltDepth[n]--
	if in.haltDepth[n] == 0 {
		in.nodes[n].CPU.Unstall()
	}
}

// Perturb implements netsim.Perturber: it condemns messages touching a
// crashed node, then applies the active link faults in schedule order.
// Loss draws come from the engine's seeded RNG, so fault timelines
// replay exactly for a given seed.
func (in *Injector) Perturb(src, dst, bytes int) netsim.Verdict {
	var v netsim.Verdict
	if in.downDepth[src] > 0 || in.downDepth[dst] > 0 {
		v.Drop = true
		in.stats.Drops++
		return v
	}
	for _, f := range in.active {
		if !f.matches(src, dst) {
			continue
		}
		switch f.Kind {
		case Partition:
			v.Drop = true
		case Loss:
			if in.eng.Rand().Float64() < f.LossProb {
				v.Drop = true
			}
		case Degrade:
			if f.SlowFactor > 1 {
				if v.SlowFactor < 1 {
					v.SlowFactor = 1
				}
				v.SlowFactor *= f.SlowFactor
			}
			v.ExtraLatency += f.ExtraLatency
		}
		if v.Drop {
			in.stats.Drops++
			return v
		}
	}
	return v
}
