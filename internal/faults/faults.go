// Package faults is a deterministic, seed-driven fault-injection
// subsystem for simulated clusters.
//
// The paper studies one noise source — SMIs — but its central mechanism
// (a single perturbed node amplified into cluster-wide slowdown through
// blocking collectives) applies to every fault class a production
// cluster sees. This package injects those classes on a schedule:
// probabilistic message loss, link bandwidth/latency degradation, link
// partitions, node crashes, node hangs, and SMI storms. All randomness
// (loss draws, storm phases) flows from the engine's seeded RNG, so a
// given seed replays an identical fault timeline — the controlled,
// reproducible perturbation that makes noise experiments trustworthy.
//
// A Schedule is a list of Faults; an Injector arms the schedule on a
// cluster, hooking the netsim fabric (loss/degradation/partition), the
// per-node CPU stall machinery (crash/hang) and the per-node SMI driver
// (storms).
package faults

import (
	"fmt"

	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// Kind classifies a fault.
type Kind int

// The fault classes.
const (
	// Loss drops each matching message with probability LossProb.
	Loss Kind = iota
	// Degrade multiplies matching messages' serialization time by
	// SlowFactor and adds ExtraLatency to their one-way latency.
	Degrade
	// Partition drops every matching message (LossProb 1 in effect).
	Partition
	// Crash halts Node and takes it off the fabric: its CPUs stop, its
	// SMI driver disarms, and every message to or from it is lost.
	Crash
	// Hang halts Node's CPUs but leaves it on the fabric — the
	// ambiguous failure mode: the network still acks, nothing computes.
	Hang
	// SMIStorm reconfigures Node's SMI driver to a high-frequency
	// configuration for the fault's duration.
	SMIStorm
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Loss:
		return "loss"
	case Degrade:
		return "degrade"
	case Partition:
		return "partition"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case SMIStorm:
		return "smi-storm"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// isLink reports whether the kind perturbs messages rather than nodes.
func (k Kind) isLink() bool { return k == Loss || k == Degrade || k == Partition }

// Wildcard matches any node in a link fault's Src/Dst.
const Wildcard = -1

// Fault is one scheduled perturbation.
type Fault struct {
	Kind  Kind
	Start sim.Time
	// Duration bounds the fault; zero means permanent (until the end of
	// the run).
	Duration sim.Time

	// Node is the target of Crash, Hang and SMIStorm faults.
	Node int
	// Src and Dst select the directed links a Loss, Degrade or
	// Partition fault applies to; Wildcard matches any node.
	Src, Dst int

	// LossProb is the per-message drop probability of a Loss fault.
	LossProb float64
	// SlowFactor (> 1) and ExtraLatency degrade matching links.
	SlowFactor   float64
	ExtraLatency sim.Time

	// StormPeriodJiffies and StormLevel configure an SMIStorm; zero
	// values default to one short SMI every 10 jiffies.
	StormPeriodJiffies uint64
	StormLevel         smm.Level
}

// matches reports whether a link fault applies to the src->dst message.
func (f Fault) matches(src, dst int) bool {
	return (f.Src == Wildcard || f.Src == src) && (f.Dst == Wildcard || f.Dst == dst)
}

// validate checks one fault against a cluster size.
func (f Fault) validate(nodes int) error {
	if f.Start < 0 || f.Duration < 0 {
		return fmt.Errorf("faults: %v fault with negative start/duration", f.Kind)
	}
	if f.Kind.isLink() {
		for _, n := range []int{f.Src, f.Dst} {
			if n != Wildcard && (n < 0 || n >= nodes) {
				return fmt.Errorf("faults: %v fault on link %d->%d of %d nodes", f.Kind, f.Src, f.Dst, nodes)
			}
		}
	} else {
		if f.Node < 0 || f.Node >= nodes {
			return fmt.Errorf("faults: %v fault on node %d of %d", f.Kind, f.Node, nodes)
		}
	}
	switch f.Kind {
	case Loss:
		if f.LossProb < 0 || f.LossProb > 1 {
			return fmt.Errorf("faults: loss probability %v", f.LossProb)
		}
	case Degrade:
		if f.SlowFactor != 0 && f.SlowFactor < 1 {
			return fmt.Errorf("faults: degrade SlowFactor %v < 1", f.SlowFactor)
		}
	}
	return nil
}

// Schedule is a fault timeline.
type Schedule struct {
	Faults []Fault
}

// Add appends a fault and returns the schedule for chaining.
func (s *Schedule) Add(f Fault) *Schedule {
	s.Faults = append(s.Faults, f)
	return s
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Faults) == 0 }

// Lossy reports whether any fault can lose or delay messages — the
// signal that a message-passing runtime on this fabric needs its
// retransmission protocol.
func (s Schedule) Lossy() bool {
	for _, f := range s.Faults {
		if f.Kind.isLink() || f.Kind == Crash {
			return true
		}
	}
	return false
}

// Validate checks the whole schedule against a cluster size.
func (s Schedule) Validate(nodes int) error {
	for _, f := range s.Faults {
		if err := f.validate(nodes); err != nil {
			return err
		}
	}
	return nil
}

// UniformLoss returns a permanent all-links message-loss fault.
func UniformLoss(prob float64) Fault {
	return Fault{Kind: Loss, Src: Wildcard, Dst: Wildcard, LossProb: prob}
}

// CrashAt returns a permanent crash of node at time t.
func CrashAt(node int, t sim.Time) Fault {
	return Fault{Kind: Crash, Node: node, Start: t}
}

// HangAt returns a hang of node at time t for the given duration
// (0 = forever).
func HangAt(node int, t, duration sim.Time) Fault {
	return Fault{Kind: Hang, Node: node, Start: t, Duration: duration}
}

// PartitionLink returns a partition of the directed link src->dst
// starting at t for the given duration.
func PartitionLink(src, dst int, t, duration sim.Time) Fault {
	return Fault{Kind: Partition, Src: src, Dst: dst, Start: t, Duration: duration}
}

// DegradeNodeLinks returns a degradation of all traffic into node:
// SlowFactor × slower serialization plus extra one-way latency.
func DegradeNodeLinks(node int, t, duration sim.Time, slow float64, extra sim.Time) Fault {
	return Fault{Kind: Degrade, Src: Wildcard, Dst: node, Start: t, Duration: duration,
		SlowFactor: slow, ExtraLatency: extra}
}

// StormAt returns an SMI storm on node: short SMIs every periodJiffies
// jiffies from t for the given duration.
func StormAt(node int, t, duration sim.Time, periodJiffies uint64) Fault {
	return Fault{Kind: SMIStorm, Node: node, Start: t, Duration: duration,
		StormPeriodJiffies: periodJiffies, StormLevel: smm.SMMShort}
}
