package faults_test

import (
	"testing"

	"smistudy/internal/cluster"
	"smistudy/internal/faults"
	"smistudy/internal/netsim"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func newCluster(t *testing.T, seed int64, nodes int, level smm.Level) (*sim.Engine, *cluster.Cluster) {
	t.Helper()
	e := sim.New(seed)
	c, err := cluster.New(e, cluster.Wyeast(nodes, false, level))
	if err != nil {
		t.Fatal(err)
	}
	return e, c
}

func TestScheduleValidate(t *testing.T) {
	cases := []faults.Fault{
		{Kind: faults.Loss, Src: faults.Wildcard, Dst: faults.Wildcard, LossProb: 1.5},
		{Kind: faults.Loss, Src: 9, Dst: 0},
		{Kind: faults.Crash, Node: -2},
		{Kind: faults.Crash, Node: 0, Start: -sim.Second},
		{Kind: faults.Degrade, Src: faults.Wildcard, Dst: 0, SlowFactor: 0.5},
	}
	for _, f := range cases {
		var s faults.Schedule
		s.Add(f)
		if err := s.Validate(4); err == nil {
			t.Errorf("schedule with %v fault %+v validated", f.Kind, f)
		}
	}
	var ok faults.Schedule
	ok.Add(faults.UniformLoss(0.01)).Add(faults.CrashAt(3, sim.Second))
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if !ok.Lossy() {
		t.Error("loss+crash schedule not Lossy")
	}
	if (faults.Schedule{}).Lossy() {
		t.Error("empty schedule Lossy")
	}
}

func TestInjectRejectsBadSchedule(t *testing.T) {
	_, c := newCluster(t, 1, 2, smm.SMMNone)
	var s faults.Schedule
	s.Add(faults.CrashAt(5, 0))
	if _, err := c.Inject(s); err == nil {
		t.Fatal("crash of node 5 on a 2-node cluster accepted")
	}
}

// deliverStorm pushes n messages over every ordered node pair and
// reports how many arrived.
func deliverStorm(e *sim.Engine, fab *netsim.Fabric, nodes, n int) int {
	arrived := 0
	for i := 0; i < n; i++ {
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				if s == d {
					continue
				}
				src, dst := s, d
				e.At(e.Now()+sim.Time(i)*sim.Millisecond, func() {
					fab.Deliver(src, dst, 512, func() { arrived++ })
				})
			}
		}
	}
	e.Run()
	return arrived
}

func TestLossReplayIsDeterministic(t *testing.T) {
	run := func(seed int64) (int, netsim.Stats, faults.Stats) {
		e, c := newCluster(t, seed, 3, smm.SMMNone)
		var s faults.Schedule
		s.Add(faults.UniformLoss(0.4))
		inj, err := c.Inject(s)
		if err != nil {
			t.Fatal(err)
		}
		arrived := deliverStorm(e, c.Fabric, 3, 40)
		return arrived, c.Fabric.Stats(), inj.Stats()
	}
	a1, f1, i1 := run(42)
	a2, f2, i2 := run(42)
	if a1 != a2 || f1 != f2 || i1 != i2 {
		t.Fatalf("same seed diverged: (%d %+v %+v) vs (%d %+v %+v)", a1, f1, i1, a2, f2, i2)
	}
	if i1.Drops == 0 || a1 == 0 {
		t.Fatalf("40%% loss dropped %d and delivered %d of %d", i1.Drops, a1, f1.Messages)
	}
	a3, _, _ := run(43)
	if a3 == a1 {
		t.Logf("seeds 42 and 43 delivered the same count %d (possible but unlikely)", a1)
	}
}

func TestCrashTakesNodeOffFabric(t *testing.T) {
	e, c := newCluster(t, 7, 2, smm.SMMShort)
	// Arm only the crash target's driver: a running driver re-arms after
	// every SMI, so an armed driver on a surviving node would keep the
	// event queue alive forever.
	c.Nodes[1].SMI.Start()
	var s faults.Schedule
	s.Add(faults.Fault{Kind: faults.Crash, Node: 1, Start: 10 * sim.Millisecond, Duration: 30 * sim.Millisecond})
	inj, err := c.Inject(s)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.FaultsPending() {
		t.Error("armed schedule reports no pending events")
	}
	type probe struct {
		down    bool
		running bool
	}
	var during, after probe
	e.At(20*sim.Millisecond, func() {
		during = probe{down: inj.NodeDown(1), running: c.Nodes[1].SMI.Running()}
	})
	e.At(50*sim.Millisecond, func() {
		after = probe{down: inj.NodeDown(1), running: c.Nodes[1].SMI.Running()}
	})
	delivered := false
	e.At(15*sim.Millisecond, func() {
		c.Fabric.Deliver(0, 1, 256, func() { delivered = true })
	})
	e.Run()
	if !during.down || during.running {
		t.Errorf("during crash: down=%v smiRunning=%v, want true/false", during.down, during.running)
	}
	if after.down {
		t.Error("node still down after crash expiry")
	}
	if after.running {
		t.Error("SMI driver rearmed itself across a reboot")
	}
	if delivered {
		t.Error("message delivered to a crashed node")
	}
	if inj.FaultsPending() {
		t.Error("events still pending after the schedule played out")
	}
	if st := inj.Stats(); st.Started != 1 || st.Ended != 1 || st.Drops == 0 {
		t.Errorf("injector stats %+v, want 1 start, 1 end, >0 drops", st)
	}
}

func TestStormReconfiguresAndRestores(t *testing.T) {
	e, c := newCluster(t, 9, 1, smm.SMMNone) // baseline driver idle
	var s faults.Schedule
	s.Add(faults.StormAt(0, 10*sim.Millisecond, 200*sim.Millisecond, 5))
	if _, err := c.Inject(s); err != nil {
		t.Fatal(err)
	}
	var duringRunning, afterRunning bool
	e.At(100*sim.Millisecond, func() { duringRunning = c.Nodes[0].SMI.Running() })
	e.At(300*sim.Millisecond, func() { afterRunning = c.Nodes[0].SMI.Running() })
	e.At(400*sim.Millisecond, func() {}) // keep the clock moving past the probes
	e.Run()
	if !duringRunning {
		t.Error("SMI driver idle during storm")
	}
	if afterRunning {
		t.Error("SMI driver still armed after the storm (baseline was SMM0)")
	}
	if n := c.Nodes[0].SMM.Stats().Count; n == 0 {
		t.Error("storm injected no SMIs")
	}
	if cfg := c.Nodes[0].SMI.Config(); cfg.Level != smm.SMMNone {
		t.Errorf("driver config not restored: %+v", cfg)
	}
}

func TestDegradeSlowsLink(t *testing.T) {
	elapsed := func(seed int64, degrade bool) sim.Time {
		e, c := newCluster(t, seed, 2, smm.SMMNone)
		if degrade {
			var s faults.Schedule
			s.Add(faults.DegradeNodeLinks(1, 0, 0, 8, sim.Millisecond))
			if _, err := c.Inject(s); err != nil {
				t.Fatal(err)
			}
		}
		var at sim.Time
		// Deliver from an event so the fault's activation (an event at
		// t=0) is already in force.
		e.At(sim.Microsecond, func() {
			c.Fabric.Deliver(0, 1, 1<<20, func() { at = e.Now() })
		})
		e.Run()
		if at == 0 {
			t.Fatal("message never arrived")
		}
		return at
	}
	clean := elapsed(1, false)
	slow := elapsed(1, true)
	if slow < 4*clean {
		t.Fatalf("degraded delivery %v vs clean %v; want >= 4x slower", slow, clean)
	}
}
