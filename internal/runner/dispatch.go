// Analytic fast-path dispatch: for cell regions where the closed-form
// model is proven within tolerance by the residual gate, the dispatcher
// serves Measurements without discrete simulation and falls back to
// internal/sim everywhere else.
//
// The inversion of internal/analytic works in two tiers:
//
//   - auto (exact): a region — every cell sharing a spec shape modulo
//     name/seed/runs — is certified once by simulating a probe
//     repetition, simulating a shadow repetition at an unrelated seed
//     and requiring the two to be byte-identical modulo the serialized
//     seed (the empirical proof that the region is seed-independent:
//     steady-state cells consume no engine randomness), and gating the
//     probe against the closed-form prediction with the analytic
//     residual machinery. Certified regions serve every further
//     repetition by replication, which is byte-identical to simulating
//     it; rejected regions simulate every cell.
//   - model (approximate, opt-in): the same certification, but served
//     cells carry the closed-form predicted value itself instead of the
//     probe's simulated value. Results are within the residual
//     tolerance of a simulation but not byte-identical, so this mode is
//     never a default and is excluded from golden comparisons.
//
// Only spec shapes that are provably steady-state are eligible at all:
// no SMM activity, no fault plan, and a workload that registered the
// replication hooks (EP-style embarrassingly-parallel phases and
// steady-state sweeps; see Workload.Replicate). Every decision — hit,
// miss with reason, certification with residual evidence — is traced on
// the obs bus and aggregated for the run manifest so smivalidate can
// audit exactly what the fast path did.
package runner

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"smistudy/internal/analytic"
	"smistudy/internal/obs"
	"smistudy/internal/scenario"
)

// FastPathMode selects how the dispatcher treats eligible regions.
type FastPathMode string

// Fast-path modes.
const (
	// FastOff never dispatches; every cell simulates.
	FastOff FastPathMode = "off"
	// FastAuto serves certified regions by exact replication —
	// byte-identical to simulating, proven per region at runtime.
	FastAuto FastPathMode = "auto"
	// FastModel serves certified regions with the closed-form predicted
	// value (approximate; opt-in only).
	FastModel FastPathMode = "model"
)

// ParseFastPathMode validates a -fastpath flag value.
func ParseFastPathMode(s string) (FastPathMode, error) {
	switch FastPathMode(s) {
	case "", FastOff:
		return FastOff, nil
	case FastAuto:
		return FastAuto, nil
	case FastModel:
		return FastModel, nil
	}
	return "", fmt.Errorf("unknown fast-path mode %q (want off, auto or model)", s)
}

// DefaultResidualTol is the multiplicative tolerance the residual gate
// certifies regions against: the probe's simulated mean must lie within
// [1/(1+tol), 1+tol] of the closed-form prediction.
const DefaultResidualTol = 0.25

// shadowSeedOffset separates the shadow repetition's seed from the
// probe's. Any non-zero offset works — the certification *requires*
// the results to be identical — but a large odd constant keeps the two
// seeds unrelated even under the engine's seed derivation.
const shadowSeedOffset = 1000003

// minRegionRuns is the smallest repetition count worth certifying for:
// certification costs two simulations (probe + shadow), so a region
// serving fewer repetitions than that would be a net pessimization.
const minRegionRuns = 2

// region is the dispatcher's per-region certification record. The
// first cell of a region claims it and certifies while later cells
// block on ready; after close(ready) the record is immutable.
type region struct {
	ready    chan struct{}
	ok       bool
	reason   string // rejection reason when !ok
	proto    Measurement
	residual analytic.Residual
}

// Dispatcher decides, per dispatched cell, whether the analytic fast
// path serves it. One Dispatcher spans an entire invocation (all sweeps
// of a smibench run, every artifact of a smivalidate run): regions are
// keyed by the full spec shape, so evidence cached for one sweep is
// valid for every other cell of the same shape. Safe for concurrent use
// by any number of sweep workers.
type Dispatcher struct {
	mode FastPathMode
	tol  float64

	mu      sync.Mutex
	regions map[string]*region
	reasons map[string]int64

	hits      int64
	misses    int64
	probes    int64
	shadows   int64
	certified int64
	rejected  int64
}

// NewDispatcher builds a dispatcher for the given mode. tol ≤ 0 selects
// DefaultResidualTol. A FastOff dispatcher is valid and never serves.
func NewDispatcher(mode FastPathMode, tol float64) *Dispatcher {
	if tol <= 0 {
		tol = DefaultResidualTol
	}
	return &Dispatcher{
		mode:    mode,
		tol:     tol,
		regions: map[string]*region{},
		reasons: map[string]int64{},
	}
}

// Mode reports the dispatcher's mode.
func (d *Dispatcher) Mode() FastPathMode {
	if d == nil {
		return FastOff
	}
	return d.mode
}

// Stats snapshots the dispatcher's accounting as the manifest section
// smivalidate audits.
func (d *Dispatcher) Stats() *obs.FastPathStats {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &obs.FastPathStats{
		Mode:      string(d.mode),
		Hits:      atomic.LoadInt64(&d.hits),
		Misses:    atomic.LoadInt64(&d.misses),
		Probes:    atomic.LoadInt64(&d.probes),
		Shadows:   atomic.LoadInt64(&d.shadows),
		Regions:   int64(len(d.regions)),
		Certified: atomic.LoadInt64(&d.certified),
		Rejected:  atomic.LoadInt64(&d.rejected),
	}
	if len(d.reasons) > 0 {
		st.MissReasons = make(map[string]int64, len(d.reasons))
		for k, v := range d.reasons {
			st.MissReasons[k] = v
		}
	}
	return st
}

// miss records a declined dispatch with its reason.
func (d *Dispatcher) miss(x Exec, reason string) {
	atomic.AddInt64(&d.misses, 1)
	d.mu.Lock()
	d.reasons[reason]++
	d.mu.Unlock()
	x.Stats.addMiss()
	if x.Tracer != nil {
		x.Tracer.Emit(obs.Event{Type: obs.EvFastPathMiss, Node: -1, Track: -1, Name: reason})
	}
}

// hit records a served dispatch.
func (d *Dispatcher) hit(x Exec, r *region, how string) {
	atomic.AddInt64(&d.hits, 1)
	x.Stats.addHit()
	if x.Tracer != nil {
		x.Tracer.Emit(obs.Event{
			Type: obs.EvFastPathHit, Node: -1, Track: -1, Name: how,
			A: logErrPPM(r.residual), B: int64(d.tol * 1e6),
		})
	}
}

// logErrPPM encodes a residual's log error in parts-per-million for the
// integer event fields.
func logErrPPM(r analytic.Residual) int64 {
	le := r.LogError()
	if math.IsInf(le, 1) {
		return -1
	}
	return int64(le * 1e6)
}

// eligible reports whether the dispatcher may serve this cell, with the
// recorded reason when it may not. Only steady-state shapes qualify:
// the proof obligations (seed independence, closed-form coverage) hold
// exactly when no SMM activity and no fault plan perturb the run.
func eligible(sp scenario.Spec, x Exec, w Workload) (bool, string) {
	if w.Replicate == nil || w.Predict == nil || w.Seconds == nil {
		return false, "workload"
	}
	if eff := sp.EffectiveSMM(); !(eff.Level == "" || eff.Level == "none") || eff.IntervalMS != 0 {
		return false, "smm"
	}
	if len(sp.JitterSources()) > 0 {
		return false, "noise"
	}
	if sp.Faults.Active() {
		return false, "faults"
	}
	if runsHint(sp, x) < minRegionRuns {
		return false, "runs"
	}
	return true, ""
}

// runsHint is the number of sibling repetitions this cell's region is
// expected to serve: the spec's own run count, or the pre-split parent
// count the durable layer forwards for single-repetition cells.
func runsHint(sp scenario.Spec, x Exec) int {
	if x.RunsHint > 0 {
		return x.RunsHint
	}
	if sp.Runs > 0 {
		return sp.Runs
	}
	return 1
}

// regionKey is the canonical spec shape modulo the per-repetition axes:
// name, seed and run count are zeroed, everything else (workload,
// machine, SMM plan, params) keys the region.
func regionKey(sp scenario.Spec) (string, error) {
	k := sp
	k.Name = ""
	k.Seed = 0
	k.Runs = 0
	data, err := k.JSON()
	return string(data), err
}

// try is the dispatch decision for one cell. served reports whether m
// is the cell's measurement; when false the caller simulates normally.
// Certification failures are misses, never errors: the fast path can
// decline, it can never fail a run.
func (d *Dispatcher) try(sp scenario.Spec, x Exec, w Workload) (m Measurement, served bool) {
	if d == nil || d.mode == FastOff {
		return Measurement{}, false
	}
	if ok, reason := eligible(sp, x, w); !ok {
		d.miss(x, reason)
		return Measurement{}, false
	}
	key, err := regionKey(sp)
	if err != nil {
		d.miss(x, "key")
		return Measurement{}, false
	}
	r := d.certifyOnce(key, sp, x, w)
	if !r.ok {
		d.miss(x, r.reason)
		return Measurement{}, false
	}
	m, err = d.serve(sp, x, w, r)
	if err != nil {
		d.miss(x, "serve")
		return Measurement{}, false
	}
	how := "replicate"
	if sp.Runs > 1 {
		how = "merge"
	}
	if d.mode == FastModel {
		how = "model"
	}
	d.hit(x, r, how)
	return m, true
}

// certifyOnce returns the region record for key, certifying it on first
// use. Concurrent cells of one region block until the claiming cell's
// certification finishes; the two simulations it costs are charged to
// whichever worker got there first.
func (d *Dispatcher) certifyOnce(key string, sp scenario.Spec, x Exec, w Workload) *region {
	d.mu.Lock()
	r, ok := d.regions[key]
	if ok {
		d.mu.Unlock()
		<-r.ready
		return r
	}
	r = &region{ready: make(chan struct{})}
	d.regions[key] = r
	d.mu.Unlock()
	d.certify(r, sp, x, w)
	close(r.ready)
	return r
}

// certify runs the region's proof obligations: probe simulation, shadow
// simulation at an unrelated seed with byte-identical replication, and
// the residual gate against the closed-form prediction.
func (d *Dispatcher) certify(r *region, sp scenario.Spec, x Exec, w Workload) {
	reject := func(reason string) {
		r.ok = false
		r.reason = reason
		atomic.AddInt64(&d.rejected, 1)
		if x.Tracer != nil {
			x.Tracer.Emit(obs.Event{Type: obs.EvFastPathCertify, Node: -1, Track: -1,
				Name: "rejected:" + reason, A: logErrPPM(r.residual), B: int64(d.tol * 1e6)})
		}
	}

	probe := sp
	probe.Runs = 1
	if probe.Seed == 0 {
		probe.Seed = 1
	}
	sx := d.simExec(x)
	atomic.AddInt64(&d.probes, 1)
	pm, err := w.Run(probe, sx)
	if err != nil {
		reject("probe_error")
		return
	}

	shadow := probe
	shadow.Seed = probe.Seed + shadowSeedOffset
	atomic.AddInt64(&d.shadows, 1)
	sm, err := w.Run(shadow, sx)
	if err != nil {
		reject("shadow_error")
		return
	}
	// Both measurements are compared unstamped, exactly as w.Run
	// returned them; RunWith stamps Name/Workload only on what it
	// finally returns.
	rep, err := w.Replicate(probe, sm)
	if err != nil {
		reject("replicate_error")
		return
	}
	pj, err1 := pm.JSON()
	rj, err2 := rep.JSON()
	if err1 != nil || err2 != nil {
		reject("encode_error")
		return
	}
	if !bytes.Equal(pj, rj) {
		reject("seed_dependent")
		return
	}

	simulated, ok := w.Seconds(pm)
	if !ok {
		reject("no_observable")
		return
	}
	predicted, err := w.Predict(probe)
	if err != nil {
		reject("no_model")
		return
	}
	r.residual = analytic.Residual{Simulated: simulated, Predicted: predicted}
	if !r.residual.Within(d.tol) {
		reject("residual")
		return
	}

	r.ok = true
	r.proto = pm
	atomic.AddInt64(&d.certified, 1)
	if x.Tracer != nil {
		x.Tracer.Emit(obs.Event{Type: obs.EvFastPathCertify, Node: -1, Track: -1,
			Name: "certified", A: logErrPPM(r.residual), B: int64(d.tol * 1e6)})
	}
}

// simExec is the execution context certification simulations run under:
// sequential, undispatched (no recursion), with the caller's stats and
// tracer so probe work is accounted and visible.
func (d *Dispatcher) simExec(x Exec) Exec {
	return Exec{Workers: 1, Tracer: x.Tracer, Stats: x.Stats, Shards: x.Shards}
}

// serve builds the cell's measurement from the certified region. In
// auto mode every repetition is replicated from the prototype (multi-
// run cells are synthesized through the workload's own Split/Merge
// arithmetic, which the split tests pin byte-identical to a direct
// run); in model mode the workload synthesizes the closed-form value.
func (d *Dispatcher) serve(sp scenario.Spec, x Exec, w Workload, r *region) (Measurement, error) {
	if d.mode == FastModel {
		if w.Analytic == nil {
			return Measurement{}, fmt.Errorf("runner: workload %s has no analytic synthesis", sp.Workload)
		}
		return w.Analytic(sp, r.residual.Predicted)
	}
	if sp.Runs <= 1 {
		return w.Replicate(sp, r.proto)
	}
	cells := w.Split(sp)
	if len(cells) == 0 || w.Merge == nil {
		return Measurement{}, fmt.Errorf("runner: workload %s cannot split %d runs", sp.Workload, sp.Runs)
	}
	parts := make([]Measurement, len(cells))
	for i, c := range cells {
		p, err := w.Replicate(c, r.proto)
		if err != nil {
			return Measurement{}, err
		}
		parts[i] = p
	}
	return w.Merge(sp, parts)
}

// ReasonsSorted lists recorded miss reasons in deterministic order, for
// rendering.
func (d *Dispatcher) ReasonsSorted() []string {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]string, 0, len(d.reasons))
	for k := range d.reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
