package runner_test

import (
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestNoWiringOutsideRunner enforces the tentpole invariant of the
// scenario/runner refactor: internal/runner is the ONLY place that
// provisions experiment machinery. No non-test source in the root
// package, internal/experiments or cmd/ may construct an engine,
// cluster or MPI world, or start SMI injection, directly — everything
// routes through the runner's entry points. (Model-layer packages and
// tests are out of scope: building small worlds directly is exactly
// what unit tests should do.)
func TestNoWiringOutsideRunner(t *testing.T) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	repo := filepath.Dir(filepath.Dir(filepath.Dir(thisFile))) // internal/runner/ → repo root

	wiring := regexp.MustCompile(
		`\bsim\.New\(|\bcluster\.New\(|\bcluster\.MustNew\(|\bmpi\.NewWorld\(|\bmpi\.MustNewWorld\(|\.StartSMI\(`)

	var scanned, offending []string
	scan := func(dir string) {
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				// Root scan: descend into nothing — internal/ and cmd/ get
				// their own explicit scans below.
				if path != dir {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(repo, path)
			scanned = append(scanned, rel)
			if loc := wiring.FindIndex(data); loc != nil {
				line := 1 + strings.Count(string(data[:loc[0]]), "\n")
				offending = append(offending,
					rel+":"+string(wiring.Find(data))+" (line "+strconv.Itoa(line)+")")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan %s: %v", dir, err)
		}
	}

	scan(repo) // root facade files only (non-recursive)
	scan(filepath.Join(repo, "internal", "experiments"))
	entries, err := os.ReadDir(filepath.Join(repo, "cmd"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			scan(filepath.Join(repo, "cmd", e.Name()))
		}
	}

	if len(scanned) < 10 {
		t.Fatalf("scan looks wrong: only %d files visited (%v)", len(scanned), scanned)
	}
	if len(offending) > 0 {
		t.Fatalf("direct engine/cluster/SMM wiring outside internal/runner:\n  %s",
			strings.Join(offending, "\n  "))
	}
}
