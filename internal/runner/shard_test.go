package runner

import (
	"bytes"
	"testing"

	"smistudy/internal/faults"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func nasJSON(t *testing.T, o NASOptions) []byte {
	t.Helper()
	res, err := RunNAS(o)
	if err != nil {
		t.Fatalf("RunNAS(%+v): %v", o, err)
	}
	m := Measurement{NAS: &res}
	data, err := m.JSON()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// TestShardedEPByteIdentical is the sharding contract: a steady-state
// EP cell run over 2 or 4 engine shards serializes byte-identically to
// the sequential engine.
func TestShardedEPByteIdentical(t *testing.T) {
	base := NASOptions{Bench: nas.EP, Class: nas.ClassA, Nodes: 4, RanksPerNode: 1, Runs: 2, Seed: 1}
	want := nasJSON(t, base)
	for _, shards := range []int{2, 4, 8} {
		o := base
		o.Shards = shards
		if got := nasJSON(t, o); !bytes.Equal(got, want) {
			t.Errorf("shards=%d: result differs from sequential run:\n%s\nvs\n%s", shards, got, want)
		}
	}
}

// TestShardedEPAttemptServes proves the equivalence test above is not
// vacuous: the eligible EP shape really runs sharded, not via fallback.
func TestShardedEPAttemptServes(t *testing.T) {
	o := NASOptions{Bench: nas.EP, Class: nas.ClassA, Nodes: 4, RanksPerNode: 1, Shards: 4}
	if !shardableNAS(o, faults.Schedule{}) {
		t.Fatalf("EP cell unexpectedly ineligible for sharding")
	}
	r, _, events, ok := tryShardedNAS(o, mpi.DefaultParams(), 1)
	if !ok {
		t.Fatalf("sharded EP attempt aborted; want it to serve")
	}
	if r.Ranks != 4 || !r.Verified || r.Time <= 0 {
		t.Fatalf("sharded EP result implausible: %+v", r)
	}
	if events == 0 {
		t.Fatalf("sharded run reported zero engine events")
	}
}

// TestShardedRendezvousFallsBack: BT's face exchanges exceed the eager
// limit, so the sharded attempt must abort on the rendezvous protocol —
// and RunNAS must still produce the sequential bytes via the fallback.
func TestShardedRendezvousFallsBack(t *testing.T) {
	o := NASOptions{Bench: nas.BT, Class: nas.ClassA, Nodes: 4, RanksPerNode: 1, Shards: 4}
	if !shardableNAS(o, faults.Schedule{}) {
		t.Fatalf("BT cell should be eligible (the abort happens at run time)")
	}
	if _, _, _, ok := tryShardedNAS(o, mpi.DefaultParams(), 1); ok {
		t.Fatalf("BT sharded attempt served; want a rendezvous abort")
	}
	base := NASOptions{Bench: nas.BT, Class: nas.ClassA, Nodes: 4, RanksPerNode: 1, Runs: 1, Seed: 1}
	want := nasJSON(t, base)
	sharded := base
	sharded.Shards = 4
	if got := nasJSON(t, sharded); !bytes.Equal(got, want) {
		t.Errorf("BT fallback result differs from sequential run")
	}
}

// TestShardableNASGating enumerates the ineligible shapes.
func TestShardableNASGating(t *testing.T) {
	ok := NASOptions{Bench: nas.EP, Class: nas.ClassA, Nodes: 4, RanksPerNode: 1, Shards: 2}
	cases := []struct {
		name  string
		mut   func(*NASOptions)
		sched faults.Schedule
	}{
		{name: "shards_1", mut: func(o *NASOptions) { o.Shards = 1 }},
		{name: "single_node", mut: func(o *NASOptions) { o.Nodes = 1 }},
		{name: "smm_active", mut: func(o *NASOptions) { o.SMM = smm.SMMShort }},
		{name: "traced", mut: func(o *NASOptions) { o.Tracer = obs.NewBus() }},
		{name: "faulted", mut: func(o *NASOptions) {},
			sched: FaultPlan{DegradeAt: sim.Second, DegradeFor: sim.Second, DegradeSlow: 2}.Schedule()},
	}
	if !shardableNAS(ok, faults.Schedule{}) {
		t.Fatalf("baseline shape should be shardable")
	}
	for _, tc := range cases {
		o := ok
		tc.mut(&o)
		if shardableNAS(o, tc.sched) {
			t.Errorf("%s: want ineligible", tc.name)
		}
	}
}

// TestShardedWithRanksPerNode covers intra-node (loopback) traffic mixed
// with cross-shard traffic: 2 ranks per node keeps messages eager and
// exercises the same-node fast path inside shard windows.
func TestShardedWithRanksPerNode(t *testing.T) {
	base := NASOptions{Bench: nas.EP, Class: nas.ClassS, Nodes: 2, RanksPerNode: 2, Runs: 1, Seed: 1}
	want := nasJSON(t, base)
	sharded := base
	sharded.Shards = 2
	if got := nasJSON(t, sharded); !bytes.Equal(got, want) {
		t.Errorf("rpn=2 sharded result differs from sequential run")
	}
}
