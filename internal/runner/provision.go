package runner

import (
	"smistudy/internal/cluster"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// wireRun scopes tr to one sweep cell and threads it through a freshly
// built engine and cluster: all SMM, scheduler, network and fault events
// flow to it stamped with the run index, and — when tr is a bus — the
// engine's event counters feed its registry. Returns the scoped tracer
// for the caller's own emissions (nil stays nil).
func wireRun(tr obs.Tracer, run int, e *sim.Engine, cl *cluster.Cluster) obs.Tracer {
	if tr == nil {
		return nil
	}
	if b, ok := tr.(*obs.Bus); ok {
		e.SetProbe(b)
	}
	rt := obs.WithRun(tr, int32(run))
	cl.SetTracer(rt)
	return rt
}

// cellStart marks a sweep cell's beginning on the bus; seed identifies
// the cell in the trace.
func cellStart(rt obs.Tracer, seed int64) {
	if rt != nil {
		rt.Emit(obs.Event{Type: obs.EvSweepCellStart, Node: -1, A: seed})
	}
}

// cellFinish marks a sweep cell's end; the span covers the whole run.
func cellFinish(rt obs.Tracer, e *sim.Engine, seed int64) {
	if rt != nil {
		rt.Emit(obs.Event{Time: e.Now(), Dur: e.Now(), Type: obs.EvSweepCellFinish, Node: -1, A: seed})
	}
}
