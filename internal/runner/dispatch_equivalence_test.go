package runner

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"smistudy/internal/scenario"
)

// TestScenarioDispatchEquivalence is the dispatch-equivalence table of
// the fast-path/sharding contract: every example scenario, run under
// -fastpath off and auto and forced shard counts 1, 2 and 4, serializes
// byte-identically — auto mode and sharding either decline (and the
// sequential path trivially matches) or serve with provably identical
// bytes. Scenarios whose runs fail (the faulted example) must fail
// identically in every variant.
func TestScenarioDispatchEquivalence(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			sp, err := scenario.Load(file)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			type variant struct {
				name     string
				fastpath FastPathMode
				shards   int
			}
			variants := []variant{
				{"off_shards1", FastOff, 1},
				{"off_shards2", FastOff, 2},
				{"off_shards4", FastOff, 4},
				{"auto_shards1", FastAuto, 1},
				{"auto_shards2", FastAuto, 2},
				{"auto_shards4", FastAuto, 4},
			}
			var want []byte
			var wantErr string
			for i, v := range variants {
				x := Exec{Workers: 1, Shards: v.shards}
				if v.fastpath != FastOff {
					x.Dispatch = NewDispatcher(v.fastpath, 0)
				}
				m, err := RunWith(sp, x)
				errStr := ""
				if err != nil {
					errStr = err.Error()
				}
				data, jerr := m.JSON()
				if jerr != nil {
					t.Fatalf("%s: encode: %v", v.name, jerr)
				}
				if i == 0 {
					want, wantErr = data, errStr
					continue
				}
				if errStr != wantErr {
					t.Errorf("%s: error %q, want %q", v.name, errStr, wantErr)
				}
				if !bytes.Equal(data, want) {
					t.Errorf("%s: measurement differs from off_shards1 baseline", v.name)
				}
			}
		})
	}
}

// TestScenarioModelResidual: on the steady-state example the opt-in
// approximate tier must land within the dispatcher's residual tolerance
// of the simulated baseline — the bound the certification gate enforces
// before any analytic serve.
func TestScenarioModelResidual(t *testing.T) {
	sp, err := scenario.Load(filepath.Join("..", "..", "examples", "scenarios", "steady-ep.json"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	base, err := RunWith(sp, Exec{Workers: 1})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	d := NewDispatcher(FastModel, 0)
	got, err := RunWith(sp, Exec{Workers: 1, Dispatch: d})
	if err != nil {
		t.Fatalf("model tier: %v", err)
	}
	if d.Stats().Hits == 0 {
		t.Fatalf("model tier declined the steady-state scenario: %+v", d.Stats().MissReasons)
	}
	if base.NAS == nil || got.NAS == nil {
		t.Fatalf("missing NAS sections")
	}
	logErr := math.Abs(math.Log(got.NAS.Seconds() / base.NAS.Seconds()))
	if limit := math.Log(1 + DefaultResidualTol); logErr > limit {
		t.Errorf("model residual |log err| = %.4f exceeds tolerance %.4f (model %.6fs vs simulated %.6fs)",
			logErr, limit, got.NAS.Seconds(), base.NAS.Seconds())
	}
}
