package runner

import "sync/atomic"

// ExecStats aggregates execution accounting across every cell an
// invocation runs: how many cells were dispatched, how many discrete
// simulations actually executed, how many engine events fired, and how
// the analytic fast path resolved. Like Exec itself the stats are
// execution-only — they never enter a Measurement, so stored results
// stay a pure function of the measured cell. All fields are updated
// with atomic adds; one ExecStats may be shared by any number of
// concurrent workers.
type ExecStats struct {
	// Cells counts RunWith invocations (one per dispatched cell).
	Cells int64
	// Runs counts simulated repetitions that actually built an engine.
	Runs int64
	// Events counts engine events fired across all simulated runs.
	Events int64
	// FastHits counts cells served by the analytic fast path without
	// discrete simulation; FastMisses counts cells that simulated.
	FastHits   int64
	FastMisses int64
}

// AddRun records one executed simulation repetition and its engine's
// event count.
func (s *ExecStats) AddRun(events uint64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.Runs, 1)
	atomic.AddInt64(&s.Events, int64(events))
}

func (s *ExecStats) addCell() {
	if s != nil {
		atomic.AddInt64(&s.Cells, 1)
	}
}

func (s *ExecStats) addHit() {
	if s != nil {
		atomic.AddInt64(&s.FastHits, 1)
	}
}

func (s *ExecStats) addMiss() {
	if s != nil {
		atomic.AddInt64(&s.FastMisses, 1)
	}
}

// CellsValue returns the current cell count (atomically).
func (s *ExecStats) CellsValue() int64 { return atomic.LoadInt64(&s.Cells) }

// EventsValue returns the current event count (atomically).
func (s *ExecStats) EventsValue() int64 { return atomic.LoadInt64(&s.Events) }

// HitsValue returns the current fast-path hit count (atomically).
func (s *ExecStats) HitsValue() int64 { return atomic.LoadInt64(&s.FastHits) }

// MissesValue returns the current fast-path miss count (atomically).
func (s *ExecStats) MissesValue() int64 { return atomic.LoadInt64(&s.FastMisses) }

// RunsValue returns the current executed-repetition count (atomically).
func (s *ExecStats) RunsValue() int64 { return atomic.LoadInt64(&s.Runs) }
