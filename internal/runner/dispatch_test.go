package runner

import (
	"bytes"
	"math"
	"testing"

	"smistudy/internal/scenario"
	"smistudy/internal/sim"
)

func epSpec(runs int) scenario.Spec {
	return scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 2, RanksPerNode: 1},
		Runs:     runs,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
}

// The fast path must be invisible in auto mode: a multi-run EP cell
// served by replication is byte-identical to the same cell simulated
// with the dispatcher off.
func TestFastPathAutoByteIdentical(t *testing.T) {
	sp := epSpec(6)

	base, err := RunWith(sp, Exec{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	bj, err := base.JSON()
	if err != nil {
		t.Fatalf("baseline json: %v", err)
	}

	d := NewDispatcher(FastAuto, 0)
	st := &ExecStats{}
	fast, err := RunWith(sp, Exec{Dispatch: d, Stats: st})
	if err != nil {
		t.Fatalf("fastpath: %v", err)
	}
	fj, err := fast.JSON()
	if err != nil {
		t.Fatalf("fastpath json: %v", err)
	}
	if !bytes.Equal(bj, fj) {
		t.Fatalf("fast-path measurement diverged from simulation:\n-- off --\n%s\n-- auto --\n%s", bj, fj)
	}

	fs := d.Stats()
	if fs.Hits != 1 || fs.Misses != 0 {
		t.Fatalf("want 1 hit / 0 misses, got %d/%d (%v)", fs.Hits, fs.Misses, fs.MissReasons)
	}
	if fs.Probes != 1 || fs.Shadows != 1 || fs.Certified != 1 || fs.Rejected != 0 {
		t.Fatalf("certification accounting off: %+v", fs)
	}
	// The probe and shadow are the only two simulated repetitions; the
	// other four of the six were replicated.
	if got := st.RunsValue(); got != 2 {
		t.Fatalf("want 2 simulated runs (probe+shadow), got %d", got)
	}
	if st.EventsValue() == 0 {
		t.Fatal("probe simulations should have accumulated engine events")
	}
	if st.HitsValue() != 1 || st.MissesValue() != 0 {
		t.Fatalf("exec stats want 1 hit / 0 misses, got %d/%d", st.HitsValue(), st.MissesValue())
	}
}

// A second cell of the same region reuses the cached certification:
// no further probe or shadow simulations.
func TestFastPathRegionEvidenceCached(t *testing.T) {
	d := NewDispatcher(FastAuto, 0)
	sp := epSpec(6)
	if _, err := RunWith(sp, Exec{Dispatch: d}); err != nil {
		t.Fatal(err)
	}
	// Different name and seed, same shape: same region.
	sp2 := sp
	sp2.Name = "again"
	sp2.Seed = 41
	if _, err := RunWith(sp2, Exec{Dispatch: d}); err != nil {
		t.Fatal(err)
	}
	fs := d.Stats()
	if fs.Probes != 1 || fs.Shadows != 1 || fs.Regions != 1 {
		t.Fatalf("region evidence not cached: %+v", fs)
	}
	if fs.Hits != 2 {
		t.Fatalf("want 2 hits, got %d", fs.Hits)
	}
}

// Ineligible shapes decline with the documented reasons and fall back
// to simulation untouched.
func TestFastPathDeclineReasons(t *testing.T) {
	cases := []struct {
		name   string
		spec   scenario.Spec
		reason string
	}{
		{"smm", func() scenario.Spec {
			sp := epSpec(6)
			sp.SMM.Level = "short"
			return sp
		}(), "smm"},
		{"faults", func() scenario.Spec {
			sp := epSpec(6)
			// A degrade scheduled after the run ends: active plan, no
			// effect on the runs themselves.
			sp.Faults = &scenario.FaultPlan{DegradeAtS: 1000, DegradeForS: 1, DegradeSlow: 2}
			return sp
		}(), "faults"},
		{"runs", epSpec(1), "runs"},
		{"workload", scenario.Spec{
			Workload: "convolve",
			Runs:     6,
			Params:   scenario.Params{Cache: "friendly"},
		}, "workload"},
		{"no_model", func() scenario.Spec {
			sp := epSpec(6)
			sp.Params.Bench = "BT" // seed-independent but outside the EP closed form
			sp.Machine.Nodes = 1
			return sp
		}(), "no_model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDispatcher(FastAuto, 0)
			if _, err := RunWith(tc.spec, Exec{Dispatch: d}); err != nil {
				t.Fatalf("run: %v", err)
			}
			fs := d.Stats()
			if fs.Hits != 0 {
				t.Fatalf("ineligible spec was served (%+v)", fs)
			}
			if fs.MissReasons[tc.reason] == 0 {
				t.Fatalf("want miss reason %q, got %v", tc.reason, fs.MissReasons)
			}
		})
	}
}

// The durable layer's RunsHint keeps split single-repetition cells
// eligible: the region decision follows the parent's run count.
func TestFastPathRunsHint(t *testing.T) {
	d := NewDispatcher(FastAuto, 0)
	parent := epSpec(6)
	w, _ := Lookup("nas")
	for _, cell := range w.Split(parent) {
		if _, err := RunWith(cell, Exec{Dispatch: d, RunsHint: parent.Runs}); err != nil {
			t.Fatal(err)
		}
	}
	fs := d.Stats()
	if fs.Hits != 6 || fs.Probes != 1 || fs.Shadows != 1 {
		t.Fatalf("want 6 hits from one certification, got %+v", fs)
	}
}

// Model mode serves the closed-form prediction itself: the residual
// gate bounds its distance from the simulated value.
func TestFastPathModelMode(t *testing.T) {
	sp := epSpec(6)
	base, err := RunWith(sp, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(FastModel, 0)
	got, err := RunWith(sp, Exec{Dispatch: d})
	if err != nil {
		t.Fatal(err)
	}
	if got.NAS == nil || len(got.NAS.Times) != 6 {
		t.Fatalf("model measurement malformed: %+v", got.NAS)
	}
	predicted, err := predictNASSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got.NAS.MeanTime != sim.FromSeconds(predicted) {
		t.Fatalf("model mean %v != prediction %v", got.NAS.MeanTime, sim.FromSeconds(predicted))
	}
	ratio := got.NAS.Seconds() / base.NAS.Seconds()
	if tol := 1 + DefaultResidualTol; ratio > tol || ratio < 1/tol {
		t.Fatalf("model value %.4fs outside tolerance of simulated %.4fs", got.NAS.Seconds(), base.NAS.Seconds())
	}
}

// An over-tight tolerance rejects the region on the residual gate and
// the sweep silently simulates — declining must never fail a run.
func TestFastPathResidualReject(t *testing.T) {
	d := NewDispatcher(FastAuto, 1e-12)
	sp := epSpec(6)
	m, err := RunWith(sp, Exec{Dispatch: d})
	if err != nil {
		t.Fatal(err)
	}
	if m.NAS == nil || len(m.NAS.Times) != 6 {
		t.Fatal("fallback simulation did not run")
	}
	fs := d.Stats()
	if fs.Rejected != 1 || fs.Certified != 0 {
		t.Fatalf("want residual rejection, got %+v", fs)
	}
	if fs.MissReasons["residual"] == 0 {
		t.Fatalf("want residual miss reason, got %v", fs.MissReasons)
	}
}

// The EP closed form is exact for one solo rank (the calibration
// identity) and within the gate for small clusters.
func TestPredictEPCloseToSimulation(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		sp := epSpec(1)
		sp.Machine.Nodes = nodes
		predicted, err := predictNASSpec(sp)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		m, err := RunWith(sp, Exec{})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		le := math.Abs(math.Log(m.NAS.Seconds() / predicted))
		if le > math.Log(1+DefaultResidualTol) {
			t.Fatalf("nodes=%d: prediction %.4fs vs simulated %.4fs (log error %.4f)",
				nodes, predicted, m.NAS.Seconds(), le)
		}
	}
}
