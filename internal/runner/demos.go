package runner

import (
	"fmt"

	"smistudy/internal/cluster"
	"smistudy/internal/kernel"
	"smistudy/internal/nas"
	"smistudy/internal/noise"
	"smistudy/internal/obs"
	"smistudy/internal/perturb"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
	"smistudy/internal/trace"
)

// DetectOptions configures the SMI detector demonstration.
type DetectOptions struct {
	Level         smm.Level
	SMIIntervalMS int
	Duration      sim.Time
	Seed          int64
	// Jitter provisions OS-jitter noise sources alongside (or instead
	// of) the SMI driver, so the detector can be scored against a
	// multi-family ground truth.
	Jitter []perturb.JitterConfig
	// Tracer, when non-nil, receives the run's observability events —
	// notably the ground-truth SMM episodes, which cmd/smidetect
	// overlays against the detector's findings.
	Tracer obs.Tracer
}

// DetectSMIs runs the hwlat-style spin-loop detector on a machine with
// the given injection and scores it against ground truth.
func DetectSMIs(o DetectOptions) noise.DetectorReport {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	interval := o.SMIIntervalMS
	if interval <= 0 {
		interval = 1000
	}
	smi := smm.DriverConfig{}
	if o.Level != smm.SMMNone {
		smi = smm.DriverConfig{Level: o.Level, PeriodJiffies: uint64(interval), PhaseJitter: true}
	}
	e := sim.New(seed)
	cp := cluster.R410(smi)
	cp.Node.Jitter = jitterForRun(o.Jitter, seed)
	cl := cluster.MustNew(e, cp)
	wireRun(o.Tracer, 0, e, cl)
	cl.StartSMI()
	return noise.RunDetector(cl, noise.DetectorConfig{Duration: o.Duration})
}

// AttributeNAS runs an EP-style workload under long SMIs and reports the
// per-task time misattribution a profiler would commit (§II's warning to
// tool developers).
func AttributeNAS(seed int64) trace.Attribution {
	if seed == 0 {
		seed = 1
	}
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.Wyeast(1, false, smm.SMMLong))
	cl.StartSMI()
	node := cl.Nodes[0]
	var tasks []*kernel.Task
	remaining := 4
	for i := 0; i < 4; i++ {
		tasks = append(tasks, node.Kernel.Spawn(fmt.Sprintf("rank%d", i), nas.Profile(nas.EP), func(t *kernel.Task) {
			t.Compute(1e10)
			remaining--
			if remaining == 0 {
				cl.Eng.Stop()
			}
		}))
	}
	cl.Eng.Run()
	return trace.Attribute(node, tasks)
}
