// Package runner is the single engine-provisioning path of the study.
// Every facade function in the root package, every experiment sweep and
// every CLI ultimately executes here: a workload registered in this
// package builds its simulation engine, wires the SMM driver, fault
// schedule, observability probe and tracer in one place, and runs its
// repetitions through parsweep with per-run derived seeds.
//
// There are two ways in:
//
//   - Typed entry points (RunNAS, RunConvolve, RunUnixBench, RunRIM,
//     MeasureEnergy, MeasureClockDrift, ProfileWorkload, ...) keep exact
//     sim.Time parameters for programmatic callers — the root package's
//     facades are aliases and one-line delegations to these.
//   - Run / RunWith execute a declarative scenario.Spec by lowering it
//     onto the same typed entry points via the workload registry, so a
//     JSON file measures byte-for-byte what the equivalent Go call
//     measures.
package runner

import (
	"errors"
	"fmt"

	"smistudy/internal/nas"
	"smistudy/internal/obs"
	"smistudy/internal/perturb"
	"smistudy/internal/scenario"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// ErrInvalidSpec marks scenario rejections — unknown workloads,
// unparsable parameters, contradictory machine shapes — so CLIs can
// map them to usage errors (exit 2) instead of runtime failures.
var ErrInvalidSpec = errors.New("invalid scenario")

// invalidf wraps a rejection in ErrInvalidSpec.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInvalidSpec}, args...)...)
}

// Exec carries execution-only concerns that cannot change a
// measurement's value: how many OS threads fan the repetitions and
// where observability events go. They live outside scenario.Spec so a
// spec stays a complete description of *what* was measured.
type Exec struct {
	// Workers fans independent repetitions over this many OS threads
	// (each run owns a fresh engine). ≤ 1 runs sequentially; any value
	// yields bit-identical results.
	Workers int
	// Tracer, when non-nil, receives every run's observability events,
	// stamped with per-run indices. Must be concurrency-safe (an
	// *obs.Bus is) when Workers > 1.
	Tracer obs.Tracer
	// Stats, when non-nil, accumulates execution accounting (cells,
	// simulated runs, engine events, fast-path hits/misses) across every
	// cell run under it. Shared safely by concurrent workers.
	Stats *ExecStats
	// Dispatch, when non-nil, is the analytic fast-path dispatcher
	// consulted before any engine is built (see dispatch.go). Nil means
	// -fastpath off: every cell simulates.
	Dispatch *Dispatcher
	// Shards > 1 partitions a single cell's per-node event streams over
	// that many engine shards running on separate OS threads, with a
	// deterministic cross-shard merge at communication boundaries.
	// Cells whose shape cannot be sharded byte-identically (SMM
	// activity, faults, cross-shard hazards detected mid-run) fall back
	// to the sequential engine automatically, so any value yields
	// bit-identical results.
	Shards int
	// RunsHint tells the dispatcher how many sibling repetitions the
	// cell's region is expected to serve when the spec itself no longer
	// says (the durable layer splits multi-run specs into Runs=1 cells
	// before dispatch). Zero means "trust sp.Runs".
	RunsHint int
}

// Run executes a scenario spec through the workload registry with
// default execution settings (sequential, untraced).
func Run(sp scenario.Spec) (Measurement, error) {
	return RunWith(sp, Exec{})
}

// RunWith executes a scenario spec through the workload registry. The
// returned Measurement has exactly one workload section populated; on
// error it may still carry a partial section (fault-scenario NAS runs
// report their transport accounting).
func RunWith(sp scenario.Spec, x Exec) (Measurement, error) {
	if err := Validate(sp); err != nil {
		return Measurement{}, err
	}
	w, _ := Lookup(sp.Workload)
	x.Stats.addCell()
	// Analytic fast path: a certified steady-state region serves the
	// cell without building an engine; everything else simulates. The
	// dispatcher can decline but never fail — a certification problem
	// falls through to the discrete simulation below.
	if m, served := x.Dispatch.try(sp, x, w); served {
		m.Name = sp.Name
		m.Workload = sp.Workload
		return m, nil
	}
	m, err := w.Run(sp, x)
	m.Name = sp.Name
	m.Workload = sp.Workload
	return m, err
}

// Validate checks a spec without running it: the scenario shape rules,
// workload existence, and the workload's own parameter validation.
// Every rejection wraps ErrInvalidSpec. CLIs call this before creating
// any output files so operator typos fail up front.
func Validate(sp scenario.Spec) error {
	if err := sp.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	w, ok := Lookup(sp.Workload)
	if !ok {
		return invalidf("unknown workload %q (have %v)", sp.Workload, Names())
	}
	if w.Validate != nil {
		if err := w.Validate(sp); err != nil {
			return invalidf("workload %s: %v", sp.Workload, err)
		}
	}
	return nil
}

// parseLevel maps a scenario SMM level to the injection level.
func parseLevel(s string) (smm.Level, error) {
	switch s {
	case "", "none":
		return smm.SMMNone, nil
	case "short":
		return smm.SMMShort, nil
	case "long":
		return smm.SMMLong, nil
	}
	return 0, fmt.Errorf("unknown smm.level %q (want none, short or long)", s)
}

// parseBench validates a scenario benchmark name against the modeled
// NAS kernels (the paper's three plus the extended set).
func parseBench(s string) (nas.Benchmark, error) {
	for _, b := range nas.AllBenchmarks {
		if nas.Benchmark(s) == b {
			return b, nil
		}
	}
	return "", fmt.Errorf("unknown params.bench %q (want one of %v)", s, nas.AllBenchmarks)
}

// parseClass validates a scenario problem class.
func parseClass(s string) (nas.Class, error) {
	if len(s) == 1 {
		switch c := nas.Class(s[0]); c {
		case nas.ClassS, nas.ClassA, nas.ClassB, nas.ClassC:
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown params.class %q (want S, A, B or C)", s)
}

// LowerFaults converts a scenario fault plan (float seconds) to the
// runner's exact sim.Time plan. Nil or inactive plans lower to nil so
// quiet runs take the fault-free fast path. Exported so CLIs can
// pre-validate the lowered schedule (an invalid fault flag is an
// operator error, not a fault-scenario outcome).
func LowerFaults(p *scenario.FaultPlan) *FaultPlan {
	if !p.Active() {
		return nil
	}
	return &FaultPlan{
		LossProb:  p.LossProb,
		CrashNode: p.CrashNode, CrashAt: sim.FromSeconds(p.CrashAtS),
		HangNode: p.HangNode, HangAt: sim.FromSeconds(p.HangAtS), HangFor: sim.FromSeconds(p.HangForS),
		StormNode: p.StormNode, StormAt: sim.FromSeconds(p.StormAtS),
		StormFor: sim.FromSeconds(p.StormForS), StormPeriodJiffies: p.StormPeriodJiffies,
		DegradeNode: p.DegradeNode, DegradeAt: sim.FromSeconds(p.DegradeAtS),
		DegradeFor: sim.FromSeconds(p.DegradeForS), DegradeSlow: p.DegradeSlow,
		DegradeLatency: sim.FromSeconds(p.DegradeLatencyS),
	}
}

// LowerJitter converts a spec's osjitter noise entries to the
// perturbation layer's jitter configs (milliseconds/microseconds to
// sim.Time). The returned configs carry the spec-level seed; per-run
// and per-node stream derivation happens at provisioning time so
// serialized options stay free of per-run state.
func LowerJitter(sp scenario.Spec) []perturb.JitterConfig {
	js := sp.JitterSources()
	if len(js) == 0 {
		return nil
	}
	out := make([]perturb.JitterConfig, len(js))
	for i, j := range js {
		out[i] = perturb.JitterConfig{
			Period:   sim.FromSeconds(j.PeriodMS / 1e3),
			Duration: sim.FromSeconds(j.DurationUS / 1e6),
			Jitter:   j.JitterFrac,
			Seed:     j.Seed,
			CPUs:     append([]int(nil), j.CPUs...),
		}
	}
	return out
}

// jitterForRun rebinds jitter configs to one repetition: each source
// mixes the run seed and its list position into its stream seed, so
// repetitions decorrelate the way SMI phase jitter does while staying
// fully replayable.
func jitterForRun(cfgs []perturb.JitterConfig, runSeed int64) []perturb.JitterConfig {
	if len(cfgs) == 0 {
		return nil
	}
	out := make([]perturb.JitterConfig, len(cfgs))
	for i, c := range cfgs {
		c.Seed = perturb.DeriveSeed(c.Seed^runSeed, uint64(i))
		out[i] = c
	}
	return out
}

// noJitter rejects specs that arm osjitter sources for workloads whose
// entry points model SMM noise only (rim, energy, drift, profiler).
func noJitter(sp scenario.Spec) error {
	if len(sp.JitterSources()) > 0 {
		return fmt.Errorf("does not support osjitter noise sources")
	}
	return nil
}

// fixedMachine rejects both osjitter sources and asymmetric SMT shares
// for workloads whose entry points build a fixed machine shape (rim,
// energy, drift, profiler) — silently ignoring either would misreport
// what was measured.
func fixedMachine(sp scenario.Spec) error {
	if err := noJitter(sp); err != nil {
		return err
	}
	if len(sp.Machine.SMTShares) > 0 {
		return fmt.Errorf("does not support machine.smt_shares")
	}
	return nil
}

// specSMTShares validates and copies the machine's asymmetric SMT
// shares (both modeled platforms have four physical cores).
func specSMTShares(sp scenario.Spec) ([]float64, error) {
	if len(sp.Machine.SMTShares) > 4 {
		return nil, fmt.Errorf("machine.smt_shares has %d entries; the modeled machines have 4 physical cores", len(sp.Machine.SMTShares))
	}
	if len(sp.Machine.SMTShares) == 0 {
		return nil, nil
	}
	return append([]float64(nil), sp.Machine.SMTShares...), nil
}

// singleNode rejects spec shapes that make no sense for the R410
// single-node workloads (convolve, unixbench, rim, energy, drift,
// profiler).
func singleNode(sp scenario.Spec) error {
	if sp.Machine.Nodes > 1 {
		return fmt.Errorf("runs on one node (got machine.nodes=%d)", sp.Machine.Nodes)
	}
	if sp.Machine.RanksPerNode > 1 {
		return fmt.Errorf("has no MPI ranks (got machine.ranks_per_node=%d)", sp.Machine.RanksPerNode)
	}
	if sp.Faults.Active() {
		return fmt.Errorf("fault plans apply to the nas workload only")
	}
	if sp.WatchdogS != 0 {
		return fmt.Errorf("the progress watchdog applies to the nas workload only")
	}
	return nil
}

// specCPUs applies the single-node CPU default (the paper's four
// physical cores).
func specCPUs(sp scenario.Spec) int {
	if sp.Machine.CPUs == 0 {
		return 4
	}
	return sp.Machine.CPUs
}
