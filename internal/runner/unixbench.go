package runner

import (
	"fmt"

	"smistudy/internal/cluster"
	"smistudy/internal/obs"
	"smistudy/internal/perturb"
	"smistudy/internal/scenario"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
	"smistudy/internal/ubench"
)

// UnixBenchOptions configures one UnixBench iteration (Figure 2).
type UnixBenchOptions struct {
	CPUs int // online logical CPUs, 1–8
	// SMIIntervalMS is the gap between SMIs in ms; zero disables.
	SMIIntervalMS int
	Level         smm.Level // SMM1 or SMM2 when injecting
	Seed          int64
	// Duration per micro-benchmark window; zero = 4 s.
	Duration sim.Time
	// SMIScale multiplies the SMI duration range when > 0 and ≠ 1 (see
	// NASOptions.SMIScale).
	SMIScale float64
	// Jitter provisions OS-jitter noise sources on the node (see
	// NASOptions.Jitter).
	Jitter []perturb.JitterConfig `json:",omitempty"`
	// SMTShares sets per-physical-core asymmetric SMT slot shares
	// (empty = the symmetric split; see cpu.Params.SMTShares).
	SMTShares []float64 `json:",omitempty"`
	// Tracer, when non-nil, receives the run's observability events.
	// Execution-only: excluded from the serialized measurement.
	Tracer obs.Tracer `json:"-"`
	// Stats, when non-nil, accumulates simulated-run and engine-event
	// counts. Execution-only accounting: cannot change a result.
	Stats *ExecStats `json:"-"`
}

// UnixBenchResult is one iteration's scores.
type UnixBenchResult struct {
	Options UnixBenchOptions
	Score   float64
	Tests   []ubench.TestScore
}

// RunUnixBench executes one UnixBench iteration.
func RunUnixBench(o UnixBenchOptions) (UnixBenchResult, error) {
	if o.CPUs < 1 || o.CPUs > 8 {
		return UnixBenchResult{}, fmt.Errorf("smistudy: UnixBench CPUs = %d, want 1–8", o.CPUs)
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	smi := smm.DriverConfig{}
	if o.SMIIntervalMS > 0 && o.Level != smm.SMMNone {
		smi = smm.DriverConfig{
			Level:         o.Level,
			PeriodJiffies: uint64(o.SMIIntervalMS),
			DurationScale: o.SMIScale,
			PhaseJitter:   true,
		}
	}
	e := sim.New(seed)
	cp := cluster.R410(smi)
	cp.Node.CPU.SMTShares = o.SMTShares
	cp.Node.Jitter = jitterForRun(o.Jitter, seed)
	cl, err := cluster.New(e, cp)
	if err != nil {
		return UnixBenchResult{}, err
	}
	if err := cl.Nodes[0].Kernel.OnlineCPUs(o.CPUs); err != nil {
		return UnixBenchResult{}, err
	}
	rt := wireRun(o.Tracer, 0, e, cl)
	cellStart(rt, seed)
	cl.StartSMI()
	cfg := ubench.DefaultConfig()
	if o.Duration > 0 {
		cfg.Duration = o.Duration
	}
	r := ubench.Run(cl, cfg)
	cellFinish(rt, e, seed)
	o.Stats.AddRun(e.Events())
	return UnixBenchResult{Options: o, Score: r.Score, Tests: r.Tests}, nil
}

func init() {
	Register(Workload{
		Name:     "unixbench",
		Summary:  "UnixBench index run on the R410 machine (Figure 2)",
		Validate: validateUnixBenchSpec,
		Run: func(sp scenario.Spec, x Exec) (Measurement, error) {
			o, err := unixBenchOptions(sp, x)
			if err != nil {
				return Measurement{}, err
			}
			res, err := RunUnixBench(o)
			if err != nil {
				return Measurement{}, err
			}
			return Measurement{UnixBench: &res}, nil
		},
	})
}

func validateUnixBenchSpec(sp scenario.Spec) error {
	_, err := unixBenchOptions(sp, Exec{})
	return err
}

// unixBenchOptions lowers a scenario spec onto the typed UnixBench
// entry point. A UnixBench iteration is a single run; sweeps iterate
// specs with distinct seeds instead of a Runs count.
func unixBenchOptions(sp scenario.Spec, x Exec) (UnixBenchOptions, error) {
	if err := singleNode(sp); err != nil {
		return UnixBenchOptions{}, err
	}
	if sp.Runs > 1 {
		return UnixBenchOptions{}, fmt.Errorf("a UnixBench iteration is one run (got runs=%d); sweep seeds instead", sp.Runs)
	}
	eff := sp.EffectiveSMM()
	level, err := parseLevel(eff.Level)
	if err != nil {
		return UnixBenchOptions{}, err
	}
	// The paper's Figure 2 injects long SMIs; an unstated level with an
	// interval set means exactly that.
	if eff.Level == "" && eff.IntervalMS > 0 {
		level = smm.SMMLong
	}
	shares, err := specSMTShares(sp)
	if err != nil {
		return UnixBenchOptions{}, err
	}
	return UnixBenchOptions{
		CPUs:          specCPUs(sp),
		SMIIntervalMS: eff.IntervalMS,
		Level:         level,
		Seed:          sp.Seed,
		Duration:      sim.FromSeconds(sp.Params.DurationS),
		SMIScale:      eff.SMIScale,
		Jitter:        LowerJitter(sp),
		SMTShares:     shares,
		Tracer:        x.Tracer,
		Stats:         x.Stats,
	}, nil
}
