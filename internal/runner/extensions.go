package runner

import (
	"bytes"
	"fmt"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/energy"
	"smistudy/internal/kernel"
	"smistudy/internal/obs"
	"smistudy/internal/proftool"
	"smistudy/internal/rim"
	"smistudy/internal/scenario"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// This file holds the study's extension workloads: the RIM (security
// introspection) workload that motivates the paper, the energy and
// timekeeping effects established by the prior work it builds on
// (Delgado & Karavanic, IISWC'13), and the profiler-skew demonstration
// aimed at tool developers.

// RIMOptions configures an integrity-measurement interference run.
type RIMOptions struct {
	// PeriodMS between integrity checks (HyperSentry-class agents run
	// ~1/s to ~1/16s). Zero means 1000.
	PeriodMS int
	// MegaBytes measured per check. Zero means 25 (≈100 ms in SMM at
	// the default scan rate — the paper's "long SMI" regime).
	MegaBytes int
	// ChunkKB splits checks into bounded SMIs; zero scans whole
	// measurements in one SMI.
	ChunkKB int
	// WorkSeconds of application compute to push through. Zero means 5.
	WorkSeconds float64
	Seed        int64
}

// RIMResult quantifies the interference of an integrity agent.
type RIMResult struct {
	Options      RIMOptions
	BaseTime     sim.Time // app runtime without the agent
	NoisyTime    sim.Time // app runtime with the agent
	SlowdownPct  float64
	Checks       int      // completed integrity checks during the run
	WorstStall   sim.Time // longest single SMM residency
	CheckLatency sim.Time // worst start-to-finish check latency
}

// RunRIM measures how an SMM-based integrity agent perturbs a
// multithreaded compute application on the R410-class machine.
func RunRIM(o RIMOptions) (RIMResult, error) {
	if o.PeriodMS <= 0 {
		o.PeriodMS = 1000
	}
	if o.MegaBytes <= 0 {
		o.MegaBytes = 25
	}
	if o.WorkSeconds <= 0 {
		o.WorkSeconds = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ChunkKB < 0 {
		return RIMResult{}, fmt.Errorf("smistudy: negative ChunkKB")
	}
	res := RIMResult{Options: o}

	run := func(withAgent bool) (sim.Time, *rim.Agent, *cluster.Cluster, error) {
		e := sim.New(o.Seed)
		cl, err := cluster.New(e, cluster.R410(smm.DriverConfig{}))
		if err != nil {
			return 0, nil, nil, err
		}
		var agent *rim.Agent
		if withAgent {
			agent, err = rim.NewAgent(e, cl.Nodes[0].SMM, rim.Config{
				Period:     sim.Time(o.PeriodMS) * sim.Millisecond,
				Bytes:      int64(o.MegaBytes) << 20,
				ChunkBytes: int64(o.ChunkKB) << 10,
			})
			if err != nil {
				return 0, nil, nil, err
			}
			agent.Start()
		}
		node := cl.Nodes[0]
		work := o.WorkSeconds * node.CPU.Params().BaseHz
		var end sim.Time
		remaining := 4
		for i := 0; i < 4; i++ {
			node.Kernel.Spawn(fmt.Sprintf("app%d", i), cpu.Profile{CPI: 1}, func(t *kernel.Task) {
				t.Compute(work) // WorkSeconds per core: wall time ≈ WorkSeconds
				remaining--
				if remaining == 0 {
					end = t.Gettime()
					e.Stop()
				}
			})
		}
		e.Run()
		return end, agent, cl, nil
	}

	base, _, _, err := run(false)
	if err != nil {
		return res, err
	}
	noisy, agent, cl, err := run(true)
	if err != nil {
		return res, err
	}
	res.BaseTime = base
	res.NoisyTime = noisy
	res.SlowdownPct = (float64(noisy)/float64(base) - 1) * 100
	res.Checks = agent.Stats().Checks
	res.CheckLatency = agent.Stats().MaxCheckLatency
	res.WorstStall = cl.Nodes[0].SMM.Stats().MaxLatency
	return res, nil
}

// EnergyResult quantifies SMM's energy cost for a fixed amount of work.
type EnergyResult struct {
	Level       smm.Level
	QuietJoules float64
	NoisyJoules float64
	QuietTime   sim.Time
	NoisyTime   sim.Time
	// EnergyIncreasePct is the extra energy to complete the same work.
	EnergyIncreasePct float64
}

// MeasureEnergy reproduces the prior work's finding that SMIs increase
// the energy needed to complete the same work (one-per-second injection
// of the given level, R410 node, four-way compute).
func MeasureEnergy(level smm.Level, seed int64) (EnergyResult, error) {
	if seed == 0 {
		seed = 1
	}
	run := func(lv smm.Level) (float64, sim.Time, error) {
		e := sim.New(seed)
		smi := smm.DriverConfig{}
		if lv != smm.SMMNone {
			smi = smm.DriverConfig{Level: lv, PeriodJiffies: 1000, PhaseJitter: true}
		}
		cl, err := cluster.New(e, cluster.R410(smi))
		if err != nil {
			return 0, 0, err
		}
		cl.StartSMI()
		node := cl.Nodes[0]
		meter := energy.NewMeter(e, node.CPU, energy.NehalemServer())
		work := 5 * node.CPU.Params().BaseHz // 5 s per core
		var end sim.Time
		remaining := 4
		for i := 0; i < 4; i++ {
			node.Kernel.Spawn(fmt.Sprintf("app%d", i), cpu.Profile{CPI: 1}, func(t *kernel.Task) {
				t.Compute(work) // WorkSeconds per core: wall time ≈ WorkSeconds
				remaining--
				if remaining == 0 {
					end = t.Gettime()
					e.Stop()
				}
			})
		}
		e.Run()
		return meter.Read().Joules, end, nil
	}
	res := EnergyResult{Level: level}
	var err error
	if res.QuietJoules, res.QuietTime, err = run(smm.SMMNone); err != nil {
		return res, err
	}
	if res.NoisyJoules, res.NoisyTime, err = run(level); err != nil {
		return res, err
	}
	res.EnergyIncreasePct = (res.NoisyJoules/res.QuietJoules - 1) * 100
	return res, nil
}

// DriftResult quantifies tick-clock drift under SMIs.
type DriftResult struct {
	Elapsed  sim.Time // true elapsed time
	TickTime sim.Time // what a tick-counted clock shows
	Drift    sim.Time
	PPM      float64
}

// MeasureClockDrift runs an idle machine under the given injection for
// `seconds` and reports how far a tick-counted wall clock falls behind —
// the prior work's "time scaling discrepancy".
func MeasureClockDrift(level smm.Level, intervalMS int, seconds float64, seed int64) (DriftResult, error) {
	if seed == 0 {
		seed = 1
	}
	if intervalMS <= 0 {
		intervalMS = 1000
	}
	if seconds <= 0 {
		seconds = 10
	}
	e := sim.New(seed)
	smi := smm.DriverConfig{}
	if level != smm.SMMNone {
		smi = smm.DriverConfig{Level: level, PeriodJiffies: uint64(intervalMS), PhaseJitter: true}
	}
	cl, err := cluster.New(e, cluster.R410(smi))
	if err != nil {
		return DriftResult{}, err
	}
	cl.StartSMI()
	node := cl.Nodes[0]
	tc := node.Clock.NewTickClock(node.CPU)
	e.RunUntil(sim.FromSeconds(seconds))
	return DriftResult{
		Elapsed:  e.Now(),
		TickTime: tc.Time(),
		Drift:    tc.Drift(),
		PPM:      tc.DriftPPM(),
	}, nil
}

// TraceWorkload runs a four-task compute workload under 1/s long SMIs
// for `seconds` and returns a Chrome trace-event JSON
// (chrome://tracing, Perfetto) with one track per task plus the SMM
// episodes — the invisible interrupts, made visible on a timeline. The
// timeline is captured live on the observability bus (scheduler, SMM
// and profiler events included), not reconstructed after the fact; a
// defer-to-exit sampling profiler rides along so its kept/deferred
// decisions appear on their own track.
func TraceWorkload(seconds float64, seed int64) ([]byte, error) {
	if seconds <= 0 {
		seconds = 5
	}
	if seed == 0 {
		seed = 1
	}
	e := sim.New(seed)
	cl, err := cluster.New(e, cluster.R410(smm.DriverConfig{
		Level: smm.SMMLong, PeriodJiffies: 1000, PhaseJitter: true,
	}))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	sink.NameProcess(0, 0, "smistudy")
	bus := obs.NewBus().Attach(sink)
	cl.SetTracer(bus)
	e.SetProbe(bus)
	cl.StartSMI()
	node := cl.Nodes[0]
	prof := proftool.New(e, node.CPU, node.SMM, proftool.Config{Mode: proftool.DeferToExit})
	prof.SetTracer(bus, 0)
	prof.Start()
	work := seconds * node.CPU.Params().BaseHz
	remaining := 4
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("task%d", i)
		track := int32(i + 1)
		node.Kernel.Spawn(name, cpu.Profile{CPI: 1}, func(t *kernel.Task) {
			start := t.Gettime()
			// Emit compute in slices so the timeline shows phases.
			const slices = 10
			for s := 0; s < slices; s++ {
				t.Compute(work / slices)
				end := t.Gettime()
				bus.Emit(obs.Event{
					Time: end, Dur: end - start, Type: obs.EvUserSpan,
					Node: 0, Track: track, Name: name,
				})
				start = end
			}
			remaining--
			if remaining == 0 {
				e.Stop()
			}
		})
	}
	e.Run()
	prof.Stop()
	if err := sink.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ProfileWorkload runs a skewed two-task workload under long SMIs with a
// sampling profiler in the given mode and returns the profiler's report
// (including sample loss and worst-case share skew vs ground truth).
func ProfileWorkload(mode proftool.Mode, seed int64) proftool.Report {
	if seed == 0 {
		seed = 1
	}
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.R410(smm.DriverConfig{
		Level: smm.SMMLong, PeriodJiffies: 500, PhaseJitter: true,
	}))
	cl.StartSMI()
	node := cl.Nodes[0]
	s := proftool.New(e, node.CPU, node.SMM, proftool.Config{Mode: mode})
	s.Start()
	hz := node.CPU.Params().BaseHz
	node.Kernel.Spawn("heavy", cpu.Profile{CPI: 1}, func(t *kernel.Task) { t.Compute(4 * hz) })
	node.Kernel.Spawn("light", cpu.Profile{CPI: 1}, func(t *kernel.Task) { t.Compute(2 * hz) })
	e.RunUntil(6 * sim.Second)
	s.Stop()
	return s.Report()
}

func init() {
	Register(Workload{
		Name:     "rim",
		Summary:  "SMM integrity-agent (RIM) interference on a multithreaded app",
		Validate: validateRIMSpec,
		Run: func(sp scenario.Spec, x Exec) (Measurement, error) {
			o, err := rimOptions(sp)
			if err != nil {
				return Measurement{}, err
			}
			res, err := RunRIM(o)
			if err != nil {
				return Measurement{}, err
			}
			return Measurement{RIM: &res}, nil
		},
	})
	Register(Workload{
		Name:     "energy",
		Summary:  "energy cost of completing fixed work under SMI injection",
		Validate: validateEnergySpec,
		Run: func(sp scenario.Spec, x Exec) (Measurement, error) {
			level, err := energyLevel(sp)
			if err != nil {
				return Measurement{}, err
			}
			res, err := MeasureEnergy(level, sp.Seed)
			if err != nil {
				return Measurement{}, err
			}
			return Measurement{Energy: &res}, nil
		},
	})
	Register(Workload{
		Name:     "drift",
		Summary:  "tick-clock drift on an idle machine under SMI injection",
		Validate: validateDriftSpec,
		Run: func(sp scenario.Spec, x Exec) (Measurement, error) {
			level, err := driftLevel(sp)
			if err != nil {
				return Measurement{}, err
			}
			res, err := MeasureClockDrift(level, sp.EffectiveSMM().IntervalMS, sp.Params.DurationS, sp.Seed)
			if err != nil {
				return Measurement{}, err
			}
			return Measurement{Drift: &res}, nil
		},
	})
	Register(Workload{
		Name:     "profiler",
		Summary:  "sampling-profiler skew under long SMIs (drop vs defer modes)",
		Validate: validateProfilerSpec,
		Run: func(sp scenario.Spec, x Exec) (Measurement, error) {
			mode, err := profilerMode(sp)
			if err != nil {
				return Measurement{}, err
			}
			res := ProfileWorkload(mode, sp.Seed)
			return Measurement{Profiler: &res}, nil
		},
	})
}

func validateRIMSpec(sp scenario.Spec) error {
	_, err := rimOptions(sp)
	return err
}

// rimOptions lowers a scenario spec onto the RIM entry point. The RIM
// agent is itself the SMI source, so an SMM plan in the spec is a
// contradiction.
func rimOptions(sp scenario.Spec) (RIMOptions, error) {
	if err := singleNode(sp); err != nil {
		return RIMOptions{}, err
	}
	if err := fixedMachine(sp); err != nil {
		return RIMOptions{}, err
	}
	if eff := sp.EffectiveSMM(); eff.Level != "" || eff.IntervalMS != 0 {
		return RIMOptions{}, fmt.Errorf("the RIM agent drives its own SMIs (set params.period_ms, not an smm plan)")
	}
	if sp.Params.ChunkKB < 0 {
		return RIMOptions{}, fmt.Errorf("params.chunk_kb must be ≥ 0 (got %d)", sp.Params.ChunkKB)
	}
	return RIMOptions{
		PeriodMS:    sp.Params.PeriodMS,
		MegaBytes:   sp.Params.MegaBytes,
		ChunkKB:     sp.Params.ChunkKB,
		WorkSeconds: sp.Params.WorkSeconds,
		Seed:        sp.Seed,
	}, nil
}

func validateEnergySpec(sp scenario.Spec) error {
	_, err := energyLevel(sp)
	return err
}

// energyLevel lowers the spec's SMM plan for the energy study, which
// injects at the paper's fixed 1/s; an unset level means long SMIs.
func energyLevel(sp scenario.Spec) (smm.Level, error) {
	if err := singleNode(sp); err != nil {
		return 0, err
	}
	if err := fixedMachine(sp); err != nil {
		return 0, err
	}
	eff := sp.EffectiveSMM()
	if eff.IntervalMS != 0 && eff.IntervalMS != 1000 {
		return 0, fmt.Errorf("the energy study injects at a fixed 1000 ms (got smm.interval_ms=%d)", eff.IntervalMS)
	}
	if eff.Level == "" {
		return smm.SMMLong, nil
	}
	return parseLevel(eff.Level)
}

func validateDriftSpec(sp scenario.Spec) error {
	_, err := driftLevel(sp)
	return err
}

// driftLevel lowers the spec's SMM plan for the clock-drift study; an
// unset level means long SMIs.
func driftLevel(sp scenario.Spec) (smm.Level, error) {
	if err := singleNode(sp); err != nil {
		return 0, err
	}
	if err := fixedMachine(sp); err != nil {
		return 0, err
	}
	if eff := sp.EffectiveSMM(); eff.Level != "" {
		return parseLevel(eff.Level)
	}
	return smm.SMMLong, nil
}

func validateProfilerSpec(sp scenario.Spec) error {
	_, err := profilerMode(sp)
	return err
}

// profilerMode lowers the spec's params.mode for the profiler study.
func profilerMode(sp scenario.Spec) (proftool.Mode, error) {
	if err := singleNode(sp); err != nil {
		return 0, err
	}
	if err := fixedMachine(sp); err != nil {
		return 0, err
	}
	switch sp.Params.Mode {
	case "", "defer":
		return proftool.DeferToExit, nil
	case "drop":
		return proftool.DropInSMM, nil
	}
	return 0, fmt.Errorf("unknown params.mode %q (want defer or drop)", sp.Params.Mode)
}
