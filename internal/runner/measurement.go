package runner

import (
	"encoding/json"
	"fmt"

	"smistudy/internal/proftool"
)

// Measurement is the result of executing one scenario spec: exactly one
// workload section is populated (two runs of the same spec produce
// byte-identical JSON — the determinism contract the equivalence tests
// pin). On a fault-scenario failure the NAS section may be present
// alongside the error, carrying the partial result's transport
// accounting.
type Measurement struct {
	// Name echoes the spec's label.
	Name string `json:"name,omitempty"`
	// Workload names the section that is populated.
	Workload string `json:"workload"`

	NAS       *NASResult       `json:"nas,omitempty"`
	Convolve  *ConvolveResult  `json:"convolve,omitempty"`
	UnixBench *UnixBenchResult `json:"unixbench,omitempty"`
	RIM       *RIMResult       `json:"rim,omitempty"`
	Energy    *EnergyResult    `json:"energy,omitempty"`
	Drift     *DriftResult     `json:"drift,omitempty"`
	Profiler  *proftool.Report `json:"profiler,omitempty"`
}

// JSON renders the measurement deterministically.
func (m Measurement) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	return append(data, '\n'), nil
}
