package runner_test

// Equivalence pins of the tentpole refactor: the declarative scenario
// path (scenario.Spec → runner.Run) and the typed facade path
// (smistudy.Run*) must produce byte-identical results for the same
// cell, because both lower onto the same provisioning code. The facade
// is imported here — an external test package may import the root
// package even though the library under test is internal to it.

import (
	"encoding/json"
	"errors"
	"testing"

	"smistudy"
	"smistudy/internal/runner"
	"smistudy/internal/scenario"
	"smistudy/internal/sim"
)

// mustJSON marshals a result for byte comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestNASEquivalence pins a Table 1-shaped cell: the scenario path and
// the facade path measure the same bytes.
func TestNASEquivalence(t *testing.T) {
	m, err := runner.Run(scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 2, RanksPerNode: 2, HTT: true},
		SMM:      scenario.SMMPlan{Level: "long"},
		Runs:     2, Seed: 3,
		Params: scenario.Params{Bench: "BT", Class: "S"},
	})
	if err != nil {
		t.Fatalf("scenario path: %v", err)
	}
	res, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.BT, Class: smistudy.ClassS,
		Nodes: 2, RanksPerNode: 2, HTT: true,
		SMM: smistudy.SMM2, Runs: 2, Seed: 3,
	})
	if err != nil {
		t.Fatalf("facade path: %v", err)
	}
	if got, want := mustJSON(t, m.NAS), mustJSON(t, &res); got != want {
		t.Fatalf("paths diverge:\nscenario: %s\nfacade:   %s", got, want)
	}
}

// TestNASFaultEquivalence pins the fault lowering: a float-seconds
// fault plan in a spec and the equivalent sim.Time plan in the facade
// measure the same bytes, including transport accounting.
func TestNASFaultEquivalence(t *testing.T) {
	m, err := runner.Run(scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 4},
		Faults:   &scenario.FaultPlan{LossProb: 0.05},
		Seed:     1,
		Params:   scenario.Params{Bench: "BT", Class: "S"},
	})
	if err != nil {
		t.Fatalf("scenario path: %v", err)
	}
	res, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.BT, Class: smistudy.ClassS,
		Nodes: 4, RanksPerNode: 1, Seed: 1,
		Faults: &smistudy.FaultPlan{LossProb: 0.05},
	})
	if err != nil {
		t.Fatalf("facade path: %v", err)
	}
	if m.NAS.Dropped == 0 || m.NAS.Retransmits == 0 {
		t.Fatalf("lossy run recorded no transport activity: %+v", m.NAS)
	}
	if got, want := mustJSON(t, m.NAS), mustJSON(t, &res); got != want {
		t.Fatalf("paths diverge:\nscenario: %s\nfacade:   %s", got, want)
	}
}

// TestConvolveEquivalence pins a Figure 1-shaped cell.
func TestConvolveEquivalence(t *testing.T) {
	m, err := runner.Run(scenario.Spec{
		Workload: "convolve",
		Machine:  scenario.Machine{CPUs: 6},
		SMM:      scenario.SMMPlan{IntervalMS: 150},
		Runs:     2, Seed: 2,
		Params: scenario.Params{Cache: "unfriendly"},
	})
	if err != nil {
		t.Fatalf("scenario path: %v", err)
	}
	res, err := smistudy.RunConvolve(smistudy.ConvolveOptions{
		Behavior: smistudy.CacheUnfriendly, CPUs: 6,
		SMIIntervalMS: 150, Runs: 2, Seed: 2,
	})
	if err != nil {
		t.Fatalf("facade path: %v", err)
	}
	if got, want := mustJSON(t, m.Convolve), mustJSON(t, &res); got != want {
		t.Fatalf("paths diverge:\nscenario: %s\nfacade:   %s", got, want)
	}
}

// TestUnixBenchEquivalence pins a Figure 2-shaped cell.
func TestUnixBenchEquivalence(t *testing.T) {
	m, err := runner.Run(scenario.Spec{
		Workload: "unixbench",
		Machine:  scenario.Machine{CPUs: 2},
		SMM:      scenario.SMMPlan{IntervalMS: 600},
		Seed:     1,
		Params:   scenario.Params{DurationS: 1},
	})
	if err != nil {
		t.Fatalf("scenario path: %v", err)
	}
	res, err := smistudy.RunUnixBench(smistudy.UnixBenchOptions{
		CPUs: 2, SMIIntervalMS: 600, Level: smistudy.SMM2,
		Seed: 1, Duration: sim.FromSeconds(1),
	})
	if err != nil {
		t.Fatalf("facade path: %v", err)
	}
	if got, want := mustJSON(t, m.UnixBench), mustJSON(t, &res); got != want {
		t.Fatalf("paths diverge:\nscenario: %s\nfacade:   %s", got, want)
	}
}

// TestUnknownWorkload pins the registry rejection through the public
// entry point.
func TestUnknownWorkload(t *testing.T) {
	_, err := runner.Run(scenario.Spec{Workload: "tetris"})
	if err == nil || !errors.Is(err, runner.ErrInvalidSpec) {
		t.Fatalf("unknown workload: err = %v", err)
	}
}
