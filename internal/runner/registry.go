package runner

import (
	"sort"
	"sync"

	"smistudy/internal/scenario"
)

// Workload is one registered experiment kind. Workloads self-register
// from init functions in this package; the registry is the single
// dispatch table behind Run, so adding a workload automatically makes
// it reachable from scenario files, the smisim -scenario flag and the
// -list-workloads listing.
type Workload struct {
	// Name is the scenario.Spec.Workload key (lower-case).
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// Validate rejects specs this workload cannot execute, before any
	// engine is built. Errors are wrapped in ErrInvalidSpec by RunWith.
	Validate func(scenario.Spec) error
	// Run lowers the spec to the workload's typed entry point and
	// executes it. On error the returned Measurement may still carry a
	// partial section (the NAS workload reports fault-scenario
	// accounting for failed runs).
	Run func(scenario.Spec, Exec) (Measurement, error)
	// Split, when non-nil, decomposes a multi-repetition spec into
	// independent single-repetition cell specs whose seeds match the
	// workload's internal derivation, so the durable sweep layer can
	// checkpoint, cache and resume at repetition granularity. Returns
	// nil when the spec is not splittable (one run, fault scenarios
	// whose abort semantics span repetitions, ...); the spec then
	// executes as a single durable cell.
	Split func(scenario.Spec) []scenario.Spec
	// Merge reassembles the parent spec's Measurement from its split
	// cells' measurements, in cell order. The result must be
	// byte-identical (canonical JSON) to running the parent spec
	// directly — the equivalence tests pin this per workload.
	Merge func(parent scenario.Spec, parts []Measurement) (Measurement, error)

	// The four optional hooks below opt a workload into the analytic
	// fast path (see dispatch.go). They are only consulted for
	// steady-state specs: no SMM activity and no fault plan.

	// Replicate rebuilds the Measurement that simulating the
	// single-repetition target spec would produce from a prototype
	// measurement of the same region (same shape, any seed). Only legal
	// for seed-independent regions — the dispatcher proves that
	// empirically (shadow repetition) before ever serving from it.
	Replicate func(target scenario.Spec, proto Measurement) (Measurement, error)
	// Predict returns the closed-form predicted mean runtime in seconds
	// for a steady-state spec; an error means the analytic model does
	// not cover the shape (the region is then rejected, never served).
	Predict func(scenario.Spec) (float64, error)
	// Seconds extracts the simulated mean seconds the residual gate
	// compares against the prediction.
	Seconds func(Measurement) (float64, bool)
	// Analytic synthesizes a Measurement carrying the closed-form
	// predicted seconds — the opt-in "model" tier's output.
	Analytic func(sp scenario.Spec, predictedSeconds float64) (Measurement, error)
}

// SplitRuns is the shared repetition-split rule: R > 1 repetitions
// become R copies of the spec with Runs = 1 and seeds base, base+1, ...
// — exactly the derivation the typed entry points use internally, so a
// split cell measures byte-for-byte what repetition i of the parent
// measures.
func SplitRuns(sp scenario.Spec) []scenario.Spec {
	if sp.Runs <= 1 {
		return nil
	}
	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	cells := make([]scenario.Spec, sp.Runs)
	for i := range cells {
		c := sp
		c.Runs = 1
		c.Seed = seed + int64(i)
		cells[i] = c
	}
	return cells
}

var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload to the registry; duplicate or empty names
// are programming errors.
func Register(w Workload) {
	if w.Name == "" || w.Run == nil {
		panic("runner: Register needs a name and a Run function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		panic("runner: duplicate workload " + w.Name)
	}
	registry[w.Name] = w
}

// Lookup returns the named workload.
func Lookup(name string) (Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	return w, ok
}

// Names lists the registered workloads, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
