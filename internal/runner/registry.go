package runner

import (
	"sort"
	"sync"

	"smistudy/internal/scenario"
)

// Workload is one registered experiment kind. Workloads self-register
// from init functions in this package; the registry is the single
// dispatch table behind Run, so adding a workload automatically makes
// it reachable from scenario files, the smisim -scenario flag and the
// -list-workloads listing.
type Workload struct {
	// Name is the scenario.Spec.Workload key (lower-case).
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// Validate rejects specs this workload cannot execute, before any
	// engine is built. Errors are wrapped in ErrInvalidSpec by RunWith.
	Validate func(scenario.Spec) error
	// Run lowers the spec to the workload's typed entry point and
	// executes it. On error the returned Measurement may still carry a
	// partial section (the NAS workload reports fault-scenario
	// accounting for failed runs).
	Run func(scenario.Spec, Exec) (Measurement, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload to the registry; duplicate or empty names
// are programming errors.
func Register(w Workload) {
	if w.Name == "" || w.Run == nil {
		panic("runner: Register needs a name and a Run function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		panic("runner: duplicate workload " + w.Name)
	}
	registry[w.Name] = w
}

// Lookup returns the named workload.
func Lookup(name string) (Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	return w, ok
}

// Names lists the registered workloads, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
