package runner

import (
	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/faults"
	"smistudy/internal/kernel"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// This file holds the provisioning cores of internal/experiments'
// special-purpose studies. They live here — not rerouted through
// RunNAS — because their measured values feed golden files: RunNAS
// folds run times through a float mean and back, which would perturb
// single-run measurements by an ULP and invalidate byte-compares.

// AmplifyRun measures one benchmark run under the given SMM level on a
// fresh engine, returning the run time and the per-node SMM residency.
func AmplifyRun(seed int64, b nas.Benchmark, class nas.Class, nodes int, level smm.Level, smiScale float64) (sim.Time, sim.Time, error) {
	e := sim.New(seed)
	par := cluster.Wyeast(nodes, false, level)
	par.Node.SMI.DurationScale = smiScale
	cl, err := cluster.New(e, par)
	if err != nil {
		return 0, 0, err
	}
	cl.StartSMI()
	w, err := mpi.NewWorld(cl, 1, mpi.DefaultParams())
	if err != nil {
		return 0, 0, err
	}
	res, err := nas.Run(w, nas.Spec{Bench: b, Class: class})
	if err != nil {
		return 0, 0, err
	}
	return res.Time, cl.TotalSMMResidency() / sim.Time(len(cl.Nodes)), nil
}

// FaultedNAS runs one benchmark over an explicit fault schedule on a
// quiet (no-SMI) cluster, reporting the result plus the total SMM
// residency the faults injected.
func FaultedNAS(seed int64, spec nas.Spec, nodes int, sched faults.Schedule) (nas.Result, sim.Time, error) {
	e := sim.New(seed)
	cl, err := cluster.New(e, cluster.Wyeast(nodes, false, smm.SMMNone))
	if err != nil {
		return nas.Result{}, 0, err
	}
	par := mpi.DefaultParams()
	if sched.Lossy() {
		par = mpi.ReliableParams()
	}
	w, err := mpi.NewWorld(cl, 1, par)
	if err != nil {
		return nas.Result{}, 0, err
	}
	if !sched.Empty() {
		inj, err := cl.Inject(sched)
		if err != nil {
			return nas.Result{}, 0, err
		}
		w.SetFaultObserver(inj)
	}
	res, err := nas.Run(w, spec)
	return res, cl.TotalSMMResidency(), err
}

// SimulateBSP runs a synthetic barrier-synchronized workload under
// fixed-duration long SMIs (1/s, 105 ms) — the model-vs-simulator
// cross-validation's measured side.
func SimulateBSP(seed int64, nodes int, step sim.Time, steps int, smiScale float64) sim.Time {
	e := sim.New(seed)
	par := cluster.Wyeast(nodes, false, smm.SMMLong)
	par.Node.SMI.DurMin = 105 * sim.Millisecond
	par.Node.SMI.DurMax = 105 * sim.Millisecond
	par.Node.SMI.DurationScale = smiScale
	par.Node.PerCPURendezvous = 0
	cl := cluster.MustNew(e, par)
	cl.StartSMI()
	stepOps := step.Seconds() * par.Node.CPU.BaseHz
	if nodes == 1 {
		var end sim.Time
		cl.Nodes[0].Kernel.Spawn("w", cpu.Profile{CPI: 1}, func(tk *kernel.Task) {
			for i := 0; i < steps; i++ {
				tk.Compute(stepOps)
			}
			end = tk.Gettime()
			e.Stop()
		})
		e.Run()
		return end
	}
	w := mpi.MustNewWorld(cl, 1, mpi.DefaultParams())
	return w.Run(cpu.Profile{CPI: 1}, func(r *mpi.Rank, tk *kernel.Task) {
		for i := 0; i < steps; i++ {
			tk.Compute(stepOps)
			r.Barrier(tk)
		}
	})
}

// MPIWorldConfig provisions a bare MPI world for microbenchmarks
// (cmd/mpibench): a Wyeast cluster with an explicit SMI driver config,
// optionally wired to a shared bus under a per-measurement run index.
type MPIWorldConfig struct {
	Nodes        int
	RanksPerNode int
	SMI          smm.DriverConfig
	Seed         int64
	// Tracer, when non-nil, observes this world's events under Run's
	// index (the caller increments Run per measurement so each world is
	// its own process group on the timeline).
	Tracer obs.Tracer
	Run    int32
}

// MPIWorld builds a fresh world on its own engine.
func MPIWorld(c MPIWorldConfig) *mpi.World {
	e := sim.New(c.Seed)
	par := cluster.Wyeast(c.Nodes, false, smm.SMMNone)
	par.Node.SMI = c.SMI
	cl := cluster.MustNew(e, par)
	var rt obs.Tracer
	if c.Tracer != nil {
		rt = obs.WithRun(c.Tracer, c.Run)
		cl.SetTracer(rt)
		if b, ok := c.Tracer.(*obs.Bus); ok {
			e.SetProbe(b)
		}
	}
	cl.StartSMI()
	w := mpi.MustNewWorld(cl, c.RanksPerNode, mpi.DefaultParams())
	w.SetTracer(rt)
	return w
}
