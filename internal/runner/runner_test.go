package runner

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"smistudy/internal/scenario"
	"smistudy/internal/sim"
)

// TestValidateRejections pins that bad specs come back wrapped in
// ErrInvalidSpec (so CLIs can map them to usage errors) without running
// anything.
func TestValidateRejections(t *testing.T) {
	cases := map[string]scenario.Spec{
		"unknown workload": {Workload: "fortune"},
		"bad shape":        {Workload: "nas", Runs: -1},
		"unknown bench": {
			Workload: "nas",
			Params:   scenario.Params{Bench: "XX", Class: "A"},
		},
		"unknown class": {
			Workload: "nas",
			Params:   scenario.Params{Bench: "EP", Class: "Z"},
		},
		"nas rejects cpus": {
			Workload: "nas",
			Machine:  scenario.Machine{CPUs: 4},
			Params:   scenario.Params{Bench: "EP", Class: "A"},
		},
		"nas rejects odd interval": {
			Workload: "nas",
			SMM:      scenario.SMMPlan{IntervalMS: 250},
			Params:   scenario.Params{Bench: "EP", Class: "A"},
		},
		"convolve rejects nodes": {
			Workload: "convolve",
			Machine:  scenario.Machine{Nodes: 4},
		},
		"convolve rejects faults": {
			Workload: "convolve",
			Faults:   &scenario.FaultPlan{LossProb: 0.1},
		},
		"convolve rejects short": {
			Workload: "convolve",
			SMM:      scenario.SMMPlan{Level: "short", IntervalMS: 100},
		},
		"convolve rejects bad cache": {
			Workload: "convolve",
			Params:   scenario.Params{Cache: "hostile"},
		},
		"unixbench rejects runs": {Workload: "unixbench", Runs: 3},
		"rim rejects smm plan": {
			Workload: "rim",
			SMM:      scenario.SMMPlan{Level: "long", IntervalMS: 1000},
		},
		"profiler rejects bad mode": {
			Workload: "profiler",
			Params:   scenario.Params{Mode: "panic"},
		},
	}
	for name, sp := range cases {
		err := Validate(sp)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: error not wrapped in ErrInvalidSpec: %v", name, err)
		}
		// RunWith must agree with Validate without having run anything.
		if _, rerr := RunWith(sp, Exec{}); rerr == nil || !errors.Is(rerr, ErrInvalidSpec) {
			t.Errorf("%s: RunWith disagreed with Validate: %v", name, rerr)
		}
	}
}

// TestRunStampsMeasurement pins that Run labels the measurement with the
// spec's name and workload and populates exactly that workload section.
func TestRunStampsMeasurement(t *testing.T) {
	sp := scenario.Spec{
		Name:     "ep-smoke",
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 2},
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
	m, err := Run(sp)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Name != "ep-smoke" || m.Workload != "nas" {
		t.Fatalf("stamp = %q/%q", m.Name, m.Workload)
	}
	if m.NAS == nil || m.Convolve != nil || m.UnixBench != nil {
		t.Fatalf("wrong sections populated: %+v", m)
	}
	if !m.NAS.Verified || m.NAS.MeanTime <= 0 {
		t.Fatalf("implausible result: %+v", m.NAS)
	}
}

// TestRunDeterministic pins the determinism contract: the same spec
// yields byte-identical measurement JSON on repeated execution, for any
// worker count.
func TestRunDeterministic(t *testing.T) {
	sp := scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 2, RanksPerNode: 2},
		SMM:      scenario.SMMPlan{Level: "long"},
		Runs:     3,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
	var docs []string
	for _, workers := range []int{1, 1, 4} {
		m, err := RunWith(sp, Exec{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// The legacy result struct echoes its options — including the
		// exec-only Workers knob — so compare the measured values only.
		m.NAS.Options = NASOptions{}
		doc, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, string(doc))
	}
	if docs[0] != docs[1] {
		t.Fatal("same spec, different bytes across repeats")
	}
	if docs[0] != docs[2] {
		t.Fatal("worker count changed the measurement")
	}
}

// TestLowerFaults pins the scenario→runner fault lowering: inactive
// plans vanish, active plans convert every timestamp exactly once.
func TestLowerFaults(t *testing.T) {
	if LowerFaults(nil) != nil {
		t.Fatal("nil plan lowered to non-nil")
	}
	if LowerFaults(&scenario.FaultPlan{CrashNode: 2}) != nil {
		t.Fatal("inactive plan lowered to non-nil")
	}
	got := LowerFaults(&scenario.FaultPlan{
		LossProb:  0.05,
		CrashNode: 1, CrashAtS: 2.5,
		StormNode: 3, StormAtS: 1, StormForS: 4, StormPeriodJiffies: 7,
	})
	want := &FaultPlan{
		LossProb:  0.05,
		CrashNode: 1, CrashAt: sim.FromSeconds(2.5),
		StormNode: 3, StormAt: sim.FromSeconds(1), StormFor: sim.FromSeconds(4),
		StormPeriodJiffies: 7,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lowered plan = %+v, want %+v", got, want)
	}
	if !got.Active() || got.Schedule().Empty() {
		t.Fatal("lowered plan should be active with a non-empty schedule")
	}
}

// TestFaultPlanActiveMatchesSchedule pins satellite invariant: Active()
// answers exactly "would Schedule() be non-empty", without building one.
func TestFaultPlanActiveMatchesSchedule(t *testing.T) {
	plans := []FaultPlan{
		{},
		{CrashNode: 3}, // selector without arming time
		{LossProb: 0.1},
		{CrashAt: sim.Second},
		{HangAt: sim.Second, HangFor: sim.Second},
		{StormAt: sim.Second},
		{DegradeAt: sim.Second, DegradeSlow: 4},
	}
	for i, p := range plans {
		if got, want := p.Active(), !p.Schedule().Empty(); got != want {
			t.Errorf("plan %d: Active() = %v, Schedule().Empty() = %v", i, got, !want)
		}
	}
}

// TestRegistry pins the registry surface: every built-in workload is
// listed, lookups agree, and concurrent readers race cleanly.
func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"nas", "convolve", "unixbench", "rim", "energy", "drift", "profiler"} {
		w, ok := Lookup(want)
		if !ok || w.Name != want || w.Run == nil || w.Summary == "" {
			t.Errorf("workload %q not fully registered", want)
		}
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %q missing from Names()", want)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				Names()
				Lookup("nas")
			}
		}()
	}
	wg.Wait()
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}
