package runner

import (
	"smistudy/internal/faults"
	"smistudy/internal/sim"
)

// FaultPlan describes the fault scenario of a NAS run. Each fault is
// enabled by its probability or start time: LossProb > 0 arms uniform
// message loss, CrashAt/HangAt/StormAt/DegradeAt > 0 arm the
// corresponding node fault at that simulated time. The zero plan
// injects nothing. Scenarios beyond this shape can be built directly
// with faults.Schedule and the internal cluster API.
type FaultPlan struct {
	// LossProb drops every fabric message with this probability.
	LossProb float64

	// CrashAt > 0 crashes CrashNode at that time, permanently: CPUs
	// halt, the SMI driver disarms, all its traffic is lost.
	CrashNode int
	CrashAt   sim.Time

	// HangAt > 0 hangs HangNode for HangFor (0 = forever): CPUs halt
	// but the node stays on the fabric and still acknowledges.
	HangNode int
	HangAt   sim.Time
	HangFor  sim.Time

	// StormAt > 0 reconfigures StormNode's SMI driver to one short SMI
	// every StormPeriodJiffies jiffies (0 = 10) for StormFor.
	StormNode          int
	StormAt            sim.Time
	StormFor           sim.Time
	StormPeriodJiffies uint64

	// DegradeAt > 0 degrades all traffic into DegradeNode for
	// DegradeFor: serialization × DegradeSlow plus DegradeLatency.
	DegradeNode    int
	DegradeAt      sim.Time
	DegradeFor     sim.Time
	DegradeSlow    float64
	DegradeLatency sim.Time
}

// Schedule lowers the plan to a fault timeline. RunNAS lowers the plan
// exactly once per invocation and threads the schedule through world
// construction and injection; callers that only need to know whether a
// plan does anything should use Active, which never builds a schedule.
func (p FaultPlan) Schedule() faults.Schedule {
	var s faults.Schedule
	if p.LossProb > 0 {
		s.Add(faults.UniformLoss(p.LossProb))
	}
	if p.CrashAt > 0 {
		s.Add(faults.CrashAt(p.CrashNode, p.CrashAt))
	}
	if p.HangAt > 0 {
		s.Add(faults.HangAt(p.HangNode, p.HangAt, p.HangFor))
	}
	if p.StormAt > 0 {
		s.Add(faults.StormAt(p.StormNode, p.StormAt, p.StormFor, p.StormPeriodJiffies))
	}
	if p.DegradeAt > 0 {
		s.Add(faults.DegradeNodeLinks(p.DegradeNode, p.DegradeAt, p.DegradeFor, p.DegradeSlow, p.DegradeLatency))
	}
	return s
}

// Active reports whether the plan injects anything. It mirrors the arm
// conditions of Schedule field-by-field instead of lowering a schedule
// just to test it for emptiness.
func (p FaultPlan) Active() bool {
	return p.LossProb > 0 || p.CrashAt > 0 || p.HangAt > 0 || p.StormAt > 0 || p.DegradeAt > 0
}
