package runner

import (
	"bytes"
	"path/filepath"
	"testing"

	"smistudy/internal/scenario"
)

// TestLegacySMMNoiseBlockEquivalence is the behavior-preservation table
// of the noise refactor: for every example scenario written with the
// legacy smm block, the twin spec that lowers the same plan into a
// noise-list smm entry must serialize byte-identically, across shard
// counts and fast-path modes. This is what licenses migrating old
// scenarios to the noise syntax without re-baselining goldens.
func TestLegacySMMNoiseBlockEquivalence(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	tested := 0
	for _, file := range files {
		file := file
		sp, err := scenario.Load(file)
		if err != nil {
			t.Fatalf("%s: load: %v", file, err)
		}
		// Only legacy-block scenarios have a twin to compare against.
		if len(sp.Noise) > 0 || sp.SMM == (scenario.SMMPlan{}) {
			continue
		}
		tested++
		t.Run(filepath.Base(file), func(t *testing.T) {
			twin := sp
			twin.Noise = []scenario.NoiseSource{{
				Family:     scenario.NoiseSMM,
				Level:      sp.SMM.Level,
				IntervalMS: sp.SMM.IntervalMS,
				SMIScale:   sp.SMM.SMIScale,
			}}
			twin.SMM = scenario.SMMPlan{}
			if err := twin.Validate(); err != nil {
				t.Fatalf("twin spec invalid: %v", err)
			}
			type variant struct {
				name     string
				fastpath FastPathMode
				shards   int
			}
			for _, v := range []variant{
				{"off_shards1", FastOff, 1},
				{"off_shards2", FastOff, 2},
				{"auto_shards1", FastAuto, 1},
				{"auto_shards2", FastAuto, 2},
			} {
				run := func(s scenario.Spec) ([]byte, string) {
					x := Exec{Workers: 1, Shards: v.shards}
					if v.fastpath != FastOff {
						x.Dispatch = NewDispatcher(v.fastpath, 0)
					}
					m, err := RunWith(s, x)
					errStr := ""
					if err != nil {
						errStr = err.Error()
					}
					data, jerr := m.JSON()
					if jerr != nil {
						t.Fatalf("%s: encode: %v", v.name, jerr)
					}
					return data, errStr
				}
				legacyData, legacyErr := run(sp)
				noiseData, noiseErr := run(twin)
				if noiseErr != legacyErr {
					t.Errorf("%s: noise twin error %q, legacy %q", v.name, noiseErr, legacyErr)
				}
				if !bytes.Equal(noiseData, legacyData) {
					t.Errorf("%s: noise twin measurement differs from legacy block", v.name)
				}
			}
		})
	}
	if tested == 0 {
		t.Fatal("no legacy-smm example scenarios found to test")
	}
}

// TestJitterDeterminismAndEffect: a jittered scenario replays
// byte-identically (seeded per-CPU schedules), and the steals visibly
// slow the workload relative to the quiet twin.
func TestJitterDeterminismAndEffect(t *testing.T) {
	sp, err := scenario.Load(filepath.Join("..", "..", "examples", "scenarios", "jitter-bt-a.json"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	sp.Runs = 1

	run := func(s scenario.Spec) ([]byte, Measurement) {
		m, err := RunWith(s, Exec{Workers: 1})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		data, err := m.JSON()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return data, m
	}
	a, ma := run(sp)
	b, _ := run(sp)
	if !bytes.Equal(a, b) {
		t.Fatal("jittered scenario did not replay byte-identically")
	}

	quiet := sp
	quiet.Noise = nil
	_, mq := run(quiet)
	if ma.NAS == nil || mq.NAS == nil {
		t.Fatal("missing NAS sections")
	}
	if ma.NAS.Seconds() <= mq.NAS.Seconds() {
		t.Errorf("jitter did not slow the benchmark: %.6fs with vs %.6fs without",
			ma.NAS.Seconds(), mq.NAS.Seconds())
	}
}
