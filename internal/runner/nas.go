package runner

import (
	"context"
	"fmt"

	"smistudy/internal/analytic"
	"smistudy/internal/cluster"
	"smistudy/internal/faults"
	"smistudy/internal/metrics"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/obs"
	"smistudy/internal/parsweep"
	"smistudy/internal/perturb"
	"smistudy/internal/scenario"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// NASOptions configures one cell of the paper's MPI study.
type NASOptions struct {
	Bench        nas.Benchmark
	Class        nas.Class
	Nodes        int // cluster nodes (paper: 1–16)
	RanksPerNode int // 1 or 4 in the paper
	HTT          bool
	SMM          smm.Level
	// Runs averages this many runs with seeds Seed, Seed+1, ... (paper:
	// six). Zero means one.
	Runs int
	Seed int64
	// Workers fans the independent runs over this many OS threads
	// (each run has its own simulation engine). ≤ 1 runs sequentially;
	// any value yields bit-identical results. Execution-only: excluded
	// from the serialized measurement so stored results are a pure
	// function of the measured cell.
	Workers int `json:"-"`
	// Faults, when non-nil and active, arms the fault scenario on every
	// run. A plan that can lose messages automatically switches the MPI
	// runtime to its reliable (ack/retransmit) transport, and the
	// progress watchdog is armed so faulted runs fail in bounded
	// simulated time instead of hanging.
	Faults *FaultPlan
	// Watchdog overrides the MPI progress-watchdog interval (zero =
	// default, negative = disabled).
	Watchdog sim.Time
	// SMIScale multiplies the SMI duration range when > 0 and ≠ 1 — a
	// deliberate physics perturbation for sensitivity studies and for
	// the fidelity harness's negative tests. Zero leaves the paper's
	// calibrated durations untouched.
	SMIScale float64
	// Jitter provisions OS-jitter noise sources on every node (the
	// second noise family after SMM). Seeds are spec-level: each run
	// mixes its run seed, each node its index, so repetitions and
	// nodes decorrelate replayably. Empty means no jitter.
	Jitter []perturb.JitterConfig `json:",omitempty"`
	// SMTShares sets per-physical-core asymmetric SMT slot shares
	// (empty = the symmetric split; see cpu.Params.SMTShares).
	SMTShares []float64 `json:",omitempty"`
	// Tracer, when non-nil, receives every observability event from
	// every run (SMM episodes, scheduling, MPI traffic, network drops,
	// fault activations), each stamped with its run index. Safe with
	// Workers > 1 when the tracer is an *obs.Bus or otherwise
	// concurrency-safe. Execution-only: excluded from the serialized
	// measurement (tracing cannot change a result).
	Tracer obs.Tracer `json:"-"`
	// Stats, when non-nil, accumulates simulated-run and engine-event
	// counts. Execution-only accounting: cannot change a result.
	Stats *ExecStats `json:"-"`
	// Shards > 1 asks each run to partition its per-node event streams
	// over that many engine shards (see internal/sim), falling back to
	// the sequential engine when the run cannot be sharded
	// byte-identically. Execution-only: any value yields bit-identical
	// results.
	Shards int `json:"-"`
}

// NASResult is a measured cell.
type NASResult struct {
	Options   NASOptions
	Ranks     int
	MeanTime  sim.Time
	Times     []sim.Time
	MOPs      float64 // from the mean time
	Verified  bool
	Residency sim.Time // mean per-node SMM residency per run

	// Fault-scenario accounting, summed over runs: messages the fabric
	// dropped and the reliable transport's recovery activity.
	Dropped     int64
	Retransmits int64
	Duplicates  int64
}

// Seconds is shorthand for MeanTime in seconds.
func (r NASResult) Seconds() float64 { return r.MeanTime.Seconds() }

// RunNAS executes one configuration of the MPI study.
func RunNAS(o NASOptions) (NASResult, error) {
	if o.Nodes <= 0 || o.RanksPerNode <= 0 {
		return NASResult{}, fmt.Errorf("smistudy: need Nodes and RanksPerNode ≥ 1")
	}
	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	// The fault plan is lowered to a schedule exactly once; the same
	// schedule drives the transport selection here and the injection
	// inside every run.
	var sched faults.Schedule
	if o.Faults != nil {
		sched = o.Faults.Schedule()
	}
	par := mpi.DefaultParams()
	if sched.Lossy() {
		par = mpi.ReliableParams()
	}
	par.Watchdog = o.Watchdog
	// Each run owns a fresh engine and cluster, so runs are fanned over
	// o.Workers threads and folded back in input order — byte-identical
	// to the sequential loop this replaces. Errors ride inside the
	// per-run output (never through the pool) so a failed run's
	// transport accounting is still folded in, exactly as before.
	type runOut struct {
		setupErr error
		runErr   error
		ranks    int
		time     sim.Time
		verified bool
		resid    sim.Time

		dropped, retransmits, duplicates int64
	}
	idx := make([]int, runs)
	for i := range idx {
		idx[i] = i
	}
	outs, _ := parsweep.Run(context.Background(), idx, o.Workers, func(i int) (runOut, error) {
		var out runOut
		if shardableNAS(o, sched) {
			if r, resid, events, ok := tryShardedNAS(o, par, seed+int64(i)); ok {
				o.Stats.AddRun(events)
				out.ranks = r.Ranks
				out.time = r.Time
				out.verified = r.Verified
				out.resid = resid
				return out, nil
			}
		}
		e := sim.New(seed + int64(i))
		cp := cluster.Wyeast(o.Nodes, o.HTT, o.SMM)
		cp.Node.SMI.DurationScale = o.SMIScale
		cp.Node.CPU.SMTShares = o.SMTShares
		cp.Node.Jitter = jitterForRun(o.Jitter, seed+int64(i))
		cl, err := cluster.New(e, cp)
		if err != nil {
			out.setupErr = err
			return out, nil
		}
		rt := wireRun(o.Tracer, i, e, cl)
		cellStart(rt, seed+int64(i))
		cl.StartSMI()
		w, err := mpi.NewWorld(cl, o.RanksPerNode, par)
		if err != nil {
			out.setupErr = err
			return out, nil
		}
		w.SetTracer(rt)
		if !sched.Empty() {
			inj, err := cl.Inject(sched)
			if err != nil {
				out.setupErr = err
				return out, nil
			}
			w.SetFaultObserver(inj)
		}
		r, runErr := nas.Run(w, nas.Spec{Bench: o.Bench, Class: o.Class})
		cellFinish(rt, e, seed+int64(i))
		o.Stats.AddRun(e.Events())
		// Transport accounting is valid even for a failed run — report
		// how much recovery work preceded the failure.
		out.dropped = cl.Fabric.Stats().Drops
		ts := w.TransportStats()
		out.retransmits = ts.Retransmits
		out.duplicates = ts.Duplicates
		out.runErr = runErr
		if runErr == nil {
			out.ranks = r.Ranks
			out.time = r.Time
			out.verified = r.Verified
			out.resid = cl.TotalSMMResidency() / sim.Time(len(cl.Nodes))
		}
		return out, nil
	})
	res := NASResult{Options: o, Verified: true}
	var stream metrics.Stream
	var residency sim.Time
	for _, out := range outs {
		if out.setupErr != nil {
			return NASResult{}, out.setupErr
		}
		res.Dropped += out.dropped
		res.Retransmits += out.retransmits
		res.Duplicates += out.duplicates
		if out.runErr != nil {
			return res, out.runErr
		}
		res.Ranks = out.ranks
		res.Times = append(res.Times, out.time)
		res.Verified = res.Verified && out.verified
		stream.Add(out.time.Seconds())
		residency += out.resid
	}
	res.MeanTime = sim.FromSeconds(stream.Mean())
	res.Residency = residency / sim.Time(runs)
	res.MOPs = nas.MOPs(nas.Spec{Bench: o.Bench, Class: o.Class}, stream.Mean())
	return res, nil
}

// shardableNAS reports whether a cell may attempt the sharded engine:
// a steady-state multi-node run — no SMIs (so the per-node RNG draws
// that would couple shards never happen), no jitter (steal episodes
// would perturb the lockstep windows), no faults (no perturber, no
// reliable transport, no watchdog dependence), and untraced (event
// timestamps would otherwise interleave nondeterministically on the
// bus). Everything else falls back to the sequential engine, as does
// any eligible run whose execution hits an ordering the deterministic
// cross-shard merge cannot reproduce.
func shardableNAS(o NASOptions, sched faults.Schedule) bool {
	return o.Shards > 1 && o.Nodes >= 2 && o.SMM == smm.SMMNone &&
		len(o.Jitter) == 0 && sched.Empty() && o.Tracer == nil
}

// tryShardedNAS runs one repetition on a sharded cluster: nodes
// partitioned round-robin over min(o.Shards, o.Nodes) engines, windows
// run concurrently, fabric traffic merged deterministically at window
// barriers. ok=false means the attempt aborted (its state is fully
// discarded) and the caller must rerun sequentially; an ok result is
// byte-identical to the sequential run's.
func tryShardedNAS(o NASOptions, par mpi.Params, seed int64) (r nas.Result, resid sim.Time, events uint64, ok bool) {
	shards := o.Shards
	if shards > o.Nodes {
		shards = o.Nodes
	}
	engs := make([]*sim.Engine, shards)
	for j := range engs {
		// Steady-state runs never draw from the engine RNG (the fast
		// path's certification proves the same property); the seed is
		// kept for parity, not consumed.
		engs[j] = sim.New(seed)
	}
	cp := cluster.Wyeast(o.Nodes, o.HTT, o.SMM)
	cp.Node.SMI.DurationScale = o.SMIScale
	cp.Node.CPU.SMTShares = o.SMTShares
	cl, err := cluster.NewSharded(engs, cp)
	if err != nil {
		return nas.Result{}, 0, 0, false
	}
	cl.StartSMI()
	w, err := mpi.NewWorld(cl, o.RanksPerNode, par)
	if err != nil {
		return nas.Result{}, 0, 0, false
	}
	r, err = nas.Run(w, nas.Spec{Bench: o.Bench, Class: o.Class})
	if err != nil {
		cl.ShardGroup().Shutdown()
		return nas.Result{}, 0, 0, false
	}
	for _, e := range engs {
		events += e.Events()
	}
	return r, cl.TotalSMMResidency() / sim.Time(len(cl.Nodes)), events, true
}

func init() {
	Register(Workload{
		Name:     "nas",
		Summary:  "NAS Parallel Benchmark cell on the MPI study cluster (Tables 1–5)",
		Validate: validateNASSpec,
		Run: func(sp scenario.Spec, x Exec) (Measurement, error) {
			o, err := nasOptions(sp, x)
			if err != nil {
				return Measurement{}, err
			}
			res, err := RunNAS(o)
			// A fault-scenario failure still carries its transport
			// accounting; expose the partial section alongside the error.
			if err != nil && o.Faults == nil {
				return Measurement{}, err
			}
			return Measurement{NAS: &res}, err
		},
		Split:     splitNASSpec,
		Merge:     mergeNASSpec,
		Replicate: replicateNASSpec,
		Predict:   predictNASSpec,
		Seconds:   secondsNAS,
		Analytic:  analyticNASSpec,
	})
}

// splitNASSpec decomposes a multi-run NAS spec into per-repetition
// cells. Fault scenarios are not split: a faulted job's abort
// semantics (stop at the first failing repetition, accumulate partial
// transport accounting) are defined over the whole repetition sequence.
func splitNASSpec(sp scenario.Spec) []scenario.Spec {
	if sp.Faults.Active() {
		return nil
	}
	return SplitRuns(sp)
}

// mergeNASSpec reassembles a NAS measurement from its per-repetition
// cells with exactly the arithmetic RunNAS applies to its own runs, so
// the merged result is byte-identical to an unsplit run.
func mergeNASSpec(sp scenario.Spec, parts []Measurement) (Measurement, error) {
	o, err := nasOptions(sp, Exec{})
	if err != nil {
		return Measurement{}, err
	}
	res := NASResult{Options: o, Verified: true}
	var stream metrics.Stream
	var residency sim.Time
	for i, p := range parts {
		if p.NAS == nil || len(p.NAS.Times) != 1 {
			return Measurement{}, fmt.Errorf("runner: nas merge: cell %d is not a single-run NAS measurement", i)
		}
		res.Dropped += p.NAS.Dropped
		res.Retransmits += p.NAS.Retransmits
		res.Duplicates += p.NAS.Duplicates
		res.Ranks = p.NAS.Ranks
		res.Times = append(res.Times, p.NAS.Times[0])
		res.Verified = res.Verified && p.NAS.Verified
		stream.Add(p.NAS.Times[0].Seconds())
		residency += p.NAS.Residency
	}
	res.MeanTime = sim.FromSeconds(stream.Mean())
	res.Residency = residency / sim.Time(len(parts))
	res.MOPs = nas.MOPs(nas.Spec{Bench: o.Bench, Class: o.Class}, stream.Mean())
	return Measurement{Name: sp.Name, Workload: sp.Workload, NAS: &res}, nil
}

func validateNASSpec(sp scenario.Spec) error {
	_, err := nasOptions(sp, Exec{})
	return err
}

// nasOptions lowers a scenario spec onto the typed NAS entry point.
func nasOptions(sp scenario.Spec, x Exec) (NASOptions, error) {
	bench, err := parseBench(sp.Params.Bench)
	if err != nil {
		return NASOptions{}, err
	}
	class, err := parseClass(sp.Params.Class)
	if err != nil {
		return NASOptions{}, err
	}
	eff := sp.EffectiveSMM()
	level, err := parseLevel(eff.Level)
	if err != nil {
		return NASOptions{}, err
	}
	// The MPI study machine fires its SMIs at the paper's fixed 1/s; a
	// different interval in the spec would be silently ignored.
	if eff.IntervalMS != 0 && eff.IntervalMS != 1000 {
		return NASOptions{}, fmt.Errorf("the MPI study injects at a fixed 1000 ms (got smm.interval_ms=%d)", eff.IntervalMS)
	}
	if sp.Machine.CPUs != 0 {
		return NASOptions{}, fmt.Errorf("machine.cpus applies to single-node workloads (use machine.ranks_per_node and htt)")
	}
	shares, err := specSMTShares(sp)
	if err != nil {
		return NASOptions{}, err
	}
	nodes := sp.Machine.Nodes
	if nodes == 0 {
		nodes = 1
	}
	rpn := sp.Machine.RanksPerNode
	if rpn == 0 {
		rpn = 1
	}
	return NASOptions{
		Bench:        bench,
		Class:        class,
		Nodes:        nodes,
		RanksPerNode: rpn,
		HTT:          sp.Machine.HTT,
		SMM:          level,
		Runs:         sp.Runs,
		Seed:         sp.Seed,
		Workers:      x.Workers,
		Faults:       LowerFaults(sp.Faults),
		Watchdog:     sim.FromSeconds(sp.WatchdogS),
		SMIScale:     eff.SMIScale,
		Jitter:       LowerJitter(sp),
		SMTShares:    shares,
		Tracer:       x.Tracer,
		Stats:        x.Stats,
		Shards:       x.Shards,
	}, nil
}

// replicateNASSpec rebuilds the measurement simulating the single-
// repetition target would produce from a prototype of the same region.
// Legal only for seed-independent regions (the dispatcher proves that
// before serving): everything in a steady-state NAS cell except the
// serialized seed is a pure function of the region shape.
func replicateNASSpec(target scenario.Spec, proto Measurement) (Measurement, error) {
	if target.Runs > 1 {
		return Measurement{}, fmt.Errorf("runner: nas replicate serves single-repetition cells (got runs=%d)", target.Runs)
	}
	if proto.NAS == nil || len(proto.NAS.Times) != 1 {
		return Measurement{}, fmt.Errorf("runner: nas replicate needs a single-run NAS prototype")
	}
	o, err := nasOptions(target, Exec{})
	if err != nil {
		return Measurement{}, err
	}
	res := *proto.NAS
	res.Options = o
	res.Times = append([]sim.Time(nil), proto.NAS.Times...)
	return Measurement{NAS: &res}, nil
}

// predictNASSpec is the closed-form runtime model behind the fast
// path's residual gate. Only the embarrassingly-parallel regime is
// covered — EP without hyper-threading, at most one rank per physical
// core — where compute divides evenly across ranks at the solo cache
// profile and communication is three latency-bound all-reduces. Every
// other shape returns an error, rejecting the region ("no_model").
func predictNASSpec(sp scenario.Spec) (float64, error) {
	o, err := nasOptions(sp, Exec{})
	if err != nil {
		return 0, err
	}
	if o.Bench != nas.EP {
		return 0, fmt.Errorf("runner: analytic model covers EP only (got %s)", o.Bench)
	}
	if o.HTT {
		return 0, fmt.Errorf("runner: analytic model assumes no hyper-threading")
	}
	if len(o.Jitter) > 0 {
		return 0, fmt.Errorf("runner: analytic model does not cover jitter noise")
	}
	cp := cluster.Wyeast(o.Nodes, o.HTT, o.SMM)
	if o.RanksPerNode > cp.Node.CPU.PhysCores {
		return 0, fmt.Errorf("runner: analytic model needs one rank per physical core (got %d ranks on %d cores)",
			o.RanksPerNode, cp.Node.CPU.PhysCores)
	}
	prof := nas.Profile(o.Bench)
	cell := analytic.EPCell{
		TotalOps:    nas.TotalOps(nas.Spec{Bench: o.Bench, Class: o.Class}),
		Ranks:       o.Nodes * o.RanksPerNode,
		RatePerRank: cp.Node.CPU.BaseHz / (prof.CPI + prof.MissRate*cp.Node.CPU.MissPenalty),
		Latency:     cp.Fabric.Latency,
		Collectives: 3,
	}
	return cell.Time()
}

// secondsNAS extracts the simulated mean seconds the residual gate
// compares against the prediction.
func secondsNAS(m Measurement) (float64, bool) {
	if m.NAS == nil {
		return 0, false
	}
	return m.NAS.Seconds(), true
}

// analyticNASSpec synthesizes the opt-in "model" tier's measurement:
// the closed-form predicted runtime in the shape of a measured cell.
func analyticNASSpec(sp scenario.Spec, predictedSeconds float64) (Measurement, error) {
	o, err := nasOptions(sp, Exec{})
	if err != nil {
		return Measurement{}, err
	}
	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	t := sim.FromSeconds(predictedSeconds)
	res := NASResult{
		Options:  o,
		Ranks:    o.Nodes * o.RanksPerNode,
		MeanTime: t,
		Times:    make([]sim.Time, runs),
		MOPs:     nas.MOPs(nas.Spec{Bench: o.Bench, Class: o.Class}, predictedSeconds),
		Verified: true,
	}
	for i := range res.Times {
		res.Times[i] = t
	}
	return Measurement{NAS: &res}, nil
}
