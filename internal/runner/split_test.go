package runner_test

// Split/merge equivalence: the durable sweep layer decomposes a
// multi-repetition spec into single-repetition cells and reassembles
// the parent measurement from their results. These tests pin the
// byte-level contract that makes checkpoint/resume sound: for every
// workload that registers Split/Merge, running the cells individually
// and merging MUST produce canonical JSON identical to running the
// parent spec directly.

import (
	"bytes"
	"testing"

	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

func splitMergeJSON(t *testing.T, sp scenario.Spec) (direct, merged []byte) {
	t.Helper()
	w, ok := runner.Lookup(sp.Workload)
	if !ok {
		t.Fatalf("workload %q not registered", sp.Workload)
	}
	if w.Split == nil || w.Merge == nil {
		t.Fatalf("workload %q has no split/merge hooks", sp.Workload)
	}
	dm, err := runner.Run(sp)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	direct, err = dm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	cells := w.Split(sp)
	if len(cells) != sp.Runs {
		t.Fatalf("Split produced %d cells, want %d", len(cells), sp.Runs)
	}
	parts := make([]runner.Measurement, len(cells))
	for i, c := range cells {
		pm, err := runner.Run(c)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		parts[i] = pm
	}
	mm, err := w.Merge(sp, parts)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	merged, err = mm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return direct, merged
}

func TestNASSplitMergeByteIdentical(t *testing.T) {
	sp := scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 2, RanksPerNode: 2},
		SMM:      scenario.SMMPlan{Level: "long"},
		Runs:     4,
		Seed:     3,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
	direct, merged := splitMergeJSON(t, sp)
	if !bytes.Equal(direct, merged) {
		t.Errorf("split+merge differs from direct run:\ndirect:\n%s\nmerged:\n%s", direct, merged)
	}
}

func TestNASSplitMergeDefaultSeed(t *testing.T) {
	// Seed 0 means 1; the split cells must inherit the *effective* base
	// so cell seeds line up with the internal derivation.
	sp := scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 1, RanksPerNode: 1},
		Runs:     3,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
	direct, merged := splitMergeJSON(t, sp)
	if !bytes.Equal(direct, merged) {
		t.Errorf("split+merge differs from direct run under default seed")
	}
}

func TestConvolveSplitMergeByteIdentical(t *testing.T) {
	sp := scenario.Spec{
		Workload: "convolve",
		Machine:  scenario.Machine{CPUs: 2},
		SMM:      scenario.SMMPlan{IntervalMS: 500},
		Runs:     3,
		Seed:     7,
		Params:   scenario.Params{Cache: "unfriendly"},
	}
	direct, merged := splitMergeJSON(t, sp)
	if !bytes.Equal(direct, merged) {
		t.Errorf("split+merge differs from direct run:\ndirect:\n%s\nmerged:\n%s", direct, merged)
	}
}

func TestFaultedNASSpecNotSplit(t *testing.T) {
	w, _ := runner.Lookup("nas")
	sp := scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 2, RanksPerNode: 1},
		Runs:     4,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
		Faults:   &scenario.FaultPlan{LossProb: 0.1},
	}
	if cells := w.Split(sp); cells != nil {
		t.Fatalf("faulted spec split into %d cells; abort semantics span repetitions", len(cells))
	}
}

func TestSingleRunSpecNotSplit(t *testing.T) {
	for _, workload := range []string{"nas", "convolve"} {
		w, _ := runner.Lookup(workload)
		sp := scenario.Spec{Workload: workload, Runs: 1}
		if cells := w.Split(sp); cells != nil {
			t.Errorf("%s: single-run spec split into %d cells", workload, len(cells))
		}
	}
}

// TestMeasurementJSONExecFree pins that execution-only knobs (workers,
// tracers) never appear in a serialized measurement: the content-
// addressed store relies on measurement bytes being a pure function of
// the spec.
func TestMeasurementJSONExecFree(t *testing.T) {
	sp := scenario.Spec{
		Workload: "nas",
		Machine:  scenario.Machine{Nodes: 1, RanksPerNode: 1},
		Runs:     2,
		Params:   scenario.Params{Bench: "EP", Class: "S"},
	}
	seq, err := runner.RunWith(sp, runner.Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := runner.RunWith(sp, runner.Exec{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sj, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Errorf("measurement JSON depends on Exec.Workers:\n%s\nvs\n%s", sj, pj)
	}
	for _, leak := range []string{"\"Workers\"", "\"Tracer\""} {
		if bytes.Contains(sj, []byte(leak)) {
			t.Errorf("measurement JSON leaks execution field %s:\n%s", leak, sj)
		}
	}
}
