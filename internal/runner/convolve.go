package runner

import (
	"context"
	"fmt"

	"smistudy/internal/cluster"
	"smistudy/internal/convolve"
	"smistudy/internal/metrics"
	"smistudy/internal/obs"
	"smistudy/internal/parsweep"
	"smistudy/internal/perturb"
	"smistudy/internal/scenario"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

// CacheBehavior selects a Convolve configuration.
type CacheBehavior int

// The paper's two Convolve configurations.
const (
	CacheFriendly CacheBehavior = iota
	CacheUnfriendly
)

// String implements fmt.Stringer.
func (c CacheBehavior) String() string {
	if c == CacheFriendly {
		return "CacheFriendly"
	}
	return "CacheUnfriendly"
}

// ConvolveOptions configures one Convolve run (Figure 1).
type ConvolveOptions struct {
	Behavior CacheBehavior
	CPUs     int // online logical CPUs, 1–8
	// SMIIntervalMS is the gap between long SMIs in milliseconds
	// (paper: 50–1500); zero disables injection.
	SMIIntervalMS int
	// Runs averages this many runs (paper: three). Zero means one.
	Runs   int
	Seed   int64
	Passes int // repetitions of the convolution; zero = preset default
	// Workers fans the independent runs over this many OS threads;
	// ≤ 1 runs sequentially. Results are bit-identical either way.
	// Execution-only: excluded from the serialized measurement.
	Workers int `json:"-"`
	// SMIScale multiplies the SMI duration range when > 0 and ≠ 1 (see
	// NASOptions.SMIScale).
	SMIScale float64
	// Jitter provisions OS-jitter noise sources on the node (see
	// NASOptions.Jitter).
	Jitter []perturb.JitterConfig `json:",omitempty"`
	// SMTShares sets per-physical-core asymmetric SMT slot shares
	// (empty = the symmetric split; see cpu.Params.SMTShares).
	SMTShares []float64 `json:",omitempty"`
	// Tracer, when non-nil, receives every run's observability events,
	// stamped with the run index. Must be concurrency-safe (an
	// *obs.Bus is) when Workers > 1. Execution-only: excluded from the
	// serialized measurement.
	Tracer obs.Tracer `json:"-"`
	// Stats, when non-nil, accumulates simulated-run and engine-event
	// counts. Execution-only accounting: cannot change a result.
	Stats *ExecStats `json:"-"`
}

// ConvolveResult is one measured Convolve point.
type ConvolveResult struct {
	Options  ConvolveOptions
	MeanTime sim.Time
	Times    []sim.Time
	StdDev   sim.Time // across runs
	Threads  int
}

// RunConvolve executes one Convolve configuration.
func RunConvolve(o ConvolveOptions) (ConvolveResult, error) {
	if o.CPUs < 1 || o.CPUs > 8 {
		return ConvolveResult{}, fmt.Errorf("smistudy: Convolve CPUs = %d, want 1–8", o.CPUs)
	}
	cfg := convolve.CacheFriendly()
	if o.Behavior == CacheUnfriendly {
		cfg = convolve.CacheUnfriendly()
	}
	if o.Passes > 0 {
		cfg.Passes = o.Passes
	}
	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	smi := smm.DriverConfig{}
	if o.SMIIntervalMS > 0 {
		smi = smm.DriverConfig{
			Level:         smm.SMMLong,
			PeriodJiffies: uint64(o.SMIIntervalMS),
			DurationScale: o.SMIScale,
			PhaseJitter:   true,
		}
	}
	// Independent engines per run: fan over o.Workers threads, fold in
	// input order — identical to the sequential loop for any worker
	// count.
	type runOut struct {
		elapsed sim.Time
		threads int
	}
	idx := make([]int, runs)
	for i := range idx {
		idx[i] = i
	}
	outs, err := parsweep.Run(context.Background(), idx, o.Workers, func(i int) (runOut, error) {
		e := sim.New(seed + int64(i))
		cp := cluster.R410(smi)
		cp.Node.CPU.SMTShares = o.SMTShares
		cp.Node.Jitter = jitterForRun(o.Jitter, seed+int64(i))
		cl, err := cluster.New(e, cp)
		if err != nil {
			return runOut{}, err
		}
		if err := cl.Nodes[0].Kernel.OnlineCPUs(o.CPUs); err != nil {
			return runOut{}, err
		}
		rt := wireRun(o.Tracer, i, e, cl)
		cellStart(rt, seed+int64(i))
		cl.StartSMI()
		r := convolve.RunSim(cl, cfg)
		cellFinish(rt, e, seed+int64(i))
		o.Stats.AddRun(e.Events())
		return runOut{elapsed: r.Elapsed, threads: r.Threads}, nil
	})
	if err != nil {
		return ConvolveResult{}, err
	}
	res := ConvolveResult{Options: o}
	var stream metrics.Stream
	for _, out := range outs {
		res.Times = append(res.Times, out.elapsed)
		res.Threads = out.threads
		stream.Add(out.elapsed.Seconds())
	}
	res.MeanTime = sim.FromSeconds(stream.Mean())
	res.StdDev = sim.FromSeconds(stream.StdDev())
	return res, nil
}

func init() {
	Register(Workload{
		Name:     "convolve",
		Summary:  "multithreaded Convolve kernel on the R410 machine (Figure 1)",
		Validate: validateConvolveSpec,
		Run: func(sp scenario.Spec, x Exec) (Measurement, error) {
			o, err := convolveOptions(sp, x)
			if err != nil {
				return Measurement{}, err
			}
			res, err := RunConvolve(o)
			if err != nil {
				return Measurement{}, err
			}
			return Measurement{Convolve: &res}, nil
		},
		Split: SplitRuns,
		Merge: mergeConvolveSpec,
	})
}

// mergeConvolveSpec reassembles a Convolve measurement from its
// per-repetition cells with exactly RunConvolve's own fold, so the
// merged result is byte-identical to an unsplit run.
func mergeConvolveSpec(sp scenario.Spec, parts []Measurement) (Measurement, error) {
	o, err := convolveOptions(sp, Exec{})
	if err != nil {
		return Measurement{}, err
	}
	res := ConvolveResult{Options: o}
	var stream metrics.Stream
	for i, p := range parts {
		if p.Convolve == nil || len(p.Convolve.Times) != 1 {
			return Measurement{}, fmt.Errorf("runner: convolve merge: cell %d is not a single-run Convolve measurement", i)
		}
		res.Times = append(res.Times, p.Convolve.Times[0])
		res.Threads = p.Convolve.Threads
		stream.Add(p.Convolve.Times[0].Seconds())
	}
	res.MeanTime = sim.FromSeconds(stream.Mean())
	res.StdDev = sim.FromSeconds(stream.StdDev())
	return Measurement{Name: sp.Name, Workload: sp.Workload, Convolve: &res}, nil
}

func validateConvolveSpec(sp scenario.Spec) error {
	_, err := convolveOptions(sp, Exec{})
	return err
}

// convolveOptions lowers a scenario spec onto the typed Convolve entry
// point.
func convolveOptions(sp scenario.Spec, x Exec) (ConvolveOptions, error) {
	if err := singleNode(sp); err != nil {
		return ConvolveOptions{}, err
	}
	var beh CacheBehavior
	switch sp.Params.Cache {
	case "", "friendly":
		beh = CacheFriendly
	case "unfriendly":
		beh = CacheUnfriendly
	default:
		return ConvolveOptions{}, fmt.Errorf("unknown params.cache %q (want friendly or unfriendly)", sp.Params.Cache)
	}
	// Convolve's injection is always long SMIs (the paper varies only
	// their interval); a level in the spec must agree.
	eff := sp.EffectiveSMM()
	switch eff.Level {
	case "", "long":
	case "none":
		if eff.IntervalMS > 0 {
			return ConvolveOptions{}, fmt.Errorf("smm.level none contradicts smm.interval_ms=%d", eff.IntervalMS)
		}
	default:
		return ConvolveOptions{}, fmt.Errorf("convolve injects long SMIs only (got smm.level %q)", eff.Level)
	}
	shares, err := specSMTShares(sp)
	if err != nil {
		return ConvolveOptions{}, err
	}
	return ConvolveOptions{
		Behavior:      beh,
		CPUs:          specCPUs(sp),
		SMIIntervalMS: eff.IntervalMS,
		Runs:          sp.Runs,
		Seed:          sp.Seed,
		Passes:        sp.Params.Passes,
		Workers:       x.Workers,
		SMIScale:      eff.SMIScale,
		Jitter:        LowerJitter(sp),
		SMTShares:     shares,
		Tracer:        x.Tracer,
		Stats:         x.Stats,
	}, nil
}
