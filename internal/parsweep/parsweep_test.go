package parsweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunEmpty(t *testing.T) {
	out, err := Run(context.Background(), nil, 4, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestRunOrderStable(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 2, 4, 16, 200} {
		out, err := Run(context.Background(), points, workers, func(p int) (int, error) {
			return p * p, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunMatchesSequential(t *testing.T) {
	points := make([]int64, 37)
	for i := range points {
		points[i] = int64(i)
	}
	fn := func(p int64) (int64, error) { return Seed(7, p), nil }
	seq, err := Run(context.Background(), points, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), points, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("out[%d]: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5, 6, 7}
	boom := func(i int) error { return fmt.Errorf("point %d failed", i) }
	// Every point ≥ 3 fails; the reported error must be point 3's (the
	// lowest-index failure a sequential loop would hit) regardless of
	// worker count and scheduling.
	for _, workers := range []int{1, 2, 8} {
		_, err := Run(context.Background(), points, workers, func(p int) (int, error) {
			if p >= 3 {
				return 0, boom(p)
			}
			return p, nil
		})
		if err == nil || err.Error() != "point 3 failed" {
			t.Fatalf("workers=%d: err = %v, want point 3's", workers, err)
		}
	}
}

func TestRunErrorCancelsRemaining(t *testing.T) {
	var ran atomic.Int64
	points := make([]int, 1000)
	for i := range points {
		points[i] = i
	}
	_, err := Run(context.Background(), points, 2, func(p int) (int, error) {
		ran.Add(1)
		if p == 0 {
			return 0, errors.New("early failure")
		}
		return p, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("first error did not cancel the remaining points")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	points := []int{1, 2, 3}
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Run(ctx, points, workers, func(p int) (int, error) {
			ran.Add(1)
			return p, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("default worker count must be ≥ 1")
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	if Seed(1, 2, 3) != Seed(1, 2, 3) {
		t.Fatal("Seed not deterministic")
	}
	// Neighbouring cells must not collide or fall into base+offset
	// patterns: collect a small grid and require all-distinct.
	seen := map[int64]bool{}
	for base := int64(1); base <= 3; base++ {
		for a := int64(0); a < 8; a++ {
			for b := int64(0); b < 8; b++ {
				s := Seed(base, a, b)
				if s == 0 {
					t.Fatal("Seed returned 0")
				}
				if seen[s] {
					t.Fatalf("seed collision at base=%d a=%d b=%d", base, a, b)
				}
				seen[s] = true
			}
		}
	}
	// Coordinate order matters.
	if Seed(1, 2, 3) == Seed(1, 3, 2) {
		t.Error("Seed ignores coordinate order")
	}
}
