package parsweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunEmpty(t *testing.T) {
	out, err := Run(context.Background(), nil, 4, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestRunOrderStable(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 2, 4, 16, 200} {
		out, err := Run(context.Background(), points, workers, func(p int) (int, error) {
			return p * p, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunMatchesSequential(t *testing.T) {
	points := make([]int64, 37)
	for i := range points {
		points[i] = int64(i)
	}
	fn := func(p int64) (int64, error) { return Seed(7, p), nil }
	seq, err := Run(context.Background(), points, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), points, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("out[%d]: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5, 6, 7}
	boom := func(i int) error { return fmt.Errorf("point %d failed", i) }
	// Every point ≥ 3 fails; the reported error must be point 3's (the
	// lowest-index failure a sequential loop would hit) regardless of
	// worker count and scheduling.
	for _, workers := range []int{1, 2, 8} {
		_, err := Run(context.Background(), points, workers, func(p int) (int, error) {
			if p >= 3 {
				return 0, boom(p)
			}
			return p, nil
		})
		if err == nil || err.Error() != "point 3 failed" {
			t.Fatalf("workers=%d: err = %v, want point 3's", workers, err)
		}
	}
}

func TestRunErrorCancelsRemaining(t *testing.T) {
	var ran atomic.Int64
	points := make([]int, 1000)
	for i := range points {
		points[i] = i
	}
	_, err := Run(context.Background(), points, 2, func(p int) (int, error) {
		ran.Add(1)
		if p == 0 {
			return 0, errors.New("early failure")
		}
		return p, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("first error did not cancel the remaining points")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	points := []int{1, 2, 3}
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Run(ctx, points, workers, func(p int) (int, error) {
			ran.Add(1)
			return p, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestRunPanicIsolated pins the panic semantics of Run: a panicking
// cell must surface as that point's error — with the same lowest-index
// precedence as a returned error — instead of crashing the process.
func TestRunPanicIsolated(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 2, 8} {
		_, err := Run(context.Background(), points, workers, func(p int) (int, error) {
			if p >= 2 {
				panic(fmt.Sprintf("cell %d exploded", p))
			}
			return p, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "cell 2 exploded" {
			t.Errorf("workers=%d: panic value = %v, want cell 2's (lowest index)", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic stack not captured", workers)
		}
	}
}

// TestRunContextCancelMidSweep: a context canceled partway through a
// sequential sweep returns ctx.Err() with the already-finished prefix
// intact and untouched zero values past the cancellation point.
func TestRunContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	points := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Run(ctx, points, 1, func(p int) (int, error) {
		if p == 4 {
			cancel() // takes effect before point 5 is attempted
		}
		return p + 10, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := 0; i <= 4; i++ {
		if out[i] != i+10 {
			t.Errorf("out[%d] = %d, want %d (finished prefix must survive)", i, out[i], i+10)
		}
	}
	for i := 5; i < len(points); i++ {
		if out[i] != 0 {
			t.Errorf("out[%d] = %d, want zero value past cancellation", i, out[i])
		}
	}
}

// TestRunWorkersEdgeCases: Workers(0) resolves to a sane parallel
// default that Run accepts, and worker counts far beyond len(points)
// behave identically to exactly-len(points) workers.
func TestRunWorkersEdgeCases(t *testing.T) {
	points := []int{1, 2}
	for _, workers := range []int{Workers(0), len(points), len(points) * 50} {
		out, err := Run(context.Background(), points, workers, func(p int) (int, error) {
			return p * 3, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if out[0] != 3 || out[1] != 6 {
			t.Fatalf("workers=%d: out = %v", workers, out)
		}
	}
	// A single point with many workers must not spin up excess claims.
	out, err := Run(context.Background(), []int{9}, 64, func(p int) (int, error) { return p, nil })
	if err != nil || out[0] != 9 {
		t.Fatalf("single point: out=%v err=%v", out, err)
	}
}

func TestRunPartialKeepsFinishedCells(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 3, 8} {
		out, errs := RunPartial(context.Background(), points, workers, func(p int) (int, error) {
			if p%3 == 1 {
				return 0, fmt.Errorf("point %d failed", p)
			}
			return p * 2, nil
		})
		for i := range points {
			if i%3 == 1 {
				var ce *CellError
				if !errors.As(errs[i], &ce) || ce.Index != i {
					t.Fatalf("workers=%d: errs[%d] = %v, want CellError for index %d", workers, i, errs[i], i)
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d: errs[%d] = %v, want nil", workers, i, errs[i])
			}
			if out[i] != i*2 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], i*2)
			}
		}
		if err := FirstError(errs); err == nil || !strings.Contains(err.Error(), "cell 1") {
			t.Fatalf("workers=%d: FirstError = %v, want cell 1's", workers, err)
		}
	}
}

func TestRunPartialPanicIsolated(t *testing.T) {
	points := []int{0, 1, 2, 3}
	out, errs := RunPartial(context.Background(), points, 2, func(p int) (int, error) {
		if p == 2 {
			panic("boom")
		}
		return p + 1, nil
	})
	var pe *PanicError
	if !errors.As(errs[2], &pe) || pe.Value != "boom" {
		t.Fatalf("errs[2] = %v, want *PanicError(boom)", errs[2])
	}
	for _, i := range []int{0, 1, 3} {
		if errs[i] != nil || out[i] != i+1 {
			t.Fatalf("cell %d: out=%d errs=%v, want %d/nil", i, out[i], errs[i], i+1)
		}
	}
}

// TestRunPartialCancelMarksUnattempted: cancellation mid-sweep leaves
// finished results in place and marks every unattempted point with a
// CellError wrapping the context error, so resumable callers can tell
// "failed" from "never reached".
func TestRunPartialCancelMarksUnattempted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	points := make([]int, 16)
	for i := range points {
		points[i] = i
	}
	out, errs := RunPartial(ctx, points, 1, func(p int) (int, error) {
		if p == 3 {
			cancel()
		}
		return p + 100, nil
	})
	for i := 0; i <= 3; i++ {
		if errs[i] != nil || out[i] != i+100 {
			t.Fatalf("finished cell %d lost: out=%d errs=%v", i, out[i], errs[i])
		}
	}
	for i := 4; i < len(points); i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("errs[%d] = %v, want wrapped context.Canceled", i, errs[i])
		}
		var ce *CellError
		if !errors.As(errs[i], &ce) || ce.Index != i {
			t.Fatalf("errs[%d] = %v, want CellError with index", i, errs[i])
		}
	}
}

func TestRunPartialEmpty(t *testing.T) {
	out, errs := RunPartial(context.Background(), nil, 4, func(int) (int, error) { return 0, nil })
	if len(out) != 0 || len(errs) != 0 {
		t.Fatalf("empty sweep: out=%v errs=%v", out, errs)
	}
	if err := FirstError(errs); err != nil {
		t.Fatalf("FirstError on empty = %v", err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("default worker count must be ≥ 1")
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	if Seed(1, 2, 3) != Seed(1, 2, 3) {
		t.Fatal("Seed not deterministic")
	}
	// Neighbouring cells must not collide or fall into base+offset
	// patterns: collect a small grid and require all-distinct.
	seen := map[int64]bool{}
	for base := int64(1); base <= 3; base++ {
		for a := int64(0); a < 8; a++ {
			for b := int64(0); b < 8; b++ {
				s := Seed(base, a, b)
				if s == 0 {
					t.Fatal("Seed returned 0")
				}
				if seen[s] {
					t.Fatalf("seed collision at base=%d a=%d b=%d", base, a, b)
				}
				seen[s] = true
			}
		}
	}
	// Coordinate order matters.
	if Seed(1, 2, 3) == Seed(1, 3, 2) {
		t.Error("Seed ignores coordinate order")
	}
}
